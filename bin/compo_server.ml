(* compo-server: serve a design database over a Unix-domain socket.

     compo-server --socket PATH DIR          serve a journaled directory
     compo-server --socket PATH --demo gates serve an in-memory scenario

   One connection is one session; Begin/Commit/Abort on a session drive
   one design transaction over the S/X/IS/IX lock manager, so remote
   designers conflict exactly as in-process ones do.  SIGTERM/SIGINT
   trigger a graceful drain: sessions holding an open transaction get
   --drain seconds to finish, stragglers are aborted, and (in directory
   mode) a checkpoint makes the served writes durable. *)

module Server = Compo_net.Server
module Journal = Compo_storage.Journal

let die msg =
  prerr_endline ("compo-server: " ^ msg);
  exit 1

let or_die = function
  | Ok v -> v
  | Error e -> die (Compo_core.Errors.to_string e)

let build_demo scenario populate =
  let open Compo_scenarios in
  let db = Compo_core.Database.create () in
  (match scenario with
  | "gates" ->
      or_die (Gates.define_schema db);
      let _ff = or_die (Gates.flip_flop db) in
      let iface = or_die (Gates.nor_interface db) in
      let _impl = or_die (Gates.nor_implementation db ~interface:iface) in
      if populate > 0 then
        ignore (or_die (Workload.interface_with_inheritors db ~n:populate))
  | "steel" ->
      or_die (Steel.define_schema db);
      ignore (or_die (Workload.screwed_structure db ~girders:3 ~bores_per_joint:2))
  | other -> die ("unknown demo " ^ other ^ " (use gates or steel)"));
  db

let entity_count db =
  let n = ref 0 in
  Compo_core.Store.iter (Compo_core.Database.store db) (fun _ -> incr n);
  !n

let serve socket_path dir demo populate accept_domains idle_timeout drain
    flightrec quiet =
  (match Compo_par.Pool.env_jobs () with
  | Ok _ -> ()
  | Error msg -> die ("COMPO_JOBS " ^ msg));
  (match Compo_obs.Flightrec.configure_from_env () with
  | Ok () -> ()
  | Error msg -> die msg);
  (* COMPO_SLOW_MS drives the server's slow-query capture ring *)
  Compo_obs.Trace.configure_from_env ();
  let journal, db =
    match (dir, demo) with
    | Some _, Some _ -> die "DIR and --demo are mutually exclusive"
    | None, None -> die "nothing to serve: give a database DIR or --demo"
    | Some dir, None ->
        let j = or_die (Journal.open_dir dir) in
        (Some j, Journal.db j)
    | None, Some scenario -> (None, build_demo scenario populate)
  in
  Compo_obs.Metrics.enable ();
  let cfg =
    {
      (Server.default_config ~socket_path) with
      accept_domains;
      idle_timeout;
      drain_deadline = drain;
    }
  in
  let srv = Server.start cfg db in
  let say fmt =
    Printf.ksprintf (fun s -> if not quiet then print_endline s) fmt
  in
  say "compo-server: listening on %s (%d types, %d entities)" socket_path
    (List.length
       (Compo_core.Schema.entries (Compo_core.Database.schema db)))
    (entity_count db);
  if not quiet then flush stdout;
  let flightrec_path =
    match flightrec with Some p -> p | None -> socket_path ^ ".flightrec.json"
  in
  let dump_flightrec reason =
    (* the dump includes its own cause as the newest event *)
    Compo_obs.Flightrec.record ~attrs:[ ("reason", reason) ] "flightrec.dump";
    match Compo_obs.Flightrec.dump_to_file flightrec_path with
    | Ok () -> say "compo-server: flight recorder dumped to %s" flightrec_path
    | Error msg ->
        prerr_endline ("compo-server: flight recorder dump failed: " ^ msg)
  in
  (* an uncaught exception anywhere (acceptor domain, main thread) gets
     the last few thousand events written out before the process dies —
     the recorder's reason for existing *)
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      Compo_obs.Flightrec.record
        ~attrs:[ ("exn", Printexc.to_string exn) ]
        "server.crash";
      (try dump_flightrec "crash" with _ -> ());
      prerr_endline ("compo-server: fatal: " ^ Printexc.to_string exn);
      prerr_string (Printexc.raw_backtrace_to_string bt));
  let on_signal _ = Server.request_stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* SIGUSR1 requests a dump; the handler only flips a flag, the write
     happens here in the main loop (the recorder takes a mutex) *)
  let usr1 = Atomic.make false in
  if not Sys.win32 then
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set usr1 true));
  while not (Server.stop_requested srv) do
    if Atomic.get usr1 then begin
      Atomic.set usr1 false;
      dump_flightrec "sigusr1";
      if not quiet then flush stdout
    end;
    Thread.delay 0.2
  done;
  Server.stop srv;
  (* server-mode writes go straight to the store; in directory mode a
     shutdown checkpoint is what makes them durable *)
  (match journal with
  | None -> ()
  | Some j ->
      or_die (Journal.checkpoint j);
      Journal.close j);
  say "compo-server: drained in %.3f s (%d forced abort(s))"
    (Server.drain_seconds srv) (Server.forced_aborts srv);
  if not quiet then flush stdout

open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (required).")

let dir_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Journaled database directory to serve.")

let demo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "demo" ] ~docv:"SCENARIO"
        ~doc:
          "Serve an in-memory paper scenario ($(b,gates) or $(b,steel)) \
           instead of a directory.  Nothing is persisted.")

let populate_arg =
  Arg.(
    value & opt int 0
    & info [ "populate" ] ~docv:"N"
        ~doc:
          "With --demo gates: also bind $(docv) extra implementations to \
           one interface, giving load generators a wide extent of \
           inherited attributes.")

let accept_domains_arg =
  Arg.(
    value & opt int 2
    & info [ "accept-domains" ] ~docv:"N"
        ~doc:"Parallel accept-loop domains.")

let idle_timeout_arg =
  Arg.(
    value & opt float 300.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Disconnect sessions idle longer than this.")

let drain_arg =
  Arg.(
    value & opt float 5.
    & info [ "drain" ] ~docv:"SECONDS"
        ~doc:
          "Graceful-shutdown grace: sessions with an open transaction \
           get this long to commit or abort before the server aborts \
           them.")

let flightrec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flightrec" ] ~docv:"FILE"
        ~doc:
          "Where to dump the flight-recorder ring as JSON on $(b,SIGUSR1) \
           and on abnormal exit (default: the socket path plus \
           $(b,.flightrec.json)).  Pretty-print a dump with \
           $(b,compo flightrec FILE).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress status output.")

let cmd =
  let doc = "serve a compo design database over a Unix-domain socket" in
  Cmd.v
    (Cmd.info "compo-server" ~version:"1.0.0" ~doc
       ~envs:
         [
           Cmd.Env.info "COMPO_SLOW_MS"
             ~doc:
               "Slow-request threshold in milliseconds: requests above it \
                get their explain plan captured into the slow-query ring \
                (see $(b,compo slowlog)).";
           Cmd.Env.info "COMPO_FLIGHTREC_CAPACITY"
             ~doc:
               "Flight-recorder ring capacity (default 4096 events).  \
                Must be a positive integer.";
         ])
    Term.(
      const
        (fun socket dir demo populate accept_domains idle_timeout drain
             flightrec quiet ->
        serve socket dir demo populate accept_domains idle_timeout drain
          flightrec quiet)
      $ socket_arg $ dir_arg $ demo_arg $ populate_arg $ accept_domains_arg
      $ idle_timeout_arg $ drain_arg $ flightrec_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
