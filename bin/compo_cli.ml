(* compo: command-line front end for journaled design databases.

   compo check <file.ddl>          parse and elaborate a schema file
   compo format <file.ddl>         pretty-print a schema file (normal form)
   compo init <dir> [-s file.ddl]  create a database directory
   compo info <dir>                database statistics
   compo dump-schema <dir>         print a database's schema as DDL
   compo validate <dir>            check all integrity constraints
   compo fsck <dir>                recover and audit a database directory
   compo show <dir> <id>           display one object
   compo checkpoint <dir>          collapse the WAL into a snapshot
   compo demo <gates|steel> <dir>  build a paper scenario into a database
   compo stats [file.ddl...]       run an instrumented workload, dump metrics
                                   (--format=table|json|openmetrics|line-protocol)
   compo explain read <dir> <id> <attr>   provenance of one inherited read
   compo explain query <dir> <class>      query plan with cardinalities

   Every data command also accepts --metrics, which turns the kernel's
   metrics registry on for the duration of the command and dumps it to
   stderr afterwards. *)

open Compo_core

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("compo: " ^ Errors.to_string e);
      exit 1

(* strict --jobs / COMPO_JOBS validation: zero, negative or non-numeric
   job counts die with one line here instead of silently running
   sequentially downstream (Pool.default_jobs is lenient by design) *)
let validate_jobs jobs =
  (match Sys.getenv_opt "COMPO_JOBS" with
  | None -> ()
  | Some raw -> (
      match Compo_par.Pool.parse_jobs raw with
      | Ok _ -> ()
      | Error msg ->
          prerr_endline ("compo: COMPO_JOBS " ^ msg);
          exit 1));
  match jobs with
  | None -> None
  | Some n -> (
      match Compo_par.Pool.parse_jobs (string_of_int n) with
      | Ok n -> Some n
      | Error msg ->
          prerr_endline ("compo: --jobs " ^ msg);
          exit 1)

(* COMPO_TRACE_SAMPLE, same convention: a garbage sampling rate dies
   with one line instead of silently tracing nothing *)
let env_trace_sample () =
  match Compo_net.Client.trace_sample_from_env () with
  | Ok v -> v
  | Error msg ->
      prerr_endline ("compo: " ^ msg);
      exit 1

(* COMPO_FLIGHTREC_CAPACITY: validated (and applied) strictly at startup *)
let configure_flightrec_env () =
  match Compo_obs.Flightrec.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("compo: " ^ msg);
      exit 1

(* COMPO_NO_COMPILE / COMPO_NO_DELTA: same convention — a malformed
   toggle dies with one line instead of silently picking an engine *)
let configure_plan_env () =
  match Plan.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("compo: " ^ msg);
      exit 1

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg ->
      prerr_endline ("compo: " ^ msg);
      exit 1

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let cmd_check files =
  (* files load cumulatively, so later ones may use earlier definitions
     (steel.ddl uses the Point domain from gates.ddl) *)
  let db = Database.create () in
  let seen = ref 0 in
  List.iter
    (fun path ->
      or_die (Compo_ddl.Elaborate.load_string db (read_file path));
      let total = List.length (Schema.entries (Database.schema db)) in
      Printf.printf "%s: ok (%d new types)\n" path (total - !seen);
      seen := total)
    files

let cmd_format path =
  let db = Database.create () in
  or_die (Compo_ddl.Elaborate.load_string db (read_file path));
  print_string (Compo_ddl.Pretty.schema_to_string (Database.schema db))

let cmd_init dir schemas =
  let j = or_die (Compo_storage.Journal.open_dir dir) in
  List.iter
    (fun path ->
      or_die (Compo_ddl.Elaborate.load_string (Compo_storage.Journal.db j) (read_file path)))
    schemas;
  or_die (Compo_storage.Journal.checkpoint j);
  Compo_storage.Journal.close j;
  Printf.printf "initialized %s (%d types)\n" dir
    (List.length (Schema.entries (Database.schema (Compo_storage.Journal.db j))))

let with_journal dir f =
  let j = or_die (Compo_storage.Journal.open_dir dir) in
  let result = f j in
  Compo_storage.Journal.close j;
  result

let cmd_info dir =
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let store = Database.store db in
      if not (Compo_storage.Journal.recovered_clean j) then
        print_endline "warning: torn WAL tail was skipped during recovery";
      Printf.printf "types:        %d\n"
        (List.length (Schema.entries (Database.schema db)));
      Printf.printf "domains:      %d\n"
        (List.length (Schema.domains (Database.schema db)));
      let objects = ref 0 and rels = ref 0 and links = ref 0 in
      Store.iter store (fun e ->
          match e.Store.kind with
          | Store.Object_entity -> incr objects
          | Store.Relationship_entity -> incr rels
          | Store.Inheritance_link -> incr links);
      Printf.printf "objects:      %d\n" !objects;
      Printf.printf "relationships:%d\n" !rels;
      Printf.printf "inh. links:   %d\n" !links;
      Printf.printf "classes:      %s\n"
        (String.concat ", "
           (List.map
              (fun c ->
                Printf.sprintf "%s(%d)" c
                  (List.length (Result.get_ok (Store.class_members store c))))
              (Store.class_names store)));
      Printf.printf "wal:          %d bytes, %d records replayed\n"
        (Compo_storage.Journal.wal_size_bytes j)
        (Compo_storage.Journal.wal_records_replayed j))

let cmd_fsck dir =
  let report = or_die (Compo_storage.Fsck.check_dir dir) in
  Format.printf "%a@?" Compo_storage.Fsck.pp_report report;
  if report.Compo_storage.Fsck.fr_violations <> [] then exit 1

let cmd_dump_schema dir =
  with_journal dir (fun j ->
      print_string
        (Compo_ddl.Pretty.schema_to_string (Database.schema (Compo_storage.Journal.db j))))

let cmd_validate dir =
  with_journal dir (fun j ->
      let violations = Database.validate_all (Compo_storage.Journal.db j) in
      if violations = [] then print_endline "all constraints hold"
      else begin
        List.iter
          (fun v -> Format.printf "%a@." Constraints.pp_violation v)
          violations;
        exit 1
      end)

let parse_id raw =
  let raw = if String.length raw > 0 && raw.[0] = '@' then String.sub raw 1 (String.length raw - 1) else raw in
  match int_of_string_opt raw with
  | Some i -> Surrogate.of_int i
  | None ->
      prerr_endline ("compo: invalid object id " ^ raw);
      exit 1

let cmd_show dir raw_id =
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let store = Database.store db in
      let s = parse_id raw_id in
      let e = or_die (Store.get store s) in
      Printf.printf "%s : %s (%s)\n"
        (Surrogate.to_string s)
        e.Store.type_name
        (match e.Store.kind with
        | Store.Object_entity -> "object"
        | Store.Relationship_entity -> "relationship"
        | Store.Inheritance_link -> "inheritance link");
      (match e.Store.owner with
      | Some o -> Printf.printf "owner: %s\n" (Surrogate.to_string o)
      | None -> ());
      (match e.Store.bound with
      | Some b ->
          Printf.printf "inherits from %s via %s\n"
            (Surrogate.to_string b.Store.b_transmitter)
            b.Store.b_via
      | None -> ());
      (* effective attributes, marking inherited ones *)
      (match Schema.effective_attrs (Database.schema db) e.Store.type_name with
      | Ok attrs ->
          List.iter
            (fun ((a : Schema.attr_def), src) ->
              let v =
                match Database.get_attr db s a.attr_name with
                | Ok v -> Value.to_string v
                | Error _ -> "?"
              in
              let marker =
                match src with
                | Schema.Own -> ""
                | Schema.Via rel -> "  (inherited via " ^ rel ^ ")"
              in
              Printf.printf "  %s = %s%s\n" a.attr_name v marker)
            attrs
      | Error _ -> ());
      Store.Smap.iter
        (fun name v ->
          Printf.printf "  participant %s = %s\n" name (Value.to_string v))
        e.Store.participants;
      (match Schema.effective_subclasses (Database.schema db) e.Store.type_name with
      | Ok subs ->
          List.iter
            (fun ((sc : Schema.subclass_def), _) ->
              match Database.subclass_members db s sc.sc_name with
              | Ok ms ->
                  Printf.printf "  %s: {%s}\n" sc.sc_name
                    (String.concat ", " (List.map Surrogate.to_string ms))
              | Error _ -> ())
            subs
      | Error _ -> ());
      Store.Smap.iter
        (fun name ms ->
          Printf.printf "  %s (subrels): {%s}\n" name
            (String.concat ", " (List.map Surrogate.to_string ms)))
        e.Store.subrels)

let cmd_query dir cls where_src jobs =
  let jobs = validate_jobs jobs in
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let where =
        Option.map (fun src -> or_die (Compo_ddl.Parser.parse_expr src)) where_src
      in
      let found = or_die (Database.select db ~cls ?jobs ?where ()) in
      List.iter
        (fun s ->
          let ty = or_die (Database.type_of db s) in
          (* a compact one-line rendering: the first few effective attrs *)
          let attrs =
            match Schema.effective_attrs (Database.schema db) ty with
            | Error _ -> ""
            | Ok defs ->
                String.concat " "
                  (List.filteri
                     (fun i _ -> i < 4)
                     (List.map
                        (fun ((a : Schema.attr_def), _) ->
                          let v =
                            match Database.get_attr db s a.attr_name with
                            | Ok v -> Value.to_string v
                            | Error _ -> "?"
                          in
                          a.attr_name ^ "=" ^ v)
                        defs))
          in
          Printf.printf "%s %s %s\n" (Surrogate.to_string s) ty attrs)
        found;
      Printf.printf "%d object(s)\n" (List.length found))

let cmd_simulate dir raw_id bits =
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let gate = parse_id raw_id in
      (* external IN pins in subclass order get the bits in order *)
      let pins = or_die (Database.subclass_members db gate "Pins") in
      let in_pins =
        List.filter
          (fun p ->
            match Database.get_attr db p "InOut" with
            | Ok (Value.Enum_case "IN") -> true
            | _ -> false)
          pins
      in
      let bit_list =
        List.filter_map
          (fun c ->
            match c with '0' -> Some false | '1' -> Some true | _ -> None)
          (List.init (String.length bits) (String.get bits))
      in
      if List.length bit_list <> List.length in_pins then begin
        Printf.eprintf "compo: gate has %d input pins, got %d bits\n"
          (List.length in_pins) (List.length bit_list);
        exit 1
      end;
      let inputs = List.combine in_pins bit_list in
      match Compo_scenarios.Simulate.simulate db ~gate ~inputs with
      | Ok outs ->
          List.iter
            (fun (pin, v) ->
              Printf.printf "%s = %b\n" (Surrogate.to_string pin) v)
            outs
      | Error e ->
          prerr_endline ("compo: " ^ Errors.to_string e);
          exit 1)

let cmd_optimize dir raw_id =
  let j = or_die (Compo_storage.Journal.open_dir dir) in
  let db = Compo_storage.Journal.db j in
  let gate = parse_id raw_id in
  let stats = or_die (Compo_scenarios.Optimize.optimize db ~gate) in
  (* the rewrites bypassed the WAL; checkpoint for durability *)
  or_die (Compo_storage.Journal.checkpoint j);
  Compo_storage.Journal.close j;
  Printf.printf "removed %d dead gate(s), merged %d duplicate(s), dropped %d wire(s) in %d pass(es)\n"
    stats.Compo_scenarios.Optimize.removed_gates
    stats.Compo_scenarios.Optimize.merged_gates
    stats.Compo_scenarios.Optimize.removed_wires
    stats.Compo_scenarios.Optimize.passes

let cmd_checkpoint dir =
  with_journal dir (fun j ->
      or_die (Compo_storage.Journal.checkpoint j);
      print_endline "checkpoint written")

let cmd_demo scenario dir =
  let j = or_die (Compo_storage.Journal.open_dir dir) in
  let db = Compo_storage.Journal.db j in
  (match scenario with
  | "gates" ->
      or_die (Compo_scenarios.Gates.define_schema db);
      let ff = or_die (Compo_scenarios.Gates.flip_flop db) in
      let iface = or_die (Compo_scenarios.Gates.nor_interface db) in
      let _ = or_die (Compo_scenarios.Gates.nor_implementation db ~interface:iface) in
      Printf.printf "built the flip-flop %s and a NOR interface %s\n"
        (Surrogate.to_string ff) (Surrogate.to_string iface)
  | "steel" ->
      or_die (Compo_scenarios.Steel.define_schema db);
      let s =
        or_die (Compo_scenarios.Workload.screwed_structure db ~girders:3 ~bores_per_joint:2)
      in
      Printf.printf "built weight-carrying structure %s\n" (Surrogate.to_string s)
  | other ->
      prerr_endline ("compo: unknown demo " ^ other ^ " (use gates or steel)");
      exit 1);
  or_die (Compo_storage.Journal.checkpoint j);
  Compo_storage.Journal.close j;
  Printf.printf "saved to %s\n" dir

(* ------------------------------------------------------------------ *)
(* Observability: the stats command and the --metrics flag              *)

let with_metrics ~no_resolve_cache metrics f =
  if no_resolve_cache then Resolve_cache.set_default_enabled false;
  if not metrics then f ()
  else begin
    Compo_obs.Metrics.enable ();
    Fun.protect
      ~finally:(fun () ->
        Compo_obs.Metrics.disable ();
        prerr_string (Compo_obs.Metrics.dump ()))
      f
  end

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Provenance of one inheritance-aware read: value, cache outcome,
   source, and the full transmitter chain as an indented tree. *)
let cmd_explain_read dir raw_id attr =
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let s = parse_id raw_id in
      let _v, r = or_die (Database.explain_attr db s attr) in
      Format.printf "%a@." Compo_obs.Provenance.pp_read r)

(* Query plan: access choice, predicate split, estimated vs. actual
   cardinality.  Metrics are forced on for the duration so the eval-node
   count is populated (and deterministic for a given database). *)
let cmd_explain_query dir cls where_src timings =
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let where =
        Option.map (fun src -> or_die (Compo_ddl.Parser.parse_expr src)) where_src
      in
      let was_on = Compo_obs.Metrics.enabled () in
      Compo_obs.Metrics.enable ();
      let result = Database.explain_select db ~cls ?where () in
      if not was_on then Compo_obs.Metrics.disable ();
      let rows, ex = or_die result in
      Format.printf "%a@." (Query.pp_explain ~timings) ex;
      Printf.printf "%d object(s)\n" (List.length rows))

(* benchdiff: gate a fresh ablation matrix against the committed
   baseline.  Regressions (ok -> failed, missing cells, wall time past
   the per-cell relative threshold) exit 1; skips render loudly in both
   the table and the markdown summary but only gate with
   --fail-on-new-skip, because a smaller runner legitimately skips
   multicore cells the baseline machine ran. *)
let cmd_benchdiff baseline fresh time_ratio time_floor fail_on_new_skip summary
    =
  let module M = Compo_benchmatrix in
  let load path =
    match M.Report.read_file path with
    | Ok m -> m
    | Error msg ->
        prerr_endline ("compo: benchdiff: " ^ msg);
        exit 2
  in
  let base = load baseline and fr = load fresh in
  let thresholds =
    {
      M.Diff.default_thresholds with
      time_ratio;
      time_floor_s = time_floor;
    }
  in
  let result = M.Diff.compare_matrices ~thresholds ~baseline:base ~fresh:fr () in
  print_string (M.Diff.render_table result);
  (* the markdown twin goes to --summary FILE, or is appended to
     $GITHUB_STEP_SUMMARY when CI provides one *)
  (match
     match summary with
     | Some _ as s -> s
     | None -> Sys.getenv_opt "GITHUB_STEP_SUMMARY"
   with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (M.Diff.render_markdown
               ~baseline_name:(Filename.basename baseline)
               ~fresh_name:(Filename.basename fresh) result)));
  exit (M.Diff.exit_code ~fail_on_new_skip result)

(* --connect: fetch a live server's registry instead of running the
   local workload, so `compo stats` works unchanged against compo-server *)
let cmd_stats_connect sock format =
  let module Client = Compo_net.Client in
  let module P = Compo_net.Protocol in
  let fmt =
    match format with
    | `Table -> P.Fmt_table
    | `Json -> P.Fmt_json
    | `Openmetrics -> P.Fmt_openmetrics
    | `Line_protocol -> P.Fmt_line
  in
  match
    Client.connect ~user:"compo-stats" ~trace_sample:(env_trace_sample ()) sock
  with
  | Error e -> or_die (Error (Errors.Io_error (Client.error_to_string e)))
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.stats c fmt with
          | Ok text -> print_string text
          | Error e ->
              or_die (Error (Errors.Io_error (Client.error_to_string e))))

(* slowlog --connect: fetch a live server's slow-query capture ring,
   rendered server-side with the captured explain plans *)
let cmd_slowlog sock =
  let module Client = Compo_net.Client in
  match
    Client.connect ~user:"compo-slowlog" ~trace_sample:(env_trace_sample ())
      sock
  with
  | Error e -> or_die (Error (Errors.Io_error (Client.error_to_string e)))
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.slowlog c with
          | Ok text -> print_string text
          | Error e ->
              or_die (Error (Errors.Io_error (Client.error_to_string e))))

(* flightrec FILE: pretty-print a compo-server flight-recorder dump *)
let cmd_flightrec file =
  let module F = Compo_obs.Flightrec in
  let module J = Compo_obs.Json_min in
  match J.parse_file file with
  | Error msg -> or_die (Error (Errors.Io_error (file ^ ": " ^ msg)))
  | Ok j -> (
      match F.of_json j with
      | Error msg -> or_die (Error (Errors.Io_error (file ^ ": " ^ msg)))
      | Ok events ->
          let recorded =
            match Option.bind (J.member "recorded" j) J.to_float with
            | Some r -> int_of_float r
            | None -> List.length events
          in
          Printf.printf "flight recorder: %d event(s)%s\n"
            (List.length events)
            (if recorded > List.length events then
               Printf.sprintf " (of %d recorded; oldest overwritten)" recorded
             else "");
          Format.printf "%a@?" F.pp_events events)

let cmd_stats files format line_protocol slow_ms no_resolve_cache jobs connect =
  let module Obs = Compo_obs.Metrics in
  let module Trace = Compo_obs.Trace in
  let jobs = validate_jobs jobs in
  let format = if line_protocol then `Line_protocol else format in
  match connect with
  | Some sock -> cmd_stats_connect sock format
  | None ->
  if no_resolve_cache then Resolve_cache.set_default_enabled false;
  Obs.enable ();
  Trace.set_slow_threshold (slow_ms /. 1000.);
  (* schema files on the command line are elaborated first, so their
     definitions feed the same registry as the workload below *)
  let db = Database.create () in
  List.iter
    (fun path -> or_die (Compo_ddl.Elaborate.load_string db (read_file path)))
    files;
  (* A fixed workload in a throwaway journal touches every instrumented
     layer: the gates scenario build (store, inheritance.bind), journaled
     updates (wal.append), inherited reads (inheritance.resolve), a
     predicate query (query.select, eval.node), simulated designer
     contention (lock.wait), and a checkpoint (snapshot.write). *)
  let dir = Filename.temp_file "compo-stats" ".db" in
  Sys.remove dir;
  let j = or_die (Compo_storage.Journal.open_dir dir) in
  let jdb = Compo_storage.Journal.db j in
  or_die (Compo_scenarios.Gates.define_schema jdb);
  let ff = or_die (Compo_scenarios.Gates.flip_flop jdb) in
  let iface = or_die (Compo_scenarios.Gates.nor_interface jdb) in
  let impl =
    or_die (Compo_scenarios.Gates.nor_implementation jdb ~interface:iface)
  in
  or_die (Compo_storage.Journal.set_attr j ff "Length" (Value.Int 12));
  or_die (Compo_storage.Journal.set_attr j iface "Width" (Value.Int 3));
  (* the implementation inherits Length/Width from its interface, so these
     reads resolve across transmitter hops; the repetition exercises the
     resolve cache (first pass fills, later passes hit) *)
  for _ = 1 to 3 do
    List.iter
      (fun name ->
        let (_ : Value.t) = or_die (Database.get_attr jdb impl name) in
        ())
      [ "Length"; "Width"; "Function" ]
  done;
  let where = or_die (Compo_ddl.Parser.parse_expr "Length >= 0") in
  let (_ : Surrogate.t list) = or_die (Database.select jdb ~cls:"Gates" ~where ()) in
  (* a wider population drives the parallel read path: 64 implementations
     bound to one interface, selected on an attribute they all inherit,
     with the requested parallelism (--jobs, else COMPO_JOBS, else
     sequential — so the par.* families show exactly the configured
     fan-out) *)
  let (_ : Surrogate.t * Surrogate.t list) =
    or_die (Compo_scenarios.Workload.interface_with_inheritors jdb ~n:64)
  in
  let (_ : Surrogate.t list) =
    or_die (Database.select jdb ~cls:"Implementations" ?jobs ~where ())
  in
  let (_ : Constraints.violation list) = Database.validate_all jdb in
  (* two designers colliding on the flip-flop: X held, S blocked *)
  let mg = Compo_txn.Transaction.create_manager (Database.store jdb) in
  let t1 = Compo_txn.Transaction.begin_txn mg ~user:"designer-a" in
  let t2 = Compo_txn.Transaction.begin_txn mg ~user:"designer-b" in
  let lm = Compo_txn.Transaction.lock_manager mg in
  ignore
    (Compo_txn.Lock_manager.acquire lm
       ~txn:(Compo_txn.Transaction.id t1)
       ff Compo_txn.Lock.X);
  ignore
    (Compo_txn.Lock_manager.acquire lm
       ~txn:(Compo_txn.Transaction.id t2)
       ff Compo_txn.Lock.S);
  or_die (Compo_txn.Transaction.commit mg t1);
  or_die (Compo_txn.Transaction.abort mg t2);
  or_die (Compo_storage.Journal.checkpoint j);
  Compo_storage.Journal.close j;
  remove_tree dir;
  Obs.disable ();
  match format with
  | `Line_protocol -> print_string (Obs.to_line_protocol ())
  | `Openmetrics -> print_string (Obs.to_openmetrics ())
  | `Json -> print_string (Obs.to_json ())
  | `Table ->
      print_string (Obs.dump ());
      let hits = Resolve_cache.hits () and misses = Resolve_cache.misses () in
      Printf.printf
        "\nresolve cache: %d hit(s), %d miss(es), %d invalidation(s) (%d \
         scoped, %d global), hit rate %s\n"
        hits misses
        (Resolve_cache.invalidations ())
        (Resolve_cache.invalidations_scoped ())
        (Resolve_cache.invalidations_global ())
        (Obs.ratio_string ~num:hits ~den:(hits + misses) ());
      Printf.printf "spans recorded: %d\n" (Trace.recorded ());
      (match Trace.slow_ops () with
      | [] -> ()
      | slow ->
          Printf.printf "slow ops (>= %gms):\n" slow_ms;
          Format.printf "%a@." Compo_obs.Trace.pp_spans slow)

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring                                                     *)

open Cmdliner

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect kernel metrics while the command runs and dump the \
           registry to stderr afterwards.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate selects on $(docv) worker domains.  The result is \
           identical to the sequential plan (same rows, same order); only \
           the wall time changes.  Takes precedence over the COMPO_JOBS \
           environment variable; default 1.")

let no_resolve_cache_arg =
  Arg.(
    value & flag
    & info [ "no-resolve-cache" ]
        ~doc:
          "Disable the generation-stamped inheritance-resolution cache: \
           every inherited read walks the full transmitter chain.  \
           Equivalent to COMPO_NO_RESOLVE_CACHE=1.")

let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

(* [--metrics] must wrap the command body, so each term builds a thunk the
   wrapper runs with the registry enabled; [--no-resolve-cache] must be
   applied before any store is created *)
let instrumented f =
  Term.(
    const (fun no_resolve_cache metrics f ->
        with_metrics ~no_resolve_cache metrics f)
    $ no_resolve_cache_arg $ metrics_arg $ f)

let check_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.ddl") in
  Cmd.v (Cmd.info "check" ~doc:"Parse and elaborate schema files")
    (instrumented Term.(const (fun files () -> cmd_check files) $ files))

let format_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ddl") in
  Cmd.v (Cmd.info "format" ~doc:"Pretty-print a schema file in normal form")
    (instrumented Term.(const (fun file () -> cmd_format file) $ file))

let init_cmd =
  let schemas =
    Arg.(value & opt_all file [] & info [ "s"; "schema" ] ~docv:"FILE.ddl"
           ~doc:"Schema file(s) to load into the new database.")
  in
  Cmd.v (Cmd.info "init" ~doc:"Create a journaled database directory")
    (instrumented
       Term.(const (fun dir schemas () -> cmd_init dir schemas) $ dir_arg $ schemas))

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show database statistics")
    (instrumented Term.(const (fun dir () -> cmd_info dir) $ dir_arg))

let dump_schema_cmd =
  Cmd.v (Cmd.info "dump-schema" ~doc:"Print the database schema as DDL")
    (instrumented Term.(const (fun dir () -> cmd_dump_schema dir) $ dir_arg))

let validate_cmd =
  Cmd.v (Cmd.info "validate" ~doc:"Check all integrity constraints")
    (instrumented Term.(const (fun dir () -> cmd_validate dir) $ dir_arg))

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Recover a database directory and audit the result: store \
          invariants, surrogate continuity, schema resolution, and index \
          consistency.  Exits non-zero on violations.")
    (instrumented Term.(const (fun dir () -> cmd_fsck dir) $ dir_arg))

let show_cmd =
  let id = Arg.(required & pos 1 (some string) None & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "show" ~doc:"Display one object with its inherited data")
    (instrumented Term.(const (fun dir id () -> cmd_show dir id) $ dir_arg $ id))

let query_cmd =
  let cls = Arg.(required & pos 1 (some string) None & info [] ~docv:"CLASS") in
  let where =
    Arg.(value & opt (some string) None & info [ "w"; "where" ] ~docv:"EXPR"
           ~doc:"Selection predicate in the constraint-expression syntax, \
                 e.g. 'Length <= 5'.")
  in
  Cmd.v (Cmd.info "query" ~doc:"Select class members by predicate")
    (instrumented
       Term.(
         const (fun dir cls where jobs () -> cmd_query dir cls where jobs)
         $ dir_arg $ cls $ where $ jobs_arg))

let simulate_cmd =
  let id = Arg.(required & pos 1 (some string) None & info [] ~docv:"GATE-ID") in
  let bits =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"BITS"
           ~doc:"Input values for the gate's IN pins in order, e.g. 10.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Evaluate a gate netlist")
    (instrumented
       Term.(
         const (fun dir id bits () -> cmd_simulate dir id bits)
         $ dir_arg $ id $ bits))

let optimize_cmd =
  let id = Arg.(required & pos 1 (some string) None & info [] ~docv:"GATE-ID") in
  Cmd.v (Cmd.info "optimize" ~doc:"Dead-gate elimination and duplicate merging on a netlist")
    (instrumented Term.(const (fun dir id () -> cmd_optimize dir id) $ dir_arg $ id))

let checkpoint_cmd =
  Cmd.v (Cmd.info "checkpoint" ~doc:"Collapse the WAL into a snapshot")
    (instrumented Term.(const (fun dir () -> cmd_checkpoint dir) $ dir_arg))

let demo_cmd =
  let scenario =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO"
           ~doc:"gates or steel")
  in
  let dir = Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR") in
  Cmd.v (Cmd.info "demo" ~doc:"Build one of the paper's scenarios into a database")
    (instrumented
       Term.(
         const (fun scenario dir () -> cmd_demo scenario dir) $ scenario $ dir))

let stats_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE.ddl") in
  let format =
    let formats =
      [
        ("table", `Table);
        ("json", `Json);
        ("openmetrics", `Openmetrics);
        ("line-protocol", `Line_protocol);
      ]
    in
    Arg.(value & opt (enum formats) `Table
           & info [ "format" ] ~docv:"FORMAT"
               ~doc:
                 "Output format: $(b,table) (human-readable dump plus \
                  derived ratios), $(b,json) (stable registry snapshot), \
                  $(b,openmetrics) (text exposition format), or \
                  $(b,line-protocol) (influx style).")
  in
  let line_protocol =
    Arg.(value & flag
           & info [ "line-protocol" ]
               ~doc:"Deprecated alias for --format=line-protocol.")
  in
  let slow =
    Arg.(value & opt float 5.0
           & info [ "slow" ] ~docv:"MS"
               ~doc:"Slow-op threshold in milliseconds.")
  in
  let connect =
    Arg.(value & opt (some string) None
           & info [ "connect" ] ~docv:"SOCKET"
               ~doc:
                 "Fetch the metrics registry of a live compo-server over \
                  its Unix socket (rendered server-side in the requested \
                  --format) instead of running the local workload.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an instrumented workload and dump the metrics registry")
    Term.(
      const cmd_stats $ files $ format $ line_protocol $ slow
      $ no_resolve_cache_arg $ jobs_arg $ connect)

let slowlog_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCKET"
          ~doc:"Unix socket of the compo-server to query (required).")
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "Fetch a live server's slow-query capture ring: requests slower \
          than COMPO_SLOW_MS (on the server) with their captured explain \
          plans, newest first.")
    Term.(const cmd_slowlog $ connect)

let flightrec_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Flight-recorder dump written by compo-server (SIGUSR1 or \
             abnormal exit).")
  in
  Cmd.v
    (Cmd.info "flightrec"
       ~doc:
         "Pretty-print a compo-server flight-recorder dump: one event per \
          line with timestamps relative to the oldest buffered event.")
    Term.(const cmd_flightrec $ file)

let benchdiff_cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE"
           ~doc:"Committed BENCH_matrix.json to gate against.")
  in
  let fresh =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH"
           ~doc:"Freshly produced matrix (bench/matrix_main.exe output).")
  in
  let time_ratio =
    Arg.(value & opt float Compo_benchmatrix.Diff.default_thresholds.time_ratio
           & info [ "time-ratio" ] ~docv:"R"
               ~doc:
                 "Per-cell wall-time ratio that flags a regression (or, \
                  inverted, an improvement).  Deliberately coarse: the \
                  baseline and the runner are usually different machines.")
  in
  let time_floor =
    Arg.(value
           & opt float Compo_benchmatrix.Diff.default_thresholds.time_floor_s
           & info [ "time-floor" ] ~docv:"SECONDS"
               ~doc:"Ignore wall-time changes on cells faster than this.")
  in
  let fail_on_new_skip =
    Arg.(value & flag
           & info [ "fail-on-new-skip" ]
               ~doc:
                 "Also exit non-zero when a cell that ran in the baseline \
                  is skipped now (default: new skips render loudly but do \
                  not gate, so small runners can still pass).")
  in
  let summary =
    Arg.(value & opt (some string) None
           & info [ "summary" ] ~docv:"FILE"
               ~doc:
                 "Append the markdown rendering to this file (default: \
                  \\$GITHUB_STEP_SUMMARY when set).")
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Diff a fresh ablation matrix against the committed baseline: \
          per-cell verdicts (regression / improvement / new-skip / \
          missing-cell), loud skip reporting, non-zero exit on regression")
    Term.(
      const cmd_benchdiff $ baseline $ fresh $ time_ratio $ time_floor
      $ fail_on_new_skip $ summary)

let explain_group =
  let timings =
    Arg.(value & flag
           & info [ "timings" ]
               ~doc:
                 "Append per-stage wall times to the plan (off by default \
                  so the output is deterministic).")
  in
  let attr_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"ATTR")
  in
  let id_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"ID") in
  let cls_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CLASS")
  in
  let where =
    Arg.(value & opt (some string) None & info [ "w"; "where" ] ~docv:"EXPR"
           ~doc:"Selection predicate, e.g. 'Length <= 5'.")
  in
  Cmd.group
    (Cmd.info "explain"
       ~doc:
         "Explain why a read returned what it did, or how a query will run")
    [
      Cmd.v
        (Cmd.info "read"
           ~doc:
             "Provenance of one inheritance-aware attribute read: the \
              transmitter chain walked, the relationship object and \
              permeability decision at each hop, the cache outcome, and \
              the final source object")
        Term.(
          const (fun dir id attr -> cmd_explain_read dir id attr)
          $ dir_arg $ id_arg $ attr_arg);
      Cmd.v
        (Cmd.info "query"
           ~doc:
             "Query plan: index vs. scan access choice, indexed conjunct \
              vs. residual filter, estimated vs. actual cardinality, and \
              evaluator work")
        Term.(
          const (fun dir cls where timings ->
              cmd_explain_query dir cls where timings)
          $ dir_arg $ cls_arg $ where $ timings);
    ]

(* ------------------------------------------------------------------ *)
(* Version management: a versions.bin sidecar next to the journal       *)

let versions_path dir = Filename.concat dir "versions.bin"

let load_versions dir =
  if Sys.file_exists (versions_path dir) then
    or_die (Compo_versions.Versioned.load_file (versions_path dir))
  else Compo_versions.Versioned.create ()

let save_versions dir reg =
  or_die (Compo_versions.Versioned.save_file reg (versions_path dir))

let parse_state = function
  | "released" -> Compo_versions.Version_graph.Released
  | "frozen" -> Compo_versions.Version_graph.Frozen
  | other ->
      prerr_endline ("compo: unknown state " ^ other ^ " (released|frozen)");
      exit 1

let cmd_version_list dir =
  let reg = load_versions dir in
  let module VG = Compo_versions.Version_graph in
  List.iter
    (fun name ->
      let g = or_die (Compo_versions.Versioned.graph reg name) in
      Printf.printf "%s%s\n" name
        (match VG.default_version g with
        | Some d -> Printf.sprintf " (default v%d)" d
        | None -> "");
      List.iter
        (fun v ->
          let state =
            match VG.state_of g v.VG.ver_id with
            | Ok st -> VG.state_to_string st
            | Error _ -> "?"
          in
          Printf.printf "  v%d %s %s%s%s\n" v.VG.ver_id
            (Surrogate.to_string v.VG.ver_object)
            state
            (match v.VG.ver_predecessors with
            | [] -> ""
            | ps -> " <- " ^ String.concat "," (List.map (Printf.sprintf "v%d") ps))
            (if v.VG.ver_note = "" then "" else " (" ^ v.VG.ver_note ^ ")"))
        (VG.versions g))
    (Compo_versions.Versioned.graphs reg)

let cmd_version_new_graph dir name =
  let reg = load_versions dir in
  let _ = or_die (Compo_versions.Versioned.new_graph reg ~name) in
  save_versions dir reg;
  Printf.printf "graph %s created\n" name

let cmd_version_root dir graph raw_id =
  let reg = load_versions dir in
  with_journal dir (fun j ->
      let obj = parse_id raw_id in
      let _ = or_die (Store.get (Database.store (Compo_storage.Journal.db j)) obj) in
      let v = or_die (Compo_versions.Versioned.register_root reg ~graph ~obj) in
      save_versions dir reg;
      Printf.printf "v%d registered as root of %s\n" v graph)

let cmd_version_derive dir graph from_id =
  let reg = load_versions dir in
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let v, copy =
        or_die
          (Compo_versions.Versioned.derive_version reg (Database.store db) ~graph
             ~from:from_id)
      in
      (* the deep copy bypassed the WAL; a checkpoint makes it durable *)
      or_die (Compo_storage.Journal.checkpoint j);
      save_versions dir reg;
      Printf.printf "v%d derived from v%d (object %s)\n" v from_id
        (Surrogate.to_string copy))

let cmd_version_promote dir graph id state =
  let reg = load_versions dir in
  or_die (Compo_versions.Versioned.promote reg ~graph ~version:id (parse_state state));
  save_versions dir reg;
  Printf.printf "v%d promoted to %s\n" id state

let cmd_version_default dir graph id =
  let reg = load_versions dir in
  or_die (Compo_versions.Versioned.set_default reg ~graph ~version:id);
  save_versions dir reg;
  Printf.printf "v%d is now the default of %s\n" id graph

let cmd_version_audit dir raw_id =
  let reg = load_versions dir in
  with_journal dir (fun j ->
      let db = Compo_storage.Journal.db j in
      let root = parse_id raw_id in
      let entries =
        or_die (Compo_versions.Config_report.configuration reg (Database.store db) root)
      in
      List.iter
        (fun e ->
          Format.printf "%a@." Compo_versions.Config_report.pp_entry e)
        entries;
      let outdated = Compo_versions.Config_report.outdated entries in
      Printf.printf "%d use(s), %d outdated, %d unmanaged\n" (List.length entries)
        (List.length outdated)
        (List.length (Compo_versions.Config_report.unmanaged entries)))

(* COMPO_LOG=debug|info|warning enables logging on stderr. *)
let setup_logs () =
  match Sys.getenv_opt "COMPO_LOG" with
  | None -> ()
  | Some level ->
      let level =
        match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning
      in
      Logs.set_level level;
      Logs.set_reporter (Logs_fmt.reporter ())

let version_group =
  let open Cmdliner in
  let graph_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH") in
  let id_at n = Arg.(required & pos n (some string) None & info [] ~docv:"ID") in
  let int_at n docv = Arg.(required & pos n (some int) None & info [] ~docv) in
  Cmd.group
    (Cmd.info "version" ~doc:"Version-graph management (versions.bin sidecar)")
    [
      Cmd.v (Cmd.info "list" ~doc:"List graphs and versions")
        Term.(const cmd_version_list $ dir_arg);
      Cmd.v (Cmd.info "new-graph" ~doc:"Create a version graph")
        Term.(const cmd_version_new_graph $ dir_arg $ graph_arg);
      Cmd.v (Cmd.info "root" ~doc:"Register an object as the root version")
        Term.(const cmd_version_root $ dir_arg $ graph_arg $ id_at 2);
      Cmd.v (Cmd.info "derive" ~doc:"Derive a new in-work version (deep copy)")
        Term.(const cmd_version_derive $ dir_arg $ graph_arg $ int_at 2 "FROM");
      Cmd.v (Cmd.info "promote" ~doc:"Promote a version (released|frozen)")
        Term.(
          const cmd_version_promote $ dir_arg $ graph_arg $ int_at 2 "VERSION"
          $ Arg.(required & pos 3 (some string) None & info [] ~docv:"STATE"));
      Cmd.v (Cmd.info "default" ~doc:"Set the default version")
        Term.(const cmd_version_default $ dir_arg $ graph_arg $ int_at 2 "VERSION");
      Cmd.v (Cmd.info "audit" ~doc:"Configuration audit of a composite")
        Term.(const cmd_version_audit $ dir_arg $ id_at 1);
    ]

let () =
  setup_logs ();
  (* COMPO_SLOW_MS / COMPO_TRACE_CAPACITY *)
  Compo_obs.Trace.configure_from_env ();
  (* strict telemetry knobs: die before any command logic runs *)
  ignore (env_trace_sample ());
  configure_flightrec_env ();
  configure_plan_env ();
  (* COMPO_FAILPOINTS: crash/fault injection for recovery testing *)
  Compo_faults.Failpoint.configure_from_env ();
  let doc = "complex and composite objects for CAD/CAM databases" in
  let envs =
    [
      Cmd.Env.info "COMPO_FAILPOINTS"
        ~doc:
          "Arm fault-injection sites for crash-recovery testing, as a \
           comma-separated list of site=action[@N] specs (actions: error, \
           crash, torn, bitflip, short:N; @N fires on the Nth hit).  Site \
           names are listed in docs/DURABILITY.md.  Example: \
           COMPO_FAILPOINTS='wal.append.frame=torn' compo demo gates d";
      Cmd.Env.info "COMPO_SLOW_MS"
        ~doc:"Log operations slower than this many milliseconds.";
      Cmd.Env.info "COMPO_NO_RESOLVE_CACHE"
        ~doc:"Disable the inheritance-resolution cache.";
      Cmd.Env.info "COMPO_NO_COMPILE"
        ~doc:
          "Disable the compiled query engine (closure compilation and \
           materialized resolved-value columns); selects run the \
           interpreted evaluator.  Results are identical either way.";
      Cmd.Env.info "COMPO_NO_DELTA"
        ~doc:
          "Disable delta maintenance of compiled-plan state: any \
           mutation then rebuilds adjacency registries and materialized \
           columns from scratch on the next select instead of patching \
           them in place from the store's change log.  Results are \
           identical either way.";
      Cmd.Env.info "COMPO_JOBS"
        ~doc:
          "Default worker-domain count for parallel selects (see --jobs, \
           which takes precedence).  Results are identical at any value.";
      Cmd.Env.info "COMPO_TRACE_SAMPLE"
        ~doc:
          "Probability in [0,1] that a request sent over --connect \
           carries a wire trace context (default 0).  Sampled ids are \
           threaded through the server's kernel spans and provenance.";
      Cmd.Env.info "COMPO_FLIGHTREC_CAPACITY"
        ~doc:
          "Flight-recorder ring capacity in events (default 4096).  Must \
           be a positive integer.";
    ]
  in
  let info = Cmd.info "compo" ~version:"1.0.0" ~doc ~envs in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd;
            format_cmd;
            init_cmd;
            info_cmd;
            dump_schema_cmd;
            validate_cmd;
            fsck_cmd;
            query_cmd;
            show_cmd;
            simulate_cmd;
            optimize_cmd;
            checkpoint_cmd;
            demo_cmd;
            stats_cmd;
            slowlog_cmd;
            flightrec_cmd;
            benchdiff_cmd;
            explain_group;
            version_group;
          ]))
