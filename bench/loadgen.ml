(* loadgen: drive compo-server with many concurrent connections.

     loadgen [--socket PATH] [--connections 1,8,32,64,128] [--duration S]
             [--pipeline N] [--populate N] [--json FILE] [--check]

   Without --socket the generator self-hosts: it boots an in-process
   server over a gates-scenario store (one interface, --populate bound
   implementations) on a temporary socket, runs every connection-count
   point against it, then stops the server and reports the drain.  With
   --socket it drives an external compo-server and skips the drain row.

   Each connection is one session on one thread running a CAD-ish mix:
   mostly inherited-attribute reads (Length resolves through the
   implementation's interface binding), an occasional parallel select
   over the Implementations extent, and an occasional
   begin/set/commit transaction on a thread-distinct target.  Per-request
   wall times go into a private obs histogram per point; the JSON report
   (E19, BENCH_server.json) carries throughput and p50/p99/p999 per
   connection count.  --check exits non-zero if any protocol error
   occurred — the CI soak gate. *)

module Metrics = Compo_obs.Metrics
module Server = Compo_net.Server
module Client = Compo_net.Client
open Compo_core

let say fmt = Printf.ksprintf (fun s -> print_endline s; flush stdout) fmt

let ok = function
  | Ok v -> v
  | Error e ->
      say "loadgen: %s" (Errors.to_string e);
      exit 1

let cok = function
  | Ok v -> v
  | Error e ->
      say "loadgen: %s" (Client.error_to_string e);
      exit 1

(* ------------------------------------------------------------------ *)
(* One measurement point                                               *)

type point = {
  connections : int;
  wall : float;
  requests : int;
  app_errors : int;
  proto_errors : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

let quantile_us snap q =
  let v = Metrics.quantile snap q *. 1e6 in
  if Float.is_nan v then 0. else v

(* Per-opcode latency families in the *default* registry: the per-point
   histogram above resets with each connection count, but these
   accumulate over the whole run and land in the final
   BENCH_server.metrics.json snapshot — the client-side breakdown that
   pairs with the server's per-opcode gate profile. *)
let loadgen_ops = [ "get_attr"; "select"; "begin"; "set_attr"; "commit" ]

let op_hists =
  List.map
    (fun name ->
      (name, Metrics.histogram ("net.client.request.seconds." ^ name)))
    loadgen_ops

let op_hist name = List.assoc name op_hists

(* the worker op mix, shared by sync and pipelined modes *)
let run_worker ~socket ~trace_sample ~stop_at ~targets ~hist ~requests
    ~app_errors ~proto_errors ~pipeline tid =
  match
    Client.connect ~user:(Printf.sprintf "load-%d" tid) ~trace_sample socket
  with
  | Error _ -> Atomic.incr proto_errors
  | Ok c ->
      let n = Array.length targets in
      let own = targets.(tid mod n) in
      let where = Expr.(path [ "Length" ] >= int 0) in
      let record op t0 =
        let dt = Unix.gettimeofday () -. t0 in
        Metrics.observe hist dt;
        Metrics.observe (op_hist op) dt;
        Atomic.incr requests
      in
      let count_err (r : (_, Client.error) result) =
        match r with
        | Ok _ -> ()
        | Error (Client.Remote _) -> Atomic.incr app_errors
        | Error (Client.Protocol _) | Error (Client.Io _) ->
            Atomic.incr proto_errors
      in
      let sync name op =
        let t0 = Unix.gettimeofday () in
        let r = op () in
        record name t0;
        count_err r
      in
      let k = ref (tid * 7919) in
      (try
         while Unix.gettimeofday () < stop_at do
           incr k;
           let i = !k in
           if i mod 64 = 63 then
             sync "select" (fun () ->
                 Client.select c ~cls:"Implementations" ~where ())
           else if i mod 16 = 15 then begin
             sync "begin" (fun () -> Client.begin_txn c);
             sync "set_attr" (fun () ->
                 Client.set_attr c own "TimeBehavior" (Value.Int (i land 7)));
             sync "commit" (fun () -> Client.commit c)
           end
           else if pipeline <= 1 then
             sync "get_attr" (fun () ->
                 Client.get_attr c targets.(i * 31 mod n) "Length")
           else begin
             (* pipelined burst: queue [pipeline] reads, then drain; the
                per-request latency is the burst wall over the burst *)
             let t0 = Unix.gettimeofday () in
             let sent = ref 0 in
             for j = 1 to pipeline do
               match
                 Client.send c
                   (Compo_net.Protocol.Get_attr
                      { obj = targets.((i + j) * 31 mod n); attr = "Length" })
               with
               | Ok _ -> incr sent
               | Error _ -> Atomic.incr proto_errors
             done;
             for _ = 1 to !sent do
               (match Client.recv c with
               | Ok (_, Compo_net.Protocol.App_error _) ->
                   Atomic.incr app_errors
               | Ok (_, Compo_net.Protocol.Protocol_error _) | Error _ ->
                   Atomic.incr proto_errors
               | Ok _ -> ());
               Atomic.incr requests
             done;
             if !sent > 0 then begin
               let per = (Unix.gettimeofday () -. t0) /. float_of_int !sent in
               for _ = 1 to !sent do
                 Metrics.observe hist per;
                 Metrics.observe (op_hist "get_attr") per
               done
             end
           end
         done
       with _ -> Atomic.incr proto_errors);
      Client.close c

let run_point ~socket ~trace_sample ~targets ~duration ~pipeline connections =
  let reg = Metrics.create_registry () in
  let hist = Metrics.histogram ~registry:reg "net.client.request.seconds" in
  let requests = Atomic.make 0
  and app_errors = Atomic.make 0
  and proto_errors = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let stop_at = t0 +. duration in
  let threads =
    List.init connections (fun tid ->
        Thread.create
          (fun () ->
            run_worker ~socket ~trace_sample ~stop_at ~targets ~hist ~requests
              ~app_errors ~proto_errors ~pipeline tid)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let snap =
    match Metrics.find ~registry:reg "net.client.request.seconds" with
    | Some (Metrics.Histogram h) -> h
    | _ -> assert false
  in
  {
    connections;
    wall;
    requests = Atomic.get requests;
    app_errors = Atomic.get app_errors;
    proto_errors = Atomic.get proto_errors;
    p50_us = quantile_us snap 0.5;
    p99_us = quantile_us snap 0.99;
    p999_us = quantile_us snap 0.999;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let write_json ~path ~socket ~self_hosted ~duration ~pipeline ~populate
    ~drain ~forced points =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E19\",\n";
  Buffer.add_string buf
    "  \"description\": \"server throughput and request latency vs \
     concurrent connections, gates scenario over the binary wire \
     protocol\",\n";
  Printf.bprintf buf "  \"socket\": %S,\n" socket;
  Printf.bprintf buf "  \"self_hosted\": %b,\n" self_hosted;
  Printf.bprintf buf "  \"duration_s\": %.2f,\n" duration;
  Printf.bprintf buf "  \"pipeline\": %d,\n" pipeline;
  Printf.bprintf buf "  \"population\": %d,\n" populate;
  Printf.bprintf buf "  \"cores\": %d,\n" (Compo_par.Pool.available_cores ());
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length points in
  List.iteri
    (fun i p ->
      Printf.bprintf buf
        "    { \"connections\": %d, \"requests\": %d, \"rps\": %.1f, \
         \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, \
         \"app_errors\": %d, \"protocol_errors\": %d }%s\n"
        p.connections p.requests
        (float_of_int p.requests /. p.wall)
        p.p50_us p.p99_us p.p999_us p.app_errors p.proto_errors
        (if i = n - 1 then "" else ","))
    points;
  Buffer.add_string buf "  ],\n";
  let max_rps =
    List.fold_left
      (fun acc p -> Float.max acc (float_of_int p.requests /. p.wall))
      0. points
  in
  Printf.bprintf buf "  \"max_rps\": %.1f,\n" max_rps;
  (* whole-run per-opcode breakdown from the default-registry families
     (also carried, with full buckets, by BENCH_server.metrics.json) *)
  Buffer.add_string buf "  \"per_op\": {\n";
  let per_op =
    List.filter_map
      (fun name ->
        match Metrics.find ("net.client.request.seconds." ^ name) with
        | Some (Metrics.Histogram h) when h.Metrics.h_count > 0 ->
            Some (name, h)
        | _ -> None)
      loadgen_ops
  in
  let n_ops = List.length per_op in
  List.iteri
    (fun i (name, h) ->
      Printf.bprintf buf
        "    %S: { \"count\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, \
         \"p999_us\": %.1f }%s\n"
        name h.Metrics.h_count (quantile_us h 0.5) (quantile_us h 0.99)
        (quantile_us h 0.999)
        (if i = n_ops - 1 then "" else ","))
    per_op;
  Buffer.add_string buf "  },\n";
  Printf.bprintf buf "  \"protocol_errors_total\": %d,\n"
    (List.fold_left (fun acc p -> acc + p.proto_errors) 0 points);
  Printf.bprintf buf "  \"drain_seconds\": %.3f,\n" drain;
  Printf.bprintf buf "  \"forced_aborts\": %d\n" forced;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote %s (%d points)" path n

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let usage () =
  say "usage: loadgen [--socket PATH] [--connections 1,8,32,64,128]";
  say "               [--duration S] [--pipeline N] [--populate N]";
  say "               [--json FILE] [--check]";
  exit 2

let () =
  let socket = ref None in
  let connections = ref [ 1; 8; 32; 64; 128 ] in
  let duration = ref 3.0 in
  let pipeline = ref 1 in
  let populate = ref 512 in
  let json = ref "BENCH_server.json" in
  let check = ref false in
  let rec parse = function
    | [] -> ()
    | "--socket" :: v :: rest ->
        socket := Some v;
        parse rest
    | "--connections" :: v :: rest -> (
        match
          List.map int_of_string_opt (String.split_on_char ',' (String.trim v))
        with
        | cs when cs <> [] && List.for_all (fun c -> c <> None) cs ->
            connections := List.map Option.get cs;
            parse rest
        | _ -> usage ())
    | "--duration" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0. ->
            duration := f;
            parse rest
        | _ -> usage ())
    | "--pipeline" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            pipeline := n;
            parse rest
        | _ -> usage ())
    | "--populate" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            populate := n;
            parse rest
        | _ -> usage ())
    | "--json" :: v :: rest ->
        json := v;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* telemetry env knobs, strict: a typo dies here, not mid-run *)
  let trace_sample =
    match Client.trace_sample_from_env () with
    | Ok v -> v
    | Error msg ->
        say "loadgen: %s" msg;
        exit 1
  in
  (match Compo_obs.Flightrec.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
      say "loadgen: %s" msg;
      exit 1);
  Metrics.enable ();
  (* self-host unless an external socket was given *)
  let self_hosted = !socket = None in
  let srv, socket_path =
    match !socket with
    | Some path -> (None, path)
    | None ->
        let path = Filename.temp_file "compo-loadgen" ".sock" in
        Sys.remove path;
        let db = Database.create () in
        ok (Compo_scenarios.Gates.define_schema db);
        ignore
          (ok (Compo_scenarios.Workload.interface_with_inheritors db ~n:!populate));
        let cfg = Server.default_config ~socket_path:path in
        let srv = Server.start cfg db in
        say "loadgen: self-hosted server on %s (%d implementations)" path
          !populate;
        (Some srv, path)
  in
  (* discover the extent once; every worker indexes into it *)
  let probe =
    cok (Client.connect ~user:"loadgen-probe" ~trace_sample socket_path)
  in
  let targets = Array.of_list (cok (Client.select probe ~cls:"Implementations" ())) in
  Client.close probe;
  if Array.length targets = 0 then begin
    say "loadgen: server has no Implementations extent to drive";
    exit 1
  end;
  say "%12s %10s %10s %12s %12s %12s %6s %6s" "connections" "requests" "rps"
    "p50_us" "p99_us" "p999_us" "app" "proto";
  let points =
    List.map
      (fun c ->
        let p =
          run_point ~socket:socket_path ~trace_sample ~targets
            ~duration:!duration ~pipeline:!pipeline c
        in
        say "%12d %10d %10.1f %12.1f %12.1f %12.1f %6d %6d" p.connections
          p.requests
          (float_of_int p.requests /. p.wall)
          p.p50_us p.p99_us p.p999_us p.app_errors p.proto_errors;
        p)
      !connections
  in
  let drain, forced =
    match srv with
    | None -> (0., 0)
    | Some srv ->
        Server.stop srv;
        say "loadgen: server drained in %.3f s (%d forced abort(s))"
          (Server.drain_seconds srv) (Server.forced_aborts srv);
        (Server.drain_seconds srv, Server.forced_aborts srv)
  in
  write_json ~path:!json ~socket:socket_path ~self_hosted ~duration:!duration
    ~pipeline:!pipeline ~populate:!populate ~drain ~forced points;
  Metrics.snapshot_to_file "BENCH_server.metrics.json";
  say "wrote BENCH_server.metrics.json";
  let proto_total = List.fold_left (fun acc p -> acc + p.proto_errors) 0 points in
  if !check then
    if proto_total > 0 then begin
      say "check: FAIL - %d protocol error(s)" proto_total;
      exit 1
    end
    else say "check: OK - zero protocol errors across %d point(s)"
           (List.length points)
