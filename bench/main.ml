(* Benchmark harness: one experiment per mechanism the paper argues for
   qualitatively (DESIGN.md section 4 maps each to the paper's sections;
   EXPERIMENTS.md records the measured series).

   Usage: bench [E1 E15 ...] [--smoke] [--no-resolve-cache]
                [--check-speedup MIN] [--check-scaling MIN] [--no-bechamel]

   With no experiment names, all of E1..E18 plus the Bechamel group run.
   --smoke shrinks the parameter sweeps to CI-sized grids.
   --no-resolve-cache disables the inheritance-resolution cache globally
   (E15 still compares both arms by toggling the per-store switch).
   --check-speedup MIN exits non-zero if E15's worst cached/uncached
   speedup falls below MIN — the CI gate.
   --check-scaling MIN exits non-zero if E18's worst 4-job speedup falls
   below MIN; on machines with fewer than 4 cores the gate skips with a
   message (scaling cannot be judged there).

   Output: for every experiment a parameter-sweep table, then a Bechamel
   micro-benchmark group over the headline operations; E15, E16, E17,
   and E18 additionally write their series to BENCH_resolve_cache.json,
   BENCH_provenance.json, BENCH_recovery.json, and
   BENCH_resolve_parallel.json (each with a *.metrics.json registry
   snapshot companion). *)

open Compo_core
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload
module Steel = Compo_scenarios.Steel

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

(* --smoke: CI-sized parameter grids *)
let smoke = ref false

let header id claim =
  say "";
  say "--- %s: %s" id claim

(* COMPO_BENCH_METRICS=1 collects kernel metrics per experiment and prints
   a snapshot after each one.  Off by default, so the tables measure the
   disabled (no-op sink) instrumentation path. *)
let bench_metrics =
  match Sys.getenv_opt "COMPO_BENCH_METRICS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let with_snapshot name f =
  if not bench_metrics then f ()
  else begin
    Compo_obs.Metrics.reset ();
    Compo_obs.Metrics.enable ();
    f ();
    Compo_obs.Metrics.disable ();
    say "";
    say "metrics snapshot:";
    print_string (Compo_obs.Metrics.dump ());
    say "resolve cache: %d hit(s), %d miss(es), %d invalidation(s) (%d scoped, %d global)"
      (Resolve_cache.hits ()) (Resolve_cache.misses ())
      (Resolve_cache.invalidations ())
      (Resolve_cache.invalidations_scoped ())
      (Resolve_cache.invalidations_global ());
    (* the machine-readable twin of the dump above, one file per
       experiment, so a benchmark run carries its metric snapshot *)
    let path = Printf.sprintf "BENCH_%s.metrics.json" name in
    Compo_obs.Metrics.snapshot_to_file path;
    say "wrote %s" path;
    Compo_obs.Metrics.reset ()
  end

(* Median seconds per call over [repeat] samples of [batch] calls each. *)
let time_per ?(repeat = 21) ?(batch = 1) f =
  f ();
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int batch
  in
  let samples = Array.init repeat (fun _ -> sample ()) in
  Array.sort compare samples;
  samples.(repeat / 2)

let us t = t *. 1e6

(* ------------------------------------------------------------------ *)
(* E1: copy-in of component data vs. view inheritance (section 2)      *)

let e1 () =
  header "E1"
    "copy-in vs view inheritance: cost of keeping N inheritors fresh after \
     a transmitter update (section 2, problem 1)";
  say "%8s %14s %14s %8s" "N" "view (us)" "copy (us)" "ratio";
  List.iter
    (fun n ->
      let db = Database.create () in
      ok (G.define_schema db);
      let iface, impls = ok (W.interface_with_inheritors db ~n) in
      let store = Database.store db in
      let flip = ref 4 in
      (* view strategy: update the transmitter; freshness is free, so the
         total cost is the update plus one read through the binding *)
      let view () =
        flip := if !flip = 4 then 5 else 4;
        ok (Database.set_attr db iface "Length" (Value.Int !flip));
        ignore (ok (Database.get_attr db (List.hd impls) "Length"))
      in
      (* copy strategy: after the update, every inheritor's materialized
         copy must be refreshed *)
      let copy () =
        flip := if !flip = 4 then 5 else 4;
        ok (Database.set_attr db iface "Length" (Value.Int !flip));
        List.iter (fun impl -> ignore (ok (Inheritance.materialize store impl))) impls
      in
      let tv = time_per view and tc = time_per copy in
      say "%8d %14.2f %14.2f %8.1f" n (us tv) (us tc) (tc /. tv))
    (if !smoke then [ 10; 100 ] else [ 10; 100; 1000 ])

(* ------------------------------------------------------------------ *)
(* E2: inherited-attribute read vs. chain depth (section 4.1)          *)

let e2 () =
  header "E2" "inherited read latency vs. inheritance-chain depth (section 4.1)";
  say "%8s %14s" "depth" "read (us)";
  List.iter
    (fun depth ->
      let db = Database.create () in
      ok (W.chain_schema db ~depth);
      let nodes = ok (W.chain_instance db ~depth ~payload:7) in
      let leaf = List.nth nodes depth in
      let read () = ignore (ok (Database.get_attr db leaf "Payload")) in
      say "%8d %14.3f" depth (us (time_per ~batch:10 read)))
    [ 0; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E3: composite expansion (section 6)                                 *)

let e3 () =
  header "E3" "expansion time vs. component-tree size (section 6)";
  say "%8s %8s %8s %14s" "depth" "fanout" "nodes" "expand (us)";
  List.iter
    (fun (depth, fanout) ->
      let db = Database.create () in
      ok (G.define_schema db);
      let top = ok (W.component_tree db ~depth ~fanout) in
      let store = Database.store db in
      let nodes = Composite.node_count (ok (Composite.expand store top)) in
      let expand () = ignore (ok (Composite.expand store top)) in
      say "%8d %8d %8d %14.2f" depth fanout nodes (us (time_per expand)))
    [ (1, 2); (2, 2); (3, 2); (2, 4); (4, 2) ]

(* ------------------------------------------------------------------ *)
(* E4: permeability selectivity (section 4.3)                          *)

let attr_names = List.init 64 (fun i -> "A" ^ string_of_int i)

let e4_db k =
  let db = Database.create () in
  let attrs =
    List.map (fun n -> { Schema.attr_name = n; attr_domain = Domain.Integer }) attr_names
  in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Wide";
         ot_inheritor_in = None;
         ot_attrs = attrs;
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok
    (Database.define_inher_rel_type db
       {
         Schema.it_name = "SomeOf_Wide";
         it_transmitter = "Wide";
         it_inheritor = None;
         it_inheriting = List.filteri (fun i _ -> i < k) attr_names;
         it_attrs = [];
         it_subclasses = [];
         it_constraints = [];
       });
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "User";
         ot_inheritor_in = Some "SomeOf_Wide";
         ot_attrs = [];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  let wide =
    ok
      (Database.new_object db ~ty:"Wide"
         ~attrs:(List.map (fun n -> (n, Value.Int 1)) attr_names)
         ())
  in
  let user = ok (Database.new_object db ~ty:"User" ()) in
  let _ = ok (Database.bind db ~via:"SomeOf_Wide" ~transmitter:wide ~inheritor:user ()) in
  (db, user)

let e4 () =
  header "E4"
    "permeability: cost of materializing an inheritor vs. how many of 64 \
     attributes the relationship lets through (section 4.3)";
  say "%8s %18s" "k" "materialize (us)";
  List.iter
    (fun k ->
      let db, user = e4_db k in
      let store = Database.store db in
      let mat () = ignore (ok (Inheritance.materialize store user)) in
      say "%8d %18.2f" k (us (time_per ~batch:5 mat)))
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E5: constraint checking (section 5)                                 *)

let e5 () =
  header "E5" "ScrewingType constraint check vs. bores per screwing (section 5)";
  say "%8s %14s" "bores" "validate (us)";
  List.iter
    (fun bores ->
      let db = Database.create () in
      ok (Steel.define_schema db);
      let structure = ok (W.screwed_structure db ~girders:2 ~bores_per_joint:bores) in
      let screwing = List.hd (ok (Database.subrel_members db structure "Screwings")) in
      let validate () = ignore (ok (Database.validate db screwing)) in
      say "%8d %14.2f" bores (us (time_per validate)))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E6: lock inheritance overhead (section 6)                           *)

let e6 () =
  header "E6"
    "lock-inheritance overhead: transactional read (S-locks every hop) vs. \
     plain read, by chain depth (section 6)";
  say "%8s %14s %14s %10s" "depth" "plain (us)" "txn (us)" "locks";
  List.iter
    (fun depth ->
      let db = Database.create () in
      ok (W.chain_schema db ~depth);
      let nodes = ok (W.chain_instance db ~depth ~payload:7) in
      let leaf = List.nth nodes depth in
      let store = Database.store db in
      let plain () = ignore (ok (Inheritance.attr store leaf "Payload")) in
      let mg = Compo_txn.Transaction.create_manager store in
      let txn_read () =
        let t = Compo_txn.Transaction.begin_txn mg ~user:"bench" in
        ignore (ok (Compo_txn.Transaction.get_attr mg t leaf "Payload"));
        ok (Compo_txn.Transaction.commit mg t)
      in
      (* count the locks one such read takes *)
      let t = Compo_txn.Transaction.begin_txn mg ~user:"count" in
      ignore (ok (Compo_txn.Transaction.get_attr mg t leaf "Payload"));
      let locks =
        List.length
          (Compo_txn.Lock_manager.locks_of
             (Compo_txn.Transaction.lock_manager mg)
             ~txn:(Compo_txn.Transaction.id t))
      in
      ignore (ok (Compo_txn.Transaction.commit mg t));
      say "%8d %14.3f %14.3f %10d" depth
        (us (time_per ~batch:10 plain))
        (us (time_per ~batch:10 txn_read))
        locks)
    [ 0; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E7: version selection policies (section 6)                          *)

let e7 () =
  header "E7" "generic-reference resolution by policy and #versions (section 6)";
  say "%8s %16s %16s %16s" "versions" "bottom-up (us)" "top-down (us)" "env (us)";
  List.iter
    (fun n ->
      let db = Database.create () in
      ok (G.define_schema db);
      let store = Database.store db in
      let reg = Compo_versions.Versioned.create () in
      let g = ok (Compo_versions.Versioned.new_graph reg ~name:"g") in
      let iface = ok (G.nor_interface db) in
      let first = ok (G.new_implementation db ~interface:iface ~time_behavior:n ()) in
      let v1 = ok (Compo_versions.Version_graph.add_root g ~obj:first ()) in
      ok (Compo_versions.Version_graph.promote g v1 Compo_versions.Version_graph.Released);
      let rec grow from k =
        if k = 0 then ()
        else begin
          let _, obj = ok (Compo_versions.Versioned.derive_version reg store ~graph:"g" ~from) in
          ok (Inheritance.set_attr store obj "TimeBehavior" (Value.Int k));
          let id = Option.get (Compo_versions.Version_graph.version_of_object g obj) in
          ok (Compo_versions.Version_graph.promote g id Compo_versions.Version_graph.Released);
          grow id (k - 1)
        end
      in
      grow v1 (n - 1);
      ok (Compo_versions.Version_graph.set_default g v1);
      let envs = Compo_versions.Generic_ref.Env_table.create () in
      Compo_versions.Generic_ref.Env_table.define envs ~env:"e";
      ok (Compo_versions.Generic_ref.Env_table.pin envs ~env:"e" ~graph:"g" ~version:v1);
      let gref policy =
        { Compo_versions.Generic_ref.gr_graph = g; gr_via = "SomeOf_Gate"; gr_policy = policy }
      in
      let run_resolve policy () =
        ignore (ok (Compo_versions.Generic_ref.resolve store ~envs (gref policy)))
      in
      say "%8d %16.3f %16.3f %16.3f" n
        (us (time_per ~batch:10 (run_resolve Compo_versions.Generic_ref.Bottom_up)))
        (us
           (time_per ~batch:10
              (run_resolve
                 (Compo_versions.Generic_ref.Top_down
                    Expr.(path [ "TimeBehavior" ] <= int 1)))))
        (us
           (time_per ~batch:10
              (run_resolve (Compo_versions.Generic_ref.Environment "e")))))
    [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E8: DDL parse + elaborate throughput                                *)

let e8 () =
  header "E8" "DDL front-end: parse + elaborate the paper's schemas";
  let gates = Compo_scenarios.Paper_ddl.gates in
  let steel = Compo_scenarios.Paper_ddl.steel in
  let load () =
    let db = Database.create () in
    ok (Compo_ddl.Elaborate.load_string db gates);
    ok (Compo_ddl.Elaborate.load_string db steel)
  in
  let t = time_per load in
  let db = Database.create () in
  ok (Compo_ddl.Elaborate.load_string db gates);
  ok (Compo_ddl.Elaborate.load_string db steel);
  let types = List.length (Schema.entries (Database.schema db)) in
  say "both paper schemas: %d types, %.2f ms per load, %.0f types/s" types
    (t *. 1e3)
    (float_of_int types /. t)

(* ------------------------------------------------------------------ *)
(* E9: WAL append and recovery replay                                  *)

let temp_journal_dir () =
  let dir = Filename.temp_file "compo-bench" "" in
  Sys.remove dir;
  dir

let part_type =
  {
    Schema.ot_name = "Part";
    ot_inheritor_in = None;
    ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
    ot_subclasses = [];
    ot_subrels = [];
    ot_constraints = [];
  }

let e9 () =
  header "E9" "journal: logged-update throughput and recovery replay scaling";
  (* append throughput *)
  let dir = temp_journal_dir () in
  let j = ok (Compo_storage.Journal.open_dir dir) in
  ok (Compo_storage.Journal.define_obj_type j part_type);
  let p = ok (Compo_storage.Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 0) ] ()) in
  let i = ref 0 in
  let append () =
    incr i;
    ok (Compo_storage.Journal.set_attr j p "Weight" (Value.Int !i))
  in
  let t = time_per ~batch:100 append in
  say "logged set_attr: %.2f us/op (%.0f ops/s)" (us t) (1.0 /. t);
  Compo_storage.Journal.close j;
  (* replay scaling *)
  say "%10s %16s" "wal ops" "recovery (ms)";
  List.iter
    (fun n ->
      let dir = temp_journal_dir () in
      let j = ok (Compo_storage.Journal.open_dir dir) in
      ok (Compo_storage.Journal.define_obj_type j part_type);
      let p = ok (Compo_storage.Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 0) ] ()) in
      for k = 1 to n do
        ok (Compo_storage.Journal.set_attr j p "Weight" (Value.Int k))
      done;
      Compo_storage.Journal.close j;
      let recover () =
        let j = ok (Compo_storage.Journal.open_dir dir) in
        Compo_storage.Journal.close j
      in
      say "%10d %16.2f" n (1e3 *. time_per ~repeat:7 recover))
    [ 500; 1000; 2000; 4000 ]

(* ------------------------------------------------------------------ *)
(* E10: query evaluation                                               *)

let e10 () =
  header "E10" "select-where latency vs. class extent (top-down selection, section 6)";
  say "%8s %14s %16s %10s" "extent" "scan (us)" "indexed (us)" "hits";
  List.iter
    (fun n ->
      let db = Database.create () in
      ok (G.define_schema db);
      for i = 1 to n do
        let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
        let iface =
          ok (G.new_interface db ~pin_interface:pi ~length:(4 + (i mod 8)) ~width:2)
        in
        ignore (ok (G.new_implementation db ~interface:iface ~time_behavior:(i mod 8) ()))
      done;
      (* scan: range predicate over inherited data *)
      let scan_where = Expr.(path [ "Length" ] <= int 5) in
      let hits = List.length (ok (Database.select db ~cls:"Interfaces" ~where:scan_where ())) in
      let scan () = ignore (ok (Database.select db ~cls:"Interfaces" ~where:scan_where ())) in
      (* index ablation: equality on an own attribute, with a hash index *)
      ok (Database.create_index db ~cls:"Implementations" ~attr:"TimeBehavior");
      let ix_where = Expr.(path [ "TimeBehavior" ] = int 3) in
      let indexed () =
        ignore (ok (Database.select db ~cls:"Implementations" ~where:ix_where ()))
      in
      say "%8d %14.2f %16.3f %10d" n (us (time_per scan)) (us (time_per ~batch:20 indexed)) hits)
    [ 100; 500; 2000 ]

(* ------------------------------------------------------------------ *)
(* E11: bill of materials / configurations (section 2)                 *)

let e11 () =
  header "E11" "bill of materials vs. structure size (section 2, configurations)";
  say "%8s %14s %14s" "girders" "bom (us)" "components";
  List.iter
    (fun girders ->
      let db = Database.create () in
      ok (Steel.define_schema db);
      let structure = ok (W.screwed_structure db ~girders ~bores_per_joint:2) in
      let comps = List.length (ok (Database.bill_of_materials db structure)) in
      let bom () = ignore (ok (Database.bill_of_materials db structure)) in
      say "%8d %14.2f %14d" girders (us (time_per bom)) comps)
    [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E12: deadlock detection                                             *)

let e12_setup chain =
  let db = Database.create () in
  ok (G.define_schema db);
  let store = Database.store db in
  let mg = Compo_txn.Transaction.create_manager store in
  let lm = Compo_txn.Transaction.lock_manager mg in
  let objs =
    Array.init chain (fun _ -> ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2))
  in
  (* txn i X-locks obj i and waits for obj (i+1): a chain of waits *)
  for i = 0 to chain - 1 do
    match Compo_txn.Lock_manager.acquire lm ~txn:i objs.(i) Compo_txn.Lock.X with
    | Ok `Granted -> ()
    | _ -> failwith "setup"
  done;
  for i = 0 to chain - 2 do
    match Compo_txn.Lock_manager.acquire lm ~txn:i objs.(i + 1) Compo_txn.Lock.X with
    | Ok (`Blocked _) -> ()
    | _ -> failwith "setup"
  done;
  (lm, objs)

let e12 () =
  header "E12" "deadlock detection cost vs. waits-for chain length (section 6)";
  say "%8s %18s" "txns" "detect (us)";
  List.iter
    (fun chain ->
      let lm, objs = e12_setup chain in
      (* the last transaction closing the cycle triggers a full traversal *)
      let detect () =
        match Compo_txn.Lock_manager.acquire lm ~txn:(chain - 1) objs.(0) Compo_txn.Lock.X with
        | Error _ -> ()
        | Ok `Granted | Ok (`Blocked _) -> failwith "expected deadlock"
      in
      say "%8d %18.3f" chain (us (time_per ~batch:10 detect)))
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E13: workspace checkout / check-in (long design transactions)       *)

let e13 () =
  header "E13"
    "workspace cycle (checkout -> edit -> checkin) vs. composite size \
     (section 6 / [KLMP84] long transactions)";
  say "%8s %8s %16s %16s" "depth" "fanout" "checkout (us)" "checkin (us)";
  List.iter
    (fun (depth, fanout) ->
      let db = Database.create () in
      let top = ok (W.component_tree db ~depth ~fanout) in
      let mg = Compo_txn.Transaction.create_manager (Database.store db) in
      let ws = Compo_workspace.Workspace.create_manager mg in
      let cycle which () =
        let w = ok (Compo_workspace.Workspace.checkout ws ~user:"bench" top) in
        let priv = Compo_workspace.Workspace.private_root w in
        ok (Database.set_attr db priv "Payload" (Value.Int 9));
        match which with
        | `Checkout -> ignore (ok (Compo_workspace.Workspace.discard ws w))
        | `Checkin -> ignore (ok (Compo_workspace.Workspace.checkin ws w))
      in
      say "%8d %8d %16.1f %16.1f" depth fanout
        (us (time_per ~repeat:11 (cycle `Checkout)))
        (us (time_per ~repeat:11 (cycle `Checkin))))
    [ (1, 2); (2, 2); (3, 2); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* E14: trigger dispatch overhead                                      *)

let e14 () =
  header "E14" "trigger overhead: update with N non-matching + 1 matching rule";
  say "%8s %18s %18s" "rules" "plain (us)" "triggered (us)";
  List.iter
    (fun n ->
      let db = Database.create () in
      ok (W.chain_schema db ~depth:1);
      let nodes = ok (W.chain_instance db ~depth:1 ~payload:0) in
      let root = List.hd nodes in
      let eng = Compo_core.Triggers.create db in
      for i = 1 to n do
        ok
          (Compo_core.Triggers.add_rule eng
             {
               Compo_core.Triggers.r_name = "noise" ^ string_of_int i;
               r_pattern = Compo_core.Triggers.On_bind { via = None };
               r_condition = None;
               r_action = (fun _ _ -> Ok ());
             })
      done;
      ok
        (Compo_core.Triggers.add_rule eng
           {
             Compo_core.Triggers.r_name = "hit";
             r_pattern = Compo_core.Triggers.On_update { ty = None; attr = Some "Payload" };
             r_condition = None;
             r_action = (fun _ _ -> Ok ());
           });
      let i = ref 0 in
      let plain () =
        incr i;
        ok (Database.set_attr db root "Payload" (Value.Int !i))
      in
      let triggered () =
        incr i;
        ok (Compo_core.Triggers.set_attr eng root "Payload" (Value.Int !i))
      in
      say "%8d %18.3f %18.3f" n
        (us (time_per ~batch:20 plain))
        (us (time_per ~batch:20 triggered)))
    [ 0; 8; 64 ]

(* ------------------------------------------------------------------ *)
(* E15: inheritance-resolution cache (generation-stamped memo table)   *)

(* (depth, fanout, cached us/sweep, uncached us/sweep, speedup, hits,
   misses) per grid point; kept for the JSON report and --check-speedup *)
let e15_results :
    (int * int * float * float * float * int * int) list ref =
  ref []

let write_e15_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E15\",\n";
  Buffer.add_string buf
    "  \"description\": \"repeated inherited reads, resolve cache on vs \
     off, over chain depth x leaf fanout\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e15_results in
  List.iteri
    (fun i (depth, fanout, cached, uncached, speedup, hits, misses) ->
      Printf.bprintf buf
        "    { \"depth\": %d, \"fanout\": %d, \"cached_us_per_sweep\": %.3f, \
         \"uncached_us_per_sweep\": %.3f, \"speedup\": %.2f, \"hits\": %d, \
         \"misses\": %d }%s\n"
        depth fanout cached uncached speedup hits misses
        (if i = n - 1 then "" else ","))
    !e15_results;
  Buffer.add_string buf "  ],\n";
  let speedups = List.map (fun (_, _, _, _, sp, _, _) -> sp) !e15_results in
  let worst = List.fold_left min infinity speedups in
  let best = List.fold_left max neg_infinity speedups in
  Printf.bprintf buf "  \"min_speedup\": %.2f,\n" worst;
  Printf.bprintf buf "  \"max_speedup\": %.2f\n" best;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_resolve_cache.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_resolve_cache.json (%d rows)" n;
  (* the counted passes ran with metrics on, so the registry carries the
     hit/miss traffic behind the table above; ship it with the report *)
  Compo_obs.Metrics.snapshot_to_file "BENCH_resolve_cache.metrics.json";
  say "wrote BENCH_resolve_cache.metrics.json"

let e15 () =
  header "E15"
    "inheritance-resolution cache: repeated inherited reads, cache on vs \
     off, by chain depth x leaf fanout";
  e15_results := [];
  say "%8s %8s %16s %16s %10s" "depth" "fanout" "cached (us)" "uncached (us)"
    "speedup";
  let grid =
    if !smoke then [ (2, 1); (8, 2) ]
    else [ (2, 1); (4, 2); (8, 2); (8, 8); (16, 4) ]
  in
  List.iter
    (fun (depth, fanout) ->
      let db = Database.create () in
      ok (W.chain_schema db ~depth);
      let nodes = ok (W.chain_instance db ~depth ~payload:7) in
      let parent = List.nth nodes (depth - 1) in
      let first_leaf = List.nth nodes depth in
      (* [fanout - 1] extra leaves of the chain's leaf type, bound to the
         shared parent (type names mirror Workload.chain_schema) *)
      let leaf_ty = "Node" ^ string_of_int depth in
      let leaf_rel = "AllOf_Node" ^ string_of_int (depth - 1) in
      let extras =
        List.init (fanout - 1) (fun _ ->
            let leaf = ok (Database.new_object db ~ty:leaf_ty ()) in
            let _ =
              ok
                (Database.bind db ~via:leaf_rel ~transmitter:parent
                   ~inheritor:leaf ())
            in
            leaf)
      in
      let leaves = first_leaf :: extras in
      let store = Database.store db in
      let sweep () =
        List.iter
          (fun leaf -> ignore (ok (Database.get_attr db leaf "Payload")))
          leaves
      in
      (* time_per's warm-up call also fills the cache, so the cached arm
         measures the steady state the memo table exists for *)
      Store.set_resolve_cache_enabled store true;
      let cached = time_per ~batch:10 sweep in
      Store.set_resolve_cache_enabled store false;
      let uncached = time_per ~batch:10 sweep in
      let speedup = uncached /. cached in
      (* counted pass: disable cleared the table, so sweep one fills and
         sweep two hits — the hit/miss deltas land in the JSON report *)
      Store.set_resolve_cache_enabled store true;
      let h0 = Resolve_cache.hits () and m0 = Resolve_cache.misses () in
      Compo_obs.Metrics.enable ();
      sweep ();
      sweep ();
      if not bench_metrics then Compo_obs.Metrics.disable ();
      let hits = Resolve_cache.hits () - h0
      and misses = Resolve_cache.misses () - m0 in
      e15_results :=
        (depth, fanout, us cached, us uncached, speedup, hits, misses)
        :: !e15_results;
      say "%8d %8d %16.3f %16.3f %9.1fx" depth fanout (us cached) (us uncached)
        speedup)
    grid;
  e15_results := List.rev !e15_results;
  write_e15_json ()

(* ------------------------------------------------------------------ *)
(* E16: provenance recording overhead (PR 3 observability layer)       *)

(* (depth, off us/read, on us/read, ratio) per grid point *)
let e16_results : (int * float * float * float) list ref = ref []

let write_e16_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E16\",\n";
  Buffer.add_string buf
    "  \"description\": \"inherited read with the provenance collector on \
     vs off, by chain depth (resolve cache disabled so both arms walk)\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e16_results in
  List.iteri
    (fun i (depth, off, on, ratio) ->
      Printf.bprintf buf
        "    { \"depth\": %d, \"off_us_per_read\": %.3f, \
         \"on_us_per_read\": %.3f, \"on_over_off\": %.2f }%s\n"
        depth off on ratio
        (if i = n - 1 then "" else ","))
    !e16_results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_provenance.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_provenance.json (%d rows)" n;
  Compo_obs.Metrics.snapshot_to_file "BENCH_provenance.metrics.json";
  say "wrote BENCH_provenance.metrics.json"

let e16 () =
  header "E16"
    "provenance recording: inherited read with the collector on vs off, by \
     chain depth";
  e16_results := [];
  say "%8s %14s %14s %10s" "depth" "off (us)" "on (us)" "on/off";
  let depths = if !smoke then [ 2; 8 ] else [ 0; 2; 8; 16 ] in
  List.iter
    (fun depth ->
      let db = Database.create () in
      ok (W.chain_schema db ~depth);
      let nodes = ok (W.chain_instance db ~depth ~payload:7) in
      let leaf = List.nth nodes depth in
      (* cache off so both arms walk the chain: the delta is pure
         recording cost, not a hit-rate artifact *)
      Store.set_resolve_cache_enabled (Database.store db) false;
      let read () = ignore (ok (Database.get_attr db leaf "Payload")) in
      let off = time_per ~batch:100 read in
      Compo_obs.Provenance.enable ();
      let on = time_per ~batch:100 read in
      Compo_obs.Provenance.disable ();
      let ratio = on /. off in
      e16_results := (depth, us off, us on, ratio) :: !e16_results;
      say "%8d %14.3f %14.3f %9.2fx" depth (us off) (us on) ratio)
    depths;
  e16_results := List.rev !e16_results;
  write_e16_json ()

(* ------------------------------------------------------------------ *)
(* E17: recovery time vs WAL length (PR 4 crash-recovery subsystem)    *)

(* (wal records, wal bytes, recovery ms, records/s) per grid point *)
let e17_results : (int * int * float * float) list ref = ref []

let write_e17_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E17\",\n";
  Buffer.add_string buf
    "  \"description\": \"cold recovery (open_dir: snapshot load + full WAL \
     replay) vs log length, no intervening checkpoint\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e17_results in
  List.iteri
    (fun i (records, bytes, ms, rate) ->
      Printf.bprintf buf
        "    { \"wal_records\": %d, \"wal_bytes\": %d, \
         \"recovery_ms\": %.3f, \"records_per_s\": %.0f }%s\n"
        records bytes ms rate
        (if i = n - 1 then "" else ","))
    !e17_results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_recovery.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_recovery.json (%d rows)" n;
  Compo_obs.Metrics.snapshot_to_file "BENCH_recovery.metrics.json";
  say "wrote BENCH_recovery.metrics.json"

let e17 () =
  header "E17"
    "crash recovery: reopen latency vs uncheckpointed WAL length";
  e17_results := [];
  say "%10s %12s %16s %14s" "wal ops" "wal bytes" "recovery (ms)" "records/s";
  let sizes = if !smoke then [ 250; 1000 ] else [ 500; 1000; 2000; 4000; 8000 ] in
  List.iter
    (fun n ->
      let dir = temp_journal_dir () in
      let j = ok (Compo_storage.Journal.open_dir dir) in
      ok (Compo_storage.Journal.define_obj_type j part_type);
      let p =
        ok (Compo_storage.Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 0) ] ())
      in
      for k = 1 to n do
        ok (Compo_storage.Journal.set_attr j p "Weight" (Value.Int k))
      done;
      let bytes = Compo_storage.Journal.wal_size_bytes j in
      Compo_storage.Journal.close j;
      let replayed = ref 0 in
      let recover () =
        let j = ok (Compo_storage.Journal.open_dir dir) in
        assert (Compo_storage.Journal.recovered_clean j);
        replayed := Compo_storage.Journal.wal_records_replayed j;
        Compo_storage.Journal.close j
      in
      let t = time_per ~repeat:7 recover in
      let ms = 1e3 *. t in
      let rate = float_of_int !replayed /. t in
      e17_results := (!replayed, bytes, ms, rate) :: !e17_results;
      say "%10d %12d %16.2f %14.0f" !replayed bytes ms rate)
    sizes;
  e17_results := List.rev !e17_results;
  write_e17_json ()

(* ------------------------------------------------------------------ *)
(* E18: parallel query engine, scan+resolve scaling over worker count  *)

(* (depth, population, jobs, us/select, speedup vs jobs=1) per row *)
let e18_results : (int * int * int * float * float) list ref = ref []

(* [skipped] marks a --check-scaling gate that stood down on a small
   runner: the report then records {"skipped": true, "cores": N} as
   first-class data instead of burying the fact in the log *)
let write_e18_json ?(skipped = false) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E18\",\n";
  Buffer.add_string buf
    "  \"description\": \"parallel select with an inherited-attribute \
     predicate, resolve cache off (every candidate walks its chain), by \
     worker-domain count\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Printf.bprintf buf "  \"skipped\": %b,\n" skipped;
  Printf.bprintf buf "  \"cores\": %d,\n" (Compo_par.Pool.available_cores ());
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e18_results in
  List.iteri
    (fun i (depth, pop, jobs, us, sp) ->
      Printf.bprintf buf
        "    { \"depth\": %d, \"population\": %d, \"jobs\": %d, \
         \"us_per_select\": %.3f, \"speedup\": %.2f }%s\n"
        depth pop jobs us sp
        (if i = n - 1 then "" else ","))
    !e18_results;
  Buffer.add_string buf "  ],\n";
  let at4 =
    List.filter_map
      (fun (_, _, jobs, _, sp) -> if jobs = 4 then Some sp else None)
      !e18_results
  in
  (match at4 with
  | [] -> Buffer.add_string buf "  \"min_speedup_at_4_jobs\": null\n"
  | _ ->
      Printf.bprintf buf "  \"min_speedup_at_4_jobs\": %.2f\n"
        (List.fold_left min infinity at4));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_resolve_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_resolve_parallel.json (%d rows)" n;
  Compo_obs.Metrics.snapshot_to_file "BENCH_resolve_parallel.metrics.json";
  say "wrote BENCH_resolve_parallel.metrics.json"

(* Shared by E18/E21/E22: [roots] independent chains of depth [depth];
   every node of every chain joins the "Pop" extent, so a candidate at
   level k resolves Payload across k transmitter hops.  The resolve
   cache is switched off so the per-candidate work is the real chain
   walk.  Returns the database, the actual population and the chain
   roots (E22's write mix rewrites root Payloads, dirtying exactly one
   subtree of resolution chains per write). *)
let chain_population ~depth ~pop =
  let ty k = "Node" ^ string_of_int k in
  let rel k = "AllOf_Node" ^ string_of_int k in
  let db = Database.create () in
  ok (W.chain_schema db ~depth);
  ok (Database.create_class db ~name:"Pop" ~member_type:(ty 0));
  let nroots = max 1 (pop / (depth + 1)) in
  let roots = ref [] in
  for i = 0 to nroots - 1 do
    let root =
      ok
        (Database.new_object db ~cls:"Pop" ~ty:(ty 0)
           ~attrs:[ ("Payload", Value.Int (i mod 50)) ]
           ())
    in
    roots := root :: !roots;
    let parent = ref root in
    for k = 1 to depth do
      let s = ok (Database.new_object db ~cls:"Pop" ~ty:(ty k) ()) in
      let (_ : Surrogate.t) =
        ok
          (Database.bind db ~via:(rel (k - 1)) ~transmitter:!parent
             ~inheritor:s ())
      in
      parent := s
    done
  done;
  Store.set_resolve_cache_enabled (Database.store db) false;
  (db, nroots * (depth + 1), List.rev !roots)

let e18 () =
  header "E18"
    "parallel query engine: select with an inherited-attribute predicate, \
     scaling over jobs (resolve cache off)";
  e18_results := [];
  say "(%d core(s) available)" (Compo_par.Pool.available_cores ());
  say "%8s %10s %6s %16s %10s" "depth" "objects" "jobs" "us/select" "speedup";
  let grid = if !smoke then [ (4, 250) ] else [ (4, 2000); (8, 1200) ] in
  (* E18 measures the *interpreted* engine's fan-out (per-candidate chain
     walks across worker domains); the compiled engine would turn the
     same workload into a column scan and gut the thing being measured.
     E21 is the compiled story. *)
  let plan0 = Plan.enabled () in
  Plan.set_enabled false;
  Fun.protect ~finally:(fun () -> Plan.set_enabled plan0) @@ fun () ->
  List.iter
    (fun (depth, pop) ->
      let db, population, _roots = chain_population ~depth ~pop in
      let where = ok (Compo_ddl.Parser.parse_expr "Payload < 25") in
      let t1 = ref nan in
      List.iter
        (fun jobs ->
          let sel () = ignore (ok (Database.select db ~cls:"Pop" ~jobs ~where ())) in
          let t = time_per ~batch:(if !smoke then 3 else 5) sel in
          if jobs = 1 then t1 := t;
          let sp = !t1 /. t in
          e18_results := (depth, population, jobs, us t, sp) :: !e18_results;
          say "%8d %10d %6d %16.3f %9.2fx" depth population jobs (us t) sp)
        [ 1; 2; 4; 8 ])
    grid;
  e18_results := List.rev !e18_results;
  write_e18_json ()

(* ------------------------------------------------------------------ *)
(* E21: compiled plans vs the interpreted evaluator, same workload      *)

(* (depth, population, jobs, interpreted us, compiled us, ratio) *)
let e21_results : (int * int * int * float * float * float) list ref = ref []

let write_e21_json ?(skipped = false) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E21\",\n";
  Buffer.add_string buf
    "  \"description\": \"compiled query plans (closure compilation + \
     materialized resolved-value columns) vs the interpreted evaluator on \
     E18's workload, resolve cache off, by worker-domain count\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Printf.bprintf buf "  \"skipped\": %b,\n" skipped;
  Printf.bprintf buf "  \"cores\": %d,\n" (Compo_par.Pool.available_cores ());
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e21_results in
  List.iteri
    (fun i (depth, pop, jobs, ius, cus, ratio) ->
      Printf.bprintf buf
        "    { \"depth\": %d, \"population\": %d, \"jobs\": %d, \
         \"interpreted_us\": %.3f, \"compiled_us\": %.3f, \"ratio\": %.2f \
         }%s\n"
        depth pop jobs ius cus ratio
        (if i = n - 1 then "" else ","))
    !e21_results;
  Buffer.add_string buf "  ],\n";
  let at1 =
    List.filter_map
      (fun (_, _, jobs, _, _, ratio) -> if jobs = 1 then Some ratio else None)
      !e21_results
  in
  (match at1 with
  | [] -> Buffer.add_string buf "  \"single_thread_ratio\": null\n"
  | _ ->
      Printf.bprintf buf "  \"single_thread_ratio\": %.2f\n"
        (List.fold_left min infinity at1));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_compiled.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_compiled.json (%d rows)" n;
  Compo_obs.Metrics.snapshot_to_file "BENCH_compiled.metrics.json";
  say "wrote BENCH_compiled.metrics.json"

let e21 () =
  header "E21"
    "compiled query plans: closure compilation + materialized columns vs \
     the interpreted evaluator (E18's workload, resolve cache off)";
  e21_results := [];
  say "(%d core(s) available)" (Compo_par.Pool.available_cores ());
  say "%8s %10s %6s %16s %14s %8s" "depth" "objects" "jobs" "interp us"
    "compiled us" "ratio";
  let grid = if !smoke then [ (4, 250) ] else [ (4, 2000) ] in
  let plan0 = Plan.enabled () in
  Fun.protect ~finally:(fun () -> Plan.set_enabled plan0) @@ fun () ->
  List.iter
    (fun (depth, pop) ->
      let db, population, _roots = chain_population ~depth ~pop in
      let where = ok (Compo_ddl.Parser.parse_expr "Payload < 25") in
      List.iter
        (fun jobs ->
          let sel () = ignore (ok (Database.select db ~cls:"Pop" ~jobs ~where ())) in
          let batch = if !smoke then 3 else 5 in
          Plan.set_enabled false;
          let ti = time_per ~batch sel in
          (* time_per's warm-up call builds the registry and columns, so
             the compiled arm measures the steady state *)
          Plan.set_enabled true;
          let tc = time_per ~batch sel in
          let ratio = ti /. tc in
          e21_results :=
            (depth, population, jobs, us ti, us tc, ratio) :: !e21_results;
          say "%8d %10d %6d %16.3f %14.3f %7.2fx" depth population jobs (us ti)
            (us tc) ratio)
        [ 1; 2; 4 ])
    grid;
  e21_results := List.rev !e21_results;
  write_e21_json ()

(* ------------------------------------------------------------------ *)
(* E22: delta-maintained plan state vs full rebuild under a write mix  *)

(* (depth, population, write_pct, delta us/op, rebuild us/op, ratio) *)
let e22_results : (int * int * int * float * float * float) list ref = ref []

let write_e22_json ?(skipped = false) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E22\",\n";
  Buffer.add_string buf
    "  \"description\": \"delta-maintained plan state (change-log patching \
     of adjacency arrays and materialized columns) vs full epoch rebuild on \
     a mixed read/write workload over E18's chain population, by write \
     percentage\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Printf.bprintf buf "  \"skipped\": %b,\n" skipped;
  Printf.bprintf buf "  \"cores\": %d,\n" (Compo_par.Pool.available_cores ());
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !e22_results in
  List.iteri
    (fun i (depth, pop, pct, dus, rus, ratio) ->
      Printf.bprintf buf
        "    { \"depth\": %d, \"population\": %d, \"write_pct\": %d, \
         \"delta_us_per_op\": %.3f, \"rebuild_us_per_op\": %.3f, \
         \"ratio\": %.2f }%s\n"
        depth pop pct dus rus ratio
        (if i = n - 1 then "" else ","))
    !e22_results;
  Buffer.add_string buf "  ],\n";
  let mixed =
    List.filter_map
      (fun (_, _, pct, _, _, ratio) -> if pct = 20 then Some ratio else None)
      !e22_results
  in
  (match mixed with
  | [] -> Buffer.add_string buf "  \"write20_ratio\": null\n"
  | _ ->
      Printf.bprintf buf "  \"write20_ratio\": %.2f\n"
        (List.fold_left min infinity mixed));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_plan_delta.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote BENCH_plan_delta.json (%d rows)" n;
  Compo_obs.Metrics.snapshot_to_file "BENCH_plan_delta.metrics.json";
  say "wrote BENCH_plan_delta.metrics.json"

let e22 () =
  header "E22"
    "incremental plan maintenance: delta-patched columns vs full rebuild \
     under a mixed read/write workload (E18's chains, resolve cache off)";
  e22_results := [];
  say "(%d core(s) available)" (Compo_par.Pool.available_cores ());
  say "%8s %10s %7s %14s %16s %8s" "depth" "objects" "write%" "delta us/op"
    "rebuild us/op" "ratio";
  let grid = if !smoke then [ (4, 250) ] else [ (4, 2000) ] in
  let mixes = if !smoke then [ 20 ] else [ 0; 5; 20; 50 ] in
  let ops = if !smoke then 60 else 200 in
  let plan0 = Plan.enabled () in
  let delta0 = Plan.delta_enabled () in
  Fun.protect ~finally:(fun () ->
      Plan.set_enabled plan0;
      Plan.set_delta_enabled delta0)
  @@ fun () ->
  Plan.set_enabled true;
  List.iter
    (fun (depth, pop) ->
      let db, population, roots = chain_population ~depth ~pop in
      let roots = Array.of_list roots in
      let nroots = Array.length roots in
      let where = ok (Compo_ddl.Parser.parse_expr "Payload < 25") in
      List.iter
        (fun pct ->
          (* One "workload pass" = [ops] operations; operation i is a root
             Payload write when (i * pct) mod 100 < pct (an even Bresenham
             spread: pct = 20 makes every 5th op a write) and a compiled
             select over the whole extent otherwise.  Each write dirties
             one chain's worth of resolution dependencies, so the delta
             arm repairs a handful of rows while the rebuild arm re-fills
             the column from scratch before the next read. *)
          let pass () =
            for i = 0 to ops - 1 do
              if i * pct mod 100 < pct then
                ok
                  (Database.set_attr db roots.(i mod nroots) "Payload"
                     (Value.Int (i mod 50)))
              else
                ignore
                  (ok (Database.select db ~cls:"Pop" ~jobs:1 ~where ()))
            done
          in
          Plan.set_delta_enabled false;
          let tr = time_per ~repeat:7 pass in
          Plan.set_delta_enabled true;
          let td = time_per ~repeat:7 pass in
          let ratio = tr /. td in
          let dus = us td /. float_of_int ops in
          let rus = us tr /. float_of_int ops in
          e22_results :=
            (depth, population, pct, dus, rus, ratio) :: !e22_results;
          say "%8d %10d %7d %14.3f %16.3f %7.2fx" depth population pct dus rus
            ratio)
        mixes)
    grid;
  e22_results := List.rev !e22_results;
  write_e22_json ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks over the headline operations              *)

let bechamel_group () =
  let open Bechamel in
  let open Toolkit in
  say "";
  say "=== Bechamel micro-benchmarks (ns/run, OLS on monotonic clock) ===";
  (* shared fixtures *)
  let view_db = Database.create () in
  ok (G.define_schema view_db);
  let iface, impls = ok (W.interface_with_inheritors view_db ~n:100) in
  let impl0 = List.hd impls in
  let view_store = Database.store view_db in
  let chain_db = Database.create () in
  ok (W.chain_schema chain_db ~depth:8);
  let chain_nodes = ok (W.chain_instance chain_db ~depth:8 ~payload:7) in
  let chain_leaf = List.nth chain_nodes 8 in
  let tree_db = Database.create () in
  ok (G.define_schema tree_db);
  let tree_top = ok (W.component_tree tree_db ~depth:3 ~fanout:2) in
  let steel = Database.create () in
  ok (Steel.define_schema steel);
  let structure = ok (W.screwed_structure steel ~girders:8 ~bores_per_joint:8) in
  let screwing = List.hd (ok (Database.subrel_members steel structure "Screwings")) in
  let perm_db, perm_user = e4_db 16 in
  let perm_store = Database.store perm_db in
  let mg = Compo_txn.Transaction.create_manager view_store in
  let sel_db = Database.create () in
  ok (G.define_schema sel_db);
  for i = 1 to 1000 do
    let pi = ok (G.new_pin_interface sel_db ~pins:[ G.In; G.In; G.Out ]) in
    ignore (ok (G.new_interface sel_db ~pin_interface:pi ~length:(4 + (i mod 8)) ~width:2))
  done;
  let where = Expr.(path [ "Length" ] <= int 5) in
  let wal_dir = temp_journal_dir () in
  let j = ok (Compo_storage.Journal.open_dir wal_dir) in
  ok (Compo_storage.Journal.define_obj_type j part_type);
  let part = ok (Compo_storage.Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 0) ] ()) in
  let flip = ref 4 in
  let counter = ref 0 in
  let lm12, objs12 = e12_setup 16 in
  let tests =
    [
      Test.make ~name:"E1 view: transmitter update + read"
        (Staged.stage (fun () ->
             flip := if !flip = 4 then 5 else 4;
             ok (Database.set_attr view_db iface "Length" (Value.Int !flip));
             ignore (ok (Database.get_attr view_db impl0 "Length"))));
      Test.make ~name:"E1 copy: refresh 100 inheritors"
        (Staged.stage (fun () ->
             List.iter
               (fun impl -> ignore (ok (Inheritance.materialize view_store impl)))
               impls));
      Test.make ~name:"E2 read through 8 hops"
        (Staged.stage (fun () -> ignore (ok (Database.get_attr chain_db chain_leaf "Payload"))));
      Test.make ~name:"E3 expand tree d3 f2"
        (Staged.stage (fun () -> ignore (ok (Database.expand tree_db tree_top))));
      Test.make ~name:"E4 materialize 16 of 64 attrs"
        (Staged.stage (fun () -> ignore (ok (Inheritance.materialize perm_store perm_user))));
      Test.make ~name:"E5 validate screwing (8 bores)"
        (Staged.stage (fun () -> ignore (ok (Database.validate steel screwing))));
      Test.make ~name:"E6 transactional inherited read"
        (Staged.stage (fun () ->
             let t = Compo_txn.Transaction.begin_txn mg ~user:"bench" in
             ignore (ok (Compo_txn.Transaction.get_attr mg t impl0 "Length"));
             ok (Compo_txn.Transaction.commit mg t)));
      Test.make ~name:"E8 parse+elaborate gates.ddl"
        (Staged.stage (fun () ->
             let db = Database.create () in
             ok (Compo_ddl.Elaborate.load_string db Compo_scenarios.Paper_ddl.gates)));
      Test.make ~name:"E9 logged set_attr"
        (Staged.stage (fun () ->
             incr counter;
             ok (Compo_storage.Journal.set_attr j part "Weight" (Value.Int !counter))));
      Test.make ~name:"E10 select 1000 interfaces"
        (Staged.stage (fun () ->
             ignore (ok (Database.select sel_db ~cls:"Interfaces" ~where ()))));
      Test.make ~name:"E11 bill of materials (8 girders)"
        (Staged.stage (fun () -> ignore (ok (Database.bill_of_materials steel structure))));
      Test.make ~name:"E12 deadlock check (16 txns)"
        (Staged.stage (fun () ->
             match
               Compo_txn.Lock_manager.acquire lm12 ~txn:15 objs12.(0) Compo_txn.Lock.X
             with
             | Error _ -> ()
             | Ok _ -> failwith "expected deadlock"));
    ]
  in
  let grouped = Test.make_grouped ~name:"compo" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with Some (v :: _) -> v | _ -> nan
      in
      say "%-42s %12.1f ns/run" name ns)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Compo_storage.Journal.close j

(* ------------------------------------------------------------------ *)
(* Driver: experiment selection + flags                                *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E21", e21); ("E22", e22);
  ]

let usage () =
  say "usage: bench [E1 .. E18, E21, E22 | bechamel ...] [--smoke] [--no-resolve-cache]";
  say "             [--check-speedup MIN] [--check-scaling MIN]";
  say "             [--check-compiled-speedup MIN] [--check-delta-speedup MIN]";
  say "             [--no-bechamel]";
  exit 2

let () =
  (* honour the process-level switches the ablation matrix renders its
     cells into: COMPO_SLOW_MS/COMPO_TRACE_CAPACITY, COMPO_PROVENANCE,
     COMPO_FAILPOINTS (COMPO_NO_RESOLVE_CACHE, COMPO_NO_INDEX and
     COMPO_JOBS are read at module init / per select).  Without these
     calls an armed-failpoint or provenance-on cell would silently
     measure the same configuration as the baseline. *)
  Compo_obs.Trace.configure_from_env ();
  Compo_obs.Provenance.configure_from_env ();
  Compo_faults.Failpoint.configure_from_env ();
  (* COMPO_NO_COMPILE is read at Plan's module init (the matrix renders
     its compile axis through it); garbage dies here like the CLI *)
  (match Plan.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
      say "bench: %s" msg;
      exit 2);
  let check = ref None in
  let check_scaling = ref None in
  let check_compiled = ref None in
  let check_delta = ref None in
  let no_bechamel = ref false in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--no-resolve-cache" :: rest ->
        Resolve_cache.set_default_enabled false;
        parse rest
    | "--no-bechamel" :: rest ->
        no_bechamel := true;
        parse rest
    | "--check-speedup" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f ->
            check := Some f;
            parse rest
        | None -> usage ())
    | "--check-speedup" :: [] -> usage ()
    | "--check-scaling" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f ->
            check_scaling := Some f;
            parse rest
        | None -> usage ())
    | "--check-scaling" :: [] -> usage ()
    | "--check-compiled-speedup" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f ->
            check_compiled := Some f;
            parse rest
        | None -> usage ())
    | "--check-compiled-speedup" :: [] -> usage ()
    | "--check-delta-speedup" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f ->
            check_delta := Some f;
            parse rest
        | None -> usage ())
    | "--check-delta-speedup" :: [] -> usage ()
    | name :: rest ->
        let name = String.uppercase_ascii name in
        if String.equal name "BECHAMEL" then selected := "bechamel" :: !selected
        else if List.mem_assoc name experiments then
          selected := name :: !selected
        else usage ();
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run, run_bechamel =
    match List.rev !selected with
    | [] -> (List.map fst experiments, not !no_bechamel)
    | sel ->
        ( List.filter (fun n -> not (String.equal n "bechamel")) sel,
          List.mem "bechamel" sel && not !no_bechamel )
  in
  say "compo benchmark harness (experiments %s; see DESIGN.md section 4)"
    (String.concat " " to_run);
  List.iter (fun n -> with_snapshot n (List.assoc n experiments)) to_run;
  if run_bechamel then bechamel_group ();
  (match !check with
  | None -> ()
  | Some min_required -> (
      match !e15_results with
      | [] ->
          say "check-speedup: E15 did not run, nothing to gate on";
          exit 2
      | rows ->
          let worst =
            List.fold_left
              (fun acc (_, _, _, _, sp, _, _) -> min acc sp)
              infinity rows
          in
          if worst < min_required then begin
            say "check-speedup: FAIL - worst E15 speedup %.2fx < required %.2fx"
              worst min_required;
            exit 1
          end
          else
            say "check-speedup: OK - worst E15 speedup %.2fx >= %.2fx" worst
              min_required));
  (match !check_scaling with
  | None -> ()
  | Some min_required -> (
      (* the documented escape hatch: a scaling gate is meaningless when
         the machine cannot schedule 4 worker domains in parallel (CI
         runners are often 2-core), so the gate stands down — loudly —
         instead of failing on hardware grounds *)
      let cores = Compo_par.Pool.available_cores () in
      if cores < 4 then begin
        say
          "check-scaling: SKIP - only %d core(s) available, cannot judge \
           4-job scaling (gate requires >= 4)"
          cores;
        (* the SKIP is data, not just a log line: rewrite the report so
           the bench trajectory stays honest on small runners *)
        write_e18_json ~skipped:true ()
      end
      else
        match
          List.filter_map
            (fun (_, _, jobs, _, sp) -> if jobs = 4 then Some sp else None)
            !e18_results
        with
        | [] ->
            say "check-scaling: E18 did not run, nothing to gate on";
            exit 2
        | at4 ->
            let worst = List.fold_left min infinity at4 in
            if worst < min_required then begin
              say
                "check-scaling: FAIL - worst E18 speedup at 4 jobs %.2fx < \
                 required %.2fx"
                worst min_required;
              exit 1
            end
            else
              say "check-scaling: OK - worst E18 speedup at 4 jobs %.2fx >= %.2fx"
                worst min_required));
  (match !check_compiled with
  | None -> ()
  | Some min_required -> (
      (* single-thread ratio, so the gate needs no parallelism — but a
         1-core shared runner times too noisily to judge a perf ratio,
         so it stands down loudly (and the report records the SKIP) *)
      let cores = Compo_par.Pool.available_cores () in
      if cores < 2 then begin
        say
          "check-compiled-speedup: SKIP - only %d core(s) available, \
           timings too noisy to gate a perf ratio"
          cores;
        write_e21_json ~skipped:true ()
      end
      else
        match
          List.filter_map
            (fun (_, _, jobs, _, _, ratio) ->
              if jobs = 1 then Some ratio else None)
            !e21_results
        with
        | [] ->
            say "check-compiled-speedup: E21 did not run, nothing to gate on";
            exit 2
        | at1 ->
            let worst = List.fold_left min infinity at1 in
            if worst < min_required then begin
              say
                "check-compiled-speedup: FAIL - compiled/interpreted \
                 single-thread ratio %.2fx < required %.2fx"
                worst min_required;
              exit 1
            end
            else
              say
                "check-compiled-speedup: OK - compiled/interpreted \
                 single-thread ratio %.2fx >= %.2fx"
                worst min_required));
  (match !check_delta with
  | None -> ()
  | Some min_required -> (
      (* same hardware caveat as the compiled gate: a 1-core shared
         runner times too noisily to judge a perf ratio, so the gate
         stands down loudly and the report records the SKIP *)
      let cores = Compo_par.Pool.available_cores () in
      if cores < 2 then begin
        say
          "check-delta-speedup: SKIP - only %d core(s) available, timings \
           too noisy to gate a perf ratio"
          cores;
        write_e22_json ~skipped:true ()
      end
      else
        match
          List.filter_map
            (fun (_, _, pct, _, _, ratio) ->
              if pct = 20 then Some ratio else None)
            !e22_results
        with
        | [] ->
            say "check-delta-speedup: E22 did not run, nothing to gate on";
            exit 2
        | mixed ->
            let worst = List.fold_left min infinity mixed in
            if worst < min_required then begin
              say
                "check-delta-speedup: FAIL - delta/full-rebuild ratio at \
                 20%% writes %.2fx < required %.2fx"
                worst min_required;
              exit 1
            end
            else
              say
                "check-delta-speedup: OK - delta/full-rebuild ratio at \
                 20%% writes %.2fx >= %.2fx"
                worst min_required));
  say "";
  say "bench done."
