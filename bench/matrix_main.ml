(* Ablation-matrix driver: enumerate configuration cells over the
   kernel's COMPO_* switches, run the curated bench suite once per cell
   in a fresh subprocess, and write every cell's outcome — ok / failed
   / skipped-with-reason, wall time, key metrics — as first-class rows
   in BENCH_matrix.json (experiment E20).

   Usage: matrix_main [--bench PATH] [--out FILE] [--suite E2,E9,...]
                      [--smoke] [--only SUBSTR] [--list] [--keep-dirs]

   `make matrix-check` runs this in smoke mode and then gates the fresh
   matrix against the committed baseline with `compo benchdiff`. *)

module M = Compo_benchmatrix

let say fmt = Format.printf (fmt ^^ "@.")

let usage () =
  say "usage: matrix_main [--bench PATH] [--out FILE] [--suite E2,E9,...]";
  say "                   [--smoke] [--only SUBSTR] [--list] [--keep-dirs]";
  exit 2

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let () =
  let bench = ref "_build/default/bench/main.exe" in
  let out = ref "BENCH_matrix.json" in
  let suite = ref [ "E2"; "E9"; "E10"; "E15" ] in
  let smoke = ref false in
  let only = ref None in
  let list_only = ref false in
  let keep_dirs = ref false in
  let rec parse = function
    | [] -> ()
    | "--bench" :: path :: rest ->
        bench := path;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--suite" :: csv :: rest ->
        suite :=
          String.split_on_char ',' csv
          |> List.map String.trim
          |> List.filter (fun s -> s <> "");
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--only" :: substr :: rest ->
        only := Some substr;
        parse rest
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--keep-dirs" :: rest ->
        keep_dirs := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cells =
    let all = M.Cell.default_cells () in
    match !only with
    | None -> all
    | Some substr ->
        List.filter (fun c -> contains_substring (M.Cell.id c) substr) all
  in
  if cells = [] then begin
    say "matrix: no cells match the --only filter";
    exit 2
  end;
  if !list_only then begin
    List.iter
      (fun c ->
        say "%-52s %s" (M.Cell.id c)
          (String.concat " "
             (List.map (fun (k, v) -> k ^ "=" ^ v) (M.Cell.env c))))
      cells;
    exit 0
  end;
  say "ablation matrix: %d cell(s), suite %s, %d core(s) available"
    (List.length cells)
    (String.concat " " !suite)
    (Compo_par.Pool.available_cores ());
  let config =
    {
      M.Runner.bench_exe = !bench;
      smoke = !smoke;
      suite = !suite;
      keep_dirs = !keep_dirs;
      log = (fun line -> say "%s" line);
    }
  in
  let report = M.Runner.run config cells in
  M.Report.write_file !out report;
  let count p = List.length (List.filter p report.M.Report.m_rows) in
  let ok = count (fun r -> r.M.Report.r_outcome = M.Report.Ok_run) in
  let failed =
    count (fun r ->
        match r.M.Report.r_outcome with M.Report.Failed _ -> true | _ -> false)
  in
  let skipped =
    count (fun r ->
        match r.M.Report.r_outcome with M.Report.Skipped _ -> true | _ -> false)
  in
  say "";
  say "wrote %s (%d rows: %d ok, %d failed, %d skipped)" !out
    (List.length report.M.Report.m_rows)
    ok failed skipped;
  (* failed cells are recorded data and benchdiff gates on them; only a
     matrix with no successful cell at all is a harness failure here *)
  if ok = 0 then begin
    say "matrix: every runnable cell failed — check --bench %s" !bench;
    exit 1
  end
