(** Configuration cells of the ablation matrix.

    A cell is one point in the configuration space the kernel already
    exposes through environment switches: resolve cache on/off, index
    access paths on/off, compiled query engine on/off, incremental plan
    maintenance (delta) on/off, worker-domain count, provenance
    recording on/off, failpoint machinery
    armed/unarmed.  The matrix runner
    executes the same curated bench suite once per cell in a fresh
    subprocess, so each axis's contribution is measured, not asserted
    (docs/PERFORMANCE.md, "Ablation matrix").

    Axis order is fixed (cache, index, compile, delta, jobs, prov, fp) and cell ids are
    derived from it, so ids are stable across runs and machines —
    [compo benchdiff] joins committed and fresh matrices on them. *)

type axis = {
  ax_name : string;  (** short id component, e.g. ["cache"] *)
  ax_values : string list;  (** e.g. [["on"; "off"]] *)
}

type t
(** One configuration cell: a value for every axis it mentions. *)

val make : (string * string) list -> t
(** Cell from [(axis, value)] pairs; pairs are re-sorted into canonical
    axis order (unknown axes last, alphabetically). *)

val axes : t -> (string * string) list
(** Canonically ordered [(axis, value)] pairs. *)

val id : t -> string
(** Stable identifier, e.g.
    ["cache=on index=on compile=on delta=on jobs=4 prov=off fp=off"]. *)

val value : t -> string -> string option
(** The cell's value on one axis. *)

val env : t -> (string * string) list
(** Environment rendering: the [COMPO_*] variables that realise the
    cell.  Only non-default values emit a variable, except [COMPO_JOBS]
    which is always explicit so a cell never inherits the caller's. *)

val required_cores : t -> int
(** Cores the cell needs to be an honest measurement: its job count.
    The runner skips (with a recorded reason) cells that need more
    cores than the machine has — a 4-domain pool on one core measures
    scheduler contention, not scaling. *)

val product : axis list -> t list
(** Cartesian product over the axes, in axis-major order. *)

val dedup : t list -> t list
(** Drop cells with duplicate ids, keeping first occurrences. *)

val default_cells : unit -> t list
(** The curated enumeration (27 cells): the full
    cache x index x compile x prov product at [jobs=1], a jobs in {2,4}
    sweep crossed with the cache and compile axes, a
    failpoints-armed flip of the baseline, and delta-off flips of the
    baseline at [jobs=1] and [jobs=4] (compiled engine forced onto the
    full-rebuild path via [COMPO_NO_DELTA]). *)

val failpoint_spec : string
(** The [COMPO_FAILPOINTS] spec the armed axis uses: a WAL-append site
    armed with an effectively-infinite countdown, so every append pays
    the armed-site check but the fault never fires. *)
