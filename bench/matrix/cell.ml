type axis = { ax_name : string; ax_values : string list }

(* canonical axis order; ids and tables render in this order *)
let canonical = [ "cache"; "index"; "compile"; "delta"; "jobs"; "prov"; "fp" ]

let axis_rank name =
  let rec go i = function
    | [] -> (List.length canonical, name)
    | n :: rest -> if String.equal n name then (i, "") else go (i + 1) rest
  in
  go 0 canonical

type t = { c_axes : (string * string) list }

let make pairs =
  {
    c_axes =
      List.stable_sort
        (fun (a, _) (b, _) -> compare (axis_rank a) (axis_rank b))
        pairs;
  }

let axes t = t.c_axes

let id t =
  String.concat " " (List.map (fun (a, v) -> a ^ "=" ^ v) t.c_axes)

let value t name = List.assoc_opt name t.c_axes

(* a countdown no bench run can exhaust: the site stays armed (every
   hit pays the check) and the fault never fires *)
let failpoint_spec = "wal.append.before_frame=error@1000000000"

let env t =
  List.concat_map
    (fun (axis, v) ->
      match (axis, v) with
      | "cache", "off" -> [ ("COMPO_NO_RESOLVE_CACHE", "1") ]
      | "cache", _ -> []
      | "index", "off" -> [ ("COMPO_NO_INDEX", "1") ]
      | "index", _ -> []
      | "compile", "off" -> [ ("COMPO_NO_COMPILE", "1") ]
      | "compile", _ -> []
      | "delta", "off" -> [ ("COMPO_NO_DELTA", "1") ]
      | "delta", _ -> []
      | "jobs", n -> [ ("COMPO_JOBS", n) ]
      | "prov", "on" -> [ ("COMPO_PROVENANCE", "1") ]
      | "prov", _ -> []
      | "fp", "armed" -> [ ("COMPO_FAILPOINTS", failpoint_spec) ]
      | "fp", _ -> []
      | _, _ -> [])
    t.c_axes

let required_cores t =
  match Option.bind (value t "jobs") int_of_string_opt with
  | Some n when n > 1 -> n
  | Some _ | None -> 1

let product axes_list =
  let rec go = function
    | [] -> [ [] ]
    | ax :: rest ->
        let tails = go rest in
        List.concat_map
          (fun v -> List.map (fun tail -> (ax.ax_name, v) :: tail) tails)
          ax.ax_values
  in
  List.map make (go axes_list)

let dedup cells =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      let k = id c in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    cells

let default_cells () =
  let onoff name = { ax_name = name; ax_values = [ "on"; "off" ] } in
  (* the main ablation block: every cache x index x compile x prov
     combination, sequential, failpoints unarmed *)
  let base =
    product
      [
        onoff "cache";
        onoff "index";
        onoff "compile";
        { ax_name = "delta"; ax_values = [ "on" ] };
        { ax_name = "jobs"; ax_values = [ "1" ] };
        { ax_name = "prov"; ax_values = [ "off"; "on" ] };
        { ax_name = "fp"; ax_values = [ "off" ] };
      ]
  in
  (* the multicore block: jobs in {2,4} crossed with the cache and
     compile axes — the headline parallel-select claim under both
     engines, skipped loudly (not silently) on runners with fewer cores
     than jobs *)
  let jobs_sweep =
    product
      [
        onoff "cache";
        { ax_name = "index"; ax_values = [ "on" ] };
        onoff "compile";
        { ax_name = "delta"; ax_values = [ "on" ] };
        { ax_name = "jobs"; ax_values = [ "2"; "4" ] };
        { ax_name = "prov"; ax_values = [ "off" ] };
        { ax_name = "fp"; ax_values = [ "off" ] };
      ]
  in
  (* single flip: failpoint machinery armed on the baseline config,
     measuring what an armed-but-never-firing site costs *)
  let fp_armed =
    [
      make
        [
          ("cache", "on"); ("index", "on"); ("compile", "on");
          ("delta", "on"); ("jobs", "1"); ("prov", "off"); ("fp", "armed");
        ];
    ]
  in
  (* delta flips: the compiled engine with incremental plan maintenance
     disabled (every change-log window falls back to a full epoch
     rebuild), sequential and at the headline 4-job point — what the
     delta machinery buys each configuration *)
  let delta_off =
    List.map
      (fun jobs ->
        make
          [
            ("cache", "on"); ("index", "on"); ("compile", "on");
            ("delta", "off"); ("jobs", jobs); ("prov", "off"); ("fp", "off");
          ])
      [ "1"; "4" ]
  in
  dedup (base @ jobs_sweep @ fp_armed @ delta_off)
