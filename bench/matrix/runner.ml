module Metrics = Compo_obs.Metrics
module J = Compo_obs.Json_min

type config = {
  bench_exe : string;
  smoke : bool;
  suite : string list;
  keep_dirs : bool;
  log : string -> unit;
}

let key_metrics =
  [
    "inheritance.cache.hit";
    "inheritance.cache.miss";
    "index.lookup";
    "ordered_index.lookup";
    "par.tasks";
    "eval.node";
    "faults.fired";
  ]

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)

let temp_dir () =
  let dir = Filename.temp_file "compo-matrix" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

(* cells write flat files only (reports, snapshots, the log) *)
let remove_dir dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Environment: scrub inherited COMPO_*, then apply the cell's own      *)

let cell_environment cell =
  let inherited =
    Unix.environment () |> Array.to_list
    |> List.filter (fun binding ->
           not (String.length binding >= 6 && String.sub binding 0 6 = "COMPO_"))
  in
  let overrides =
    ("COMPO_BENCH_METRICS", "1") :: Cell.env cell
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
  in
  Array.of_list (inherited @ overrides)

(* ------------------------------------------------------------------ *)
(* Harvesting: key metrics from the cell's obs snapshots + per-
   experiment reports                                                  *)

(* merge by kind: counter traffic sums across experiments, gauges keep
   their high-water mark, histograms contribute their counts *)
let merge_snapshots snapshots =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, metric) ->
         let v = Metrics.metric_scalar metric in
         let merged =
           match (Hashtbl.find_opt tbl name, metric) with
           | None, _ -> v
           | Some prev, Metrics.Gauge _ -> Float.max prev v
           | Some prev, _ -> prev +. v
         in
         Hashtbl.replace tbl name merged))
    snapshots;
  tbl

let harvest_metrics dir suite =
  let snapshots =
    List.filter_map
      (fun exp ->
        let path = Filename.concat dir (Printf.sprintf "BENCH_%s.metrics.json" exp) in
        if Sys.file_exists path then
          match Metrics.read_snapshot_file path with
          | Ok snap -> Some snap
          | Error _ -> None
        else None)
      suite
  in
  let merged = merge_snapshots snapshots in
  let keys =
    List.filter_map
      (fun name ->
        Option.map (fun v -> (name, v)) (Hashtbl.find_opt merged name))
      key_metrics
  in
  (* E15's report carries the cached/uncached speedup — a ratio, so it
     diffs meaningfully across machines of different speeds *)
  let e15 =
    let path = Filename.concat dir "BENCH_resolve_cache.json" in
    if Sys.file_exists path then
      match J.parse_file path with
      | Ok root -> (
          match Option.bind (J.member "min_speedup" root) J.to_float with
          | Some sp -> [ ("e15.min_speedup", sp) ]
          | None -> [])
      | Error _ -> []
    else []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (keys @ e15)

(* last non-empty line of the cell log: the diagnostic that travels in
   a Failed outcome *)
let last_log_line path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
      String.split_on_char '\n' contents
      |> List.filter (fun l -> String.trim l <> "")
      |> List.fold_left (fun _ l -> Some (String.trim l)) None
  | exception Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* One cell                                                            *)

let run_cell config cell =
  let finish outcome wall metrics =
    {
      Report.r_id = Cell.id cell;
      r_axes = Cell.axes cell;
      r_outcome = outcome;
      r_wall_s = wall;
      r_metrics = metrics;
    }
  in
  let cores = Compo_par.Pool.available_cores () in
  let need = Cell.required_cores cell in
  if need > cores then
    finish
      (Report.Skipped
         (Printf.sprintf "cell needs %d cores, runner has %d" need cores))
      Float.nan []
  else begin
    let dir = temp_dir () in
    let log_path = Filename.concat dir "cell.log" in
    let bench =
      if Filename.is_relative config.bench_exe then
        Filename.concat (Sys.getcwd ()) config.bench_exe
      else config.bench_exe
    in
    let argv =
      Array.of_list
        ((bench :: (if config.smoke then [ "--smoke" ] else []))
        @ ("--no-bechamel" :: config.suite))
    in
    let outcome, wall =
      let log_fd =
        Unix.openfile log_path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o600
      in
      let t0 = Unix.gettimeofday () in
      match
        let pid =
          let cwd = Sys.getcwd () in
          Sys.chdir dir;
          Fun.protect
            ~finally:(fun () -> Sys.chdir cwd)
            (fun () ->
              Unix.create_process_env bench argv (cell_environment cell)
                Unix.stdin log_fd log_fd)
        in
        Unix.close log_fd;
        Unix.waitpid [] pid
      with
      | _, Unix.WEXITED 0 -> (Report.Ok_run, Unix.gettimeofday () -. t0)
      | _, status ->
          let wall = Unix.gettimeofday () -. t0 in
          let status_str =
            match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
            | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
          in
          let detail =
            match last_log_line log_path with
            | Some line -> status_str ^ ": " ^ line
            | None -> status_str
          in
          (Report.Failed detail, wall)
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close log_fd with Unix.Unix_error _ -> ());
          ( Report.Failed
              (Printf.sprintf "could not spawn %s: %s" bench
                 (Unix.error_message err)),
            0.0 )
    in
    let metrics =
      match outcome with
      | Report.Ok_run -> harvest_metrics dir config.suite
      | _ -> []
    in
    if config.keep_dirs then
      config.log (Printf.sprintf "  kept scratch dir %s" dir)
    else remove_dir dir;
    finish outcome wall metrics
  end

let run config cells =
  let rows =
    List.map
      (fun cell ->
        let row = run_cell config cell in
        config.log
          (Printf.sprintf "%-52s %-8s %s" (Cell.id cell)
             (Report.outcome_to_string row.Report.r_outcome)
             (match row.Report.r_outcome with
             | Report.Ok_run -> Printf.sprintf "%6.2fs" row.Report.r_wall_s
             | Report.Failed r | Report.Skipped r -> r));
        row)
      cells
  in
  {
    Report.m_smoke = config.smoke;
    m_cores = Compo_par.Pool.available_cores ();
    m_suite = config.suite;
    m_rows = rows;
  }
