(** Executes matrix cells: one fresh bench subprocess per cell.

    Each cell runs the same curated experiment suite in its own
    subprocess (a fresh process is the only way the [COMPO_*] init-time
    switches — resolve cache default, index planning, failpoint arming
    — are honestly applied) and in its own scratch directory, so cell
    runs never clobber the repo's committed [BENCH_*.json] files.  The
    runner scrubs every inherited [COMPO_*] variable before applying
    the cell's rendering: a cell's environment is exactly its axes.

    Cells whose job count exceeds the machine's cores are not run:
    they are recorded as skipped with the reason, because timing a
    4-domain pool on one core measures scheduler contention, not
    scaling.  The skip travels in the report and is rendered loudly
    downstream. *)

type config = {
  bench_exe : string;  (** path to [bench/main.exe]; made absolute *)
  smoke : bool;  (** pass [--smoke] to every cell *)
  suite : string list;  (** experiments each cell runs, e.g. [["E2"]] *)
  keep_dirs : bool;  (** keep per-cell scratch dirs (debugging) *)
  log : string -> unit;  (** progress line sink *)
}

val key_metrics : string list
(** Registry metrics harvested per cell from the subprocess's obs
    snapshots ([COMPO_BENCH_METRICS=1] companions): cache hit/miss
    traffic, index lookups, pool tasks, evaluator node count, fired
    failpoints (0 proves an armed cell's site never actually fired).
    [eval.node] is machine-independent for a fixed suite, so it doubles
    as a behavioural invariant across runs. *)

val run_cell : config -> Cell.t -> Report.row

val run : config -> Cell.t list -> Report.t
(** {!run_cell} over the list, in order, with progress lines. *)
