module J = Compo_obs.Json_min

type outcome = Ok_run | Failed of string | Skipped of string

type row = {
  r_id : string;
  r_axes : (string * string) list;
  r_outcome : outcome;
  r_wall_s : float;
  r_metrics : (string * float) list;
}

type t = {
  m_smoke : bool;
  m_cores : int;
  m_suite : string list;
  m_rows : row list;
}

let outcome_to_string = function
  | Ok_run -> "ok"
  | Failed _ -> "failed"
  | Skipped _ -> "skipped"

let find_row t id =
  List.find_opt (fun r -> String.equal r.r_id id) t.m_rows

(* ------------------------------------------------------------------ *)
(* Writing: the same hand-pretty-printed style as the other BENCH_*
   reports — one row object per line, stable field order. *)

let bprint_row b row =
  Printf.bprintf b "    { \"id\": %s,\n" (J.escape_string row.r_id);
  Printf.bprintf b "      \"axes\": { %s },\n"
    (String.concat ", "
       (List.map
          (fun (a, v) -> Printf.sprintf "%s: %s" (J.escape_string a) (J.escape_string v))
          row.r_axes));
  Printf.bprintf b "      \"outcome\": %s,"
    (J.escape_string (outcome_to_string row.r_outcome));
  (match row.r_outcome with
  | Ok_run -> ()
  | Failed reason | Skipped reason ->
      Printf.bprintf b " \"reason\": %s," (J.escape_string reason));
  if Float.is_nan row.r_wall_s then Buffer.add_string b " \"wall_s\": null,\n"
  else Printf.bprintf b " \"wall_s\": %.3f,\n" row.r_wall_s;
  Printf.bprintf b "      \"metrics\": { %s } }"
    (String.concat ", "
       (List.map
          (fun (name, v) ->
            Printf.sprintf "%s: %s" (J.escape_string name)
              (if Float.is_nan v then "null" else J.number_to_string v))
          row.r_metrics))

let write_file path t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"E20\",\n";
  Buffer.add_string b
    "  \"description\": \"ablation matrix: curated bench suite run once \
     per configuration cell (resolve cache x index x jobs x provenance \
     x failpoints), outcomes and skips as first-class rows\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" t.m_smoke;
  Printf.bprintf b "  \"cores\": %d,\n" t.m_cores;
  Printf.bprintf b "  \"suite\": [%s],\n"
    (String.concat ", " (List.map J.escape_string t.m_suite));
  Buffer.add_string b "  \"rows\": [\n";
  let n = List.length t.m_rows in
  List.iteri
    (fun i row ->
      bprint_row b row;
      Buffer.add_string b (if i = n - 1 then "\n" else ",\n"))
    t.m_rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let ( let* ) = Result.bind

let row_of_json j =
  let str field = Option.bind (J.member field j) J.to_string in
  let* id =
    match str "id" with
    | Some id -> Ok id
    | None -> Error "matrix row without an id"
  in
  let axes =
    match J.member "axes" j with
    | Some a ->
        List.filter_map
          (fun (k, v) -> Option.map (fun v -> (k, v)) (J.to_string v))
          (J.obj_fields a)
    | None -> []
  in
  let reason = Option.value ~default:"" (str "reason") in
  let* outcome =
    match str "outcome" with
    | Some "ok" -> Ok Ok_run
    | Some "failed" -> Ok (Failed reason)
    | Some "skipped" -> Ok (Skipped reason)
    | Some other -> Error (Printf.sprintf "row %s: unknown outcome %S" id other)
    | None -> Error (Printf.sprintf "row %s: no outcome" id)
  in
  let wall_s =
    match Option.bind (J.member "wall_s" j) J.to_float with
    | Some f -> f
    | None -> Float.nan
  in
  let metrics =
    match J.member "metrics" j with
    | Some m ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (J.to_float v))
          (J.obj_fields m)
    | None -> []
  in
  Ok { r_id = id; r_axes = axes; r_outcome = outcome; r_wall_s = wall_s;
       r_metrics = metrics }

(* every error names the file: benchdiff loads two matrices, and "row
   without an id" alone does not say which one is broken *)
let read_file path =
  Result.map_error (fun e -> path ^ ": " ^ e)
  @@
  let* root = J.parse_file path in
  let bool_field field =
    match J.member field root with Some (J.Bool b) -> b | _ -> false
  in
  let int_field field =
    match Option.bind (J.member field root) J.to_float with
    | Some f -> int_of_float f
    | None -> 0
  in
  let suite =
    match J.member "suite" root with
    | Some s -> List.filter_map J.to_string (J.to_list s)
    | None -> []
  in
  let* rows =
    match J.member "rows" root with
    | None -> Error "no \"rows\" array"
    | Some rows ->
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* row = row_of_json j in
            Ok (row :: acc))
          (Ok []) (J.to_list rows)
        |> Result.map List.rev
  in
  Ok
    {
      m_smoke = bool_field "smoke";
      m_cores = int_field "cores";
      m_suite = suite;
      m_rows = rows;
    }
