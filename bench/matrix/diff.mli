(** [compo benchdiff]: joins a fresh matrix against the committed
    baseline on cell ids and classifies every cell.

    Gating verdicts (nonzero exit): a cell that ran ok in the baseline
    and now fails, a cell missing from the fresh matrix, and a wall-time
    regression beyond the per-cell relative threshold.  New skips are
    loud — they head their own section in both renderings — but only
    gate when [fail_on_new_skip] is set, because a smaller runner
    legitimately skips multicore cells that the baseline machine ran
    (that visibility-without-redness is the honest part of the gate).

    Wall-time comparison is deliberately coarse ([ratio] x baseline,
    and only above [floor] seconds): the committed baseline and a CI
    runner are different machines, so tight time thresholds would gate
    on hardware.  Outcome changes and the machine-independent metrics
    ([eval.node], the E15 speedup ratio) are the sharp signals. *)

type thresholds = {
  time_ratio : float;  (** fresh/base ratio that flags a regression *)
  time_floor_s : float;  (** ignore cells faster than this, both sides *)
  metric_ratio : float;
      (** relative delta above which a key metric is listed as changed
          (informational) *)
}

val default_thresholds : thresholds
(** [ratio 3.0], [floor 0.5s], [metric 0.10]. *)

type verdict =
  | Same  (** no change worth reporting (includes still-failing and
              still-skipped cells) *)
  | Regression of string  (** ok in baseline, failed now *)
  | Time_regression  (** both ok, fresh wall time beyond threshold *)
  | Improvement  (** both ok, fresh faster beyond threshold *)
  | New_skip of string  (** ok in baseline, skipped now (reason) *)
  | Unskipped  (** skipped or failed in baseline, ok now *)
  | Missing_cell  (** in baseline, absent from fresh *)
  | New_cell  (** in fresh, absent from baseline *)

type entry = {
  e_id : string;
  e_verdict : verdict;
  e_base : Report.row option;
  e_fresh : Report.row option;
  e_metric_notes : string list;
      (** per-metric relative changes beyond [metric_ratio] *)
}

type result = {
  entries : entry list;  (** baseline order, then fresh-only cells *)
  regressions : int;  (** [Regression] + [Time_regression] + [Missing_cell] *)
  new_skips : int;
  improvements : int;  (** [Improvement] + [Unskipped] *)
  fresh_skips : (string * string) list;
      (** every skipped cell of the fresh matrix (id, reason) — new or
          not, these render loudly *)
}

val compare_matrices :
  ?thresholds:thresholds -> baseline:Report.t -> fresh:Report.t -> unit -> result

val exit_code : ?fail_on_new_skip:bool -> result -> int
(** 0 clean, 1 on regressions (or new skips when requested). *)

val render_table : result -> string
(** Aligned text table, one line per cell, regressions flagged. *)

val render_markdown :
  baseline_name:string -> fresh_name:string -> result -> string
(** GitHub-flavoured markdown for [$GITHUB_STEP_SUMMARY]: verdict
    counts, the cell table, and a loud skipped-cells section. *)
