(** The [BENCH_matrix.json] report: one row per configuration cell.

    Outcomes are first-class data: a skipped cell carries its reason in
    the report (and is rendered loudly by [compo benchdiff] and the CI
    step summary) instead of disappearing into a log line.  The
    committed copy at the repo root is the baseline [compo benchdiff]
    gates fresh runs against. *)

type outcome =
  | Ok_run
  | Failed of string  (** exit status + last diagnostic line *)
  | Skipped of string  (** reason, e.g. ["cell needs 4 cores, have 1"] *)

type row = {
  r_id : string;  (** {!Cell.id} of the configuration *)
  r_axes : (string * string) list;
  r_outcome : outcome;
  r_wall_s : float;  (** subprocess wall time; [nan] when skipped *)
  r_metrics : (string * float) list;
      (** key metrics harvested from the cell's obs snapshots and
          per-experiment reports (sorted by name) *)
}

type t = {
  m_smoke : bool;
  m_cores : int;  (** cores of the machine that produced the matrix *)
  m_suite : string list;  (** experiments each cell ran *)
  m_rows : row list;
}

val outcome_to_string : outcome -> string
(** ["ok"], ["failed"] or ["skipped"] (reasons travel separately). *)

val find_row : t -> string -> row option
val write_file : string -> t -> unit
val read_file : string -> (t, string) result
