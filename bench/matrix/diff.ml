type thresholds = {
  time_ratio : float;
  time_floor_s : float;
  metric_ratio : float;
}

let default_thresholds =
  { time_ratio = 3.0; time_floor_s = 0.5; metric_ratio = 0.10 }

type verdict =
  | Same
  | Regression of string
  | Time_regression
  | Improvement
  | New_skip of string
  | Unskipped
  | Missing_cell
  | New_cell

type entry = {
  e_id : string;
  e_verdict : verdict;
  e_base : Report.row option;
  e_fresh : Report.row option;
  e_metric_notes : string list;
}

type result = {
  entries : entry list;
  regressions : int;
  new_skips : int;
  improvements : int;
  fresh_skips : (string * string) list;
}

(* relative changes in the harvested key metrics; informational, the
   sharp ones (eval.node, e15.min_speedup) are machine-independent *)
let metric_notes thresholds base fresh =
  List.filter_map
    (fun (name, bv) ->
      match List.assoc_opt name fresh.Report.r_metrics with
      | None -> None
      | Some fv ->
          let denom = Float.max (Float.abs bv) 1e-9 in
          let delta = (fv -. bv) /. denom in
          if Float.abs delta > thresholds.metric_ratio then
            Some
              (Printf.sprintf "%s %s%.0f%% (%s -> %s)" name
                 (if delta > 0.0 then "+" else "")
                 (100.0 *. delta)
                 (Compo_obs.Json_min.number_to_string bv)
                 (Compo_obs.Json_min.number_to_string fv))
          else None)
    base.Report.r_metrics

let judge thresholds (base : Report.row) (fresh : Report.row) =
  match (base.r_outcome, fresh.r_outcome) with
  | Report.Ok_run, Report.Ok_run ->
      let b = base.r_wall_s and f = fresh.r_wall_s in
      if
        (not (Float.is_nan b)) && (not (Float.is_nan f))
        && f > b *. thresholds.time_ratio
        && f > thresholds.time_floor_s
      then Time_regression
      else if
        (not (Float.is_nan b)) && (not (Float.is_nan f))
        && b > f *. thresholds.time_ratio
        && b > thresholds.time_floor_s
      then Improvement
      else Same
  | Report.Ok_run, Report.Failed reason -> Regression ("ok -> failed (" ^ reason ^ ")")
  | Report.Ok_run, Report.Skipped reason -> New_skip reason
  | (Report.Failed _ | Report.Skipped _), Report.Ok_run -> Unskipped
  | Report.Failed _, (Report.Failed _ | Report.Skipped _)
  | Report.Skipped _, (Report.Failed _ | Report.Skipped _) ->
      Same

let compare_matrices ?(thresholds = default_thresholds) ~baseline ~fresh () =
  let from_baseline =
    List.map
      (fun (base : Report.row) ->
        match Report.find_row fresh base.r_id with
        | None ->
            {
              e_id = base.r_id;
              e_verdict = Missing_cell;
              e_base = Some base;
              e_fresh = None;
              e_metric_notes = [];
            }
        | Some f ->
            {
              e_id = base.r_id;
              e_verdict = judge thresholds base f;
              e_base = Some base;
              e_fresh = Some f;
              e_metric_notes =
                (match (base.r_outcome, f.r_outcome) with
                | Report.Ok_run, Report.Ok_run -> metric_notes thresholds base f
                | _ -> []);
            })
      baseline.Report.m_rows
  in
  let fresh_only =
    List.filter_map
      (fun (f : Report.row) ->
        match Report.find_row baseline f.r_id with
        | Some _ -> None
        | None ->
            Some
              {
                e_id = f.r_id;
                e_verdict = New_cell;
                e_base = None;
                e_fresh = Some f;
                e_metric_notes = [];
              })
      fresh.Report.m_rows
  in
  let entries = from_baseline @ fresh_only in
  let count p = List.length (List.filter p entries) in
  {
    entries;
    regressions =
      count (fun e ->
          match e.e_verdict with
          | Regression _ | Time_regression | Missing_cell -> true
          | _ -> false);
    new_skips = count (fun e -> match e.e_verdict with New_skip _ -> true | _ -> false);
    improvements =
      count (fun e ->
          match e.e_verdict with Improvement | Unskipped -> true | _ -> false);
    fresh_skips =
      List.filter_map
        (fun (f : Report.row) ->
          match f.r_outcome with
          | Report.Skipped reason -> Some (f.r_id, reason)
          | _ -> None)
        fresh.Report.m_rows;
  }

let exit_code ?(fail_on_new_skip = false) result =
  if result.regressions > 0 then 1
  else if fail_on_new_skip && result.new_skips > 0 then 1
  else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let verdict_label = function
  | Same -> "ok"
  | Regression _ -> "REGRESSION"
  | Time_regression -> "TIME-REGRESSION"
  | Improvement -> "improvement"
  | New_skip _ -> "NEW-SKIP"
  | Unskipped -> "unskipped"
  | Missing_cell -> "MISSING-CELL"
  | New_cell -> "new-cell"

let side_cell = function
  | None -> "-"
  | Some (r : Report.row) -> (
      match r.r_outcome with
      | Report.Ok_run ->
          if Float.is_nan r.r_wall_s then "ok" else Printf.sprintf "%.2fs" r.r_wall_s
      | Report.Failed _ -> "failed"
      | Report.Skipped _ -> "skip")

let entry_note e =
  let verdict_note =
    match e.e_verdict with
    | Regression reason -> [ reason ]
    | New_skip reason -> [ reason ]
    | _ -> []
  in
  String.concat "; " (verdict_note @ e.e_metric_notes)

let render_table result =
  let b = Buffer.create 2048 in
  Printf.bprintf b "%-16s %-52s %9s %9s  %s\n" "verdict" "cell" "baseline"
    "fresh" "notes";
  List.iter
    (fun e ->
      Printf.bprintf b "%-16s %-52s %9s %9s  %s\n"
        (verdict_label e.e_verdict)
        e.e_id (side_cell e.e_base) (side_cell e.e_fresh) (entry_note e))
    result.entries;
  Printf.bprintf b
    "\n%d cell(s): %d regression(s), %d new skip(s), %d improvement(s)\n"
    (List.length result.entries)
    result.regressions result.new_skips result.improvements;
  (match result.fresh_skips with
  | [] -> ()
  | skips ->
      Printf.bprintf b "\nskipped cells (%d) — not measured, not silent:\n"
        (List.length skips);
      List.iter
        (fun (id, reason) -> Printf.bprintf b "  %-52s %s\n" id reason)
        skips);
  Buffer.contents b

let render_markdown ~baseline_name ~fresh_name result =
  let b = Buffer.create 2048 in
  Printf.bprintf b "### Bench matrix: `%s` vs `%s`\n\n" baseline_name fresh_name;
  Printf.bprintf b
    "%d cell(s) — **%d regression(s)**, %d new skip(s), %d improvement(s)\n\n"
    (List.length result.entries)
    result.regressions result.new_skips result.improvements;
  Buffer.add_string b "| verdict | cell | baseline | fresh | notes |\n";
  Buffer.add_string b "|---|---|---|---|---|\n";
  List.iter
    (fun e ->
      let flag =
        match e.e_verdict with
        | Regression _ | Time_regression | Missing_cell -> "🔴 "
        | New_skip _ -> "⚠️ "
        | Improvement | Unskipped -> "🟢 "
        | Same | New_cell -> ""
      in
      Printf.bprintf b "| %s%s | `%s` | %s | %s | %s |\n" flag
        (verdict_label e.e_verdict)
        e.e_id (side_cell e.e_base) (side_cell e.e_fresh) (entry_note e))
    result.entries;
  (match result.fresh_skips with
  | [] -> ()
  | skips ->
      Printf.bprintf b
        "\n#### ⚠️ %d cell(s) SKIPPED on this runner\n\n\
         Skips are recorded data, not green checkmarks — these \
         configurations were **not measured**:\n\n"
        (List.length skips);
      List.iter
        (fun (id, reason) -> Printf.bprintf b "- `%s` — %s\n" id reason)
        skips);
  Buffer.contents b
