(* Compiled flat query plans: adjacency registry + closure compilation +
   materialized resolved-value columns.  See plan.mli for the contract;
   the load-bearing invariant throughout is that a compiled scan keeps a
   row iff the interpreted scan would keep it (same order, same rows),
   which the 3-way differential oracle in test/test_par_diff.ml checks
   over hundreds of random schemas. *)

module Obs = Compo_obs.Metrics
module Pool = Compo_par.Pool

let m_compiled = Obs.counter "plan.scan.compiled"
let m_fallback = Obs.counter "plan.scan.fallback"
let m_registry_build = Obs.counter "plan.registry.build"
let m_col_build = Obs.counter "plan.column.build"
let m_col_hit = Obs.counter "plan.column.hit"

(* same registry cell as Query's (find-or-create by name): compiled and
   interpreted scans feed one extent histogram *)
let h_extent = Obs.histogram ~buckets:Obs.size_buckets "query.select.extent"

(* ------------------------------------------------------------------ *)
(* Escape hatch                                                        *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "COMPO_NO_COMPILE" with
    | Some ("1" | "true" | "yes") -> false
    | Some _ | None -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let configure_from_env ?(getenv = Sys.getenv_opt) () =
  match getenv "COMPO_NO_COMPILE" with
  | None -> Ok ()
  | Some (("1" | "true" | "yes") as _v) ->
      enabled_ref := false;
      Ok ()
  | Some ("0" | "false" | "no") ->
      enabled_ref := true;
      Ok ()
  | Some v ->
      Error
        (Printf.sprintf
           "COMPO_NO_COMPILE must be a boolean (0/1/true/false/yes/no) (got \
            '%s')"
           v)

(* ------------------------------------------------------------------ *)
(* Per-store state, stamped against the mutation epoch AND the resolve-
   cache generation.  The epoch alone is sound (it advances on every
   mutation, cache enabled or not); carrying the generation as well means
   any invalidation path that reaches the PR 2 machinery also kills the
   compiled state, even if a future epoch-bump site is missed. *)

type stamp = { st_epoch : int; st_gen : int }

let current_stamp store =
  {
    st_epoch = Store.plan_epoch store;
    st_gen = Resolve_cache.generation (Store.resolve_cache store);
  }

let stamp_equal a b = a.st_epoch = b.st_epoch && a.st_gen = b.st_gen

(* the relationship graph flattened: one dense slot per entity, the
   transmitter edge as an int index (-1 unbound, -2 dangling) *)
type registry = {
  reg_stamp : stamp;
  reg_ids : int Surrogate.Tbl.t;  (* surrogate -> slot *)
  reg_ents : Store.entity array;  (* slot -> entity record *)
  reg_trans : int array;  (* slot -> transmitter slot *)
  reg_edges : int;  (* bound entities *)
}

(* how a (type, attribute) pair resolves, memoised so the scan does not
   re-derive the effective-attribute list from the schema per row/hop *)
type decision = Own | Via | Absent

type state = {
  mutable s_registry : registry option;
  s_columns : (string * string, column) Hashtbl.t;  (* (cls, attr) *)
  s_decisions : (string * string, decision) Hashtbl.t;  (* (type, attr) *)
}

and column = {
  col_stamp : stamp;
  col_members : Surrogate.t array;  (* extent snapshot, class order *)
  col_vals : Value.t array;
  col_err : bool array;  (* the interpreter would error on this row *)
}

type Store.plan_slot += Slot of state

let state_of store =
  match Store.plan_slot store with
  | Some (Slot st) -> st
  | Some _ | None ->
      let st =
        {
          s_registry = None;
          s_columns = Hashtbl.create 16;
          s_decisions = Hashtbl.create 64;
        }
      in
      Store.set_plan_slot store (Slot st);
      st

let build_registry store stamp =
  Obs.incr m_registry_build;
  let ents = Array.of_list (Store.fold store (fun acc e -> e :: acc) []) in
  let n = Array.length ents in
  let ids = Surrogate.Tbl.create (max 16 (2 * n)) in
  Array.iteri (fun i e -> Surrogate.Tbl.replace ids e.Store.id i) ents;
  let edges = ref 0 in
  let trans =
    Array.init n (fun i ->
        match ents.(i).Store.bound with
        | None -> -1
        | Some b -> (
            incr edges;
            match Surrogate.Tbl.find_opt ids b.Store.b_transmitter with
            | Some j -> j
            | None -> -2))
  in
  { reg_stamp = stamp; reg_ids = ids; reg_ents = ents; reg_trans = trans;
    reg_edges = !edges }

let registry_of store st stamp =
  match st.s_registry with
  | Some reg when stamp_equal reg.reg_stamp stamp -> reg
  | Some _ | None ->
      (* a stale registry means a mutation happened: every dependent
         memo is dead, so drop them with it instead of letting stamp
         checks strand them in the tables *)
      Hashtbl.reset st.s_columns;
      Hashtbl.reset st.s_decisions;
      let reg = build_registry store stamp in
      st.s_registry <- Some reg;
      reg

let decision_of st schema ty attr =
  match Hashtbl.find_opt st.s_decisions (ty, attr) with
  | Some d -> d
  | None ->
      let d =
        match Schema.find_effective_attr schema ty attr with
        | None -> Absent
        | Some (_, Schema.Own) -> Own
        | Some (_, Schema.Via _) -> Via
      in
      Hashtbl.replace st.s_decisions (ty, attr) d;
      d

(* ------------------------------------------------------------------ *)
(* Column materialization                                               *)

(* One cell: the value the interpreter's [Path [attr]] would produce for
   this row, or an error mark.  The flat walk mirrors
   [Inheritance.attr_at] hop for hop; every resolution shape it cannot
   replicate exactly — effective-attr miss at any hop (which the
   interpreter routes through subclass/participant/class-head fallback),
   a dangling transmitter, a cyclic chain — delegates to the interpreter
   for that row, so the cell is exact by construction. *)
let fill_cell store st reg schema attr s =
  let interp () =
    match Eval.eval (Eval.env ~self:s store) (Expr.Path [ attr ]) with
    | Ok v -> (v, false)
    | Error _ -> (Value.Null, true)
  in
  let limit = Array.length reg.reg_ents in
  let rec walk i hops =
    if hops > limit then interp ()
    else
      let e = reg.reg_ents.(i) in
      match decision_of st schema e.Store.type_name attr with
      | Absent -> interp ()
      | Own ->
          ( Option.value ~default:Value.Null
              (Store.Smap.find_opt attr e.Store.attrs),
            false )
      | Via -> (
          match reg.reg_trans.(i) with
          | -1 -> (Value.Null, false)
          | j when j >= 0 -> walk j (hops + 1)
          | _ -> interp ())
  in
  match Surrogate.Tbl.find_opt reg.reg_ids s with
  | Some i -> walk i 0
  | None -> interp ()

let build_column store st reg ~attr members stamp =
  Obs.incr m_col_build;
  let marr = Array.of_list members in
  let n = Array.length marr in
  let vals = Array.make n Value.Null in
  let errs = Array.make n false in
  let schema = Store.schema store in
  for i = 0 to n - 1 do
    let v, e = fill_cell store st reg schema attr marr.(i) in
    vals.(i) <- v;
    errs.(i) <- e
  done;
  { col_stamp = stamp; col_members = marr; col_vals = vals; col_err = errs }

(* returns (column, built-by-this-call) *)
let column_of store st reg ~cls ~attr members stamp =
  let key = (cls, attr) in
  match Hashtbl.find_opt st.s_columns key with
  | Some c when stamp_equal c.col_stamp stamp ->
      Obs.incr m_col_hit;
      (c, false)
  | Some _ | None ->
      let c = build_column store st reg ~attr members stamp in
      Hashtbl.replace st.s_columns key c;
      (c, true)

(* ------------------------------------------------------------------ *)
(* Closure compilation                                                  *)

(* raised by a compiled closure exactly where the interpreter would
   return [Error _]; the row test catches it and drops the row, which is
   what [Query.matching] does with an interpreted error *)
exception Row_error

type cctx = { cc_cols : column array }

let as_bool = function Value.Bool b -> b | _ -> raise Row_error

(* first-use slot assignment: the compiled program reads columns by
   index, the slot list remembers which attribute each index means *)
let slot_index slots a =
  let rec find i = function
    | [] -> None
    | x :: rest -> if String.equal x a then Some i else find (i + 1) rest
  in
  match find 0 (List.rev !slots) with
  | Some i -> i
  | None ->
      let i = List.length !slots in
      slots := a :: !slots;
      i

(* outside the [open Expr] below: Expr shadows the comparison operators
   with expression builders *)
let cmp_holds op c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0
  | _ -> assert false

(* The compilable subset: single-segment paths (any name — cells that
   need the interpreter's head-resolution fallbacks get them at fill
   time), constants, boolean connectives with the evaluator's
   short-circuit order, arithmetic and comparisons through the
   evaluator's own coercions, and [in] over a non-path right-hand side.
   Anything else returns [None] and the select runs interpreted. *)
let rec compile counter slots expr =
  let mk f =
    incr counter;
    Some f
  in
  let open Expr in
  match expr with
  | Const v -> mk (fun _ _ -> v)
  | Path [ a ] ->
      let slot = slot_index slots a in
      mk (fun ctx i ->
          let c = ctx.cc_cols.(slot) in
          if c.col_err.(i) then raise Row_error else c.col_vals.(i))
  | Unop (Not, e) -> (
      match compile counter slots e with
      | None -> None
      | Some f -> mk (fun ctx i -> Value.Bool (not (as_bool (f ctx i)))))
  | Unop (Neg, e) -> (
      match compile counter slots e with
      | None -> None
      | Some f ->
          mk (fun ctx i ->
              match f ctx i with
              | Value.Int n -> Value.Int (-n)
              | Value.Real r -> Value.Real (-.r)
              | _ -> raise Row_error))
  | Binop (And, a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              if not (as_bool (fa ctx i)) then Value.Bool false
              else Value.Bool (as_bool (fb ctx i)))
      | _ -> None)
  | Binop (Or, a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              if as_bool (fa ctx i) then Value.Bool true
              else Value.Bool (as_bool (fb ctx i)))
      | _ -> None)
  | Binop (In, a, b) -> (
      match b with
      | Path _ -> None (* the interpreter expands path collections *)
      | _ -> (
          match (compile counter slots a, compile counter slots b) with
          | Some fa, Some fb ->
              mk (fun ctx i ->
                  let v = fa ctx i in
                  let members =
                    match fb ctx i with
                    | Value.Set vs | Value.List vs -> vs
                    | w -> [ w ]
                  in
                  Value.Bool (List.exists (Value.equal v) members))
          | _ -> None))
  | Binop (((Add | Sub | Mul | Div) as op), a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              let x = fa ctx i in
              let y = fb ctx i in
              match Eval.numeric_binop op x y with
              | Ok v -> v
              | Error _ -> raise Row_error)
      | _ -> None)
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              let x = fa ctx i in
              let y = fb ctx i in
              Value.Bool (cmp_holds op (Eval.compare_values x y)))
      | _ -> None)
  | Path _ | Count _ | Sum _ | Forall _ | Exists _ -> None

(* ------------------------------------------------------------------ *)
(* The compiled scan                                                    *)

type report = {
  rp_closures : int;
  rp_columns : (string * int * bool) list;
  rp_nodes : int;
  rp_edges : int;
}

let scans = ref 0
let compiled_scans () = !scans

let try_scan store ~cls ~jobs expr =
  if not (enabled ()) then None
  else if Store.read_hooks_installed store then begin
    (* hooks are the transaction layer's lock inheritance: they must
       fire per hop, and a column scan performs no hops *)
    Obs.incr m_fallback;
    None
  end
  else
    match Store.class_members store cls with
    | Error _ -> None (* let the interpreted path surface the error *)
    | Ok members -> (
        let counter = ref 0 in
        let slots = ref [] in
        match compile counter slots expr with
        | None ->
            Obs.incr m_fallback;
            None
        | Some program ->
            let st = state_of store in
            let stamp = current_stamp store in
            let reg = registry_of store st stamp in
            let attrs = Array.of_list (List.rev !slots) in
            let built = Array.make (Array.length attrs) false in
            let cols =
              Array.mapi
                (fun i attr ->
                  let c, b = column_of store st reg ~cls ~attr members stamp in
                  built.(i) <- b;
                  c)
                attrs
            in
            let ctx = { cc_cols = cols } in
            let test i =
              match program ctx i with
              | Value.Bool b -> b
              | _ -> false
              | exception Row_error -> false
            in
            Obs.observe h_extent (float_of_int (List.length members));
            let rows =
              if jobs <= 1 then List.filteri (fun i _ -> test i) members
              else Pool.filteri_list ~jobs (fun i _ -> test i) members
            in
            incr scans;
            Obs.incr m_compiled;
            let rp_columns =
              Array.to_list
                (Array.mapi
                   (fun i attr -> (attr, stamp.st_epoch, built.(i)))
                   attrs)
            in
            Some
              (Ok
                 ( rows,
                   {
                     rp_closures = !counter;
                     rp_columns;
                     rp_nodes = Array.length reg.reg_ents;
                     rp_edges = reg.reg_edges;
                   } )))
