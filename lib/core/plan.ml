(* Compiled flat query plans: adjacency registry + closure compilation +
   materialized resolved-value columns, all delta-maintained against the
   store's typed change log.  See plan.mli for the contract; the
   load-bearing invariant throughout is that a compiled scan keeps a row
   iff the interpreted scan would keep it (same order, same rows), which
   the 3-way differential oracle in test/test_par_diff.ml checks over
   hundreds of random schemas — now with mutation batches interleaved
   between the selects, so the delta path itself is under the oracle. *)

module Obs = Compo_obs.Metrics
module Pool = Compo_par.Pool

let m_compiled = Obs.counter "plan.scan.compiled"
let m_fallback = Obs.counter "plan.scan.fallback"
let m_registry_build = Obs.counter "plan.registry.build"
let m_col_build = Obs.counter "plan.column.build"
let m_col_hit = Obs.counter "plan.column.hit"

(* delta maintenance: batches applied, change records consumed, cells
   refilled in place, fallbacks to a full rebuild, registry slots
   patched, and tombstone compactions *)
let m_delta_apply = Obs.counter "plan.delta.apply"
let m_delta_changes = Obs.counter "plan.delta.changes"
let m_delta_cells = Obs.counter "plan.delta.cells"
let m_delta_rebuild = Obs.counter "plan.delta.rebuild"
let m_delta_patch = Obs.counter "plan.delta.registry.patch"
let m_delta_compact = Obs.counter "plan.delta.registry.compact"

(* same registry cell as Query's (find-or-create by name): compiled and
   interpreted scans feed one extent histogram *)
let h_extent = Obs.histogram ~buckets:Obs.size_buckets "query.select.extent"

(* ------------------------------------------------------------------ *)
(* Escape hatches                                                      *)

let env_bool var =
  match Sys.getenv_opt var with
  | Some ("1" | "true" | "yes") -> false
  | Some _ | None -> true

let enabled_ref = ref (env_bool "COMPO_NO_COMPILE")
let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let delta_ref = ref (env_bool "COMPO_NO_DELTA")
let delta_enabled () = !delta_ref
let set_delta_enabled b = delta_ref := b

let parse_bool_env name cell = function
  | None -> Ok ()
  | Some ("1" | "true" | "yes") ->
      cell := false;
      Ok ()
  | Some ("0" | "false" | "no") ->
      cell := true;
      Ok ()
  | Some v ->
      Error
        (Printf.sprintf
           "%s must be a boolean (0/1/true/false/yes/no) (got '%s')" name v)

let configure_from_env ?(getenv = Sys.getenv_opt) () =
  match parse_bool_env "COMPO_NO_COMPILE" enabled_ref (getenv "COMPO_NO_COMPILE") with
  | Error _ as e -> e
  | Ok () -> parse_bool_env "COMPO_NO_DELTA" delta_ref (getenv "COMPO_NO_DELTA")

(* Delta tuning knobs, exposed for tests and benchmarks: a column whose
   dirty fraction exceeds [dirty_threshold] is rebuilt from scratch
   instead of refilled cell by cell; a registry with at least
   [compact_min] slots of which a quarter are tombstones is compacted. *)
let dirty_threshold = ref 0.5
let set_dirty_threshold f = dirty_threshold := f
let compact_min = ref 64
let set_compact_min n = compact_min := max 1 n

(* ------------------------------------------------------------------ *)
(* Per-store state, stamped against the mutation epoch AND the resolve-
   cache generation.  A stale stamp no longer means "throw everything
   away": the store's change log names what moved, and the registry and
   each column catch up by applying exactly those records.  Only a lost
   window (log overflow), a [Ch_global] record, or a generation bump the
   log cannot explain forces the old wholesale rebuild. *)

type stamp = { st_epoch : int; st_gen : int }

let current_stamp store =
  {
    st_epoch = Store.plan_epoch store;
    st_gen = Resolve_cache.generation (Store.resolve_cache store);
  }

let stamp_equal a b = a.st_epoch = b.st_epoch && a.st_gen = b.st_gen

(* the relationship graph flattened: one dense slot per entity, the
   transmitter edge as an int index (-1 unbound, -2 dangling, -3 dead).
   Deletions tombstone their slot in place; appends grow the arrays by
   doubling; compaction squeezes tombstones out preserving slot order. *)
type registry = {
  mutable reg_stamp : stamp;
  reg_ids : int Surrogate.Tbl.t;  (* surrogate -> live slot *)
  mutable reg_ents : Store.entity array;  (* slot -> entity record *)
  mutable reg_trans : int array;  (* slot -> transmitter slot *)
  mutable reg_len : int;  (* used slots, tombstones included *)
  mutable reg_dead : int;  (* tombstones among them *)
  mutable reg_edges : int;  (* bound entities *)
}

(* how a (type, attribute) pair resolves, memoised so the scan does not
   re-derive the effective-attribute list from the schema per row/hop *)
type decision = Own | Via | Absent

(* what a materialized column holds: a single resolved attribute, a
   multi-segment reference chain, or a whole interpreter-filled
   sub-expression (quantifiers, [in] over a path) *)
type colspec = Cattr of string | Cpath of string list | Cexpr of Expr.t

let spec_equal a b =
  match (a, b) with
  | Cattr x, Cattr y -> String.equal x y
  | Cpath p, Cpath q -> List.equal String.equal p q
  | Cexpr x, Cexpr y -> Expr.equal x y
  | (Cattr _ | Cpath _ | Cexpr _), _ -> false

let spec_key = function
  | Cattr a -> "a:" ^ a
  | Cpath p -> "p:" ^ String.concat "." p
  | Cexpr e -> "e:" ^ Expr.to_string e

let spec_label = function
  | Cattr a -> a
  | Cpath p -> String.concat "."  p
  | Cexpr e -> Expr.to_string e

type state = {
  mutable s_registry : registry option;
  s_columns : (string * string, column) Hashtbl.t;  (* (cls, spec key) *)
  s_decisions : (string * string, decision) Hashtbl.t;  (* (type, attr) *)
  s_lock : Mutex.t;  (* guards s_decisions during parallel column fills *)
}

and column = {
  mutable col_stamp : stamp;
  col_cls : string;
  col_spec : colspec;
  mutable col_members : Surrogate.t array;  (* extent snapshot, class order *)
  mutable col_vals : Value.t array;
  mutable col_err : bool array;  (* the interpreter would error here *)
  mutable col_volatile : bool array;  (* interp-filled: dirty on any change *)
  mutable col_rows : int Surrogate.Tbl.t;  (* member -> row *)
  mutable col_deps : Surrogate.t list array;  (* row -> resolution chain *)
  col_rdeps : Surrogate.t list Surrogate.Tbl.t;  (* chain entity -> members *)
}

type Store.plan_slot += Slot of state

let state_of store =
  match Store.plan_slot store with
  | Some (Slot st) -> st
  | Some _ | None ->
      let st =
        {
          s_registry = None;
          s_columns = Hashtbl.create 16;
          s_decisions = Hashtbl.create 64;
          s_lock = Mutex.create ();
        }
      in
      Store.set_plan_slot store (Slot st);
      st

(* ------------------------------------------------------------------ *)
(* Registry: build, patch, compact                                     *)

let build_registry store stamp =
  Obs.incr m_registry_build;
  let ents = Array.of_list (Store.fold store (fun acc e -> e :: acc) []) in
  let n = Array.length ents in
  let ids = Surrogate.Tbl.create (max 16 (2 * n)) in
  Array.iteri (fun i e -> Surrogate.Tbl.replace ids e.Store.id i) ents;
  let edges = ref 0 in
  let trans =
    Array.init n (fun i ->
        match ents.(i).Store.bound with
        | None -> -1
        | Some b -> (
            incr edges;
            match Surrogate.Tbl.find_opt ids b.Store.b_transmitter with
            | Some j -> j
            | None -> -2))
  in
  { reg_stamp = stamp; reg_ids = ids; reg_ents = ents; reg_trans = trans;
    reg_len = n; reg_dead = 0; reg_edges = !edges }

(* raised mid-delta when a record cannot be applied in place; the caller
   falls back to the wholesale rebuild *)
exception Rebuild

let reg_append reg e =
  let cap = Array.length reg.reg_ents in
  if reg.reg_len >= cap then begin
    let ncap = max 16 (2 * cap) in
    let ents = Array.make ncap e in
    Array.blit reg.reg_ents 0 ents 0 reg.reg_len;
    let trans = Array.make ncap (-1) in
    Array.blit reg.reg_trans 0 trans 0 reg.reg_len;
    reg.reg_ents <- ents;
    reg.reg_trans <- trans
  end;
  let i = reg.reg_len in
  reg.reg_ents.(i) <- e;
  reg.reg_trans.(i) <- -1;
  reg.reg_len <- i + 1;
  Surrogate.Tbl.replace reg.reg_ids e.Store.id i;
  i

(* recompute slot [i]'s transmitter edge from the entity's current
   binding, keeping the bound-entity count in step *)
let reg_set_edge reg i =
  let old = reg.reg_trans.(i) in
  let now =
    match reg.reg_ents.(i).Store.bound with
    | None -> -1
    | Some b -> (
        match Surrogate.Tbl.find_opt reg.reg_ids b.Store.b_transmitter with
        | Some j -> j
        | None -> -2)
  in
  reg.reg_trans.(i) <- now;
  if old <> -1 && old <> -3 then reg.reg_edges <- reg.reg_edges - 1;
  if now <> -1 then reg.reg_edges <- reg.reg_edges + 1

let reg_apply store reg ch =
  match ch with
  | Store.Ch_created s -> (
      match Surrogate.Tbl.find_opt reg.reg_ids s with
      | Some _ -> ()
      | None -> (
          match Store.get store s with
          | Error _ -> () (* created then deleted within the window *)
          | Ok e ->
              let i = reg_append reg e in
              reg_set_edge reg i;
              Obs.incr m_delta_patch))
  | Store.Ch_deleted s -> (
      match Surrogate.Tbl.find_opt reg.reg_ids s with
      | None -> ()
      | Some i ->
          if reg.reg_trans.(i) <> -1 then reg.reg_edges <- reg.reg_edges - 1;
          reg.reg_trans.(i) <- -3;
          Surrogate.Tbl.remove reg.reg_ids s;
          reg.reg_dead <- reg.reg_dead + 1;
          Obs.incr m_delta_patch)
  | Store.Ch_rebound s -> (
      match Surrogate.Tbl.find_opt reg.reg_ids s with
      | None -> if Store.mem store s then raise Rebuild
      | Some i ->
          reg_set_edge reg i;
          Obs.incr m_delta_patch)
  | Store.Ch_attr _ | Store.Ch_touched _ | Store.Ch_class_add _
  | Store.Ch_class_remove _ ->
      () (* entity records are shared with the store: reads stay live *)
  | Store.Ch_global -> raise Rebuild

(* squeeze tombstones out, preserving the relative order of live slots
   (the property test pins this: compaction must not reshuffle) *)
let reg_compact reg =
  Obs.incr m_delta_compact;
  let live = reg.reg_len - reg.reg_dead in
  let map = Array.make reg.reg_len (-1) in
  let next = ref 0 in
  for i = 0 to reg.reg_len - 1 do
    if reg.reg_trans.(i) <> -3 then begin
      map.(i) <- !next;
      incr next
    end
  done;
  let ents = Array.make (max live 1) reg.reg_ents.(0) in
  let trans = Array.make (max live 1) (-1) in
  for i = 0 to reg.reg_len - 1 do
    let ni = map.(i) in
    if ni >= 0 then begin
      ents.(ni) <- reg.reg_ents.(i);
      trans.(ni) <-
        (match reg.reg_trans.(i) with
        | j when j >= 0 -> (match map.(j) with -1 -> -2 | nj -> nj)
        | x -> x);
      Surrogate.Tbl.replace reg.reg_ids reg.reg_ents.(i).Store.id ni
    end
  done;
  reg.reg_ents <- ents;
  reg.reg_trans <- trans;
  reg.reg_len <- live;
  reg.reg_dead <- 0

let rebuild_registry store st stamp =
  (* a wholesale rebuild means the change window could not explain the
     drift: every dependent memo is equally unexplained, so drop them *)
  Hashtbl.reset st.s_columns;
  Hashtbl.reset st.s_decisions;
  let reg = build_registry store stamp in
  st.s_registry <- Some reg;
  reg

let window_clean = List.for_all (function Store.Ch_global -> false | _ -> true)

let registry_of store st stamp =
  match st.s_registry with
  | Some reg when stamp_equal reg.reg_stamp stamp -> reg
  | Some reg when delta_enabled () -> (
      match Store.changes_since store reg.reg_stamp.st_epoch with
      | Some ((_ :: _) as chs) when window_clean chs -> (
          match List.iter (reg_apply store reg) chs with
          | () ->
              Obs.incr m_delta_apply;
              Obs.add m_delta_changes (List.length chs);
              if
                reg.reg_dead > 0
                && reg.reg_len >= !compact_min
                && reg.reg_dead * 4 >= reg.reg_len
              then reg_compact reg;
              reg.reg_stamp <- stamp;
              reg
          | exception Rebuild ->
              Obs.incr m_delta_rebuild;
              rebuild_registry store st stamp)
      | Some [] | Some _ | None ->
          (* an epoch-less generation bump, a global record, or a window
             lost to log overflow: the delta cannot be trusted *)
          Obs.incr m_delta_rebuild;
          rebuild_registry store st stamp)
  | Some _ | None -> rebuild_registry store st stamp

let decision_of st schema ty attr =
  Mutex.lock st.s_lock;
  let d =
    match Hashtbl.find_opt st.s_decisions (ty, attr) with
    | Some d -> d
    | None ->
        let d =
          match Schema.find_effective_attr schema ty attr with
          | None -> Absent
          | Some (_, Schema.Own) -> Own
          | Some (_, Schema.Via _) -> Via
        in
        Hashtbl.replace st.s_decisions (ty, attr) d;
        d
  in
  Mutex.unlock st.s_lock;
  d

(* ------------------------------------------------------------------ *)
(* Column materialization                                               *)

(* One filled cell: the value the interpreter would produce for this row,
   an error mark where it would error, whether the fill went through the
   interpreter (volatile: must be refreshed on any mutation), and the
   entities whose state the flat walk read (the resolution chain — the
   delta pass dirties exactly the rows whose recorded chains pass through
   a touched entity). *)
type cell = {
  cv : Value.t;
  ce : bool;
  cvol : bool;
  cdeps : Surrogate.t list;
}

let spec_expr = function
  | Cattr a -> Expr.Path [ a ]
  | Cpath p -> Expr.Path p
  | Cexpr e -> e

(* The flat walk mirrors [Inheritance.attr_at] hop for hop, one segment
   at a time; every resolution shape it cannot replicate exactly —
   effective-attr miss at any hop (which the interpreter routes through
   subclass/participant/class-head fallback), a dangling transmitter, a
   cyclic chain, a non-[Ref] intermediate value — delegates to the
   interpreter for that row, so the cell is exact by construction. *)
let fill_cell store st reg schema spec s =
  let interp () =
    match Eval.eval (Eval.env ~self:s store) (spec_expr spec) with
    | Ok v -> { cv = v; ce = false; cvol = true; cdeps = [] }
    | Error _ -> { cv = Value.Null; ce = true; cvol = true; cdeps = [] }
  in
  match spec with
  | Cexpr _ -> interp ()
  | Cattr _ | Cpath _ -> (
      let segs = match spec with Cattr a -> [ a ] | Cpath p -> p | Cexpr _ -> [] in
      let limit = reg.reg_len in
      (* resolve one attribute segment from slot [i]; None delegates *)
      let rec walk attr i hops deps =
        if hops > limit then None
        else if reg.reg_trans.(i) = -3 then None
        else
          let e = reg.reg_ents.(i) in
          let deps = e.Store.id :: deps in
          match decision_of st schema e.Store.type_name attr with
          | Absent -> None
          | Own ->
              Some
                ( Option.value ~default:Value.Null
                    (Store.Smap.find_opt attr e.Store.attrs),
                  deps )
          | Via -> (
              match reg.reg_trans.(i) with
              | -1 -> Some (Value.Null, deps)
              | j when j >= 0 -> walk attr j (hops + 1) deps
              | _ -> None)
      in
      let rec segs_walk segs s deps =
        match Surrogate.Tbl.find_opt reg.reg_ids s with
        | None -> None
        | Some i -> (
            match segs with
            | [] -> None
            | [ attr ] -> walk attr i 0 deps
            | attr :: rest -> (
                match walk attr i 0 deps with
                | Some (Value.Ref r, deps) -> segs_walk rest r deps
                | Some _ | None -> None))
      in
      match segs_walk segs s [] with
      | Some (v, deps) -> { cv = v; ce = false; cvol = false; cdeps = deps }
      | None -> interp ())

let rdeps_add tbl d m =
  Surrogate.Tbl.replace tbl d
    (m :: Option.value ~default:[] (Surrogate.Tbl.find_opt tbl d))

let rdeps_remove tbl d m =
  match Surrogate.Tbl.find_opt tbl d with
  | None -> ()
  | Some ms -> (
      match List.filter (fun x -> not (Surrogate.equal x m)) ms with
      | [] -> Surrogate.Tbl.remove tbl d
      | ms -> Surrogate.Tbl.replace tbl d ms)

let dummy_cell = { cv = Value.Null; ce = false; cvol = false; cdeps = [] }

(* fill every row; worker domains are safe here because the fill only
   reads store state (the read latch is held for jobs > 1) and the
   decision memo takes the state lock *)
let fill_all store st reg spec marr ~jobs =
  let n = Array.length marr in
  let cells = Array.make n dummy_cell in
  let schema = Store.schema store in
  let fill i = cells.(i) <- fill_cell store st reg schema spec marr.(i) in
  if jobs > 1 && n >= 256 then Pool.iter_range ~jobs n fill
  else
    for i = 0 to n - 1 do
      fill i
    done;
  cells

let build_column store st reg ~cls ~spec members stamp ~jobs =
  Obs.incr m_col_build;
  let marr = Array.of_list members in
  let n = Array.length marr in
  let cells = fill_all store st reg spec marr ~jobs in
  let rows = Surrogate.Tbl.create (max 16 (2 * n)) in
  Array.iteri (fun i m -> Surrogate.Tbl.replace rows m i) marr;
  let rdeps = Surrogate.Tbl.create (max 16 (2 * n)) in
  Array.iteri
    (fun i c -> List.iter (fun d -> rdeps_add rdeps d marr.(i)) c.cdeps)
    cells;
  {
    col_stamp = stamp;
    col_cls = cls;
    col_spec = spec;
    col_members = marr;
    col_vals = Array.map (fun c -> c.cv) cells;
    col_err = Array.map (fun c -> c.ce) cells;
    col_volatile = Array.map (fun c -> c.cvol) cells;
    col_rows = rows;
    col_deps = Array.map (fun c -> c.cdeps) cells;
    col_rdeps = rdeps;
  }

(* ------------------------------------------------------------------ *)
(* Column delta                                                        *)

let col_relevant_attr spec a =
  match spec with
  | Cattr b -> String.equal a b
  | Cpath segs -> List.mem a segs
  | Cexpr _ -> false (* every expression cell is volatile anyway *)

exception Col_rebuild

let refill_row store st reg schema col m i =
  List.iter (fun d -> rdeps_remove col.col_rdeps d m) col.col_deps.(i);
  let c = fill_cell store st reg schema col.col_spec m in
  col.col_vals.(i) <- c.cv;
  col.col_err.(i) <- c.ce;
  col.col_volatile.(i) <- c.cvol;
  col.col_deps.(i) <- c.cdeps;
  List.iter (fun d -> rdeps_add col.col_rdeps d m) c.cdeps;
  Obs.incr m_delta_cells

(* membership changed: realign to the current extent, copying clean
   cells across by surrogate and filling new or dirty rows *)
let realign store st reg col members dirty =
  let schema = Store.schema store in
  let marr = Array.of_list members in
  let n = Array.length marr in
  let vals = Array.make n Value.Null in
  let errs = Array.make n false in
  let vols = Array.make n false in
  let deps = Array.make n [] in
  let rows = Surrogate.Tbl.create (max 16 (2 * n)) in
  (* members leaving the extent take their rdeps contributions along *)
  let keep = Surrogate.Tbl.create (max 16 (2 * n)) in
  Array.iter (fun m -> Surrogate.Tbl.replace keep m ()) marr;
  Array.iteri
    (fun i m ->
      if not (Surrogate.Tbl.mem keep m) then
        List.iter (fun d -> rdeps_remove col.col_rdeps d m) col.col_deps.(i))
    col.col_members;
  Array.iteri
    (fun i' m ->
      Surrogate.Tbl.replace rows m i';
      match Surrogate.Tbl.find_opt col.col_rows m with
      | Some i when not (Surrogate.Tbl.mem dirty m) ->
          vals.(i') <- col.col_vals.(i);
          errs.(i') <- col.col_err.(i);
          vols.(i') <- col.col_volatile.(i);
          deps.(i') <- col.col_deps.(i)
      | found ->
          (match found with
          | Some i ->
              List.iter
                (fun d -> rdeps_remove col.col_rdeps d m)
                col.col_deps.(i)
          | None -> ());
          let c = fill_cell store st reg schema col.col_spec m in
          vals.(i') <- c.cv;
          errs.(i') <- c.ce;
          vols.(i') <- c.cvol;
          deps.(i') <- c.cdeps;
          List.iter (fun d -> rdeps_add col.col_rdeps d m) c.cdeps;
          Obs.incr m_delta_cells)
    marr;
  col.col_members <- marr;
  col.col_vals <- vals;
  col.col_err <- errs;
  col.col_volatile <- vols;
  col.col_rows <- rows;
  col.col_deps <- deps

let apply_column_delta store st reg col members stamp chs =
  let schema = Store.schema store in
  let n = Array.length col.col_members in
  let dirty = Surrogate.Tbl.create 16 in
  let mark m =
    if Surrogate.Tbl.mem col.col_rows m then Surrogate.Tbl.replace dirty m ()
  in
  let mark_rdeps x =
    List.iter mark
      (Option.value ~default:[] (Surrogate.Tbl.find_opt col.col_rdeps x))
  in
  let membership = ref false in
  List.iter
    (fun ch ->
      match ch with
      | Store.Ch_attr (x, a) ->
          if col_relevant_attr col.col_spec a then mark_rdeps x
      | Store.Ch_rebound x ->
          mark_rdeps x;
          mark x
      | Store.Ch_deleted x ->
          mark_rdeps x;
          if Surrogate.Tbl.mem col.col_rows x then membership := true
      | Store.Ch_created _ -> ()
      | Store.Ch_touched x -> mark_rdeps x
      | Store.Ch_class_add (c, _) | Store.Ch_class_remove (c, _) ->
          if String.equal c col.col_cls then membership := true
      | Store.Ch_global -> raise Col_rebuild)
    chs;
  (* interpreter-filled cells depend on arbitrary state: any mutation at
     all dirties them *)
  (match chs with
  | [] -> ()
  | _ :: _ ->
      Array.iteri
        (fun i m -> if col.col_volatile.(i) then mark m)
        col.col_members);
  (if !membership then realign store st reg col members dirty
   else
     let d = Surrogate.Tbl.length dirty in
     if d > 0 then
       if n > 0 && float_of_int d /. float_of_int n > !dirty_threshold then
         raise Col_rebuild
       else
         Surrogate.Tbl.iter
           (fun m () ->
             match Surrogate.Tbl.find_opt col.col_rows m with
             | None -> ()
             | Some i -> refill_row store st reg schema col m i)
           dirty);
  Obs.incr m_delta_apply;
  col.col_stamp <- stamp

(* returns (column, built-by-this-call) *)
let column_of store st reg ~cls ~spec members stamp ~jobs =
  let key = (cls, spec_key spec) in
  let rebuild () =
    let c = build_column store st reg ~cls ~spec members stamp ~jobs in
    Hashtbl.replace st.s_columns key c;
    (c, true)
  in
  match Hashtbl.find_opt st.s_columns key with
  | Some c when spec_equal c.col_spec spec && stamp_equal c.col_stamp stamp ->
      Obs.incr m_col_hit;
      (c, false)
  | Some c when spec_equal c.col_spec spec && delta_enabled () -> (
      match Store.changes_since store c.col_stamp.st_epoch with
      | Some ((_ :: _) as chs) when window_clean chs -> (
          match apply_column_delta store st reg c members stamp chs with
          | () ->
              Obs.incr m_col_hit;
              (c, false)
          | exception Col_rebuild ->
              Obs.incr m_delta_rebuild;
              rebuild ())
      | Some [] | Some _ | None ->
          Obs.incr m_delta_rebuild;
          rebuild ())
  | Some _ | None -> rebuild ()

(* ------------------------------------------------------------------ *)
(* Closure compilation                                                  *)

(* raised by a compiled closure exactly where the interpreter would
   return [Error _]; the row test catches it and drops the row, which is
   what [Query.matching] does with an interpreted error *)
exception Row_error

type cctx = { cc_cols : column array }

let as_bool = function Value.Bool b -> b | _ -> raise Row_error

(* first-use slot assignment: the compiled program reads columns by
   index, the slot list remembers which column spec each index means *)
let slot_index slots spec =
  let rec find i = function
    | [] -> None
    | x :: rest -> if spec_equal x spec then Some i else find (i + 1) rest
  in
  match find 0 (List.rev !slots) with
  | Some i -> i
  | None ->
      let i = List.length !slots in
      slots := spec :: !slots;
      i

(* outside the [open Expr] below: Expr shadows the comparison operators
   with expression builders *)
let cmp_holds op c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0
  | _ -> assert false

(* The compilable subset now covers the whole expression grammar.  Paths
   of any length and the quantifier forms ([count]/[sum]/[forall]/
   [exists], plus [in] over a path right-hand side) become materialized
   columns — multi-segment reference chains fill flat, everything the
   flat walk cannot replicate is filled per-row by the interpreter and
   marked volatile.  Constants, boolean connectives (the evaluator's
   short-circuit order), arithmetic and comparisons compile to closures
   over those columns. *)
let rec compile counter slots expr =
  let mk f =
    incr counter;
    Some f
  in
  let col_read spec =
    let slot = slot_index slots spec in
    mk (fun ctx i ->
        let c = ctx.cc_cols.(slot) in
        if c.col_err.(i) then raise Row_error else c.col_vals.(i))
  in
  let open Expr in
  match expr with
  | Const v -> mk (fun _ _ -> v)
  | Path [ a ] -> col_read (Cattr a)
  | Path [] -> None
  | Path p -> col_read (Cpath p)
  | (Count _ | Sum _ | Forall _ | Exists _) as q -> col_read (Cexpr q)
  | Unop (Not, e) -> (
      match compile counter slots e with
      | None -> None
      | Some f -> mk (fun ctx i -> Value.Bool (not (as_bool (f ctx i)))))
  | Unop (Neg, e) -> (
      match compile counter slots e with
      | None -> None
      | Some f ->
          mk (fun ctx i ->
              match f ctx i with
              | Value.Int n -> Value.Int (-n)
              | Value.Real r -> Value.Real (-.r)
              | _ -> raise Row_error))
  | Binop (And, a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              if not (as_bool (fa ctx i)) then Value.Bool false
              else Value.Bool (as_bool (fb ctx i)))
      | _ -> None)
  | Binop (Or, a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              if as_bool (fa ctx i) then Value.Bool true
              else Value.Bool (as_bool (fb ctx i)))
      | _ -> None)
  | Binop (In, a, b) -> (
      match b with
      | Path _ ->
          (* the interpreter expands path collections; materialize the
             whole membership test as one interpreter-filled column *)
          col_read (Cexpr expr)
      | _ -> (
          match (compile counter slots a, compile counter slots b) with
          | Some fa, Some fb ->
              mk (fun ctx i ->
                  let v = fa ctx i in
                  let members =
                    match fb ctx i with
                    | Value.Set vs | Value.List vs -> vs
                    | w -> [ w ]
                  in
                  Value.Bool (List.exists (Value.equal v) members))
          | _ -> None))
  | Binop (((Add | Sub | Mul | Div) as op), a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              let x = fa ctx i in
              let y = fb ctx i in
              match Eval.numeric_binop op x y with
              | Ok v -> v
              | Error _ -> raise Row_error)
      | _ -> None)
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) -> (
      match (compile counter slots a, compile counter slots b) with
      | Some fa, Some fb ->
          mk (fun ctx i ->
              let x = fa ctx i in
              let y = fb ctx i in
              Value.Bool (cmp_holds op (Eval.compare_values x y)))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The compiled scan                                                    *)

type report = {
  rp_closures : int;
  rp_columns : (string * int * bool) list;
  rp_nodes : int;
  rp_edges : int;
}

let scans = ref 0
let compiled_scans () = !scans

let try_scan store ~cls ~jobs expr =
  if not (enabled ()) then None
  else if Store.read_hooks_installed store then begin
    (* hooks are the transaction layer's lock inheritance: they must
       fire per hop, and a column scan performs no hops *)
    Obs.incr m_fallback;
    None
  end
  else
    match Store.class_members store cls with
    | Error _ -> None (* let the interpreted path surface the error *)
    | Ok members -> (
        let counter = ref 0 in
        let slots = ref [] in
        match compile counter slots expr with
        | None ->
            Obs.incr m_fallback;
            None
        | Some program ->
            let st = state_of store in
            let stamp = current_stamp store in
            let reg = registry_of store st stamp in
            let specs = Array.of_list (List.rev !slots) in
            let built = Array.make (Array.length specs) false in
            let cols =
              Array.mapi
                (fun i spec ->
                  let c, b =
                    column_of store st reg ~cls ~spec members stamp ~jobs
                  in
                  built.(i) <- b;
                  c)
                specs
            in
            let ctx = { cc_cols = cols } in
            let test i =
              match program ctx i with
              | Value.Bool b -> b
              | _ -> false
              | exception Row_error -> false
            in
            Obs.observe h_extent (float_of_int (List.length members));
            let rows =
              if jobs <= 1 then List.filteri (fun i _ -> test i) members
              else Pool.filteri_list ~jobs (fun i _ -> test i) members
            in
            incr scans;
            Obs.incr m_compiled;
            let rp_columns =
              Array.to_list
                (Array.mapi
                   (fun i spec ->
                     (spec_label spec, stamp.st_epoch, built.(i)))
                   specs)
            in
            Some
              (Ok
                 ( rows,
                   {
                     rp_closures = !counter;
                     rp_columns;
                     rp_nodes = reg.reg_len - reg.reg_dead;
                     rp_edges = reg.reg_edges;
                   } )))

(* ------------------------------------------------------------------ *)
(* Introspection for tests                                              *)

(* live registry surrogates in slot order, plus the tombstone count *)
let registry_live store =
  match Store.plan_slot store with
  | Some (Slot { s_registry = Some reg; _ }) ->
      let acc = ref [] in
      for i = reg.reg_len - 1 downto 0 do
        if reg.reg_trans.(i) <> -3 then
          acc := reg.reg_ents.(i).Store.id :: !acc
      done;
      Some (!acc, reg.reg_dead)
  | Some _ | None -> None

(* the column-equivalence invariant: every delta-maintained structure
   that claims to be current must equal a from-scratch derivation *)
let self_check store =
  match Store.plan_slot store with
  | Some (Slot st) -> (
      let problems = ref [] in
      let report fmt =
        Printf.ksprintf (fun s -> problems := s :: !problems) fmt
      in
      let stamp = current_stamp store in
      (match st.s_registry with
      | Some reg when stamp_equal reg.reg_stamp stamp ->
          let live = ref 0 in
          for i = 0 to reg.reg_len - 1 do
            if reg.reg_trans.(i) <> -3 then begin
              incr live;
              let e = reg.reg_ents.(i) in
              if not (Store.mem store e.Store.id) then
                report "registry slot %d holds deleted entity %s" i
                  (Surrogate.to_string e.Store.id);
              (match Surrogate.Tbl.find_opt reg.reg_ids e.Store.id with
              | Some j when j = i -> ()
              | _ -> report "registry id map misses slot %d" i);
              let expect =
                match e.Store.bound with
                | None -> -1
                | Some b -> (
                    match
                      Surrogate.Tbl.find_opt reg.reg_ids b.Store.b_transmitter
                    with
                    | Some j -> j
                    | None -> -2)
              in
              if reg.reg_trans.(i) <> expect then
                report "slot %d transmitter edge is %d, expected %d" i
                  reg.reg_trans.(i) expect
            end
          done;
          if !live <> Store.entity_count store then
            report "registry has %d live slots, store has %d entities" !live
              (Store.entity_count store);
          let schema = Store.schema store in
          Hashtbl.iter
            (fun (cls, _) col ->
              if stamp_equal col.col_stamp stamp then
                match Store.class_members store cls with
                | Error _ ->
                    report "column %s/%s over unknown class" cls
                      (spec_label col.col_spec)
                | Ok members ->
                    let marr = Array.of_list members in
                    if Array.length marr <> Array.length col.col_members then
                      report "column %s/%s has %d rows, extent has %d" cls
                        (spec_label col.col_spec)
                        (Array.length col.col_members)
                        (Array.length marr)
                    else
                      Array.iteri
                        (fun i m ->
                          if not (Surrogate.equal m col.col_members.(i)) then
                            report "column %s/%s row %d member drifted" cls
                              (spec_label col.col_spec) i
                          else
                            let c =
                              fill_cell store st reg schema col.col_spec m
                            in
                            if
                              (not (Value.equal c.cv col.col_vals.(i)))
                              || c.ce <> col.col_err.(i)
                            then
                              report
                                "column %s/%s row %d (%s): delta %s/%b, \
                                 rebuild %s/%b"
                                cls
                                (spec_label col.col_spec)
                                i (Surrogate.to_string m)
                                (Value.to_string col.col_vals.(i))
                                col.col_err.(i) (Value.to_string c.cv) c.ce)
                        marr)
            st.s_columns
      | Some _ | None -> ());
      List.rev !problems)
  | Some _ | None -> []
