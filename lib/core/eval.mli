(** Evaluation of {!Expr} expressions against the store.

    Used by {!Constraints} (integrity constraints, subrel where clauses)
    and {!Query}.  Path resolution is inheritance-aware: attributes and
    subclasses resolve through {!Inheritance}, so constraints over
    composite objects see the component data the paper says they see
    (e.g. [Girders.Bores] reaches the bores of the actual girder the
    subobject inherits from). *)

(** A navigation item: an entity (object/relationship) or a plain value. *)
type item = E of Surrogate.t | V of Value.t

type env

val env : ?self:Surrogate.t -> ?vars:(string * item) list -> Store.t -> env
val with_var : env -> string -> item -> env
val self_of : env -> Surrogate.t option

val eval : env -> Expr.t -> (Value.t, Errors.t) result
(** Full evaluation to a scalar value.  A path reaching several items in a
    scalar context is an [Eval_error]; use {!eval_items} for multi-valued
    paths. *)

val eval_bool : env -> Expr.t -> (bool, Errors.t) result
(** Evaluation in boolean context; non-boolean results are [Eval_error]. *)

val eval_items : env -> Expr.path -> (item list, Errors.t) result
(** Resolve a path to the (multi-)set of items it denotes.  The first
    segment resolves against, in order: bound variables; attributes,
    subclasses, subrelationship classes, and participants of [self]; and
    finally top-level class names.  Subsequent segments step through record
    fields, collection members, object references, attributes, subclasses,
    and participants. *)

val item_value : Store.t -> item -> Value.t
(** Entities become [Ref]s; values pass through. *)

val numeric_binop : Expr.binop -> Value.t -> Value.t -> (Value.t, Errors.t) result
(** Arithmetic with the evaluator's coercion rules: [Int op Int] stays
    exact, any other numeric pair coerces to float, division by zero and
    non-numeric operands are [Eval_error]s.  Exposed so {!Plan}'s
    compiled closures apply byte-identical semantics. *)

val compare_values : Value.t -> Value.t -> int
(** Comparison with the evaluator's coercion rule: numbers compare by
    magnitude across [Int]/[Real], everything else structurally.
    Exposed for {!Plan}. *)

val node_count : unit -> int
(** Process-wide [eval.node] counter reading (0 while metrics are
    disabled).  EXPLAIN takes a delta around the filter stage to report
    evaluator work per query. *)
