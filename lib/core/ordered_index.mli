(** Ordered attribute indexes over top-level classes.

    The ordered counterpart of {!Index}: members are kept in a balanced
    map over {!Value.compare}, so range predicates ([<], [<=], [>], [>=])
    and equality are answered without scanning the extent.  Maintenance
    follows the same write-hook protocol as {!Index}, with the same
    restriction to locally-owned attributes. *)

type t

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

val create : Store.t -> cls:string -> attr:string -> (t, Errors.t) result
val cls : t -> string
val attr : t -> string

val range : t -> lo:bound -> hi:bound -> Surrogate.t list
(** Members whose attribute lies within the bounds, in ascending attribute
    order (ties in insertion order).  [Null] values sort lowest (rank
    order of {!Value.compare}), so uninitialised attributes are excluded
    by any lower bound above [Null]. *)

val lookup : t -> Value.t -> Surrogate.t list
val size : t -> int
val hits : t -> int

val verify : t -> string list
(** Same contract as {!Index.verify}: one message per index/store
    inconsistency, [[]] when consistent. *)

val drop : t -> unit
