(** The public facade of the object model.

    Composes {!Schema}, {!Store}, {!Inheritance}, {!Constraints}, {!Query},
    and {!Composite} into the API applications use: schema definition,
    object/relationship creation, inheritance-aware reads, writes with
    staleness stamping, and constraint validation.

    Constraint checking policy: with [eager_checks] on (default off), every
    attribute write and subrelationship creation validates the affected
    entity and rolls back on violation.  Design databases usually build
    objects incrementally, so the default is to validate explicitly via
    {!validate} / {!validate_all} — the paper's design transactions check
    consistency at save time, not per update. *)

type t

val create : ?eager_checks:bool -> unit -> t
val of_parts : ?eager_checks:bool -> Schema.t -> Store.t -> t
val schema : t -> Schema.t
val store : t -> Store.t
val set_eager_checks : t -> bool -> unit

(** {1 Schema definition} *)

val define_domain : t -> string -> Domain.t -> (unit, Errors.t) result
val define_obj_type : t -> Schema.obj_type -> (unit, Errors.t) result
val define_rel_type : t -> Schema.rel_type -> (unit, Errors.t) result
val define_inher_rel_type : t -> Schema.inher_rel_type -> (unit, Errors.t) result

(** {1 Classes and objects} *)

val create_class : t -> name:string -> member_type:string -> (unit, Errors.t) result

val new_object :
  t -> ?cls:string -> ty:string -> ?attrs:(string * Value.t) list -> unit ->
  (Surrogate.t, Errors.t) result

val new_subobject :
  t -> parent:Surrogate.t -> subclass:string -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val new_relationship :
  t -> ty:string -> participants:(string * Value.t) list ->
  ?attrs:(string * Value.t) list -> unit -> (Surrogate.t, Errors.t) result

val new_subrel :
  t -> parent:Surrogate.t -> subrel:string ->
  participants:(string * Value.t) list -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result
(** Validates the subrelationship class's [where] clause immediately; on
    violation the relationship is removed again and
    [Constraint_violation] returned. *)

val delete : t -> ?force:bool -> Surrogate.t -> (unit, Errors.t) result

(** {1 Inheritance} *)

val bind :
  t -> via:string -> transmitter:Surrogate.t -> inheritor:Surrogate.t ->
  ?attrs:(string * Value.t) list -> unit -> (Surrogate.t, Errors.t) result

val unbind : t -> Surrogate.t -> (unit, Errors.t) result
val transmitter_of : t -> Surrogate.t -> (Surrogate.t option, Errors.t) result
val inheritors_of : t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
val links_of : t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
val is_stale : t -> Surrogate.t -> (bool, Errors.t) result
val stale_note : t -> Surrogate.t -> (string, Errors.t) result
val acknowledge : t -> Surrogate.t -> (unit, Errors.t) result

(** {1 Data access} *)

val get_attr : t -> Surrogate.t -> string -> (Value.t, Errors.t) result
(** Inheritance-aware read. *)

val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Local write with staleness stamping of dependent inheritance links;
    rejects inherited attributes.  Under [eager_checks], validates the
    entity and rolls the write back on violation. *)

val subclass_members : t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result
val subrel_members : t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result
val participant : t -> Surrogate.t -> string -> (Value.t, Errors.t) result
val type_of : t -> Surrogate.t -> (string, Errors.t) result

(** {1 Validation} *)

val validate : t -> Surrogate.t -> (Constraints.violation list, Errors.t) result
val validate_all : t -> Constraints.violation list

(** {1 Query and composite operations} *)

val create_index : t -> cls:string -> attr:string -> (unit, Errors.t) result
(** Register an attribute index (see {!Index}).  [select] then serves
    equality predicates on that attribute from the index. *)

val drop_index : t -> cls:string -> attr:string -> (unit, Errors.t) result

val create_ordered_index : t -> cls:string -> attr:string -> (unit, Errors.t) result
(** Register an ordered index (see {!Ordered_index}).  [select] then
    serves range predicates ([<], [<=], [>], [>=]) and equality on that
    attribute from the index.  To keep index answers identical to the
    scan's coercing comparison semantics, the optimizer only uses ordered
    indexes for integer attributes with integer constants and string
    attributes with string constants. *)

val drop_ordered_index : t -> cls:string -> attr:string -> (unit, Errors.t) result

val indexes : t -> (string * string) list
(** Registered hash-index (class, attribute) pairs. *)

val ordered_indexes : t -> (string * string) list

val index_planning_enabled : unit -> bool
val set_index_planning_enabled : bool -> unit
(** Process-wide access-path ablation switch (default on; initial state
    honours [COMPO_NO_INDEX=1]).  While off, {!select} and
    {!explain_select} ignore registered indexes and run the sequential
    scan + filter plan; index {e maintenance} is unaffected, so
    {!verify_indexes} and fsck stay meaningful.  The bench matrix uses
    this to measure what index access paths actually buy per cell. *)

val verify_indexes : t -> string list
(** Cross-check every registered index against the store (see
    {!Index.verify}); [[]] when all are consistent.  Used by fsck. *)

val select :
  t ->
  cls:string ->
  ?jobs:int ->
  ?where:Expr.t ->
  unit ->
  (Surrogate.t list, Errors.t) result
(** Members of [cls] satisfying [where].  The planner serves an indexed
    comparison between an attribute and a constant ([Attr = const],
    [Attr <= const], ..., either operand order) from the registered hash
    or ordered index; inside a conjunction, one indexable conjunct feeds
    the index and the rest filters the candidates.  Anything else scans
    the extent.

    [jobs] (default: [COMPO_JOBS], else 1) runs the residual filter on a
    pool of worker domains; planning, the access stage and the whole
    fan-out happen under one read-latch section, so every worker
    evaluates the same frozen snapshot and the rows come back in the
    exact order the sequential plan produces.  [select ~jobs:n] is
    observationally identical to [select ~jobs:1] for every [n] — the
    differential suite ([test_par_diff]) proves it over randomized
    schemas, populations, predicates {e and} mutation interleavings
    (binds, unbinds, attribute writes and deletes between selects
    exercise {!Plan}'s delta-maintained columns against the interpreted
    engine). *)

val select_subobjects :
  t -> parent:Surrogate.t -> subclass:string -> ?jobs:int -> ?where:Expr.t ->
  unit -> (Surrogate.t list, Errors.t) result

val explain_select :
  t -> cls:string -> ?where:Expr.t -> unit ->
  (Surrogate.t list * Query.explain, Errors.t) result
(** Run [select] through the same planner and report the plan: access
    choice (hash / ordered index vs. scan), indexed conjunct vs. residual
    predicate, estimated (access-stage) vs. actual cardinality, evaluator
    node count (when metrics are on), and per-stage wall times.  Surfaced
    by [compo explain query]. *)

val explain_attr :
  t -> Surrogate.t -> string ->
  (Value.t * Compo_obs.Provenance.read, Errors.t) result
(** Provenance of one inheritance-aware read: the value plus the
    transmitter chain, per-hop permeability decisions, and the cache
    outcome (see {!Inheritance.explain}).  Surfaced by
    [compo explain read]. *)

val expand : t -> ?max_depth:int -> Surrogate.t -> (Composite.node, Errors.t) result
val bill_of_materials : t -> Surrogate.t -> ((Surrogate.t * int) list, Errors.t) result
val where_used : t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
val implementations_of : t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
