module Smap = Map.Make (String)

type kind = Object_entity | Relationship_entity | Inheritance_link

type binding = {
  b_link : Surrogate.t;
  b_via : string;
  b_transmitter : Surrogate.t;
}

type entity = {
  id : Surrogate.t;
  type_name : string;
  kind : kind;
  mutable attrs : Value.t Smap.t;
  mutable participants : Value.t Smap.t;
  mutable subobjs : Surrogate.t list Smap.t;
  mutable subrels : Surrogate.t list Smap.t;
  mutable owner : Surrogate.t option;
  mutable bound : binding option;
  mutable inheritor_links : Surrogate.t list;
  mutable classes_of : string list;
}

type class_info = {
  cls_member_type : string;
  mutable cls_members : Surrogate.t list;  (* reversed insertion order *)
}

(* Opaque slot for the query-compilation layer (Plan), which sits above
   this module: Plan injects its own constructor and parks its per-store
   compiled state here, stamped against [plan_epoch]. *)
type plan_slot = ..

(* One typed record per epoch bump, so the plan layer can maintain its
   registry and columns by delta instead of rebuilding from scratch.
   Precision is best-effort: a site that cannot name what changed emits
   [Ch_global], which consumers treat as "rebuild everything". *)
type change =
  | Ch_created of Surrogate.t
  | Ch_deleted of Surrogate.t
  | Ch_attr of Surrogate.t * string
  | Ch_rebound of Surrogate.t
  | Ch_class_add of string * Surrogate.t
  | Ch_class_remove of string * Surrogate.t
  | Ch_touched of Surrogate.t
  | Ch_global

type t = {
  schema : Schema.t;
  gen : Surrogate.Gen.t;
  entities : entity Surrogate.Tbl.t;
  classes : (string, class_info) Hashtbl.t;
  mutable class_order : string list;
  (* reverse index: entity -> relationship entities referencing it as a
     participant, for referential integrity on delete *)
  referrer_index : Surrogate.t list Surrogate.Tbl.t;
  cache : Resolve_cache.t;  (* memoised inherited-attribute resolutions *)
  latch : Rwlatch.t;  (* writers exclusive vs parallel-select readers *)
  mutable read_hooks : (int * (Surrogate.t -> unit)) list;
  mutable write_hooks : (int * (Surrogate.t -> unit)) list;
  mutable next_hook : int;
  (* mutation stamp for compiled plans: bumped by every data or
     structural mutation (including class-extent changes), whether or
     not the resolve cache is enabled — the cache generation freezes
     while the cache is disabled, so it cannot serve as a staleness
     signal on its own *)
  mutable plan_epoch : int;
  mutable plan_slot : plan_slot option;
  (* bounded change log: newest first, covering exactly the epoch window
     (change_floor, plan_epoch]; length = plan_epoch - change_floor.  On
     overflow the window restarts at the current epoch, and
     [changes_since] answers [None] for anything older. *)
  mutable change_log : change list;
  mutable change_floor : int;
}

type hook_id = int

let ( let* ) = Result.bind

(* observability: entity traffic through the storage layer *)
module Obs = Compo_obs.Metrics

let m_lookup = Obs.counter "store.lookup"
let m_lookup_miss = Obs.counter "store.lookup.miss"
let m_create = Obs.counter "store.entity.create"
let m_delete = Obs.counter "store.entity.delete"
let m_attr_read = Obs.counter "store.attr.read"
let m_attr_write = Obs.counter "store.attr.write"

let create schema =
  {
    schema;
    gen = Surrogate.Gen.create ();
    entities = Surrogate.Tbl.create 1024;
    classes = Hashtbl.create 16;
    class_order = [];
    referrer_index = Surrogate.Tbl.create 256;
    cache = Resolve_cache.create ();
    latch = Rwlatch.create ();
    read_hooks = [];
    write_hooks = [];
    next_hook = 1;
    plan_epoch = 0;
    plan_slot = None;
    change_log = [];
    change_floor = 0;
  }

let schema t = t.schema
let plan_epoch t = t.plan_epoch
let plan_slot t = t.plan_slot
let set_plan_slot t slot = t.plan_slot <- Some slot

let change_log_cap = 512

(* the only place the plan epoch advances: one change record per bump *)
let record_change t ch =
  t.plan_epoch <- t.plan_epoch + 1;
  if t.plan_epoch - t.change_floor > change_log_cap then begin
    t.change_log <- [ ch ];
    t.change_floor <- t.plan_epoch - 1
  end
  else t.change_log <- ch :: t.change_log

let changes_since t since =
  if since < t.change_floor then None
  else if since > t.plan_epoch then None
  else
    let rec take n acc = function
      | _ when n = 0 -> Some acc
      | [] -> None (* length invariant broken; refuse to guess *)
      | ch :: rest -> take (n - 1) (ch :: acc) rest
    in
    take (t.plan_epoch - since) [] t.change_log

(* ------------------------------------------------------------------ *)
(* Latching: every mutator below runs [exclusively]; a parallel select
   holds [with_read_latch] across its whole fan-out, so its workers see
   one frozen store state.  Purely sequential use never contends: the
   write side is reentrant and uncontended lock/unlock is cheap. *)

let exclusively t f = Rwlatch.with_write t.latch f
let with_read_latch t f = Rwlatch.with_read t.latch f

(* ------------------------------------------------------------------ *)
(* Resolve cache: generation plumbing                                  *)

let resolve_cache t = t.cache
let set_resolve_cache_enabled t b =
  exclusively t @@ fun () -> Resolve_cache.set_enabled t.cache b

(* The cache stands in for the chain walk, so it may only serve reads
   when no read hooks are installed: hooks carry the per-hop
   notifications the transaction layer turns into lock inheritance. *)
let resolve_cache_status t =
  if not (Resolve_cache.enabled t.cache) then `Disabled
  else match t.read_hooks with [] -> `Active | _ :: _ -> `Hooked

let resolve_cache_active t =
  match resolve_cache_status t with
  | `Active -> true
  | `Disabled | `Hooked -> false

let invalidate_resolve_cache t =
  exclusively t @@ fun () ->
  record_change t Ch_global;
  Resolve_cache.invalidate_global t.cache

(* for sites that record a precise change through [notify_write] but
   still need the PR 2 machinery globally invalidated *)
let invalidate_cache_only t = Resolve_cache.invalidate_global t.cache

(* A transmitter attribute write invalidates only the writer and its
   inheritor closure; unrelated chains keep their cached resolutions.
   The walk runs over the store's own structural fields (the semantic
   closure lives in Inheritance, which sits above this module).  Skipped
   while the table is empty: with the cache active no user code runs
   between generation capture and fill, so there is nothing to protect. *)
let invalidate_resolved_for_write t s =
  exclusively t @@ fun () ->
  if Resolve_cache.enabled t.cache && Resolve_cache.size t.cache > 0 then begin
    let rec close acc s =
      match Surrogate.Tbl.find_opt t.entities s with
      | None -> acc
      | Some e ->
          List.fold_left
            (fun acc link ->
              match Surrogate.Tbl.find_opt t.entities link with
              | None -> acc
              | Some le -> (
                  match Smap.find_opt "inheritor" le.participants with
                  | Some (Value.Ref i) when not (Surrogate.Set.mem i acc) ->
                      close (Surrogate.Set.add i acc) i
                  | Some _ | None -> acc))
            acc e.inheritor_links
    in
    let closure = close Surrogate.Set.empty s in
    Resolve_cache.invalidate_scoped t.cache (s :: Surrogate.Set.elements closure)
  end

let fresh_hook t =
  let id = t.next_hook in
  t.next_hook <- id + 1;
  id

let add_read_hook t f =
  exclusively t @@ fun () ->
  let id = fresh_hook t in
  t.read_hooks <- (id, f) :: t.read_hooks;
  id

let add_write_hook t f =
  exclusively t @@ fun () ->
  let id = fresh_hook t in
  t.write_hooks <- (id, f) :: t.write_hooks;
  id

let remove_hook t id =
  exclusively t @@ fun () ->
  t.read_hooks <- List.filter (fun (i, _) -> i <> id) t.read_hooks;
  t.write_hooks <- List.filter (fun (i, _) -> i <> id) t.write_hooks

let read_hooks_installed t = t.read_hooks <> []
let notify_read t s = List.iter (fun (_, f) -> f s) t.read_hooks
let notify_write ?change t s =
  (* every mutation site broadcasts here, so this is also where the
     compiled-plan stamp advances; callers that know what changed pass a
     precise record, anyone else gets the conservative [Ch_global] *)
  record_change t (Option.value ~default:Ch_global change);
  List.iter (fun (_, f) -> f s) t.write_hooks

(* ------------------------------------------------------------------ *)
(* Entity access                                                       *)

let get t s =
  Obs.incr m_lookup;
  match Surrogate.Tbl.find_opt t.entities s with
  | Some e -> Ok e
  | None ->
      Obs.incr m_lookup_miss;
      Error (Errors.Unknown_object (Surrogate.to_string s))

let mem t s = Surrogate.Tbl.mem t.entities s
let type_of t s = Result.map (fun e -> e.type_name) (get t s)

let is_instance_of t s ty =
  match get t s with
  | Error _ -> false
  | Ok e ->
      String.equal e.type_name ty
      || List.mem ty (Schema.transmitter_chain t.schema e.type_name)

let iter t f = Surrogate.Tbl.iter (fun _ e -> f e) t.entities
let fold t f init = Surrogate.Tbl.fold (fun _ e acc -> f acc e) t.entities init
let entity_count t = Surrogate.Tbl.length t.entities

(* ------------------------------------------------------------------ *)
(* Classes                                                             *)

let create_class t ~name ~member_type =
  exclusively t @@ fun () ->
  if Hashtbl.mem t.classes name then
    Error (Errors.Duplicate_definition ("class " ^ name))
  else
    let* _ = Schema.find_obj_type t.schema member_type in
    Hashtbl.replace t.classes name { cls_member_type = member_type; cls_members = [] };
    t.class_order <- name :: t.class_order;
    record_change t Ch_global;
    Ok ()

let class_names t = List.rev t.class_order

let find_class t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> Ok c
  | None -> Error (Errors.Unknown_class name)

let class_member_type t name =
  Result.map (fun c -> c.cls_member_type) (find_class t name)

let class_members t name =
  Result.map (fun c -> List.rev c.cls_members) (find_class t name)

let insert_into_class t ~cls s =
  exclusively t @@ fun () ->
  let* c = find_class t cls in
  let* e = get t s in
  if not (is_instance_of t s c.cls_member_type) then
    Error
      (Errors.Type_error
         (Printf.sprintf "class %s holds objects of type %s, not %s" cls
            c.cls_member_type e.type_name))
  else if List.mem cls e.classes_of then Ok ()
  else begin
    c.cls_members <- s :: c.cls_members;
    e.classes_of <- cls :: e.classes_of;
    notify_write ~change:(Ch_class_add (cls, s)) t s;
    Ok ()
  end

let remove_from_class t ~cls s =
  exclusively t @@ fun () ->
  let* c = find_class t cls in
  let* e = get t s in
  c.cls_members <- List.filter (fun m -> not (Surrogate.equal m s)) c.cls_members;
  e.classes_of <- List.filter (fun n -> not (String.equal n cls)) e.classes_of;
  notify_write ~change:(Ch_class_remove (cls, s)) t s;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Attribute validation helpers                                        *)

(* Only locally-owned attributes may be written; a name that reaches the
   type through an inheritance relationship is read-only on this side. *)
let own_attr_def t ty name =
  let* attrs = Schema.effective_attrs t.schema ty in
  match
    List.find_opt (fun (a, _) -> String.equal a.Schema.attr_name name) attrs
  with
  | Some (a, Schema.Own) -> Ok a
  | Some (_, Schema.Via rel) ->
      Error
        (Errors.Inherited_readonly
           (Printf.sprintf "%s (inherited through %s)" name rel))
  | None -> Error (Errors.Unknown_attribute (ty ^ "." ^ name))

let check_attr_value t ty (name, value) =
  let* def = own_attr_def t ty name in
  let* domain = Schema.expand_domain t.schema def.Schema.attr_domain in
  Value.conforms domain value

let validated_attrs t ty attrs =
  let* () =
    List.fold_left
      (fun acc binding ->
        let* () = acc in
        check_attr_value t ty binding)
      (Ok ()) attrs
  in
  let* () =
    let names = List.map fst attrs in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then Error (Errors.Duplicate_definition "attribute given twice")
    else Ok ()
  in
  Ok (List.fold_left (fun m (n, v) -> Smap.add n v m) Smap.empty attrs)

(* Fresh entity with empty local subclass/subrel maps initialised from the
   type definition, so membership queries distinguish "empty" from
   "no such subclass". *)
let blank_maps own_subclasses own_subrels =
  let subobjs =
    List.fold_left
      (fun m (sc : Schema.subclass_def) -> Smap.add sc.sc_name [] m)
      Smap.empty own_subclasses
  in
  let subrels =
    List.fold_left
      (fun m (sr : Schema.subrel_def) -> Smap.add sr.sr_name [] m)
      Smap.empty own_subrels
  in
  (subobjs, subrels)

let add_entity t e =
  Obs.incr m_create;
  Surrogate.Tbl.replace t.entities e.id e

let make_object t ~ty attrs =
  let* ot = Schema.find_obj_type t.schema ty in
  let* attr_map = validated_attrs t ty attrs in
  let subobjs, subrels = blank_maps ot.ot_subclasses ot.ot_subrels in
  let e =
    {
      id = Surrogate.Gen.fresh t.gen;
      type_name = ty;
      kind = Object_entity;
      attrs = attr_map;
      participants = Smap.empty;
      subobjs;
      subrels;
      owner = None;
      bound = None;
      inheritor_links = [];
      classes_of = [];
    }
  in
  add_entity t e;
  Ok e

let create_object t ?cls ~ty attrs =
  exclusively t @@ fun () ->
  let* e = make_object t ~ty attrs in
  let* () =
    match cls with
    | None -> Ok ()
    | Some cls -> insert_into_class t ~cls e.id
  in
  notify_write ~change:(Ch_created e.id) t e.id;
  Ok e.id

let own_subclass_def t parent_ty name =
  let* subs = Schema.effective_subclasses t.schema parent_ty in
  match
    List.find_opt (fun (s, _) -> String.equal s.Schema.sc_name name) subs
  with
  | Some (s, Schema.Own) -> Ok s
  | Some (_, Schema.Via rel) ->
      Error
        (Errors.Inherited_readonly
           (Printf.sprintf "subclass %s (inherited through %s)" name rel))
  | None -> Error (Errors.Unknown_class (parent_ty ^ "." ^ name))

let create_subobject t ~parent ~subclass attrs =
  exclusively t @@ fun () ->
  let* pe = get t parent in
  let* sc = own_subclass_def t pe.type_name subclass in
  let member_ty = Schema.subclass_member_type t.schema sc in
  let* e = make_object t ~ty:member_ty attrs in
  e.owner <- Some parent;
  pe.subobjs <-
    Smap.update subclass
      (function Some ms -> Some (ms @ [ e.id ]) | None -> Some [ e.id ])
      pe.subobjs;
  record_change t (Ch_created e.id);
  notify_write ~change:(Ch_touched parent) t parent;
  Ok e.id

(* ------------------------------------------------------------------ *)
(* Relationships                                                       *)

let check_participant t (p : Schema.participant) value =
  let check_ref v =
    match Value.as_ref v with
    | None ->
        Error
          (Errors.Type_error
             (Printf.sprintf "participant %s expects an object reference"
                p.p_name))
    | Some s -> (
        let* _ = get t s in
        match p.p_type with
        | None -> Ok ()
        | Some ty ->
            if is_instance_of t s ty then Ok ()
            else
              Error
                (Errors.Type_error
                   (Printf.sprintf "participant %s expects an object of type %s"
                      p.p_name ty)))
  in
  match (p.p_card, value) with
  | Schema.One, v -> check_ref v
  | Schema.Many, Value.Set vs ->
      List.fold_left
        (fun acc v ->
          let* () = acc in
          check_ref v)
        (Ok ()) vs
  | Schema.Many, _ ->
      Error
        (Errors.Type_error
           (Printf.sprintf "participant %s expects a set of object references"
              p.p_name))

let index_referrer t rel_id value =
  List.iter
    (fun target ->
      let existing =
        Option.value ~default:[] (Surrogate.Tbl.find_opt t.referrer_index target)
      in
      Surrogate.Tbl.replace t.referrer_index target (rel_id :: existing))
    (Value.refs value)

let unindex_referrer t rel_id value =
  List.iter
    (fun target ->
      match Surrogate.Tbl.find_opt t.referrer_index target with
      | None -> ()
      | Some ids ->
          let remaining =
            List.filter (fun i -> not (Surrogate.equal i rel_id)) ids
          in
          if remaining = [] then Surrogate.Tbl.remove t.referrer_index target
          else Surrogate.Tbl.replace t.referrer_index target remaining)
    (Value.refs value)

let referrers t s =
  Option.value ~default:[] (Surrogate.Tbl.find_opt t.referrer_index s)

let make_relationship t ~ty ~participants ~attrs =
  let* rt = Schema.find_rel_type t.schema ty in
  (* every declared participant must be supplied, and nothing else *)
  let declared = List.map (fun p -> p.Schema.p_name) rt.rt_relates in
  let supplied = List.map fst participants in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if List.mem n supplied then Ok ()
        else
          Error
            (Errors.Schema_error
               (Printf.sprintf "relationship %s: missing participant %s" ty n)))
      (Ok ()) declared
  in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if List.mem n declared then Ok ()
        else
          Error
            (Errors.Schema_error
               (Printf.sprintf "relationship %s: unknown participant %s" ty n)))
      (Ok ()) supplied
  in
  let* () =
    List.fold_left
      (fun acc (p : Schema.participant) ->
        let* () = acc in
        check_participant t p (List.assoc p.p_name participants))
      (Ok ()) rt.rt_relates
  in
  let* attr_map = validated_attrs t ty attrs in
  let subobjs, subrels = blank_maps rt.rt_subclasses [] in
  let participants_map =
    List.fold_left (fun m (n, v) -> Smap.add n v m) Smap.empty participants
  in
  let e =
    {
      id = Surrogate.Gen.fresh t.gen;
      type_name = ty;
      kind = Relationship_entity;
      attrs = attr_map;
      participants = participants_map;
      subobjs;
      subrels;
      owner = None;
      bound = None;
      inheritor_links = [];
      classes_of = [];
    }
  in
  add_entity t e;
  Smap.iter (fun _ v -> index_referrer t e.id v) participants_map;
  Ok e

let create_relationship t ~ty ~participants ?(attrs = []) () =
  exclusively t @@ fun () ->
  let* e = make_relationship t ~ty ~participants ~attrs in
  notify_write ~change:(Ch_created e.id) t e.id;
  Ok e.id

let own_subrel_def t parent_ty name =
  (* subrels are never permeable in this model: the paper's inheriting
     clauses name attributes and subclasses only *)
  let* entry =
    match Schema.find t.schema parent_ty with
    | Some e -> Ok e
    | None -> Error (Errors.Unknown_type parent_ty)
  in
  let subrels =
    match entry with
    | Schema.Obj_type o -> o.ot_subrels
    | Schema.Rel_type _ | Schema.Inher_type _ -> []
  in
  match
    List.find_opt (fun (sr : Schema.subrel_def) -> String.equal sr.sr_name name) subrels
  with
  | Some sr -> Ok sr
  | None -> Error (Errors.Unknown_class (parent_ty ^ "." ^ name))

let create_subrel t ~parent ~subrel ~participants ?(attrs = []) () =
  exclusively t @@ fun () ->
  let* pe = get t parent in
  let* sr = own_subrel_def t pe.type_name subrel in
  let* e = make_relationship t ~ty:sr.sr_rel_type ~participants ~attrs in
  e.owner <- Some parent;
  pe.subrels <-
    Smap.update subrel
      (function Some ms -> Some (ms @ [ e.id ]) | None -> Some [ e.id ])
      pe.subrels;
  record_change t (Ch_created e.id);
  notify_write ~change:(Ch_touched parent) t parent;
  Ok e.id

(* ------------------------------------------------------------------ *)
(* Attribute access                                                    *)

let local_attr t s name =
  let* e = get t s in
  Obs.incr m_attr_read;
  notify_read t s;
  Ok (Option.value ~default:Value.Null (Smap.find_opt name e.attrs))

let set_attr t s name value =
  exclusively t @@ fun () ->
  let* e = get t s in
  let* () = check_attr_value t e.type_name (name, value) in
  Obs.incr m_attr_write;
  e.attrs <- Smap.add name value e.attrs;
  invalidate_resolved_for_write t s;
  notify_write ~change:(Ch_attr (s, name)) t s;
  Ok ()

let subclass_members t s name =
  let* e = get t s in
  match Smap.find_opt name e.subobjs with
  | Some ms ->
      notify_read t s;
      Ok ms
  | None -> Error (Errors.Unknown_class (e.type_name ^ "." ^ name))

let subrel_members t s name =
  let* e = get t s in
  match Smap.find_opt name e.subrels with
  | Some ms ->
      notify_read t s;
      Ok ms
  | None -> Error (Errors.Unknown_class (e.type_name ^ "." ^ name))

let participant t s name =
  let* e = get t s in
  match Smap.find_opt name e.participants with
  | Some v ->
      notify_read t s;
      Ok v
  | None -> Error (Errors.Unknown_attribute ("participant " ^ name))

let set_participant t s name value =
  exclusively t @@ fun () ->
  let* e = get t s in
  if e.kind <> Relationship_entity then
    Error
      (Errors.Schema_error
         (Surrogate.to_string s ^ " is not a relationship object"))
  else
    let* rt = Schema.find_rel_type t.schema e.type_name in
    match
      List.find_opt (fun (p : Schema.participant) -> String.equal p.p_name name) rt.rt_relates
    with
    | None -> Error (Errors.Unknown_attribute ("participant " ^ name))
    | Some p ->
        let* () = check_participant t p value in
        (match Smap.find_opt name e.participants with
        | Some old -> unindex_referrer t s old
        | None -> ());
        e.participants <- Smap.add name value e.participants;
        index_referrer t s value;
        (* rewiring may change who an inheritance link names, so no scope
           is safe to keep *)
        invalidate_cache_only t;
        notify_write ~change:(Ch_touched s) t s;
        Ok ()

let owner_of t s = Result.map (fun e -> e.owner) (get t s)

(* ------------------------------------------------------------------ *)
(* Inheritance links (structural layer; semantics in Inheritance)      *)

let add_inheritance_link t ~ty ~transmitter ~inheritor ~attrs =
  exclusively t @@ fun () ->
  let* it = Schema.find_inher_rel_type t.schema ty in
  let* te = get t transmitter in
  let* ie = get t inheritor in
  let* attr_map =
    (* link attributes validated against the inher-rel type's own attrs;
       the implicit consistency-control attributes are always allowed *)
    let declared = List.map (fun (a : Schema.attr_def) -> a.attr_name) it.it_attrs in
    let* () =
      List.fold_left
        (fun acc (n, _) ->
          let* () = acc in
          if List.mem n declared || String.equal n "_stale" || String.equal n "_note"
          then Ok ()
          else Error (Errors.Unknown_attribute (ty ^ "." ^ n)))
        (Ok ()) attrs
    in
    Ok (List.fold_left (fun m (n, v) -> Smap.add n v m) Smap.empty attrs)
  in
  (* section 4.1: the inheritance relationship may possess subobjects *)
  let subobjs, _ = blank_maps it.it_subclasses [] in
  let e =
    {
      id = Surrogate.Gen.fresh t.gen;
      type_name = ty;
      kind = Inheritance_link;
      attrs = attr_map;
      participants =
        Smap.add "transmitter" (Value.Ref transmitter)
          (Smap.singleton "inheritor" (Value.Ref inheritor));
      subobjs;
      subrels = Smap.empty;
      owner = None;
      bound = None;
      inheritor_links = [];
      classes_of = [];
    }
  in
  add_entity t e;
  ie.bound <- Some { b_link = e.id; b_via = ty; b_transmitter = transmitter };
  te.inheritor_links <- e.id :: te.inheritor_links;
  (* binding changes what every transitive inheritor of [inheritor]
     resolves to; the resolve cache drops globally, while the plan layer
     gets a precise [Ch_rebound] it can scope through its dep tables *)
  record_change t (Ch_created e.id);
  invalidate_cache_only t;
  notify_write ~change:(Ch_rebound inheritor) t inheritor;
  Ok e.id

(* ------------------------------------------------------------------ *)
(* Delete with cascade                                                 *)

let rec remove_inheritance_link t link =
  exclusively t @@ fun () ->
  let* le = get t link in
  if le.kind <> Inheritance_link then
    Error (Errors.Invalid_binding (Surrogate.to_string link ^ " is not an inheritance link"))
  else begin
    let inheritor =
      match Smap.find_opt "inheritor" le.participants with
      | Some (Value.Ref i) ->
          (match get t i with
          | Ok ie -> ie.bound <- None
          | Error _ -> ());
          Some i
      | Some _ | None -> None
    in
    (match Smap.find_opt "transmitter" le.participants with
    | Some (Value.Ref tr) -> (
        match get t tr with
        | Ok te ->
            te.inheritor_links <-
              List.filter (fun l -> not (Surrogate.equal l link)) te.inheritor_links
        | Error _ -> ())
    | Some _ | None -> ());
    (* the link's own subobjects die with it (section 4.1 links may carry
       subobjects; section 3 subobjects die with their complex object) *)
    Smap.iter
      (fun _ ms -> List.iter (fun m -> ignore (delete t ~force:true m)) ms)
      le.subobjs;
    Obs.incr m_delete;
    Surrogate.Tbl.remove t.entities link;
    (* unbind: previously resolved inherited values must become
       unobservable immediately — reads yield [Null] from the next call *)
    record_change t (Ch_deleted link);
    record_change t
      (match inheritor with Some i -> Ch_rebound i | None -> Ch_global);
    invalidate_cache_only t;
    Ok ()
  end

and delete t ?(force = false) s =
  exclusively t @@ fun () ->
  let* e = get t s in
  let* () =
    if e.inheritor_links <> [] && not force then
      Error
        (Errors.Delete_restricted
           (Printf.sprintf "%s has %d bound inheritor(s)" (Surrogate.to_string s)
              (List.length e.inheritor_links)))
    else Ok ()
  in
  let incoming =
    (* relationships referencing this entity, excluding its own subrels
       (those die with it anyway) and its inheritance links *)
    List.filter
      (fun r ->
        match get t r with
        | Ok re ->
            re.kind = Relationship_entity
            && not (re.owner = Some s)
        | Error _ -> false)
      (referrers t s)
  in
  let* () =
    if incoming <> [] && not force then
      Error
        (Errors.Delete_restricted
           (Printf.sprintf "%s participates in %d relationship(s)"
              (Surrogate.to_string s) (List.length incoming)))
    else Ok ()
  in
  (* From here on the delete cannot fail; perform the cascade. *)
  List.iter
    (fun link -> ignore (remove_inheritance_link t link))
    e.inheritor_links;
  (match e.bound with
  | Some b -> ignore (remove_inheritance_link t b.b_link)
  | None -> ());
  List.iter (fun r -> ignore (delete t ~force:true r)) incoming;
  Smap.iter (fun _ ms -> List.iter (fun m -> ignore (delete t ~force:true m)) ms) e.subobjs;
  Smap.iter (fun _ ms -> List.iter (fun m -> ignore (delete t ~force:true m)) ms) e.subrels;
  (* detach from classes *)
  List.iter
    (fun cls ->
      match Hashtbl.find_opt t.classes cls with
      | Some c ->
          c.cls_members <-
            List.filter (fun m -> not (Surrogate.equal m s)) c.cls_members;
          record_change t (Ch_class_remove (cls, s))
      | None -> ())
    e.classes_of;
  (* detach from owner *)
  (match e.owner with
  | Some o -> (
      match get t o with
      | Ok oe ->
          let drop = List.filter (fun m -> not (Surrogate.equal m s)) in
          oe.subobjs <- Smap.map drop oe.subobjs;
          oe.subrels <- Smap.map drop oe.subrels;
          record_change t (Ch_touched o)
      | Error _ -> ())
  | None -> ());
  (* drop referrer index contributions of this entity *)
  Smap.iter (fun _ v -> unindex_referrer t s v) e.participants;
  Obs.incr m_delete;
  Surrogate.Tbl.remove t.entities s;
  invalidate_cache_only t;
  notify_write ~change:(Ch_deleted s) t s;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Persistence support                                                 *)

let generator t = t.gen

let restore_entity t e =
  exclusively t @@ fun () ->
  Surrogate.Gen.mark_used t.gen e.id;
  add_entity t e;
  Smap.iter (fun _ v -> index_referrer t e.id v) e.participants;
  invalidate_resolve_cache t

let restore_class t ~name ~member_type ~members =
  exclusively t @@ fun () ->
  Hashtbl.replace t.classes name
    { cls_member_type = member_type; cls_members = List.rev members };
  if not (List.mem name t.class_order) then
    t.class_order <- name :: t.class_order;
  record_change t Ch_global

(* ------------------------------------------------------------------ *)
(* Structural invariants                                               *)

let check_invariants t =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let exists s = Surrogate.Tbl.mem t.entities s in
  let id_str = Surrogate.to_string in
  iter t (fun e ->
      (* subobjects: exist, are objects-or-relationship-holders, owned by e *)
      Smap.iter
        (fun cls members ->
          List.iter
            (fun m ->
              match Surrogate.Tbl.find_opt t.entities m with
              | None ->
                  report "%s.%s contains dangling member %s" (id_str e.id) cls
                    (id_str m)
              | Some me ->
                  if me.owner <> Some e.id then
                    report "%s in %s.%s has owner %s" (id_str m) (id_str e.id)
                      cls
                      (match me.owner with
                      | Some o -> id_str o
                      | None -> "none"))
            members)
        e.subobjs;
      Smap.iter
        (fun cls members ->
          List.iter
            (fun m ->
              match Surrogate.Tbl.find_opt t.entities m with
              | None ->
                  report "%s.%s contains dangling subrel %s" (id_str e.id) cls
                    (id_str m)
              | Some me ->
                  if me.kind <> Relationship_entity then
                    report "%s in %s.%s is not a relationship" (id_str m)
                      (id_str e.id) cls;
                  if me.owner <> Some e.id then
                    report "subrel %s of %s has wrong owner" (id_str m)
                      (id_str e.id))
            members)
        e.subrels;
      (* owner back-pointer: the owner must list e in some local class *)
      (match e.owner with
      | None -> ()
      | Some o -> (
          match Surrogate.Tbl.find_opt t.entities o with
          | None -> report "%s has dangling owner %s" (id_str e.id) (id_str o)
          | Some oe ->
              let listed =
                Smap.exists (fun _ ms -> List.exists (Surrogate.equal e.id) ms) oe.subobjs
                || Smap.exists (fun _ ms -> List.exists (Surrogate.equal e.id) ms) oe.subrels
              in
              if not listed then
                report "%s has owner %s but is not among its members"
                  (id_str e.id) (id_str o)));
      (* binding: link exists, is a link, names both ends; transmitter
         back-pointer present *)
      (match e.bound with
      | None -> ()
      | Some b -> (
          match Surrogate.Tbl.find_opt t.entities b.b_link with
          | None -> report "%s bound via dangling link %s" (id_str e.id) (id_str b.b_link)
          | Some le ->
              if le.kind <> Inheritance_link then
                report "binding link %s of %s is not an inheritance link"
                  (id_str b.b_link) (id_str e.id);
              (match Smap.find_opt "inheritor" le.participants with
              | Some (Value.Ref i) when Surrogate.equal i e.id -> ()
              | _ ->
                  report "link %s does not name %s as inheritor" (id_str b.b_link)
                    (id_str e.id));
              (match Surrogate.Tbl.find_opt t.entities b.b_transmitter with
              | None ->
                  report "%s inherits from dangling transmitter %s" (id_str e.id)
                    (id_str b.b_transmitter)
              | Some te ->
                  if not (List.exists (Surrogate.equal b.b_link) te.inheritor_links)
                  then
                    report "transmitter %s misses back-pointer to link %s"
                      (id_str b.b_transmitter) (id_str b.b_link))));
      (* inheritor_links point back at self as transmitter *)
      List.iter
        (fun link ->
          match Surrogate.Tbl.find_opt t.entities link with
          | None -> report "%s lists dangling link %s" (id_str e.id) (id_str link)
          | Some le -> (
              match Smap.find_opt "transmitter" le.participants with
              | Some (Value.Ref tr) when Surrogate.equal tr e.id -> ()
              | _ ->
                  report "link %s does not name %s as transmitter" (id_str link)
                    (id_str e.id)))
        e.inheritor_links;
      (* participants reference live entities and are indexed *)
      Smap.iter
        (fun pname v ->
          List.iter
            (fun target ->
              if not (exists target) then
                report "%s participant %s references dangling %s" (id_str e.id)
                  pname (id_str target)
              else if
                e.kind = Relationship_entity
                && not (List.exists (Surrogate.equal e.id) (referrers t target))
              then
                report "referrer index misses %s -> %s" (id_str target)
                  (id_str e.id))
            (Value.refs v))
        e.participants;
      (* class membership coherence *)
      List.iter
        (fun cls ->
          match Hashtbl.find_opt t.classes cls with
          | None -> report "%s claims membership in unknown class %s" (id_str e.id) cls
          | Some c ->
              if not (List.exists (Surrogate.equal e.id) c.cls_members) then
                report "%s not listed in class %s" (id_str e.id) cls)
        e.classes_of;
      (* acyclicity of containment and inheritance from this node *)
      let rec owner_walk seen s =
        match Surrogate.Tbl.find_opt t.entities s with
        | Some { owner = Some o; _ } ->
            if List.exists (Surrogate.equal o) seen then
              report "containment cycle through %s" (id_str o)
            else owner_walk (o :: seen) o
        | Some _ | None -> ()
      in
      owner_walk [ e.id ] e.id;
      let rec trans_walk seen s =
        match Surrogate.Tbl.find_opt t.entities s with
        | Some { bound = Some b; _ } ->
            if List.exists (Surrogate.equal b.b_transmitter) seen then
              report "inheritance cycle through %s" (id_str b.b_transmitter)
            else trans_walk (b.b_transmitter :: seen) b.b_transmitter
        | Some _ | None -> ()
      in
      trans_walk [ e.id ] e.id);
  (* classes: members exist and carry the membership mark *)
  Hashtbl.iter
    (fun cls c ->
      List.iter
        (fun m ->
          match Surrogate.Tbl.find_opt t.entities m with
          | None -> report "class %s lists dangling member %s" cls (id_str m)
          | Some me ->
              if not (List.mem cls me.classes_of) then
                report "class %s member %s misses membership mark" cls (id_str m))
        c.cls_members)
    t.classes;
  List.rev !problems
