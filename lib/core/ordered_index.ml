module Vmap = Map.Make (Value)

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

type t = {
  ox_store : Store.t;
  ox_cls : string;
  ox_attr : string;
  mutable tree : Surrogate.t list Vmap.t;  (* value -> members, newest first *)
  current : Value.t Surrogate.Tbl.t;
  mutable hook : Store.hook_id option;
  mutable ox_hits : int;
}

let ( let* ) = Result.bind
let cls t = t.ox_cls
let attr t = t.ox_attr

module Obs = Compo_obs.Metrics

let m_lookup = Obs.counter "ordered_index.lookup"
let m_range = Obs.counter "ordered_index.range"
let m_hit = Obs.counter "ordered_index.hit"
let m_miss = Obs.counter "ordered_index.miss"

let remove_entry t s =
  match Surrogate.Tbl.find_opt t.current s with
  | None -> ()
  | Some v ->
      Surrogate.Tbl.remove t.current s;
      t.tree <-
        Vmap.update v
          (function
            | None -> None
            | Some members -> (
                match
                  List.filter (fun m -> not (Surrogate.equal m s)) members
                with
                | [] -> None
                | remaining -> Some remaining))
          t.tree

let add_entry t s v =
  Surrogate.Tbl.replace t.current s v;
  t.tree <-
    Vmap.update v
      (function None -> Some [ s ] | Some members -> Some (s :: members))
      t.tree

let refresh t s =
  remove_entry t s;
  match Store.get t.ox_store s with
  | Error _ -> ()
  | Ok e ->
      if List.mem t.ox_cls e.Store.classes_of then
        let v =
          Option.value ~default:Value.Null
            (Store.Smap.find_opt t.ox_attr e.Store.attrs)
        in
        add_entry t s v

let create store ~cls ~attr =
  let* member_type = Store.class_member_type store cls in
  let* () =
    match Schema.find_effective_attr (Store.schema store) member_type attr with
    | Some (_, Schema.Own) -> Ok ()
    | Some (_, Schema.Via rel) ->
        Error
          (Errors.Schema_error
             (Printf.sprintf "cannot index %s.%s: inherited through %s"
                member_type attr rel))
    | None -> Error (Errors.Unknown_attribute (member_type ^ "." ^ attr))
  in
  let t =
    {
      ox_store = store;
      ox_cls = cls;
      ox_attr = attr;
      tree = Vmap.empty;
      current = Surrogate.Tbl.create 256;
      hook = None;
      ox_hits = 0;
    }
  in
  let* members = Store.class_members store cls in
  List.iter (refresh t) members;
  t.hook <- Some (Store.add_write_hook store (refresh t));
  Ok t

let range t ~lo ~hi =
  t.ox_hits <- t.ox_hits + 1;
  Obs.incr m_range;
  (* clip the tree to the bounds (logarithmic), then fold ascending *)
  let clipped =
    let after_lo =
      match lo with
      | Unbounded -> t.tree
      | Inclusive b ->
          let _, eq, above = Vmap.split b t.tree in
          (match eq with Some m -> Vmap.add b m above | None -> above)
      | Exclusive b ->
          let _, _, above = Vmap.split b t.tree in
          above
    in
    match hi with
    | Unbounded -> after_lo
    | Inclusive b ->
        let below, eq, _ = Vmap.split b after_lo in
        (match eq with Some m -> Vmap.add b m below | None -> below)
    | Exclusive b ->
        let below, _, _ = Vmap.split b after_lo in
        below
  in
  let buckets =
    Vmap.fold (fun _ members acc -> List.rev members :: acc) clipped []
  in
  List.concat (List.rev buckets)

let lookup t v =
  t.ox_hits <- t.ox_hits + 1;
  Obs.incr m_lookup;
  match Vmap.find_opt v t.tree with
  | Some members ->
      Obs.incr m_hit;
      List.rev members
  | None ->
      Obs.incr m_miss;
      []

let size t = Surrogate.Tbl.length t.current
let hits t = t.ox_hits

let verify t =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let label = Printf.sprintf "ordered index %s.%s" t.ox_cls t.ox_attr in
  Surrogate.Tbl.iter
    (fun s v ->
      (match Store.get t.ox_store s with
      | Error _ ->
          say "%s: %s is indexed but deleted" label (Surrogate.to_string s)
      | Ok e ->
          if not (List.mem t.ox_cls e.Store.classes_of) then
            say "%s: %s is indexed but no longer a class member" label
              (Surrogate.to_string s)
          else
            let actual =
              Option.value ~default:Value.Null
                (Store.Smap.find_opt t.ox_attr e.Store.attrs)
            in
            if Value.compare actual v <> 0 then
              say "%s: %s is indexed under a stale value" label
                (Surrogate.to_string s));
      let bucket = Option.value ~default:[] (Vmap.find_opt v t.tree) in
      match List.length (List.filter (Surrogate.equal s) bucket) with
      | 1 -> ()
      | 0 -> say "%s: %s is missing from its bucket" label (Surrogate.to_string s)
      | n ->
          say "%s: %s appears %d times in its bucket" label
            (Surrogate.to_string s) n)
    t.current;
  (match Store.class_members t.ox_store t.ox_cls with
  | Error _ -> say "%s: class vanished from the store" label
  | Ok members ->
      List.iter
        (fun s ->
          if not (Surrogate.Tbl.mem t.current s) then
            say "%s: class member %s is not indexed" label
              (Surrogate.to_string s))
        members);
  List.rev !problems

let drop t =
  match t.hook with
  | Some id ->
      Store.remove_hook t.ox_store id;
      t.hook <- None
  | None -> ()
