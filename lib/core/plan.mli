(** Compiled flat query plans for the inherited-read hot path.

    The interpreted select walks an {!Expr} tree per candidate and an
    inheritance chain per hop ({!Eval} / {!Inheritance.attr}): per row it
    allocates an environment, re-derives the effective-attribute decision
    from the schema, and pointer-chases transmitter bindings.  E18 shows
    that this leaves too little work per candidate for the worker pool to
    win.  This module replaces the per-row machinery with flat plans,
    following Litwin's stored/inherited-relations model (PAPERS.md):

    {ol
    {- {b Adjacency registry}: the relationship graph flattened into
       dense arrays — one slot per entity, transmitter edges as [int]
       indexes — rebuilt lazily and stamped with the store's
       {!Store.plan_epoch} {e and} the resolve-cache generation, so the
       PR 2 invalidation machinery carries over.}
    {- {b Closure compilation}: a predicate compiles to an array of
       closures once per query instead of being re-interpreted once per
       row.  Coercions go through {!Eval.numeric_binop} /
       {!Eval.compare_values}, so compiled semantics are bit-identical
       to interpreted semantics (a row is kept iff the interpreter would
       keep it — errors drop the row in both engines, [and]/[or]
       short-circuit identically).}
    {- {b Materialized columns}: resolved values per (class, attribute,
       epoch) — a select over an inherited attribute becomes a tight
       array scan, which parallelizes for real.}}

    Predicates outside the compilable subset (multi-segment paths,
    quantifiers, [count]/[sum], [in] over a path) return [None] from
    {!try_scan} and fall back to the interpreted engine.  The compiled
    path also stands down while read hooks are installed: hooks carry
    the per-hop notifications the transaction layer turns into lock
    inheritance, and a column scan performs no hops. *)

type report = {
  rp_closures : int;  (** closures in the compiled predicate program *)
  rp_columns : (string * int * bool) list;
      (** materialized columns used: (attribute, plan-epoch stamp,
          built by this call — [false] means served from cache) *)
  rp_nodes : int;  (** adjacency registry size: entities flattened *)
  rp_edges : int;  (** adjacency registry size: transmitter edges *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Escape hatch, modelled on {!Database.set_index_planning_enabled}.
    The initial state honours [COMPO_NO_COMPILE] (truthy = disabled) so
    the bench matrix can toggle the axis per subprocess. *)

val configure_from_env :
  ?getenv:(string -> string option) -> unit -> (unit, string) result
(** Strict [COMPO_NO_COMPILE] validation for front ends: [1/true/yes]
    disables, [0/false/no] enables, unset is a no-op, anything else is
    an error message for a one-line die (the [COMPO_JOBS] /
    [COMPO_TRACE_SAMPLE] convention). *)

val try_scan :
  Store.t ->
  cls:string ->
  jobs:int ->
  Expr.t ->
  (Surrogate.t list * report, Errors.t) result option
(** Compiled sequential-scan select over a class extent.  [None] means
    the compiled engine stands down (disabled, hooks installed, unknown
    class, or uncompilable predicate) and the caller must run the
    interpreted plan.  [Some rows] are bit-identical — order and
    membership — to the interpreted scan's.  With [jobs > 1] the caller
    must hold the store's read latch (same contract as
    {!Query.filter_candidates}). *)

val compiled_scans : unit -> int
(** Process-wide count of selects served by the compiled engine
    (independent of the metrics registry; the differential oracle uses
    it to prove the compiled path actually engaged). *)
