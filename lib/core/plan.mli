(** Compiled flat query plans for the inherited-read hot path, kept
    fresh by delta maintenance against the store's change log.

    The interpreted select walks an {!Expr} tree per candidate and an
    inheritance chain per hop ({!Eval} / {!Inheritance.attr}): per row it
    allocates an environment, re-derives the effective-attribute decision
    from the schema, and pointer-chases transmitter bindings.  E18 shows
    that this leaves too little work per candidate for the worker pool to
    win.  This module replaces the per-row machinery with flat plans,
    following Litwin's stored/inherited-relations model (PAPERS.md):

    {ol
    {- {b Adjacency registry}: the relationship graph flattened into
       dense arrays — one slot per entity, transmitter edges as [int]
       indexes — stamped with the store's {!Store.plan_epoch} {e and}
       the resolve-cache generation.  A stale stamp is caught up by
       replaying {!Store.changes_since}: deletions tombstone their slot
       (compacted past a threshold, preserving slot order), creations
       append, rebinds re-derive the edge.  Only a lost window, a
       {!Store.Ch_global} record, or an epoch-less generation bump
       forces the old wholesale rebuild (counted in
       [plan.delta.rebuild]).}
    {- {b Closure compilation}: a predicate compiles to an array of
       closures once per query instead of being re-interpreted once per
       row.  Coercions go through {!Eval.numeric_binop} /
       {!Eval.compare_values}, so compiled semantics are bit-identical
       to interpreted semantics (a row is kept iff the interpreter would
       keep it — errors drop the row in both engines, [and]/[or]
       short-circuit identically).  The compilable subset covers the
       whole grammar: multi-segment paths fill flat along strict
       reference chains, and quantifiers ([count]/[sum]/[forall]/
       [exists], plus [in] over a path) materialize as
       interpreter-filled columns.}
    {- {b Materialized columns}: resolved values per (class, spec) — a
       select over an inherited attribute becomes a tight array scan,
       which parallelizes for real.  Each row records the resolution
       chain it read, so a mutation dirties exactly the rows whose
       chains pass through the touched entity; a dirty fraction past
       {!set_dirty_threshold} falls back to a from-scratch rebuild.
       Interpreter-filled cells (quantifiers, fallback shapes) are
       {e volatile}: any mutation at all refreshes them.}}

    The compiled path stands down while read hooks are installed: hooks
    carry the per-hop notifications the transaction layer turns into
    lock inheritance, and a column scan performs no hops. *)

type report = {
  rp_closures : int;  (** closures in the compiled predicate program *)
  rp_columns : (string * int * bool) list;
      (** materialized columns used: (spec label, plan-epoch stamp,
          built from scratch by this call — [false] means served from
          cache or caught up by delta) *)
  rp_nodes : int;  (** adjacency registry size: live entities *)
  rp_edges : int;  (** adjacency registry size: transmitter edges *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Escape hatch, modelled on {!Database.set_index_planning_enabled}.
    The initial state honours [COMPO_NO_COMPILE] (truthy = disabled) so
    the bench matrix can toggle the axis per subprocess. *)

val delta_enabled : unit -> bool
val set_delta_enabled : bool -> unit
(** Delta-maintenance escape hatch, honouring [COMPO_NO_DELTA] the same
    way: disabled means every stale stamp takes the wholesale-rebuild
    path (PR 9 behaviour), which is the E22 comparison baseline. *)

val configure_from_env :
  ?getenv:(string -> string option) -> unit -> (unit, string) result
(** Strict [COMPO_NO_COMPILE] / [COMPO_NO_DELTA] validation for front
    ends: [1/true/yes] disables, [0/false/no] enables, unset is a
    no-op, anything else is an error message for a one-line die (the
    [COMPO_JOBS] / [COMPO_TRACE_SAMPLE] convention). *)

val set_dirty_threshold : float -> unit
(** Dirty-fraction fallback knob: a column whose dirty rows exceed this
    fraction of its extent is rebuilt from scratch (counted in
    [plan.delta.rebuild]) instead of refilled cell by cell.  Default
    0.5; [0.] makes any dirty row rebuild, [>= 1.] never falls back. *)

val set_compact_min : int -> unit
(** Registry compaction floor: tombstones are squeezed out (preserving
    live-slot order) only when the registry has at least this many
    slots and a quarter of them are dead.  Default 64; tests lower it
    to force compactions on small stores.  Clamped to [>= 1]. *)

val try_scan :
  Store.t ->
  cls:string ->
  jobs:int ->
  Expr.t ->
  (Surrogate.t list * report, Errors.t) result option
(** Compiled sequential-scan select over a class extent.  [None] means
    the compiled engine stands down (disabled, hooks installed, or
    unknown class) and the caller must run the interpreted plan.
    [Some rows] are bit-identical — order and membership — to the
    interpreted scan's.  With [jobs > 1] the caller must hold the
    store's read latch (same contract as {!Query.filter_candidates}). *)

val compiled_scans : unit -> int
(** Process-wide count of selects served by the compiled engine
    (independent of the metrics registry; the differential oracle uses
    it to prove the compiled path actually engaged). *)

(** {2 Introspection for the property suite} *)

val registry_live : Store.t -> (Surrogate.t list * int) option
(** Live registry surrogates in slot order plus the current tombstone
    count, or [None] when no registry has been built.  The compaction
    property test pins that the live order is invariant across
    {!set_compact_min}-forced compactions. *)

val self_check : Store.t -> string list
(** The column-equivalence invariant, checked exhaustively: every
    delta-maintained structure whose stamp claims to be current must
    equal a from-scratch derivation — registry slots against live store
    entities and current transmitter bindings, column rows against the
    class extent, every cell against a fresh fill.  Returns
    human-readable problem descriptions; [[]] means consistent.  Stale
    structures (not yet caught up) are skipped, since they make no
    currency claim. *)
