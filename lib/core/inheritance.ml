type binding = Store.binding = {
  b_link : Surrogate.t;
  b_via : string;
  b_transmitter : Surrogate.t;
}

let ( let* ) = Result.bind

(* observability: inherited-feature resolution is the paper's central
   runtime mechanism, so it carries the richest instrumentation — a
   latency span per resolution plus depth and fan-out histograms *)
module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace
module Prov = Compo_obs.Provenance

let h_depth = Obs.histogram ~buckets:Obs.size_buckets "inheritance.resolve.depth"
let h_fanout = Obs.histogram ~buckets:Obs.size_buckets "inheritance.resolve.fanout"
(* bind latency lives in the "inheritance.bind" span histogram *)
let m_unbind = Obs.counter "inheritance.unbind"
let m_stale = Obs.counter "inheritance.stale.stamped"

let binding_of store s = Result.map (fun e -> e.Store.bound) (Store.get store s)

let transmitter_of store s =
  Result.map (Option.map (fun b -> b.b_transmitter)) (binding_of store s)

let links_of store s =
  Result.map (fun e -> e.Store.inheritor_links) (Store.get store s)

let link_inheritor store link =
  match Store.participant store link "inheritor" with
  | Ok (Value.Ref i) -> Some i
  | Ok _ | Error _ -> None

let inheritors_of store s =
  let* links = links_of store s in
  Ok (List.filter_map (link_inheritor store) links)

let transmitter_closure store s =
  let rec go acc s =
    match binding_of store s with
    | Ok (Some b) ->
        if List.exists (Surrogate.equal b.b_transmitter) acc then List.rev acc
        else go (b.b_transmitter :: acc) b.b_transmitter
    | Ok None | Error _ -> List.rev acc
  in
  go [] s

let inheritor_closure store s =
  let rec go acc s =
    match inheritors_of store s with
    | Error _ -> acc
    | Ok direct ->
        List.fold_left
          (fun acc i ->
            if List.exists (Surrogate.equal i) acc then acc
            else go (i :: acc) i)
          acc direct
  in
  List.rev (go [] s)

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

let bind store ~via ~transmitter ~inheritor ?(attrs = []) () =
  Trace.with_span "inheritance.bind" ~attrs:[ ("via", via) ] @@ fun () ->
  let schema = Store.schema store in
  let* irel = Schema.find_inher_rel_type schema via in
  let* ie = Store.get store inheritor in
  let* _te = Store.get store transmitter in
  let* () =
    match Schema.find schema ie.Store.type_name with
    | Some (Schema.Obj_type { ot_inheritor_in = Some r; _ })
      when String.equal r via ->
        Ok ()
    | Some _ ->
        Error
          (Errors.Invalid_binding
             (Printf.sprintf "type %s is not declared inheritor-in %s"
                ie.Store.type_name via))
    | None -> Error (Errors.Unknown_type ie.Store.type_name)
  in
  let* () =
    if Store.is_instance_of store transmitter irel.it_transmitter then Ok ()
    else
      Error
        (Errors.Invalid_binding
           (Printf.sprintf "transmitter is not an instance of %s"
              irel.it_transmitter))
  in
  let* () =
    match ie.Store.bound with
    | Some b ->
        Error
          (Errors.Invalid_binding
             (Printf.sprintf "inheritor already bound to %s (unbind first)"
                (Surrogate.to_string b.b_transmitter)))
    | None -> Ok ()
  in
  let* () =
    if
      Surrogate.equal transmitter inheritor
      || List.exists (Surrogate.equal inheritor)
           (transmitter_closure store transmitter)
    then
      Error
        (Errors.Binding_cycle
           (Printf.sprintf "%s would transitively inherit from itself"
              (Surrogate.to_string inheritor)))
    else Ok ()
  in
  Store.add_inheritance_link store ~ty:via ~transmitter ~inheritor ~attrs

let unbind store inheritor =
  Obs.incr m_unbind;
  let* b = binding_of store inheritor in
  match b with
  | None ->
      Error
        (Errors.Invalid_binding
           (Surrogate.to_string inheritor ^ " is not bound to a transmitter"))
  | Some b -> Store.remove_inheritance_link store b.b_link

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

(* Provenance hop recording.  Each helper is behind the caller's
   [Prov.enabled ()] check, so the disabled hot path pays exactly one
   load-and-branch per hop and allocates nothing. *)
let record_local s e =
  Prov.add_hop
    {
      Prov.hop_object = Surrogate.to_string s;
      hop_type = e.Store.type_name;
      hop_kind = Prov.Local;
    }

let record_unbound s e =
  Prov.add_hop
    {
      Prov.hop_object = Surrogate.to_string s;
      hop_type = e.Store.type_name;
      hop_kind = Prov.Unbound;
    }

let record_follow store s e b name =
  (* the permeability decision at this hop: does the binding's
     relationship type let [name] through its inheriting clause? *)
  let permeable =
    match Schema.find_inher_rel_type (Store.schema store) b.b_via with
    | Ok irel -> List.mem name irel.Schema.it_inheriting
    | Error _ -> false
  in
  Prov.add_hop
    {
      Prov.hop_object = Surrogate.to_string s;
      hop_type = e.Store.type_name;
      hop_kind =
        Prov.Follow
          {
            via = b.b_via;
            link = Surrogate.to_string b.b_link;
            transmitter = Surrogate.to_string b.b_transmitter;
            permeable;
          };
    }

(* A permeable feature resolves on the transmitter, hop by hop; each hop
   fires the read hook so the lock manager can S-lock the transmitter
   ("lock inheritance in the reverse direction of data inheritance").
   The hop count feeds the depth histogram: the paper's cost model for
   view inheritance is exactly "reads pay per transmitter hop". *)
let rec attr_at store s name depth =
  let* e = Store.get store s in
  match Schema.find_effective_attr (Store.schema store) e.Store.type_name name with
  | None -> Error (Errors.Unknown_attribute (e.Store.type_name ^ "." ^ name))
  | Some (_, Schema.Own) ->
      Obs.observe h_depth (float_of_int depth);
      if Prov.enabled () then record_local s e;
      Store.local_attr store s name
  | Some (_, Schema.Via _) -> (
      match e.Store.bound with
      | None ->
          Obs.observe h_depth (float_of_int depth);
          if Prov.enabled () then record_unbound s e;
          Store.notify_read store s;
          Ok Value.Null
      | Some b ->
          if Prov.enabled () then record_follow store s e b name;
          Store.notify_read store s;
          attr_at store b.b_transmitter name (depth + 1))

let cache_outcome_of_status = function
  | `Disabled -> Prov.Off
  | `Hooked -> Prov.Bypass
  | `Active -> Prov.Miss

(* The traced variant is split out so the common path (provenance off)
   stays exactly the PR 2 read path: one extra load-and-branch, no
   closure allocation. *)
let attr_traced store s name =
  Prov.begin_read ~origin:(Surrogate.to_string s) ~attr:name;
  let finish cache result =
    (match result with
    | Ok v -> Prov.finish_read ~cache ~value:(Value.to_string v)
    | Error _ -> Prov.abort_read ());
    result
  in
  match Store.resolve_cache_status store with
  | (`Disabled | `Hooked) as status ->
      finish (cache_outcome_of_status status) (attr_at store s name 0)
  | `Active -> (
      let cache = Store.resolve_cache store in
      match Resolve_cache.find cache s name with
      | Some v ->
          (* a cache hit skips the walk; replay it so the chain is still
             explainable (the replayed hops are exactly what the cached
             value was resolved from — any mutation since would have
             invalidated the entry) *)
          ignore (attr_at store s name 0 : (Value.t, Errors.t) result);
          finish Prov.Hit (Ok v)
      | None ->
          let gen = Resolve_cache.generation cache in
          let result = attr_at store s name 0 in
          (match result with
          | Ok v -> Resolve_cache.fill cache ~gen s name v
          | Error _ -> ());
          finish Prov.Miss result)

let attr store s name =
  Trace.with_span "inheritance.resolve" ~attrs:[ ("attr", name) ] (fun () ->
      if Prov.enabled () then attr_traced store s name
      else if not (Store.resolve_cache_active store) then attr_at store s name 0
      else
        let cache = Store.resolve_cache store in
        match Resolve_cache.find cache s name with
        | Some v -> Ok v
        | None ->
            (* capture the generation before the walk: a concurrent
               invalidation (scoped or global) then kills this fill *)
            let gen = Resolve_cache.generation cache in
            let result = attr_at store s name 0 in
            (match result with
            | Ok v -> Resolve_cache.fill cache ~gen s name v
            | Error _ -> ());
            result)

let explain store s name =
  let was_on = Prov.enabled () in
  if not was_on then Prov.enable ();
  let result = attr store s name in
  let read = Prov.last () in
  if not was_on then Prov.disable ();
  match (result, read) with
  | Error e, _ -> Error e
  | Ok v, Some r when String.equal r.Prov.r_attr name -> Ok (v, r)
  | Ok v, _ ->
      (* defensive: a hook cleared the collector mid-read *)
      Ok
        ( v,
          {
            Prov.r_object = Surrogate.to_string s;
            r_attr = name;
            r_hops = [];
            r_cache = Prov.Off;
            r_value = Value.to_string v;
            r_trace = None;
          } )

let rec subclass_members_at store s name depth =
  let* e = Store.get store s in
  match
    Schema.find_effective_subclass (Store.schema store) e.Store.type_name name
  with
  | None -> Error (Errors.Unknown_class (e.Store.type_name ^ "." ^ name))
  | Some (_, Schema.Own) ->
      Obs.observe h_depth (float_of_int depth);
      let* ms = Store.subclass_members store s name in
      Obs.observe h_fanout (float_of_int (List.length ms));
      Ok ms
  | Some (_, Schema.Via _) -> (
      match e.Store.bound with
      | None ->
          Obs.observe h_depth (float_of_int depth);
          Store.notify_read store s;
          Ok []
      | Some b ->
          Store.notify_read store s;
          subclass_members_at store b.b_transmitter name (depth + 1))

let subclass_members store s name =
  Trace.with_span "inheritance.members" ~attrs:[ ("subclass", name) ] (fun () ->
      subclass_members_at store s name 0)

(* ------------------------------------------------------------------ *)
(* Staleness stamping (consistency control, sections 2 / 4.1)          *)

let stamp_link store link note =
  match Store.get store link with
  | Error _ -> ()
  | Ok le ->
      le.Store.attrs <-
        Store.Smap.add "_stale" (Value.Bool true)
          (Store.Smap.add "_note" (Value.Str note) le.Store.attrs)

let stamp_stale store s ~attr ~note =
  let schema = Store.schema store in
  let rec go stamped visited s =
    if Surrogate.Set.mem s visited then (stamped, visited)
    else
      let visited = Surrogate.Set.add s visited in
      match Store.get store s with
      | Error _ -> (stamped, visited)
      | Ok e ->
          List.fold_left
            (fun (stamped, visited) link ->
              match Store.get store link with
              | Error _ -> (stamped, visited)
              | Ok le ->
                  let permeable =
                    match
                      Schema.find_inher_rel_type schema le.Store.type_name
                    with
                    | Ok irel -> List.mem attr irel.it_inheriting
                    | Error _ -> false
                  in
                  if not permeable then (stamped, visited)
                  else begin
                    stamp_link store link note;
                    match link_inheritor store link with
                    | Some i -> go (link :: stamped) visited i
                    | None -> (link :: stamped, visited)
                  end)
            (stamped, visited) e.Store.inheritor_links
  in
  let stamped = List.rev (fst (go [] Surrogate.Set.empty s)) in
  Obs.add m_stale (List.length stamped);
  stamped

let set_attr store s name value =
  let* () = Store.set_attr store s name value in
  let note = Printf.sprintf "transmitter attribute %s updated" name in
  let (_ : Surrogate.t list) = stamp_stale store s ~attr:name ~note in
  Ok ()

let link_flag store link name =
  let* le = Store.get store link in
  if le.Store.kind <> Store.Inheritance_link then
    Error
      (Errors.Invalid_binding
         (Surrogate.to_string link ^ " is not an inheritance link"))
  else Ok (Store.Smap.find_opt name le.Store.attrs)

let is_stale store link =
  let* v = link_flag store link "_stale" in
  Ok (match v with Some (Value.Bool b) -> b | Some _ | None -> false)

let stale_note store link =
  let* v = link_flag store link "_note" in
  Ok (match v with Some (Value.Str s) -> s | Some _ | None -> "")

let acknowledge store link =
  let* le = Store.get store link in
  if le.Store.kind <> Store.Inheritance_link then
    Error
      (Errors.Invalid_binding
         (Surrogate.to_string link ^ " is not an inheritance link"))
  else begin
    le.Store.attrs <-
      Store.Smap.add "_stale" (Value.Bool false) le.Store.attrs;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Copy-in baseline (section 2, strategy 1)                            *)

type snapshot = {
  snap_of : Surrogate.t;
  snap_attrs : (string * Value.t) list;
  snap_subobjs : (string * Surrogate.t list) list;
}

let effective_attr_names store s =
  let* e = Store.get store s in
  let* attrs = Schema.effective_attrs (Store.schema store) e.Store.type_name in
  Ok (List.map (fun (a, _) -> a.Schema.attr_name) attrs)

let materialize store s =
  let* e = Store.get store s in
  let schema = Store.schema store in
  let* attr_defs = Schema.effective_attrs schema e.Store.type_name in
  let* snap_attrs =
    List.fold_left
      (fun acc (a, _) ->
        let* acc = acc in
        let* v = attr store s a.Schema.attr_name in
        Ok ((a.Schema.attr_name, v) :: acc))
      (Ok []) attr_defs
  in
  let* sub_defs = Schema.effective_subclasses schema e.Store.type_name in
  let* snap_subobjs =
    List.fold_left
      (fun acc (sc, _) ->
        let* acc = acc in
        let* ms = subclass_members store s sc.Schema.sc_name in
        Ok ((sc.Schema.sc_name, ms) :: acc))
      (Ok []) sub_defs
  in
  Ok { snap_of = s; snap_attrs = List.rev snap_attrs; snap_subobjs = List.rev snap_subobjs }
