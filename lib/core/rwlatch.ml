(* A read/write latch with writer reentrancy and writer preference.

   Parallel selects hold the latch in read mode for the whole fan-out
   (access stage + chunked residual evaluation), so every worker sees
   one point-in-time store state; every store mutator holds it in
   write mode.  The writer side is reentrant per domain, because store
   mutators nest (delete cascades through remove_inheritance_link and
   itself, transactions wrap mutators in hook installation).  Writer
   preference keeps a steady stream of parallel readers from starving
   the writer; the price is that read sections must not nest — nothing
   in the kernel nests them (workers never touch the latch at all).

   Reads of [writer] outside the mutex are only ever compared against
   the caller's own domain id: [Some self] can only have been written
   by the caller itself, so the reentrancy fast path is race-free. *)

(* compo_core has its own [Domain] module (the paper's attribute
   domains), so the stdlib one needs its full path here *)
module Sys_domain = Stdlib.Domain
module Metrics = Compo_obs.Metrics

(* Contention profile of the store latch, sibling to the server's
   [server.gate.*] families one layer down.  Only the slow paths are
   timed (the reentrant fast paths take no lock), and only while
   metrics are enabled — the disabled cost stays one load and branch. *)
let h_write_wait = Metrics.histogram "latch.write.wait_seconds"
let h_write_hold = Metrics.histogram "latch.write.hold_seconds"
let h_read_wait = Metrics.histogram "latch.read.wait_seconds"
let h_read_hold = Metrics.histogram "latch.read.hold_seconds"

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;
  mutable writer : Sys_domain.id option;
  mutable write_depth : int;
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    readers = 0;
    writer = None;
    write_depth = 0;
    waiting_writers = 0;
  }

let held_by_self t = t.writer = Some (Sys_domain.self ())

let with_write t f =
  if held_by_self t then begin
    t.write_depth <- t.write_depth + 1;
    Fun.protect ~finally:(fun () -> t.write_depth <- t.write_depth - 1) f
  end
  else begin
    let timed = Metrics.enabled () in
    let t0 = if timed then Unix.gettimeofday () else 0. in
    Mutex.lock t.m;
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writer <> None || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writer <- Some (Sys_domain.self ());
    t.write_depth <- 1;
    Mutex.unlock t.m;
    let t1 = if timed then Unix.gettimeofday () else 0. in
    if timed then Metrics.observe h_write_wait (t1 -. t0);
    Fun.protect
      ~finally:(fun () ->
        if timed then Metrics.observe h_write_hold (Unix.gettimeofday () -. t1);
        Mutex.lock t.m;
        t.write_depth <- 0;
        t.writer <- None;
        Condition.broadcast t.c;
        Mutex.unlock t.m)
      f
  end

let with_read t f =
  if held_by_self t then f () (* a writer may read inside its section *)
  else begin
    let timed = Metrics.enabled () in
    let t0 = if timed then Unix.gettimeofday () else 0. in
    Mutex.lock t.m;
    while t.writer <> None || t.waiting_writers > 0 do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    let t1 = if timed then Unix.gettimeofday () else 0. in
    if timed then Metrics.observe h_read_wait (t1 -. t0);
    Fun.protect
      ~finally:(fun () ->
        if timed then Metrics.observe h_read_hold (Unix.gettimeofday () -. t1);
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.broadcast t.c;
        Mutex.unlock t.m)
      f
  end
