type t = {
  ix_store : Store.t;
  ix_cls : string;
  ix_attr : string;
  (* value -> members, newest first; a member may appear under at most one
     value, tracked by [current] *)
  buckets : (Value.t, Surrogate.t list) Hashtbl.t;
  current : Value.t Surrogate.Tbl.t;
  mutable hook : Store.hook_id option;
  mutable ix_hits : int;
}

let ( let* ) = Result.bind
let cls t = t.ix_cls
let attr t = t.ix_attr

module Obs = Compo_obs.Metrics

let m_lookup = Obs.counter "index.lookup"
let m_hit = Obs.counter "index.hit"
let m_miss = Obs.counter "index.miss"

let remove_entry t s =
  match Surrogate.Tbl.find_opt t.current s with
  | None -> ()
  | Some v ->
      Surrogate.Tbl.remove t.current s;
      let remaining =
        List.filter
          (fun m -> not (Surrogate.equal m s))
          (Option.value ~default:[] (Hashtbl.find_opt t.buckets v))
      in
      if remaining = [] then Hashtbl.remove t.buckets v
      else Hashtbl.replace t.buckets v remaining

let add_entry t s v =
  Surrogate.Tbl.replace t.current s v;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.buckets v) in
  Hashtbl.replace t.buckets v (s :: existing)

(* Re-derive the entry for one surrogate from the store's current state:
   present in the class -> indexed under its local attribute value,
   otherwise absent. *)
let refresh t s =
  remove_entry t s;
  match Store.get t.ix_store s with
  | Error _ -> () (* deleted *)
  | Ok e ->
      if List.mem t.ix_cls e.Store.classes_of then
        let v =
          Option.value ~default:Value.Null
            (Store.Smap.find_opt t.ix_attr e.Store.attrs)
        in
        add_entry t s v

let create store ~cls ~attr =
  let* member_type = Store.class_member_type store cls in
  let* () =
    match Schema.find_effective_attr (Store.schema store) member_type attr with
    | Some (_, Schema.Own) -> Ok ()
    | Some (_, Schema.Via rel) ->
        Error
          (Errors.Schema_error
             (Printf.sprintf
                "cannot index %s.%s: inherited through %s (its value lives \
                 on the transmitter)"
                member_type attr rel))
    | None -> Error (Errors.Unknown_attribute (member_type ^ "." ^ attr))
  in
  let t =
    {
      ix_store = store;
      ix_cls = cls;
      ix_attr = attr;
      buckets = Hashtbl.create 256;
      current = Surrogate.Tbl.create 256;
      hook = None;
      ix_hits = 0;
    }
  in
  let* members = Store.class_members store cls in
  List.iter (refresh t) members;
  t.hook <- Some (Store.add_write_hook store (refresh t));
  Ok t

let lookup t v =
  t.ix_hits <- t.ix_hits + 1;
  Obs.incr m_lookup;
  match Hashtbl.find_opt t.buckets v with
  | Some members ->
      Obs.incr m_hit;
      List.rev members
  | None ->
      Obs.incr m_miss;
      []

let size t = Surrogate.Tbl.length t.current
let hits t = t.ix_hits

let verify t =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let label = Printf.sprintf "index %s.%s" t.ix_cls t.ix_attr in
  Surrogate.Tbl.iter
    (fun s v ->
      (match Store.get t.ix_store s with
      | Error _ ->
          say "%s: %s is indexed but deleted" label (Surrogate.to_string s)
      | Ok e ->
          if not (List.mem t.ix_cls e.Store.classes_of) then
            say "%s: %s is indexed but no longer a class member" label
              (Surrogate.to_string s)
          else
            let actual =
              Option.value ~default:Value.Null
                (Store.Smap.find_opt t.ix_attr e.Store.attrs)
            in
            if Value.compare actual v <> 0 then
              say "%s: %s is indexed under a stale value" label
                (Surrogate.to_string s));
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.buckets v) in
      match List.length (List.filter (Surrogate.equal s) bucket) with
      | 1 -> ()
      | 0 -> say "%s: %s is missing from its bucket" label (Surrogate.to_string s)
      | n ->
          say "%s: %s appears %d times in its bucket" label
            (Surrogate.to_string s) n)
    t.current;
  (match Store.class_members t.ix_store t.ix_cls with
  | Error _ -> say "%s: class vanished from the store" label
  | Ok members ->
      List.iter
        (fun s ->
          if not (Surrogate.Tbl.mem t.current s) then
            say "%s: class member %s is not indexed" label
              (Surrogate.to_string s))
        members);
  List.rev !problems

let drop t =
  match t.hook with
  | Some id ->
      Store.remove_hook t.ix_store id;
      t.hook <- None
  | None -> ()
