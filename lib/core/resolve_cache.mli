(** Generation-stamped memo table for inherited-attribute resolution.

    The paper's view strategy resolves every inherited read through the
    binding chain, so a read pays one {!Store.get} plus one effective-attr
    lookup per transmitter hop (the O(depth) cost E2 measures).  This cache
    short-circuits repeated reads: a per-store table maps
    [(surrogate, attribute)] to the resolved value, and generation counters
    decide validity instead of eager per-entry eviction.

    Invalidation scheme (the generations):
    - every mutation of data a resolution may have read bumps a
      monotonically increasing generation counter;
    - a {e scoped} bump (transmitter attribute write) raises the floor of
      the writer and its inheritor closure only — unrelated chains keep
      their entries;
    - a {e global} bump (bind, unbind, delete, participant rewiring,
      schema evolution, transaction abort) clears the table outright;
    - a fill records the generation captured {e before} the chain walk
      started, so a fill that raced an invalidation is dead on arrival
      ("stale fills die").

    The cache must never be consulted while read hooks are installed: the
    transaction layer turns per-hop read notifications into the paper's
    reverse lock inheritance, and a memoised read performs no hops.
    {!Store.resolve_cache_active} enforces this; it is why transactional
    reads always walk.

    Domain safety: the generation and global floor are atomics, and the
    entry table is sharded per domain (each domain fills, hits and
    sweeps only its own shard), so parallel query workers resolve
    concurrently without locks and a worker's fill can never publish a
    stale value another domain's invalidation already killed.  Scoped
    floors and {!clear} are write-side operations: the store serialises
    them against parallel readers with its write latch.

    Observability: [inheritance.cache.{lookup,hit,miss}] and
    [inheritance.cache.invalidate.{scoped,global}] counters plus an
    [inheritance.cache.size] gauge in the default metrics registry; each
    invalidation also runs under an [inheritance.cache.invalidation] span
    carrying its scope as an attribute, so churn is attributable from the
    trace ring alone. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] bounds the number of live entries per domain shard
    (default 65536); filling a full shard clears that shard first
    (epoch eviction).  [enabled] defaults to {!default_enabled}. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabling clears the table, so a later re-enable cannot serve values
    cached under the old generation regime. *)

val default_enabled : unit -> bool
(** Initial setting for new caches: [true] unless the
    [COMPO_NO_RESOLVE_CACHE] environment variable is set to a truthy value
    or {!set_default_enabled} was called with [false].  The CLI and bench
    harness [--no-resolve-cache] escape hatches go through this. *)

val set_default_enabled : bool -> unit

val generation : t -> int
(** Current generation.  Capture it {e before} a chain walk and pass it to
    {!fill}, so the fill dies if anything invalidated meanwhile. *)

val find : t -> Surrogate.t -> string -> Value.t option
(** Valid cached resolution of [(surrogate, attribute)], or [None].
    Counts a hit or a miss; lazily drops entries below their floor. *)

val fill : t -> gen:int -> Surrogate.t -> string -> Value.t -> unit
(** Memoise a resolution computed at generation [gen].  A no-op when the
    cache is disabled or [gen] is below any applicable floor. *)

val invalidate_scoped : t -> Surrogate.t list -> unit
(** Raise the floor of exactly the given surrogates (a writer plus its
    inheritor closure): their entries die, everything else survives. *)

val invalidate_global : t -> unit
(** Structural change: drop every entry and bump the generation so
    in-flight fills die too. *)

val size : t -> int
(** Entries across every domain shard (including scoped-invalidated
    ones not yet swept). *)

val capacity : t -> int

val lookups : unit -> int
(** Process-wide lookup count ([find] calls on an enabled cache); every
    lookup is counted exactly once as a hit or a miss, so
    [lookups () = hits () + misses ()] even under parallel load — the
    stress suite asserts this. *)

val hits : unit -> int
(** Process-wide hit count from the metrics registry (0 while metrics are
    disabled); convenience for [compo stats] and the bench harness. *)

val misses : unit -> int

val invalidations_scoped : unit -> int
(** Floor raises limited to a writer and its inheritor closure. *)

val invalidations_global : unit -> int
(** Whole-table clears from structural change. *)

val invalidations : unit -> int
(** Sum of the scoped and global counts. *)
