module Smap = Map.Make (String)

type item = E of Surrogate.t | V of Value.t

type env = { store : Store.t; self : Surrogate.t option; vars : item Smap.t }

let env ?self ?(vars = []) store =
  {
    store;
    self;
    vars = List.fold_left (fun m (n, i) -> Smap.add n i m) Smap.empty vars;
  }

let with_var e name item = { e with vars = Smap.add name item e.vars }
let self_of e = e.self
let ( let* ) = Result.bind

(* one count per expression node evaluated: the work metric behind
   query predicates and constraint checks *)
let m_eval_node = Compo_obs.Metrics.counter "eval.node"

let node_count () = Compo_obs.Metrics.count m_eval_node

let item_value _store = function E s -> Value.Ref s | V v -> v

(* Stepping a value by a segment name: record projection, mapping over
   collections, dereferencing object references. *)
let rec step_value env name v k =
  match v with
  | Value.Record _ -> (
      match Value.field name v with
      | Some fv -> k [ V fv ]
      | None -> Error (Errors.Eval_error ("no record field " ^ name)))
  | Value.List vs | Value.Set vs ->
      let rec go acc = function
        | [] -> k (List.concat (List.rev acc))
        | v :: rest ->
            let* items = step_value env name v (fun items -> Ok items) in
            go (items :: acc) rest
      in
      go [] vs
  | Value.Ref s ->
      let* items = step_entity env name s in
      k items
  | Value.Null -> k []
  | Value.Int _ | Value.Real _ | Value.Bool _ | Value.Str _
  | Value.Enum_case _ | Value.Matrix _ | Value.Tuple _ ->
      Error
        (Errors.Eval_error
           (Printf.sprintf "cannot navigate %s through %s"
              (Value.to_string v) name))

(* Stepping an entity by a segment name: effective attribute, effective
   subclass, subrelationship class, or participant. *)
and step_entity env name s =
  let store = env.store in
  let* e = Store.get store s in
  let schema = Store.schema store in
  if Option.is_some (Schema.find_effective_attr schema e.Store.type_name name)
  then
    let* v = Inheritance.attr store s name in
    Ok [ V v ]
  else if
    Option.is_some (Schema.find_effective_subclass schema e.Store.type_name name)
  then
    let* ms = Inheritance.subclass_members store s name in
    Ok (List.map (fun m -> E m) ms)
  else (
      match Store.subrel_members store s name with
      | Ok ms -> Ok (List.map (fun m -> E m) ms)
      | Error _ -> (
          match Store.participant store s name with
          | Ok v -> (
              match v with
              | Value.Ref target -> Ok [ E target ]
              | Value.Set vs | Value.List vs ->
                  Ok
                    (List.map
                       (function Value.Ref r -> E r | v -> V v)
                       vs)
              | v -> Ok [ V v ])
          | Error _ ->
              Error
                (Errors.Eval_error
                   (Printf.sprintf "%s has no feature %s" e.Store.type_name
                      name))))

let step_item env name = function
  | E s -> step_entity env name s
  | V v -> step_value env name v (fun items -> Ok items)

let step_items env name items =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | item :: rest ->
        let* stepped = step_item env name item in
        go (stepped :: acc) rest
  in
  go [] items

let resolve_head env name =
  match Smap.find_opt name env.vars with
  | Some item -> Ok [ item ]
  | None -> (
      match env.self with
      | Some self -> (
          match step_entity env name self with
          | Ok items -> Ok items
          | Error _ -> (
              match Store.class_members env.store name with
              | Ok ms -> Ok (List.map (fun m -> E m) ms)
              | Error _ ->
                  Error
                    (Errors.Eval_error
                       ("cannot resolve path head " ^ name))))
      | None -> (
          match Store.class_members env.store name with
          | Ok ms -> Ok (List.map (fun m -> E m) ms)
          | Error _ ->
              Error (Errors.Eval_error ("cannot resolve path head " ^ name))))

let eval_items env = function
  | [] -> Error (Errors.Eval_error "empty path")
  | head :: rest ->
      let* items = resolve_head env head in
      List.fold_left
        (fun acc seg ->
          let* items = acc in
          step_items env seg items)
        (Ok items) rest

(* Flatten collection values so that [count]/[sum]/[in] see members, not
   the collection itself. *)
let expand_collections items =
  List.concat_map
    (fun item ->
      match item with
      | V (Value.Set vs) | V (Value.List vs) -> List.map (fun v -> V v) vs
      | other -> [ other ])
    items

let scalar env = function
  | [ item ] -> Ok (item_value env.store item)
  | [] -> Ok Value.Null
  | items ->
      Error
        (Errors.Eval_error
           (Printf.sprintf "path yields %d values in scalar context"
              (List.length items)))

let numeric_binop op a b =
  let fail () =
    Error
      (Errors.Eval_error
         (Printf.sprintf "arithmetic on non-numeric values %s, %s"
            (Value.to_string a) (Value.to_string b)))
  in
  match (a, b) with
  | Value.Int x, Value.Int y -> (
      match op with
      | Expr.Add -> Ok (Value.Int (x + y))
      | Expr.Sub -> Ok (Value.Int (x - y))
      | Expr.Mul -> Ok (Value.Int (x * y))
      | Expr.Div ->
          if y = 0 then Error (Errors.Eval_error "division by zero")
          else Ok (Value.Int (x / y))
      | _ -> fail ())
  | _ -> (
      match (Value.as_float a, Value.as_float b) with
      | Some x, Some y -> (
          match op with
          | Expr.Add -> Ok (Value.Real (x +. y))
          | Expr.Sub -> Ok (Value.Real (x -. y))
          | Expr.Mul -> Ok (Value.Real (x *. y))
          | Expr.Div ->
              if y = 0.0 then Error (Errors.Eval_error "division by zero")
              else Ok (Value.Real (x /. y))
          | _ -> fail ())
      | _ -> fail ())

let compare_values a b =
  match (Value.as_float a, Value.as_float b) with
  | Some x, Some y -> Float.compare x y
  | _ -> Value.compare a b

let rec eval env expr =
  Compo_obs.Metrics.incr m_eval_node;
  match expr with
  | Expr.Const v -> Ok v
  | Expr.Path p ->
      let* items = eval_items env p in
      scalar env items
  | Expr.Count (p, filter) ->
      let* items = eval_items env p in
      let members = expand_collections items in
      let binder = List.nth p (List.length p - 1) in
      let* n =
        match filter with
        | None -> Ok (List.length members)
        | Some pred ->
            List.fold_left
              (fun acc item ->
                let* n = acc in
                let* keep = eval_bool (with_var env binder item) pred in
                Ok (if keep then n + 1 else n))
              (Ok 0) members
      in
      Ok (Value.Int n)
  | Expr.Sum p ->
      let* items = eval_items env p in
      let members = expand_collections items in
      let* total =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let v = item_value env.store item in
            match (acc, v) with
            | Value.Int a, Value.Int b -> Ok (Value.Int (a + b))
            | acc, v -> (
                match (Value.as_float acc, Value.as_float v) with
                | Some a, Some b -> Ok (Value.Real (a +. b))
                | _ ->
                    Error
                      (Errors.Eval_error
                         ("sum over non-numeric value " ^ Value.to_string v))))
          (Ok (Value.Int 0)) members
      in
      Ok total
  | Expr.Unop (Expr.Not, e) ->
      let* b = eval_bool env e in
      Ok (Value.Bool (not b))
  | Expr.Unop (Expr.Neg, e) -> (
      let* v = eval env e in
      match v with
      | Value.Int i -> Ok (Value.Int (-i))
      | Value.Real f -> Ok (Value.Real (-.f))
      | v ->
          Error
            (Errors.Eval_error ("negation of non-number " ^ Value.to_string v)))
  | Expr.Binop (Expr.And, a, b) ->
      let* x = eval_bool env a in
      if not x then Ok (Value.Bool false)
      else
        let* y = eval_bool env b in
        Ok (Value.Bool y)
  | Expr.Binop (Expr.Or, a, b) ->
      let* x = eval_bool env a in
      if x then Ok (Value.Bool true)
      else
        let* y = eval_bool env b in
        Ok (Value.Bool y)
  | Expr.Binop (Expr.In, a, b) ->
      let* v = eval env a in
      let* members =
        match b with
        | Expr.Path p ->
            let* items = eval_items env p in
            Ok (List.map (item_value env.store) (expand_collections items))
        | other -> (
            let* rhs = eval env other in
            match rhs with
            | Value.Set vs | Value.List vs -> Ok vs
            | v -> Ok [ v ])
      in
      Ok (Value.Bool (List.exists (Value.equal v) members))
  | Expr.Binop (((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div) as op), a, b) ->
      let* x = eval env a in
      let* y = eval env b in
      numeric_binop op x y
  | Expr.Binop (((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), a, b) ->
      let* x = eval env a in
      let* y = eval env b in
      let c = compare_values x y in
      let r =
        match op with
        | Expr.Eq -> c = 0
        | Expr.Ne -> c <> 0
        | Expr.Lt -> c < 0
        | Expr.Le -> c <= 0
        | Expr.Gt -> c > 0
        | Expr.Ge -> c >= 0
        | _ -> assert false
      in
      Ok (Value.Bool r)
  | Expr.Forall (binders, body) -> quantify env binders body ~forall:true
  | Expr.Exists (binders, body) -> quantify env binders body ~forall:false

and quantify env binders body ~forall =
  (* Sequential binder scoping: each binder path may mention earlier
     variables.  [forall] over an empty range is true, [exists] false. *)
  match binders with
  | [] ->
      let* b = eval_bool env body in
      Ok (Value.Bool b)
  | (var, path) :: rest ->
      let* items = eval_items env path in
      let members = expand_collections items in
      let* result =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match (forall, acc) with
            | true, false -> Ok false (* short-circuit *)
            | false, true -> Ok true
            | _ ->
                let* sub =
                  quantify (with_var env var item) rest body ~forall
                in
                let* b =
                  match sub with
                  | Value.Bool b -> Ok b
                  | v ->
                      Error
                        (Errors.Eval_error
                           ("quantifier body is not boolean: "
                          ^ Value.to_string v))
                in
                Ok (if forall then acc && b else acc || b))
          (Ok forall) members
      in
      Ok (Value.Bool result)

and eval_bool env expr =
  let* v = eval env expr in
  match v with
  | Value.Bool b -> Ok b
  | v ->
      Error
        (Errors.Eval_error
           (Printf.sprintf "expected boolean, got %s (in %s)"
              (Value.to_string v) (Expr.to_string expr)))
