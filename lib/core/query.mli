(** Queries over classes and subclasses.

    A small selection facility in the spirit of the paper's "top-down
    selection" of components ("A component is selected by queries ...
    giving the required properties of the component", section 6).  The
    [where] predicate is an {!Expr} evaluated with the candidate object as
    [self], so it sees inherited data. *)

val select :
  Store.t ->
  cls:string ->
  ?jobs:int ->
  ?where:Expr.t ->
  unit ->
  (Surrogate.t list, Errors.t) result
(** Members of a top-level class satisfying the predicate.  A candidate for
    which the predicate fails to evaluate is excluded (a design object with
    unbound components simply does not match).

    [jobs] (default: the [COMPO_JOBS] environment variable, else 1)
    evaluates the predicate on a pool of worker domains against a frozen
    read snapshot — the store's read latch is held across the whole
    fan-out.  The result is {e identical} to the sequential plan: rows,
    order and resolved values are the same for every [jobs], which the
    differential suite proves over randomized schemas.  With read hooks
    installed (transactional lock inheritance) the select silently runs
    its sequential plan and counts [par.select.fallback]. *)

val select_subobjects :
  Store.t ->
  parent:Surrogate.t ->
  subclass:string ->
  ?jobs:int ->
  ?where:Expr.t ->
  unit ->
  (Surrogate.t list, Errors.t) result
(** Same over a (possibly inherited) subclass of a complex object. *)

val filter_candidates :
  ?jobs:int -> Store.t -> Expr.t option -> Surrogate.t list -> Surrogate.t list
(** The residual-filter stage of a select: keep the candidates matching
    the predicate, preserving order ([List.filter] semantics whatever
    [jobs] is).  Exposed for {!Database}'s planned selects, which run it
    over an index-produced candidate list under their own latch. *)

val latched_jobs : Store.t -> int -> int
(** Degrade a requested parallelism to 1 when read hooks are installed
    (counting [par.select.fallback]).  Only meaningful while holding the
    store's read latch — hooks are installed under the write latch, so
    the answer is stable for the whole latched section. *)

val project :
  Store.t -> Surrogate.t list -> string -> (Value.t list, Errors.t) result
(** Inheritance-aware attribute projection over a list of objects. *)

val navigate :
  Store.t -> from:Surrogate.t -> Expr.path -> (Eval.item list, Errors.t) result
(** Path navigation starting at an object ([Pins], [SubGates.Pins], ...). *)

val matching : Store.t -> self:Surrogate.t -> Expr.t -> bool
(** Convenience: does the predicate hold for [self]?  Evaluation failures
    count as [false]. *)

val order_by :
  Store.t -> ?descending:bool -> attr:string -> Surrogate.t list ->
  (Surrogate.t list, Errors.t) result
(** Sort objects by an (inheritance-aware) attribute, [Value.compare]
    order, stable. *)

(** {1 EXPLAIN}

    The plan report of one selection: how candidates were produced
    (index choice vs. extent scan), the predicate split into its indexed
    conjunct and the residual filter, estimated (access-stage) vs.
    actual cardinality, evaluator work, and per-stage wall times.
    {!Database.explain_select} fills it; [compo explain query] renders
    it. *)

(** How the access stage produced candidates.  Values and bounds are
    pre-rendered so the report carries no live index handles. *)
type access =
  | Seq_scan of { extent : string }  (** full scan of the class extent *)
  | Hash_eq of { attr : string; value : string }
  | Ordered_eq of { attr : string; value : string }
  | Ordered_range of { attr : string; interval : string }
      (** [interval] in mathematical notation, e.g. ["[4, +inf)"] *)

type explain = {
  ex_cls : string;
  ex_access : access;
  ex_where : string option;  (** the full predicate as given *)
  ex_residual : string option;
      (** what remains after the indexed conjunct is peeled off; for a
          scan this is the whole predicate *)
  ex_candidates : int;  (** access-stage (estimated) cardinality *)
  ex_rows : int;  (** rows surviving the filter (actual cardinality) *)
  ex_eval_nodes : int;
      (** evaluator nodes spent filtering (0 while metrics are off) *)
  ex_access_seconds : float;
  ex_filter_seconds : float;
  ex_plan : Plan.report option;
      (** [Some] when the compiled engine ({!Plan}) served the filter
          stage; [None] means the interpreted evaluator ran (engine
          disabled, index access path, or read hooks installed — with
          the widened compiler, every predicate shape compiles) *)
}

val access_to_string : access -> string

val pp_explain : ?timings:bool -> Format.formatter -> explain -> unit
(** Indented plan tree.  [timings] (default false) appends per-stage wall
    times; off, the output is deterministic for a given store. *)

(** Aggregate over an (inheritance-aware) attribute of a set of objects.
    [Count_distinct] counts distinct values ([Null] included). *)
type aggregate = Count_values | Count_distinct | Sum | Min | Max

val aggregate :
  Store.t -> aggregate -> attr:string -> Surrogate.t list ->
  (Value.t, Errors.t) result
(** [Sum] requires numeric values ([Null]s are skipped); [Min]/[Max] use
    [Value.compare] over non-[Null] values and yield [Null] on an empty
    range; [Count_values] counts non-[Null] values. *)
