(** Read/write latch for parallel selects against a mutable store.

    Write mode is exclusive and reentrant per domain (store mutators
    nest); read mode is shared among domains.  Writers are preferred
    over new readers, so read sections must not nest — the kernel's
    single read section per select guarantees this, and worker domains
    never take the latch at all (the submitting domain holds it across
    the whole fan-out).

    While metrics are enabled, the slow paths profile themselves into
    the [latch.{write,read}.{wait,hold}_seconds] histogram families —
    the store-level counterpart of the server's [server.gate.*]
    contention profile. *)

type t

val create : unit -> t

val with_write : t -> (unit -> 'a) -> 'a
(** Run [f] exclusively: no reader and no other writer is inside.
    Reentrant from the holding domain. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Run [f] sharing with other readers but excluding writers.  Inside
    a {!with_write} section of the same domain it degrades to [f ()]. *)

val held_by_self : t -> bool
(** Whether the calling domain currently holds the write side. *)
