(** Value inheritance — the paper's central mechanism (sections 2 and 4).

    "Via the inheritance relationship, attributes of an object (the
    transmitter) and their values are inherited by another object (the
    inheritor).  The inherited data must not be updated in the inheritor,
    whereas updates of the transmitter data involve all inheritors.  The
    inheritance relationship is selective: only the explicitly specified
    parts of data are transfered from the transmitter to the inheritor."

    Inherited data is resolved {e through} the binding at read time (the
    "view" strategy of section 2), so a transmitter update is instantly
    visible in every inheritor; {!materialize} implements the paper's
    copy-in alternative purely as a measurable baseline. *)

type binding = Store.binding = {
  b_link : Surrogate.t;
  b_via : string;
  b_transmitter : Surrogate.t;
}

val bind :
  Store.t ->
  via:string ->
  transmitter:Surrogate.t ->
  inheritor:Surrogate.t ->
  ?attrs:(string * Value.t) list ->
  unit ->
  (Surrogate.t, Errors.t) result
(** Establish the object-level inheritance relationship; returns the
    surrogate of the relationship object.  Checks:
    - [via] is an inheritance relationship type [R];
    - the inheritor's object type is declared [inheritor-in R]
      (section 4.1's explicit opt-in);
    - the transmitter is an instance of [R]'s transmitter type (possibly
      along its own transmitter chain);
    - the inheritor is not already bound (rebinding requires {!unbind});
    - no cycle: the transmitter must not transitively inherit from the
      inheritor ([Binding_cycle]). *)

val unbind : Store.t -> Surrogate.t -> (unit, Errors.t) result
(** Remove the binding of the given {e inheritor}.  The object keeps its
    type-level structure but loses access to the transmitter's values
    (reads of inherited attributes yield [Null] afterwards). *)

val binding_of : Store.t -> Surrogate.t -> (binding option, Errors.t) result

val transmitter_of : Store.t -> Surrogate.t -> (Surrogate.t option, Errors.t) result
val inheritors_of : Store.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Direct inheritor {e objects} (not the link objects). *)

val links_of : Store.t -> Surrogate.t -> (Surrogate.t list, Errors.t) result
(** Inheritance-relationship objects in which the entity is transmitter. *)

val transmitter_closure : Store.t -> Surrogate.t -> Surrogate.t list
(** Transmitters reachable by following bindings upward, nearest first. *)

val inheritor_closure : Store.t -> Surrogate.t -> Surrogate.t list
(** All objects that (transitively) inherit from the entity. *)

val attr : Store.t -> Surrogate.t -> string -> (Value.t, Errors.t) result
(** Inheritance-aware attribute read.  Locally-owned attributes read
    locally; permeable attributes resolve through the binding chain,
    notifying the read hook at every hop (the transaction layer turns those
    notifications into the paper's reverse "lock inheritance").  Unbound
    inheritors read permeable attributes as [Null].

    When {!Compo_obs.Provenance.enabled} the resolution additionally
    records a per-read provenance trace: the ordered transmitter chain,
    the relationship object and permeability decision at each hop, and
    the cache outcome (hit / miss / bypass under read hooks / off).  On a
    cache hit the chain is replayed for the trace while the cached value
    is returned.

    {!Plan}'s flat column fill mirrors this walk hop for hop over its
    adjacency registry (and records the chain it read as the row's
    dependency set, so delta maintenance dirties exactly the rows whose
    chains pass through a touched entity); any divergence between the
    two walks is a bug the differential oracle is designed to catch. *)

val explain :
  Store.t -> Surrogate.t -> string -> (Value.t * Compo_obs.Provenance.read, Errors.t) result
(** One-shot provenance: resolve the attribute with tracing forced on and
    return the value together with its resolution record.  Leaves the
    global provenance switch as it found it. *)

val subclass_members :
  Store.t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result
(** Inheritance-aware subclass membership: permeable subclasses are views
    of the transmitter's members. *)

val set_attr : Store.t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Write a locally-owned attribute and stamp every (transitively)
    dependent inheritance link stale — the consistency-control use of
    relationship attributes described in sections 2 and 4.1.  Writing an
    inherited attribute fails with [Inherited_readonly]. *)

val stamp_stale :
  Store.t -> Surrogate.t -> attr:string -> note:string -> Surrogate.t list
(** Mark all inheritance links through which [attr] is (transitively)
    permeable as needing adaptation; returns the stamped link objects in
    propagation order (used by {!Triggers} to run adaptation rules). *)

val is_stale : Store.t -> Surrogate.t -> (bool, Errors.t) result
(** Staleness flag of an inheritance-relationship object. *)

val stale_note : Store.t -> Surrogate.t -> (string, Errors.t) result
val acknowledge : Store.t -> Surrogate.t -> (unit, Errors.t) result
(** Clear the staleness flag after manual adaptation (the paper: "in most
    cases this adaptation has to be done manually by a user"). *)

(** Materialized copy of an object's effective data — the section 2
    copy-in strategy, provided as a baseline for benchmark E1. *)
type snapshot = {
  snap_of : Surrogate.t;
  snap_attrs : (string * Value.t) list;  (** all effective attributes *)
  snap_subobjs : (string * Surrogate.t list) list;
}

val materialize : Store.t -> Surrogate.t -> (snapshot, Errors.t) result

val effective_attr_names : Store.t -> Surrogate.t -> (string list, Errors.t) result
