type t = {
  db_schema : Schema.t;
  db_store : Store.t;
  mutable eager_checks : bool;
  mutable db_indexes : Index.t list;
  mutable db_ordered : Ordered_index.t list;
}

let ( let* ) = Result.bind

module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace

(* same registry cell as Query's (find-or-create by name) *)
let h_extent = Obs.histogram ~buckets:Obs.size_buckets "query.select.extent"

let of_parts ?(eager_checks = false) schema store =
  {
    db_schema = schema;
    db_store = store;
    eager_checks;
    db_indexes = [];
    db_ordered = [];
  }

let create ?eager_checks () =
  let schema = Schema.create () in
  of_parts ?eager_checks schema (Store.create schema)

let schema t = t.db_schema
let store t = t.db_store
let set_eager_checks t b = t.eager_checks <- b

let define_domain t = Schema.define_domain t.db_schema
let define_rel_type t = Schema.define_rel_type t.db_schema

(* Schema evolution can change which attributes are permeable through
   which relationship, so memoised resolutions must not outlive it. *)
let bumping_cache t r =
  if Result.is_ok r then Store.invalidate_resolve_cache t.db_store;
  r

let define_obj_type t ot = bumping_cache t (Schema.define_obj_type t.db_schema ot)

let define_inher_rel_type t it =
  bumping_cache t (Schema.define_inher_rel_type t.db_schema it)
let create_class t ~name ~member_type = Store.create_class t.db_store ~name ~member_type

let first_violation = function
  | [] -> Ok ()
  | v :: _ ->
      Error
        (Errors.Constraint_violation
           (Format.asprintf "%a" Constraints.pp_violation v))

let check_if_eager t s =
  if not t.eager_checks then Ok ()
  else
    let* vs = Constraints.check_entity t.db_store s in
    first_violation vs

let new_object t ?cls ~ty ?(attrs = []) () =
  let* s = Store.create_object t.db_store ?cls ~ty attrs in
  let* () = check_if_eager t s in
  Ok s

let new_subobject t ~parent ~subclass ?(attrs = []) () =
  let* s = Store.create_subobject t.db_store ~parent ~subclass attrs in
  let* () = check_if_eager t s in
  Ok s

let new_relationship t ~ty ~participants ?(attrs = []) () =
  let* s = Store.create_relationship t.db_store ~ty ~participants ~attrs () in
  let* () = check_if_eager t s in
  Ok s

let new_subrel t ~parent ~subrel ~participants ?(attrs = []) () =
  let* s = Store.create_subrel t.db_store ~parent ~subrel ~participants ~attrs () in
  (* The where clause is the subrelationship's admission condition, so it
     is checked immediately regardless of the eager-checks setting. *)
  let* vs = Constraints.check_subrel_where t.db_store ~parent ~rel:s in
  match vs with
  | [] ->
      let* () = check_if_eager t s in
      Ok s
  | v :: _ ->
      let* () = Store.delete t.db_store ~force:true s in
      Error
        (Errors.Constraint_violation
           (Format.asprintf "%a" Constraints.pp_violation v))

let delete t ?force s = Store.delete t.db_store ?force s
let bind t ~via ~transmitter ~inheritor ?attrs () =
  Inheritance.bind t.db_store ~via ~transmitter ~inheritor ?attrs ()

let unbind t s = Inheritance.unbind t.db_store s
let transmitter_of t s = Inheritance.transmitter_of t.db_store s
let inheritors_of t s = Inheritance.inheritors_of t.db_store s
let links_of t s = Inheritance.links_of t.db_store s
let is_stale t s = Inheritance.is_stale t.db_store s
let stale_note t s = Inheritance.stale_note t.db_store s
let acknowledge t s = Inheritance.acknowledge t.db_store s
let get_attr t s name = Inheritance.attr t.db_store s name

let set_attr t s name value =
  if not t.eager_checks then Inheritance.set_attr t.db_store s name value
  else
    (* write first WITHOUT stamping, validate, then stamp only when the
       write survives -- a rolled-back update must not flag inheritors *)
    let* old = Store.local_attr t.db_store s name in
    let* () = Store.set_attr t.db_store s name value in
    let* vs = Constraints.check_entity t.db_store s in
    match vs with
    | [] ->
        let note = Printf.sprintf "transmitter attribute %s updated" name in
        let (_ : Surrogate.t list) =
          Inheritance.stamp_stale t.db_store s ~attr:name ~note
        in
        Ok ()
    | v :: _ ->
        (* roll the write back before reporting *)
        let* () = Store.set_attr t.db_store s name old in
        Error
          (Errors.Constraint_violation
             (Format.asprintf "%a" Constraints.pp_violation v))

let subclass_members t s name = Inheritance.subclass_members t.db_store s name
let subrel_members t s name = Store.subrel_members t.db_store s name
let participant t s name = Store.participant t.db_store s name
let type_of t s = Store.type_of t.db_store s
let validate t s = Constraints.check_entity t.db_store s
let validate_all t = Constraints.check_all t.db_store
let find_index t ~cls ~attr =
  List.find_opt
    (fun ix -> String.equal (Index.cls ix) cls && String.equal (Index.attr ix) attr)
    t.db_indexes

let create_index t ~cls ~attr =
  match find_index t ~cls ~attr with
  | Some _ -> Error (Errors.Duplicate_definition (Printf.sprintf "index on %s.%s" cls attr))
  | None ->
      let* ix = Index.create t.db_store ~cls ~attr in
      t.db_indexes <- ix :: t.db_indexes;
      Ok ()

let drop_index t ~cls ~attr =
  match find_index t ~cls ~attr with
  | None -> Error (Errors.Unknown_class (Printf.sprintf "index on %s.%s" cls attr))
  | Some ix ->
      Index.drop ix;
      t.db_indexes <-
        List.filter (fun other -> not (other == ix)) t.db_indexes;
      Ok ()

let indexes t = List.map (fun ix -> (Index.cls ix, Index.attr ix)) t.db_indexes

let find_ordered t ~cls ~attr =
  List.find_opt
    (fun ox ->
      String.equal (Ordered_index.cls ox) cls
      && String.equal (Ordered_index.attr ox) attr)
    t.db_ordered

let create_ordered_index t ~cls ~attr =
  match find_ordered t ~cls ~attr with
  | Some _ ->
      Error
        (Errors.Duplicate_definition
           (Printf.sprintf "ordered index on %s.%s" cls attr))
  | None ->
      let* ox = Ordered_index.create t.db_store ~cls ~attr in
      t.db_ordered <- ox :: t.db_ordered;
      Ok ()

let drop_ordered_index t ~cls ~attr =
  match find_ordered t ~cls ~attr with
  | None ->
      Error
        (Errors.Unknown_class (Printf.sprintf "ordered index on %s.%s" cls attr))
  | Some ox ->
      Ordered_index.drop ox;
      t.db_ordered <- List.filter (fun other -> not (other == ox)) t.db_ordered;
      Ok ()

let ordered_indexes t =
  List.map (fun ox -> (Ordered_index.cls ox, Ordered_index.attr ox)) t.db_ordered

let verify_indexes t =
  List.concat_map Index.verify t.db_indexes
  @ List.concat_map Ordered_index.verify t.db_ordered

(* The optimizer uses an ordered index only when Value.compare coincides
   with the scan's coercing comparison: integer attributes with integer
   constants, string attributes with string constants. *)
let orderable_pair t ~cls ~attr v =
  match Store.class_member_type t.db_store cls with
  | Error _ -> false
  | Ok member_type -> (
      match Schema.find_effective_attr t.db_schema member_type attr with
      | Some (def, _) -> (
          match (Schema.expand_domain t.db_schema def.Schema.attr_domain, v) with
          | Ok Domain.Integer, Value.Int _ -> true
          | Ok Domain.String, Value.Str _ -> true
          | _ -> false)
      | None -> false)

(* Ablation switch: with planning off every select runs the sequential
   scan + filter path even when a matching index exists.  Indexes are
   still maintained (fsck and verify stay meaningful); only access-path
   selection is disabled.  COMPO_NO_INDEX=1 sets the initial state so
   the bench matrix can toggle the axis per subprocess. *)
let index_planning =
  ref
    (match Sys.getenv_opt "COMPO_NO_INDEX" with
    | Some ("1" | "true" | "yes") -> false
    | Some _ | None -> true)

let index_planning_enabled () = !index_planning
let set_index_planning_enabled b = index_planning := b

(* [attr <cmp> const] (either side) against the registered indexes *)
let index_plan t ~cls where =
  if not !index_planning then None
  else
  let flip = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | op -> op
  in
  let atom = function
    | Expr.Binop (op, Expr.Path [ attr ], Expr.Const v) -> Some (op, attr, v)
    | Expr.Binop (op, Expr.Const v, Expr.Path [ attr ]) -> Some (flip op, attr, v)
    | _ -> None
  in
  let normalized =
    match where with Some e -> atom e | None -> None
  in
  match normalized with
  | Some (Expr.Eq, attr, v) -> (
      match find_index t ~cls ~attr with
      | Some ix -> Some (`Hash (ix, v))
      | None -> (
          match find_ordered t ~cls ~attr with
          | Some ox when orderable_pair t ~cls ~attr v -> Some (`Eq (ox, v))
          | Some _ | None -> None))
  | Some (((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), attr, v) -> (
      match find_ordered t ~cls ~attr with
      | Some ox when orderable_pair t ~cls ~attr v ->
          let open Ordered_index in
          let lo, hi =
            match op with
            | Expr.Lt -> (Unbounded, Exclusive v)
            | Expr.Le -> (Unbounded, Inclusive v)
            | Expr.Gt -> (Exclusive v, Unbounded)
            | Expr.Ge -> (Inclusive v, Unbounded)
            | _ -> assert false
          in
          Some (`Range (ox, lo, hi))
      | Some _ | None -> None)
  | Some _ | None -> None

let run_plan t ~cls plan =
  (* validate the class still exists, then answer from the index *)
  let* _ = Store.class_member_type t.db_store cls in
  match plan with
  | `Hash (ix, v) -> Ok (Index.lookup ix v)
  | `Eq (ox, v) -> Ok (Ordered_index.lookup ox v)
  | `Range (ox, lo, hi) -> Ok (Ordered_index.range ox ~lo ~hi)

(* For a conjunction, serve one indexable conjunct from an index and
   filter the survivors with the residual predicate. *)
let rec conjunction_plan t ~cls expr =
  match index_plan t ~cls (Some expr) with
  | Some plan -> Some (plan, None)
  | None -> (
      match expr with
      | Expr.Binop (Expr.And, a, b) -> (
          match conjunction_plan t ~cls a with
          | Some (plan, residual) ->
              let rest =
                match residual with
                | None -> b
                | Some r -> Expr.Binop (Expr.And, r, b)
              in
              Some (plan, Some rest)
          | None -> (
              match conjunction_plan t ~cls b with
              | Some (plan, residual) ->
                  let rest =
                    match residual with
                    | None -> a
                    | Some r -> Expr.Binop (Expr.And, a, r)
                  in
                  Some (plan, Some rest)
              | None -> None))
      | _ -> None)

let select t ~cls ?jobs ?where () =
  let jobs = Compo_par.Pool.effective_jobs jobs in
  let planned jobs =
    (* planning reads the schema and index registry, so with [jobs > 1]
       the caller has latched before calling us *)
    match Option.bind where (conjunction_plan t ~cls) with
    | Some (plan, residual) ->
        let* candidates = run_plan t ~cls plan in
        Ok (Some (Query.filter_candidates ~jobs t.db_store residual candidates))
    | None -> Ok None
  in
  if jobs <= 1 then
    let* rows = planned 1 in
    match rows with
    | Some rows -> Ok rows
    | None -> Query.select t.db_store ~cls ~jobs:1 ?where ()
  else
    (* one latch section covers planning, the access stage and the
       fan-out, so every worker evaluates the frozen snapshot the plan
       was built against *)
    Store.with_read_latch t.db_store @@ fun () ->
    let jobs = Query.latched_jobs t.db_store jobs in
    let* rows = planned jobs in
    match rows with
    | Some rows -> Ok rows
    | None -> (
        Trace.with_span "query.select" ~attrs:[ ("cls", cls) ] @@ fun () ->
        (* compiled engine first (we already hold the read latch, which
           is try_scan's jobs > 1 contract) *)
        let compiled =
          match where with
          | Some pred -> Plan.try_scan t.db_store ~cls ~jobs pred
          | None -> None
        in
        match compiled with
        | Some r -> Result.map fst r
        | None ->
            let* members = Store.class_members t.db_store cls in
            Obs.observe h_extent (float_of_int (List.length members));
            Ok (Query.filter_candidates ~jobs t.db_store where members))

let select_subobjects t ~parent ~subclass ?jobs ?where () =
  Query.select_subobjects t.db_store ~parent ~subclass ?jobs ?where ()

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let describe_plan = function
  | `Hash (ix, v) ->
      Query.Hash_eq { attr = Index.attr ix; value = Value.to_string v }
  | `Eq (ox, v) ->
      Query.Ordered_eq
        { attr = Ordered_index.attr ox; value = Value.to_string v }
  | `Range (ox, lo, hi) ->
      let open Ordered_index in
      let lo_s =
        match lo with
        | Unbounded -> "(-inf"
        | Inclusive v -> "[" ^ Value.to_string v
        | Exclusive v -> "(" ^ Value.to_string v
      in
      let hi_s =
        match hi with
        | Unbounded -> "+inf)"
        | Inclusive v -> Value.to_string v ^ "]"
        | Exclusive v -> Value.to_string v ^ ")"
      in
      Query.Ordered_range
        { attr = Ordered_index.attr ox; interval = lo_s ^ ", " ^ hi_s }

(* Mirrors [select] exactly (same planner, same filters), adding stage
   timing and the eval.node delta.  Kept separate so the plain read path
   never pays the clock calls. *)
let explain_select t ~cls ?where () =
  let where_str = Option.map Expr.to_string where in
  let nodes0 = Eval.node_count () in
  match Option.bind where (conjunction_plan t ~cls) with
  | Some (plan, residual) ->
      let t0 = Unix.gettimeofday () in
      let* candidates = run_plan t ~cls plan in
      let t1 = Unix.gettimeofday () in
      let rows =
        match residual with
        | None -> candidates
        | Some pred ->
            List.filter
              (fun s -> Query.matching t.db_store ~self:s pred)
              candidates
      in
      let t2 = Unix.gettimeofday () in
      Ok
        ( rows,
          {
            Query.ex_cls = cls;
            ex_access = describe_plan plan;
            ex_where = where_str;
            ex_residual = Option.map Expr.to_string residual;
            ex_candidates = List.length candidates;
            ex_rows = List.length rows;
            ex_eval_nodes = Eval.node_count () - nodes0;
            ex_access_seconds = t1 -. t0;
            ex_filter_seconds = t2 -. t1;
            ex_plan = None;
          } )
  | None -> (
      let t0 = Unix.gettimeofday () in
      let* members = Store.class_members t.db_store cls in
      let t1 = Unix.gettimeofday () in
      let finish rows plan t2 =
        Ok
          ( rows,
            {
              Query.ex_cls = cls;
              ex_access = Query.Seq_scan { extent = cls };
              ex_where = where_str;
              ex_residual = where_str;
              ex_candidates = List.length members;
              ex_rows = List.length rows;
              ex_eval_nodes = Eval.node_count () - nodes0;
              ex_access_seconds = t1 -. t0;
              ex_filter_seconds = t2 -. t1;
              ex_plan = plan;
            } )
      in
      let compiled =
        match where with
        | Some pred -> Plan.try_scan t.db_store ~cls ~jobs:1 pred
        | None -> None
      in
      match compiled with
      | Some res ->
          let* rows, report = res in
          finish rows (Some report) (Unix.gettimeofday ())
      | None ->
          let rows =
            match where with
            | None -> members
            | Some pred ->
                List.filter
                  (fun s -> Query.matching t.db_store ~self:s pred)
                  members
          in
          finish rows None (Unix.gettimeofday ()))

let explain_attr t s name = Inheritance.explain t.db_store s name

let expand t ?max_depth s = Composite.expand t.db_store ?max_depth s
let bill_of_materials t s = Composite.bill_of_materials t.db_store s
let where_used t s = Composite.where_used t.db_store s
let implementations_of t s = Composite.implementations_of t.db_store s
