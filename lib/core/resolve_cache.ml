module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace

let m_hit = Obs.counter "inheritance.cache.hit"
let m_miss = Obs.counter "inheritance.cache.miss"

(* churn attribution: scoped bumps (attribute writes) are the cheap,
   common case; global bumps (structural change) clear the whole table *)
let m_invalidate_scoped = Obs.counter "inheritance.cache.invalidate.scoped"
let m_invalidate_global = Obs.counter "inheritance.cache.invalidate.global"
let g_size = Obs.gauge "inheritance.cache.size"

let hits () = Obs.count m_hit
let misses () = Obs.count m_miss
let invalidations_scoped () = Obs.count m_invalidate_scoped
let invalidations_global () = Obs.count m_invalidate_global
let invalidations () = invalidations_scoped () + invalidations_global ()

let truthy = function "1" | "true" | "yes" -> true | _ -> false

let default =
  ref
    (match Sys.getenv_opt "COMPO_NO_RESOLVE_CACHE" with
    | Some v -> not (truthy v)
    | None -> true)

let default_enabled () = !default
let set_default_enabled b = default := b

module Key = struct
  type t = Surrogate.t * string

  let equal (s1, a1) (s2, a2) = Surrogate.equal s1 s2 && String.equal a1 a2
  let hash (s, a) = (Surrogate.hash s * 31) + Hashtbl.hash a
end

module Ktbl = Hashtbl.Make (Key)

type entry = { e_value : Value.t; e_gen : int }

type t = {
  mutable rc_enabled : bool;
  rc_capacity : int;
  mutable rc_gen : int;  (* bumped by every invalidation *)
  mutable rc_floor : int;  (* entries filled before this are dead *)
  rc_floors : int Surrogate.Tbl.t;  (* per-surrogate floors (scoped bumps) *)
  rc_entries : entry Ktbl.t;
}

let create ?(capacity = 65536) ?enabled () =
  {
    rc_enabled = Option.value ~default:!default enabled;
    rc_capacity = max 1 capacity;
    rc_gen = 0;
    rc_floor = 0;
    rc_floors = Surrogate.Tbl.create 64;
    rc_entries = Ktbl.create 256;
  }

let enabled t = t.rc_enabled
let size t = Ktbl.length t.rc_entries
let capacity t = t.rc_capacity
let generation t = t.rc_gen

let sync_gauge t = Obs.set_gauge g_size (float_of_int (Ktbl.length t.rc_entries))

let clear t =
  Ktbl.reset t.rc_entries;
  Surrogate.Tbl.reset t.rc_floors;
  t.rc_floor <- t.rc_gen;
  sync_gauge t

let set_enabled t b =
  if t.rc_enabled && not b then clear t;
  t.rc_enabled <- b

let floor_of t s =
  match Surrogate.Tbl.find_opt t.rc_floors s with
  | Some f -> max f t.rc_floor
  | None -> t.rc_floor

let find t s name =
  if not t.rc_enabled then None
  else
    match Ktbl.find_opt t.rc_entries (s, name) with
    | Some e when e.e_gen >= floor_of t s ->
        Obs.incr m_hit;
        Some e.e_value
    | Some _ ->
        (* dead entry: sweep it lazily so capacity tracks live data *)
        Ktbl.remove t.rc_entries (s, name);
        sync_gauge t;
        Obs.incr m_miss;
        None
    | None ->
        Obs.incr m_miss;
        None

let fill t ~gen s name v =
  if t.rc_enabled && gen >= floor_of t s then begin
    if Ktbl.length t.rc_entries >= t.rc_capacity then clear t;
    (* re-check after a capacity clear moved the floor *)
    if gen >= floor_of t s then begin
      Ktbl.replace t.rc_entries (s, name) { e_value = v; e_gen = gen };
      sync_gauge t
    end
  end

(* Invalidation is a no-op while disabled: nothing fills a disabled cache,
   and re-enabling starts from a cleared table (see {!set_enabled}). *)
let invalidate_scoped t ss =
  if t.rc_enabled then
    Trace.with_span "inheritance.cache.invalidation"
      ~attrs:[ ("scope", "scoped") ]
    @@ fun () ->
    t.rc_gen <- t.rc_gen + 1;
    List.iter (fun s -> Surrogate.Tbl.replace t.rc_floors s t.rc_gen) ss;
    Obs.incr m_invalidate_scoped

let invalidate_global t =
  if t.rc_enabled then
    Trace.with_span "inheritance.cache.invalidation"
      ~attrs:[ ("scope", "global") ]
    @@ fun () ->
    t.rc_gen <- t.rc_gen + 1;
    clear t;
    Obs.incr m_invalidate_global
