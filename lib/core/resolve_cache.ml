module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace
module Domain_slot = Compo_obs.Domain_slot

let m_lookup = Obs.counter "inheritance.cache.lookup"
let m_hit = Obs.counter "inheritance.cache.hit"
let m_miss = Obs.counter "inheritance.cache.miss"

(* churn attribution: scoped bumps (attribute writes) are the cheap,
   common case; global bumps (structural change) clear the whole table *)
let m_invalidate_scoped = Obs.counter "inheritance.cache.invalidate.scoped"
let m_invalidate_global = Obs.counter "inheritance.cache.invalidate.global"
let g_size = Obs.gauge "inheritance.cache.size"

let lookups () = Obs.count m_lookup
let hits () = Obs.count m_hit
let misses () = Obs.count m_miss
let invalidations_scoped () = Obs.count m_invalidate_scoped
let invalidations_global () = Obs.count m_invalidate_global
let invalidations () = invalidations_scoped () + invalidations_global ()

let truthy = function "1" | "true" | "yes" -> true | _ -> false

let default =
  ref
    (match Sys.getenv_opt "COMPO_NO_RESOLVE_CACHE" with
    | Some v -> not (truthy v)
    | None -> true)

let default_enabled () = !default
let set_default_enabled b = default := b

module Key = struct
  type t = Surrogate.t * string

  let equal (s1, a1) (s2, a2) = Surrogate.equal s1 s2 && String.equal a1 a2
  let hash (s, a) = (Surrogate.hash s * 31) + Hashtbl.hash a
end

module Ktbl = Hashtbl.Make (Key)

type entry = { e_value : Value.t; e_gen : int }

(* Domain safety: the generation and global floor are atomics — the
   pre-fix code read-modify-wrote plain ints, so concurrent
   invalidations lost bumps and a racing fill could publish under a
   floor it never saw (the "global-generation read/write race").  The
   entry table is sharded per domain: each domain fills and sweeps only
   its own hash table, so worker fills never contend and never corrupt
   a shared table.  Scoped floors ([rc_floors]) are only written by
   store mutators, which the store serialises against parallel readers
   (its write latch), so a plain table read-only during parallel
   sections is sound.  [clear] walks every shard and is likewise only
   called from write-side paths. *)
type t = {
  mutable rc_enabled : bool;
  rc_capacity : int;  (* per-shard entry bound *)
  rc_gen : int Atomic.t;  (* bumped by every invalidation *)
  rc_floor : int Atomic.t;  (* entries filled before this are dead *)
  rc_floors : int Surrogate.Tbl.t;  (* per-surrogate floors (scoped bumps) *)
  rc_shards : entry Ktbl.t option Atomic.t array;  (* per-domain tables *)
}

let create ?(capacity = 65536) ?enabled () =
  {
    rc_enabled = Option.value ~default:!default enabled;
    rc_capacity = max 1 capacity;
    rc_gen = Atomic.make 0;
    rc_floor = Atomic.make 0;
    rc_floors = Surrogate.Tbl.create 64;
    rc_shards = Array.init Domain_slot.max_slots (fun _ -> Atomic.make None);
  }

let enabled t = t.rc_enabled

let fold_shards t f acc =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with Some tbl -> f acc tbl | None -> acc)
    acc t.rc_shards

let size t = fold_shards t (fun acc tbl -> acc + Ktbl.length tbl) 0
let capacity t = t.rc_capacity
let generation t = Atomic.get t.rc_gen

(* The caller's own shard; [None] for a domain past the slot space,
   which simply runs uncached. *)
let own_shard t =
  let slot = Domain_slot.get () in
  if not (Domain_slot.in_range slot) then None
  else
    match Atomic.get t.rc_shards.(slot) with
    | Some _ as s -> s
    | None ->
        let tbl = Ktbl.create 256 in
        Atomic.set t.rc_shards.(slot) (Some tbl);
        Some tbl

let sync_gauge t =
  if Obs.enabled () then Obs.set_gauge g_size (float_of_int (size t))

let clear t =
  Array.iter
    (fun slot -> match Atomic.get slot with
      | Some tbl -> Ktbl.reset tbl
      | None -> ())
    t.rc_shards;
  Surrogate.Tbl.reset t.rc_floors;
  Atomic.set t.rc_floor (Atomic.get t.rc_gen);
  sync_gauge t

let set_enabled t b =
  if t.rc_enabled && not b then clear t;
  t.rc_enabled <- b

let floor_of t s =
  match Surrogate.Tbl.find_opt t.rc_floors s with
  | Some f -> max f (Atomic.get t.rc_floor)
  | None -> Atomic.get t.rc_floor

let find t s name =
  if not t.rc_enabled then None
  else begin
    Obs.incr m_lookup;
    match own_shard t with
    | None ->
        Obs.incr m_miss;
        None
    | Some tbl -> (
        match Ktbl.find_opt tbl (s, name) with
        | Some e when e.e_gen >= floor_of t s ->
            Obs.incr m_hit;
            Some e.e_value
        | Some _ ->
            (* dead entry: sweep it lazily so capacity tracks live data *)
            Ktbl.remove tbl (s, name);
            sync_gauge t;
            Obs.incr m_miss;
            None
        | None ->
            Obs.incr m_miss;
            None)
  end

let fill t ~gen s name v =
  if t.rc_enabled && gen >= floor_of t s then
    match own_shard t with
    | None -> ()
    | Some tbl ->
        if Ktbl.length tbl >= t.rc_capacity then
          (* epoch-evict this shard only: another domain's table is
             never touched from here *)
          Ktbl.reset tbl;
        (* re-check: an invalidation may have raced the walk *)
        if gen >= floor_of t s then begin
          Ktbl.replace tbl (s, name) { e_value = v; e_gen = gen };
          sync_gauge t
        end

(* Invalidation is a no-op while disabled: nothing fills a disabled cache,
   and re-enabling starts from a cleared table (see {!set_enabled}). *)
let invalidate_scoped t ss =
  if t.rc_enabled then
    Trace.with_span "inheritance.cache.invalidation"
      ~attrs:[ ("scope", "scoped") ]
    @@ fun () ->
    let gen = Atomic.fetch_and_add t.rc_gen 1 + 1 in
    List.iter (fun s -> Surrogate.Tbl.replace t.rc_floors s gen) ss;
    Obs.incr m_invalidate_scoped

let invalidate_global t =
  if t.rc_enabled then
    Trace.with_span "inheritance.cache.invalidation"
      ~attrs:[ ("scope", "global") ]
    @@ fun () ->
    ignore (Atomic.fetch_and_add t.rc_gen 1);
    clear t;
    Obs.incr m_invalidate_global
