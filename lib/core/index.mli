(** Attribute indexes over top-level classes.

    An index maps the value of one {e locally-owned} attribute to the class
    members carrying it, and maintains itself through the store's write
    hooks (attribute updates, class membership changes, deletions).
    {!Database.select} uses a matching index automatically for equality
    predicates; benchmark E10 quantifies the win over the scan.

    Inherited attributes cannot be indexed: their value lives on the
    transmitter, whose updates would have to be traced through every
    binding — the scan path stays correct for those. *)

type t

val create : Store.t -> cls:string -> attr:string -> (t, Errors.t) result
(** Builds the index over the current class extent and subscribes to
    updates.  Fails if the class is unknown or the attribute is not a
    locally-owned attribute of the class's member type. *)

val cls : t -> string
val attr : t -> string

val lookup : t -> Value.t -> Surrogate.t list
(** Members whose attribute currently equals the value (insertion order). *)

val size : t -> int
(** Number of indexed members. *)

val hits : t -> int
(** How many lookups the index has served (used to assert the query
    optimizer actually used it). *)

val verify : t -> string list
(** Cross-check the index against the store: every indexed member must be
    live, in the class, bucketed exactly once under its current attribute
    value, and every class member must be indexed.  Returns one message
    per violation; [[]] means consistent.  Used by fsck. *)

val drop : t -> unit
(** Unsubscribe from the store; the index stops updating and should be
    discarded. *)
