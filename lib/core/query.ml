let ( let* ) = Result.bind

module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace
module Pool = Compo_par.Pool

(* select counts live in the "query.select" span histogram *)
let h_extent = Obs.histogram ~buckets:Obs.size_buckets "query.select.extent"

(* parallel selects that found read hooks installed and ran sequentially *)
let m_fallback = Obs.counter "par.select.fallback"

let matching store ~self expr =
  match Eval.eval_bool (Eval.env ~self store) expr with
  | Ok b -> b
  | Error _ -> false

let filter_candidates ?(jobs = 1) store where candidates =
  match where with
  | None -> candidates
  | Some pred ->
      let keep s = matching store ~self:s pred in
      if jobs <= 1 then List.filter keep candidates
      else Pool.filter_list ~jobs keep candidates

(* Must be called holding the read latch: hooks are only installed under
   the write latch, so the answer cannot change while we hold it.  A
   hook is arbitrary closure state (lock inheritance) and must fire on
   the installing domain — with hooks present the select runs its
   sequential plan under the same latch. *)
let latched_jobs store jobs =
  if jobs > 1 && Store.read_hooks_installed store then begin
    Obs.incr m_fallback;
    1
  end
  else jobs

let select store ~cls ?jobs ?where () =
  Trace.with_span "query.select" ~attrs:[ ("cls", cls) ] @@ fun () ->
  let jobs = Pool.effective_jobs jobs in
  let interpreted jobs =
    let* members = Store.class_members store cls in
    Obs.observe h_extent (float_of_int (List.length members));
    Ok (filter_candidates ~jobs store where members)
  in
  let run jobs =
    (* compiled engine first; [None] means it stands down (disabled,
       hooks, unknown class — the delta-maintained plan state makes
       this cheap to take even on write-heavy interleavings) *)
    match where with
    | Some pred -> (
        match Plan.try_scan store ~cls ~jobs pred with
        | Some r -> Result.map fst r
        | None -> interpreted jobs)
    | None -> interpreted jobs
  in
  if jobs <= 1 then run 1
  else
    Store.with_read_latch store @@ fun () -> run (latched_jobs store jobs)

let select_subobjects store ~parent ~subclass ?jobs ?where () =
  Trace.with_span "query.select" ~attrs:[ ("subclass", subclass) ] @@ fun () ->
  let jobs = Pool.effective_jobs jobs in
  let run jobs =
    let* members = Inheritance.subclass_members store parent subclass in
    Obs.observe h_extent (float_of_int (List.length members));
    Ok (filter_candidates ~jobs store where members)
  in
  if jobs <= 1 then run 1
  else
    Store.with_read_latch store @@ fun () -> run (latched_jobs store jobs)

let project store objects name =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* v = Inheritance.attr store s name in
        go (v :: acc) rest
  in
  go [] objects

let navigate store ~from path = Eval.eval_items (Eval.env ~self:from store) path

let order_by store ?(descending = false) ~attr objects =
  let* keyed =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = Inheritance.attr store s attr in
        Ok ((s, v) :: acc))
      (Ok []) objects
  in
  let keyed = List.rev keyed in
  let cmp (_, a) (_, b) =
    let c = Value.compare a b in
    if descending then -c else c
  in
  Ok (List.map fst (List.stable_sort cmp keyed))

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

type access =
  | Seq_scan of { extent : string }
  | Hash_eq of { attr : string; value : string }
  | Ordered_eq of { attr : string; value : string }
  | Ordered_range of { attr : string; interval : string }

type explain = {
  ex_cls : string;
  ex_access : access;
  ex_where : string option;
  ex_residual : string option;
  ex_candidates : int;
  ex_rows : int;
  ex_eval_nodes : int;
  ex_access_seconds : float;
  ex_filter_seconds : float;
  ex_plan : Plan.report option;
}

let access_to_string = function
  | Seq_scan { extent } -> Printf.sprintf "seq scan over class %s" extent
  | Hash_eq { attr; value } ->
      Printf.sprintf "hash index on %s = %s" attr value
  | Ordered_eq { attr; value } ->
      Printf.sprintf "ordered index on %s = %s" attr value
  | Ordered_range { attr; interval } ->
      Printf.sprintf "ordered index range on %s in %s" attr interval

let pp_explain ?(timings = false) ppf ex =
  (* timings are optional so the rendering stays byte-stable for tests *)
  let time ppf t = if timings then Format.fprintf ppf "  (%.3f ms)" (1000. *. t) in
  Format.fprintf ppf "@[<v>select %s@," ex.ex_cls;
  Format.fprintf ppf "  where: %s@,"
    (Option.value ~default:"(none)" ex.ex_where);
  Format.fprintf ppf "  access: %s -> %d candidate(s)%a@,"
    (access_to_string ex.ex_access)
    ex.ex_candidates time ex.ex_access_seconds;
  (match ex.ex_residual with
  | Some r ->
      Format.fprintf ppf "  filter: %s -> %d row(s), %d eval node(s)%a" r
        ex.ex_rows ex.ex_eval_nodes time ex.ex_filter_seconds
  | None -> Format.fprintf ppf "  filter: (none) -> %d row(s)" ex.ex_rows);
  (match ex.ex_plan with
  | None -> Format.fprintf ppf "@,  plan: interpreted"
  | Some r ->
      Format.fprintf ppf
        "@,  plan: compiled, %d closure(s), adjacency %d node(s) / %d edge(s)"
        r.Plan.rp_closures r.Plan.rp_nodes r.Plan.rp_edges;
      if r.Plan.rp_columns <> [] then
        Format.fprintf ppf "@,  columns: %s"
          (String.concat ", "
             (List.map
                (fun (attr, epoch, built) ->
                  Printf.sprintf "%s@e%d (%s)" attr epoch
                    (if built then "built" else "cached"))
                r.Plan.rp_columns)));
  Format.fprintf ppf "@]"

type aggregate = Count_values | Count_distinct | Sum | Min | Max

(* numbers compare by magnitude across Int/Real, everything else by the
   structural order -- the same rule the expression evaluator applies *)
let numeric_compare a b =
  match (Value.as_float a, Value.as_float b) with
  | Some x, Some y -> Float.compare x y
  | _ -> Value.compare a b

let aggregate store agg ~attr objects =
  let* values =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = Inheritance.attr store s attr in
        Ok (v :: acc))
      (Ok []) objects
  in
  let non_null = List.filter (fun v -> not (Value.equal v Value.Null)) values in
  match agg with
  | Count_values -> Ok (Value.Int (List.length non_null))
  | Count_distinct ->
      Ok (Value.Int (List.length (List.sort_uniq Value.compare values)))
  | Sum ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match (acc, v) with
          | Value.Int a, Value.Int b -> Ok (Value.Int (a + b))
          | acc, v -> (
              match (Value.as_float acc, Value.as_float v) with
              | Some a, Some b -> Ok (Value.Real (a +. b))
              | _ ->
                  Error
                    (Errors.Eval_error
                       ("sum over non-numeric value " ^ Value.to_string v))))
        (Ok (Value.Int 0)) non_null
  | Min ->
      Ok
        (List.fold_left
           (fun acc v ->
             if Value.equal acc Value.Null || numeric_compare v acc < 0 then v else acc)
           Value.Null non_null)
  | Max ->
      Ok
        (List.fold_left
           (fun acc v ->
             if Value.equal acc Value.Null || numeric_compare v acc > 0 then v else acc)
           Value.Null non_null)
