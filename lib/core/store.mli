(** The object store: instances of object types, relationship types, and
    inheritance relationship types, plus named top-level classes.

    Structural storage and typing live here.  The {e semantics} of value
    inheritance (binding validation, permeability-filtered resolution,
    update stamping) live in {!Inheritance}; most applications should go
    through the {!Database} facade, which composes the two and adds
    constraint checking.

    Every entity — plain object, relationship object, inheritance link — has
    a surrogate and may carry attributes, local subobject classes, and local
    subrelationship classes (paper section 3: "A relationship is represented
    by a relationship object", "Like any other relationship, the inheritance
    relationship may possess attributes, subobjects and constraints"). *)

module Smap : Map.S with type key = string

type kind = Object_entity | Relationship_entity | Inheritance_link

type binding = {
  b_link : Surrogate.t;  (** the inheritance-relationship object *)
  b_via : string;  (** its inheritance relationship type *)
  b_transmitter : Surrogate.t;
}

type entity = {
  id : Surrogate.t;
  type_name : string;
  kind : kind;
  mutable attrs : Value.t Smap.t;  (** locally owned attribute values *)
  mutable participants : Value.t Smap.t;
      (** relationship participants: [Ref] or [Set] of [Ref]s *)
  mutable subobjs : Surrogate.t list Smap.t;  (** subclass name -> members *)
  mutable subrels : Surrogate.t list Smap.t;
  mutable owner : Surrogate.t option;  (** enclosing complex object *)
  mutable bound : binding option;  (** as inheritor *)
  mutable inheritor_links : Surrogate.t list;  (** as transmitter *)
  mutable classes_of : string list;  (** top-level classes containing it *)
}

type t

val create : Schema.t -> t
val schema : t -> Schema.t

(** {1 Compiled-plan stamping and the change log}

    The query-compilation layer ({!Plan}, above this module) caches
    flattened adjacency arrays and materialized resolved-value columns
    per store.  Those caches are only valid against a frozen state, so
    the store carries a monotonic mutation stamp that — unlike the
    resolve-cache generation, which freezes while the cache is disabled
    — advances on {e every} mutation: attribute writes, binding and
    participant changes, deletes, class-extent changes, schema
    evolution, restores.

    Since the delta-maintenance rework, a stale stamp no longer means
    "rebuild everything": every bump appends one typed {!change} record
    to a bounded log, and {!changes_since} hands a consumer the exact
    window between its recorded epoch and now.  Only when the window has
    been lost (overflow) or contains {!Ch_global} must the consumer fall
    back to a full rebuild. *)

val plan_epoch : t -> int
(** Current mutation stamp.  Plan state recorded under an older epoch is
    stale; the holder may catch up by applying {!changes_since} its
    recorded epoch, rebuilding only when that returns [None] or a window
    containing {!Ch_global}. *)

type change =
  | Ch_created of Surrogate.t  (** entity added (object, rel, or link) *)
  | Ch_deleted of Surrogate.t  (** entity removed *)
  | Ch_attr of Surrogate.t * string  (** local attribute written *)
  | Ch_rebound of Surrogate.t
      (** the entity's binding changed: bound, unbound, or its link died
          — re-derive the transmitter edge from current state *)
  | Ch_class_add of string * Surrogate.t  (** (class, member) inserted *)
  | Ch_class_remove of string * Surrogate.t  (** (class, member) removed *)
  | Ch_touched of Surrogate.t
      (** structural change local to the entity (participants, subobject
          membership): resolution chains keep their shape, but any state
          derived by interpreting expressions against it is dirty *)
  | Ch_global  (** unscoped mutation: rebuild everything *)

(** One record per {!plan_epoch} bump; the record for bump [e -> e+1]
    describes that transition. *)

val changes_since : t -> int -> change list option
(** [changes_since t e] is the in-order change window covering epochs
    [(e, plan_epoch t]] — [Some []] when already current — or [None]
    when the bounded log no longer reaches back to [e] (the caller must
    treat its state as arbitrarily stale and rebuild). *)

val change_log_cap : int
(** Retention bound of the change log, in records.  Mutation bursts
    longer than this between two consumers' catch-ups force those
    consumers into a full rebuild. *)

type plan_slot = ..
(** Opaque per-store slot for compiled-plan state; {!Plan} injects its
    own constructor (this module never inspects the contents). *)

val plan_slot : t -> plan_slot option
val set_plan_slot : t -> plan_slot -> unit

(** {1 Latching}

    Every mutator of this module runs under the store's write latch; a
    parallel select ({!Query.select} / {!Database.select} with
    [jobs > 1]) holds the read side across its whole fan-out, so worker
    domains evaluate against a frozen point-in-time state.  Sequential
    code never notices: the write side is reentrant per domain and
    uncontended acquisition is cheap. *)

val exclusively : t -> (unit -> 'a) -> 'a
(** Run [f] holding the write latch: excluded against every mutator and
    every parallel select on other domains.  Reentrant — mutators called
    inside [f] re-enter.  Use it to make a multi-operation batch (e.g. a
    transaction body plus its commit) atomic with respect to parallel
    readers. *)

val with_read_latch : t -> (unit -> 'a) -> 'a
(** Run [f] holding the read latch: shared with other readers, excluded
    against mutators.  Do not nest (writers are preferred and a nested
    acquisition behind a waiting writer would deadlock); inside
    {!exclusively} of the same domain it degrades to [f ()]. *)

(** {1 Resolve cache}

    Every store owns a {!Resolve_cache.t} memoising inherited-attribute
    resolutions.  The store is the single writer of entity state, so all
    its write paths carry the generation plumbing: attribute writes bump
    the writer's inheritor closure (scoped), while bind / unbind / delete /
    participant rewiring / entity restore bump globally.  {!Inheritance}
    performs the lookup → walk → fill. *)

val resolve_cache : t -> Resolve_cache.t

val resolve_cache_active : t -> bool
(** True when the cache is enabled {e and} no read hooks are installed.
    With hooks present a memoised read would skip the per-hop
    notifications that implement lock inheritance, so the cache stands
    down for the duration (transactional reads always walk). *)

val resolve_cache_status : t -> [ `Active | `Disabled | `Hooked ]
(** Why (or why not) the cache will serve the next read: [`Active] as
    above, [`Disabled] when switched off for this store or process,
    [`Hooked] when read hooks force the walk.  Provenance records this as
    the read's cache outcome ([`Hooked] renders as "bypass"). *)

val set_resolve_cache_enabled : t -> bool -> unit
(** The per-store escape hatch ([--no-resolve-cache] sets the process
    default instead, see {!Resolve_cache.set_default_enabled}). *)

val invalidate_resolve_cache : t -> unit
(** Global generation bump: drop every memoised resolution.  Exposed for
    layers whose mutations bypass the store's write paths (transaction
    abort, schema evolution). *)

(** {1 Hooks}

    Multiple subscribers observe reads and writes: the transaction layer
    acquires locks, attribute indexes keep themselves fresh.  Hooks see
    the surrogate whose data is touched; a hook raising an exception
    aborts the triggering operation. *)

type hook_id

val add_read_hook : t -> (Surrogate.t -> unit) -> hook_id
val add_write_hook : t -> (Surrogate.t -> unit) -> hook_id
val remove_hook : t -> hook_id -> unit

val read_hooks_installed : t -> bool
(** Whether any read hook is currently installed.  Parallel selects
    check this after acquiring the read latch and fall back to a
    sequential filter when hooks are present: a hook is arbitrary
    closure state (the transaction layer's lock inheritance) and must
    not be invoked from worker domains. *)

val notify_read : t -> Surrogate.t -> unit

val notify_write : ?change:change -> t -> Surrogate.t -> unit
(** Fire the write hooks and advance {!plan_epoch}, logging [change]
    (default {!Ch_global}: external callers that cannot describe their
    mutation precisely must not leave delta consumers with a stale
    window). *)

(** {1 Classes} *)

val create_class : t -> name:string -> member_type:string -> (unit, Errors.t) result
val class_names : t -> string list
val class_member_type : t -> string -> (string, Errors.t) result
val class_members : t -> string -> (Surrogate.t list, Errors.t) result
val insert_into_class : t -> cls:string -> Surrogate.t -> (unit, Errors.t) result
val remove_from_class : t -> cls:string -> Surrogate.t -> (unit, Errors.t) result

(** {1 Entities} *)

val get : t -> Surrogate.t -> (entity, Errors.t) result
val mem : t -> Surrogate.t -> bool
val type_of : t -> Surrogate.t -> (string, Errors.t) result

val is_instance_of : t -> Surrogate.t -> string -> bool
(** True if the entity's type is the given type or reaches it along its
    inheritor-in transmitter chain (the "is-a" reading of value
    inheritance). *)

val iter : t -> (entity -> unit) -> unit
val fold : t -> ('a -> entity -> 'a) -> 'a -> 'a
val entity_count : t -> int

val create_object :
  t ->
  ?cls:string ->
  ty:string ->
  (string * Value.t) list ->
  (Surrogate.t, Errors.t) result
(** Creates a top-level object.  Only locally-owned attributes may be
    given; naming an inherited attribute is [Inherited_readonly].  Values
    must conform to their domains. *)

val create_subobject :
  t ->
  parent:Surrogate.t ->
  subclass:string ->
  (string * Value.t) list ->
  (Surrogate.t, Errors.t) result
(** Adds a member to one of the parent's {e own} subclasses.  Inherited
    subclasses are views of the transmitter and cannot be extended from the
    inheritor side. *)

val create_relationship :
  t ->
  ty:string ->
  participants:(string * Value.t) list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  (Surrogate.t, Errors.t) result
(** Participants are validated against the relates clause: presence,
    cardinality ([One] takes a [Ref], [Many] a [Set] of [Ref]s), and target
    type (exact or via transmitter chain).  The where clause of a subrel is
    the caller's duty ({!Database} checks it). *)

val create_subrel :
  t ->
  parent:Surrogate.t ->
  subrel:string ->
  participants:(string * Value.t) list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  (Surrogate.t, Errors.t) result

val local_attr : t -> Surrogate.t -> string -> (Value.t, Errors.t) result
(** Locally-owned value; [Null] when uninitialised.  Does not resolve
    inheritance — see {!Inheritance.attr}. *)

val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Rejects inherited attributes ([Inherited_readonly]) and non-conforming
    values.  Fires the write hook.  Callers who need staleness stamping on
    dependent inheritance links should use {!Database.set_attr}. *)

val subclass_members : t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result
(** Members of a {e local} subclass.  Inheritance-aware resolution is
    {!Inheritance.subclass_members}. *)

val subrel_members : t -> Surrogate.t -> string -> (Surrogate.t list, Errors.t) result

val participant : t -> Surrogate.t -> string -> (Value.t, Errors.t) result

val set_participant : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result
(** Rewire one participant of a relationship object (validated against the
    relates clause; the referrer index follows).  Fires the write hook. *)

val owner_of : t -> Surrogate.t -> (Surrogate.t option, Errors.t) result

val referrers : t -> Surrogate.t -> Surrogate.t list
(** Relationship entities having the given entity among their participants. *)

val delete : t -> ?force:bool -> Surrogate.t -> (unit, Errors.t) result
(** Deletes the entity and, transitively, its subobjects and
    subrelationships (section 3: "All subobjects depend on the complex
    object, they are deleted with the complex object").

    Restrictions, lifted by [~force:true]:
    - a transmitter with bound inheritors ([Delete_restricted]); forcing
      unbinds them (they keep their structure, lose the inherited values)
      and deletes the link objects;
    - an entity referenced as a participant of a relationship
      ([Delete_restricted]); forcing deletes those relationships too. *)

(** {1 Low-level: inheritance links}

    Structural creation/removal of inheritance-relationship objects.  No
    semantic validation happens here — use {!Inheritance.bind} /
    {!Inheritance.unbind}, which check inheritor-in declarations, type
    compatibility, and cycles before delegating. *)

val add_inheritance_link :
  t ->
  ty:string ->
  transmitter:Surrogate.t ->
  inheritor:Surrogate.t ->
  attrs:(string * Value.t) list ->
  (Surrogate.t, Errors.t) result

val remove_inheritance_link : t -> Surrogate.t -> (unit, Errors.t) result

(** {1 Integrity} *)

val check_invariants : t -> string list
(** Structural health check used by property tests and the CLI: verifies
    bidirectional binding links, owner back-pointers of subobjects and
    subrelationships, class membership coherence, the referrer index,
    dangling participant references, and acyclicity of both the
    containment and the inheritance graphs.  Returns human-readable
    violation descriptions; healthy stores return []. *)

(** {1 Persistence support} *)

val generator : t -> Surrogate.Gen.t

val restore_entity : t -> entity -> unit
(** Insert a decoded entity verbatim (codec use only). *)

val restore_class : t -> name:string -> member_type:string -> members:Surrogate.t list -> unit
