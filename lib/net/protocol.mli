(** The compo wire protocol: length-prefixed binary frames.

    A frame is a 4-byte little-endian unsigned length followed by that
    many body bytes.  Bodies are encoded with {!Compo_core.Binary} (the
    same primitives the persistence codec uses); values and predicate
    expressions travel in the {!Compo_storage.Codec} formats, so a
    client can ship any predicate [compo query] accepts.

    Every request carries a client-chosen correlation id; the response
    to it echoes that id.  Ids let a client pipeline requests: the
    server answers in arrival order, but the client does not have to
    block between sends.

    The first request on a connection must be [Open_session] carrying
    the protocol {!magic} and {!version}; anything else — and any frame
    that fails to decode — is answered with [Protocol_error] and the
    connection is closed.  See docs/SERVER.md for the full layout and
    lifecycle. *)

open Compo_core

val magic : string
(** First field of [Open_session]; rejects non-compo peers early. *)

val version : int
(** Protocol version this library speaks (2: optional trailing
    trace-context on requests, [Slowlog] opcode).  The server accepts
    any client version in [{!min_version}..{!version}] and answers the
    handshake with its own version, so a client knows at [Ok_session]
    time whether trace contexts may be attached. *)

val min_version : int
(** Oldest client version the server still accepts (1).  A v1 session
    simply never carries trace contexts — the trailing field is
    optional at the decoder, not negotiated per frame. *)

val default_max_frame : int
(** Upper bound on accepted frame bodies (16 MiB): a length prefix
    beyond it is treated as a protocol error, not an allocation. *)

type stats_format = Fmt_table | Fmt_json | Fmt_openmetrics | Fmt_line

type trace_ctx = { trace_id : string; sampled : bool }
(** Wire-level trace context: a client-generated id plus a sampling
    flag, carried as an optional trailing field on any request.  The
    field is self-describing at the decoder — a frame that ends at the
    payload simply has no context — so v1 clients interoperate without
    per-session decode state. *)

type request =
  | Open_session of { magic : string; version : int; user : string }
  | Ping
  | Begin
  | Commit
  | Abort
  | Get_attr of { obj : Surrogate.t; attr : string }
  | Set_attr of { obj : Surrogate.t; attr : string; value : Value.t }
  | Select of { cls : string; where : Expr.t option; jobs : int option }
  | Explain of { cls : string; where : Expr.t option }
  | Stats of stats_format
  | Slowlog
      (** Fetch the server's slow-query capture ring as a text report
          (v2). *)
  | Close_session

type response =
  | Ok_unit
  | Ok_session of { session : int; server_version : int }
  | Ok_value of Value.t
  | Ok_rows of Surrogate.t list
  | Ok_text of string
  | App_error of string
      (** The operation failed but the session is fine (lock conflict,
          unknown attribute, ...). *)
  | Protocol_error of string
      (** The conversation itself is broken; the server closes the
          connection after sending this. *)

val request_op_name : request -> string
(** Stable lowercase opcode name, used for the per-opcode
    [net.requests.*] metric families. *)

(** {1 Body codecs} *)

val encode_request : ?trace:trace_ctx -> id:int -> request -> string
(** Without [?trace] the encoded bytes are identical to a v1 frame, so
    a v2 client that never samples is indistinguishable from v1. *)

val decode_request : string -> (int * request * trace_ctx option, string) result
val encode_response : id:int -> response -> string
val decode_response : string -> (int * response, string) result

(** {1 Frame transport} *)

val write_frame : Unix.file_descr -> string -> unit
(** Length prefix + body, written fully.  Raises [Unix.Unix_error] on a
    broken peer. *)

type read_error =
  [ `Eof  (** peer closed at a frame boundary *)
  | `Timeout  (** receive timeout with no prefix byte read (idle tick) *)
  | `Frame of string  (** oversized, truncated, or mid-frame stall *) ]

val read_frame :
  ?max_frame:int -> ?frame_deadline:float -> Unix.file_descr ->
  (string, read_error) result
(** Read one frame.  With [SO_RCVTIMEO] set on the socket, a timeout
    before the first prefix byte surfaces as [`Timeout] so callers can
    poll idle/shutdown conditions; once a frame has started, reads are
    retried until [frame_deadline] seconds have passed (default 10),
    after which the stalled frame is a [`Frame] error. *)
