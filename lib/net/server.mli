(** Sessioned network service over a Unix-domain socket.

    One connection is one session; a session's [Begin] maps onto one
    design transaction over the store's S/X/IS/IX lock manager, so two
    designers connected to the same server conflict (and resolve) exactly
    as two in-process transactions do.

    Concurrency model: a multi-domain accept loop hands each connection
    to a dedicated handler thread that does socket I/O only; every
    kernel entry (reads, writes, selects, transaction control) is
    serialised through one process-wide gate mutex.  The store's write
    latch is reentrant {e per domain}, and systhreads share their
    domain's id, so unguarded concurrent kernel calls from sibling
    threads would alias each other's latch ownership — the gate is the
    correctness boundary, and intra-query parallelism still happens
    inside it via [select ?jobs] domain fan-out.  Lock conflicts do not
    block (the manager fails conflicting acquisitions immediately), so a
    session never holds the gate waiting on another session.

    Shutdown ({!stop}) unbinds the listen socket, lets sessions with an
    open transaction keep working until [drain_deadline], force-aborts
    the stragglers, and disconnects everyone.  Sessions without an open
    transaction are closed at their next idle tick or completed request.

    Instrumented under [net.*]: connections (total/active/idle-closed),
    sessions, requests (total and per opcode), bytes in/out, request
    latency histogram, protocol and application errors, forced aborts,
    and drain time.  The registry is only written when metrics are
    enabled; the server does not flip the global switch itself.

    The gate profiles itself under [server.gate.*]: wait-time and
    hold-time histograms (total and per opcode) plus a queue-depth
    gauge — the contention evidence the sharded-gate follow-up will be
    judged against.  A request whose wire frame carried a sampled trace
    context has the client's trace id threaded through the gate into
    kernel spans and provenance records, so one designer operation is
    reconstructable end to end from the trace ring.  Requests slower
    than {!Compo_obs.Trace.slow_threshold} ([COMPO_SLOW_MS]) get their
    [Query.explain] plan captured into a bounded ring served by the
    [Slowlog] opcode, and connection/transaction lifecycle events feed
    the {!Compo_obs.Flightrec} ring. *)

open Compo_core

type config = {
  socket_path : string;
  accept_domains : int;  (** parallel accept loops (default 2) *)
  idle_timeout : float;  (** seconds before an idle session is dropped *)
  read_timeout : float;  (** budget for finishing a started frame *)
  drain_deadline : float;  (** grace for open transactions on [stop] *)
  max_frame : int;
  backlog : int;
}

val default_config : socket_path:string -> config
(** 2 accept domains, 300 s idle timeout, 10 s read timeout, 5 s drain
    deadline, {!Protocol.default_max_frame}, backlog 128. *)

type t

val start : config -> Database.t -> t
(** Bind, listen, and spawn the accept domains.  Replaces a stale socket
    file at [socket_path].  Raises [Unix.Unix_error] when the path is
    unbindable.  Sets [SIGPIPE] to ignore (non-Windows) so a peer hanging
    up mid-response surfaces as [EPIPE] instead of killing the host. *)

val request_stop : t -> unit
(** Flag the server to stop; safe from a signal handler.  The drain
    itself runs in {!stop}. *)

val stop_requested : t -> bool

val stop : t -> unit
(** Graceful shutdown: join the acceptors, close the listen socket,
    drain sessions (see above), and record [net.shutdown.drain.seconds].
    Idempotent. *)

val active_connections : t -> int
val drain_seconds : t -> float
(** Wall time the last {!stop} spent draining; 0 before. *)

val forced_aborts : t -> int
(** Transactions the last {!stop} had to abort past the deadline. *)

(** {1 Slow-query capture} *)

type slow_entry = {
  sq_ts : float;  (** capture time *)
  sq_op : string;  (** opcode name *)
  sq_seconds : float;  (** observed request duration *)
  sq_trace : string option;  (** wire trace id, when the frame had one *)
  sq_plan : string;  (** [Query.explain] report (select/explain) *)
}

val slowlog_entries : t -> slow_entry list
(** Captured slow requests, newest first (bounded at 64). *)
