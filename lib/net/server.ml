open Compo_core

(* [Compo_core.Domain] (value domains) shadows the runtime's domains *)
module Sys_domain = Stdlib.Domain
module Metrics = Compo_obs.Metrics
module Trace = Compo_obs.Trace
module Provenance = Compo_obs.Provenance
module Flightrec = Compo_obs.Flightrec
module Txn = Compo_txn.Transaction
module P = Protocol

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)

let m_conns = Metrics.counter "net.connections"
let g_active = Metrics.gauge "net.connections.active"
let m_idle_closed = Metrics.counter "net.connections.idle_closed"
let m_sessions = Metrics.counter "net.sessions"
let m_requests = Metrics.counter "net.requests"
let m_bytes_in = Metrics.counter "net.bytes.in"
let m_bytes_out = Metrics.counter "net.bytes.out"
let m_proto_errors = Metrics.counter "net.protocol.errors"
let m_app_errors = Metrics.counter "net.app.errors"
let m_forced_aborts = Metrics.counter "net.txn.forced_aborts"
let h_request = Metrics.histogram "net.request.seconds"
let g_drain = Metrics.gauge "net.shutdown.drain.seconds"

(* gate-contention profiler: every kernel entry serialises on the gate
   mutex (see .mli), so its wait histogram *is* the server's scalability
   story — the sharded-gate follow-up is judged against these numbers *)
let h_gate_wait = Metrics.histogram "server.gate.wait_seconds"
let h_gate_hold = Metrics.histogram "server.gate.hold_seconds"
let g_gate_queue = Metrics.gauge "server.gate.queue_depth"
let m_slow_captured = Metrics.counter "server.slowlog.captured"

let opcode_names =
  [
    "open_session"; "ping"; "begin"; "commit"; "abort"; "get_attr";
    "set_attr"; "select"; "explain"; "stats"; "slowlog"; "close_session";
  ]

(* one counter per opcode, created eagerly so the families are visible
   (at zero) in any snapshot that includes this module *)
let op_counters =
  List.map
    (fun name -> (name, Metrics.counter ("net.requests." ^ name)))
    opcode_names

let op_counter req = List.assoc (P.request_op_name req) op_counters

(* per-opcode gate breakdown, eager for the same snapshot-visibility
   reason; opcodes that never take the gate (ping, stats) stay at zero *)
let gate_hists =
  List.map
    (fun name ->
      ( name,
        ( Metrics.histogram ("server.gate.wait_seconds." ^ name),
          Metrics.histogram ("server.gate.hold_seconds." ^ name) ) ))
    opcode_names

(* ------------------------------------------------------------------ *)

type config = {
  socket_path : string;
  accept_domains : int;
  idle_timeout : float;
  read_timeout : float;
  drain_deadline : float;
  max_frame : int;
  backlog : int;
}

let default_config ~socket_path =
  {
    socket_path;
    accept_domains = 2;
    idle_timeout = 300.;
    read_timeout = 10.;
    drain_deadline = 5.;
    max_frame = P.default_max_frame;
    backlog = 128;
  }

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable user : string;
  mutable opened : bool;
  mutable txn : Txn.t option;  (* mutated under the gate only *)
  mutable last_active : float;
}

(* One captured slow request.  [sq_plan] is the [Query.explain] report
   for select/explain opcodes, an opcode summary otherwise. *)
type slow_entry = {
  sq_ts : float;
  sq_op : string;
  sq_seconds : float;
  sq_trace : string option;
  sq_plan : string;
}

let slowlog_capacity = 64

type t = {
  cfg : config;
  db : Database.t;
  mgr : Txn.manager;
  gate : Mutex.t;  (* serialises every kernel entry (see .mli) *)
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  sm : Mutex.t;  (* guards [sessions], [live], [next_sid] *)
  sessions : (int, session) Hashtbl.t;
  mutable live : int;
  mutable next_sid : int;
  mutable acceptors : unit Sys_domain.t list;
  acc_live : int Atomic.t;  (* acceptor loops still polling the listen fd *)
  mutable drained : bool;
  mutable drain_time : float;
  mutable forced : int;
  slow_mu : Mutex.t;  (* guards [slowlog] *)
  mutable slowlog : slow_entry list;  (* newest first, bounded *)
}

(* Every kernel entry passes here.  Besides serialising, the gate now
   profiles itself — wait (queueing on the mutex) and hold (kernel time)
   into the [server.gate.*] families plus a per-opcode breakdown — and
   owns the wire trace context: the global trace slot is set only while
   the gate is held, which is what makes the single-writer contract in
   {!Trace.set_current_trace} true. *)
let with_gate ?op ?trace t f =
  if not (Metrics.enabled ()) then begin
    Mutex.lock t.gate;
    Trace.set_current_trace trace;
    Fun.protect
      ~finally:(fun () ->
        Trace.set_current_trace None;
        Mutex.unlock t.gate)
      f
  end
  else begin
    let t0 = Unix.gettimeofday () in
    Metrics.add_gauge g_gate_queue 1.;
    Mutex.lock t.gate;
    let t1 = Unix.gettimeofday () in
    Metrics.add_gauge g_gate_queue (-1.);
    let wait = t1 -. t0 in
    Metrics.observe h_gate_wait wait;
    let per_op = Option.bind op (fun name -> List.assoc_opt name gate_hists) in
    (match per_op with
    | Some (w, _) -> Metrics.observe w wait
    | None -> ());
    Trace.set_current_trace trace;
    Fun.protect
      ~finally:(fun () ->
        let hold = Unix.gettimeofday () -. t1 in
        Metrics.observe h_gate_hold hold;
        (match per_op with
        | Some (_, h) -> Metrics.observe h hold
        | None -> ());
        (* ring note while the slot is still set, so the gate span of a
           sampled request carries its trace id like the kernel spans *)
        Trace.note
          ~attrs:
            (("wait_us", Printf.sprintf "%.0f" (wait *. 1e6))
            ::
            (match op with Some o -> [ ("op", o) ] | None -> []))
          "server.gate" ~start:t1 ~duration:hold;
        Trace.set_current_trace None;
        Mutex.unlock t.gate)
      f
  end

let request_stop t = Atomic.set t.stopping true
let stop_requested t = Atomic.get t.stopping

let active_connections t =
  Mutex.lock t.sm;
  let n = t.live in
  Mutex.unlock t.sm;
  n

let drain_seconds t = t.drain_time
let forced_aborts t = t.forced

(* ------------------------------------------------------------------ *)
(* Request handling (kernel entries run under the gate)                *)

let app_error e =
  Metrics.incr m_app_errors;
  (* lock conflicts and the like are exactly the events a post-mortem
     wants in sequence with the txn boundaries around them *)
  Flightrec.record ~attrs:[ ("error", Errors.to_string e) ] "app.error";
  P.App_error (Errors.to_string e)

let abort_open_txn t s =
  with_gate t (fun () ->
      match s.txn with
      | None -> ()
      | Some txn ->
          s.txn <- None;
          ignore (Txn.abort t.mgr txn))

let render_slowlog entries =
  let thr = Trace.slow_threshold () in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "slow-query log: %d captured, threshold %s\n"
       (List.length entries)
       (if thr = infinity then "disabled (set COMPO_SLOW_MS)"
        else Printf.sprintf "%.1f ms" (thr *. 1000.)));
  let now = Unix.gettimeofday () in
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "[%d] %s: %.1f ms, %.1f s ago%s\n" (i + 1) e.sq_op
           (e.sq_seconds *. 1000.) (now -. e.sq_ts)
           (match e.sq_trace with
           | None -> ""
           | Some id -> " trace=" ^ id));
      List.iter
        (fun line -> Buffer.add_string b ("    " ^ line ^ "\n"))
        (String.split_on_char '\n' e.sq_plan))
    entries;
  Buffer.contents b

let handle t s (trace : P.trace_ctx option) (req : P.request) : P.response =
  (* the trace id is threaded into the gate (and from there into kernel
     spans and provenance) only when the client marked it sampled *)
  let trace_id =
    match trace with
    | Some tc when tc.P.sampled -> Some tc.P.trace_id
    | _ -> None
  in
  let gate f = with_gate ~op:(P.request_op_name req) ?trace:trace_id t f in
  match req with
  | P.Open_session { magic; version; user } ->
      if s.opened then P.Protocol_error "session already open"
      else if not (String.equal magic P.magic) then
        P.Protocol_error "bad magic: not a compo client"
      else if version < P.min_version || version > P.version then
        P.Protocol_error
          (Printf.sprintf
             "protocol version mismatch: client %d, server speaks %d-%d"
             version P.min_version P.version)
      else begin
        s.opened <- true;
        s.user <- user;
        Metrics.incr m_sessions;
        Flightrec.record
          ~attrs:
            [
              ("sid", string_of_int s.sid); ("user", user);
              ("client_version", string_of_int version);
            ]
          "session.open";
        (* the server answers with its own version: a client that sees
           server_version >= 2 knows trace contexts will be understood *)
        P.Ok_session { session = s.sid; server_version = P.version }
      end
  | _ when not s.opened ->
      P.Protocol_error "expected open_session as the first request"
  | P.Ping -> P.Ok_unit
  | P.Close_session ->
      abort_open_txn t s;
      P.Ok_unit
  | P.Begin -> (
      match s.txn with
      | Some _ -> P.App_error "transaction already open on this session"
      | None ->
          gate (fun () ->
              s.txn <- Some (Txn.begin_txn t.mgr ~user:s.user);
              Flightrec.record
                ~attrs:[ ("sid", string_of_int s.sid) ]
                "txn.begin";
              P.Ok_unit))
  | P.Commit -> (
      match s.txn with
      | None -> P.App_error "no open transaction"
      | Some txn ->
          gate (fun () ->
              s.txn <- None;
              match Txn.commit t.mgr txn with
              | Ok () ->
                  Flightrec.record
                    ~attrs:[ ("sid", string_of_int s.sid) ]
                    "txn.commit";
                  P.Ok_unit
              | Error e -> app_error e))
  | P.Abort -> (
      match s.txn with
      | None -> P.App_error "no open transaction"
      | Some txn ->
          gate (fun () ->
              s.txn <- None;
              match Txn.abort t.mgr txn with
              | Ok () ->
                  Flightrec.record
                    ~attrs:[ ("sid", string_of_int s.sid) ]
                    "txn.abort";
                  P.Ok_unit
              | Error e -> app_error e))
  | P.Get_attr { obj; attr } ->
      gate (fun () ->
          let result =
            match s.txn with
            | Some txn -> Txn.get_attr t.mgr txn obj attr
            | None -> Database.get_attr t.db obj attr
          in
          match result with Ok v -> P.Ok_value v | Error e -> app_error e)
  | P.Set_attr { obj; attr; value } ->
      gate (fun () ->
          let result =
            match s.txn with
            | Some txn -> Txn.set_attr t.mgr txn obj attr value
            | None -> Database.set_attr t.db obj attr value
          in
          match result with Ok () -> P.Ok_unit | Error e -> app_error e)
  | P.Select { cls; where; jobs } -> (
      match jobs with
      | Some j when j < 1 ->
          P.App_error (Printf.sprintf "jobs must be a positive integer (got %d)" j)
      | _ ->
          gate (fun () ->
              match Database.select t.db ~cls ?where ?jobs () with
              | Ok rows -> P.Ok_rows rows
              | Error e -> app_error e))
  | P.Explain { cls; where } ->
      gate (fun () ->
          match Database.explain_select t.db ~cls ?where () with
          | Ok (rows, ex) ->
              P.Ok_text
                (Format.asprintf "%a@.%d object(s)"
                   (Query.pp_explain ~timings:false)
                   ex (List.length rows))
          | Error e -> app_error e)
  | P.Stats fmt ->
      P.Ok_text
        (match fmt with
        | P.Fmt_table -> Metrics.dump ()
        | P.Fmt_json -> Metrics.to_json ()
        | P.Fmt_openmetrics -> Metrics.to_openmetrics ()
        | P.Fmt_line -> Metrics.to_line_protocol ())
  | P.Slowlog ->
      Mutex.lock t.slow_mu;
      let entries = t.slowlog in
      Mutex.unlock t.slow_mu;
      P.Ok_text (render_slowlog entries)

(* A request that crossed the slow threshold gets its plan captured.
   For select/explain the plan is re-derived with [explain_select] —
   explain is cheap next to a query that was already slow, and the
   report (index choice, closure sizes, filter shape) is the whole
   point of the ring.  Other opcodes keep an opcode summary. *)
let capture_slow t (trace : P.trace_ctx option) req ~seconds =
  let plan =
    match req with
    | P.Select { cls; where; _ } | P.Explain { cls; where } -> (
        with_gate ~op:"explain" t (fun () ->
            match Database.explain_select t.db ~cls ?where () with
            | Ok (_, ex) ->
                Format.asprintf "%a" (Query.pp_explain ~timings:false) ex
            | Error e -> "explain failed: " ^ Errors.to_string e))
    | _ -> Printf.sprintf "(no plan for opcode %s)" (P.request_op_name req)
  in
  let entry =
    {
      sq_ts = Unix.gettimeofday ();
      sq_op = P.request_op_name req;
      sq_seconds = seconds;
      sq_trace = Option.map (fun tc -> tc.P.trace_id) trace;
      sq_plan = plan;
    }
  in
  Metrics.incr m_slow_captured;
  Flightrec.record
    ~attrs:
      [
        ("op", entry.sq_op);
        ("ms", Printf.sprintf "%.1f" (seconds *. 1000.));
      ]
    "slowlog.capture";
  Mutex.lock t.slow_mu;
  let kept = List.filteri (fun i _ -> i < slowlog_capacity - 1) t.slowlog in
  t.slowlog <- entry :: kept;
  Mutex.unlock t.slow_mu

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)

(* deregister and close under [sm] in one step: the forced-shutdown path
   in [stop] checks membership and calls [shutdown] under the same lock,
   so it can never touch an fd this function has already closed (and the
   kernel may have reissued to an embedded client) *)
let close_session t s =
  abort_open_txn t s;
  Mutex.lock t.sm;
  Hashtbl.remove t.sessions s.sid;
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  t.live <- t.live - 1;
  Metrics.set_gauge g_active (float_of_int t.live);
  Mutex.unlock t.sm;
  Flightrec.record ~attrs:[ ("sid", string_of_int s.sid) ] "conn.close"

let send_protocol_error fd msg =
  Metrics.incr m_proto_errors;
  Flightrec.record ~attrs:[ ("error", msg) ] "proto.error";
  try P.write_frame fd (P.encode_response ~id:0 (P.Protocol_error msg))
  with Unix.Unix_error _ -> ()

(* a session may linger past [request_stop] only while a transaction is
   open; everyone else is cut at the next tick or answered request *)
let must_linger t s = Atomic.get t.stopping = false || s.txn <> None

let rec conn_loop t s =
  match
    P.read_frame ~max_frame:t.cfg.max_frame ~frame_deadline:t.cfg.read_timeout
      s.fd
  with
  | Error `Eof -> ()
  | Error `Timeout ->
      if not (must_linger t s) then ()
      else if Unix.gettimeofday () -. s.last_active > t.cfg.idle_timeout then begin
        Metrics.incr m_idle_closed;
        Flightrec.record
          ~attrs:[ ("sid", string_of_int s.sid) ]
          "conn.idle_close"
      end
      else conn_loop t s
  | Error (`Frame msg) -> send_protocol_error s.fd msg
  | Ok body -> (
      s.last_active <- Unix.gettimeofday ();
      Metrics.add m_bytes_in (String.length body + 4);
      match P.decode_request body with
      | Error msg -> send_protocol_error s.fd msg
      | Ok (id, req, trace) ->
          Metrics.incr m_requests;
          Metrics.incr (op_counter req);
          let t0 = Unix.gettimeofday () in
          let resp = handle t s trace req in
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.observe h_request dt;
          (* the server-side span of this request: op + wire trace id,
             linkable to the gate note and kernel spans in the ring *)
          Trace.note
            ~attrs:
              (("op", P.request_op_name req)
              ::
              (match trace with
              | Some tc -> [ ("trace", tc.P.trace_id) ]
              | None -> []))
            "net.server.request" ~start:t0 ~duration:dt;
          if dt >= Trace.slow_threshold () then
            capture_slow t trace req ~seconds:dt;
          let frame = P.encode_response ~id resp in
          let sent =
            try
              P.write_frame s.fd frame;
              true
            with Unix.Unix_error _ -> false
          in
          if sent then begin
            Metrics.add m_bytes_out (String.length frame + 4);
            match (resp, req) with
            | P.Protocol_error _, _ -> Metrics.incr m_proto_errors
            | _, P.Close_session -> ()
            | _ -> if must_linger t s then conn_loop t s
          end)

let register_conn t fd =
  (* the receive timeout is the idle tick: [read_frame] surfaces it as
     [`Timeout] so the handler can check idle/shutdown conditions *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
  Metrics.incr m_conns;
  Mutex.lock t.sm;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s =
    {
      sid;
      fd;
      user = "?";
      opened = false;
      txn = None;
      last_active = Unix.gettimeofday ();
    }
  in
  Hashtbl.replace t.sessions sid s;
  t.live <- t.live + 1;
  Metrics.set_gauge g_active (float_of_int t.live);
  Mutex.unlock t.sm;
  Flightrec.record ~attrs:[ ("sid", string_of_int sid) ] "conn.open";
  ignore
    (Thread.create
       (fun () ->
         Fun.protect
           ~finally:(fun () -> close_session t s)
           (fun () -> try conn_loop t s with _ -> ()))
       ())

let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    (* the listen fd is nonblocking and shared by all accept domains:
       select wakes possibly-many, accept hands the connection to one *)
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> register_conn t fd
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR), _, _)
          ->
            ())
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
    accept_loop t
  end

(* a peer that hangs up mid-response would otherwise kill the host
   process with SIGPIPE; writes report EPIPE instead once it is ignored *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let start cfg db =
  ignore_sigpipe ();
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd cfg.backlog;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      db;
      mgr = Txn.create_manager (Database.store db);
      gate = Mutex.create ();
      listen_fd;
      stopping = Atomic.make false;
      sm = Mutex.create ();
      sessions = Hashtbl.create 64;
      live = 0;
      next_sid = 1;
      acceptors = [];
      acc_live = Atomic.make 0;
      drained = false;
      drain_time = 0.;
      forced = 0;
      slow_mu = Mutex.create ();
      slowlog = [];
    }
  in
  Flightrec.record
    ~attrs:
      [
        ("socket", cfg.socket_path);
        ("accept_domains", string_of_int (max 1 cfg.accept_domains));
      ]
    "server.start";
  Atomic.set t.acc_live (max 1 cfg.accept_domains);
  t.acceptors <-
    List.init (max 1 cfg.accept_domains) (fun _ ->
        Sys_domain.spawn (fun () ->
            (* handler threads share this domain's DLS: kernel entries
               they make are serialised by the gate, so provenance may
               record from here despite not being the main domain *)
            Provenance.permit_domain ();
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.acc_live)
              (fun () -> accept_loop t)));
  t

let stop t =
  if not t.drained then begin
    t.drained <- true;
    let t0 = Unix.gettimeofday () in
    request_stop t;
    Flightrec.record
      ~attrs:[ ("live", string_of_int (active_connections t)) ]
      "server.drain.begin";
    (* handler threads live in the acceptor domains (Thread.create runs
       in the spawning domain), and a domain only terminates once all its
       threads do — so joining the acceptor *domains* before the drain
       would deadlock against any session lingering with an open
       transaction.  Wait for the accept loops to wind down first, close
       the listen socket, drain, and join the domains at the very end. *)
    while Atomic.get t.acc_live > 0 do
      Thread.delay 0.01
    done;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    (* phase 1: sessions drain themselves — handlers close as soon as no
       transaction is open, commits/aborts still go through *)
    let deadline = t0 +. t.cfg.drain_deadline in
    while active_connections t > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.02
    done;
    (* phase 2: force-abort the stragglers and cut their connections;
       shutdown (not close) so the handler thread owning the fd sees EOF *)
    if active_connections t > 0 then begin
      Mutex.lock t.sm;
      let stragglers = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
      Mutex.unlock t.sm;
      Flightrec.record
        ~attrs:[ ("stragglers", string_of_int (List.length stragglers)) ]
        "server.drain.force";
      List.iter
        (fun s ->
          with_gate t (fun () ->
              match s.txn with
              | None -> ()
              | Some txn ->
                  s.txn <- None;
                  ignore (Txn.abort t.mgr txn);
                  t.forced <- t.forced + 1;
                  Metrics.incr m_forced_aborts;
                  Flightrec.record
                    ~attrs:[ ("sid", string_of_int s.sid) ]
                    "txn.forced_abort");
          Mutex.lock t.sm;
          if Hashtbl.mem t.sessions s.sid then (
            try Unix.shutdown s.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ());
          Mutex.unlock t.sm)
        stragglers;
      let hard = Unix.gettimeofday () +. 2.0 in
      while active_connections t > 0 && Unix.gettimeofday () < hard do
        Thread.delay 0.02
      done
    end;
    List.iter Sys_domain.join t.acceptors;
    t.acceptors <- [];
    t.drain_time <- Unix.gettimeofday () -. t0;
    Metrics.set_gauge g_drain t.drain_time;
    Flightrec.record
      ~attrs:
        [
          ("seconds", Printf.sprintf "%.3f" t.drain_time);
          ("forced", string_of_int t.forced);
        ]
      "server.drain.done"
  end

let slowlog_entries t =
  Mutex.lock t.slow_mu;
  let entries = t.slowlog in
  Mutex.unlock t.slow_mu;
  entries
