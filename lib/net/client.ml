(* types in the interface come from Compo_core; the body is transport only *)
module P = Protocol

type error = Remote of string | Protocol of string | Io of string

let error_to_string = function
  | Remote msg -> "remote: " ^ msg
  | Protocol msg -> "protocol: " ^ msg
  | Io msg -> "io: " ^ msg

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  trace_sample : float;
  rng : Random.State.t;
  mutable next_id : int;
  mutable sid : int;
  mutable server_version : int;
  mutable last_trace : string option;
  mutable closed : bool;
}

let session_id c = c.sid
let server_version c = c.server_version
let last_trace c = c.last_trace

(* strict, per the front-end convention (Pool.parse_jobs): a garbage
   sampling rate dies with one line at the entry points, never a silent
   fallback *)
let parse_trace_sample raw =
  let raw = String.trim raw in
  match float_of_string_opt raw with
  | Some f when f >= 0. && f <= 1. -> Ok f
  | Some _ | None ->
      Error (Printf.sprintf "must be a number in [0,1] (got '%s')" raw)

let trace_sample_from_env ?(getenv = Sys.getenv_opt) () =
  match getenv "COMPO_TRACE_SAMPLE" with
  | None -> Ok 0.
  | Some raw -> (
      match parse_trace_sample raw with
      | Ok _ as ok -> ok
      | Error msg -> Error ("COMPO_TRACE_SAMPLE " ^ msg))

let gen_trace_id rng =
  Printf.sprintf "%016Lx" (Random.State.int64 rng Int64.max_int)

let send c req =
  let id = c.next_id in
  c.next_id <- id + 1;
  (* only stamp when the handshake proved the server speaks v2; an
     unsampled request omits the field entirely, so its frame bytes are
     identical to v1 *)
  let trace =
    if
      c.trace_sample > 0.
      && c.server_version >= 2
      && Random.State.float c.rng 1. < c.trace_sample
    then begin
      let trace_id = gen_trace_id c.rng in
      c.last_trace <- Some trace_id;
      Some { P.trace_id; sampled = true }
    end
    else None
  in
  match P.write_frame c.fd (P.encode_request ?trace ~id req) with
  | () -> Ok id
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

(* the client socket has no receive timeout, so [`Timeout] cannot occur
   here; a server that dies mid-response surfaces as [`Eof]/[`Frame] *)
let recv c =
  match P.read_frame ~max_frame:c.max_frame ~frame_deadline:30. c.fd with
  | Error `Eof -> Error (Io "connection closed by server")
  | Error `Timeout -> Error (Io "receive timeout")
  | Error (`Frame msg) -> Error (Protocol msg)
  | Ok body -> (
      match P.decode_response body with
      | Error msg -> Error (Protocol msg)
      | Ok (id, resp) -> Ok (id, resp))

let ( let* ) = Result.bind

(* one round trip, with the id echo checked *)
let rpc c req =
  let* id = send c req in
  let* rid, resp = recv c in
  if rid <> id then
    Error (Protocol (Printf.sprintf "response id %d for request %d" rid id))
  else Ok resp

let unexpected resp =
  match resp with
  | P.App_error msg -> Error (Remote msg)
  | P.Protocol_error msg -> Error (Protocol msg)
  | _ -> Error (Protocol "unexpected response payload")

let expect_unit c req =
  let* resp = rpc c req in
  match resp with P.Ok_unit -> Ok () | other -> unexpected other

let connect ?(user = "client") ?(max_frame = P.default_max_frame)
    ?(trace_sample = 0.) path =
  (* a server that hangs up (idle timeout, shutdown) must surface as an
     Io error on the next call, not kill the host process with SIGPIPE *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Io (Unix.error_message e))
      | () -> (
          let c =
            {
              fd;
              max_frame;
              trace_sample;
              rng = Random.State.make_self_init ();
              next_id = 1;
              sid = 0;
              server_version = 0;  (* unknown until the handshake answers *)
              last_trace = None;
              closed = false;
            }
          in
          match
            rpc c (P.Open_session { magic = P.magic; version = P.version; user })
          with
          | Ok (P.Ok_session { session; server_version }) ->
              c.sid <- session;
              c.server_version <- server_version;
              Ok c
          | Ok other ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Result.map (fun _ -> c) (unexpected other)
          | Error e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error e))

let close c =
  if not c.closed then begin
    c.closed <- true;
    ignore (expect_unit c P.Close_session);
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let ping c = expect_unit c P.Ping
let begin_txn c = expect_unit c P.Begin
let commit c = expect_unit c P.Commit
let abort c = expect_unit c P.Abort

let get_attr c obj attr =
  let* resp = rpc c (P.Get_attr { obj; attr }) in
  match resp with P.Ok_value v -> Ok v | other -> unexpected other

let set_attr c obj attr value = expect_unit c (P.Set_attr { obj; attr; value })

let select c ~cls ?jobs ?where () =
  let* resp = rpc c (P.Select { cls; where; jobs }) in
  match resp with P.Ok_rows rows -> Ok rows | other -> unexpected other

let explain c ~cls ?where () =
  let* resp = rpc c (P.Explain { cls; where }) in
  match resp with P.Ok_text s -> Ok s | other -> unexpected other

let stats c fmt =
  let* resp = rpc c (P.Stats fmt) in
  match resp with P.Ok_text s -> Ok s | other -> unexpected other

let slowlog c =
  let* resp = rpc c P.Slowlog in
  match resp with P.Ok_text s -> Ok s | other -> unexpected other
