open Compo_core
module Codec = Compo_storage.Codec

let magic = "COMPONET"
let version = 2
let min_version = 1
let default_max_frame = 16 * 1024 * 1024

type stats_format = Fmt_table | Fmt_json | Fmt_openmetrics | Fmt_line

(* Wire-level trace context (v2): a client-generated id plus a sampling
   flag, appended to a request as an optional trailing field.  A v1
   frame simply ends where the payload ends, so the decoder treats
   "nothing after the payload" as "no context" — that is what keeps old
   clients working against a v2 server without per-session decode
   state. *)
type trace_ctx = { trace_id : string; sampled : bool }

type request =
  | Open_session of { magic : string; version : int; user : string }
  | Ping
  | Begin
  | Commit
  | Abort
  | Get_attr of { obj : Surrogate.t; attr : string }
  | Set_attr of { obj : Surrogate.t; attr : string; value : Value.t }
  | Select of { cls : string; where : Expr.t option; jobs : int option }
  | Explain of { cls : string; where : Expr.t option }
  | Stats of stats_format
  | Slowlog
  | Close_session

type response =
  | Ok_unit
  | Ok_session of { session : int; server_version : int }
  | Ok_value of Value.t
  | Ok_rows of Surrogate.t list
  | Ok_text of string
  | App_error of string
  | Protocol_error of string

let request_op_name = function
  | Open_session _ -> "open_session"
  | Ping -> "ping"
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | Get_attr _ -> "get_attr"
  | Set_attr _ -> "set_attr"
  | Select _ -> "select"
  | Explain _ -> "explain"
  | Stats _ -> "stats"
  | Slowlog -> "slowlog"
  | Close_session -> "close_session"

(* ------------------------------------------------------------------ *)
(* Body codecs                                                         *)

let stats_format_byte = function
  | Fmt_table -> 0
  | Fmt_json -> 1
  | Fmt_openmetrics -> 2
  | Fmt_line -> 3

let stats_format_of_byte = function
  | 0 -> Ok Fmt_table
  | 1 -> Ok Fmt_json
  | 2 -> Ok Fmt_openmetrics
  | 3 -> Ok Fmt_line
  | b -> Error (Printf.sprintf "unknown stats format %d" b)

let surrogate e s = Codec.Enc.int e (Surrogate.to_int s)

let encode_request ?trace ~id req =
  let e = Codec.Enc.create () in
  Codec.Enc.int e id;
  (match req with
  | Open_session { magic; version; user } ->
      Codec.Enc.byte e 1;
      Codec.Enc.string e magic;
      Codec.Enc.int e version;
      Codec.Enc.string e user
  | Ping -> Codec.Enc.byte e 2
  | Begin -> Codec.Enc.byte e 3
  | Commit -> Codec.Enc.byte e 4
  | Abort -> Codec.Enc.byte e 5
  | Get_attr { obj; attr } ->
      Codec.Enc.byte e 6;
      surrogate e obj;
      Codec.Enc.string e attr
  | Set_attr { obj; attr; value } ->
      Codec.Enc.byte e 7;
      surrogate e obj;
      Codec.Enc.string e attr;
      Codec.encode_value e value
  | Select { cls; where; jobs } ->
      Codec.Enc.byte e 8;
      Codec.Enc.string e cls;
      Codec.Enc.option e (Codec.encode_expr e) where;
      Codec.Enc.option e (Codec.Enc.int e) jobs
  | Explain { cls; where } ->
      Codec.Enc.byte e 9;
      Codec.Enc.string e cls;
      Codec.Enc.option e (Codec.encode_expr e) where
  | Stats fmt ->
      Codec.Enc.byte e 10;
      Codec.Enc.byte e (stats_format_byte fmt)
  | Close_session -> Codec.Enc.byte e 11
  | Slowlog -> Codec.Enc.byte e 12);
  (* the trace context rides after the payload; omitting it entirely
     (rather than encoding None) keeps the frame bytes identical to v1,
     so a v2 client that never samples is indistinguishable from v1 *)
  (match trace with
  | None -> ()
  | Some tc ->
      Codec.Enc.option e
        (fun (tc : trace_ctx) ->
          Codec.Enc.string e tc.trace_id;
          Codec.Enc.byte e (if tc.sampled then 1 else 0))
        (Some tc));
  Codec.Enc.contents e

let encode_response ~id resp =
  let e = Codec.Enc.create () in
  Codec.Enc.int e id;
  (match resp with
  | Ok_unit -> Codec.Enc.byte e 0
  | Ok_session { session; server_version } ->
      Codec.Enc.byte e 1;
      Codec.Enc.int e session;
      Codec.Enc.int e server_version
  | Ok_value v ->
      Codec.Enc.byte e 2;
      Codec.encode_value e v
  | Ok_rows rows ->
      Codec.Enc.byte e 3;
      Codec.Enc.list e (surrogate e) rows
  | Ok_text s ->
      Codec.Enc.byte e 4;
      Codec.Enc.string e s
  | App_error msg ->
      Codec.Enc.byte e 5;
      Codec.Enc.string e msg
  | Protocol_error msg ->
      Codec.Enc.byte e 6;
      Codec.Enc.string e msg);
  Codec.Enc.contents e

(* Decoders run over untrusted bytes: every [Codec.Dec] failure maps to
   a one-line protocol error, and a decoded body must consume the whole
   frame (trailing bytes mean framing drift). *)

let ( let* ) r f =
  match r with Ok v -> f v | Error e -> Error (Errors.to_string e)

let finish d v =
  if Codec.Dec.at_end d then Ok v else Error "trailing bytes after body"

let decode_request body =
  let d = Codec.Dec.of_string body in
  let* id = Codec.Dec.int d in
  let* op = Codec.Dec.byte d in
  let req =
    match op with
    | 1 ->
        let* magic = Codec.Dec.string d in
        let* version = Codec.Dec.int d in
        let* user = Codec.Dec.string d in
        Ok (Open_session { magic; version; user })
    | 2 -> Ok Ping
    | 3 -> Ok Begin
    | 4 -> Ok Commit
    | 5 -> Ok Abort
    | 6 ->
        let* obj = Codec.Dec.int d in
        let* attr = Codec.Dec.string d in
        Ok (Get_attr { obj = Surrogate.of_int obj; attr })
    | 7 ->
        let* obj = Codec.Dec.int d in
        let* attr = Codec.Dec.string d in
        let* value = Codec.decode_value d in
        Ok (Set_attr { obj = Surrogate.of_int obj; attr; value })
    | 8 ->
        let* cls = Codec.Dec.string d in
        let* where = Codec.Dec.option d (fun () -> Codec.decode_expr d) in
        let* jobs = Codec.Dec.option d (fun () -> Codec.Dec.int d) in
        Ok (Select { cls; where; jobs })
    | 9 ->
        let* cls = Codec.Dec.string d in
        let* where = Codec.Dec.option d (fun () -> Codec.decode_expr d) in
        Ok (Explain { cls; where })
    | 10 ->
        let* b = Codec.Dec.byte d in
        Result.map (fun fmt -> Stats fmt) (stats_format_of_byte b)
    | 11 -> Ok Close_session
    | 12 -> Ok Slowlog
    | op -> Error (Printf.sprintf "unknown opcode %d" op)
  in
  match req with
  | Ok req -> (
      (* v1 frames end here; v2 frames may carry a trailing trace
         context.  Anything after the context is still framing drift. *)
      if Codec.Dec.at_end d then Ok (id, req, None)
      else
        let* trace =
          Codec.Dec.option d (fun () ->
              match Codec.Dec.string d with
              | Error _ as e -> e
              | Ok trace_id -> (
                  match Codec.Dec.byte d with
                  | Error _ as e -> e
                  | Ok b -> Ok { trace_id; sampled = b <> 0 }))
        in
        finish d (id, req, trace))
  | Error msg -> Error msg

let decode_response body =
  let d = Codec.Dec.of_string body in
  let* id = Codec.Dec.int d in
  let* tag = Codec.Dec.byte d in
  let resp =
    match tag with
    | 0 -> Ok Ok_unit
    | 1 ->
        let* session = Codec.Dec.int d in
        let* server_version = Codec.Dec.int d in
        Ok (Ok_session { session; server_version })
    | 2 ->
        let* v = Codec.decode_value d in
        Ok (Ok_value v)
    | 3 ->
        let* rows = Codec.Dec.list d (fun () -> Codec.Dec.int d) in
        Ok (Ok_rows (List.map Surrogate.of_int rows))
    | 4 ->
        let* s = Codec.Dec.string d in
        Ok (Ok_text s)
    | 5 ->
        let* msg = Codec.Dec.string d in
        Ok (App_error msg)
    | 6 ->
        let* msg = Codec.Dec.string d in
        Ok (Protocol_error msg)
    | tag -> Error (Printf.sprintf "unknown response tag %d" tag)
  in
  match resp with
  | Ok resp -> finish d (id, resp)
  | Error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Frame transport                                                     *)

type read_error = [ `Eof | `Timeout | `Frame of string ]

let write_fully fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

let write_frame fd body =
  let len = String.length body in
  let buf = Bytes.create (4 + len) in
  Bytes.set_uint8 buf 0 (len land 0xff);
  Bytes.set_uint8 buf 1 ((len lsr 8) land 0xff);
  Bytes.set_uint8 buf 2 ((len lsr 16) land 0xff);
  Bytes.set_uint8 buf 3 ((len lsr 24) land 0xff);
  Bytes.blit_string body 0 buf 4 len;
  write_fully fd buf

(* [read_into] fills [buf.(off..off+len)] with retry-until-deadline
   semantics.  [started] says whether this frame already produced bytes:
   a receive timeout before the first byte is an idle tick the caller
   handles; after it, the peer is mid-frame and gets until the deadline. *)
let read_into ~deadline ~started fd buf off len =
  let off = ref off and remaining = ref len and res = ref None in
  while !res = None && !remaining > 0 do
    match Unix.read fd buf !off !remaining with
    | 0 ->
        res :=
          Some
            (if !off = 0 && not started then Error `Eof
             else Error (`Frame "truncated frame: peer closed mid-frame"))
    | n ->
        off := !off + n;
        remaining := !remaining - n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if !off = 0 && not started then res := Some (Error `Timeout)
        else if Unix.gettimeofday () > deadline then
          res := Some (Error (`Frame "read timeout mid-frame"))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        res := Some (Error `Eof)
  done;
  match !res with Some r -> r | None -> Ok ()

let read_frame ?(max_frame = default_max_frame) ?(frame_deadline = 10.) fd =
  let deadline = Unix.gettimeofday () +. frame_deadline in
  let prefix = Bytes.create 4 in
  match read_into ~deadline ~started:false fd prefix 0 4 with
  | Error e -> Error e
  | Ok () ->
      let len =
        Bytes.get_uint8 prefix 0
        lor (Bytes.get_uint8 prefix 1 lsl 8)
        lor (Bytes.get_uint8 prefix 2 lsl 16)
        lor (Bytes.get_uint8 prefix 3 lsl 24)
      in
      if len > max_frame then
        Error (`Frame (Printf.sprintf "frame of %d bytes exceeds limit %d" len max_frame))
      else
        let body = Bytes.create len in
        match read_into ~deadline ~started:true fd body 0 len with
        | Error e -> Error e
        | Ok () -> Ok (Bytes.unsafe_to_string body)
