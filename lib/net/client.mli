(** Blocking client for the compo wire protocol.

    {!connect} performs the [Open_session] handshake; the typed wrappers
    ({!get_attr}, {!select}, ...) each send one request and wait for its
    response.  For pipelining, {!send} and {!recv} are exposed directly:
    queue several requests, then drain the responses — the server
    answers in order and echoes each request's correlation id.

    A client is single-threaded state (correlation counter, socket);
    share one per thread, not one across threads. *)

open Compo_core

type error =
  | Remote of string  (** server-side operation failure; session is fine *)
  | Protocol of string  (** framing/version breakage; connection is dead *)
  | Io of string  (** socket-level failure *)

val error_to_string : error -> string

type t

val connect :
  ?user:string -> ?max_frame:int -> ?trace_sample:float -> string ->
  (t, error) result
(** [connect path] dials the Unix socket at [path] and opens a session.
    Sets [SIGPIPE] to ignore (non-Windows) so a server hangup surfaces
    as an [Io] error on the next call instead of killing the process.

    [trace_sample] (default 0) is the probability that a request is
    stamped with a fresh wire trace context; stamping only happens once
    the handshake showed the server speaks protocol v2, so a sampling
    client still interoperates with a v1 server. *)

val session_id : t -> int

val server_version : t -> int
(** Protocol version the server announced at the handshake. *)

val last_trace : t -> string option
(** Trace id of the most recent sampled request, if any — the handle a
    caller (or test) uses to find its spans server-side. *)

val parse_trace_sample : string -> (float, string) result
(** Strict sampling-rate validation: a float in [0,1], one-line error
    otherwise (the [Pool.parse_jobs] convention). *)

val trace_sample_from_env :
  ?getenv:(string -> string option) -> unit -> (float, string) result
(** [COMPO_TRACE_SAMPLE] via {!parse_trace_sample}; [Ok 0.] when unset.
    Entry points turn the [Error] into a one-line die. *)

val close : t -> unit
(** Best-effort [Close_session] then socket close.  Idempotent. *)

(** {1 Synchronous operations} *)

val ping : t -> (unit, error) result
val begin_txn : t -> (unit, error) result
val commit : t -> (unit, error) result
val abort : t -> (unit, error) result
val get_attr : t -> Surrogate.t -> string -> (Value.t, error) result
val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, error) result

val select :
  t -> cls:string -> ?jobs:int -> ?where:Expr.t -> unit ->
  (Surrogate.t list, error) result

val explain : t -> cls:string -> ?where:Expr.t -> unit -> (string, error) result

val stats : t -> Protocol.stats_format -> (string, error) result
(** The server's metrics registry, rendered server-side. *)

val slowlog : t -> (string, error) result
(** The server's slow-query capture ring, rendered server-side (plans
    included).  Requires a v2 server. *)

(** {1 Pipelining} *)

val send : t -> Protocol.request -> (int, error) result
(** Queue one request; returns its correlation id without waiting. *)

val recv : t -> (int * Protocol.response, error) result
(** Next response in arrival order, with the id it answers. *)
