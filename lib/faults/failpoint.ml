open Compo_core
module Obs = Compo_obs.Metrics

let m_fired = Obs.counter "faults.fired"
let m_armed = Obs.gauge "faults.armed"

type action =
  | Error_result
  | Crash
  | Short_write of int
  | Torn_frame
  | Bit_flip

exception Crashed of string

let action_to_string = function
  | Error_result -> "error"
  | Crash -> "crash"
  | Short_write n -> Printf.sprintf "short:%d" n
  | Torn_frame -> "torn"
  | Bit_flip -> "bitflip"

let action_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Ok Error_result
  | "crash" -> Ok Crash
  | "torn" -> Ok Torn_frame
  | "bitflip" -> Ok Bit_flip
  | other ->
      let short = "short:" in
      let sl = String.length short in
      if String.length other > sl && String.sub other 0 sl = short then
        match int_of_string_opt (String.sub other sl (String.length other - sl)) with
        | Some n when n >= 0 -> Ok (Short_write n)
        | Some _ | None -> Error (Printf.sprintf "bad short-write count in %S" s)
      else
        Error
          (Printf.sprintf
             "unknown failpoint action %S (error|crash|torn|bitflip|short:N)" s)

type armed_state = { mutable countdown : int; act : action }
type site = { s_name : string; mutable s_armed : armed_state option }

let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let armed_count = ref 0

let register name =
  match Hashtbl.find_opt registry name with
  | Some site -> site
  | None ->
      let site = { s_name = name; s_armed = None } in
      Hashtbl.add registry name site;
      site

let name site = site.s_name

let all_sites () =
  List.sort String.compare (Hashtbl.fold (fun n _ acc -> n :: acc) registry [])

let set_armed site st =
  (match (site.s_armed, st) with
  | None, Some _ -> incr armed_count
  | Some _, None -> decr armed_count
  | _ -> ());
  site.s_armed <- st;
  Obs.set_gauge m_armed (float_of_int !armed_count)

let arm ?(after = 1) name act =
  let site = register name in
  set_armed site (Some { countdown = max 1 after; act })

let disarm name =
  match Hashtbl.find_opt registry name with
  | None -> ()
  | Some site -> set_armed site None

let disarm_all () =
  Hashtbl.iter (fun _ site -> set_armed site None) registry

let armed () =
  Hashtbl.fold
    (fun n site acc ->
      match site.s_armed with None -> acc | Some st -> (n, st.act) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let parse_spec spec =
  let parse_one part =
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "missing '=' in failpoint %S" part)
    | Some i ->
        let site = String.sub part 0 i in
        let rhs = String.sub part (i + 1) (String.length part - i - 1) in
        let action_str, after =
          match String.index_opt rhs '@' with
          | None -> (rhs, Ok 1)
          | Some j ->
              let n = String.sub rhs (j + 1) (String.length rhs - j - 1) in
              ( String.sub rhs 0 j,
                match int_of_string_opt n with
                | Some k when k >= 1 -> Ok k
                | Some _ | None ->
                    Error (Printf.sprintf "bad hit count in %S" part) )
        in
        if site = "" then Error (Printf.sprintf "empty site name in %S" part)
        else
          Result.bind after (fun after ->
              Result.map
                (fun act -> (site, after, act))
                (action_of_string action_str))
  in
  String.split_on_char ',' spec
  |> List.filter (fun p -> String.trim p <> "")
  |> List.fold_left
       (fun acc part ->
         Result.bind acc (fun parsed ->
             Result.map
               (fun one -> one :: parsed)
               (parse_one (String.trim part))))
       (Ok [])
  |> Result.map List.rev

let configure_from_env () =
  match Sys.getenv_opt "COMPO_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match parse_spec spec with
      | Ok points -> List.iter (fun (site, after, act) -> arm ~after site act) points
      | Error msg -> Printf.eprintf "COMPO_FAILPOINTS: %s (ignored)\n%!" msg)

(* Count a hit against the armed state; [Some act] when the site fires.
   Firing disarms (one-shot), so recovery after the simulated crash runs
   with the trap already sprung. *)
let trigger site =
  match site.s_armed with
  | None -> None
  | Some st ->
      if st.countdown > 1 then begin
        st.countdown <- st.countdown - 1;
        None
      end
      else begin
        set_armed site None;
        Obs.incr m_fired;
        Some st.act
      end

let hit site =
  if site.s_armed != None then
    match trigger site with
    | None -> ()
    | Some _ -> raise (Crashed site.s_name)

let guard site =
  if site.s_armed == None then Ok ()
  else
    match trigger site with
    | None -> Ok ()
    | Some Error_result ->
        Error (Errors.Io_error ("failpoint " ^ site.s_name))
    | Some _ -> raise (Crashed site.s_name)

let output site chan s =
  if site.s_armed == None then Out_channel.output_string chan s
  else
    match trigger site with
    | None -> Out_channel.output_string chan s
    | Some act ->
        let len = String.length s in
        (match act with
        | Crash | Error_result -> ()
        | Short_write n ->
            Out_channel.output_string chan (String.sub s 0 (min n len))
        | Torn_frame -> Out_channel.output_string chan (String.sub s 0 (len / 2))
        | Bit_flip ->
            let b = Bytes.of_string s in
            if len > 0 then begin
              let pos = len / 2 in
              Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10))
            end;
            Out_channel.output_bytes chan b);
        (* flush the corrupt prefix so the on-disk state at the simulated
           crash is deterministic, not buffer-boundary dependent *)
        Out_channel.flush chan;
        raise (Crashed site.s_name)
