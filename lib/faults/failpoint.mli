(** Failpoints: named fault-injection sites for crash-recovery testing.

    The storage layer registers a site at every append / flush / rename /
    checkpoint / replay boundary ([wal.append.frame],
    [snapshot.save.before_rename], ...).  A disarmed site costs one load
    and branch — the same discipline as the metrics and provenance sinks —
    so production code pays nothing for being torturable.

    Arming a site attaches an {!action}.  Actions are {e one-shot}: once a
    site fires it disarms itself, so a simulated crash cannot re-trigger
    during the recovery that follows it.  [?after:n] delays the shot to the
    n-th hit (1-based), which lets the torture driver crash on, say, the
    seventh WAL append rather than the first.

    Sites come in three shapes, by what the surrounding code can express:
    - {!hit} sites sit in [unit] contexts; any armed action is a hard stop
      ({!Crashed} is raised).
    - {!guard} sites sit in [result] contexts; {!Error_result} surfaces as
      an [Errors.Io_error], everything else is a hard stop.
    - {!output} sites wrap a buffer write; {!Short_write}, {!Torn_frame}
      and {!Bit_flip} corrupt the write deterministically (the corrupt
      prefix is flushed so the on-disk state is reproducible), then raise
      {!Crashed}.

    [COMPO_FAILPOINTS] arms sites from the environment (see
    {!configure_from_env}); the torture driver uses the API directly. *)

open Compo_core

type action =
  | Error_result  (** the site's operation returns an [Io_error] *)
  | Crash  (** raise {!Crashed} before the site's effect *)
  | Short_write of int
      (** write only the first [n] bytes of the buffer, flush, crash *)
  | Torn_frame  (** write the first half of the buffer, flush, crash *)
  | Bit_flip
      (** flip one bit in the middle of the buffer, write it all, flush,
          crash — a lying disk rather than a torn one *)

exception Crashed of string
(** Simulated process death; carries the site name.  Test drivers catch it
    where a real deployment would reboot. *)

val action_to_string : action -> string

val action_of_string : string -> (action, string) result
(** Inverse of {!action_to_string}: [error], [crash], [torn], [bitflip],
    [short:N]. *)

(** {1 Sites} *)

type site

val register : string -> site
(** Find-or-create the site [name].  Instrumentation points call this once
    at module initialisation and keep the handle. *)

val name : site -> string

val all_sites : unit -> string list
(** Every registered site name, sorted.  The torture driver enumerates
    this to prove its crash matrix covers the storage layer. *)

(** {1 Arming} *)

val arm : ?after:int -> string -> action -> unit
(** Arm site [name] (registering it if needed) to fire [action] on its
    [after]-th hit (default 1).  Re-arming replaces the previous state. *)

val disarm : string -> unit
val disarm_all : unit -> unit

val armed : unit -> (string * action) list
(** Currently armed sites (sorted by name) — empty once every armed site
    has fired. *)

val parse_spec : string -> ((string * int * action) list, string) result
(** Parse a [COMPO_FAILPOINTS] spec: comma-separated [site=action] pairs,
    each optionally suffixed [@N] for the hit count, e.g.
    ["wal.append.frame=torn@3,snapshot.save.before_rename=crash"]. *)

val configure_from_env : unit -> unit
(** Arm everything named in [COMPO_FAILPOINTS]; malformed specs are
    reported on stderr and ignored (a typo must not crash the CLI). *)

(** {1 Firing (instrumentation side)} *)

val hit : site -> unit
(** Count a hit; when the armed countdown reaches zero, disarm and raise
    {!Crashed} (every action is a hard stop in a [unit] context). *)

val guard : site -> (unit, Errors.t) result
(** Like {!hit}, but {!Error_result} returns [Error (Io_error _)] instead
    of raising. *)

val output : site -> Out_channel.t -> string -> unit
(** Write [s] through the site.  Disarmed: a plain [output_string].  The
    write-corrupting actions write their deterministic prefix or
    corruption, flush the channel, and raise {!Crashed}; [Crash] raises
    before writing anything; [Error_result] is treated as [Crash]. *)
