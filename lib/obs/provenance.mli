(** Provenance: the causal record of one inherited-attribute read.

    The paper's value inheritance answers a read through a chain of
    relationship objects, each with its own permeability; this module
    captures {e why} a read returned what it did — the ordered
    transmitter chain walked, the relationship object and permeability
    decision at every hop, whether the resolve cache served the read,
    and the final source object.

    The collector is a process-global, explicitly enabled sink (like
    {!Metrics}/{!Trace}): while {!enabled} is [false] every recording
    entry point is a single load-and-branch no-op, so the resolution
    hot path stays allocation-free.  [Inheritance.attr] is the producer;
    [compo explain] and the tests are the consumers.

    Entities are identified by their rendered surrogates (strings), so
    this module stays below [compo_core] in the link order. *)

(** How the resolve cache participated in the read. *)
type cache_outcome =
  | Hit  (** served from the memo table (the chain walk below reproduces
             what the cached value was resolved from) *)
  | Miss  (** walked the chain and filled the cache *)
  | Bypass  (** cache active but not consulted: read hooks installed
                (transactional reads must pay per-hop lock inheritance) *)
  | Off  (** cache disabled for this store *)

val cache_outcome_to_string : cache_outcome -> string

(** What happened at one object of the chain. *)
type hop_kind =
  | Local  (** the attribute is owned here: this object is the source *)
  | Follow of {
      via : string;  (** inheritance-relationship type of the binding *)
      link : string;  (** surrogate of the relationship object *)
      transmitter : string;  (** surrogate of the next transmitter *)
      permeable : bool;
          (** the relationship type's [inheriting] clause lets the
              attribute through *)
    }
  | Unbound  (** the attribute only reaches this type through a
                 relationship, but the object has no binding: the read
                 yields [Null] here *)

type hop = {
  hop_object : string;  (** surrogate of the object at this hop *)
  hop_type : string;  (** its object type *)
  hop_kind : hop_kind;
}

(** One fully resolved read, origin first. *)
type read = {
  r_object : string;  (** surrogate the read started at *)
  r_attr : string;
  r_hops : hop list;
  r_cache : cache_outcome;
  r_value : string;  (** rendering of the resolved value *)
  r_trace : string option;
      (** the wire-level trace id ({!Trace.current_trace}) active when
          the read finished — links the chain back to the client
          request that caused it; [None] outside a traced request *)
}

val source_of : read -> string option
(** Surrogate of the object that supplied the value — the [Local] hop —
    or [None] when the chain ended unbound ([Null]). *)

(** {1 Global switch} *)

val enabled : unit -> bool
(** [true] only when recording is switched on {e and} the caller may
    record: the main domain always may; other domains only after
    {!permit_domain}.  The collector is a single global slot, so worker
    domains never record — parallel query workers resolve through the
    plain path instead. *)

val enable : unit -> unit
val disable : unit -> unit

val permit_domain : unit -> unit
(** Grant the calling domain recording rights.  Only sound when every
    kernel entry from that domain is externally serialised — the
    network server does this, because all its handler threads funnel
    through one gate mutex; never call it from pool worker domains. *)

val configure_from_env : ?getenv:(string -> string option) -> unit -> unit
(** [COMPO_PROVENANCE=1|true|yes] enables the collector.  Entry points
    (CLI, bench harness) call this at startup so the ablation matrix
    can toggle provenance recording per configuration cell. *)

(** {1 Recording (producer side)}

    [begin_read] opens an in-flight accumulator, [add_hop] appends to
    it, [finish_read] seals it into the ring of recent reads,
    [abort_read] drops it (resolution failed).  All four are no-ops
    while disabled or (except [begin_read]) with no read in flight. *)

val begin_read : origin:string -> attr:string -> unit
val add_hop : hop -> unit
val finish_read : cache:cache_outcome -> value:string -> unit
val abort_read : unit -> unit

(** {1 Inspection (consumer side)} *)

val last : unit -> read option
(** The most recently finished read, if any. *)

val recent : unit -> read list
(** Finished reads, most recent first, clipped to the last 64. *)

val clear : unit -> unit

(** {1 Rendering} *)

val pp_hops : Format.formatter -> hop list -> unit
(** The chain as an indented tree, one level per transmitter hop. *)

val pp_read : Format.formatter -> read -> unit
(** Full report: resolved value, cache outcome, source, chain tree. *)
