(** Flight recorder: a bounded ring of structured runtime events.

    Where {!Metrics} aggregates and {!Trace} times, the flight recorder
    keeps the {e sequence}: connection lifecycle, transaction
    boundaries, drain phases, timeouts, forced aborts — the last few
    thousand things the process did, with timestamps and attributes, so
    an abnormal exit or a stuck server can be reconstructed after the
    fact.  The network server is the producer; [compo-server] dumps the
    ring as JSON on SIGUSR1 and on abnormal exit, and
    [compo flightrec FILE] pretty-prints a dump.

    Recording is a mutex-guarded array store with no global switch: the
    ring is always armed, because its value is highest precisely when
    nothing was set up in advance.  Events are connection-rate, never
    per-row. *)

type event = {
  ev_ts : float;  (** [Unix.gettimeofday] at the event *)
  ev_kind : string;  (** dotted lowercase kind, e.g. ["conn.open"] *)
  ev_attrs : (string * string) list;
}

val record : ?attrs:(string * string) list -> string -> unit
(** Append one event (kind + attributes) to the ring, overwriting the
    oldest entry once the capacity is reached. *)

val recent : unit -> event list
(** Buffered events, oldest first. *)

val recorded : unit -> int
(** Total events recorded since the last {!clear} (not bounded by the
    ring capacity). *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (default 4096) and drop its contents.  Raises
    [Invalid_argument] on a non-positive capacity. *)

val clear : unit -> unit

val parse_capacity : string -> (int, string) result
(** Strict capacity validation: positive integers only, one-line error
    otherwise (the [Pool.parse_jobs] convention). *)

val configure_from_env :
  ?getenv:(string -> string option) -> unit -> (unit, string) result
(** Apply [COMPO_FLIGHTREC_CAPACITY].  Unlike the lenient trace knobs,
    garbage is an [Error] the entry points turn into a one-line die —
    a mistyped capacity must not silently fall back to the default. *)

(** {1 JSON round trip}

    The dump format is a single object:
    [{"flightrec":1,"capacity":N,"recorded":M,"events":[...]}] with each
    event as [{"ts":...,"kind":"...","attrs":{...}}].  It parses back
    with {!Json_min} — the CI soak job asserts this on a live dump. *)

val to_json : unit -> string

val of_json : Json_min.t -> (event list, string) result
(** Events of a parsed dump, oldest first. *)

val dump_to_file : string -> (unit, string) result

(** {1 Rendering} *)

val pp_event : ?t0:float -> Format.formatter -> event -> unit
(** One line: seconds relative to [t0] (default absolute), kind,
    attributes. *)

val pp_events : Format.formatter -> event list -> unit
(** All events, timestamps relative to the first. *)
