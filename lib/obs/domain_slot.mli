(** Per-domain dense slot indices for sharded data structures.

    [get ()] returns a small integer unique to the calling domain,
    assigned on first use from a process-wide counter.  Fixed-size
    shard arrays of [max_slots] entries can be indexed with it without
    synchronisation, because no two live domains share a slot.  Slots
    are not recycled when a domain terminates; a process that spawns
    more than [max_slots] domains must treat [in_range slot = false]
    as "use a synchronised fallback". *)

val max_slots : int
val get : unit -> int
val in_range : int -> bool
