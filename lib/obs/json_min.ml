type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* recursive-descent parser over a string with an explicit cursor *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail !pos (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail !pos (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   (* pass the 4 hex digits through for ASCII range;
                      anything above is kept as the raw escape *)
                   if !pos + 4 >= n then fail !pos "truncated \\u escape"
                   else begin
                     let hex = String.sub s (!pos + 1) 4 in
                     (match int_of_string_opt ("0x" ^ hex) with
                     | Some code when code < 128 ->
                         Buffer.add_char b (Char.chr code)
                     | Some _ | None ->
                         Buffer.add_string b "\\u";
                         Buffer.add_string b hex);
                     pos := !pos + 4
                   end
               | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    match float_of_string_opt raw with
    | Some f -> f
    | None -> fail start (Printf.sprintf "bad number %S" raw)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail !pos "expected ',' or '}' in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']' in array"
          in
          Arr (elements [])
        end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "json: %s at byte %d" msg at)

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> l | _ -> []
let obj_fields = function Obj fields -> fields | _ -> []

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (number_to_string f)
  | Str s -> Buffer.add_string b (escape_string s)
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (escape_string k);
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string_json v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
