type span = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_depth : int;
  sp_start : float;
  sp_duration : float;
}

(* ring buffer: [ring.(i)] is valid for the last [min total capacity]
   writes, [pos] is the next write slot.  All ring and slow-log state
   is guarded by [m]: spans are recorded from worker domains, and an
   unguarded push races on [pos] (lost records, duplicated slots).
   Nesting depth is per-domain — a span on one domain is not "inside"
   a span running concurrently on another. *)
let m = Mutex.create ()
let ring = ref (Array.make 512 None)
let pos = ref 0
let total = ref 0

let with_lock f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let current_depth () = !(Domain.DLS.get depth_key)

let threshold = ref infinity
let slow_threshold () = !threshold
let set_slow_threshold t = threshold := t

(* Trace context: the id of the designer operation the running code is
   serving, stamped onto every span recorded while set.  One global
   slot, deliberately not DLS: the server only sets it while holding
   its kernel gate (one kernel entry at a time, whatever thread or
   domain carries it), and the CLI is single-threaded — so there is
   never more than one writer, and DLS would actually be wrong (handler
   threads share their acceptor domain's slots). *)
let trace_slot = ref None
let set_current_trace id = trace_slot := id
let current_trace () = !trace_slot

(* Environment configuration is injectable so tests can exercise the
   parsing without mutating the process environment. *)
let configure_from_env ?(getenv = Sys.getenv_opt) () =
  (match getenv "COMPO_SLOW_MS" with
  | Some v -> (
      match float_of_string_opt v with
      | Some ms when ms >= 0. -> threshold := ms /. 1000.
      | Some _ | None -> ())
  | None -> ());
  match getenv "COMPO_TRACE_CAPACITY" with
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n > 0 ->
          with_lock (fun () ->
              ring := Array.make n None;
              pos := 0;
              total := 0)
      | Some _ | None -> ())
  | None -> ()

let slow_capacity = 256
let slow = ref [] (* newest first, clipped to slow_capacity *)
let slow_count = ref 0

let clear () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      pos := 0;
      total := 0;
      slow := [];
      slow_count := 0)

let set_capacity n =
  if n <= 0 then invalid_arg "Compo_obs.Trace.set_capacity";
  with_lock (fun () ->
      ring := Array.make n None;
      pos := 0;
      total := 0)

let record sp =
  with_lock (fun () ->
      let buf = !ring in
      buf.(!pos) <- Some sp;
      pos := (!pos + 1) mod Array.length buf;
      incr total;
      if sp.sp_duration >= !threshold then begin
        slow := sp :: !slow;
        incr slow_count;
        if !slow_count > slow_capacity then begin
          (* clip the oldest half rather than one-at-a-time *)
          slow := List.filteri (fun i _ -> i < slow_capacity) !slow;
          slow_count := slow_capacity
        end
      end)

(* the current trace context rides along as a ["trace"] attribute, so a
   kernel span recorded under the server's gate carries the id of the
   wire request that caused it *)
let stamp_trace attrs =
  match !trace_slot with
  | None -> attrs
  | Some id -> ("trace", id) :: attrs

let with_span ?(attrs = []) name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Unix.gettimeofday () in
    let finish () =
      let dt = Unix.gettimeofday () -. t0 in
      depth := d;
      record
        { sp_name = name; sp_attrs = stamp_trace attrs; sp_depth = d;
          sp_start = t0; sp_duration = dt };
      Metrics.observe (Metrics.histogram name) dt
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* externally timed span: ring only, no histogram feed — callers that
   measure their own wait/hold intervals observe their own histogram
   families and use this purely to make the interval reconstructable
   in the span ring (with the trace attribute) *)
let note ?(attrs = []) name ~start ~duration =
  if Metrics.enabled () then
    record
      { sp_name = name; sp_attrs = stamp_trace attrs;
        sp_depth = current_depth (); sp_start = start; sp_duration = duration }

let recent () =
  with_lock (fun () ->
      let buf = !ring in
      let n = Array.length buf in
      let rec go acc i remaining =
        (* walks newest to oldest, prepending: [acc] ends up oldest-first *)
        if remaining = 0 then acc
        else
          let i = (i - 1 + n) mod n in
          match buf.(i) with
          | None -> acc
          | Some sp -> go (sp :: acc) i (remaining - 1)
      in
      List.rev (go [] !pos (min !total n)))

let recorded () = with_lock (fun () -> !total)
let slow_ops () = with_lock (fun () -> !slow)

let pp_span fmt sp =
  Format.fprintf fmt "%*s%s %.1fus%s" (2 * sp.sp_depth) "" sp.sp_name
    (sp.sp_duration *. 1e6)
    (match sp.sp_attrs with
    | [] -> ""
    | attrs ->
        " {"
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
        ^ "}")

let pp_spans fmt spans =
  List.iter (fun sp -> Format.fprintf fmt "%a@." pp_span sp) spans
