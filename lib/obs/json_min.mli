(** Minimal JSON reader/writer for the repo's own report files.

    Every [BENCH_*.json] report and metrics snapshot in this repo is
    written by hand-rolled printers ({!Metrics.to_json}, the bench
    harness, the ablation matrix); this module is the matching reader,
    so the matrix runner and [compo benchdiff] can load them back
    without a third-party JSON dependency (the build environment pins
    no yojson).  It parses standard JSON — objects, arrays, strings
    with the common escapes, numbers as [float], booleans, null — and
    is not meant as a general-purpose codec: surrogate pairs and exotic
    escapes are passed through as-is. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; the error carries a byte offset. Trailing
    whitespace is allowed, trailing garbage is not. *)

val parse_file : string -> (t, string) result
(** {!parse} of a file's contents; IO errors surface as [Error]. *)

(** {1 Accessors} — all total, [None]/default on shape mismatch *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or when absent. *)

val to_float : t -> float option
(** [Num] (and [Bool] as 0/1) as float. *)

val to_string : t -> string option
val to_list : t -> t list
(** Elements of an [Arr]; [[]] on anything else. *)

val obj_fields : t -> (string * t) list
(** Fields of an [Obj]; [[]] on anything else. *)

(** {1 Rendering} *)

val number_to_string : float -> string
(** Canonical number rendering: integers without a fraction part,
    everything else via ["%.9g"] — never ["nan"]/["inf"] (those render
    as [null] in {!to_buffer}, mirroring {!Metrics.to_json}). *)

val escape_string : string -> string
(** JSON string escaping (quotes included). *)

val to_buffer : Buffer.t -> t -> unit
(** Compact rendering (no insignificant whitespace). *)

val to_string_json : t -> string
