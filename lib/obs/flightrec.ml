type event = {
  ev_ts : float;
  ev_kind : string;
  ev_attrs : (string * string) list;
}

(* One process-wide bounded ring.  Recording is a mutex-guarded array
   store — cheap enough for connection-rate events (lifecycle, txn
   boundaries, drain phases), and never on a per-row hot path.  The
   ring is always armed: unlike the metrics registry there is no global
   switch, because the whole point is having the last events available
   when something already went wrong. *)
let m = Mutex.create ()
let default_capacity = 4096
let ring = ref (Array.make default_capacity None)
let pos = ref 0
let total = ref 0

let with_lock f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_capacity n =
  if n <= 0 then invalid_arg "Compo_obs.Flightrec.set_capacity";
  with_lock (fun () ->
      ring := Array.make n None;
      pos := 0;
      total := 0)

let capacity () = with_lock (fun () -> Array.length !ring)

let clear () =
  with_lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      pos := 0;
      total := 0)

let record ?(attrs = []) kind =
  let ev = { ev_ts = Unix.gettimeofday (); ev_kind = kind; ev_attrs = attrs } in
  with_lock (fun () ->
      let buf = !ring in
      buf.(!pos) <- Some ev;
      pos := (!pos + 1) mod Array.length buf;
      incr total)

let recorded () = with_lock (fun () -> !total)

let recent () =
  with_lock (fun () ->
      let buf = !ring in
      let n = Array.length buf in
      let rec go acc i remaining =
        if remaining = 0 then acc
        else
          let i = (i - 1 + n) mod n in
          match buf.(i) with
          | None -> acc
          | Some ev -> go (ev :: acc) i (remaining - 1)
      in
      (* walks newest to oldest, prepending: the result is oldest-first *)
      go [] !pos (min !total n))

(* ------------------------------------------------------------------ *)
(* Environment configuration                                           *)

(* strict, per the front-end convention (Pool.parse_jobs): a garbage
   capacity is a user error that dies with one line, never a silent
   fallback to the default *)
let parse_capacity raw =
  let raw = String.trim raw in
  match int_of_string_opt raw with
  | Some n when n >= 1 -> Ok n
  | Some _ | None ->
      Error (Printf.sprintf "must be a positive integer (got '%s')" raw)

let configure_from_env ?(getenv = Sys.getenv_opt) () =
  match getenv "COMPO_FLIGHTREC_CAPACITY" with
  | None -> Ok ()
  | Some raw -> (
      match parse_capacity raw with
      | Ok n ->
          set_capacity n;
          Ok ()
      | Error msg -> Error ("COMPO_FLIGHTREC_CAPACITY " ^ msg))

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)

module J = Json_min

let event_to_json ev =
  J.Obj
    [
      ("ts", J.Num ev.ev_ts);
      ("kind", J.Str ev.ev_kind);
      ("attrs", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) ev.ev_attrs));
    ]

let to_json () =
  let events = recent () in
  J.to_string_json
    (J.Obj
       [
         ("flightrec", J.Num 1.);
         ("capacity", J.Num (float_of_int (capacity ())));
         ("recorded", J.Num (float_of_int (recorded ())));
         ("events", J.Arr (List.map event_to_json events));
       ])

let event_of_json j =
  match (J.member "ts" j, J.member "kind" j) with
  | Some ts, Some kind -> (
      match (J.to_float ts, J.to_string kind) with
      | Some ts, Some kind ->
          let attrs =
            match J.member "attrs" j with
            | Some a ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun v -> (k, v)) (J.to_string v))
                  (J.obj_fields a)
            | None -> []
          in
          Ok { ev_ts = ts; ev_kind = kind; ev_attrs = attrs }
      | _ -> Error "event ts/kind have the wrong type")
  | _ -> Error "event missing ts or kind"

let of_json j =
  match J.member "flightrec" j with
  | None -> Error "not a flight-recorder dump (no \"flightrec\" field)"
  | Some _ ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | ev :: rest -> (
            match event_of_json ev with
            | Ok ev -> go (ev :: acc) rest
            | Error _ as e -> e)
      in
      go [] (match J.member "events" j with Some e -> J.to_list e | None -> [])

let dump_to_file path =
  match
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (to_json ());
        Out_channel.output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_event ?(t0 = 0.) fmt ev =
  Format.fprintf fmt "%+10.3fs  %-22s" (ev.ev_ts -. t0) ev.ev_kind;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) ev.ev_attrs

let pp_events fmt events =
  let t0 = match events with [] -> 0. | ev :: _ -> ev.ev_ts in
  List.iter (fun ev -> Format.fprintf fmt "%a@." (pp_event ~t0) ev) events
