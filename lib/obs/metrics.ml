(* The registry maps names to mutable cells.  Instrumentation sites hold
   on to the cells themselves, so increments never touch the table and
   [reset] must zero cells in place rather than dropping them. *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  bounds : float array;          (* strictly increasing upper bounds *)
  counts : int array;            (* one per bound, plus overflow at the end *)
  mutable hg_count : int;
  mutable hg_sum : float;
  mutable hg_min : float;
  mutable hg_max : float;
}

type cell = C of counter | G of gauge | H of histogram

type registry = (string, cell) Hashtbl.t

let create_registry () : registry = Hashtbl.create 64
let default_registry : registry = create_registry ()

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register registry name make match_cell =
  match Hashtbl.find_opt registry name with
  | Some cell -> (
      match match_cell cell with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Compo_obs.Metrics: %s is already a %s" name
               (kind_name cell)))
  | None ->
      let v, cell = make () in
      Hashtbl.replace registry name cell;
      v

let counter ?(registry = default_registry) name =
  register registry name
    (fun () ->
      let c = { c_value = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let incr c = if !on then c.c_value <- c.c_value + 1
let add c n = if !on then c.c_value <- c.c_value + n
let count c = c.c_value

let gauge ?(registry = default_registry) name =
  register registry name
    (fun () ->
      let g = { g_value = 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = if !on then g.g_value <- v
let add_gauge g v = if !on then g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

(* 1-2.5-5 log scale; latency in seconds, sizes dimensionless *)
let log_scale lo steps =
  Array.init steps (fun i ->
      let mag = 10. ** float_of_int (i / 3) in
      let m = match i mod 3 with 0 -> 1. | 1 -> 2.5 | _ -> 5. in
      lo *. m *. mag)

let latency_buckets = log_scale 1e-6 21 (* 1us .. 10s *)
let size_buckets = log_scale 1. 16 (* 1 .. 100k *)

let validate_buckets bounds =
  if Array.length bounds = 0 then
    invalid_arg "Compo_obs.Metrics: empty histogram buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Compo_obs.Metrics: histogram buckets must be increasing")
    bounds

let histogram ?(registry = default_registry) ?(buckets = latency_buckets) name =
  register registry name
    (fun () ->
      validate_buckets buckets;
      let h =
        {
          bounds = buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          hg_count = 0;
          hg_sum = 0.;
          hg_min = nan;
          hg_max = nan;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let bucket_index bounds v =
  (* binary search for the first bound >= v; the overflow slot is
     [Array.length bounds] *)
  let n = Array.length bounds in
  let rec go lo hi = (* invariant: answer in [lo, hi] *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if !on then begin
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.hg_count <- h.hg_count + 1;
    h.hg_sum <- h.hg_sum +. v;
    if h.hg_count = 1 then begin
      h.hg_min <- v;
      h.hg_max <- v
    end
    else begin
      if v < h.hg_min then h.hg_min <- v;
      if v > h.hg_max then h.hg_max <- v
    end
  end

let observations h = h.hg_count
let sum h = h.hg_sum

type hist_snapshot = {
  h_buckets : (float * int) array;
  h_overflow : int;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

let quantile snap q =
  if snap.h_count = 0 then nan
  else
    let target =
      int_of_float (ceil (q *. float_of_int snap.h_count)) |> max 1
    in
    let rec go i seen =
      if i >= Array.length snap.h_buckets then snap.h_max
      else
        let bound, c = snap.h_buckets.(i) in
        if seen + c >= target then bound else go (i + 1) (seen + c)
    in
    go 0 0

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

let snapshot_cell = function
  | C c -> Counter c.c_value
  | G g -> Gauge g.g_value
  | H h ->
      Histogram
        {
          h_buckets = Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds;
          h_overflow = h.counts.(Array.length h.bounds);
          h_count = h.hg_count;
          h_sum = h.hg_sum;
          h_min = h.hg_min;
          h_max = h.hg_max;
        }

let snapshot ?(registry = default_registry) () =
  Hashtbl.fold (fun name cell acc -> (name, snapshot_cell cell) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find ?(registry = default_registry) name =
  Option.map snapshot_cell (Hashtbl.find_opt registry name)

let counter_value ?registry name =
  match find ?registry name with Some (Counter n) -> n | _ -> 0

let reset ?(registry = default_registry) () =
  Hashtbl.iter
    (fun _ cell ->
      match cell with
      | C c -> c.c_value <- 0
      | G g -> g.g_value <- 0.
      | H h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.hg_count <- 0;
          h.hg_sum <- 0.;
          h.hg_min <- nan;
          h.hg_max <- nan)
    registry

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let si v =
  (* engineering rendering for seconds-or-counts: pick a readable unit *)
  if Float.is_nan v then "-"
  else if v = 0. then "0"
  else if Float.abs v >= 1. then Printf.sprintf "%.3g" v
  else if Float.abs v >= 1e-3 then Printf.sprintf "%.3gm" (v *. 1e3)
  else if Float.abs v >= 1e-6 then Printf.sprintf "%.3gu" (v *. 1e6)
  else Printf.sprintf "%.3gn" (v *. 1e9)

let pp_dump fmt metrics =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter n -> Format.fprintf fmt "%-34s counter %10d@." name n
      | Gauge v -> Format.fprintf fmt "%-34s gauge   %10s@." name (si v)
      | Histogram snap ->
          let mean =
            if snap.h_count = 0 then nan
            else snap.h_sum /. float_of_int snap.h_count
          in
          Format.fprintf fmt
            "%-34s histo   %10d  mean=%-8s p50=%-8s p99=%-8s max=%-8s@." name
            snap.h_count (si mean)
            (si (quantile snap 0.5))
            (si (quantile snap 0.99))
            (si snap.h_max))
    metrics

let dump ?registry () =
  Format.asprintf "%a" pp_dump (snapshot ?registry ())

let ratio_string ?(scale = 100.) ~num ~den () =
  (* derived ratios must survive zero-read runs: no nan, no div-by-zero *)
  if den = 0 then "n/a"
  else Printf.sprintf "%.1f%%" (scale *. float_of_int num /. float_of_int den)

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)

(* Metric names in the exposition format match
   [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted registry names sanitize to
   underscores under a "compo_" prefix. *)
let om_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "compo_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let om_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_openmetrics ?registry () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
      let n = om_name name in
      match m with
      | Counter c ->
          Printf.bprintf b "# TYPE %s counter\n" n;
          Printf.bprintf b "%s_total %d\n" n c
      | Gauge v ->
          Printf.bprintf b "# TYPE %s gauge\n" n;
          Printf.bprintf b "%s %s\n" n (om_float v)
      | Histogram snap ->
          Printf.bprintf b "# TYPE %s histogram\n" n;
          (* exposition buckets are cumulative; +Inf closes the series at
             the total count (overflow included) *)
          let seen = ref 0 in
          Array.iter
            (fun (bound, c) ->
              seen := !seen + c;
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n (om_float bound)
                !seen)
            snap.h_buckets;
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" n snap.h_count;
          Printf.bprintf b "%s_sum %s\n" n (om_float snap.h_sum);
          Printf.bprintf b "%s_count %d\n" n snap.h_count)
    (snapshot ?registry ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)

let json_float v =
  (* JSON has no nan/inf literals: empty-histogram min/max become null *)
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json ?registry () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"metrics\": [";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    { \"name\": %s, " (json_string name);
      match m with
      | Counter c -> Printf.bprintf b "\"kind\": \"counter\", \"value\": %d }" c
      | Gauge v ->
          Printf.bprintf b "\"kind\": \"gauge\", \"value\": %s }" (json_float v)
      | Histogram snap ->
          Printf.bprintf b
            "\"kind\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": \
             %s, \"max\": %s, \"overflow\": %d, \"buckets\": ["
            snap.h_count (json_float snap.h_sum) (json_float snap.h_min)
            (json_float snap.h_max) snap.h_overflow;
          let first = ref true in
          Array.iter
            (fun (bound, c) ->
              if c > 0 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                Printf.bprintf b "{ \"le\": %s, \"count\": %d }"
                  (json_float bound) c
              end)
            snap.h_buckets;
          Buffer.add_string b "] }")
    (snapshot ?registry ());
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let snapshot_to_file ?registry path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?registry ()))

let to_line_protocol ?registry () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter n -> Printf.bprintf b "compo,metric=%s count=%di\n" name n
      | Gauge v -> Printf.bprintf b "compo,metric=%s value=%.9g\n" name v
      | Histogram snap ->
          Printf.bprintf b "compo,metric=%s count=%di,sum=%.9g,min=%.9g,max=%.9g"
            name snap.h_count snap.h_sum snap.h_min snap.h_max;
          Array.iter
            (fun (bound, c) ->
              if c > 0 then Printf.bprintf b ",le_%.9g=%di" bound c)
            snap.h_buckets;
          if snap.h_overflow > 0 then
            Printf.bprintf b ",le_inf=%di" snap.h_overflow;
          Buffer.add_char b '\n')
    (snapshot ?registry ());
  Buffer.contents b
