(* The registry maps names to mutable cells.  Instrumentation sites hold
   on to the cells themselves, so increments never touch the table and
   [reset] must zero cells in place rather than dropping them.

   Domain safety: counters and gauges are atomics; a histogram is a
   fixed array of per-domain shards (indexed by {!Domain_slot}) merged
   at snapshot time, plus one mutex-guarded overflow shard for the
   unlikely process that outlives the slot space.  The registry table
   itself is guarded by a per-registry mutex, because spans register
   histograms lazily from worker domains.  Snapshots taken while other
   domains are mid-increment may miss in-flight updates, but never
   tear: each shard is written by exactly one domain. *)

type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

type hshard = {
  hs_counts : int array;         (* one per bound, plus overflow at the end *)
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
}

type histogram = {
  bounds : float array;          (* strictly increasing upper bounds *)
  shards : hshard option Atomic.t array; (* indexed by Domain_slot.get *)
  hg_overflow : hshard;          (* for domains past the slot space *)
  hg_overflow_m : Mutex.t;
}

type cell = C of counter | G of gauge | H of histogram

type registry = {
  tbl : (string, cell) Hashtbl.t;
  reg_m : Mutex.t;
}

let create_registry () : registry =
  { tbl = Hashtbl.create 64; reg_m = Mutex.create () }

let default_registry : registry = create_registry ()

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register registry name make match_cell =
  with_lock registry.reg_m (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some cell -> (
          match match_cell cell with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Compo_obs.Metrics: %s is already a %s" name
                   (kind_name cell)))
      | None ->
          let v, cell = make () in
          Hashtbl.replace registry.tbl name cell;
          v)

let counter ?(registry = default_registry) name =
  register registry name
    (fun () ->
      let c = { c_value = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_value n)
let count c = Atomic.get c.c_value

let gauge ?(registry = default_registry) name =
  register registry name
    (fun () ->
      let g = { g_value = Atomic.make 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = if Atomic.get on then Atomic.set g.g_value v

let add_gauge g v =
  if Atomic.get on then begin
    let rec go () =
      let old = Atomic.get g.g_value in
      if not (Atomic.compare_and_set g.g_value old (old +. v)) then go ()
    in
    go ()
  end

let gauge_value g = Atomic.get g.g_value

(* 1-2.5-5 log scale; latency in seconds, sizes dimensionless *)
let log_scale lo steps =
  Array.init steps (fun i ->
      let mag = 10. ** float_of_int (i / 3) in
      let m = match i mod 3 with 0 -> 1. | 1 -> 2.5 | _ -> 5. in
      lo *. m *. mag)

let latency_buckets = log_scale 1e-6 21 (* 1us .. 10s *)
let size_buckets = log_scale 1. 16 (* 1 .. 100k *)

let validate_buckets bounds =
  if Array.length bounds = 0 then
    invalid_arg "Compo_obs.Metrics: empty histogram buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Compo_obs.Metrics: histogram buckets must be increasing")
    bounds

let fresh_shard nbounds =
  {
    hs_counts = Array.make (nbounds + 1) 0;
    hs_count = 0;
    hs_sum = 0.;
    hs_min = nan;
    hs_max = nan;
  }

let histogram ?(registry = default_registry) ?(buckets = latency_buckets) name =
  register registry name
    (fun () ->
      validate_buckets buckets;
      let h =
        {
          bounds = buckets;
          shards = Array.init Domain_slot.max_slots (fun _ -> Atomic.make None);
          hg_overflow = fresh_shard (Array.length buckets);
          hg_overflow_m = Mutex.create ();
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let bucket_index bounds v =
  (* binary search for the first bound >= v; the overflow slot is
     [Array.length bounds] *)
  let n = Array.length bounds in
  let rec go lo hi = (* invariant: answer in [lo, hi] *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe_shard bounds s v =
  let i = bucket_index bounds v in
  s.hs_counts.(i) <- s.hs_counts.(i) + 1;
  s.hs_count <- s.hs_count + 1;
  s.hs_sum <- s.hs_sum +. v;
  if s.hs_count = 1 then begin
    s.hs_min <- v;
    s.hs_max <- v
  end
  else begin
    if v < s.hs_min then s.hs_min <- v;
    if v > s.hs_max then s.hs_max <- v
  end

let own_shard h =
  let slot = Domain_slot.get () in
  if not (Domain_slot.in_range slot) then None
  else
    match Atomic.get h.shards.(slot) with
    | Some _ as s -> s
    | None ->
        let s = fresh_shard (Array.length h.bounds) in
        (* the slot belongs to this domain alone, so publish can't race
           another writer; Atomic makes it visible to snapshotters *)
        Atomic.set h.shards.(slot) (Some s);
        Some s

let observe h v =
  if Atomic.get on then
    match own_shard h with
    | Some s -> observe_shard h.bounds s v
    | None ->
        with_lock h.hg_overflow_m (fun () ->
            observe_shard h.bounds h.hg_overflow v)

let fold_shards h f acc =
  let acc =
    Array.fold_left
      (fun acc slot ->
        match Atomic.get slot with Some s -> f acc s | None -> acc)
      acc h.shards
  in
  f acc h.hg_overflow

let observations h = fold_shards h (fun acc s -> acc + s.hs_count) 0
let sum h = fold_shards h (fun acc s -> acc +. s.hs_sum) 0.

type hist_snapshot = {
  h_buckets : (float * int) array;
  h_overflow : int;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

let quantile snap q =
  if snap.h_count = 0 then nan
  else
    let target =
      int_of_float (ceil (q *. float_of_int snap.h_count)) |> max 1
    in
    let rec go i seen =
      if i >= Array.length snap.h_buckets then snap.h_max
      else
        let bound, c = snap.h_buckets.(i) in
        if seen + c >= target then bound else go (i + 1) (seen + c)
    in
    go 0 0

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

let snapshot_hist h =
  let n = Array.length h.bounds in
  let counts = Array.make (n + 1) 0 in
  let merged = fresh_shard n in
  fold_shards h
    (fun () s ->
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hs_counts;
      if s.hs_count > 0 then begin
        merged.hs_sum <- merged.hs_sum +. s.hs_sum;
        if merged.hs_count = 0 then begin
          merged.hs_min <- s.hs_min;
          merged.hs_max <- s.hs_max
        end
        else begin
          if s.hs_min < merged.hs_min then merged.hs_min <- s.hs_min;
          if s.hs_max > merged.hs_max then merged.hs_max <- s.hs_max
        end;
        merged.hs_count <- merged.hs_count + s.hs_count
      end)
    ();
  {
    h_buckets = Array.mapi (fun i b -> (b, counts.(i))) h.bounds;
    h_overflow = counts.(n);
    h_count = merged.hs_count;
    h_sum = merged.hs_sum;
    h_min = merged.hs_min;
    h_max = merged.hs_max;
  }

let snapshot_cell = function
  | C c -> Counter (Atomic.get c.c_value)
  | G g -> Gauge (Atomic.get g.g_value)
  | H h -> Histogram (snapshot_hist h)

let snapshot ?(registry = default_registry) () =
  with_lock registry.reg_m (fun () ->
      Hashtbl.fold
        (fun name cell acc -> (name, snapshot_cell cell) :: acc)
        registry.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find ?(registry = default_registry) name =
  with_lock registry.reg_m (fun () ->
      Option.map snapshot_cell (Hashtbl.find_opt registry.tbl name))

let counter_value ?registry name =
  match find ?registry name with Some (Counter n) -> n | _ -> 0

let reset_shard s =
  Array.fill s.hs_counts 0 (Array.length s.hs_counts) 0;
  s.hs_count <- 0;
  s.hs_sum <- 0.;
  s.hs_min <- nan;
  s.hs_max <- nan

let reset ?(registry = default_registry) () =
  with_lock registry.reg_m (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match cell with
          | C c -> Atomic.set c.c_value 0
          | G g -> Atomic.set g.g_value 0.
          | H h -> fold_shards h (fun () s -> reset_shard s) ())
        registry.tbl)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let si v =
  (* engineering rendering for seconds-or-counts: pick a readable unit *)
  if Float.is_nan v then "-"
  else if v = 0. then "0"
  else if Float.abs v >= 1. then Printf.sprintf "%.3g" v
  else if Float.abs v >= 1e-3 then Printf.sprintf "%.3gm" (v *. 1e3)
  else if Float.abs v >= 1e-6 then Printf.sprintf "%.3gu" (v *. 1e6)
  else Printf.sprintf "%.3gn" (v *. 1e9)

let pp_dump fmt metrics =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter n -> Format.fprintf fmt "%-34s counter %10d@." name n
      | Gauge v -> Format.fprintf fmt "%-34s gauge   %10s@." name (si v)
      | Histogram snap ->
          let mean =
            if snap.h_count = 0 then nan
            else snap.h_sum /. float_of_int snap.h_count
          in
          Format.fprintf fmt
            "%-34s histo   %10d  mean=%-8s p50=%-8s p99=%-8s max=%-8s@." name
            snap.h_count (si mean)
            (si (quantile snap 0.5))
            (si (quantile snap 0.99))
            (si snap.h_max))
    metrics

let dump ?registry () =
  Format.asprintf "%a" pp_dump (snapshot ?registry ())

let ratio_string ?(scale = 100.) ~num ~den () =
  (* derived ratios must survive zero-read runs: no nan, no div-by-zero *)
  if den = 0 then "n/a"
  else Printf.sprintf "%.1f%%" (scale *. float_of_int num /. float_of_int den)

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)

(* Metric names in the exposition format match
   [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted registry names sanitize to
   underscores under a "compo_" prefix. *)
let om_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "compo_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let om_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_openmetrics ?registry () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
      let n = om_name name in
      match m with
      | Counter c ->
          Printf.bprintf b "# TYPE %s counter\n" n;
          Printf.bprintf b "%s_total %d\n" n c
      | Gauge v ->
          Printf.bprintf b "# TYPE %s gauge\n" n;
          Printf.bprintf b "%s %s\n" n (om_float v)
      | Histogram snap ->
          Printf.bprintf b "# TYPE %s histogram\n" n;
          (* exposition buckets are cumulative; +Inf closes the series at
             the total count (overflow included) *)
          let seen = ref 0 in
          Array.iter
            (fun (bound, c) ->
              seen := !seen + c;
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n (om_float bound)
                !seen)
            snap.h_buckets;
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" n snap.h_count;
          Printf.bprintf b "%s_sum %s\n" n (om_float snap.h_sum);
          Printf.bprintf b "%s_count %d\n" n snap.h_count)
    (snapshot ?registry ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)

let json_float v =
  (* JSON has no nan/inf literals: empty-histogram min/max become null *)
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json ?registry () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"metrics\": [";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    { \"name\": %s, " (json_string name);
      match m with
      | Counter c -> Printf.bprintf b "\"kind\": \"counter\", \"value\": %d }" c
      | Gauge v ->
          Printf.bprintf b "\"kind\": \"gauge\", \"value\": %s }" (json_float v)
      | Histogram snap ->
          Printf.bprintf b
            "\"kind\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": \
             %s, \"max\": %s, \"overflow\": %d, \"buckets\": ["
            snap.h_count (json_float snap.h_sum) (json_float snap.h_min)
            (json_float snap.h_max) snap.h_overflow;
          let first = ref true in
          Array.iter
            (fun (bound, c) ->
              if c > 0 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                Printf.bprintf b "{ \"le\": %s, \"count\": %d }"
                  (json_float bound) c
              end)
            snap.h_buckets;
          Buffer.add_string b "] }")
    (snapshot ?registry ());
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let snapshot_to_file ?registry path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?registry ()))

(* The inverse of [to_json]: the ablation-matrix runner reads the
   snapshot files its cell subprocesses wrote and pulls key metrics out
   of them, so snapshots are data a harness can diff, not just logs.
   Histograms come back as [hist_snapshot]s with only the non-empty
   buckets [to_json] kept; [quantile] still works on those. *)
let read_snapshot_file path =
  let ( let* ) = Result.bind in
  let module J = Json_min in
  let float_of j = Option.value ~default:Float.nan (J.to_float j) in
  let opt_float field obj =
    match J.member field obj with Some j -> float_of j | None -> Float.nan
  in
  let int_field field obj =
    match Option.bind (J.member field obj) J.to_float with
    | Some f -> int_of_float f
    | None -> 0
  in
  let metric_of_entry entry =
    let* name =
      match Option.bind (J.member "name" entry) J.to_string with
      | Some n -> Ok n
      | None -> Error (path ^ ": metric entry without a name")
    in
    match Option.bind (J.member "kind" entry) J.to_string with
    | Some "counter" -> Ok (name, Counter (int_field "value" entry))
    | Some "gauge" -> Ok (name, Gauge (opt_float "value" entry))
    | Some "histogram" ->
        let buckets =
          J.to_list (Option.value ~default:(J.Arr []) (J.member "buckets" entry))
          |> List.map (fun b -> (opt_float "le" b, int_field "count" b))
          |> Array.of_list
        in
        Ok
          ( name,
            Histogram
              {
                h_buckets = buckets;
                h_overflow = int_field "overflow" entry;
                h_count = int_field "count" entry;
                h_sum = opt_float "sum" entry;
                h_min = opt_float "min" entry;
                h_max = opt_float "max" entry;
              } )
    | Some other -> Error (path ^ ": unknown metric kind " ^ other)
    | None -> Error (path ^ ": metric " ^ name ^ " without a kind")
  in
  let* root = J.parse_file path in
  match J.member "metrics" root with
  | None -> Error (path ^ ": no \"metrics\" array")
  | Some entries ->
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          let* m = metric_of_entry entry in
          Ok (m :: acc))
        (Ok []) (J.to_list entries)
      |> Result.map List.rev

let metric_scalar = function
  | Counter c -> float_of_int c
  | Gauge v -> v
  | Histogram snap -> float_of_int snap.h_count

let to_line_protocol ?registry () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter n -> Printf.bprintf b "compo,metric=%s count=%di\n" name n
      | Gauge v -> Printf.bprintf b "compo,metric=%s value=%.9g\n" name v
      | Histogram snap ->
          Printf.bprintf b "compo,metric=%s count=%di,sum=%.9g,min=%.9g,max=%.9g"
            name snap.h_count snap.h_sum snap.h_min snap.h_max;
          Array.iter
            (fun (bound, c) ->
              if c > 0 then Printf.bprintf b ",le_%.9g=%di" bound c)
            snap.h_buckets;
          if snap.h_overflow > 0 then
            Printf.bprintf b ",le_inf=%di" snap.h_overflow;
          Buffer.add_char b '\n')
    (snapshot ?registry ());
  Buffer.contents b
