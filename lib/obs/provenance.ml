type cache_outcome = Hit | Miss | Bypass | Off

let cache_outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"
  | Off -> "off"

type hop_kind =
  | Local
  | Follow of {
      via : string;
      link : string;
      transmitter : string;
      permeable : bool;
    }
  | Unbound

type hop = { hop_object : string; hop_type : string; hop_kind : hop_kind }

type read = {
  r_object : string;
  r_attr : string;
  r_hops : hop list;
  r_cache : cache_outcome;
  r_value : string;
  r_trace : string option;
}

let source_of r =
  List.find_map
    (fun h -> match h.hop_kind with Local -> Some h.hop_object | _ -> None)
    r.r_hops

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)

let on = ref false

(* The collector is a single global slot, which is only sound with one
   writer.  Worker domains therefore never record: off the main domain
   the layer reports itself disabled and resolution takes the plain
   (allocation-free) path. *)
(* The server's handler threads live in acceptor domains (never the
   main domain), but every kernel entry there is serialised through one
   gate mutex — so a domain whose kernel calls are externally
   serialised may be granted recording.  The permit is domain-local:
   pool worker domains keep the default [false] and still resolve
   through the plain path. *)
let permit_key = Domain.DLS.new_key (fun () -> false)
let permit_domain () = Domain.DLS.set permit_key true

let enabled () =
  !on && (Domain.is_main_domain () || Domain.DLS.get permit_key)

let enable () = on := true

(* COMPO_PROVENANCE=1 switches the collector on at startup: the
   ablation matrix uses it to measure the recording overhead as a
   configuration axis without threading a flag through every harness. *)
let configure_from_env ?(getenv = Sys.getenv_opt) () =
  match getenv "COMPO_PROVENANCE" with
  | Some ("1" | "true" | "yes") -> on := true
  | Some _ | None -> ()

(* One read in flight at a time: resolution is synchronous and the
   recursion never issues a nested [attr] call, so a single slot (hops
   accumulated in reverse) is enough. *)
type in_flight = {
  mutable f_object : string;
  mutable f_attr : string;
  mutable f_rev_hops : hop list;
  mutable f_open : bool;
}

let flight = { f_object = ""; f_attr = ""; f_rev_hops = []; f_open = false }
let capacity = 64
let finished : read list ref = ref []
let finished_len = ref 0

let clear () =
  flight.f_open <- false;
  flight.f_rev_hops <- [];
  finished := [];
  finished_len := 0

let disable () =
  on := false;
  clear ()

let begin_read ~origin ~attr =
  if enabled () then begin
    flight.f_object <- origin;
    flight.f_attr <- attr;
    flight.f_rev_hops <- [];
    flight.f_open <- true
  end

let add_hop h = if enabled () && flight.f_open then flight.f_rev_hops <- h :: flight.f_rev_hops

let abort_read () =
  if flight.f_open then begin
    flight.f_open <- false;
    flight.f_rev_hops <- []
  end

let finish_read ~cache ~value =
  if enabled () && flight.f_open then begin
    let r =
      {
        r_object = flight.f_object;
        r_attr = flight.f_attr;
        r_hops = List.rev flight.f_rev_hops;
        r_cache = cache;
        r_value = value;
        r_trace = Trace.current_trace ();
      }
    in
    flight.f_open <- false;
    flight.f_rev_hops <- [];
    let keep = if !finished_len >= capacity then capacity - 1 else !finished_len in
    finished := r :: List.filteri (fun i _ -> i < keep) !finished;
    finished_len := keep + 1
  end

let last () = match !finished with r :: _ -> Some r | [] -> None
let recent () = !finished

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_hop ppf ~indent h =
  let pad = String.make indent ' ' in
  match h.hop_kind with
  | Local ->
      Format.fprintf ppf "%s%s : %s  [source: attribute is owned here]"
        pad h.hop_object h.hop_type
  | Unbound ->
      Format.fprintf ppf "%s%s : %s  [unbound: no transmitter -> null]"
        pad h.hop_object h.hop_type
  | Follow { via; link; transmitter; permeable } ->
      Format.fprintf ppf
        "%s%s : %s@,%s  via %s (link %s)  permeability: %s@,%s  -> transmitter %s"
        pad h.hop_object h.hop_type pad via link
        (if permeable then "inherits" else "blocked")
        pad transmitter

let pp_hops ppf hops =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i h ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_hop ppf ~indent:(2 * i) h)
    hops;
  Format.pp_close_box ppf ()

let pp_read ppf r =
  Format.fprintf ppf "@[<v>read %s.%s = %s@,cache: %s@,source: %s%t@,chain:@,%a@]"
    r.r_object r.r_attr r.r_value
    (cache_outcome_to_string r.r_cache)
    (match source_of r with Some s -> s | None -> "none (null)")
    (fun ppf ->
      match r.r_trace with
      | None -> ()
      | Some id -> Format.fprintf ppf "@,trace: %s" id)
    pp_hops r.r_hops
