(* A small dense integer per domain, assigned on first use and stable
   for the domain's lifetime.  Sharded structures (histogram shards,
   resolve-cache shards) index fixed-size arrays with it, so each
   domain owns its slot exclusively and hot-path writes need no
   synchronisation.  Slots are never recycled: a process that spawns
   more than [max_slots] domains overflows, and callers must route
   overflow traffic through their own synchronised fallback. *)

let max_slots = 256
let next = Atomic.make 0
let key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next 1)
let get () = Domain.DLS.get key
let in_range slot = slot < max_slots
