(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    One registry is the single source of truth for runtime behaviour;
    every kernel layer reports into it.  Handles are created once (at
    module initialisation on the instrumentation sites) and incremented
    on the hot paths; an increment is a bounds-free mutation guarded by
    one global flag, so the disabled cost is a single load and branch.

    Collection is off by default.  {!enable} turns the global switch on;
    {!reset} zeroes every registered metric in place, so handles created
    before a reset stay valid (tests rely on this for isolation).

    The registry is domain-safe: counters and gauges are atomics (no
    lost increments under concurrent updates), histograms are sharded
    per domain and merged at snapshot time, and registration is
    serialised.  A snapshot taken while another domain is mid-update
    may miss in-flight increments but never tears a cell. *)

type registry

val create_registry : unit -> registry
(** A private registry, independent of {!default_registry}.  Useful for
    isolating measurements in tests. *)

val default_registry : registry
(** The process-wide registry all instrumentation sites report into. *)

(** {1 Global switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Counters} *)

type counter

val counter : ?registry:registry -> string -> counter
(** Find-or-create the counter [name].  Raises [Invalid_argument] if the
    name is already registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?registry:registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val latency_buckets : float array
(** Default bucket upper bounds for latency histograms, in seconds:
    1us .. 10s on a 1-2.5-5 log scale. *)

val size_buckets : float array
(** Default bucket upper bounds for dimensionless sizes (depth, fan-out,
    extent): 1 .. 100k on a 1-2.5-5 log scale. *)

val histogram : ?registry:registry -> ?buckets:float array -> string -> histogram
(** Find-or-create a histogram with the given bucket upper bounds
    (default {!latency_buckets}).  [buckets] must be strictly increasing;
    it is only consulted on first creation. *)

val observe : histogram -> float -> unit
val observations : histogram -> int
val sum : histogram -> float

(** {1 Snapshot and reset} *)

type hist_snapshot = {
  h_buckets : (float * int) array;  (** (upper bound, count) per bucket *)
  h_overflow : int;                 (** observations above the last bound *)
  h_count : int;
  h_sum : float;
  h_min : float;                    (** [nan] when empty *)
  h_max : float;                    (** [nan] when empty *)
}

val quantile : hist_snapshot -> float -> float
(** Approximate quantile (0..1) from the bucket boundaries; [nan] when
    the histogram is empty. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

val snapshot : ?registry:registry -> unit -> (string * metric) list
(** All registered metrics, sorted by name.  The snapshot is an immutable
    copy: later increments do not alter it. *)

val find : ?registry:registry -> string -> metric option
(** Snapshot of one metric by name. *)

val counter_value : ?registry:registry -> string -> int
(** Current value of the counter [name]; 0 when absent. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every registered metric in place.  Handles stay valid. *)

(** {1 Rendering} *)

val pp_dump : Format.formatter -> (string * metric) list -> unit
(** Human-readable table: counters and gauges one per line, histograms
    with count/mean/p50/p99/max. *)

val dump : ?registry:registry -> unit -> string
(** [pp_dump] of a fresh {!snapshot} as a string. *)

val to_line_protocol : ?registry:registry -> unit -> string
(** One line per metric in an influx-style line protocol:
    [compo,metric=NAME kind=...,count=...,sum=...]. *)

val ratio_string : ?scale:float -> num:int -> den:int -> unit -> string
(** Derived ratio as a percentage string ("82.4%"), or ["n/a"] when the
    denominator is zero — zero-read runs must not print [nan] or divide
    by zero.  [scale] defaults to 100 (percent). *)

(** {1 Exporters}

    Registry names are dotted ([inheritance.cache.hit]); exported names
    sanitize to the exposition grammar under a [compo_] prefix
    ([compo_inheritance_cache_hit]). *)

val to_openmetrics : ?registry:registry -> unit -> string
(** OpenMetrics text exposition of a fresh snapshot: counters as
    [_total] samples, gauges verbatim, histograms with {e cumulative}
    [_bucket{le="..."}] series closed by [+Inf] plus [_sum]/[_count];
    terminated by [# EOF].  [make obs-check] validates this output
    against the format grammar. *)

val to_json : ?registry:registry -> unit -> string
(** Stable JSON snapshot: [{"metrics": [...]}] sorted by name, one object
    per metric with [kind] and its values; histograms carry non-empty
    buckets as [{"le", "count"}] pairs plus [count]/[sum]/[min]/[max]
    ([null] when empty — never [nan]). *)

val snapshot_to_file : ?registry:registry -> string -> unit
(** Write {!to_json} to a file.  The bench harness drops one next to each
    [BENCH_*.json] so runs carry their metric snapshot. *)

val read_snapshot_file : string -> ((string * metric) list, string) result
(** Read a {!snapshot_to_file} file back.  The ablation-matrix runner
    uses this to pull key counters out of a cell subprocess's snapshot;
    histograms are reconstructed from the non-empty buckets the writer
    kept, so {!quantile} remains usable on them. *)

val metric_scalar : metric -> float
(** One headline number per metric for tabular diffing: a counter's
    value, a gauge's value, a histogram's observation count. *)
