(** Tracing: nestable spans with a ring-buffer sink and a slow-op log.

    [with_span name f] times [f] on the wall clock, records a {!span}
    into a bounded ring buffer, feeds the duration into the latency
    histogram registered under [name] in {!Metrics.default_registry},
    and appends to the slow-op log when the duration exceeds the
    configured threshold.  When metrics are disabled ({!Metrics.enabled}
    is [false]) the whole layer is a no-op sink: [f] runs untimed and
    nothing is allocated. *)

type span = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_depth : int;      (** nesting depth at entry; 0 for a root span *)
  sp_start : float;    (** [Unix.gettimeofday] at entry *)
  sp_duration : float; (** wall seconds *)
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a span.  Exceptions propagate; the span is recorded
    either way.  Spans nest: a [with_span] inside [f] records a deeper
    [sp_depth]. *)

val current_depth : unit -> int
(** Nesting depth of the running code (0 outside any span). *)

val note :
  ?attrs:(string * string) list -> string -> start:float -> duration:float ->
  unit
(** Record an externally timed span into the ring {e without} feeding a
    histogram (unlike {!with_span}) — for callers that measure an
    interval themselves and keep their own metric families, e.g. the
    server's gate wait/hold profiler.  No-op while metrics are off. *)

(** {1 Trace context}

    A wire-level trace id propagated from a client.  While set, every
    recorded span carries it as a [("trace", id)] attribute, so the
    kernel spans executed on behalf of one designer operation are
    reconstructable from the ring.  The slot is a single global, not
    domain-local: the server only sets it while holding its kernel gate
    (one kernel entry at a time), and the CLI is single-threaded, so
    there is exactly one writer. *)

val set_current_trace : string option -> unit
val current_trace : unit -> string option

(** {1 Ring buffer} *)

val set_capacity : int -> unit
(** Resize the ring buffer (default 512) and drop its contents. *)

val recent : unit -> span list
(** Buffered spans, most recent first. *)

val recorded : unit -> int
(** Total spans recorded since the last {!clear} (not bounded by the
    ring capacity). *)

(** {1 Slow-op log} *)

val slow_threshold : unit -> float
val set_slow_threshold : float -> unit
(** Spans of duration >= the threshold (seconds) are copied into the
    slow-op log.  Default [infinity] (log nothing).  The log keeps the
    most recent 256 entries. *)

val slow_ops : unit -> span list
(** Slow spans, most recent first. *)

val configure_from_env : ?getenv:(string -> string option) -> unit -> unit
(** Read tracing configuration from the environment: [COMPO_SLOW_MS]
    (slow-op threshold in milliseconds) and [COMPO_TRACE_CAPACITY] (ring
    buffer size; resizing drops buffered spans).  Unset, unparsable or
    out-of-range variables leave the current setting untouched.  The CLI
    calls this at startup; [getenv] (default [Sys.getenv_opt]) is
    injectable for tests. *)

val clear : unit -> unit
(** Drop the ring buffer, the slow-op log and the recorded count.  Does
    not touch the metrics registry. *)

(** {1 Rendering} *)

val pp_span : Format.formatter -> span -> unit
val pp_spans : Format.formatter -> span list -> unit
