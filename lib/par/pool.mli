(** Domain-pool work scheduler: chunked fan-out with deterministic
    merge order.

    The pool keeps a set of long-lived worker domains (grown lazily,
    never shrunk before process exit) behind a shared batch queue.  A
    batch is an array of tasks; the submitting domain enqueues it,
    then {e helps}: submitter and workers race on an atomic chunk
    cursor, so a batch completes even if every pool worker is busy
    with someone else's batch.  Tasks of one batch may run on any
    domain and in any order — determinism is the {e caller's} shape:
    chunk a sequence contiguously, give each task its own result slot,
    and concatenate slots in chunk order ({!filter_list} does exactly
    this, and is the shape `Query.select ~jobs` runs on).

    Observability ([par.*] in {!Compo_obs.Metrics}):
    [par.tasks] parallel batches run; [par.chunks] chunks fanned out;
    [par.chunks.stolen] chunks executed by a pool worker rather than
    the submitter; [par.merge.seconds] deterministic-merge time;
    [par.busy.ratio] busy-time / (wall x jobs) of the last batch;
    [par.workers] live pool workers. *)

val max_jobs : int
(** Hard cap on [jobs] (and therefore on pool workers): 64. *)

val parse_jobs : string -> (int, string) result
(** Strict parse of a user-supplied job count: an integer >= 1 (clamped
    to {!max_jobs}), anything else a one-line error ("must be a positive
    integer (got '...')").  Front ends (CLI flags, server options)
    should use this and report; the lenient {!default_jobs} below stays
    the library-level behaviour. *)

val env_jobs : unit -> (int option, string) result
(** {!parse_jobs} applied to [COMPO_JOBS]; [Ok None] when unset. *)

val default_jobs : unit -> int
(** [COMPO_JOBS] when set to an integer >= 1 (clamped to {!max_jobs}),
    else 1.  Unset, unparsable or out-of-range values mean 1 (library
    behaviour; front ends reject instead via {!parse_jobs}). *)

val effective_jobs : int option -> int
(** Resolve an optional explicit [jobs] against the environment
    default: [Some j] clamps [j] to [1 .. max_jobs], [None] is
    {!default_jobs}. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware can
    actually run in parallel.  Bench gates use it for the low-core
    escape hatch. *)

val run : jobs:int -> (unit -> unit) array -> unit
(** Run every task of the batch, using up to [jobs] domains including
    the caller.  Returns when all tasks have finished.  If any task
    raises, the first exception observed is re-raised after the whole
    batch has drained (remaining tasks still run).  [jobs <= 1] or a
    batch of one task degenerates to a sequential loop on the caller.

    Tasks must be domain-safe: they may run on pool domains and must
    not assume they run on the domain that submitted them. *)

val filter_list : jobs:int -> ('a -> bool) -> 'a list -> 'a list
(** Order-preserving parallel filter: contiguous chunks fan out across
    domains, per-chunk results merge in chunk order, so the output is
    exactly [List.filter pred xs] whenever [pred] is pure.  Small
    inputs (under one chunk of ~16) and [jobs <= 1] run sequentially
    on the caller. *)

val iter_range : jobs:int -> int -> (int -> unit) -> unit
(** [iter_range ~jobs n f] runs [f i] for every [i] in [[0, n)], fanned
    out over the pool in the filters' chunk shape.  [f] must be
    domain-safe and each index must own its writes (distinct result
    slots); there is no merge step and no ordering guarantee between
    chunks.  Small ranges and [jobs <= 1] run sequentially on the
    caller.  The plan layer fills materialized-column cells through
    this. *)

val filteri_list : jobs:int -> (int -> 'a -> bool) -> 'a list -> 'a list
(** {!filter_list} with the element's position passed to the predicate
    (the position in [xs], stable across chunking).  Same chunk shape
    and metrics as {!filter_list}; compiled column scans use the index
    to address materialized value arrays. *)

val shutdown : unit -> unit
(** Stop and join every pool worker.  Registered [at_exit]; safe to
    call more than once.  A later {!run} restarts the pool. *)
