(* A hand-rolled domain pool: stdlib Domain/Atomic/Mutex/Condition
   only.  One process-wide pool, one batch queue.  Workers peek the
   head batch and race the submitter on its atomic cursor; an
   exhausted head is popped and the next batch surfaces.  The
   submitter always helps, so progress never depends on pool workers
   being free — in particular several domains may submit batches
   concurrently (the stress test's reader domains all do). *)

module Metrics = Compo_obs.Metrics

let m_tasks = Metrics.counter "par.tasks"
let m_chunks = Metrics.counter "par.chunks"
let m_steals = Metrics.counter "par.chunks.stolen"
let h_merge = Metrics.histogram "par.merge.seconds"
let g_busy = Metrics.gauge "par.busy.ratio"
let g_workers = Metrics.gauge "par.workers"

let max_jobs = 64

(* strict validation for front ends: zero, negative and non-numeric job
   counts are user errors there, not silent fallbacks to 1 *)
let parse_jobs raw =
  let raw = String.trim raw in
  match int_of_string_opt raw with
  | Some n when n >= 1 -> Ok (min n max_jobs)
  | Some _ | None ->
      Error (Printf.sprintf "must be a positive integer (got '%s')" raw)

let env_jobs () =
  match Sys.getenv_opt "COMPO_JOBS" with
  | None -> Ok None
  | Some raw -> Result.map Option.some (parse_jobs raw)

let default_jobs () =
  match Sys.getenv_opt "COMPO_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> min n max_jobs
      | Some _ | None -> 1)
  | None -> 1

let effective_jobs = function
  | Some j -> max 1 (min j max_jobs)
  | None -> default_jobs ()

let available_cores () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

type batch = {
  b_tasks : (unit -> unit) array;
  b_times : float array;        (* per-task busy seconds, disjoint slots *)
  b_next : int Atomic.t;        (* next task index to claim *)
  b_done : int Atomic.t;        (* tasks finished *)
  b_total : int;
  b_error : exn option Atomic.t;
  b_m : Mutex.t;
  b_c : Condition.t;
  mutable b_finished : bool;
}

let exec_task b i =
  let t0 = Unix.gettimeofday () in
  (try b.b_tasks.(i) ()
   with e -> ignore (Atomic.compare_and_set b.b_error None (Some e)));
  b.b_times.(i) <- Unix.gettimeofday () -. t0;
  let finished = Atomic.fetch_and_add b.b_done 1 + 1 in
  if finished = b.b_total then begin
    Mutex.lock b.b_m;
    b.b_finished <- true;
    Condition.broadcast b.b_c;
    Mutex.unlock b.b_m
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)

let pm = Mutex.create ()
let pc = Condition.create ()
let queue : batch Queue.t = Queue.create ()
let handles : unit Domain.t list ref = ref [] (* guarded by [pm] *)
let stopping = ref false (* guarded by [pm] *)

let rec worker_loop () =
  Mutex.lock pm;
  while Queue.is_empty queue && not !stopping do
    Condition.wait pc pm
  done;
  if Queue.is_empty queue then Mutex.unlock pm (* stopping: exit *)
  else begin
    let b = Queue.peek queue in
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i >= b.b_total then begin
      (* exhausted head; pop it (unless a peer already did) *)
      (match Queue.peek_opt queue with
      | Some b' when b' == b -> ignore (Queue.pop queue)
      | _ -> ());
      Mutex.unlock pm
    end
    else begin
      Mutex.unlock pm;
      Metrics.incr m_steals;
      exec_task b i
    end;
    worker_loop ()
  end

let ensure_workers n =
  Mutex.lock pm;
  if !stopping then stopping := false;
  while List.length !handles < min n (max_jobs - 1) do
    handles := Domain.spawn worker_loop :: !handles
  done;
  Metrics.set_gauge g_workers (float_of_int (List.length !handles));
  Mutex.unlock pm

let shutdown () =
  Mutex.lock pm;
  stopping := true;
  let hs = !handles in
  handles := [];
  Condition.broadcast pc;
  Mutex.unlock pm;
  List.iter Domain.join hs

let () = at_exit shutdown

let run ~jobs tasks =
  let total = Array.length tasks in
  if total = 0 then ()
  else if jobs <= 1 || total = 1 then Array.iter (fun f -> f ()) tasks
  else begin
    let b =
      {
        b_tasks = tasks;
        b_times = Array.make total 0.;
        b_next = Atomic.make 0;
        b_done = Atomic.make 0;
        b_total = total;
        b_error = Atomic.make None;
        b_m = Mutex.create ();
        b_c = Condition.create ();
        b_finished = false;
      }
    in
    Metrics.incr m_tasks;
    Metrics.add m_chunks total;
    ensure_workers (min jobs max_jobs - 1);
    let t0 = Unix.gettimeofday () in
    Mutex.lock pm;
    Queue.push b queue;
    Condition.broadcast pc;
    Mutex.unlock pm;
    (* help: race the workers on the cursor *)
    let rec help () =
      let i = Atomic.fetch_and_add b.b_next 1 in
      if i < total then begin
        exec_task b i;
        help ()
      end
    in
    help ();
    Mutex.lock b.b_m;
    while not b.b_finished do
      Condition.wait b.b_c b.b_m
    done;
    Mutex.unlock b.b_m;
    if Metrics.enabled () then begin
      let wall = Unix.gettimeofday () -. t0 in
      let busy = Array.fold_left ( +. ) 0. b.b_times in
      if wall > 0. then
        Metrics.set_gauge g_busy (busy /. (wall *. float_of_int jobs))
    end;
    match Atomic.get b.b_error with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Deterministic order-preserving filter                               *)

let min_chunk = 16
let chunks_per_job = 4

let filter_list ~jobs pred xs =
  if jobs <= 1 then List.filter pred xs
  else begin
    let arr = Array.of_list xs in
    let len = Array.length arr in
    let nchunks =
      max 1 (min (jobs * chunks_per_job) ((len + min_chunk - 1) / min_chunk))
    in
    if nchunks <= 1 then List.filter pred xs
    else begin
      let results = Array.make nchunks [] in
      let base = len / nchunks and extra = len mod nchunks in
      (* chunk k covers [start k, start (k+1)): first [extra] chunks get
         one element more, so sizes differ by at most one *)
      let start k = (k * base) + min k extra in
      let tasks =
        Array.init nchunks (fun k () ->
            let lo = start k and hi = start (k + 1) in
            let kept = ref [] in
            for i = hi - 1 downto lo do
              if pred arr.(i) then kept := arr.(i) :: !kept
            done;
            results.(k) <- !kept)
      in
      run ~jobs tasks;
      let t0 = Unix.gettimeofday () in
      let out = List.concat (Array.to_list results) in
      Metrics.observe h_merge (Unix.gettimeofday () -. t0);
      out
    end
  end

(* side-effecting fan-out over [0, n): same chunk arithmetic as the
   filters; used by the plan layer to fill materialized-column cells in
   parallel (each index owns a distinct result slot, so no merge) *)
let iter_range ~jobs n f =
  if jobs <= 1 || n < 2 * min_chunk then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let nchunks =
      max 1 (min (jobs * chunks_per_job) ((n + min_chunk - 1) / min_chunk))
    in
    if nchunks <= 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let base = n / nchunks and extra = n mod nchunks in
      let start k = (k * base) + min k extra in
      let tasks =
        Array.init nchunks (fun k () ->
            for i = start k to start (k + 1) - 1 do
              f i
            done)
      in
      run ~jobs tasks
    end
  end

(* index-aware twin of [filter_list]: same chunk arithmetic, so the two
   produce identical par.* metric streams for identical inputs (the CLI
   cram tests pin par.chunks totals) *)
let filteri_list ~jobs pred xs =
  if jobs <= 1 then List.filteri pred xs
  else begin
    let arr = Array.of_list xs in
    let len = Array.length arr in
    let nchunks =
      max 1 (min (jobs * chunks_per_job) ((len + min_chunk - 1) / min_chunk))
    in
    if nchunks <= 1 then List.filteri pred xs
    else begin
      let results = Array.make nchunks [] in
      let base = len / nchunks and extra = len mod nchunks in
      let start k = (k * base) + min k extra in
      let tasks =
        Array.init nchunks (fun k () ->
            let lo = start k and hi = start (k + 1) in
            let kept = ref [] in
            for i = hi - 1 downto lo do
              if pred i arr.(i) then kept := arr.(i) :: !kept
            done;
            results.(k) <- !kept)
      in
      run ~jobs tasks;
      let t0 = Unix.gettimeofday () in
      let out = List.concat (Array.to_list results) in
      Metrics.observe h_merge (Unix.gettimeofday () -. t0);
      out
    end
  end
