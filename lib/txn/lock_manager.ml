open Compo_core

module Obs = Compo_obs.Metrics

let m_acquire = Obs.counter "lock.acquire"
let m_wait = Obs.counter "lock.wait"
let m_conflict = Obs.counter "lock.conflict"
let m_deadlock = Obs.counter "lock.deadlock"
let m_release = Obs.counter "lock.release"

type txn_id = int

type t = {
  (* object -> holders *)
  table : (txn_id * Lock.mode) list ref Surrogate.Tbl.t;
  (* txn -> objects it holds locks on *)
  held : (txn_id, Surrogate.Set.t ref) Hashtbl.t;
  (* waits-for edges *)
  waiting : (txn_id, txn_id list) Hashtbl.t;
}

let create () =
  {
    table = Surrogate.Tbl.create 256;
    held = Hashtbl.create 16;
    waiting = Hashtbl.create 16;
  }

let holders t s =
  match Surrogate.Tbl.find_opt t.table s with Some l -> !l | None -> []

let holds t ~txn s = List.assoc_opt txn (holders t s)

let locks_of t ~txn =
  match Hashtbl.find_opt t.held txn with
  | None -> []
  | Some set ->
      Surrogate.Set.fold
        (fun s acc ->
          match holds t ~txn s with Some m -> (s, m) :: acc | None -> acc)
        !set []

let lock_count t =
  Surrogate.Tbl.fold (fun _ l acc -> acc + List.length !l) t.table 0

let waits_for t ~txn = Option.value ~default:[] (Hashtbl.find_opt t.waiting txn)

(* cycle detection in the waits-for graph, starting from [txn] *)
let would_deadlock t ~txn =
  let rec reachable visited from =
    if List.mem from visited then visited
    else
      let visited = from :: visited in
      List.fold_left reachable visited (waits_for t ~txn:from)
  in
  let downstream =
    List.fold_left reachable [] (waits_for t ~txn)
  in
  List.mem txn downstream

let record_entry t ~txn s mode =
  let cell =
    match Surrogate.Tbl.find_opt t.table s with
    | Some l -> l
    | None ->
        let l = ref [] in
        Surrogate.Tbl.replace t.table s l;
        l
  in
  cell := (txn, mode) :: List.remove_assoc txn !cell;
  let set =
    match Hashtbl.find_opt t.held txn with
    | Some set -> set
    | None ->
        let set = ref Surrogate.Set.empty in
        Hashtbl.replace t.held txn set;
        set
  in
  set := Surrogate.Set.add s !set

let acquire t ~txn s mode =
  Obs.incr m_acquire;
  let others = List.filter (fun (id, _) -> id <> txn) (holders t s) in
  let requested =
    match holds t ~txn s with
    | Some held -> Lock.supremum held mode
    | None -> mode
  in
  let conflicting =
    List.filter (fun (_, m) -> not (Lock.compatible requested m)) others
  in
  match conflicting with
  | [] ->
      Hashtbl.remove t.waiting txn;
      record_entry t ~txn s requested;
      Ok `Granted
  | blockers ->
      Obs.incr m_conflict;
      let blocker_ids = List.map fst blockers in
      Hashtbl.replace t.waiting txn blocker_ids;
      if would_deadlock t ~txn then begin
        Obs.incr m_deadlock;
        Hashtbl.remove t.waiting txn;
        Error
          (Errors.Lock_error
             (Printf.sprintf
                "deadlock: transaction %d waiting for %s on %s closes a cycle"
                txn (Lock.to_string mode) (Surrogate.to_string s)))
      end
      else begin
        Obs.incr m_wait;
        Ok (`Blocked blocker_ids)
      end

let acquire_exn t ~txn s mode =
  match acquire t ~txn s mode with
  | Ok `Granted -> ()
  | Ok (`Blocked blockers) ->
      raise
        (Errors.Compo_error
           (Errors.Lock_error
              (Printf.sprintf "transaction %d blocked on %s (held by %s)" txn
                 (Surrogate.to_string s)
                 (String.concat ", " (List.map string_of_int blockers)))))
  | Error e -> raise (Errors.Compo_error e)

let release_all t ~txn =
  Obs.incr m_release;
  (match Hashtbl.find_opt t.held txn with
  | None -> ()
  | Some set ->
      Surrogate.Set.iter
        (fun s ->
          match Surrogate.Tbl.find_opt t.table s with
          | None -> ()
          | Some cell ->
              cell := List.remove_assoc txn !cell;
              if !cell = [] then Surrogate.Tbl.remove t.table s)
        !set);
  Hashtbl.remove t.held txn;
  Hashtbl.remove t.waiting txn;
  (* drop waits-for edges pointing at the finished transaction *)
  Hashtbl.iter
    (fun waiter blockers ->
      if List.mem txn blockers then
        Hashtbl.replace t.waiting waiter (List.filter (fun b -> b <> txn) blockers))
    (Hashtbl.copy t.waiting)
