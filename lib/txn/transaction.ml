open Compo_core

let log_src = Logs.Src.create "compo.txn" ~doc:"compo transactions"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Obs = Compo_obs.Metrics

let m_begin = Obs.counter "txn.begin"
let m_commit = Obs.counter "txn.commit"
let m_abort = Obs.counter "txn.abort"

type manager = {
  mg_store : Store.t;
  mg_locks : Lock_manager.t;
  mg_access : Access_control.t;
  mutable mg_next : int;
}

let create_manager ?access store =
  {
    mg_store = store;
    mg_locks = Lock_manager.create ();
    mg_access = Option.value ~default:(Access_control.create ()) access;
    mg_next = 1;
  }

let store_of mg = mg.mg_store
let lock_manager mg = mg.mg_locks
let access_control mg = mg.mg_access

type status = Active | Committed | Aborted

type t = {
  txn_id : int;
  txn_user : string;
  mutable txn_status : status;
  mutable txn_undo : (unit -> unit) list;
  mutable txn_stamps : (Surrogate.t * string) list;
      (* staleness stamping of dependent inheritance links is deferred to
         commit: an aborted update never happened, so it must not flag
         inheritors for adaptation *)
}

let begin_txn mg ~user =
  let id = mg.mg_next in
  mg.mg_next <- id + 1;
  Obs.incr m_begin;
  Log.info (fun m -> m "begin transaction %d (user %s)" id user);
  { txn_id = id; txn_user = user; txn_status = Active; txn_undo = []; txn_stamps = [] }

let id txn = txn.txn_id
let user txn = txn.txn_user
let status txn = txn.txn_status
let ( let* ) = Result.bind

let check_active txn =
  match txn.txn_status with
  | Active -> Ok ()
  | Committed | Aborted ->
      Error (Errors.Lock_error (Printf.sprintf "transaction %d is not active" txn.txn_id))

let commit mg txn =
  Compo_obs.Trace.with_span "txn.commit.latency" @@ fun () ->
  let* () = check_active txn in
  Obs.incr m_commit;
  Log.info (fun m -> m "commit transaction %d" txn.txn_id);
  (* the updates are now permanent: stamp dependent inheritance links *)
  List.iter
    (fun (s, attr) ->
      let note = Printf.sprintf "transmitter attribute %s updated" attr in
      let (_ : Surrogate.t list) =
        Inheritance.stamp_stale mg.mg_store s ~attr ~note
      in
      ())
    (List.rev txn.txn_stamps);
  txn.txn_stamps <- [];
  Lock_manager.release_all mg.mg_locks ~txn:txn.txn_id;
  txn.txn_status <- Committed;
  Ok ()

let abort mg txn =
  let* () = check_active txn in
  Obs.incr m_abort;
  Log.info (fun m ->
      m "abort transaction %d (%d undo entries)" txn.txn_id
        (List.length txn.txn_undo));
  (* undo entries were prepended, so the list runs newest-first *)
  List.iter (fun undo -> undo ()) txn.txn_undo;
  txn.txn_undo <- [];
  txn.txn_stamps <- [];
  (* roll the resolve-cache generation forward: a plain read between this
     transaction's write and its abort may have memoised a value the undo
     just took back, and scoped bumps cannot be trusted to cover every
     side effect of the undo closures *)
  Store.invalidate_resolve_cache mg.mg_store;
  Lock_manager.release_all mg.mg_locks ~txn:txn.txn_id;
  txn.txn_status <- Aborted;
  Ok ()

let push_undo txn f = txn.txn_undo <- f :: txn.txn_undo

(* Acquire a lock for [txn], consulting access control first.  Reads are
   allowed under Read_only; writes need Read_write. *)
let acquire mg txn s mode =
  match Access_control.cap_mode mg.mg_access ~user:txn.txn_user s mode with
  | None ->
      Error
        (Errors.Access_denied
           (Printf.sprintf "user %s may not access %s" txn.txn_user
              (Surrogate.to_string s)))
  | Some capped when Lock.stronger_or_equal capped mode || capped = mode -> (
      match Lock_manager.acquire mg.mg_locks ~txn:txn.txn_id s mode with
      | Ok `Granted -> Ok ()
      | Ok (`Blocked blockers) ->
          Log.debug (fun m ->
              m "transaction %d blocked on %s %a (held by %s)" txn.txn_id
                (Lock.to_string mode) Surrogate.pp s
                (String.concat ", " (List.map string_of_int blockers)));
          Error
            (Errors.Lock_error
               (Printf.sprintf "blocked on %s (held by transaction %s)"
                  (Surrogate.to_string s)
                  (String.concat ", " (List.map string_of_int blockers))))
      | Error e ->
          Log.warn (fun m ->
              m "transaction %d: %s" txn.txn_id (Errors.to_string e));
          Error e)
  | Some _capped ->
      (* the user's rights do not cover the requested mode *)
      Error
        (Errors.Access_denied
           (Printf.sprintf "user %s has read-only access to %s" txn.txn_user
              (Surrogate.to_string s)))

(* Hierarchical (intention) locking: S or X on an entity first takes IS
   or IX on every enclosing complex object, outermost first.  A designer
   holding S on a whole composite thereby conflicts with anyone writing
   one of its subobjects (X under IX), at composite granularity -- the
   behaviour section 6's expansion locking presumes. *)
let owner_chain mg s =
  let rec go acc s =
    match Store.get mg.mg_store s with
    | Ok { Store.owner = Some o; _ } -> go (o :: acc) o
    | Ok _ | Error _ -> acc
  in
  go [] s

let acquire_hier mg txn s mode =
  let intention =
    match mode with
    | Lock.S | Lock.IS -> Lock.IS
    | Lock.X | Lock.IX | Lock.SIX -> Lock.IX
  in
  let* () =
    List.fold_left
      (fun acc ancestor ->
        let* () = acc in
        acquire mg txn ancestor intention)
      (Ok ()) (owner_chain mg s)
  in
  acquire mg txn s mode

(* Run [f] with hooks that lock every entity the operation touches.  Reads
   of inherited data notify per transmitter hop, which is exactly the
   paper's lock inheritance.  The whole window — install, operate,
   remove — runs under the store's write latch: hooks are process-wide
   store state, and a parallel select latching in mid-window would see
   them (and would have to fall back to a sequential plan for nothing). *)
let with_lock_hooks mg txn f =
  Store.exclusively mg.mg_store @@ fun () ->
  let rh =
    Store.add_read_hook mg.mg_store (fun s ->
        match acquire_hier mg txn s Lock.S with
        | Ok () -> ()
        | Error e -> raise (Errors.Compo_error e))
  in
  let wh =
    Store.add_write_hook mg.mg_store (fun s ->
        match acquire_hier mg txn s Lock.X with
        | Ok () -> ()
        | Error e -> raise (Errors.Compo_error e))
  in
  let result = try f () with Errors.Compo_error e -> Error e in
  Store.remove_hook mg.mg_store rh;
  Store.remove_hook mg.mg_store wh;
  result

let get_attr mg txn s name =
  let* () = check_active txn in
  with_lock_hooks mg txn (fun () -> Inheritance.attr mg.mg_store s name)

let subclass_members mg txn s name =
  let* () = check_active txn in
  with_lock_hooks mg txn (fun () -> Inheritance.subclass_members mg.mg_store s name)

let set_attr mg txn s name value =
  let* () = check_active txn in
  let* old = Store.local_attr mg.mg_store s name in
  let* () =
    with_lock_hooks mg txn (fun () -> Store.set_attr mg.mg_store s name value)
  in
  txn.txn_stamps <- (s, name) :: txn.txn_stamps;
  push_undo txn (fun () -> ignore (Store.set_attr mg.mg_store s name old));
  Ok ()

let created mg txn s =
  (* lock the new entity exclusively and undo by force-deleting it *)
  let* () = acquire_hier mg txn s Lock.X in
  push_undo txn (fun () -> ignore (Store.delete mg.mg_store ~force:true s));
  Ok s

let new_object mg txn ?cls ~ty ?(attrs = []) () =
  let* () = check_active txn in
  let* s =
    with_lock_hooks mg txn (fun () ->
        Store.create_object mg.mg_store ?cls ~ty attrs)
  in
  created mg txn s

let new_subobject mg txn ~parent ~subclass ?(attrs = []) () =
  let* () = check_active txn in
  let* s =
    with_lock_hooks mg txn (fun () ->
        Store.create_subobject mg.mg_store ~parent ~subclass attrs)
  in
  created mg txn s

let new_subrel mg txn ~parent ~subrel ~participants ?(attrs = []) () =
  let* () = check_active txn in
  let* s =
    with_lock_hooks mg txn (fun () ->
        Store.create_subrel mg.mg_store ~parent ~subrel ~participants ~attrs ())
  in
  created mg txn s

let bind mg txn ~via ~transmitter ~inheritor () =
  let* () = check_active txn in
  let* () = acquire_hier mg txn inheritor Lock.X in
  (* binding makes the inheritor depend on the transmitter's data *)
  let* () = acquire_hier mg txn transmitter Lock.S in
  let* link =
    with_lock_hooks mg txn (fun () ->
        Inheritance.bind mg.mg_store ~via ~transmitter ~inheritor ())
  in
  push_undo txn (fun () -> ignore (Inheritance.unbind mg.mg_store inheritor));
  Ok link

let unbind mg txn inheritor =
  let* () = check_active txn in
  let* () = acquire_hier mg txn inheritor Lock.X in
  let* b = Inheritance.binding_of mg.mg_store inheritor in
  match b with
  | None ->
      Error
        (Errors.Invalid_binding
           (Surrogate.to_string inheritor ^ " is not bound to a transmitter"))
  | Some { Store.b_via; b_transmitter; _ } ->
      let* () =
        with_lock_hooks mg txn (fun () -> Inheritance.unbind mg.mg_store inheritor)
      in
      push_undo txn (fun () ->
          ignore
            (Inheritance.bind mg.mg_store ~via:b_via ~transmitter:b_transmitter
               ~inheritor ()));
      Ok ()

let lock_expansion mg txn ?max_depth root ~mode =
  let* () = check_active txn in
  let nodes = Lock_inheritance.expansion_lock_set ?max_depth mg.mg_store root in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match Access_control.cap_mode mg.mg_access ~user:txn.txn_user s mode with
        | None ->
            Error
              (Errors.Access_denied
                 (Printf.sprintf "user %s may not access %s in the expansion"
                    txn.txn_user (Surrogate.to_string s)))
        | Some capped -> (
            match Lock_manager.acquire mg.mg_locks ~txn:txn.txn_id s capped with
            | Ok `Granted -> go ((s, capped) :: acc) rest
            | Ok (`Blocked blockers) ->
                Error
                  (Errors.Lock_error
                     (Printf.sprintf "expansion blocked on %s (held by %s)"
                        (Surrogate.to_string s)
                        (String.concat ", " (List.map string_of_int blockers))))
            | Error e -> Error e))
  in
  go [] nodes
