open Compo_core

let ( let* ) = Result.bind
let magic = "COMPO-SNAPSHOT-2"

module Obs = Compo_obs.Metrics
module Failpoint = Compo_faults.Failpoint

let m_write_bytes = Obs.counter "snapshot.write.bytes"

(* Crash points across the write-then-rename commit protocol: a torn
   temporary file must be invisible to recovery, a crash on either side of
   the rename must leave exactly one intact snapshot generation. *)
let fp_tmp_write = Failpoint.register "snapshot.save.tmp_write"
let fp_before_rename = Failpoint.register "snapshot.save.before_rename"
let fp_after_rename = Failpoint.register "snapshot.save.after_rename"

let save ?(epoch = 0) path db =
  Compo_obs.Trace.with_span "snapshot.write" @@ fun () ->
  let schema_blob = Codec.encode_schema (Database.schema db) in
  let store_blob = Codec.encode_store (Database.store db) in
  let b = Codec.Enc.create () in
  Codec.Enc.int b epoch;
  Codec.Enc.string b schema_blob;
  Codec.Enc.string b store_blob;
  let body = Codec.Enc.contents b in
  let crc = Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF in
  let frame = Codec.Enc.create () in
  Codec.Enc.string frame magic;
  Codec.Enc.int frame crc;
  Codec.Enc.string frame body;
  Obs.add m_write_bytes (String.length body);
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun chan ->
        Failpoint.output fp_tmp_write chan (Codec.Enc.contents frame));
    Failpoint.hit fp_before_rename;
    Sys.rename tmp path;
    Failpoint.hit fp_after_rename
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Errors.Io_error msg)

let load_with_epoch path =
  Compo_obs.Trace.with_span "snapshot.load" @@ fun () ->
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error (Errors.Io_error msg)
  | contents ->
      let d = Codec.Dec.of_string contents in
      let* found_magic = Codec.Dec.string d in
      let* () =
        if String.equal found_magic magic then Ok ()
        else Error (Errors.Io_error (path ^ " is not a compo snapshot"))
      in
      let* crc = Codec.Dec.int d in
      let* body = Codec.Dec.string d in
      let* () =
        if Int32.to_int (Codec.crc32 body) land 0xFFFFFFFF = crc then Ok ()
        else Error (Errors.Io_error (path ^ ": snapshot checksum mismatch"))
      in
      let inner = Codec.Dec.of_string body in
      let* epoch = Codec.Dec.int inner in
      let* schema_blob = Codec.Dec.string inner in
      let* store_blob = Codec.Dec.string inner in
      let* schema = Codec.decode_schema schema_blob in
      let* store = Codec.decode_store schema store_blob in
      Ok (Database.of_parts schema store, epoch)

let load path = Result.map fst (load_with_epoch path)
