open Compo_core

let ( let* ) = Result.bind

module Obs = Compo_obs.Metrics

let m_violations = Obs.counter "recovery.fsck.violations"

let sorted_surs ss = List.sort Surrogate.compare ss

let surs_equal a b =
  List.equal Surrogate.equal (sorted_surs a) (sorted_surs b)

let check_db db =
  let store = Database.store db in
  let schema = Database.schema db in
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter (fun s -> say "%s" s) (Store.check_invariants store);
  (* surrogate continuity: replay hands out surrogates sequentially, so a
     live surrogate above the generator's high-water mark means the next
     create would collide with it *)
  let high_water = Surrogate.Gen.current (Store.generator store) in
  Store.iter store (fun e ->
      if Surrogate.to_int e.Store.id > high_water then
        say "surrogate %s is live above the generator high-water mark %d"
          (Surrogate.to_string e.Store.id)
          high_water;
      if Option.is_none (Schema.find schema e.Store.type_name) then
        say "%s has unknown type %s"
          (Surrogate.to_string e.Store.id)
          e.Store.type_name);
  List.iter (fun s -> say "%s" s) (Database.verify_indexes db);
  let found = List.rev !problems in
  Obs.add m_violations (List.length found);
  found

(* Semantic comparison against an oracle.  Local state is compared
   field-by-field; inherited values are compared as the application sees
   them, by resolving every effective attribute down the binding chain on
   both sides. *)
let diff ~oracle db =
  let ost = Database.store oracle and dst = Database.store db in
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let ids st = Store.fold st (fun acc e -> e.Store.id :: acc) [] in
  let oracle_ids = sorted_surs (ids ost) and db_ids = sorted_surs (ids dst) in
  List.iter
    (fun s ->
      if not (Store.mem dst s) then
        say "missing entity %s" (Surrogate.to_string s))
    oracle_ids;
  List.iter
    (fun s ->
      if not (Store.mem ost s) then
        say "extra entity %s" (Surrogate.to_string s))
    db_ids;
  let o_high = Surrogate.Gen.current (Store.generator ost) in
  let d_high = Surrogate.Gen.current (Store.generator dst) in
  if o_high <> d_high then
    say "surrogate generator at %d, oracle at %d" d_high o_high;
  (* entity-local state *)
  Store.iter ost (fun oe ->
      match Store.get dst oe.Store.id with
      | Error _ -> () (* reported as missing above *)
      | Ok de ->
          let id = Surrogate.to_string oe.Store.id in
          if not (String.equal oe.Store.type_name de.Store.type_name) then
            say "%s: type %s, oracle %s" id de.Store.type_name
              oe.Store.type_name;
          if not (Store.Smap.equal Value.equal oe.Store.attrs de.Store.attrs)
          then say "%s: local attributes diverge from oracle" id;
          if
            not
              (Store.Smap.equal Value.equal oe.Store.participants
                 de.Store.participants)
          then say "%s: participants diverge from oracle" id;
          if not (Store.Smap.equal surs_equal oe.Store.subobjs de.Store.subobjs)
          then say "%s: subobject classes diverge from oracle" id;
          if not (Store.Smap.equal surs_equal oe.Store.subrels de.Store.subrels)
          then say "%s: subrelationship classes diverge from oracle" id;
          if not (Option.equal Surrogate.equal oe.Store.owner de.Store.owner)
          then say "%s: owner diverges from oracle" id;
          (match (oe.Store.bound, de.Store.bound) with
          | None, None -> ()
          | Some ob, Some db_b
            when Surrogate.equal ob.Store.b_link db_b.Store.b_link
                 && String.equal ob.Store.b_via db_b.Store.b_via
                 && Surrogate.equal ob.Store.b_transmitter
                      db_b.Store.b_transmitter -> ()
          | Some _, None -> say "%s: binding lost" id
          | None, Some _ -> say "%s: spurious binding" id
          | Some _, Some _ -> say "%s: binding diverges from oracle" id);
          if not (surs_equal oe.Store.inheritor_links de.Store.inheritor_links)
          then say "%s: inheritor links diverge from oracle" id;
          if
            not
              (List.equal String.equal
                 (List.sort String.compare oe.Store.classes_of)
                 (List.sort String.compare de.Store.classes_of))
          then say "%s: class memberships diverge from oracle" id;
          (* resolved values: what a read actually answers, chasing the
             binding chain through the schema's permeability rules *)
          match Schema.effective_attrs (Database.schema oracle) oe.Store.type_name with
          | Error _ -> ()
          | Ok eff ->
              List.iter
                (fun ({ Schema.attr_name; _ }, _) ->
                  match
                    ( Database.get_attr oracle oe.Store.id attr_name,
                      Database.get_attr db oe.Store.id attr_name )
                  with
                  | Ok ov, Ok dv when Value.equal ov dv -> ()
                  | Ok ov, Ok dv ->
                      say "%s.%s resolves to %s, oracle %s" id attr_name
                        (Value.to_string dv) (Value.to_string ov)
                  | Ok _, Error _ -> say "%s.%s no longer resolves" id attr_name
                  | Error _, Ok _ ->
                      say "%s.%s resolves but the oracle's does not" id
                        attr_name
                  | Error _, Error _ -> ())
                eff);
  (* class extents *)
  let o_classes = List.sort String.compare (Store.class_names ost) in
  let d_classes = List.sort String.compare (Store.class_names dst) in
  List.iter
    (fun c ->
      if not (List.mem c d_classes) then say "missing class %s" c)
    o_classes;
  List.iter
    (fun c ->
      if not (List.mem c o_classes) then say "extra class %s" c)
    d_classes;
  List.iter
    (fun c ->
      match (Store.class_members ost c, Store.class_members dst c) with
      | Ok om, Ok dm when surs_equal om dm -> ()
      | Ok _, Ok _ -> say "class %s extent diverges from oracle" c
      | _ -> ())
    o_classes;
  (* schema: replay re-executes the same definitions, so the stored entries
     must match structurally *)
  let entry_name = function
    | Schema.Obj_type o -> o.Schema.ot_name
    | Schema.Rel_type r -> r.Schema.rt_name
    | Schema.Inher_type i -> i.Schema.it_name
  in
  let by_name s =
    List.sort
      (fun a b -> String.compare (entry_name a) (entry_name b))
      (Schema.entries s)
  in
  let o_entries = by_name (Database.schema oracle) in
  let d_entries = by_name (Database.schema db) in
  if List.length o_entries <> List.length d_entries then
    say "schema has %d entries, oracle %d" (List.length d_entries)
      (List.length o_entries)
  else
    List.iter2
      (fun oe de ->
        if oe <> de then say "schema entry %s diverges from oracle" (entry_name oe))
      o_entries d_entries;
  List.rev !problems

type report = {
  fr_dir : string;
  fr_entities : int;
  fr_epoch : int;
  fr_replayed : int;
  fr_clean : bool;
  fr_stale_wal : bool;
  fr_violations : string list;
}

let check_dir dir =
  let* j = Journal.open_dir dir in
  let report =
    {
      fr_dir = dir;
      fr_entities = Store.entity_count (Database.store (Journal.db j));
      fr_epoch = Journal.wal_epoch j;
      fr_replayed = Journal.wal_records_replayed j;
      fr_clean = Journal.recovered_clean j;
      fr_stale_wal = Journal.recovered_from_stale_wal j;
      fr_violations = check_db (Journal.db j);
    }
  in
  Journal.close j;
  Ok report

let pp_report ppf r =
  Format.fprintf ppf "%s: %d entities, epoch %d, %d WAL records replayed@."
    r.fr_dir r.fr_entities r.fr_epoch r.fr_replayed;
  if r.fr_stale_wal then
    Format.fprintf ppf "note: discarded a stale pre-checkpoint WAL@.";
  if not r.fr_clean then
    Format.fprintf ppf "note: skipped a torn WAL tail@.";
  match r.fr_violations with
  | [] -> Format.fprintf ppf "ok: no violations@."
  | vs ->
      List.iter (fun v -> Format.fprintf ppf "violation: %s@." v) vs;
      Format.fprintf ppf "FAILED: %d violations@." (List.length vs)
