(** Durable databases: snapshot + write-ahead log + recovery.

    A journaled database lives in a directory holding [snapshot.bin],
    [wal.log] and a [LOCK] file.  {!open_dir} recovers by loading the
    snapshot (if any) and replaying the log's clean prefix; every mutating
    operation offered here is logged before it is applied.  {!checkpoint}
    collapses the log into a fresh snapshot.

    {2 Epoch pairing}

    Snapshot and log each carry an {e epoch}; a checkpoint cuts the
    snapshot at [epoch + 1] and then truncates the log to a header with
    the same epoch.  Recovery replays the log only when the epochs match:
    a crash between the snapshot rename and the truncation leaves a
    newer snapshot next to the old log, and the mismatch makes recovery
    discard that log as stale instead of re-applying checkpointed
    records (see {!recovered_from_stale_wal}).

    {2 Locking}

    The directory is exclusive: [LOCK] carries an OS advisory lock
    against other processes and an in-process registry rejects a second
    {!open_dir} of the same directory from this process.

    Failpoint sites ([journal.open.before_replay],
    [journal.open.mid_replay], [journal.open.after_replay],
    [journal.checkpoint.begin], [journal.checkpoint.before_truncate],
    [journal.checkpoint.after_truncate]) cover recovery and the
    checkpoint protocol; see {!Compo_faults.Failpoint} and
    docs/DURABILITY.md. *)

open Compo_core

type t

val open_dir : string -> (t, Errors.t) result
(** Creates the directory if needed.  Returns the recovered database
    handle, or an error if the directory is already open (here or in
    another process) or its files are unreadable.  On any failure the
    lock is released. *)

val db : t -> Database.t

val recovered_clean : t -> bool
(** False when recovery skipped a torn WAL tail or header. *)

val recovered_from_stale_wal : t -> bool
(** True when recovery discarded a pre-checkpoint log whose truncation a
    crash outran. *)

val wal_records_replayed : t -> int

val wal_epoch : t -> int
(** Current snapshot/log generation; starts at 0, bumped by
    {!checkpoint}. *)

(** {1 Logged schema definition} *)

val define_domain : t -> string -> Domain.t -> (unit, Errors.t) result
val define_obj_type : t -> Schema.obj_type -> (unit, Errors.t) result
val define_rel_type : t -> Schema.rel_type -> (unit, Errors.t) result
val define_inher_rel_type : t -> Schema.inher_rel_type -> (unit, Errors.t) result

(** {1 Logged mutations} *)

val create_class : t -> name:string -> member_type:string -> (unit, Errors.t) result

val new_object :
  t -> ?cls:string -> ty:string -> ?attrs:(string * Value.t) list -> unit ->
  (Surrogate.t, Errors.t) result

val new_subobject :
  t -> parent:Surrogate.t -> subclass:string -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val new_relationship :
  t -> ty:string -> participants:(string * Value.t) list ->
  ?attrs:(string * Value.t) list -> unit -> (Surrogate.t, Errors.t) result

val new_subrel :
  t -> parent:Surrogate.t -> subrel:string ->
  participants:(string * Value.t) list -> ?attrs:(string * Value.t) list ->
  unit -> (Surrogate.t, Errors.t) result

val set_attr : t -> Surrogate.t -> string -> Value.t -> (unit, Errors.t) result

val bind :
  t -> via:string -> transmitter:Surrogate.t -> inheritor:Surrogate.t -> unit ->
  (Surrogate.t, Errors.t) result

val unbind : t -> Surrogate.t -> (unit, Errors.t) result
val delete : t -> ?force:bool -> Surrogate.t -> (unit, Errors.t) result

(** {1 Maintenance} *)

val checkpoint : t -> (unit, Errors.t) result
(** Write a fresh snapshot at the next epoch and truncate the WAL. *)

val wal_size_bytes : t -> int
(** Bytes of logged records (excludes the epoch header): 0 right after a
    checkpoint. *)

val close : t -> unit
(** Flushes nothing (appends flush eagerly), closes the log channel and
    releases the directory lock. *)

val crash : t -> unit
(** Abandon the handle as a simulated process death: the log channel is
    closed without checkpointing and the lock released so the directory
    can be re-opened.  Used by the crash-recovery torture harness. *)
