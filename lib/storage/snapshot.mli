(** Full-database snapshots: schema and store in one checksummed file.

    A snapshot carries the WAL {e epoch} it was cut at; recovery only
    replays a log whose header matches (see {!Journal}), so a crash
    between the snapshot rename and the log truncation cannot re-apply
    already-checkpointed records.

    Failpoint sites ([snapshot.save.tmp_write],
    [snapshot.save.before_rename], [snapshot.save.after_rename]) cover the
    commit protocol; see {!Compo_faults.Failpoint}. *)

open Compo_core

val save : ?epoch:int -> string -> Database.t -> (unit, Errors.t) result
(** Atomic: writes to a temporary file in the same directory, then
    renames.  [epoch] defaults to 0. *)

val load : string -> (Database.t, Errors.t) result
(** Verifies magic and checksum before decoding. *)

val load_with_epoch : string -> (Database.t * int, Errors.t) result
(** {!load} plus the WAL epoch the snapshot was cut at. *)
