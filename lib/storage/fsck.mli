(** Consistency checking for recovered databases.

    Three layers, each returning one human-readable message per
    violation (an empty list means consistent):

    - {!check_db} audits a single database: the store's structural
      invariants, surrogate-generator continuity (no live surrogate above
      the generator's high-water mark), schema resolution of every
      entity's type, and index/extent agreement.
    - {!diff} compares a recovered database against an in-memory oracle
      semantically: entity sets, local state, ownership, bindings, class
      extents, generator position, and — down inheritance chains — the
      {e resolved} value of every effective attribute.
    - {!check_dir} recovers a journal directory and runs {!check_db} on
      the result, reporting recovery facts alongside the violations.
      This is [compo fsck]. *)

open Compo_core

val check_db : Database.t -> string list

val diff : oracle:Database.t -> Database.t -> string list
(** Violations in [db] relative to [oracle] (extra, missing, or diverging
    state).  Used by the crash-recovery torture harness to match a
    recovered database against a workload prefix. *)

type report = {
  fr_dir : string;
  fr_entities : int;
  fr_epoch : int;  (** snapshot/WAL generation recovered at *)
  fr_replayed : int;  (** WAL records replayed *)
  fr_clean : bool;  (** false when a torn WAL tail or header was skipped *)
  fr_stale_wal : bool;  (** true when a pre-checkpoint WAL was discarded *)
  fr_violations : string list;
}

val check_dir : string -> (report, Errors.t) result
(** Opens the directory (recovering it), audits the result, closes it
    again.  The error case is recovery itself failing — a report with
    violations is [Ok]. *)

val pp_report : Format.formatter -> report -> unit
