open Compo_core

let ( let* ) = Result.bind

module Obs = Compo_obs.Metrics
module Failpoint = Compo_faults.Failpoint

let m_append = Obs.counter "wal.append"
let m_append_bytes = Obs.counter "wal.append.bytes"
let m_replay = Obs.counter "wal.replay"

(* Crash points at every append boundary.  [before_frame] loses the record
   entirely, [frame] can tear or corrupt it on disk, [after_frame] crashes
   with the record durable; [header.write] tears the epoch header a
   truncation writes. *)
let fp_before_frame = Failpoint.register "wal.append.before_frame"
let fp_frame = Failpoint.register "wal.append.frame"
let fp_after_frame = Failpoint.register "wal.append.after_frame"
let fp_header = Failpoint.register "wal.header.write"

type record =
  | Define_domain of { name : string; domain : Domain.t }
  | Define of string
  | Create_class of { name : string; member_type : string }
  | Create_object of {
      cls : string option;
      ty : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subobject of {
      parent : Surrogate.t;
      subclass : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_relationship of {
      ty : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subrel of {
      parent : Surrogate.t;
      subrel : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Set_attr of { target : Surrogate.t; name : string; value : Value.t }
  | Bind of {
      via : string;
      transmitter : Surrogate.t;
      inheritor : Surrogate.t;
      expect : Surrogate.t;
    }
  | Unbind of { inheritor : Surrogate.t }
  | Delete of { target : Surrogate.t; force : bool }

module Enc = Codec.Enc
module Dec = Codec.Dec

let enc_attrs b attrs =
  Enc.list b
    (fun (n, v) ->
      Enc.string b n;
      Codec.encode_value b v)
    attrs

let dec_attrs d =
  Dec.list d (fun () ->
      let* n = Dec.string d in
      let* v = Codec.decode_value d in
      Ok (n, v))

let enc_sur b s = Enc.int b (Surrogate.to_int s)

let dec_sur d =
  let* i = Dec.int d in
  Ok (Surrogate.of_int i)

let encode_record r =
  let b = Enc.create () in
  (match r with
  | Define_domain { name; domain } ->
      Enc.byte b 0;
      Enc.string b name;
      Codec.encode_domain b domain
  | Define entry ->
      Enc.byte b 1;
      Enc.string b entry
  | Create_class { name; member_type } ->
      Enc.byte b 2;
      Enc.string b name;
      Enc.string b member_type
  | Create_object { cls; ty; attrs; expect } ->
      Enc.byte b 3;
      Enc.option b (Enc.string b) cls;
      Enc.string b ty;
      enc_attrs b attrs;
      enc_sur b expect
  | Create_subobject { parent; subclass; attrs; expect } ->
      Enc.byte b 4;
      enc_sur b parent;
      Enc.string b subclass;
      enc_attrs b attrs;
      enc_sur b expect
  | Create_relationship { ty; participants; attrs; expect } ->
      Enc.byte b 5;
      Enc.string b ty;
      enc_attrs b participants;
      enc_attrs b attrs;
      enc_sur b expect
  | Create_subrel { parent; subrel; participants; attrs; expect } ->
      Enc.byte b 6;
      enc_sur b parent;
      Enc.string b subrel;
      enc_attrs b participants;
      enc_attrs b attrs;
      enc_sur b expect
  | Set_attr { target; name; value } ->
      Enc.byte b 7;
      enc_sur b target;
      Enc.string b name;
      Codec.encode_value b value
  | Bind { via; transmitter; inheritor; expect } ->
      Enc.byte b 8;
      Enc.string b via;
      enc_sur b transmitter;
      enc_sur b inheritor;
      enc_sur b expect
  | Unbind { inheritor } ->
      Enc.byte b 9;
      enc_sur b inheritor
  | Delete { target; force } ->
      Enc.byte b 10;
      enc_sur b target;
      Enc.bool b force);
  Enc.contents b

let decode_record payload =
  let d = Dec.of_string payload in
  let* tag = Dec.byte d in
  match tag with
  | 0 ->
      let* name = Dec.string d in
      let* domain = Codec.decode_domain d in
      Ok (Define_domain { name; domain })
  | 1 ->
      let* entry = Dec.string d in
      Ok (Define entry)
  | 2 ->
      let* name = Dec.string d in
      let* member_type = Dec.string d in
      Ok (Create_class { name; member_type })
  | 3 ->
      let* cls = Dec.option d (fun () -> Dec.string d) in
      let* ty = Dec.string d in
      let* attrs = dec_attrs d in
      let* expect = dec_sur d in
      Ok (Create_object { cls; ty; attrs; expect })
  | 4 ->
      let* parent = dec_sur d in
      let* subclass = Dec.string d in
      let* attrs = dec_attrs d in
      let* expect = dec_sur d in
      Ok (Create_subobject { parent; subclass; attrs; expect })
  | 5 ->
      let* ty = Dec.string d in
      let* participants = dec_attrs d in
      let* attrs = dec_attrs d in
      let* expect = dec_sur d in
      Ok (Create_relationship { ty; participants; attrs; expect })
  | 6 ->
      let* parent = dec_sur d in
      let* subrel = Dec.string d in
      let* participants = dec_attrs d in
      let* attrs = dec_attrs d in
      let* expect = dec_sur d in
      Ok (Create_subrel { parent; subrel; participants; attrs; expect })
  | 7 ->
      let* target = dec_sur d in
      let* name = Dec.string d in
      let* value = Codec.decode_value d in
      Ok (Set_attr { target; name; value })
  | 8 ->
      let* via = Dec.string d in
      let* transmitter = dec_sur d in
      let* inheritor = dec_sur d in
      let* expect = dec_sur d in
      Ok (Bind { via; transmitter; inheritor; expect })
  | 9 ->
      let* inheritor = dec_sur d in
      Ok (Unbind { inheritor })
  | 10 ->
      let* target = dec_sur d in
      let* force = Dec.bool d in
      Ok (Delete { target; force })
  | t -> Error (Errors.Io_error (Printf.sprintf "bad WAL record tag %d" t))

(* file: [magic: 8 bytes][epoch: 8 bytes LE] then frames.  The epoch pairs
   the log with the snapshot generation it continues (Journal.checkpoint
   bumps it); recovery discards a log whose epoch does not match the
   snapshot's, which closes the crash window between the snapshot rename
   and the truncation. *)
let magic = "COMPOWAL"
let header_len = 16

let write_header chan ~epoch =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int epoch);
  Failpoint.output fp_header chan (Bytes.to_string b);
  Out_channel.flush chan

(* frame: [payload length: 8 bytes LE][crc32: 8 bytes LE][payload] *)
let append chan r =
  (* the span histogram lives under .latency; "wal.append" itself stays a
     plain counter so record counts line up with journal entries *)
  Compo_obs.Trace.with_span "wal.append.latency" @@ fun () ->
  let payload = encode_record r in
  let header = Enc.create () in
  Enc.int header (String.length payload);
  Enc.int header (Int32.to_int (Codec.crc32 payload) land 0xFFFFFFFF);
  Failpoint.hit fp_before_frame;
  (* header and payload go out as one buffer so a torn-write failpoint can
     land the crash at any byte of the frame *)
  Failpoint.output fp_frame chan (Enc.contents header ^ payload);
  Out_channel.flush chan;
  Failpoint.hit fp_after_frame;
  Obs.incr m_append;
  Obs.add m_append_bytes (header_len + String.length payload)

type replay = {
  rp_epoch : int option;
  rp_records : record list;
  rp_clean : bool;
  rp_clean_bytes : int;
}

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ ->
      { rp_epoch = None; rp_records = []; rp_clean = true; rp_clean_bytes = 0 }
  | "" ->
      { rp_epoch = None; rp_records = []; rp_clean = true; rp_clean_bytes = 0 }
  | contents when
      String.length contents < header_len
      || not (String.equal (String.sub contents 0 8) magic) ->
      (* torn or corrupt epoch header: nothing in this file is trustworthy *)
      { rp_epoch = None; rp_records = []; rp_clean = false; rp_clean_bytes = 0 }
  | contents ->
      let epoch = Int64.to_int (String.get_int64_le contents 8) in
      let len = String.length contents in
      let finish acc clean pos =
        {
          rp_epoch = Some epoch;
          rp_records = List.rev acc;
          rp_clean = clean;
          rp_clean_bytes = pos;
        }
      in
      let rec go acc pos =
        if pos = len then finish acc true pos
        else if pos + 16 > len then finish acc false pos
        else
          let payload_len = Int64.to_int (String.get_int64_le contents pos) in
          let crc = Int64.to_int (String.get_int64_le contents (pos + 8)) in
          (* the length bound is phrased as a subtraction: a corrupt header
             can claim a near-max_int payload, and [pos + 16 + payload_len]
             would overflow past the check into String.sub *)
          if payload_len < 0 || payload_len > len - pos - 16 then
            finish acc false pos
          else
            let payload = String.sub contents (pos + 16) payload_len in
            if Int32.to_int (Codec.crc32 payload) land 0xFFFFFFFF <> crc then
              finish acc false pos
            else
              match decode_record payload with
              | Ok r -> go (r :: acc) (pos + 16 + payload_len)
              | Error _ -> finish acc false pos
      in
      go [] header_len

let check_expected what expect got =
  if Surrogate.equal expect got then Ok ()
  else
    Error
      (Errors.Io_error
         (Printf.sprintf "WAL replay diverged: %s produced %s, expected %s" what
            (Surrogate.to_string got) (Surrogate.to_string expect)))

let apply db r =
  Obs.incr m_replay;
  match r with
  | Define_domain { name; domain } -> Database.define_domain db name domain
  | Define blob -> (
      let d = Dec.of_string blob in
      let* entry = Codec.decode_entry d in
      match entry with
      | Schema.Obj_type o -> Database.define_obj_type db o
      | Schema.Rel_type rt -> Database.define_rel_type db rt
      | Schema.Inher_type it -> Database.define_inher_rel_type db it)
  | Create_class { name; member_type } -> Database.create_class db ~name ~member_type
  | Create_object { cls; ty; attrs; expect } ->
      let* s = Database.new_object db ?cls ~ty ~attrs () in
      check_expected "create-object" expect s
  | Create_subobject { parent; subclass; attrs; expect } ->
      let* s = Database.new_subobject db ~parent ~subclass ~attrs () in
      check_expected "create-subobject" expect s
  | Create_relationship { ty; participants; attrs; expect } ->
      let* s = Database.new_relationship db ~ty ~participants ~attrs () in
      check_expected "create-relationship" expect s
  | Create_subrel { parent; subrel; participants; attrs; expect } ->
      let* s = Database.new_subrel db ~parent ~subrel ~participants ~attrs () in
      check_expected "create-subrel" expect s
  | Set_attr { target; name; value } -> Database.set_attr db target name value
  | Bind { via; transmitter; inheritor; expect } ->
      let* link = Database.bind db ~via ~transmitter ~inheritor () in
      check_expected "bind" expect link
  | Unbind { inheritor } -> Database.unbind db inheritor
  | Delete { target; force } -> Database.delete db ~force target
