open Compo_core

let log_src = Logs.Src.create "compo.journal" ~doc:"compo durability"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Failpoint = Compo_faults.Failpoint

let ( let* ) = Result.bind

let m_checkpoint = Compo_obs.Metrics.counter "journal.checkpoint"
let m_recover = Compo_obs.Metrics.counter "recovery.open"
let m_replayed = Compo_obs.Metrics.counter "recovery.records.replayed"
let m_torn = Compo_obs.Metrics.counter "recovery.torn_tail"
let m_stale = Compo_obs.Metrics.counter "recovery.stale_wal"

(* Crash points around recovery itself (recovery must be re-runnable: it
   only reads until the channel swap at the very end) and around the
   checkpoint's snapshot-then-truncate sequence. *)
let fp_open_before_replay = Failpoint.register "journal.open.before_replay"
let fp_open_mid_replay = Failpoint.register "journal.open.mid_replay"
let fp_open_after_replay = Failpoint.register "journal.open.after_replay"
let fp_ckpt_begin = Failpoint.register "journal.checkpoint.begin"
let fp_ckpt_before_truncate = Failpoint.register "journal.checkpoint.before_truncate"
let fp_ckpt_after_truncate = Failpoint.register "journal.checkpoint.after_truncate"

type t = {
  dir : string;
  jdb : Database.t;
  mutable chan : Out_channel.t;
  mutable epoch : int;
  lock_fd : Unix.file_descr;
  lock_key : int * int;
  clean : bool;
  replayed : int;
  stale_wal : bool;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let wal_path dir = Filename.concat dir "wal.log"
let lock_path dir = Filename.concat dir "LOCK"

(* Directories open in this process, keyed by the lock file's (dev, ino).
   POSIX record locks do not conflict within one process, so the table is
   what makes a second [open_dir] on the same directory fail instead of
   silently double-writing the log. *)
let open_dirs : (int * int, unit) Hashtbl.t = Hashtbl.create 8

let acquire_lock dir =
  let path = lock_path dir in
  match Unix.openfile path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Errors.Io_error (path ^ ": " ^ Unix.error_message err))
  | fd -> (
      let st = Unix.fstat fd in
      let key = (st.Unix.st_dev, st.Unix.st_ino) in
      if Hashtbl.mem open_dirs key then begin
        Unix.close fd;
        Error
          (Errors.Io_error
             (dir ^ " is already open as a journal in this process"))
      end
      else
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () ->
            Hashtbl.replace open_dirs key ();
            Ok (fd, key)
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Error
              (Errors.Io_error
                 (dir ^ " is locked by another journal process")))

let release_lock fd key =
  Hashtbl.remove open_dirs key;
  try Unix.close fd with Unix.Unix_error _ -> ()

let open_dir dir =
  Compo_obs.Trace.with_span "journal.recover" @@ fun () ->
  let* () =
    match Sys.is_directory dir with
    | true -> Ok ()
    | false -> Error (Errors.Io_error (dir ^ " exists and is not a directory"))
    | exception Sys_error _ -> (
        match Sys.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Sys_error msg -> Error (Errors.Io_error msg))
  in
  let* lock_fd, lock_key = acquire_lock dir in
  (* everything below must release the lock on failure — including a
     simulated crash raised by a recovery failpoint *)
  let guarded =
    try
      Compo_obs.Metrics.incr m_recover;
      (* a checkpoint that crashed mid-save can leave a torn temporary
         behind; it was never renamed, so it holds nothing durable *)
      let tmp = snapshot_path dir ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp;
      let* db, snap_epoch =
        if Sys.file_exists (snapshot_path dir) then
          Snapshot.load_with_epoch (snapshot_path dir)
        else Ok (Database.create (), 0)
      in
      let* () = Failpoint.guard fp_open_before_replay in
      let { Wal.rp_epoch; rp_records; rp_clean; rp_clean_bytes } =
        Wal.read_file (wal_path dir)
      in
      (* the log continues exactly one snapshot generation; any other
         epoch is a leftover from before a checkpoint whose truncation the
         crash outran, and replaying it against the newer snapshot would
         diverge *)
      let records, clean, stale_wal =
        match rp_epoch with
        | None -> ([], rp_clean, false)
        | Some e when e = snap_epoch -> (rp_records, rp_clean, false)
        | Some _ -> ([], true, true)
      in
      let* replayed =
        List.fold_left
          (fun acc r ->
            let* n = acc in
            Failpoint.hit fp_open_mid_replay;
            let* () = Wal.apply db r in
            Ok (n + 1))
          (Ok 0) records
      in
      Failpoint.hit fp_open_after_replay;
      Compo_obs.Metrics.add m_replayed replayed;
      if stale_wal then begin
        Compo_obs.Metrics.incr m_stale;
        Log.warn (fun m ->
            m "%s: stale pre-checkpoint WAL discarded during recovery" dir)
      end;
      if not clean then begin
        Compo_obs.Metrics.incr m_torn;
        Log.warn (fun m -> m "%s: torn WAL tail skipped during recovery" dir)
      end;
      Log.info (fun m -> m "%s: recovered (%d WAL records replayed)" dir replayed);
      (* a fresh, stale, or corrupt-headered log restarts at the snapshot's
         epoch; a matching log is extended in place — after cutting off any
         corrupt tail, or the records appended next would sit behind it,
         invisible to the next recovery *)
      let needs_restart = stale_wal || rp_epoch = None in
      let chan =
        if needs_restart then begin
          let chan =
            Out_channel.open_gen
              [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
              0o644 (wal_path dir)
          in
          Wal.write_header chan ~epoch:snap_epoch;
          chan
        end
        else begin
          if not clean then Unix.truncate (wal_path dir) rp_clean_bytes;
          Out_channel.open_gen
            [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 (wal_path dir)
        end
      in
      Ok
        {
          dir;
          jdb = db;
          chan;
          epoch = snap_epoch;
          lock_fd;
          lock_key;
          clean;
          replayed;
          stale_wal;
        }
    with e ->
      release_lock lock_fd lock_key;
      raise e
  in
  (match guarded with
  | Ok _ -> ()
  | Error _ -> release_lock lock_fd lock_key);
  guarded

let db t = t.jdb
let recovered_clean t = t.clean
let recovered_from_stale_wal t = t.stale_wal
let wal_records_replayed t = t.replayed
let wal_epoch t = t.epoch
let log t r = Wal.append t.chan r

(* Log-before-apply: validate the operation dry against the database
   first where cheap, then append the record, then apply.  For creating
   operations the surrogate is only known after applying, so those are
   applied first and logged with the produced surrogate; the apply and the
   append sit in the same critical step, and recovery verifies the
   surrogates on replay. *)

let define_domain t name d =
  let* () = Database.define_domain t.jdb name d in
  log t (Wal.Define_domain { name; domain = d });
  Ok ()

let log_define t entry =
  log t (Wal.Define (Codec.encode_entry (Database.schema t.jdb) entry))

let define_obj_type t o =
  let* () = Database.define_obj_type t.jdb o in
  (* re-read the stored form: inline subclasses were resolved on define *)
  let* stored = Schema.find_obj_type (Database.schema t.jdb) o.Schema.ot_name in
  log_define t (Schema.Obj_type stored);
  Ok ()

let define_rel_type t r =
  let* () = Database.define_rel_type t.jdb r in
  let* stored = Schema.find_rel_type (Database.schema t.jdb) r.Schema.rt_name in
  log_define t (Schema.Rel_type stored);
  Ok ()

let define_inher_rel_type t i =
  let* () = Database.define_inher_rel_type t.jdb i in
  log_define t (Schema.Inher_type i);
  Ok ()

let create_class t ~name ~member_type =
  let* () = Database.create_class t.jdb ~name ~member_type in
  log t (Wal.Create_class { name; member_type });
  Ok ()

let new_object t ?cls ~ty ?(attrs = []) () =
  let* s = Database.new_object t.jdb ?cls ~ty ~attrs () in
  log t (Wal.Create_object { cls; ty; attrs; expect = s });
  Ok s

let new_subobject t ~parent ~subclass ?(attrs = []) () =
  let* s = Database.new_subobject t.jdb ~parent ~subclass ~attrs () in
  log t (Wal.Create_subobject { parent; subclass; attrs; expect = s });
  Ok s

let new_relationship t ~ty ~participants ?(attrs = []) () =
  let* s = Database.new_relationship t.jdb ~ty ~participants ~attrs () in
  log t (Wal.Create_relationship { ty; participants; attrs; expect = s });
  Ok s

let new_subrel t ~parent ~subrel ~participants ?(attrs = []) () =
  let* s = Database.new_subrel t.jdb ~parent ~subrel ~participants ~attrs () in
  log t (Wal.Create_subrel { parent; subrel; participants; attrs; expect = s });
  Ok s

let set_attr t s name value =
  let* () = Database.set_attr t.jdb s name value in
  log t (Wal.Set_attr { target = s; name; value });
  Ok ()

let bind t ~via ~transmitter ~inheritor () =
  let* link = Database.bind t.jdb ~via ~transmitter ~inheritor () in
  log t (Wal.Bind { via; transmitter; inheritor; expect = link });
  Ok link

let unbind t inheritor =
  let* () = Database.unbind t.jdb inheritor in
  log t (Wal.Unbind { inheritor });
  Ok ()

let delete t ?(force = false) s =
  let* () = Database.delete t.jdb ~force s in
  log t (Wal.Delete { target = s; force });
  Ok ()

(* The snapshot is cut at [epoch + 1] and committed by its rename; the
   truncation that follows merely reclaims space.  A crash anywhere in
   between leaves either the old pairing (old snapshot + full old-epoch
   log) or the new one (new snapshot + log discarded as stale), both of
   which recover to a consistent prefix. *)
let checkpoint t =
  Compo_obs.Metrics.incr m_checkpoint;
  Log.info (fun m -> m "%s: checkpoint" t.dir);
  let* () = Failpoint.guard fp_ckpt_begin in
  let next_epoch = t.epoch + 1 in
  let* () = Snapshot.save ~epoch:next_epoch (snapshot_path t.dir) t.jdb in
  Failpoint.hit fp_ckpt_before_truncate;
  Out_channel.close t.chan;
  let chan =
    Out_channel.open_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 (wal_path t.dir)
  in
  Wal.write_header chan ~epoch:next_epoch;
  Failpoint.hit fp_ckpt_after_truncate;
  t.chan <- chan;
  t.epoch <- next_epoch;
  Ok ()

let wal_size_bytes t =
  (* logged payload only: the epoch header is bookkeeping, so an empty
     (just-checkpointed) log reports 0 *)
  match (Unix.stat (wal_path t.dir)).Unix.st_size with
  | size -> max 0 (size - Wal.header_len)
  | exception Unix.Unix_error _ -> 0

let close t =
  Out_channel.close t.chan;
  release_lock t.lock_fd t.lock_key

let crash t =
  (* simulated process death for the torture harness: abandon the handle
     without checkpointing, release the in-process registration so the
     "rebooted" process can reopen the directory *)
  Out_channel.close_noerr t.chan;
  release_lock t.lock_fd t.lock_key
