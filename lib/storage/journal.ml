open Compo_core

let log_src = Logs.Src.create "compo.journal" ~doc:"compo durability"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind

let m_checkpoint = Compo_obs.Metrics.counter "journal.checkpoint"

type t = {
  dir : string;
  jdb : Database.t;
  mutable chan : Out_channel.t;
  clean : bool;
  replayed : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let wal_path dir = Filename.concat dir "wal.log"

let open_dir dir =
  Compo_obs.Trace.with_span "journal.recover" @@ fun () ->
  let* () =
    match Sys.is_directory dir with
    | true -> Ok ()
    | false -> Error (Errors.Io_error (dir ^ " exists and is not a directory"))
    | exception Sys_error _ -> (
        match Sys.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Sys_error msg -> Error (Errors.Io_error msg))
  in
  let* db =
    if Sys.file_exists (snapshot_path dir) then Snapshot.load (snapshot_path dir)
    else Ok (Database.create ())
  in
  let records, clean = Wal.read_file (wal_path dir) in
  let* replayed =
    List.fold_left
      (fun acc r ->
        let* n = acc in
        let* () = Wal.apply db r in
        Ok (n + 1))
      (Ok 0) records
  in
  if not clean then
    Log.warn (fun m -> m "%s: torn WAL tail skipped during recovery" dir);
  Log.info (fun m -> m "%s: recovered (%d WAL records replayed)" dir replayed);
  let chan =
    Out_channel.open_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 (wal_path dir)
  in
  Ok { dir; jdb = db; chan; clean; replayed }

let db t = t.jdb
let recovered_clean t = t.clean
let wal_records_replayed t = t.replayed
let log t r = Wal.append t.chan r

(* Log-before-apply: validate the operation dry against the database
   first where cheap, then append the record, then apply.  For creating
   operations the surrogate is only known after applying, so those are
   applied first and logged with the produced surrogate; the apply and the
   append sit in the same critical step, and recovery verifies the
   surrogates on replay. *)

let define_domain t name d =
  let* () = Database.define_domain t.jdb name d in
  log t (Wal.Define_domain { name; domain = d });
  Ok ()

let log_define t entry =
  log t (Wal.Define (Codec.encode_entry (Database.schema t.jdb) entry))

let define_obj_type t o =
  let* () = Database.define_obj_type t.jdb o in
  (* re-read the stored form: inline subclasses were resolved on define *)
  let* stored = Schema.find_obj_type (Database.schema t.jdb) o.Schema.ot_name in
  log_define t (Schema.Obj_type stored);
  Ok ()

let define_rel_type t r =
  let* () = Database.define_rel_type t.jdb r in
  let* stored = Schema.find_rel_type (Database.schema t.jdb) r.Schema.rt_name in
  log_define t (Schema.Rel_type stored);
  Ok ()

let define_inher_rel_type t i =
  let* () = Database.define_inher_rel_type t.jdb i in
  log_define t (Schema.Inher_type i);
  Ok ()

let create_class t ~name ~member_type =
  let* () = Database.create_class t.jdb ~name ~member_type in
  log t (Wal.Create_class { name; member_type });
  Ok ()

let new_object t ?cls ~ty ?(attrs = []) () =
  let* s = Database.new_object t.jdb ?cls ~ty ~attrs () in
  log t (Wal.Create_object { cls; ty; attrs; expect = s });
  Ok s

let new_subobject t ~parent ~subclass ?(attrs = []) () =
  let* s = Database.new_subobject t.jdb ~parent ~subclass ~attrs () in
  log t (Wal.Create_subobject { parent; subclass; attrs; expect = s });
  Ok s

let new_relationship t ~ty ~participants ?(attrs = []) () =
  let* s = Database.new_relationship t.jdb ~ty ~participants ~attrs () in
  log t (Wal.Create_relationship { ty; participants; attrs; expect = s });
  Ok s

let new_subrel t ~parent ~subrel ~participants ?(attrs = []) () =
  let* s = Database.new_subrel t.jdb ~parent ~subrel ~participants ~attrs () in
  log t (Wal.Create_subrel { parent; subrel; participants; attrs; expect = s });
  Ok s

let set_attr t s name value =
  let* () = Database.set_attr t.jdb s name value in
  log t (Wal.Set_attr { target = s; name; value });
  Ok ()

let bind t ~via ~transmitter ~inheritor () =
  let* link = Database.bind t.jdb ~via ~transmitter ~inheritor () in
  log t (Wal.Bind { via; transmitter; inheritor; expect = link });
  Ok link

let unbind t inheritor =
  let* () = Database.unbind t.jdb inheritor in
  log t (Wal.Unbind { inheritor });
  Ok ()

let delete t ?(force = false) s =
  let* () = Database.delete t.jdb ~force s in
  log t (Wal.Delete { target = s; force });
  Ok ()

let checkpoint t =
  Compo_obs.Metrics.incr m_checkpoint;
  Log.info (fun m -> m "%s: checkpoint" t.dir);
  let* () = Snapshot.save (snapshot_path t.dir) t.jdb in
  Out_channel.close t.chan;
  let chan =
    Out_channel.open_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 (wal_path t.dir)
  in
  t.chan <- chan;
  Ok ()

let wal_size_bytes t =
  match (Unix.stat (wal_path t.dir)).Unix.st_size with
  | size -> size
  | exception Unix.Unix_error _ -> 0

let close t = Out_channel.close t.chan
