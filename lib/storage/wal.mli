(** Write-ahead log of logical database operations.

    The file opens with a 16-byte header ([magic; epoch]) pairing the log
    with the snapshot generation it continues; each record after it is
    framed as [length; crc32; payload].  {!read_file} tolerates a torn
    tail (a crash mid-append) by stopping at the first incomplete or
    corrupt frame and reporting how many clean records it read — a corrupt
    {e first} frame, torn header included, reads as zero records, never an
    exception.

    Replay is deterministic: the surrogate generator is sequential, so
    re-applying the records to the same starting snapshot reproduces the
    same surrogates; every creating record carries the surrogate it
    expects and {!apply} verifies it.

    Failpoint sites ([wal.append.before_frame], [wal.append.frame],
    [wal.append.after_frame], [wal.header.write]) cover every append
    boundary; see {!Compo_faults.Failpoint} and docs/DURABILITY.md. *)

open Compo_core

type record =
  | Define_domain of { name : string; domain : Domain.t }
  | Define of string  (** codec-encoded schema entry *)
  | Create_class of { name : string; member_type : string }
  | Create_object of {
      cls : string option;
      ty : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subobject of {
      parent : Surrogate.t;
      subclass : string;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_relationship of {
      ty : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Create_subrel of {
      parent : Surrogate.t;
      subrel : string;
      participants : (string * Value.t) list;
      attrs : (string * Value.t) list;
      expect : Surrogate.t;
    }
  | Set_attr of { target : Surrogate.t; name : string; value : Value.t }
  | Bind of {
      via : string;
      transmitter : Surrogate.t;
      inheritor : Surrogate.t;
      expect : Surrogate.t;
    }
  | Unbind of { inheritor : Surrogate.t }
  | Delete of { target : Surrogate.t; force : bool }

val encode_record : record -> string
val decode_record : string -> (record, Errors.t) result

val header_len : int
(** Bytes of the [magic; epoch] file header. *)

val write_header : Out_channel.t -> epoch:int -> unit
(** Start a fresh (empty or truncated) log file, then flush. *)

val append : Out_channel.t -> record -> unit
(** Frame and write one record, then flush. *)

type replay = {
  rp_epoch : int option;
      (** [None] when the file is missing or empty (a fresh log), or when
          its header is torn or corrupt (see [rp_clean]). *)
  rp_records : record list;  (** the clean prefix, in append order *)
  rp_clean : bool;
      (** [false] when a torn or corrupt tail (or header) was skipped *)
  rp_clean_bytes : int;
      (** file offset where the clean prefix ends; an unclean log must be
          truncated here before appending, or new records land behind the
          corrupt tail and are lost to the next recovery *)
}

val read_file : string -> replay
(** All clean records of a WAL file.  Total: corruption anywhere —
    including a corrupt first frame or a frame length engineered to
    overflow the bounds check — shortens the clean prefix, it never
    raises. *)

val apply : Database.t -> record -> (unit, Errors.t) result
(** Re-execute one record against the database; creating records verify
    the surrogate they produce. *)
