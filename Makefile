.PHONY: all build test check fmt bench clean

all: build

build:
	dune build

test: build
	dune runtest

# Smoke target: tier-1 build + tests, then the instrumented stats
# workload over the paper's gates schema.
check: test
	dune exec bin/compo_cli.exe -- stats schemas/gates.ddl

# ocamlformat is optional in the build environment; format when it is
# available, otherwise say so and succeed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

bench: build
	dune exec bench/main.exe

clean:
	dune clean
