.PHONY: all build test check fmt fmt-check bench bench-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Smoke target: tier-1 build + tests, then the instrumented stats
# workload over the paper's gates schema.
check: test
	dune exec bin/compo_cli.exe -- stats schemas/gates.ddl

# ocamlformat is optional in the build environment; format when it is
# available, otherwise say so and succeed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Check mode: fail on formatting drift instead of rewriting, with the
# same graceful skip when ocamlformat is absent.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

bench: build
	dune exec bench/main.exe

# CI-sized benchmark: E1 plus the resolve-cache sweep E15 on small
# grids.  Fails if the cached read path is slower than the uncached one
# or if E15 does not produce its JSON report.
bench-smoke: build
	dune exec bench/main.exe -- --smoke --check-speedup 1.0 E1 E15
	test -s BENCH_resolve_cache.json

# Mirrors .github/workflows/ci.yml so the pipeline is reproducible
# locally with one command.
ci: build test fmt-check bench-smoke

clean:
	dune clean
	rm -f BENCH_resolve_cache.json
