.PHONY: all build test check obs-check torture-check stress-check fmt fmt-check bench bench-smoke matrix matrix-baseline matrix-check serve soak-check ci clean

all: build

build:
	dune build

test: build
	dune runtest

# Smoke target: tier-1 build + tests, then the instrumented stats
# workload over the paper's gates schema.
check: test
	dune exec bin/compo_cli.exe -- stats schemas/gates.ddl

# Observability check, two halves.  (1) In-process: run the
# instrumented gates workload with metrics on, export the registry as
# OpenMetrics, and validate the exposition against the text-format
# grammar with the checker in test/.  (2) Over the wire: boot a live
# server, pull its registry with a trace-stamped `compo stats
# --connect`, validate that exposition the same way, and require the
# server-telemetry families (server.gate.* contention profile, net.*
# request accounting) to be present.
OBS_SOCK := /tmp/compo-obs.sock
obs-check: build
	dune exec bin/compo_cli.exe -- stats schemas/gates.ddl --format=openmetrics > obs-check.om
	dune exec test/check_openmetrics.exe -- obs-check.om
	rm -f $(OBS_SOCK)
	./_build/default/bin/compo_server.exe --socket $(OBS_SOCK) --demo gates --quiet & \
	  srv=$$!; \
	  for i in $$(seq 1 50); do [ -S $(OBS_SOCK) ] && break; sleep 0.1; done; \
	  [ -S $(OBS_SOCK) ] || { echo "obs-check: server never bound $(OBS_SOCK)"; kill $$srv 2>/dev/null; exit 1; }; \
	  COMPO_TRACE_SAMPLE=1 ./_build/default/bin/compo_cli.exe stats --connect $(OBS_SOCK) --format=openmetrics > obs-check.live.om; \
	  rc=$$?; \
	  kill -TERM $$srv; \
	  wait $$srv; drained=$$?; \
	  [ $$rc -eq 0 ] || { echo "obs-check: live stats over the wire failed"; exit 1; }; \
	  [ $$drained -eq 0 ] || { echo "obs-check: server did not drain cleanly (exit $$drained)"; exit 1; }
	dune exec test/check_openmetrics.exe -- obs-check.live.om
	grep -q '^# TYPE compo_server_gate_wait_seconds histogram' obs-check.live.om
	grep -q '^# TYPE compo_server_gate_hold_seconds histogram' obs-check.live.om
	grep -q '^# TYPE compo_server_gate_queue_depth gauge' obs-check.live.om
	grep -q '^# TYPE compo_net_requests counter' obs-check.live.om
	rm -f obs-check.om obs-check.live.om

# Crash-recovery torture: enumerate every registered failpoint crash
# site against a scripted workload, simulate the crash, reopen the
# journal, and verify the recovered state against an in-memory oracle
# (see docs/DURABILITY.md).  Writes a per-scenario log to
# torture-check.log.
torture-check: build
	dune exec test/torture.exe -- --log torture-check.log

# Parallel-select stress: 4 reader domains of parallel selects racing
# interleaved committed/aborted write batches on the main domain, with a
# torn-read oracle (any inconsistent snapshot surfaces as a row where
# A <> B) and exact resolve-cache accounting (lookups = hits + misses).
# The differential oracle itself (select ~jobs:1 == ~jobs:4 over 200+
# random schemas) runs inside `make test` as the par-diff suite.
stress-check: build
	dune exec test/test_par_stress.exe

# ocamlformat is optional in the build environment; format when it is
# available, otherwise say so and succeed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Check mode: fail on formatting drift instead of rewriting, with the
# same graceful skip when ocamlformat is absent.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

bench: build
	dune exec bench/main.exe

# CI-sized benchmark: E1 plus the resolve-cache sweep E15, the
# provenance-overhead sweep E16, the recovery-time sweep E17, the
# parallel-scaling sweep E18, the compiled-plan sweep E21 and the
# delta-maintenance sweep E22 on small grids.  Fails if the cached
# read path is slower than the uncached one, if 4-job selects scale
# below 1.8x on a >= 4-core machine (the gate skips, loudly, on
# smaller runners), if the compiled engine is less than 3x the
# interpreted one single-threaded (skips on 1-core runners), if
# delta-maintained plan state is less than 2x full rebuild on the 20%
# write mix (same 1-core skip), or if any experiment does not produce
# its JSON report.
bench-smoke: build
	dune exec bench/main.exe -- --smoke --check-speedup 1.0 --check-scaling 1.8 --check-compiled-speedup 3 --check-delta-speedup 2 E1 E15 E16 E17 E18 E21 E22
	test -s BENCH_resolve_cache.json
	test -s BENCH_provenance.json
	test -s BENCH_recovery.json
	test -s BENCH_resolve_parallel.json
	test -s BENCH_compiled.json
	test -s BENCH_plan_delta.json

# Ablation matrix (E20): enumerate configuration cells (resolve cache
# on/off, index planning on/off, compiled engine on/off, provenance
# on/off, jobs 1/2/4, failpoints armed) and run the curated
# E2/E9/E10/E15 suite in a fresh
# bench subprocess per cell.  Cells the runner cannot honestly measure
# (jobs > cores) are recorded as SKIPPED rows with the reason — never
# dropped.  `matrix` writes a fresh BENCH_matrix.fresh.json; `matrix-
# baseline` refreshes the committed BENCH_matrix.json.
matrix: build
	dune exec bench/matrix_main.exe -- --smoke --out BENCH_matrix.fresh.json

matrix-baseline: build
	dune exec bench/matrix_main.exe -- --smoke --out BENCH_matrix.json

# CI gate: fresh matrix vs the committed baseline via `compo benchdiff`.
# Outcome flips (ok -> failed, baseline cell missing) gate sharply;
# wall-time gates are deliberately loose (5x over a 1 s floor) because
# the baseline and the runner are different machines — the machine-
# independent signals (eval.node, e15.min_speedup) carry the behavioural
# diff.  New SKIPs render loudly but do not fail small runners.
matrix-check: matrix
	dune exec bin/compo_cli.exe -- benchdiff BENCH_matrix.json BENCH_matrix.fresh.json --time-ratio 5 --time-floor 1

# Interactive server over the demo gates scenario; talk to it with the
# client library or `compo stats --connect /tmp/compo.sock`.
serve: build
	./_build/default/bin/compo_server.exe --socket /tmp/compo.sock --demo gates --populate 256

# Network soak (E19): boot a server on the gates scenario with the
# telemetry stack live (1 ms slow-query threshold, 5 % wire-trace
# sampling), drive >= 120 concurrent client connections for ~10 s with
# the load generator (--check fails on any protocol error), then
# exercise the telemetry surfaces while the server is still up — the
# slow-query log must answer over the wire with at least one captured
# plan, SIGUSR1 must produce a flight-recorder dump that
# `compo flightrec` parses — and finally SIGTERM the server and
# require a clean drain.  The server binary is run straight from
# _build so the signals reach it (dune exec does not forward them).
SOAK_SOCK := /tmp/compo-soak.sock
soak-check: build
	rm -f $(SOAK_SOCK) soak-flightrec.json
	COMPO_SLOW_MS=1 ./_build/default/bin/compo_server.exe --socket $(SOAK_SOCK) --demo gates --populate 512 --flightrec soak-flightrec.json & \
	  srv=$$!; \
	  for i in $$(seq 1 50); do [ -S $(SOAK_SOCK) ] && break; sleep 0.1; done; \
	  [ -S $(SOAK_SOCK) ] || { echo "soak-check: server never bound $(SOAK_SOCK)"; kill $$srv 2>/dev/null; exit 1; }; \
	  COMPO_TRACE_SAMPLE=0.05 ./_build/default/bench/loadgen.exe --socket $(SOAK_SOCK) --connections 120 --duration 10 --check --json BENCH_server.json; \
	  gen=$$?; \
	  ./_build/default/bin/compo_cli.exe slowlog --connect $(SOAK_SOCK) > soak-slowlog.txt; \
	  slow=$$?; \
	  kill -USR1 $$srv; \
	  for i in $$(seq 1 50); do [ -s soak-flightrec.json ] && break; sleep 0.1; done; \
	  kill -TERM $$srv; \
	  wait $$srv; drained=$$?; \
	  [ $$gen -eq 0 ] || { echo "soak-check: load generator failed"; exit 1; }; \
	  [ $$slow -eq 0 ] || { echo "soak-check: slowlog fetch over the wire failed"; exit 1; }; \
	  grep -q 'slow-query log: [1-9]' soak-slowlog.txt || { echo "soak-check: no slow query captured at a 1 ms threshold"; cat soak-slowlog.txt; exit 1; }; \
	  [ $$drained -eq 0 ] || { echo "soak-check: server did not drain cleanly (exit $$drained)"; exit 1; }
	test -s BENCH_server.json
	grep -q '"per_op"' BENCH_server.json
	test -s soak-flightrec.json
	./_build/default/bin/compo_cli.exe flightrec soak-flightrec.json > soak-flightrec.txt
	grep -q 'flight recorder: [1-9]' soak-flightrec.txt
	rm -f soak-slowlog.txt soak-flightrec.txt

# Mirrors .github/workflows/ci.yml so the pipeline is reproducible
# locally with one command.
ci: build test fmt-check obs-check torture-check stress-check bench-smoke matrix-check soak-check

clean:
	dune clean
	rm -f BENCH_resolve_cache.json BENCH_provenance.json BENCH_recovery.json
	rm -f BENCH_resolve_parallel.json BENCH_server.json
	rm -f BENCH_compiled.json BENCH_plan_delta.json
	rm -f BENCH_*.metrics.json obs-check.om obs-check.live.om torture-check.log
	rm -f BENCH_matrix.fresh.json
	rm -f soak-flightrec.json soak-flightrec.txt soak-slowlog.txt *.flightrec.json
