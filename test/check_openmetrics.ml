(* Validator for the OpenMetrics text exposition produced by
   [compo stats --format=openmetrics].

   Checks the grammar subset the exporter promises: every sample line
   belongs to (and immediately follows) a `# TYPE` declaration, metric
   names match [a-zA-Z_:][a-zA-Z0-9_:]*, counter samples carry the
   `_total` suffix, histogram buckets are cumulative and close with an
   `le="+Inf"` bucket equal to the `_count` sample, and the exposition
   terminates with `# EOF`.

   Usage: check_openmetrics [FILE]   (reads stdin when FILE is absent)
   Exit 0 on a valid exposition, 1 with a diagnostic otherwise. *)

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_openmetrics: " ^ m);
      incr errors)
    fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0 && is_name_start s.[0] && String.for_all is_name_char s

type family = {
  fam_name : string;
  fam_type : string; (* "counter" | "gauge" | "histogram" *)
  mutable fam_samples : int;
  (* histogram bookkeeping *)
  mutable fam_buckets : (string * float) list; (* (le, count), in order *)
  mutable fam_count : float option;
  mutable fam_sum : bool;
}

(* [name{labels} value] or [name value]; labels are opaque except for
   the one the exporter emits, le="...". *)
let split_sample line =
  match String.index_opt line '{' with
  | Some i -> (
      match String.index_from_opt line i '}' with
      | Some j ->
          let name = String.sub line 0 i in
          let labels = String.sub line (i + 1) (j - i - 1) in
          let rest = String.sub line (j + 1) (String.length line - j - 1) in
          (name, Some labels, String.trim rest)
      | None ->
          fail "unterminated label set: %s" line;
          (String.sub line 0 i, None, ""))
  | None -> (
      match String.index_opt line ' ' with
      | Some i ->
          ( String.sub line 0 i,
            None,
            String.trim (String.sub line i (String.length line - i)) )
      | None ->
          fail "sample line has no value: %s" line;
          (line, None, ""))

let le_of labels =
  let prefix = "le=\"" in
  if String.length labels > String.length prefix
     && String.sub labels 0 (String.length prefix) = prefix
     && labels.[String.length labels - 1] = '"'
  then
    Some
      (String.sub labels (String.length prefix)
         (String.length labels - String.length prefix - 1))
  else None

let finish_family = function
  | None -> ()
  | Some f ->
      if f.fam_samples = 0 then
        fail "family %s declared but has no samples" f.fam_name;
      if f.fam_type = "histogram" then begin
        let buckets = List.rev f.fam_buckets in
        (match buckets with
        | [] -> fail "histogram %s has no buckets" f.fam_name
        | _ ->
            let rec cumulative prev = function
              | [] -> ()
              | (le, c) :: rest ->
                  if c < prev then
                    fail "histogram %s bucket le=\"%s\" not cumulative"
                      f.fam_name le;
                  cumulative c rest
            in
            cumulative 0. buckets;
            let last_le, last_c = List.nth buckets (List.length buckets - 1) in
            if last_le <> "+Inf" then
              fail "histogram %s does not close with le=\"+Inf\"" f.fam_name
            else
              match f.fam_count with
              | Some n when n <> last_c ->
                  fail "histogram %s: +Inf bucket %g <> _count %g" f.fam_name
                    last_c n
              | _ -> ());
        if f.fam_count = None then
          fail "histogram %s is missing its _count sample" f.fam_name;
        if not f.fam_sum then
          fail "histogram %s is missing its _sum sample" f.fam_name
      end

let check_sample fam line =
  let name, labels, value = split_sample line in
  if not (valid_name name) then fail "invalid metric name: %s" name;
  (match float_of_string_opt value with
  | Some _ -> ()
  | None -> fail "sample value does not parse as a number: %s" line);
  match fam with
  | None -> fail "sample before any # TYPE declaration: %s" line
  | Some f -> (
      f.fam_samples <- f.fam_samples + 1;
      let suffixed s = name = f.fam_name ^ s in
      match f.fam_type with
      | "counter" ->
          if not (suffixed "_total") then
            fail "counter sample %s should be %s_total" name f.fam_name
      | "gauge" ->
          if name <> f.fam_name then
            fail "gauge sample %s does not match family %s" name f.fam_name
      | "histogram" -> (
          let v = Option.value ~default:nan (float_of_string_opt value) in
          if suffixed "_bucket" then
            match Option.bind labels le_of with
            | Some le -> f.fam_buckets <- (le, v) :: f.fam_buckets
            | None -> fail "bucket sample without an le label: %s" line
          else if suffixed "_sum" then f.fam_sum <- true
          else if suffixed "_count" then f.fam_count <- Some v
          else
            fail "histogram sample %s is none of %s_{bucket,sum,count}" name
              f.fam_name)
      | t -> fail "family %s has unknown type %s" f.fam_name t)

let () =
  let ic =
    if Array.length Sys.argv > 1 then open_in Sys.argv.(1) else stdin
  in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  if lines = [] then fail "empty exposition";
  let seen_types = Hashtbl.create 16 in
  let current = ref None in
  let saw_eof = ref false in
  List.iter
    (fun line ->
      if !saw_eof then fail "content after # EOF: %s" line
      else if line = "# EOF" then begin
        finish_family !current;
        current := None;
        saw_eof := true
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        finish_family !current;
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; ty ] ->
            if not (valid_name name) then
              fail "invalid family name in TYPE line: %s" name;
            if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
              fail "family %s has unsupported type %s" name ty;
            if Hashtbl.mem seen_types name then
              fail "family %s declared twice" name;
            Hashtbl.replace seen_types name ();
            current :=
              Some
                {
                  fam_name = name;
                  fam_type = ty;
                  fam_samples = 0;
                  fam_buckets = [];
                  fam_count = None;
                  fam_sum = false;
                }
        | _ -> fail "malformed TYPE line: %s" line
      end
      else if String.length line > 0 && line.[0] = '#' then
        fail "unexpected comment line: %s" line
      else if String.trim line <> "" then check_sample !current line)
    lines;
  if not !saw_eof then fail "exposition does not terminate with # EOF";
  if !errors > 0 then exit 1;
  Printf.printf "check_openmetrics: OK (%d famil%s)\n"
    (Hashtbl.length seen_types)
    (if Hashtbl.length seen_types = 1 then "y" else "ies")
