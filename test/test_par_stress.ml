(* Parallel-select stress driver: make stress-check.

   Four reader domains hammer parallel selects while the main domain
   commits and aborts interleaved write batches.  The writer keeps one
   invariant at all times: inside every exclusive section it sets [A]
   and [B] of each root to the same value, so ANY consistent snapshot
   satisfies A = B on every object — a root reads its own attributes,
   a bound inheritor resolves both across the same transmitter chain.
   A reader therefore proves snapshot isolation by selecting with
   [A <> B] under [~jobs] and requiring zero rows: a torn read (A from
   write N, B from write N-1, or a half-applied abort) is exactly a
   row in that select.

   On top of the isolation oracle the run checks the concurrent
   bookkeeping stays exact: the resolve cache must account every
   lookup as a hit or a miss even while writer invalidations race
   worker fills, and the store invariants must hold afterwards.
   Exits non-zero on any violation. *)

open Compo_core
module Metrics = Compo_obs.Metrics

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      print_endline ("FAIL " ^ s))
    fmt

let ok what = function
  | Ok v -> v
  | Error e ->
      Printf.printf "FATAL: %s: %s\n" what (Errors.to_string e);
      exit 2

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* A population where A = B resolves through inheritance: [roots] own
   both attributes, and each root transmits them down a chain of
   [depth] bound inheritors.  Everything lives in class "Pop". *)

let schema db ~depth =
  let ty k = "N" ^ string_of_int k in
  let rel k = "AllOf_N" ^ string_of_int k in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = ty 0;
        ot_inheritor_in = None;
        ot_attrs =
          [
            { Schema.attr_name = "A"; attr_domain = Domain.Integer };
            { Schema.attr_name = "B"; attr_domain = Domain.Integer };
          ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  let rec go k =
    if k >= depth then Ok ()
    else
      let* () =
        Database.define_inher_rel_type db
          {
            Schema.it_name = rel k;
            it_transmitter = ty k;
            it_inheritor = Some (ty (k + 1));
            it_inheriting = [ "A"; "B" ];
            it_attrs = [];
            it_subclasses = [];
            it_constraints = [];
          }
      in
      let* () =
        Database.define_obj_type db
          {
            Schema.ot_name = ty (k + 1);
            ot_inheritor_in = Some (rel k);
            ot_attrs = [];
            ot_subclasses = [];
            ot_subrels = [];
            ot_constraints = [];
          }
      in
      go (k + 1)
  in
  let* () = go 0 in
  Database.create_class db ~name:"Pop" ~member_type:(ty 0)

let build db ~roots ~depth =
  let ty k = "N" ^ string_of_int k in
  let rel k = "AllOf_N" ^ string_of_int k in
  let* () = schema db ~depth in
  let rec chain parent k =
    if k > depth then Ok ()
    else
      let* s = Database.new_object db ~cls:"Pop" ~ty:(ty k) () in
      let* (_ : Surrogate.t) =
        Database.bind db ~via:(rel (k - 1)) ~transmitter:parent ~inheritor:s ()
      in
      chain s (k + 1)
  in
  let rec mk i acc =
    if i >= roots then Ok (List.rev acc)
    else
      let* root =
        Database.new_object db ~cls:"Pop" ~ty:(ty 0)
          ~attrs:[ ("A", Value.Int 0); ("B", Value.Int 0) ]
          ()
      in
      let* () = chain root 1 in
      mk (i + 1) (root :: acc)
  in
  mk 0 []

(* ------------------------------------------------------------------ *)

let () =
  Metrics.enable ();
  let db = Database.create () in
  let roots = ok "build" (build db ~roots:12 ~depth:3) in
  let store = Database.store db in
  let mg = Compo_txn.Transaction.create_manager store in
  let torn = ok "parse" (Compo_ddl.Parser.parse_expr "A <> B") in
  let stop = Atomic.make false in
  let selects = Atomic.make 0 in

  let reader d =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      (* readers disagree on the fan-out width on purpose *)
      let jobs = 2 + (d mod 2) in
      match Database.select db ~cls:"Pop" ~jobs ~where:torn () with
      | Ok [] -> Atomic.incr selects
      | Ok rows ->
          incr bad;
          Printf.printf "torn read: %d row(s) with A <> B (reader %d)\n"
            (List.length rows) d
      | Error e ->
          incr bad;
          Printf.printf "select failed: %s (reader %d)\n" (Errors.to_string e) d
    done;
    !bad
  in
  let readers = List.init 4 (fun d -> Stdlib.Domain.spawn (fun () -> reader d)) in

  (* ~2s of interleaved committed writes and aborted transactions; every
     batch keeps A = B inside one exclusive section, so no consistent
     snapshot ever shows the halfway state *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rounds = ref 0 in
  while Unix.gettimeofday () < deadline do
    incr rounds;
    let v = Value.Int !rounds in
    List.iteri
      (fun i root ->
        if (!rounds + i) mod 3 = 0 then begin
          (* an aborted transaction: both writes undo, the exclusive
             section makes install-undo atomic against the readers *)
          Store.exclusively store (fun () ->
              let txn = Compo_txn.Transaction.begin_txn mg ~user:"stress" in
              ok "txn set A"
                (Compo_txn.Transaction.set_attr mg txn root "A" (Value.Int (-1)));
              ok "txn set B"
                (Compo_txn.Transaction.set_attr mg txn root "B" (Value.Int (-1)));
              ok "abort" (Compo_txn.Transaction.abort mg txn))
        end
        else
          Store.exclusively store (fun () ->
              ok "set A" (Database.set_attr db root "A" v);
              ok "set B" (Database.set_attr db root "B" v)))
      roots
  done;
  Atomic.set stop true;
  let bad = List.fold_left (fun acc h -> acc + Stdlib.Domain.join h) 0 readers in

  if bad > 0 then failf "%d inconsistent read(s)" bad;
  let lookups = Resolve_cache.lookups ()
  and hits = Resolve_cache.hits ()
  and misses = Resolve_cache.misses () in
  if lookups <> hits + misses then
    failf "cache accounting drifted: %d lookups <> %d hits + %d misses" lookups
      hits misses;
  (match Store.check_invariants store with
  | [] -> ()
  | vs ->
      List.iter (fun v -> failf "invariant: %s" v) vs);
  (* the run exercised what it claims to exercise *)
  if Atomic.get selects = 0 then failf "readers never completed a select";
  if !rounds < 10 then failf "writer only completed %d round(s)" !rounds;
  Printf.printf
    "stress: %d writer round(s), %d clean parallel select(s), %d lookups = %d \
     hits + %d misses, %d failure(s)\n"
    !rounds (Atomic.get selects) lookups hits misses !failures;
  Metrics.disable ();
  exit (if !failures > 0 then 1 else 0)
