(* End-to-end reproduction of the paper's chip-design figures:
   F1 (Figure 1: complex object "Flip-Flop"),
   F2 (Figure 2: GateInterface -> GateImplementation),
   F3 (Figure 3: component + interface relationships together),
   F4 (Figure 4: GateInterface in both roles),
   and claim C6 (component subobjects add local data). *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates

(* F1: the flip-flop of Figure 1 — structure and wiring. *)
let test_flip_flop_structure () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  check_int "4 external pins" 4 (List.length (ok (Database.subclass_members db ff "Pins")));
  let subgates = ok (Database.subclass_members db ff "SubGates") in
  check_int "2 subgates" 2 (List.length subgates);
  List.iter
    (fun g ->
      check_value "both subgates are NOR" (Value.Enum_case "NOR")
        (ok (Database.get_attr db g "Function")))
    subgates;
  (* Figure 1 shows wires relating pins of the gate itself to pins of
     subgates AND pins of subgates to each other; verify both kinds *)
  let wires = ok (Database.subrel_members db ff "Wires") in
  let own_pins = ok (Database.subclass_members db ff "Pins") in
  let owner_kind pin =
    if List.exists (Surrogate.equal pin) own_pins then `External else `Internal
  in
  let kinds =
    List.map
      (fun w ->
        let p1 = Option.get (Value.as_ref (ok (Database.participant db w "Pin1"))) in
        let p2 = Option.get (Value.as_ref (ok (Database.participant db w "Pin2"))) in
        (owner_kind p1, owner_kind p2))
      wires
  in
  check_bool "cross-level wires exist" true
    (List.exists (fun k -> k = (`External, `Internal)) kinds);
  check_bool "internal wires exist" true
    (List.exists (fun k -> k = (`Internal, `Internal)) kinds);
  check_no_violations "flip-flop is consistent" (ok (Database.validate db ff))

(* F2: implementations inherit Length/Width/Pins from their interface. *)
let test_interface_implementation () =
  let db = gates_db () in
  let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
  let iface = ok (G.new_interface db ~pin_interface:pi ~length:7 ~width:3) in
  let impl_a = ok (G.new_implementation db ~interface:iface ()) in
  let impl_b = ok (G.new_implementation db ~interface:iface ()) in
  (* "All implementations of a specific gate are restricted to having the
     same interface": identical inherited data, shared pin objects *)
  List.iter
    (fun impl ->
      check_value "Length" (Value.Int 7) (ok (Database.get_attr db impl "Length"));
      check_value "Width" (Value.Int 3) (ok (Database.get_attr db impl "Width")))
    [ impl_a; impl_b ];
  let pins_a = ok (Database.subclass_members db impl_a "Pins") in
  let pins_b = ok (Database.subclass_members db impl_b "Pins") in
  Alcotest.(check (list surrogate)) "same pin objects" pins_a pins_b;
  (* implementations differ in their own data *)
  ok (Database.set_attr db impl_a "TimeBehavior" (Value.Int 10));
  ok (Database.set_attr db impl_b "TimeBehavior" (Value.Int 20));
  check_bool "implementations independent" true
    (not
       (Value.equal
          (ok (Database.get_attr db impl_a "TimeBehavior"))
          (ok (Database.get_attr db impl_b "TimeBehavior"))))

(* F3 + C6: a composite uses a component through its interface; the
   component subobject adds placement data to the inherited data. *)
let test_composite_component () =
  let db = gates_db () in
  let nor_iface = ok (G.nor_interface db) in
  let _nor_impl = ok (G.nor_implementation db ~interface:nor_iface) in
  let ff_iface = ok (G.nor_interface db) in
  let ff = ok (G.new_implementation db ~interface:ff_iface ()) in
  let sub1 = ok (G.use_component db ~composite:ff ~component_interface:nor_iface ~x:3 ~y:0) in
  let sub2 = ok (G.use_component db ~composite:ff ~component_interface:nor_iface ~x:3 ~y:4) in
  (* C6: local placement data coexists with inherited component data *)
  check_value "own GateLocation" (Value.point 3 0) (ok (Database.get_attr db sub1 "GateLocation"));
  check_value "inherited Length" (Value.Int 4) (ok (Database.get_attr db sub1 "Length"));
  check_int "inherited pins visible in the composite" 3
    (List.length (ok (Database.subclass_members db sub1 "Pins")));
  (* both uses share the component's pin objects (it is the same interface) *)
  Alcotest.(check (list surrogate))
    "shared component pins"
    (ok (Database.subclass_members db sub1 "Pins"))
    (ok (Database.subclass_members db sub2 "Pins"));
  (* wire a component pin to an external pin of the composite: the Wires
     where-clause accepts subgate pins reached through inheritance *)
  let ext = List.hd (ok (Database.subclass_members db ff "Pins")) in
  let comp_pin = List.hd (ok (Database.subclass_members db sub1 "Pins")) in
  let _ = ok (G.wire db ~parent:ff ~from_pin:ext ~to_pin:comp_pin) in
  check_no_violations "composite consistent" (ok (Database.validate db ff))

(* F4: the same GateInterface object serves as interface of one
   implementation and as component inside another. *)
let test_dual_role () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let own_impl = ok (G.new_implementation db ~interface:iface ()) in
  let other_iface = ok (G.nor_interface db) in
  let composite = ok (G.new_implementation db ~interface:other_iface ()) in
  let comp_use = ok (G.use_component db ~composite ~component_interface:iface ~x:0 ~y:0) in
  (* one transmitter, two inheritors playing different roles *)
  let inheritors = ok (Database.inheritors_of db iface) in
  check_int "two inheritors" 2 (List.length inheritors);
  check_bool "roles distinguished" true
    (let impls = ok (Database.implementations_of db iface) in
     let users = ok (Database.where_used db iface) in
     impls = [ own_impl ] && users = [ composite ]);
  (* updates to the shared interface reach both roles *)
  ok (Database.set_attr db iface "Length" (Value.Int 11));
  check_value "implementation sees it" (Value.Int 11)
    (ok (Database.get_attr db own_impl "Length"));
  check_value "component use sees it" (Value.Int 11)
    (ok (Database.get_attr db comp_use "Length"))

(* Section 4.3: permeability tailored per relationship (SomeOf_Gate
   passes TimeBehavior, AllOf_GateInterface does not carry it). *)
let test_tailored_permeability () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:9 ()) in
  let probe = ok (G.new_timing_probe db ~implementation:impl ~note:"sim") in
  check_value "probe sees TimeBehavior" (Value.Int 9)
    (ok (Database.get_attr db probe "TimeBehavior"));
  check_value "probe sees pins through two relationships" (Value.Int 3)
    (ok
       (Eval.eval
          (Eval.env ~self:probe (Database.store db))
          Expr.(count [ "Pins" ])));
  (* the probe's own note is local *)
  check_value "own data" (Value.Str "sim") (ok (Database.get_attr db probe "ProbeNote"))

(* Abstraction hierarchies (section 4.2): interfaces sharing a pin
   interface differ in expansion; pins flow from the shared level. *)
let test_interface_hierarchy () =
  let db = gates_db () in
  let pins = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
  let small = ok (G.new_interface db ~pin_interface:pins ~length:4 ~width:2) in
  let large = ok (G.new_interface db ~pin_interface:pins ~length:8 ~width:4) in
  Alcotest.(check (list surrogate))
    "same pins at both interface versions"
    (ok (Database.subclass_members db small "Pins"))
    (ok (Database.subclass_members db large "Pins"));
  check_bool "different expansions" true
    (not
       (Value.equal
          (ok (Database.get_attr db small "Length"))
          (ok (Database.get_attr db large "Length"))));
  (* adding a pin at the abstract level appears everywhere below *)
  let impl = ok (G.new_implementation db ~interface:small ()) in
  let before = List.length (ok (Database.subclass_members db impl "Pins")) in
  let _ =
    ok
      (Database.new_subobject db ~parent:pins ~subclass:"Pins"
         ~attrs:[ ("InOut", G.io_value G.In); ("PinLocation", Value.point 0 9) ]
         ())
  in
  check_int "new pin visible two levels down" (before + 1)
    (List.length (ok (Database.subclass_members db impl "Pins")))

(* The kernel's instrumentation observes the scenario: inherited reads
   land in the inheritance.resolve latency histogram. *)
let test_metrics_observed () =
  let module Obs = Compo_obs.Metrics in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "inherited read" (Value.Int 4)
    (ok (Database.get_attr db impl "Length"));
  (match Obs.find "inheritance.resolve" with
  | Some (Obs.Histogram h) ->
      check_bool "resolutions recorded" true (h.Obs.h_count > 0)
  | Some _ | None -> Alcotest.fail "inheritance.resolve histogram missing");
  check_bool "store lookups counted" true (Obs.counter_value "store.lookup" > 0)

let suite =
  ( "gates-scenario",
    [
      case "F1: flip-flop complex object" test_flip_flop_structure;
      case "F2: interface/implementation" test_interface_implementation;
      case "F3+C6: composite with placed components" test_composite_component;
      case "F4: one interface, two roles" test_dual_role;
      case "section 4.3: tailored permeability" test_tailored_permeability;
      case "section 4.2: abstraction hierarchy" test_interface_hierarchy;
      case "instrumentation observes the scenario" test_metrics_observed;
    ] )
