(* Crash-recovery torture driver: make torture-check.

   For every registered failpoint site, arm a crash (or fault) at that
   site, run a scripted workload against a journaled database until the
   trap springs, "reboot" (reopen the directory), and verify that the
   recovered state is byte-for-byte semantically equal to an in-memory
   oracle that executed some prefix of the same workload — the prefix at
   the crash, or one operation further when the crash landed after the
   record became durable.  Recovery-phase scenarios crash the recovery
   itself and prove the second reopen still lands on the full state.

   Every scenario then appends one more operation and reopens once more,
   proving the recovered store stays writable.  The run writes
   torture-check.log and exits non-zero on the first unrecoverable crash
   point. *)

open Compo_core
open Compo_storage
module Failpoint = Compo_faults.Failpoint

let log_chan = ref None

let logf fmt =
  Printf.ksprintf
    (fun s ->
      print_endline s;
      match !log_chan with
      | None -> ()
      | Some c ->
          output_string c (s ^ "\n");
          flush c)
    fmt

let failures = ref 0

let failf sc fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      logf "FAIL [%s] %s" sc s)
    fmt

let ok what = function
  | Ok v -> v
  | Error e ->
      logf "FATAL: %s: %s" what (Errors.to_string e);
      exit 2

(* ------------------------------------------------------------------ *)
(* The workload, abstracted over journaled vs. plain execution         *)

type exec = {
  x_define_obj : Schema.obj_type -> (unit, Errors.t) result;
  x_define_inher : Schema.inher_rel_type -> (unit, Errors.t) result;
  x_create_class : string -> string -> (unit, Errors.t) result;
  x_new_object :
    string option ->
    string ->
    (string * Value.t) list ->
    (Surrogate.t, Errors.t) result;
  x_new_subobject :
    Surrogate.t ->
    string ->
    (string * Value.t) list ->
    (Surrogate.t, Errors.t) result;
  x_set_attr : Surrogate.t -> string -> Value.t -> (unit, Errors.t) result;
  x_bind :
    string -> Surrogate.t -> Surrogate.t -> (Surrogate.t, Errors.t) result;
  x_unbind : Surrogate.t -> (unit, Errors.t) result;
  x_delete : Surrogate.t -> (unit, Errors.t) result;
  x_checkpoint : unit -> (unit, Errors.t) result;
}

let journal_exec ?(skip_checkpoints = false) j =
  {
    x_define_obj = Journal.define_obj_type j;
    x_define_inher = Journal.define_inher_rel_type j;
    x_create_class = (fun name mt -> Journal.create_class j ~name ~member_type:mt);
    x_new_object = (fun cls ty attrs -> Journal.new_object j ?cls ~ty ~attrs ());
    x_new_subobject =
      (fun parent subclass attrs ->
        Journal.new_subobject j ~parent ~subclass ~attrs ());
    x_set_attr = Journal.set_attr j;
    x_bind =
      (fun via transmitter inheritor ->
        Journal.bind j ~via ~transmitter ~inheritor ());
    x_unbind = Journal.unbind j;
    x_delete = (fun s -> Journal.delete j s);
    x_checkpoint =
      (fun () -> if skip_checkpoints then Ok () else Journal.checkpoint j);
  }

let oracle_exec db =
  {
    x_define_obj = Database.define_obj_type db;
    x_define_inher = Database.define_inher_rel_type db;
    x_create_class = (fun name mt -> Database.create_class db ~name ~member_type:mt);
    x_new_object = (fun cls ty attrs -> Database.new_object db ?cls ~ty ~attrs ());
    x_new_subobject =
      (fun parent subclass attrs ->
        Database.new_subobject db ~parent ~subclass ~attrs ());
    x_set_attr = Database.set_attr db;
    x_bind =
      (fun via transmitter inheritor ->
        Database.bind db ~via ~transmitter ~inheritor ());
    x_unbind = Database.unbind db;
    x_delete = (fun s -> Database.delete db s);
    x_checkpoint = (fun () -> Ok ());
  }

type env = (string, Surrogate.t) Hashtbl.t

let need env name =
  match Hashtbl.find_opt env name with
  | Some s -> s
  | None -> failwith ("torture: unbound workload name " ^ name)

type step = { s_name : string; s_run : exec -> env -> (unit, Errors.t) result }

let step s_name s_run = { s_name; s_run }
let unit_op f x env = f x env
let naming name f x env = Result.map (Hashtbl.replace env name) (f x env)
let attr name domain = { Schema.attr_name = name; attr_domain = domain }

let obj_type ?(subclasses = []) ?inheritor_in name attrs =
  {
    Schema.ot_name = name;
    ot_inheritor_in = inheritor_in;
    ot_attrs = attrs;
    ot_subclasses = subclasses;
    ot_subrels = [];
    ot_constraints = [];
  }

(* One journal operation per step, so "executed the first K steps" is
   exactly "logged the first K records" (checkpoints log nothing and
   change no semantics).  The mix covers every logged operation kind:
   schema definition, classes, objects, subobjects, value-inheritance
   bind/unbind, attribute updates down inheritance chains, deletion, and
   two checkpoints. *)
let workload =
  [
    step "define Bore"
      (unit_op (fun x _ ->
           x.x_define_obj (obj_type "Bore" [ attr "Radius" Domain.Integer ])));
    step "define Part"
      (unit_op (fun x _ ->
           x.x_define_obj
             (obj_type "Part"
                ~subclasses:
                  [ { Schema.sc_name = "Bores"; sc_member = Schema.Named_type "Bore" } ]
                [ attr "Weight" Domain.Integer; attr "Label" Domain.String ])));
    step "define AllOf_Part"
      (unit_op (fun x _ ->
           x.x_define_inher
             {
               Schema.it_name = "AllOf_Part";
               it_transmitter = "Part";
               it_inheritor = None;
               it_inheriting = [ "Weight" ];
               it_attrs = [];
               it_subclasses = [];
               it_constraints = [];
             }));
    step "define Widget"
      (unit_op (fun x _ ->
           x.x_define_obj
             (obj_type "Widget" ~inheritor_in:"AllOf_Part"
                [ attr "Tag" Domain.Integer ])));
    step "class Parts"
      (unit_op (fun x _ -> x.x_create_class "Parts" "Part"));
    step "create p1"
      (naming "p1" (fun x _ ->
           x.x_new_object (Some "Parts") "Part"
             [ ("Weight", Value.Int 5); ("Label", Value.Str "alpha") ]));
    step "create p2"
      (naming "p2" (fun x _ ->
           x.x_new_object (Some "Parts") "Part"
             [ ("Weight", Value.Int 7); ("Label", Value.Str "beta") ]));
    step "bore b1 in p1"
      (naming "b1" (fun x env ->
           x.x_new_subobject (need env "p1") "Bores"
             [ ("Radius", Value.Int 2) ]));
    step "create w1"
      (naming "w1" (fun x _ ->
           x.x_new_object None "Widget" [ ("Tag", Value.Int 1) ]));
    step "create w2"
      (naming "w2" (fun x _ ->
           x.x_new_object None "Widget" [ ("Tag", Value.Int 2) ]));
    step "bind p1->w1"
      (naming "l1" (fun x env ->
           x.x_bind "AllOf_Part" (need env "p1") (need env "w1")));
    step "bind p2->w2"
      (naming "l2" (fun x env ->
           x.x_bind "AllOf_Part" (need env "p2") (need env "w2")));
    step "checkpoint 1" (unit_op (fun x _ -> x.x_checkpoint ()));
    step "update p1.Weight"
      (unit_op (fun x env ->
           x.x_set_attr (need env "p1") "Weight" (Value.Int 11)));
    step "update w1.Tag"
      (unit_op (fun x env -> x.x_set_attr (need env "w1") "Tag" (Value.Int 42)));
    step "unbind w2"
      (unit_op (fun x env -> x.x_unbind (need env "w2")));
    step "create p3"
      (naming "p3" (fun x _ ->
           x.x_new_object (Some "Parts") "Part"
             [ ("Weight", Value.Int 3); ("Label", Value.Str "gamma") ]));
    step "delete w2"
      (unit_op (fun x env -> x.x_delete (need env "w2")));
    step "checkpoint 2" (unit_op (fun x _ -> x.x_checkpoint ()));
    step "update p2.Weight"
      (unit_op (fun x env ->
           x.x_set_attr (need env "p2") "Weight" (Value.Int 20)));
    step "create w3"
      (naming "w3" (fun x _ ->
           x.x_new_object None "Widget" [ ("Tag", Value.Int 3) ]));
    step "bind p3->w3"
      (naming "l3" (fun x env ->
           x.x_bind "AllOf_Part" (need env "p3") (need env "w3")));
    step "update p3.Weight"
      (unit_op (fun x env ->
           x.x_set_attr (need env "p3") "Weight" (Value.Int 4)));
  ]

let n_steps = List.length workload

(* Run the workload until it completes, an operation fails, or a
   failpoint raises a simulated crash.  Returns the number of fully
   executed steps. *)
let run_workload x env =
  let rec go i = function
    | [] -> `Completed i
    | s :: rest -> (
        match s.s_run x env with
        | Ok () -> go (i + 1) rest
        | Error e -> `Errored (i, s.s_name, e)
        | exception Failpoint.Crashed site -> `Crashed (i, s.s_name, site))
  in
  go 0 workload

let oracle_of_prefix k =
  let db = Database.create () in
  let x = oracle_exec db in
  let env = Hashtbl.create 16 in
  let rec go i = function
    | [] -> db
    | _ when i >= k -> db
    | s :: rest -> (
        match s.s_run x env with
        | Ok () -> go (i + 1) rest
        | Error e ->
            failwith
              (Printf.sprintf "oracle failed at %s: %s" s.s_name
                 (Errors.to_string e)))
  in
  go 0 workload

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)

type phase = During_workload | During_recovery

type scenario = {
  sc_name : string;
  sc_site : string;
  sc_after : int;
  sc_action : Failpoint.action;
  sc_phase : phase;
  sc_expect_clean : bool option;
      (** recovered_clean after the reboot, when determinate *)
  sc_expect_stale : bool option;
}

let scenario ?(after = 1) ?(phase = During_workload) ?clean ?stale name site
    action =
  {
    sc_name = name;
    sc_site = site;
    sc_after = after;
    sc_action = action;
    sc_phase = phase;
    sc_expect_clean = clean;
    sc_expect_stale = stale;
  }

let scenarios =
  [
    (* --- crashes around WAL appends --- *)
    scenario "append crash before first frame" "wal.append.before_frame"
      Failpoint.Crash ~clean:true ~stale:false;
    scenario "append crash before frame 14" "wal.append.before_frame"
      Failpoint.Crash ~after:14 ~clean:true ~stale:false;
    scenario "torn frame early" "wal.append.frame" Failpoint.Torn_frame
      ~after:3 ~clean:false ~stale:false;
    scenario "torn frame after checkpoint" "wal.append.frame"
      Failpoint.Torn_frame ~after:13 ~clean:false ~stale:false;
    scenario "short write" "wal.append.frame" (Failpoint.Short_write 4)
      ~after:6 ~clean:false ~stale:false;
    scenario "bit flip in frame" "wal.append.frame" Failpoint.Bit_flip
      ~after:9 ~clean:false ~stale:false;
    scenario "append crash with record durable" "wal.append.after_frame"
      Failpoint.Crash ~after:7 ~clean:true ~stale:false;
    scenario "append crash on last record" "wal.append.after_frame"
      Failpoint.Crash ~after:19 ~clean:true ~stale:false;
    (* --- crashes across the checkpoint protocol --- *)
    scenario "checkpoint refused" "journal.checkpoint.begin"
      Failpoint.Error_result ~clean:true ~stale:false;
    scenario "crash entering checkpoint" "journal.checkpoint.begin"
      Failpoint.Crash ~clean:true ~stale:false;
    scenario "crash entering second checkpoint" "journal.checkpoint.begin"
      Failpoint.Crash ~after:2 ~clean:true ~stale:false;
    scenario "torn snapshot temporary" "snapshot.save.tmp_write"
      Failpoint.Torn_frame ~clean:true ~stale:false;
    scenario "crash before snapshot rename" "snapshot.save.before_rename"
      Failpoint.Crash ~clean:true ~stale:false;
    scenario "crash after snapshot rename" "snapshot.save.after_rename"
      Failpoint.Crash ~stale:true;
    scenario "crash before WAL truncate" "journal.checkpoint.before_truncate"
      Failpoint.Crash ~stale:true;
    scenario "torn WAL header on truncate" "wal.header.write"
      Failpoint.Torn_frame ~clean:false;
    scenario "crash after WAL truncate" "journal.checkpoint.after_truncate"
      Failpoint.Crash ~clean:true ~stale:false;
    (* --- crashes during recovery itself --- *)
    scenario "recovery refused before replay" "journal.open.before_replay"
      Failpoint.Error_result ~phase:During_recovery ~clean:true ~stale:false;
    scenario "crash before replay" "journal.open.before_replay"
      Failpoint.Crash ~phase:During_recovery ~clean:true ~stale:false;
    scenario "crash mid-replay" "journal.open.mid_replay" Failpoint.Crash
      ~after:10 ~phase:During_recovery ~clean:true ~stale:false;
    scenario "crash after replay" "journal.open.after_replay" Failpoint.Crash
      ~phase:During_recovery ~clean:true ~stale:false;
  ]

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "compo-torture-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let prefix_matches k db =
  let oracle = oracle_of_prefix k in
  Fsck.diff ~oracle db

(* After the reboot: no fsck violations, the state equals the crash
   prefix (or one step further when the record outran the crash), and the
   store takes new work across one more reopen. *)
let verify_recovered sc dir ~completed =
  match Journal.open_dir dir with
  | Error e ->
      failf sc.sc_name "reopen after crash failed: %s" (Errors.to_string e)
  | exception Failpoint.Crashed site ->
      failf sc.sc_name "failpoint %s still armed at reopen" site
  | Ok j -> (
      let db = Journal.db j in
      (match Fsck.check_db db with
      | [] -> ()
      | vs ->
          List.iter (fun v -> failf sc.sc_name "fsck: %s" v) vs);
      (match sc.sc_expect_clean with
      | Some want when Journal.recovered_clean j <> want ->
          failf sc.sc_name "recovered_clean = %b, expected %b"
            (Journal.recovered_clean j) want
      | _ -> ());
      (match sc.sc_expect_stale with
      | Some want when Journal.recovered_from_stale_wal j <> want ->
          failf sc.sc_name "recovered_from_stale_wal = %b, expected %b"
            (Journal.recovered_from_stale_wal j) want
      | _ -> ());
      let candidates =
        if completed < n_steps then [ completed + 1; completed ]
        else [ completed ]
      in
      let matched =
        List.find_opt (fun k -> prefix_matches k db = []) candidates
      in
      (match matched with
      | Some k ->
          logf "  ok [%s] state = workload prefix %d/%d (crashed in step %d)"
            sc.sc_name k n_steps (completed + 1)
      | None ->
          let k = List.hd candidates in
          List.iter
            (fun d -> failf sc.sc_name "diff vs prefix %d: %s" k d)
            (prefix_matches k db));
      (* the recovered store must stay appendable across another reboot *)
      match Schema.find (Database.schema db) "Part" with
      | None -> Journal.close j
      | Some _ ->
          let p =
            ok "continuation append"
              (Journal.new_object j ~ty:"Part"
                 ~attrs:[ ("Weight", Value.Int 99); ("Label", Value.Str "cont") ]
                 ())
          in
          Journal.close j;
          let j2 = ok "second reopen" (Journal.open_dir dir) in
          if not (Store.mem (Database.store (Journal.db j2)) p) then
            failf sc.sc_name "continuation object lost across reopen";
          (match Fsck.check_db (Journal.db j2) with
          | [] -> ()
          | vs ->
              List.iter
                (fun v -> failf sc.sc_name "fsck after continuation: %s" v)
                vs);
          Journal.close j2)

let run_workload_scenario sc dir =
  let j = ok "open" (Journal.open_dir dir) in
  let env = Hashtbl.create 16 in
  Failpoint.arm ~after:sc.sc_after sc.sc_site sc.sc_action;
  let outcome = run_workload (journal_exec j) env in
  Failpoint.disarm_all ();
  Journal.crash j;
  match outcome with
  | `Completed _ ->
      failf sc.sc_name "failpoint %s never fired during the workload"
        sc.sc_site
  | `Errored (i, name, _) | `Crashed (i, name, _) ->
      logf "  [%s] %s at step %d (%s)" sc.sc_name
        (Failpoint.action_to_string sc.sc_action)
        (i + 1) name;
      verify_recovered sc dir ~completed:i

let run_recovery_scenario sc dir =
  (* build the full state with no checkpoints so recovery has the whole
     workload to replay, then crash recovery itself *)
  let j = ok "open" (Journal.open_dir dir) in
  let env = Hashtbl.create 16 in
  (match run_workload (journal_exec ~skip_checkpoints:true j) env with
  | `Completed _ -> ()
  | `Errored (_, name, e) ->
      logf "FATAL: workload failed at %s: %s" name (Errors.to_string e);
      exit 2
  | `Crashed (_, name, site) ->
      logf "FATAL: unexpected crash at %s (%s)" name site;
      exit 2);
  Journal.crash j;
  Failpoint.arm ~after:sc.sc_after sc.sc_site sc.sc_action;
  (match Journal.open_dir dir with
  | exception Failpoint.Crashed site ->
      logf "  [%s] crashed recovery at %s" sc.sc_name site
  | Error e ->
      logf "  [%s] recovery refused: %s" sc.sc_name (Errors.to_string e)
  | Ok j ->
      Journal.close j;
      failf sc.sc_name "failpoint %s never fired during recovery" sc.sc_site);
  Failpoint.disarm_all ();
  verify_recovered sc dir ~completed:n_steps

let () =
  let log_path =
    match Sys.argv with
    | [| _; "--log"; path |] -> path
    | _ -> "torture-check.log"
  in
  log_chan := Some (open_out log_path);
  logf "torture: %d scenarios over %d registered crash points"
    (List.length scenarios)
    (List.length (Failpoint.all_sites ()));
  let covered = Hashtbl.create 16 in
  List.iter
    (fun sc ->
      Hashtbl.replace covered sc.sc_site ();
      let dir = tmp_dir () in
      (match sc.sc_phase with
      | During_workload -> run_workload_scenario sc dir
      | During_recovery -> run_recovery_scenario sc dir);
      rm_rf dir)
    scenarios;
  (* every registered site must be exercised, and the floor holds *)
  List.iter
    (fun site ->
      if not (Hashtbl.mem covered site) then
        failf "coverage" "registered failpoint %s has no scenario" site)
    (Failpoint.all_sites ());
  if Hashtbl.length covered < 12 then
    failf "coverage" "only %d distinct crash points exercised"
      (Hashtbl.length covered);
  if !failures = 0 then begin
    logf "torture: all %d scenarios recovered (%d crash points)"
      (List.length scenarios) (Hashtbl.length covered);
    exit 0
  end
  else begin
    logf "torture: %d failures (see %s)" !failures log_path;
    exit 1
  end
