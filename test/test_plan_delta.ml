(* Property suite for delta-maintained plan state (the incremental
   twin of test_par_diff's black-box oracle):

   - column equivalence: after any random mutation sequence, every
     delta-maintained structure claiming currency must equal a
     from-scratch derivation ([Plan.self_check] refills every cell);
   - tombstone compaction preserves live row order;
   - the dirty-fraction fallback actually fires (plan.delta.rebuild);
   - a lost change-log window (overflow) falls back to a full rebuild;
   - COMPO_NO_DELTA is a strict boolean and disables the delta path;

   plus the widened-compiler ports: the quantifier and multi-segment
   shapes from test_eval / test_query_composite re-asserted through the
   compiled engine, with engagement checks so a silent stand-down fails
   the suite. *)

open Compo_core
open Helpers
module Obs = Compo_obs.Metrics
module G = Compo_scenarios.Gates
module D = Test_par_diff

(* Every test toggles process-global plan knobs; reset them on exit. *)
let with_plan f () =
  Fun.protect
    ~finally:(fun () ->
      Plan.set_enabled true;
      Plan.set_delta_enabled true;
      Plan.set_dirty_threshold 0.5;
      Plan.set_compact_min 64)
    f

let with_metrics f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

(* a compiled select that must actually engage the compiled engine *)
let compiled_select db ~cls where =
  let scans0 = Plan.compiled_scans () in
  let rows = ok (Database.select db ~cls ~where ()) in
  Alcotest.(check bool) "compiled engine engaged" true
    (Plan.compiled_scans () > scans0);
  rows

let interp_select db ~cls where =
  Plan.set_enabled false;
  Fun.protect ~finally:(fun () -> Plan.set_enabled true) @@ fun () ->
  ok (Database.select db ~cls ~where ())

let check_rows = Alcotest.(check (list surrogate))

(* ------------------------------------------------------------------ *)
(* A tiny single-type population for the targeted structure tests. *)

let flat_db n =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "T";
         ot_inheritor_in = None;
         ot_attrs =
           [
             { Schema.attr_name = "A"; attr_domain = Domain.Integer };
             { Schema.attr_name = "P"; attr_domain = Domain.Ref None };
             { Schema.attr_name = "W"; attr_domain = Domain.Ref None };
           ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Database.create_class db ~name:"All" ~member_type:"T");
  let objs =
    List.init n (fun i ->
        ok
          (Database.new_object db ~cls:"All" ~ty:"T"
             ~attrs:[ ("A", Value.Int i) ]
             ()))
  in
  (db, objs)

(* ------------------------------------------------------------------ *)
(* Column equivalence: random mutation batches against Test_par_diff's
   chain schema, then the exhaustive self-check after every compiled
   select.  The selects draw from the widened pool so single-attribute,
   multi-segment and quantifier columns all get delta-maintained. *)

let test_column_equivalence () =
  for seed = 3000 to 3009 do
    let r = D.make_rng seed in
    let db = Database.create () in
    let depth = ok (D.random_schema r db) in
    let _n, levels = ok (D.random_population ~cap:120 r db ~depth) in
    let all = List.concat (Array.to_list levels) in
    List.iter
      (fun s ->
        if D.rand r 2 = 0 then
          ok
            (Database.set_attr db s "P"
               (Value.Ref (D.pick r (Array.of_list all)))))
      levels.(0);
    let script = Buffer.create 256 in
    for round = 0 to 7 do
      for _ = 0 to D.rand r 5 do
        D.random_mutation r db levels script
      done;
      let src = D.random_pred_wide r 2 in
      let where = ok (Compo_ddl.Parser.parse_expr src) in
      let (_ : Surrogate.t list) =
        ok (Database.select db ~cls:"Pop" ~where ())
      in
      match Plan.self_check (Database.store db) with
      | [] -> ()
      | problems ->
          Alcotest.failf
            "seed %d round %d (%s): delta state diverged from rebuild:\n\
             %s\n\
             mutation script:\n\
             %s"
            seed round src
            (String.concat "\n" problems)
            (Buffer.contents script)
    done
  done

(* ------------------------------------------------------------------ *)
(* Compaction: force the threshold down, delete a third of the extent,
   and require (a) the tombstones actually got squeezed out and (b) the
   surviving live slots kept their relative order. *)

let test_compaction_preserves_order () =
  Plan.set_compact_min 1;
  let db, objs = flat_db 42 in
  let where = Expr.(path [ "A" ] >= int 0) in
  let (_ : Surrogate.t list) = compiled_select db ~cls:"All" where in
  let before, dead0 =
    match Plan.registry_live (Database.store db) with
    | Some s -> s
    | None -> Alcotest.fail "no registry after a compiled select"
  in
  check_int "fresh registry has no tombstones" 0 dead0;
  let victims =
    List.filteri (fun i _ -> i mod 3 = 0) objs
  in
  List.iter (fun s -> ok (Database.delete db ~force:true s)) victims;
  let rows = compiled_select db ~cls:"All" where in
  check_int "survivors" (42 - List.length victims) (List.length rows);
  let after, dead1 =
    match Plan.registry_live (Database.store db) with
    | Some s -> s
    | None -> Alcotest.fail "registry vanished"
  in
  check_int "compaction ran: no tombstones left" 0 dead1;
  let expected =
    List.filter
      (fun s -> not (List.exists (Surrogate.equal s) victims))
      before
  in
  check_rows "live slot order preserved across compaction" expected after;
  match Plan.self_check (Database.store db) with
  | [] -> ()
  | ps -> Alcotest.failf "post-compaction self-check: %s" (String.concat "; " ps)

(* ------------------------------------------------------------------ *)
(* Dirty-fraction fallback: at threshold 0 any dirty row rebuilds the
   column from scratch; at threshold 1 the same write is absorbed by
   refilling cells in place. *)

let test_dirty_fraction_fallback () =
  with_metrics @@ fun () ->
  let db, objs = flat_db 20 in
  let where = Expr.(path [ "A" ] > int 5) in
  let (_ : Surrogate.t list) = compiled_select db ~cls:"All" where in
  Plan.set_dirty_threshold 0.;
  ok (Database.set_attr db (List.hd objs) "A" (Value.Int 100));
  let rebuilds0 = Obs.counter_value "plan.delta.rebuild" in
  let rows = compiled_select db ~cls:"All" where in
  Alcotest.(check bool) "mutated row now matches" true
    (List.exists (Surrogate.equal (List.hd objs)) rows);
  Alcotest.(check bool) "threshold 0: fallback rebuild fired" true
    (Obs.counter_value "plan.delta.rebuild" > rebuilds0);
  Plan.set_dirty_threshold 1.;
  ok (Database.set_attr db (List.hd objs) "A" (Value.Int (-1)));
  let rebuilds1 = Obs.counter_value "plan.delta.rebuild" in
  let cells1 = Obs.counter_value "plan.delta.cells" in
  let rows = compiled_select db ~cls:"All" where in
  Alcotest.(check bool) "mutated row dropped again" true
    (not (List.exists (Surrogate.equal (List.hd objs)) rows));
  check_int "threshold 1: no fallback rebuild" rebuilds1
    (Obs.counter_value "plan.delta.rebuild");
  Alcotest.(check bool) "threshold 1: cells refilled in place" true
    (Obs.counter_value "plan.delta.cells" > cells1)

(* ------------------------------------------------------------------ *)
(* Change-log overflow: more mutations than Store.change_log_cap lose
   the window, so the next select must take the wholesale rebuild (and
   still be right). *)

let test_overflow_falls_back () =
  with_metrics @@ fun () ->
  let db, objs = flat_db 8 in
  let where = Expr.(path [ "A" ] >= int 4) in
  let (_ : Surrogate.t list) = compiled_select db ~cls:"All" where in
  let victim = List.hd objs in
  for i = 1 to Store.change_log_cap + 50 do
    ok (Database.set_attr db victim "A" (Value.Int (i mod 9)))
  done;
  let rebuilds0 = Obs.counter_value "plan.delta.rebuild" in
  let builds0 = Obs.counter_value "plan.registry.build" in
  let rows = compiled_select db ~cls:"All" where in
  check_rows "overflow still selects correctly"
    (interp_select db ~cls:"All" where)
    rows;
  Alcotest.(check bool) "lost window counted as delta rebuild" true
    (Obs.counter_value "plan.delta.rebuild" > rebuilds0);
  Alcotest.(check bool) "registry rebuilt from scratch" true
    (Obs.counter_value "plan.registry.build" > builds0)

(* ------------------------------------------------------------------ *)
(* COMPO_NO_DELTA: strict boolean, and off really disables the delta
   path (rows stay correct either way — the escape hatch is about
   maintenance strategy, not semantics). *)

let ok_result = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unexpected config error: %s" msg

let test_no_delta_env () =
  let getenv v = function x when x = "COMPO_NO_DELTA" -> v | _ -> None in
  (match Plan.configure_from_env ~getenv:(getenv (Some "maybe")) () with
  | Ok () -> Alcotest.fail "COMPO_NO_DELTA=maybe must be rejected"
  | Error msg ->
      Alcotest.(check bool) "error names the variable" true
        (contains msg "COMPO_NO_DELTA"));
  ok_result (Plan.configure_from_env ~getenv:(getenv (Some "1")) ());
  Alcotest.(check bool) "1 disables" false (Plan.delta_enabled ());
  ok_result (Plan.configure_from_env ~getenv:(getenv (Some "0")) ());
  Alcotest.(check bool) "0 enables" true (Plan.delta_enabled ());
  ok_result (Plan.configure_from_env ~getenv:(getenv None) ());
  Alcotest.(check bool) "unset is a no-op" true (Plan.delta_enabled ());
  (* behaviour with the hatch pulled: stale stamps rebuild, same rows *)
  Plan.set_delta_enabled false;
  let db, objs = flat_db 12 in
  let where = Expr.(path [ "A" ] < int 6) in
  let r0 = compiled_select db ~cls:"All" where in
  check_int "before the write" 6 (List.length r0);
  ok (Database.set_attr db (List.nth objs 8) "A" (Value.Int 0));
  let r1 = compiled_select db ~cls:"All" where in
  check_rows "no-delta rows match interpreted"
    (interp_select db ~cls:"All" where)
    r1;
  check_int "after the write" 7 (List.length r1)

(* ------------------------------------------------------------------ *)
(* Widened-compiler ports (test_eval / test_query_composite shapes,
   re-asserted through the compiled scan with engagement checks). *)

(* count over an inherited collection: top-down component selection *)
let test_compiled_count () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let unbound =
    ok (Database.new_object db ~cls:"Implementations" ~ty:"GateImplementation" ())
  in
  ignore unbound;
  let where = Expr.(count [ "Pins" ] = int 3) in
  let rows = compiled_select db ~cls:"Implementations" where in
  check_rows "count(Pins) = 3 finds the bound implementation" [ impl ] rows;
  check_rows "parity with interpreted"
    (interp_select db ~cls:"Implementations" where)
    rows

(* count with an inline filter over subobject collections *)
let test_compiled_count_filtered () =
  let db = gates_db () in
  let _eg1 = ok (G.new_elementary_gate db ~func:"NOR" ~x:0 ~y:0 ()) in
  ok (Database.create_class db ~name:"EGates" ~member_type:"ElementaryGate");
  let eg2 = ok (Database.new_object db ~cls:"EGates" ~ty:"ElementaryGate" ()) in
  ignore eg2;
  let where =
    Expr.(count ~where:(path [ "Pins"; "InOut" ] = enum "OUT") [ "Pins" ] = int 1)
  in
  let rows = compiled_select db ~cls:"EGates" where in
  check_rows "parity with interpreted"
    (interp_select db ~cls:"EGates" where)
    rows

(* sum along a 2-segment path (Bores.Length, the paper's steel demo) *)
let test_compiled_sum () =
  let db = steel_db () in
  let with_bores =
    ok
      (Compo_scenarios.Steel.new_girder_interface db ~length:100 ~height:10
         ~width:10
         ~bores:[ (10, 2, (0, 0)); (10, 3, (5, 0)); (12, 5, (9, 0)) ])
  in
  let without =
    ok
      (Compo_scenarios.Steel.new_girder_interface db ~length:50 ~height:5
         ~width:5 ~bores:[])
  in
  ignore without;
  let where = Expr.(sum [ "Bores"; "Length" ] = int 10) in
  let rows = compiled_select db ~cls:"GirderInterfaces" where in
  check_rows "sum over bores selects the bored interface" [ with_bores ] rows;
  check_rows "parity with interpreted"
    (interp_select db ~cls:"GirderInterfaces" where)
    rows

(* forall / exists with binders over inherited collections *)
let test_compiled_forall_exists () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let unbound =
    ok (Database.new_object db ~cls:"Implementations" ~ty:"GateImplementation" ())
  in
  (* exists an OUT pin: true through the binding, false (empty range)
     for the unbound implementation *)
  let ex = Expr.(exists [ ("p", [ "Pins" ]) ] (path [ "p"; "InOut" ] = enum "OUT")) in
  let rows = compiled_select db ~cls:"Implementations" ex in
  check_rows "exists finds only the bound implementation" [ impl ] rows;
  check_rows "exists parity"
    (interp_select db ~cls:"Implementations" ex)
    rows;
  (* forall over the empty range is true: the unbound one qualifies *)
  let fa = Expr.(forall [ ("p", [ "Pins" ]) ] (int 1 = int 2)) in
  let rows = compiled_select db ~cls:"Implementations" fa in
  check_rows "forall-empty = true keeps exactly the unbound one" [ unbound ]
    rows;
  check_rows "forall parity"
    (interp_select db ~cls:"Implementations" fa)
    rows

(* strict 3-segment reference chain: flat multi-segment fill *)
let test_compiled_multi_segment () =
  let db, objs = flat_db 6 in
  let a = List.nth objs 0 and p = List.nth objs 1 and w = List.nth objs 2 in
  ok (Database.set_attr db p "P" (Value.Ref a));
  ok (Database.set_attr db w "W" (Value.Ref p));
  let where = Expr.(path [ "W"; "P"; "A" ] = int 0) in
  let rows = compiled_select db ~cls:"All" where in
  check_rows "W.P.A resolves across two references" [ w ] rows;
  check_rows "parity with interpreted"
    (interp_select db ~cls:"All" where)
    rows;
  (* the maintained version: re-point the middle reference and the
     delta pass must dirty exactly the dependent chain *)
  let a2 = List.nth objs 3 in
  ok (Database.set_attr db a2 "A" (Value.Int 0));
  ok (Database.set_attr db p "P" (Value.Ref a2));
  let rows = compiled_select db ~cls:"All" where in
  check_rows "still matches through the new chain" [ w ] rows;
  ok (Database.set_attr db a2 "A" (Value.Int 99));
  let rows = compiled_select db ~cls:"All" where in
  check_rows "second-segment write breaks the match" [] rows;
  match Plan.self_check (Database.store db) with
  | [] -> ()
  | ps -> Alcotest.failf "multi-segment self-check: %s" (String.concat "; " ps)

let suite =
  ( "plan-delta",
    [
      case "column equivalence under random mutation sequences"
        (with_plan test_column_equivalence);
      case "tombstone compaction preserves live row order"
        (with_plan test_compaction_preserves_order);
      case "dirty-fraction fallback fires (plan.delta.rebuild)"
        (with_plan test_dirty_fraction_fallback);
      case "change-log overflow falls back to a full rebuild"
        (with_plan test_overflow_falls_back);
      case "COMPO_NO_DELTA: strict boolean, correct either way"
        (with_plan test_no_delta_env);
      case "compiled count over inherited pins"
        (with_plan test_compiled_count);
      case "compiled filtered count over subobjects"
        (with_plan test_compiled_count_filtered);
      case "compiled sum along Bores.Length"
        (with_plan test_compiled_sum);
      case "compiled forall / exists with binders"
        (with_plan test_compiled_forall_exists);
      case "compiled 3-segment reference chain, delta-maintained"
        (with_plan test_compiled_multi_segment);
    ] )
