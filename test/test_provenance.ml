(* Provenance of inherited reads (the chain/permeability/cache record
   behind [compo explain read]) and the query plan report behind
   [compo explain query]. *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module Prov = Compo_obs.Provenance
module Metrics = Compo_obs.Metrics

(* The collector is process-global; leave it disabled and empty whatever
   the test body does. *)
let with_prov f () =
  Prov.clear ();
  Fun.protect
    ~finally:(fun () ->
      Prov.disable ();
      Prov.clear ())
    f

(* One bound gate: NOR interface (Length 4) + implementation inheriting
   through AllOf_GateInterface. *)
let bound_gate db =
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  (iface, impl)

let test_chain_and_permeability () =
  let db = gates_db () in
  let iface, impl = bound_gate db in
  let v, r = ok (Database.explain_attr db impl "Length") in
  check_value "resolved value" (Value.Int 4) v;
  check_string "origin" (Surrogate.to_string impl) r.Prov.r_object;
  check_string "attr" "Length" r.Prov.r_attr;
  check_int "two hops: inheritor then transmitter" 2 (List.length r.Prov.r_hops);
  (match r.Prov.r_hops with
  | [ h0; h1 ] ->
      check_string "hop 0 is the origin" (Surrogate.to_string impl)
        h0.Prov.hop_object;
      (match h0.Prov.hop_kind with
      | Prov.Follow { via; transmitter; permeable; link = _ } ->
          check_string "via the paper's relationship" "AllOf_GateInterface" via;
          check_string "to the interface" (Surrogate.to_string iface)
            transmitter;
          check_bool "Length is in the inheriting clause" true permeable
      | _ -> Alcotest.fail "hop 0 should follow the binding");
      check_string "hop 1 is the interface" (Surrogate.to_string iface)
        h1.Prov.hop_object;
      check_bool "hop 1 owns the attribute" true (h1.Prov.hop_kind = Prov.Local)
  | _ -> Alcotest.fail "unexpected chain shape");
  check_bool "source is the interface" true
    (Prov.source_of r = Some (Surrogate.to_string iface))

let test_cache_outcomes () =
  let db = gates_db () in
  let _iface, impl = bound_gate db in
  let store = Database.store db in
  let _, r1 = ok (Database.explain_attr db impl "Length") in
  check_string "first read misses" "miss"
    (Prov.cache_outcome_to_string r1.Prov.r_cache);
  let _, r2 = ok (Database.explain_attr db impl "Length") in
  check_string "second read hits" "hit"
    (Prov.cache_outcome_to_string r2.Prov.r_cache);
  check_int "a hit still explains the full chain" 2
    (List.length r2.Prov.r_hops);
  (* read hooks (lock inheritance) bypass the cache *)
  let hook = Store.add_read_hook store (fun _ -> ()) in
  let _, r3 = ok (Database.explain_attr db impl "Length") in
  Store.remove_hook store hook;
  check_string "hooked read bypasses" "bypass"
    (Prov.cache_outcome_to_string r3.Prov.r_cache);
  Store.set_resolve_cache_enabled store false;
  let _, r4 = ok (Database.explain_attr db impl "Length") in
  check_string "disabled cache reports off" "off"
    (Prov.cache_outcome_to_string r4.Prov.r_cache)

let test_unbound_reads_null () =
  let db = gates_db () in
  let _iface, impl = bound_gate db in
  ok (Database.unbind db impl);
  let v, r = ok (Database.explain_attr db impl "Length") in
  check_value "unbound read yields Null" Value.Null v;
  (match r.Prov.r_hops with
  | [ h ] -> check_bool "single unbound hop" true (h.Prov.hop_kind = Prov.Unbound)
  | _ -> Alcotest.fail "expected exactly one hop");
  check_bool "no source" true (Prov.source_of r = None)

let test_collector_mechanics () =
  Prov.enable ();
  (* recording without a flight is a no-op *)
  Prov.add_hop { Prov.hop_object = "@0"; hop_type = "T"; hop_kind = Prov.Local };
  Prov.finish_read ~cache:Prov.Off ~value:"x";
  check_bool "nothing recorded without begin_read" true (Prov.last () = None);
  (* abort drops the flight *)
  Prov.begin_read ~origin:"@1" ~attr:"A";
  Prov.abort_read ();
  check_bool "aborted read leaves no record" true (Prov.last () = None);
  (* the recent ring clips to 64, newest first *)
  for i = 1 to 70 do
    Prov.begin_read ~origin:(Printf.sprintf "@%d" i) ~attr:"A";
    Prov.finish_read ~cache:Prov.Off ~value:"v"
  done;
  let recent = Prov.recent () in
  check_int "recent clips to 64" 64 (List.length recent);
  check_string "newest first" "@70" (List.hd recent).Prov.r_object;
  (* disable clears *)
  Prov.disable ();
  check_bool "disable clears the ring" true (Prov.recent () = [])

let test_disabled_records_nothing () =
  let db = gates_db () in
  let _iface, impl = bound_gate db in
  check_bool "collector starts disabled" false (Prov.enabled ());
  check_value "plain read" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  check_bool "nothing recorded while disabled" true (Prov.last () = None)

let test_pp_read () =
  let db = gates_db () in
  let _iface, impl = bound_gate db in
  let _, r = ok (Database.explain_attr db impl "Length") in
  let rendered = Format.asprintf "%a" Prov.pp_read r in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "report mentions %S" needle) true
        (contains rendered needle))
    [
      "read " ^ Surrogate.to_string impl ^ ".Length = 4";
      "cache: miss";
      "via AllOf_GateInterface";
      "permeability: inherits";
      "-> transmitter";
      "source: attribute is owned here";
    ]

(* ------------------------------------------------------------------ *)
(* Query EXPLAIN                                                       *)

let catalog_db () =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs =
           [
             { Schema.attr_name = "Kind"; attr_domain = Domain.String };
             { Schema.attr_name = "Weight"; attr_domain = Domain.Integer };
           ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Database.create_class db ~name:"Parts" ~member_type:"Part");
  List.iter
    (fun (kind, weight) ->
      ignore
        (ok
           (Database.new_object db ~cls:"Parts" ~ty:"Part"
              ~attrs:[ ("Kind", Value.Str kind); ("Weight", Value.Int weight) ]
              ())))
    [ ("bolt", 5); ("nut", 2); ("bolt", 7); ("washer", 1) ];
  db

let test_explain_scan () =
  let db = catalog_db () in
  let where = Expr.(path [ "Weight" ] > int 2) in
  let rows, ex = ok (Database.explain_select db ~cls:"Parts" ~where ()) in
  check_int "rows" 2 (List.length rows);
  (match ex.Query.ex_access with
  | Query.Seq_scan { extent } -> check_string "scans the extent" "Parts" extent
  | other ->
      Alcotest.failf "expected a scan, got %s" (Query.access_to_string other));
  check_int "estimated = extent size" 4 ex.Query.ex_candidates;
  check_int "actual = surviving rows" 2 ex.Query.ex_rows;
  check_bool "the whole predicate is residual" true
    (ex.Query.ex_residual = ex.Query.ex_where && ex.Query.ex_where <> None)

let test_explain_hash () =
  let db = catalog_db () in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let rows, ex =
    ok
      (Database.explain_select db ~cls:"Parts"
         ~where:Expr.(path [ "Kind" ] = str "bolt")
         ())
  in
  check_int "rows" 2 (List.length rows);
  (match ex.Query.ex_access with
  | Query.Hash_eq { attr; value } ->
      check_string "indexed attr" "Kind" attr;
      check_string "indexed value" "\"bolt\"" value
  | other ->
      Alcotest.failf "expected the hash index, got %s"
        (Query.access_to_string other));
  check_bool "no residual after the indexed conjunct" true
    (ex.Query.ex_residual = None);
  check_int "index served exactly the matches" 2 ex.Query.ex_candidates

let test_explain_range_and_residual () =
  let db = catalog_db () in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let _, ex =
    ok
      (Database.explain_select db ~cls:"Parts"
         ~where:Expr.(path [ "Weight" ] <= int 5)
         ())
  in
  (match ex.Query.ex_access with
  | Query.Ordered_range { attr; interval } ->
      check_string "indexed attr" "Weight" attr;
      check_string "interval rendering" "(-inf, 5]" interval
  | other ->
      Alcotest.failf "expected a range, got %s" (Query.access_to_string other));
  (* a conjunction peels the indexable conjunct and keeps the rest *)
  let rows, ex =
    ok
      (Database.explain_select db ~cls:"Parts"
         ~where:
           Expr.(path [ "Weight" ] <= int 5 && path [ "Kind" ] = str "bolt")
         ())
  in
  check_int "conjunction rows" 1 (List.length rows);
  check_bool "residual keeps the unindexed conjunct" true
    (match ex.Query.ex_residual with
    | Some r -> contains r "Kind"
    | None -> false);
  check_bool "candidates >= rows" true
    (ex.Query.ex_candidates >= ex.Query.ex_rows)

let test_explain_counts_eval_nodes () =
  let db = catalog_db () in
  Metrics.enable ();
  let plan0 = Plan.enabled () in
  Fun.protect ~finally:(fun () ->
      Metrics.disable ();
      Plan.set_enabled plan0)
  @@ fun () ->
  let where = Expr.(path [ "Weight" ] > int 2) in
  (* interpreted engine: the filter stage spends evaluator nodes *)
  Plan.set_enabled false;
  let _, ex = ok (Database.explain_select db ~cls:"Parts" ~where ()) in
  check_bool "interpreted filtering spends evaluator nodes" true
    (ex.Query.ex_eval_nodes > 0);
  check_bool "interpreted plan reported" true (ex.Query.ex_plan = None);
  (* compiled engine: closures over materialized columns, no evaluator *)
  Plan.set_enabled true;
  let rows, ex = ok (Database.explain_select db ~cls:"Parts" ~where ()) in
  check_int "compiled rows" 2 (List.length rows);
  check_int "compiled filtering spends no evaluator nodes" 0
    ex.Query.ex_eval_nodes;
  match ex.Query.ex_plan with
  | None -> Alcotest.fail "expected a compiled plan report"
  | Some r ->
      check_bool "closures compiled" true (r.Plan.rp_closures > 0);
      check_bool "column materialized" true
        (List.exists (fun (a, _, _) -> a = "Weight") r.Plan.rp_columns)

let test_pp_explain_deterministic () =
  let db = catalog_db () in
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  let _, ex =
    ok
      (Database.explain_select db ~cls:"Parts"
         ~where:Expr.(path [ "Kind" ] = str "nut")
         ())
  in
  let rendered = Format.asprintf "%a" (Query.pp_explain ~timings:false) ex in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "plan mentions %S" needle) true
        (contains rendered needle))
    [
      "select Parts";
      "hash index on Kind = \"nut\"";
      "1 candidate(s)";
      "1 row(s)";
    ];
  check_bool "no wall times without ~timings" false (contains rendered "ms")

let suite =
  ( "provenance",
    [
      case "chain and permeability over the gates binding"
        (with_prov test_chain_and_permeability);
      case "cache outcomes: miss, hit, bypass, off"
        (with_prov test_cache_outcomes);
      case "unbound chain ends in Null with no source"
        (with_prov test_unbound_reads_null);
      case "collector mechanics: abort, clipping, disable clears"
        (with_prov test_collector_mechanics);
      case "disabled collector records nothing"
        (with_prov test_disabled_records_nothing);
      case "pp_read renders the full report" (with_prov test_pp_read);
      case "explain: scan access and residual" test_explain_scan;
      case "explain: hash index access" test_explain_hash;
      case "explain: range access and conjunction residual"
        test_explain_range_and_residual;
      case "explain: evaluator node accounting" test_explain_counts_eval_nodes;
      case "explain: deterministic rendering" test_pp_explain_deterministic;
    ] )
