(* The generation-stamped inheritance-resolution cache: invalidation
   semantics on every write path, transactional isolation, and on/off
   result equivalence over the paper scenarios. *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload
module Txn = Compo_txn.Transaction
module Metrics = Compo_obs.Metrics

(* Counter assertions need the global metrics switch on; restore the
   default (off) state whatever the test body does. *)
let with_metrics f =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable f

let test_repeat_read_hits () =
  with_metrics @@ fun () ->
  let db = Database.create () in
  ok (W.chain_schema db ~depth:4);
  let nodes = ok (W.chain_instance db ~depth:4 ~payload:7) in
  let leaf = List.nth nodes 4 in
  check_value "first read walks the chain" (Value.Int 7)
    (ok (Database.get_attr db leaf "Payload"));
  let h0 = Resolve_cache.hits () in
  check_value "second read" (Value.Int 7) (ok (Database.get_attr db leaf "Payload"));
  check_int "second read is served from the cache" 1 (Resolve_cache.hits () - h0);
  check_int "cache holds the resolved leaf" 1
    (Resolve_cache.size (Store.resolve_cache (Database.store db)))

let test_update_visible_transitively () =
  let db = Database.create () in
  ok (W.chain_schema db ~depth:6);
  let nodes = ok (W.chain_instance db ~depth:6 ~payload:7) in
  let root = List.hd nodes in
  (* warm the cache on every node of the chain *)
  List.iter
    (fun n -> check_value "warm" (Value.Int 7) (ok (Database.get_attr db n "Payload")))
    nodes;
  ok (Database.set_attr db root "Payload" (Value.Int 99));
  List.iteri
    (fun i n ->
      check_value
        (Printf.sprintf "node %d sees the update on the next read" i)
        (Value.Int 99)
        (ok (Database.get_attr db n "Payload")))
    nodes

let test_scoped_invalidation_is_selective () =
  with_metrics @@ fun () ->
  let db = gates_db () in
  let iface1 = ok (G.nor_interface db) in
  let impl1 = ok (G.new_implementation db ~interface:iface1 ()) in
  let iface2 = ok (G.nor_interface db) in
  let impl2 = ok (G.new_implementation db ~interface:iface2 ()) in
  (* warm both bindings *)
  check_value "impl1 warm" (Value.Int 4) (ok (Database.get_attr db impl1 "Length"));
  check_value "impl2 warm" (Value.Int 4) (ok (Database.get_attr db impl2 "Length"));
  ok (Database.set_attr db iface1 "Length" (Value.Int 9));
  let h0 = Resolve_cache.hits () in
  check_value "the unrelated binding still answers from the cache" (Value.Int 4)
    (ok (Database.get_attr db impl2 "Length"));
  check_int "unrelated entry survived the scoped bump" 1
    (Resolve_cache.hits () - h0);
  let m0 = Resolve_cache.misses () in
  check_value "the written closure re-resolves to the new value" (Value.Int 9)
    (ok (Database.get_attr db impl1 "Length"));
  check_int "written closure was invalidated" 1 (Resolve_cache.misses () - m0)

let test_unbind_reads_null () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "bound read" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  ok (Database.unbind db impl);
  check_value "read right after unbind is Null, not the cached value"
    Value.Null
    (ok (Database.get_attr db impl "Length"));
  let _ =
    ok (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:iface ~inheritor:impl ())
  in
  check_value "rebinding restores the inherited value" (Value.Int 4)
    (ok (Database.get_attr db impl "Length"))

let test_unbind_in_txn_reads_null () =
  let db = gates_db () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "plain warm read" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  let mg = Txn.create_manager store in
  let t = Txn.begin_txn mg ~user:"alice" in
  ok (Txn.unbind mg t impl);
  check_value "transactional read after unbind" Value.Null
    (ok (Txn.get_attr mg t impl "Length"));
  check_value "plain read after unbind" Value.Null
    (ok (Database.get_attr db impl "Length"));
  ok (Txn.commit mg t);
  check_value "read after commit stays Null" Value.Null
    (ok (Database.get_attr db impl "Length"))

let test_abort_never_serves_aborted_values () =
  let db = gates_db () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "committed value" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  let mg = Txn.create_manager store in
  let t = Txn.begin_txn mg ~user:"alice" in
  ok (Txn.set_attr mg t iface "Length" (Value.Int 9));
  (* a plain read between the write and the abort memoises the
     uncommitted value -- the abort must kill that entry *)
  check_value "plain read sees the in-flight value" (Value.Int 9)
    (ok (Database.get_attr db impl "Length"));
  ok (Txn.abort mg t);
  check_value "read after abort serves the pre-transaction value"
    (Value.Int 4)
    (ok (Database.get_attr db impl "Length"))

(* Selections plus a full attribute sweep, with the cache on, must equal
   the same run with the cache off -- over both paper scenarios. *)
let sweep_gates db =
  let impls =
    ok (Database.select db ~cls:"Implementations"
          ~where:Expr.(path [ "Length" ] <= int 5)
          ())
  in
  List.concat_map
    (fun s ->
      List.map
        (fun a -> ok (Database.get_attr db s a))
        [ "Length"; "Width"; "Function"; "TimeBehavior" ])
    impls

let test_no_cache_equivalence_gates () =
  let db = gates_db () in
  for i = 1 to 8 do
    let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
    let iface =
      ok (G.new_interface db ~pin_interface:pi ~length:(4 + (i mod 4)) ~width:2)
    in
    ignore (ok (G.new_implementation db ~interface:iface ~time_behavior:i ()))
  done;
  let store = Database.store db in
  let cached = sweep_gates db in
  Store.set_resolve_cache_enabled store false;
  let uncached = sweep_gates db in
  Store.set_resolve_cache_enabled store true;
  let rewarmed = sweep_gates db in
  Alcotest.(check (list value)) "cache off matches cache on" cached uncached;
  Alcotest.(check (list value)) "re-enabling matches too" cached rewarmed

let sweep_steel db structure =
  let girders =
    ok
      (Database.select_subobjects db ~parent:structure ~subclass:"Girders"
         ~where:Expr.(path [ "Length" ] = int 200)
         ())
  in
  List.concat_map
    (fun s ->
      List.map (fun a -> ok (Database.get_attr db s a)) [ "Length"; "Height"; "Width" ])
    girders

let test_no_cache_equivalence_steel () =
  let db = steel_db () in
  let structure = ok (W.screwed_structure db ~girders:4 ~bores_per_joint:2) in
  let store = Database.store db in
  let cached = sweep_steel db structure in
  Store.set_resolve_cache_enabled store false;
  let uncached = sweep_steel db structure in
  Alcotest.(check (list value)) "cache off matches cache on" cached uncached;
  check_bool "the sweep was not vacuous" true (cached <> [])

let test_stale_fill_dies () =
  let c = Resolve_cache.create () in
  let s = Surrogate.of_int 1 in
  (* a fill whose generation predates an invalidation must be refused *)
  let gen = Resolve_cache.generation c in
  Resolve_cache.invalidate_global c;
  Resolve_cache.fill c ~gen s "A" (Value.Int 1);
  check_bool "stale fill was dropped" true (Resolve_cache.find c s "A" = None);
  let gen = Resolve_cache.generation c in
  Resolve_cache.fill c ~gen s "A" (Value.Int 2);
  check_value "current fill lands" (Value.Int 2)
    (Option.get (Resolve_cache.find c s "A"))

let test_capacity_bounds_table () =
  let c = Resolve_cache.create ~capacity:4 () in
  let gen = Resolve_cache.generation c in
  for i = 1 to 10 do
    Resolve_cache.fill c ~gen (Surrogate.of_int i) "A" (Value.Int i)
  done;
  check_bool "table stays within capacity" true (Resolve_cache.size c <= 4)

let test_escape_hatch_disables () =
  let db = gates_db () in
  let store = Database.store db in
  Store.set_resolve_cache_enabled store false;
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "reads still resolve" (Value.Int 4)
    (ok (Database.get_attr db impl "Length"));
  check_value "again" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  check_int "nothing was memoised" 0 (Resolve_cache.size (Store.resolve_cache store))

(* Multi-domain safety: 4 domains resolve inherited reads concurrently
   against a frozen store, each filling and hitting its own shard.
   Against the pre-sharding implementation (one Hashtbl mutated from
   every domain) this crashes or corrupts; against the pre-atomic
   generation it loses counter updates.  The exact-accounting invariant
   [lookups = hits + misses] must hold even under this interleaving. *)
let test_parallel_resolution () =
  with_metrics @@ fun () ->
  let db = Database.create () in
  ok (W.chain_schema db ~depth:5);
  let nodes = ok (W.chain_instance db ~depth:5 ~payload:9) in
  let targets = Array.of_list nodes in
  let doms = 4 and per = 5_000 in
  let hs =
    List.init doms (fun d ->
        Stdlib.Domain.spawn (fun () ->
            let bad = ref 0 in
            for i = 0 to per - 1 do
              let s = targets.((i + d) mod Array.length targets) in
              match Database.get_attr db s "Payload" with
              | Ok (Value.Int 9) -> ()
              | Ok _ | Error _ -> incr bad
            done;
            !bad))
  in
  let bad = List.fold_left (fun acc h -> acc + Stdlib.Domain.join h) 0 hs in
  check_int "every concurrent read resolved to the transmitted value" 0 bad;
  check_int "lookups = hits + misses" (Resolve_cache.lookups ())
    (Resolve_cache.hits () + Resolve_cache.misses ());
  (* the shards served real traffic: far more lookups than cold misses *)
  check_bool "shards served hits" true
    (Resolve_cache.hits () > Resolve_cache.misses ())

let suite =
  ( "resolve_cache",
    [
      case "repeated read is served from the cache" test_repeat_read_hits;
      case "transmitter update visible in all transitive inheritors"
        test_update_visible_transitively;
      case "scoped invalidation leaves unrelated bindings cached"
        test_scoped_invalidation_is_selective;
      case "unbind reads Null immediately" test_unbind_reads_null;
      case "unbind inside a transaction reads Null" test_unbind_in_txn_reads_null;
      case "abort never serves aborted values" test_abort_never_serves_aborted_values;
      case "cache off: identical results on the gates scenario"
        test_no_cache_equivalence_gates;
      case "cache off: identical results on the steel scenario"
        test_no_cache_equivalence_steel;
      case "a fill raced by an invalidation dies" test_stale_fill_dies;
      case "capacity bounds the table" test_capacity_bounds_table;
      case "per-store escape hatch disables memoisation" test_escape_hatch_disables;
      case "4 domains resolve concurrently, accounting stays exact"
        test_parallel_resolution;
    ] )
