The compo CLI, end to end.  A tiny schema file:

  $ cat > tiny.ddl <<DDL
  > obj-type Part =
  >   attributes:
  >     Weight: integer;
  >   constraints:
  >     positive: Weight >= 0;
  > end Part;
  > DDL

Check and normal-form formatting:

  $ compo check tiny.ddl
  tiny.ddl: ok (1 new types)
  $ compo format tiny.ddl
  
  obj-type Part =
    attributes:
      Weight: integer;
    constraints:
      positive: Weight >= 0;
  end Part;
  

Initialize a database directory with the schema:

  $ compo init db -s tiny.ddl
  initialized db (1 types)
  $ compo info db
  types:        1
  domains:      0
  objects:      0
  relationships:0
  inh. links:   0
  classes:      
  wal:          0 bytes, 0 records replayed

The steel demo scenario:

  $ compo demo steel sdb
  built weight-carrying structure @1
  saved to sdb
  $ compo validate sdb
  all constraints hold
  $ compo query sdb Structures
  @1 WeightCarrying_Structure Designer="generator" Description="3 girders, 2 bores per joint"
  1 object(s)
  $ compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)
  $ compo show sdb @1
  @1 : WeightCarrying_Structure (object)
    Designer = "generator"
    Description = "3 girders, 2 bores per joint"
    Girders: {@5, @10, @15}
    Plates: {}
    Screwings (subrels): {@19, @26}
  $ compo dump-schema sdb | head -8
  domain Point = record (X: integer; Y: integer;);
  domain AreaDom = record (Length: integer; Width: integer;);
  
  obj-type BoltType =
    attributes:
      Length: integer;
      Diameter: integer;
  end BoltType;
  $ compo checkpoint sdb
  checkpoint written

fsck recovers the directory read-only and checks surrogate continuity,
schema resolution and index consistency:

  $ compo fsck sdb
  sdb: 30 entities, epoch 2, 0 WAL records replayed
  ok: no violations

Errors are reported properly:

  $ compo check missing.ddl 2>&1 | head -1
  compo: FILE.ddl… arguments: no 'missing.ddl' file or directory
  $ compo query sdb Nowhere 2>&1
  compo: unknown class: Nowhere
  [1]

Simulating the flip-flop of the gates demo (S=1,R=0 sets it; S=R=0 is the
state-holding input the combinational evaluator refuses):

  $ compo demo gates gdb
  built the flip-flop @1 and a NOR interface @24
  saved to gdb
  $ compo simulate gdb @1 10
  @4 = true
  @5 = false
  $ compo simulate gdb @1 00
  compo: evaluation error: netlist did not stabilize (state-holding feedback under these inputs)
  [1]

Version management lives in a versions.bin sidecar:

  $ compo version new-graph gdb nor
  graph nor created
  $ compo version root gdb nor @24
  v1 registered as root of nor
  $ compo version derive gdb nor 1
  v2 derived from v1 (object @28)
  $ compo version promote gdb nor 1 released
  v1 promoted to released
  $ compo version default gdb nor 1
  v1 is now the default of nor
  $ compo version list gdb
  nor (default v1)
    v1 @24 released (initial version)
    v2 @28 in-work <- v1 (derived from version 1)
  $ compo version audit gdb @25
  0 use(s), 0 outdated, 0 unmanaged

Netlist optimization (the demo flip-flop is fully live, so nothing moves):

  $ compo optimize gdb @1
  removed 0 dead gate(s), merged 0 duplicate(s), dropped 0 wire(s) in 1 pass(es)

Provenance of an inherited read: the gate implementation @26 owns no
Length of its own — the chain follows its binding through the permeable
AllOf_GateInterface relationship (link @27) to the NOR interface @24,
which owns the attribute.  A fresh process starts with a cold cache, so
the read is a miss:

  $ compo explain read gdb @26 Length
  read @26.Length = 4
  cache: miss
  source: @24
  chain:
  @26 : GateImplementation
    via AllOf_GateInterface (link @27)  permeability: inherits
    -> transmitter @24
    @24 : GateInterface  [source: attribute is owned here]

Query EXPLAIN renders the plan tree (deterministic without --timings):

  $ compo explain query sdb Bolts -w 'Length > 3'
  select Bolts
    where: (Length > 3)
    access: seq scan over class Bolts -> 2 candidate(s)
    filter: (Length > 3) -> 2 row(s), 0 eval node(s)
    plan: compiled, 3 closure(s), adjacency 30 node(s) / 7 edge(s)
    columns: Length@e37 (built)
  2 object(s)

With the compiled engine off the same query runs the interpreted
evaluator — same rows, and the plan line says so:

  $ COMPO_NO_COMPILE=1 compo explain query sdb Bolts -w 'Length > 3'
  select Bolts
    where: (Length > 3)
    access: seq scan over class Bolts -> 2 candidate(s)
    filter: (Length > 3) -> 2 row(s), 6 eval node(s)
    plan: interpreted
  2 object(s)

Metric exporters: the OpenMetrics exposition validates against the
text-format grammar and terminates with # EOF; the JSON document opens
with the metrics array:

  $ compo stats tiny.ddl --format=openmetrics > stats.om
  $ tail -1 stats.om
  # EOF
  $ ../check_openmetrics.exe stats.om
  check_openmetrics: OK (76 families)
  $ compo stats tiny.ddl --format=json | head -2
  {
    "metrics": [

Parallel selects: --jobs must never change what a query returns — same
rows, same order as the sequential plan (the differential oracle in
test/test_par_diff.ml proves this over hundreds of random schemas; here
we pin the CLI wiring):

  $ compo query sdb Bolts --jobs 4 --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)
  $ COMPO_JOBS=4 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)

The par.* metric families account the fan-out.  Without --jobs or
COMPO_JOBS the stats workload runs sequentially and the pool counters
stay zero:

  $ compo stats tiny.ddl --format=openmetrics | grep -E '^compo_par_(tasks|chunks)_total '
  compo_par_chunks_total 0
  compo_par_tasks_total 0

COMPO_JOBS switches the workload's select onto the pool (one batch,
chunked across the domains):

  $ COMPO_JOBS=2 compo stats tiny.ddl --format=openmetrics | grep -E '^compo_par_(tasks|chunks)_total '
  compo_par_chunks_total 5
  compo_par_tasks_total 1

and an explicit --jobs takes precedence over the environment, in both
directions:

  $ COMPO_JOBS=2 compo stats tiny.ddl --jobs 1 --format=openmetrics | grep -E '^compo_par_(tasks|chunks)_total '
  compo_par_chunks_total 0
  compo_par_tasks_total 0
  $ compo stats tiny.ddl --jobs 2 --format=openmetrics | grep -E '^compo_par_(tasks|chunks)_total '
  compo_par_chunks_total 5
  compo_par_tasks_total 1

Malformed job counts die with one line instead of silently running
sequentially — zero, negative and non-numeric are all rejected, for
--jobs and COMPO_JOBS alike (an explicit flag cannot outrun a broken
environment: the environment is checked first):

  $ compo query sdb Bolts --jobs 0 --where 'Length > 3'
  compo: --jobs must be a positive integer (got '0')
  [1]
  $ compo query sdb Bolts --jobs=-2 --where 'Length > 3'
  compo: --jobs must be a positive integer (got '-2')
  [1]
  $ COMPO_JOBS=0 compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_JOBS must be a positive integer (got '0')
  [1]
  $ COMPO_JOBS=banana compo stats tiny.ddl --format=table
  compo: COMPO_JOBS must be a positive integer (got 'banana')
  [1]

The telemetry knobs follow the same convention.  COMPO_TRACE_SAMPLE is
a sampling probability (only floats in [0,1] make sense) and
COMPO_FLIGHTREC_CAPACITY a ring size; garbage dies before any command
logic runs:

  $ COMPO_TRACE_SAMPLE=banana compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_TRACE_SAMPLE must be a number in [0,1] (got 'banana')
  [1]
  $ COMPO_TRACE_SAMPLE=1.5 compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_TRACE_SAMPLE must be a number in [0,1] (got '1.5')
  [1]
  $ COMPO_FLIGHTREC_CAPACITY=0 compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_FLIGHTREC_CAPACITY must be a positive integer (got '0')
  [1]
  $ COMPO_FLIGHTREC_CAPACITY=many compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_FLIGHTREC_CAPACITY must be a positive integer (got 'many')
  [1]
  $ COMPO_TRACE_SAMPLE=0.5 COMPO_FLIGHTREC_CAPACITY=64 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)

COMPO_NO_COMPILE picks the query engine, so it is a strict boolean:
truthy disables the compiled engine, falsy keeps it, garbage dies:

  $ COMPO_NO_COMPILE=maybe compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_NO_COMPILE must be a boolean (0/1/true/false/yes/no) (got 'maybe')
  [1]
  $ COMPO_NO_COMPILE=2 compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_NO_COMPILE must be a boolean (0/1/true/false/yes/no) (got '2')
  [1]
  $ COMPO_NO_COMPILE=1 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)
  $ COMPO_NO_COMPILE=0 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)

COMPO_NO_DELTA follows the same convention: truthy pins the compiled
engine's plan state to full rebuilds (incremental maintenance off),
falsy keeps delta maintenance, garbage dies.  Rows never change either
way — only how the plan state is kept fresh:

  $ COMPO_NO_DELTA=maybe compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_NO_DELTA must be a boolean (0/1/true/false/yes/no) (got 'maybe')
  [1]
  $ COMPO_NO_DELTA=2 compo query sdb Bolts --where 'Length > 3'
  compo: COMPO_NO_DELTA must be a boolean (0/1/true/false/yes/no) (got '2')
  [1]
  $ COMPO_NO_DELTA=1 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)
  $ COMPO_NO_DELTA=0 compo query sdb Bolts --where 'Length > 3'
  @17 BoltType Length=9 Diameter=10
  @24 BoltType Length=9 Diameter=10
  2 object(s)

compo flightrec pretty-prints a server flight-recorder dump (one event
per line, timestamps relative to the oldest buffered event) and rejects
files that are not dumps:

  $ cat > flight.json <<'EOF'
  > { "flightrec": 1, "capacity": 4096, "recorded": 3, "events": [
  >   { "ts": 100.0, "kind": "conn.open", "attrs": { "sid": "1" } },
  >   { "ts": 100.5, "kind": "txn.begin", "attrs": { "sid": "1" } },
  >   { "ts": 102.25, "kind": "conn.close", "attrs": { "sid": "1" } } ] }
  > EOF
  $ compo flightrec flight.json
  flight recorder: 3 event(s)
      +0.000s  conn.open              sid=1
      +0.500s  txn.begin              sid=1
      +2.250s  conn.close             sid=1
  $ echo '{ "metrics": [] }' > not-a-dump.json
  $ compo flightrec not-a-dump.json
  compo: i/o error: not-a-dump.json: not a flight-recorder dump (no "flightrec" field)
  [1]

The ablation-matrix diff (`compo benchdiff`) joins a fresh
BENCH_matrix.json against the committed baseline on cell ids and
classifies every cell; regressions and missing cells gate (exit 1),
skips render loudly.  Seeded fixture pair — the fresh matrix fails one
cell, skips another, and doubles a key metric on the third:

  $ cat > matrix-base.json <<'EOF'
  > { "experiment": "E20", "smoke": true, "cores": 4, "suite": ["E2", "E15"],
  >   "rows": [
  >     { "id": "cache=on index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 1.0,
  >       "metrics": { "eval.node": 1000 } },
  >     { "id": "cache=off index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "off", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 2.0,
  >       "metrics": {} },
  >     { "id": "cache=on index=on jobs=4 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "4", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 1.5,
  >       "metrics": {} }
  >   ] }
  > EOF
  $ cat > matrix-fresh.json <<'EOF'
  > { "experiment": "E20", "smoke": true, "cores": 1, "suite": ["E2", "E15"],
  >   "rows": [
  >     { "id": "cache=on index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 1.1,
  >       "metrics": { "eval.node": 2000 } },
  >     { "id": "cache=off index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "off", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "failed", "reason": "exit 2: oracle mismatch", "wall_s": 0.2,
  >       "metrics": {} },
  >     { "id": "cache=on index=on jobs=4 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "4", "prov": "off", "fp": "off" },
  >       "outcome": "skipped", "reason": "cell needs 4 cores, runner has 1", "wall_s": null,
  >       "metrics": {} }
  >   ] }
  > EOF

The regression (ok -> failed) gates; the new skip is loud but does not
(a smaller runner legitimately skips multicore cells); the doubled
eval.node shows up as a note on an otherwise-ok cell.  Trailing table
padding is stripped for the pin:

  $ compo benchdiff matrix-base.json matrix-fresh.json > benchdiff-out.txt
  [1]
  $ sed 's/ *$//' benchdiff-out.txt
  verdict          cell                                                  baseline     fresh  notes
  ok               cache=on index=on jobs=1 prov=off fp=off                 1.00s     1.10s  eval.node +100% (1000 -> 2000)
  REGRESSION       cache=off index=on jobs=1 prov=off fp=off                2.00s    failed  ok -> failed (exit 2: oracle mismatch)
  NEW-SKIP         cache=on index=on jobs=4 prov=off fp=off                 1.50s      skip  cell needs 4 cores, runner has 1
  
  3 cell(s): 1 regression(s), 1 new skip(s), 0 improvement(s)
  
  skipped cells (1) — not measured, not silent:
    cache=on index=on jobs=4 prov=off fp=off             cell needs 4 cores, runner has 1

A matrix diffed against itself is clean and exits 0:

  $ compo benchdiff matrix-base.json matrix-base.json > /dev/null

--fail-on-new-skip promotes new skips to gating failures (for runners
that are supposed to match the baseline machine):

  $ cat > matrix-skip.json <<'EOF'
  > { "experiment": "E20", "smoke": true, "cores": 1, "suite": ["E2", "E15"],
  >   "rows": [
  >     { "id": "cache=on index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 1.0,
  >       "metrics": { "eval.node": 1000 } },
  >     { "id": "cache=off index=on jobs=1 prov=off fp=off",
  >       "axes": { "cache": "off", "index": "on", "jobs": "1", "prov": "off", "fp": "off" },
  >       "outcome": "ok", "wall_s": 2.0,
  >       "metrics": {} },
  >     { "id": "cache=on index=on jobs=4 prov=off fp=off",
  >       "axes": { "cache": "on", "index": "on", "jobs": "4", "prov": "off", "fp": "off" },
  >       "outcome": "skipped", "reason": "cell needs 4 cores, runner has 1", "wall_s": null,
  >       "metrics": {} }
  >   ] }
  > EOF
  $ compo benchdiff matrix-base.json matrix-skip.json > /dev/null
  $ compo benchdiff matrix-base.json matrix-skip.json --fail-on-new-skip > /dev/null
  [1]

--summary appends the markdown rendering (what the CI job publishes to
$GITHUB_STEP_SUMMARY) — verdict counts, the cell table, and the loud
SKIPPED section:

  $ compo benchdiff matrix-base.json matrix-skip.json --summary summary.md > /dev/null
  $ grep -c '^|' summary.md
  5
  $ grep 'SKIPPED' summary.md
  #### ⚠️ 1 cell(s) SKIPPED on this runner

A matrix that does not parse is an operator error, not a verdict —
exit 2, like a usage error:

  $ echo '{ "rows": [ { "outcome": "ok" } ] }' > matrix-bad.json
  $ compo benchdiff matrix-bad.json matrix-base.json
  compo: benchdiff: matrix-bad.json: matrix row without an id
  [2]
