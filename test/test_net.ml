(* End-to-end tests for the network subsystem: a real server on a real
   Unix socket, driven through the client library (and, for the
   malformed-input cases, through raw frames).  The shutdown tests pin
   down the drain contract: a transaction open across [Server.stop] may
   still commit inside the drain window, and one that outlives the
   deadline is force-aborted with its writes rolled back. *)

open Compo_core
module Server = Compo_net.Server
module Client = Compo_net.Client
module P = Compo_net.Protocol

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)

let cok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "client error: %s" (Client.error_to_string e)

let fresh_socket () =
  let path = Filename.temp_file "compo-net-test" ".sock" in
  Sys.remove path;
  path

(* boot a gates-scenario server on a throwaway socket, run [f], always
   stop the server (Server.stop is idempotent, so tests that stop it
   themselves are fine) *)
let with_server ?(drain = 5.) ?(idle = 300.) f =
  let path = fresh_socket () in
  let db = Database.create () in
  ok (Compo_scenarios.Gates.define_schema db);
  let _iface, impls = ok (Compo_scenarios.Workload.interface_with_inheritors db ~n:8) in
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      accept_domains = 1;
      idle_timeout = idle;
      drain_deadline = drain;
    }
  in
  let srv = Server.start cfg db in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f srv path db (Array.of_list impls))

let test_handshake_ping () =
  with_server (fun _srv path _db _impls ->
      let c = cok (Client.connect ~user:"alice" path) in
      Alcotest.(check bool) "session id assigned" true (Client.session_id c >= 1);
      cok (Client.ping c);
      Client.close c;
      Client.close c (* idempotent *))

let test_reads_match_database () =
  with_server (fun _srv path db impls ->
      let c = cok (Client.connect path) in
      Array.iter
        (fun impl ->
          let remote = cok (Client.get_attr c impl "Length") in
          let local = ok (Database.get_attr db impl "Length") in
          Alcotest.(check bool)
            "remote read equals in-process read" true
            (Value.equal remote local))
        impls;
      let where = Expr.(path [ "Length" ] >= int 0) in
      let remote = cok (Client.select c ~cls:"Implementations" ~where ()) in
      let local = ok (Database.select db ~cls:"Implementations" ~where ()) in
      Alcotest.(check (list int))
        "remote select equals in-process select"
        (List.map Surrogate.to_int local)
        (List.map Surrogate.to_int remote);
      let plan = cok (Client.explain c ~cls:"Implementations" ~where ()) in
      Alcotest.(check bool) "explain is non-empty" true (String.length plan > 0);
      Client.close c)

let test_autocommit_write () =
  with_server (fun _srv path db impls ->
      let c = cok (Client.connect path) in
      cok (Client.set_attr c impls.(0) "TimeBehavior" (Value.Int 4242));
      let v = ok (Database.get_attr db impls.(0) "TimeBehavior") in
      Alcotest.(check bool)
        "write outside a transaction is autocommitted" true
        (Value.equal v (Value.Int 4242));
      Client.close c)

let test_txn_commit_and_abort () =
  with_server (fun _srv path db impls ->
      let c = cok (Client.connect path) in
      cok (Client.begin_txn c);
      cok (Client.set_attr c impls.(1) "TimeBehavior" (Value.Int 21));
      cok (Client.commit c);
      Alcotest.(check bool)
        "committed value visible" true
        (Value.equal (ok (Database.get_attr db impls.(1) "TimeBehavior")) (Value.Int 21));
      cok (Client.begin_txn c);
      cok (Client.set_attr c impls.(1) "TimeBehavior" (Value.Int 33));
      cok (Client.abort c);
      Alcotest.(check bool)
        "aborted write rolled back" true
        (Value.equal (ok (Database.get_attr db impls.(1) "TimeBehavior")) (Value.Int 21));
      (* protocol-state errors are application errors, not disconnects *)
      (match Client.commit c with
      | Error (Client.Remote _) -> ()
      | Ok () -> Alcotest.fail "commit without begin must fail"
      | Error e -> Alcotest.failf "expected Remote, got %s" (Client.error_to_string e));
      cok (Client.ping c);
      Client.close c)

let test_lock_conflict_between_sessions () =
  with_server (fun _srv path _db impls ->
      let a = cok (Client.connect ~user:"a" path) in
      let b = cok (Client.connect ~user:"b" path) in
      cok (Client.begin_txn a);
      cok (Client.set_attr a impls.(2) "TimeBehavior" (Value.Int 1));
      cok (Client.begin_txn b);
      (match Client.set_attr b impls.(2) "TimeBehavior" (Value.Int 2) with
      | Error (Client.Remote msg) ->
          Alcotest.(check bool)
            "conflict surfaces as a non-empty server error" true
            (String.length msg > 0)
      | Ok () -> Alcotest.fail "conflicting write must be refused"
      | Error e -> Alcotest.failf "expected Remote, got %s" (Client.error_to_string e));
      cok (Client.commit a);
      (* a's locks are gone: b can retry and win now *)
      cok (Client.set_attr b impls.(2) "TimeBehavior" (Value.Int 2));
      cok (Client.commit b);
      Client.close a;
      Client.close b)

let test_pipelining () =
  with_server (fun _srv path _db impls ->
      let c = cok (Client.connect path) in
      let ids =
        List.init 8 (fun i ->
            cok
              (Client.send c
                 (P.Get_attr { obj = impls.(i mod 8); attr = "Length" })))
      in
      List.iter
        (fun sent ->
          let id, resp = cok (Client.recv c) in
          Alcotest.(check int) "responses arrive in request order" sent id;
          match resp with
          | P.Ok_value _ -> ()
          | _ -> Alcotest.fail "expected Ok_value")
        ids;
      Client.close c)

(* raw-socket helpers for the malformed-input tests *)
let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let expect_protocol_error fd what =
  (match P.read_frame fd with
  | Ok body -> (
      match P.decode_response body with
      | Ok (_, P.Protocol_error _) -> ()
      | Ok _ -> Alcotest.failf "%s: expected Protocol_error" what
      | Error e -> Alcotest.failf "%s: undecodable response: %s" what e)
  | Error _ -> Alcotest.failf "%s: expected an error response before close" what);
  (* the server hangs up after answering a protocol error *)
  match P.read_frame fd with
  | Error `Eof -> Unix.close fd
  | Ok _ -> Alcotest.failf "%s: connection must be closed" what
  | Error _ -> Unix.close fd

let test_version_mismatch_rejected () =
  with_server (fun _srv path _db _impls ->
      let fd = raw_connect path in
      let bad =
        P.encode_request ~id:1
          (P.Open_session { magic = P.magic; version = P.version + 1; user = "x" })
      in
      P.write_frame fd bad;
      expect_protocol_error fd "version mismatch")

let test_garbage_frame_rejected () =
  with_server (fun _srv path _db _impls ->
      let fd = raw_connect path in
      P.write_frame fd "\x00\x01\x02garbage";
      expect_protocol_error fd "garbage frame")

let test_oversized_frame_rejected () =
  with_server (fun _srv path _db _impls ->
      let fd = raw_connect path in
      (* a length prefix far past max_frame; no body ever follows *)
      let prefix = Bytes.of_string "\xff\xff\xff\x7f" in
      ignore (Unix.write fd prefix 0 4);
      expect_protocol_error fd "oversized frame")

let test_idle_timeout_disconnects () =
  with_server ~idle:0.4 (fun _srv path _db _impls ->
      let c = cok (Client.connect path) in
      cok (Client.ping c);
      Thread.delay 1.2;
      (match Client.ping c with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "idle session must have been disconnected");
      Client.close c)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* acceptance: a trace id sampled by the client shows up server-side in
   the span ring (server span + gated kernel spans) and in the
   provenance record of the inherited read it caused *)
let test_trace_propagation () =
  with_server (fun _srv path _db impls ->
      let module Metrics = Compo_obs.Metrics in
      let module Trace = Compo_obs.Trace in
      let module Prov = Compo_obs.Provenance in
      Metrics.enable ();
      Prov.enable ();
      Trace.clear ();
      Prov.clear ();
      Fun.protect
        ~finally:(fun () ->
          Prov.disable ();
          Metrics.disable ())
        (fun () ->
          let c = cok (Client.connect ~trace_sample:1.0 path) in
          Alcotest.(check int)
            "handshake announces the server's version" P.version
            (Client.server_version c);
          ignore (cok (Client.get_attr c impls.(0) "Length"));
          let tid =
            match Client.last_trace c with
            | Some id -> id
            | None -> Alcotest.fail "trace_sample=1.0 must stamp every request"
          in
          (* the client's response arrived, so the handler has recorded
             its spans and the provenance of the read *)
          let spans = Trace.recent () in
          Alcotest.(check bool)
            "the server request span carries the wire trace id" true
            (List.exists
               (fun (sp : Trace.span) ->
                 sp.Trace.sp_name = "net.server.request"
                 && List.mem ("trace", tid) sp.Trace.sp_attrs)
               spans);
          Alcotest.(check bool)
            "a gated kernel span carries the wire trace id" true
            (List.exists
               (fun (sp : Trace.span) ->
                 sp.Trace.sp_name <> "net.server.request"
                 && List.mem ("trace", tid) sp.Trace.sp_attrs)
               spans);
          (match Prov.last () with
          | Some read ->
              Alcotest.(check (option string))
                "provenance links the read to the wire trace" (Some tid)
                read.Prov.r_trace
          | None -> Alcotest.fail "inherited read must record provenance");
          Client.close c))

(* compatibility: a v1 client (no trace field, version = 1 handshake)
   still talks to the v2 server *)
let test_old_client_handshake () =
  with_server (fun _srv path _db impls ->
      let fd = raw_connect path in
      let expect what id' =
        match P.read_frame fd with
        | Ok body -> (
            match P.decode_response body with
            | Ok (id, resp) when id = id' -> resp
            | Ok (id, _) -> Alcotest.failf "%s: response id %d" what id
            | Error e -> Alcotest.failf "%s: undecodable: %s" what e)
        | Error _ -> Alcotest.failf "%s: no response" what
      in
      P.write_frame fd
        (P.encode_request ~id:1
           (P.Open_session { magic = P.magic; version = 1; user = "old" }));
      (match expect "v1 handshake" 1 with
      | P.Ok_session { server_version; _ } ->
          Alcotest.(check int)
            "server still announces its own version" P.version server_version
      | _ -> Alcotest.fail "v1 handshake must be accepted");
      (* plain v1 frames (no trailing trace field) keep working *)
      P.write_frame fd (P.encode_request ~id:2 P.Ping);
      (match expect "v1 ping" 2 with
      | P.Ok_unit -> ()
      | _ -> Alcotest.fail "expected Ok_unit");
      P.write_frame fd
        (P.encode_request ~id:3 (P.Get_attr { obj = impls.(0); attr = "Length" }));
      (match expect "v1 get_attr" 3 with
      | P.Ok_value _ -> ()
      | _ -> Alcotest.fail "expected Ok_value");
      Unix.close fd)

(* acceptance: a slow request's explain plan is captured and
   retrievable through the Slowlog opcode *)
let test_slowlog_capture () =
  with_server (fun srv path _db _impls ->
      let module Trace = Compo_obs.Trace in
      Trace.set_slow_threshold 0.;
      Fun.protect
        ~finally:(fun () -> Trace.set_slow_threshold infinity)
        (fun () ->
          let c = cok (Client.connect path) in
          let where = Expr.(path [ "Length" ] >= int 0) in
          ignore (cok (Client.select c ~cls:"Implementations" ~where ()));
          let text = cok (Client.slowlog c) in
          Alcotest.(check bool)
            "slowlog names the slow opcode" true (contains text "select");
          Alcotest.(check bool)
            "slowlog carries the captured plan" true (contains text "access:");
          let entries = Server.slowlog_entries srv in
          Alcotest.(check bool)
            "capture ring is non-empty" true (entries <> []);
          Alcotest.(check bool)
            "a captured select kept its plan" true
            (List.exists
               (fun (e : Server.slow_entry) ->
                 e.Server.sq_op = "select" && contains e.Server.sq_plan "access:")
               entries);
          Client.close c))

(* acceptance: a transaction held open across shutdown gets the drain
   window and its commit lands *)
let test_shutdown_drains_open_transaction () =
  with_server ~drain:5. (fun srv path db impls ->
      let c = cok (Client.connect path) in
      cok (Client.begin_txn c);
      cok (Client.set_attr c impls.(3) "TimeBehavior" (Value.Int 777));
      let stopper = Thread.create (fun () -> Server.stop srv) () in
      Thread.delay 0.3;
      (* server is draining: new connections are refused, but this
         session's transaction is still live and may commit *)
      cok (Client.commit c);
      Thread.join stopper;
      Alcotest.(check bool)
        "commit during drain is durable" true
        (Value.equal (ok (Database.get_attr db impls.(3) "TimeBehavior")) (Value.Int 777));
      Alcotest.(check int) "nothing was force-aborted" 0 (Server.forced_aborts srv);
      Alcotest.(check bool) "drain took measurable time" true (Server.drain_seconds srv > 0.);
      Client.close c)

(* acceptance: past the deadline the straggler is aborted and rolled back *)
let test_shutdown_aborts_straggler () =
  with_server ~drain:0.4 (fun srv path db impls ->
      let before = ok (Database.get_attr db impls.(4) "TimeBehavior") in
      let c = cok (Client.connect path) in
      cok (Client.begin_txn c);
      cok (Client.set_attr c impls.(4) "TimeBehavior" (Value.Int 31337));
      let stopper = Thread.create (fun () -> Server.stop srv) () in
      Thread.join stopper;
      Alcotest.(check int) "straggler was force-aborted" 1 (Server.forced_aborts srv);
      Alcotest.(check bool)
        "straggler's write rolled back" true
        (Value.equal (ok (Database.get_attr db impls.(4) "TimeBehavior")) before);
      Alcotest.(check int) "no sessions left" 0 (Server.active_connections srv);
      Client.close c)

let suite =
  ( "net",
    [
      Alcotest.test_case "handshake and ping" `Quick test_handshake_ping;
      Alcotest.test_case "reads match database" `Quick test_reads_match_database;
      Alcotest.test_case "autocommit write" `Quick test_autocommit_write;
      Alcotest.test_case "txn commit and abort" `Quick test_txn_commit_and_abort;
      Alcotest.test_case "lock conflict between sessions" `Quick
        test_lock_conflict_between_sessions;
      Alcotest.test_case "pipelining" `Quick test_pipelining;
      Alcotest.test_case "version mismatch rejected" `Quick
        test_version_mismatch_rejected;
      Alcotest.test_case "garbage frame rejected" `Quick
        test_garbage_frame_rejected;
      Alcotest.test_case "oversized frame rejected" `Quick
        test_oversized_frame_rejected;
      Alcotest.test_case "idle timeout disconnects" `Quick
        test_idle_timeout_disconnects;
      Alcotest.test_case "trace propagation" `Quick test_trace_propagation;
      Alcotest.test_case "old client handshake" `Quick
        test_old_client_handshake;
      Alcotest.test_case "slowlog capture" `Quick test_slowlog_capture;
      Alcotest.test_case "shutdown drains open transaction" `Quick
        test_shutdown_drains_open_transaction;
      Alcotest.test_case "shutdown aborts straggler" `Quick
        test_shutdown_aborts_straggler;
    ] )
