(* The failpoint layer itself: spec parsing, arming semantics, and the
   corrupt-output shapes the torture harness relies on. *)

open Helpers
module Failpoint = Compo_faults.Failpoint

let reset () = Failpoint.disarm_all ()

(* parse_spec errors are plain strings, not Errors.t *)
let ok_spec = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let test_parse_spec () =
  reset ();
  let parsed =
    ok_spec
      (Failpoint.parse_spec
         "wal.append.frame=torn,snapshot.save.tmp_write=short:3@2, x=crash")
  in
  check_int "three specs" 3 (List.length parsed);
  (match parsed with
  | [ (s1, 1, Failpoint.Torn_frame);
      (s2, 2, Failpoint.Short_write 3);
      ("x", 1, Failpoint.Crash) ] ->
      check_string "first site" "wal.append.frame" s1;
      check_string "second site" "snapshot.save.tmp_write" s2
  | _ -> Alcotest.fail "unexpected parse");
  List.iter
    (fun bad ->
      match Failpoint.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ "nosign"; "x=warp"; "x=short:-1"; "x=crash@0"; "=crash" ]

let test_one_shot_and_after () =
  reset ();
  let site = Failpoint.register "test.one_shot" in
  (* unarmed: free *)
  Failpoint.hit site;
  Failpoint.arm ~after:3 "test.one_shot" Failpoint.Crash;
  Failpoint.hit site;
  Failpoint.hit site;
  (match Failpoint.hit site with
  | () -> Alcotest.fail "third hit should crash"
  | exception Failpoint.Crashed name ->
      check_string "crash names the site" "test.one_shot" name);
  (* one-shot: sprung traps stay sprung *)
  Failpoint.hit site;
  check_int "disarmed after firing" 0 (List.length (Failpoint.armed ()))

let test_guard_error_result () =
  reset ();
  let site = Failpoint.register "test.guard" in
  check_bool "unarmed guard passes" true (Result.is_ok (Failpoint.guard site));
  Failpoint.arm "test.guard" Failpoint.Error_result;
  (match Failpoint.guard site with
  | Error (Compo_core.Errors.Io_error msg) ->
      check_bool "error names the site" true (contains msg "test.guard")
  | Ok () -> Alcotest.fail "armed guard passed"
  | Error e ->
      Alcotest.failf "wrong error kind: %s" (Compo_core.Errors.to_string e));
  check_bool "guard disarms after firing" true
    (Result.is_ok (Failpoint.guard site))

let with_output site s =
  let path = Filename.temp_file "compo-fp" ".bin" in
  let result =
    Out_channel.with_open_bin path (fun chan ->
        match Failpoint.output site chan s with
        | () -> `Wrote
        | exception Failpoint.Crashed _ -> `Crashed)
  in
  let written = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  (result, written)

let test_output_shapes () =
  reset ();
  let site = Failpoint.register "test.output" in
  let payload = "0123456789abcdef" in
  let r, w = with_output site payload in
  check_bool "unarmed output writes through" true (r = `Wrote);
  check_string "unarmed output intact" payload w;
  Failpoint.arm "test.output" Failpoint.Torn_frame;
  let r, w = with_output site payload in
  check_bool "torn output crashes" true (r = `Crashed);
  check_string "torn output is the first half" (String.sub payload 0 8) w;
  Failpoint.arm "test.output" (Failpoint.Short_write 3);
  let r, w = with_output site payload in
  check_bool "short output crashes" true (r = `Crashed);
  check_string "short output is the prefix" "012" w;
  Failpoint.arm "test.output" Failpoint.Bit_flip;
  let r, w = with_output site payload in
  check_bool "bit-flip output crashes" true (r = `Crashed);
  check_int "bit-flip output keeps the length" (String.length payload)
    (String.length w);
  check_bool "bit-flip output differs" false (String.equal payload w);
  Failpoint.arm "test.output" Failpoint.Crash;
  let r, w = with_output site payload in
  check_bool "crash output crashes" true (r = `Crashed);
  check_string "crash output writes nothing" "" w

let test_env_configuration () =
  reset ();
  (* configure_from_env reads COMPO_FAILPOINTS; exercise the parser-backed
     arm path directly since the test runner owns the real environment *)
  List.iter
    (fun (site, after, act) -> Failpoint.arm ~after site act)
    (ok_spec (Failpoint.parse_spec "test.env.a=error,test.env.b=bitflip@4"));
  let armed = Failpoint.armed () in
  check_int "both armed" 2 (List.length armed);
  check_bool "actions preserved" true
    (List.mem ("test.env.a", Failpoint.Error_result) armed
    && List.mem ("test.env.b", Failpoint.Bit_flip) armed);
  Failpoint.disarm "test.env.a";
  check_int "disarm removes one" 1 (List.length (Failpoint.armed ()));
  reset ();
  check_int "disarm_all clears" 0 (List.length (Failpoint.armed ()))

let test_storage_sites_registered () =
  (* the torture matrix promises at least 12 distinct crash points across
     wal/snapshot/journal; the registry is populated at module-load time *)
  let sites = Failpoint.all_sites () in
  let in_storage s =
    List.exists
      (fun p -> String.length s >= String.length p && String.sub s 0 (String.length p) = p)
      [ "wal."; "snapshot."; "journal." ]
  in
  let storage_sites = List.filter in_storage sites in
  check_bool
    (Printf.sprintf "at least 12 storage crash points (got %d)"
       (List.length storage_sites))
    true
    (List.length storage_sites >= 12);
  List.iter
    (fun s ->
      check_bool (s ^ " registered") true (List.mem s sites))
    [
      "wal.append.before_frame";
      "wal.append.frame";
      "wal.append.after_frame";
      "wal.header.write";
      "snapshot.save.tmp_write";
      "snapshot.save.before_rename";
      "snapshot.save.after_rename";
      "journal.checkpoint.begin";
      "journal.checkpoint.before_truncate";
      "journal.checkpoint.after_truncate";
      "journal.open.before_replay";
      "journal.open.mid_replay";
      "journal.open.after_replay";
    ]

let suite =
  ( "faults",
    [
      case "COMPO_FAILPOINTS spec parsing" test_parse_spec;
      case "one-shot arming with hit countdown" test_one_shot_and_after;
      case "guard returns Error_result" test_guard_error_result;
      case "output corruption shapes" test_output_shapes;
      case "arm/disarm bookkeeping" test_env_configuration;
      case "storage registers the crash-point matrix" test_storage_sites_registered;
    ] )
