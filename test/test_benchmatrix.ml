(* The ablation-matrix lab: cell enumeration and env rendering, the
   BENCH_matrix.json report round-trip, and the benchdiff verdict
   logic that gates CI. *)

open Helpers
module Cell = Compo_benchmatrix.Cell
module Report = Compo_benchmatrix.Report
module Diff = Compo_benchmatrix.Diff
module J = Compo_obs.Json_min

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)

let test_default_cells () =
  let cells = Cell.default_cells () in
  check_bool "at least 26 cells" true (List.length cells >= 26);
  let ids = List.map Cell.id cells in
  let uniq = List.sort_uniq String.compare ids in
  check_int "ids are unique" (List.length cells) (List.length uniq);
  (* every cell binds every canonical axis, in canonical order *)
  List.iter
    (fun c ->
      check_int "seven axes" 7 (List.length (Cell.axes c));
      check_string "canonical axis order"
        "cache index compile delta jobs prov fp"
        (String.concat " " (List.map fst (Cell.axes c))))
    cells;
  (* the curated blocks are all present *)
  let mem id = List.mem id ids in
  check_bool "baseline cell" true
    (mem "cache=on index=on compile=on delta=on jobs=1 prov=off fp=off");
  check_bool "full-ablation corner" true
    (mem "cache=off index=off compile=off delta=on jobs=1 prov=on fp=off");
  check_bool "4-job cell" true
    (mem "cache=on index=on compile=on delta=on jobs=4 prov=off fp=off");
  check_bool "4-job interpreted cell" true
    (mem "cache=on index=on compile=off delta=on jobs=4 prov=off fp=off");
  check_bool "armed-failpoint flip" true
    (mem "cache=on index=on compile=on delta=on jobs=1 prov=off fp=armed");
  check_bool "delta-off flip" true
    (mem "cache=on index=on compile=on delta=off jobs=1 prov=off fp=off");
  check_bool "4-job delta-off flip" true
    (mem "cache=on index=on compile=on delta=off jobs=4 prov=off fp=off")

let test_env_rendering () =
  let env pairs = Cell.env (Cell.make pairs) in
  let baseline =
    [ ("cache", "on"); ("index", "on"); ("compile", "on"); ("delta", "on");
      ("jobs", "1"); ("prov", "off"); ("fp", "off") ]
  in
  (* default values emit nothing except COMPO_JOBS, which is always
     explicit so a cell never inherits the caller's job count *)
  check_bool "baseline renders only COMPO_JOBS" true
    (env baseline = [ ("COMPO_JOBS", "1") ]);
  let flipped =
    [ ("cache", "off"); ("index", "off"); ("compile", "off");
      ("delta", "off"); ("jobs", "4"); ("prov", "on"); ("fp", "armed") ]
  in
  check_bool "every non-default value emits its switch" true
    (env flipped
    = [
        ("COMPO_NO_RESOLVE_CACHE", "1");
        ("COMPO_NO_INDEX", "1");
        ("COMPO_NO_COMPILE", "1");
        ("COMPO_NO_DELTA", "1");
        ("COMPO_JOBS", "4");
        ("COMPO_PROVENANCE", "1");
        ("COMPO_FAILPOINTS", Cell.failpoint_spec);
      ]);
  (* id canonicalisation: insertion order does not matter *)
  check_string "id is order-independent"
    (Cell.id (Cell.make baseline))
    (Cell.id (Cell.make (List.rev baseline)))

let test_required_cores () =
  let cores pairs = Cell.required_cores (Cell.make pairs) in
  check_int "jobs=1 needs 1 core" 1 (cores [ ("jobs", "1") ]);
  check_int "jobs=4 needs 4 cores" 4 (cores [ ("jobs", "4") ]);
  check_int "no jobs axis defaults to 1" 1 (cores [ ("cache", "off") ])

let test_product_and_dedup () =
  let axes =
    [
      { Cell.ax_name = "cache"; ax_values = [ "on"; "off" ] };
      { Cell.ax_name = "prov"; ax_values = [ "off"; "on" ] };
    ]
  in
  let cells = Cell.product axes in
  check_int "2x2 product" 4 (List.length cells);
  check_string "axis-major order" "cache=on prov=off"
    (Cell.id (List.hd cells));
  let doubled = Cell.dedup (cells @ cells) in
  check_int "dedup drops repeated ids" 4 (List.length doubled)

(* ------------------------------------------------------------------ *)
(* Report round-trip                                                   *)

let row ?(outcome = Report.Ok_run) ?(wall = 1.0) ?(metrics = []) pairs =
  let cell = Cell.make pairs in
  {
    Report.r_id = Cell.id cell;
    r_axes = Cell.axes cell;
    r_outcome = outcome;
    r_wall_s = wall;
    r_metrics = metrics;
  }

let matrix rows =
  { Report.m_smoke = true; m_cores = 1; m_suite = [ "E2"; "E15" ]; m_rows = rows }

let baseline_pairs =
  [ ("cache", "on"); ("index", "on"); ("compile", "on"); ("jobs", "1");
    ("prov", "off"); ("fp", "off") ]

let with_axis axis v =
  List.map (fun (a, w) -> if a = axis then (a, v) else (a, w)) baseline_pairs

let test_report_roundtrip () =
  let m =
    matrix
      [
        row baseline_pairs ~wall:0.75
          ~metrics:[ ("e15.min_speedup", 2.5); ("eval.node", 123456.0) ];
        row (with_axis "jobs" "4")
          ~outcome:(Report.Skipped "cell needs 4 cores, runner has 1")
          ~wall:Float.nan;
        row (with_axis "prov" "on")
          ~outcome:(Report.Failed "exit 2: boom \"quoted\"")
          ~wall:0.1;
      ]
  in
  let path = Filename.temp_file "compo-matrix-test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.write_file path m;
      match Report.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok m' ->
          check_bool "smoke survives" true m'.Report.m_smoke;
          check_int "cores survive" 1 m'.Report.m_cores;
          check_bool "suite survives" true (m'.Report.m_suite = m.Report.m_suite);
          check_int "all rows survive" 3 (List.length m'.Report.m_rows);
          let get id =
            match Report.find_row m' id with
            | Some r -> r
            | None -> Alcotest.failf "row %S lost in round-trip" id
          in
          let ok_row = get "cache=on index=on compile=on jobs=1 prov=off fp=off" in
          check_bool "metrics survive" true
            (ok_row.Report.r_metrics
            = [ ("e15.min_speedup", 2.5); ("eval.node", 123456.0) ]);
          check_bool "wall survives" true (ok_row.Report.r_wall_s = 0.75);
          let skip_row = get "cache=on index=on compile=on jobs=4 prov=off fp=off" in
          (match skip_row.Report.r_outcome with
          | Report.Skipped reason ->
              check_string "skip reason survives"
                "cell needs 4 cores, runner has 1" reason
          | _ -> Alcotest.fail "skip outcome lost");
          check_bool "skipped wall reads back as nan" true
            (Float.is_nan skip_row.Report.r_wall_s);
          match (get "cache=on index=on compile=on jobs=1 prov=on fp=off").Report.r_outcome with
          | Report.Failed reason ->
              check_string "failure detail survives escaping"
                "exit 2: boom \"quoted\"" reason
          | _ -> Alcotest.fail "failed outcome lost")

(* ------------------------------------------------------------------ *)
(* Diff verdicts                                                       *)

let verdict_of result id =
  match List.find_opt (fun e -> e.Diff.e_id = id) result.Diff.entries with
  | Some e -> e.Diff.e_verdict
  | None -> Alcotest.failf "no diff entry for %S" id

let test_diff_clean () =
  let m = matrix [ row baseline_pairs ~wall:1.0 ] in
  let result = Diff.compare_matrices ~baseline:m ~fresh:m () in
  check_int "no regressions" 0 result.Diff.regressions;
  check_int "no new skips" 0 result.Diff.new_skips;
  check_int "clean exits 0" 0 (Diff.exit_code result);
  check_bool "verdict is Same" true
    (verdict_of result (Cell.id (Cell.make baseline_pairs)) = Diff.Same)

let test_diff_regression () =
  let id = Cell.id (Cell.make baseline_pairs) in
  let baseline = matrix [ row baseline_pairs ~wall:1.0 ] in
  let fresh =
    matrix [ row baseline_pairs ~outcome:(Report.Failed "exit 2") ~wall:0.2 ]
  in
  let result = Diff.compare_matrices ~baseline ~fresh () in
  check_int "one regression" 1 result.Diff.regressions;
  check_int "regression exits 1" 1 (Diff.exit_code result);
  match verdict_of result id with
  | Diff.Regression reason ->
      check_bool "reason carries the failure" true (contains reason "exit 2")
  | _ -> Alcotest.fail "expected Regression"

let test_diff_time_thresholds () =
  let baseline = matrix [ row baseline_pairs ~wall:2.0 ] in
  let diff wall =
    Diff.compare_matrices ~baseline ~fresh:(matrix [ row baseline_pairs ~wall ]) ()
  in
  let id = Cell.id (Cell.make baseline_pairs) in
  (* default ratio 3.0: 2.0s -> 5.0s is noise, 2.0s -> 7.0s gates *)
  check_bool "below ratio is Same" true (verdict_of (diff 5.0) id = Diff.Same);
  let slow = diff 7.0 in
  check_bool "beyond ratio is a time regression" true
    (verdict_of slow id = Diff.Time_regression);
  check_int "time regression gates" 1 (Diff.exit_code slow);
  check_bool "3x faster is an improvement" true
    (verdict_of (diff 0.5) id = Diff.Improvement);
  (* the floor: sub-second cells never gate on time, whatever the ratio *)
  let tiny_base = matrix [ row baseline_pairs ~wall:0.01 ] in
  let tiny =
    Diff.compare_matrices ~baseline:tiny_base
      ~fresh:(matrix [ row baseline_pairs ~wall:0.4 ])
      ()
  in
  check_bool "below the floor is Same" true (verdict_of tiny id = Diff.Same)

let test_diff_new_skip_and_missing () =
  let skip_reason = "cell needs 4 cores, runner has 1" in
  let extra = with_axis "prov" "on" in
  let baseline = matrix [ row baseline_pairs ~wall:1.0; row extra ~wall:1.0 ] in
  let fresh =
    matrix [ row baseline_pairs ~outcome:(Report.Skipped skip_reason) ~wall:Float.nan ]
  in
  let result = Diff.compare_matrices ~baseline ~fresh () in
  check_int "one new skip" 1 result.Diff.new_skips;
  check_bool "new skip carries its reason" true
    (verdict_of result (Cell.id (Cell.make baseline_pairs))
    = Diff.New_skip skip_reason);
  check_bool "dropped cell is Missing_cell" true
    (verdict_of result (Cell.id (Cell.make extra)) = Diff.Missing_cell);
  (* the missing cell alone makes this a regression; new skips only
     gate when asked *)
  check_int "missing cell counts as regression" 1 result.Diff.regressions;
  check_int "exit 1 on the missing cell" 1 (Diff.exit_code result);
  (* fresh skips are collected for the loud section, new or not *)
  check_bool "fresh skip is listed" true
    (result.Diff.fresh_skips
    = [ (Cell.id (Cell.make baseline_pairs), skip_reason) ])

let test_diff_new_skip_gating () =
  let baseline = matrix [ row baseline_pairs ~wall:1.0 ] in
  let fresh =
    matrix [ row baseline_pairs ~outcome:(Report.Skipped "small runner") ~wall:Float.nan ]
  in
  let result = Diff.compare_matrices ~baseline ~fresh () in
  check_int "new skip alone is not a regression" 0 result.Diff.regressions;
  check_int "default: new skip does not gate" 0 (Diff.exit_code result);
  check_int "opt-in: new skip gates" 1
    (Diff.exit_code ~fail_on_new_skip:true result)

let test_diff_unskipped_and_new_cell () =
  let extra = with_axis "fp" "armed" in
  let baseline =
    matrix [ row baseline_pairs ~outcome:(Report.Skipped "was small") ~wall:Float.nan ]
  in
  let fresh = matrix [ row baseline_pairs ~wall:1.0; row extra ~wall:1.0 ] in
  let result = Diff.compare_matrices ~baseline ~fresh () in
  check_bool "skip that now runs is Unskipped" true
    (verdict_of result (Cell.id (Cell.make baseline_pairs)) = Diff.Unskipped);
  check_bool "fresh-only cell is New_cell" true
    (verdict_of result (Cell.id (Cell.make extra)) = Diff.New_cell);
  check_int "neither gates" 0 (Diff.exit_code result);
  check_int "unskip counts as improvement" 1 result.Diff.improvements

let test_diff_renderings () =
  let baseline = matrix [ row baseline_pairs ~wall:1.0 ] in
  let fresh =
    matrix
      [ row baseline_pairs ~outcome:(Report.Skipped "needs 4 cores") ~wall:Float.nan ]
  in
  let result = Diff.compare_matrices ~baseline ~fresh () in
  let table = Diff.render_table result in
  check_bool "table names the skipped cell loudly" true
    (contains table "skipped cells (1)");
  check_bool "table carries the reason" true (contains table "needs 4 cores");
  let md =
    Diff.render_markdown ~baseline_name:"BENCH_matrix.json"
      ~fresh_name:"fresh.json" result
  in
  check_bool "markdown has a SKIPPED section" true (contains md "SKIPPED");
  check_bool "markdown names the baseline file" true
    (contains md "BENCH_matrix.json")

(* ------------------------------------------------------------------ *)
(* Json_min and the snapshot read-back it enables                      *)

let test_json_min_roundtrip () =
  let src =
    {|{"a": [1, 2.5, -3e2], "s": "q\"\\\u0041\n", "t": true, "n": null, "o": {}}|}
  in
  match J.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v -> (
      check_bool "nested lookup" true
        (Option.map J.to_list (J.member "a" v) |> Option.map List.length
        = Some 3);
      check_bool "escapes decode" true
        (Option.bind (J.member "s" v) J.to_string = Some "q\"\\A\n");
      (* render and re-parse: the reading is stable *)
      match J.parse (J.to_string_json v) with
      | Ok v' -> check_bool "print/parse fixpoint" true (v = v')
      | Error e -> Alcotest.failf "reparse: %s" e)

let test_json_min_errors () =
  (match J.parse "{\"a\": }" with
  | Ok _ -> Alcotest.fail "accepted malformed JSON"
  | Error e -> check_bool "error carries a byte offset" true (contains e "byte"));
  match J.parse "[1, 2" with
  | Ok _ -> Alcotest.fail "accepted truncated JSON"
  | Error _ -> ()

let test_metrics_read_snapshot () =
  let module M = Compo_obs.Metrics in
  M.reset ();
  M.enable ();
  Fun.protect ~finally:M.disable (fun () ->
      M.add (M.counter "bm.counter") 42;
      M.set_gauge (M.gauge "bm.gauge") 2.5;
      List.iter (M.observe (M.histogram "bm.histo")) [ 0.1; 0.2; 0.3 ];
      let path = Filename.temp_file "compo-snap-test" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          M.snapshot_to_file path;
          match M.read_snapshot_file path with
          | Error e -> Alcotest.failf "read_snapshot_file: %s" e
          | Ok snap ->
              let scalar name =
                Option.map M.metric_scalar (List.assoc_opt name snap)
              in
              check_bool "counter reads back" true
                (scalar "bm.counter" = Some 42.0);
              check_bool "gauge reads back" true (scalar "bm.gauge" = Some 2.5);
              check_bool "histogram count reads back" true
                (scalar "bm.histo" = Some 3.0)))

let suite =
  ( "benchmatrix",
    [
      case "curated enumeration: 12+ unique, fully-bound cells"
        test_default_cells;
      case "env rendering realises exactly the non-default axes"
        test_env_rendering;
      case "required cores follow the jobs axis" test_required_cores;
      case "axis product and id dedup" test_product_and_dedup;
      case "BENCH_matrix.json round-trips outcomes, reasons and nan"
        test_report_roundtrip;
      case "identical matrices diff clean" test_diff_clean;
      case "ok -> failed gates as a regression" test_diff_regression;
      case "coarse wall-time ratio and floor" test_diff_time_thresholds;
      case "new skips are loud, missing cells gate"
        test_diff_new_skip_and_missing;
      case "--fail-on-new-skip opt-in gating" test_diff_new_skip_gating;
      case "unskipped and new cells never gate"
        test_diff_unskipped_and_new_cell;
      case "table and markdown renderings stay loud about skips"
        test_diff_renderings;
      case "json_min parses what it prints" test_json_min_roundtrip;
      case "json_min rejects malformed input with offsets"
        test_json_min_errors;
      case "metrics snapshots read back for harvesting"
        test_metrics_read_snapshot;
    ] )
