(* Differential oracle for the query engines: over randomized schemas,
   populations and predicates, three runs of the same select must return
   exactly the same thing — same rows, same order, same resolved values:

     interpreted         Plan disabled, jobs = 1   (the reference)
     compiled            Plan enabled,  jobs = 1
     parallel compiled   Plan enabled,  jobs = 4

   The generator is a hand-rolled splittable PRNG (never
   [Random.self_init]), so every run replays the same 200+ seeds and a
   reported failure reproduces from its seed alone.

   The mutation-interleaved rounds keep one database alive and run
   randomized attribute writes, rebinds, unbinds, creates and deletes
   between the selects, so the compiled runs go through delta-maintained
   registries and columns rather than fresh builds; the predicates there
   also draw multi-segment paths and quantifiers, which the widened
   compiler must serve.  A divergence reports the seed plus the full
   mutation script. *)

open Compo_core
open Helpers

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* SplitMix64: one mutable stream per seed, splittable by construction
   (each seed is an independent stream). *)

type rng = { mutable state : int64 }

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make_rng seed = { state = mix64 (Int64.of_int (seed * 2 + 1)) }

let bits r =
  r.state <- Int64.add r.state 0x9e3779b97f4a7c15L;
  mix64 r.state

let rand r bound =
  Int64.to_int (Int64.rem (Int64.logand (bits r) Int64.max_int) (Int64.of_int bound))

let pick r arr = arr.(rand r (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Random schema: an inheritance chain T0 -> T1 -> ... -> Td (depth
   2..5).  T0 owns [A] and [B]; each hop transmits a random subset of
   them (its permeability), so a deep object may see [A] but not [B],
   both, or neither.  Every type owns a [Local] attribute. *)

let ty k = "T" ^ string_of_int k
let rel k = "AllOf_T" ^ string_of_int k

let random_schema r db =
  let depth = 2 + rand r 4 in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = ty 0;
        ot_inheritor_in = None;
        ot_attrs =
          [
            { Schema.attr_name = "A"; attr_domain = Domain.Integer };
            { Schema.attr_name = "B"; attr_domain = Domain.Integer };
            { Schema.attr_name = "Local"; attr_domain = Domain.Integer };
            (* a reference to any population member: the second segment
               of the mutation rounds' P.A / P.B / P.Local predicates *)
            { Schema.attr_name = "P"; attr_domain = Domain.Ref None };
          ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  (* a hop can only transmit features of its transmitter, so the
     permeable set narrows monotonically down the chain: T3 may see A
     but not B when R1 dropped B *)
  let rec hops k avail =
    if k >= depth then Ok depth
    else
      let permeable =
        match avail with
        | [ "A"; "B" ] -> (
            match rand r 3 with
            | 0 -> [ "A" ]
            | 1 -> [ "B" ]
            | _ -> [ "A"; "B" ])
        | narrowed -> narrowed
      in
      let* () =
        Database.define_inher_rel_type db
          {
            Schema.it_name = rel k;
            it_transmitter = ty k;
            it_inheritor = Some (ty (k + 1));
            it_inheriting = permeable;
            it_attrs = [];
            it_subclasses = [];
            it_constraints = [];
          }
      in
      let* () =
        Database.define_obj_type db
          {
            Schema.ot_name = ty (k + 1);
            ot_inheritor_in = Some (rel k);
            ot_attrs =
              [ { Schema.attr_name = "Local"; attr_domain = Domain.Integer } ];
            ot_subclasses = [];
            ot_subrels = [];
            ot_constraints = [];
          }
      in
      hops (k + 1) permeable
  in
  let* depth = hops 0 [ "A"; "B" ] in
  let* () = Database.create_class db ~name:"Pop" ~member_type:(ty 0) in
  Ok depth

(* ------------------------------------------------------------------ *)
(* Random population: 100..1000 objects across the chain levels
   ([cap] trims that for the quadratic quantifier predicates of the
   mutation rounds); a level-k object binds to a random level-(k-1)
   object, so inherited reads resolve across k transmitter hops.
   Returns the per-level membership, which the mutation engine keeps
   updating as it creates and deletes. *)

let random_population ?(cap = 1001) r db ~depth =
  let n = min cap (100 + rand r 901) in
  let by_level = Array.make (depth + 1) [] in
  let* () =
    let rec go i =
      if i >= n then Ok ()
      else
        let level =
          if i = 0 then 0
          else
            let l = rand r (depth + 1) in
            if by_level.(max 0 (l - 1)) = [] then 0 else l
        in
        let attrs =
          if level = 0 then
            [
              ("A", Value.Int (rand r 20));
              ("B", Value.Int (rand r 20));
              ("Local", Value.Int (rand r 20));
            ]
          else [ ("Local", Value.Int (rand r 20)) ]
        in
        let* s = Database.new_object db ~cls:"Pop" ~ty:(ty level) ~attrs () in
        let* () =
          if level = 0 then Ok ()
          else
            let parents = Array.of_list by_level.(level - 1) in
            let t = pick r parents in
            let* (_ : Surrogate.t) =
              Database.bind db ~via:(rel (level - 1)) ~transmitter:t
                ~inheritor:s ()
            in
            Ok ()
        in
        by_level.(level) <- s :: by_level.(level);
        go (i + 1)
    in
    go 0
  in
  Ok (n, by_level)

(* ------------------------------------------------------------------ *)
(* Random predicate over A / B / Local: comparison leaves, And/Or/Not
   combinators, depth up to 3.  Rendered as source and parsed, so the
   oracle exercises the same expression pipeline as the CLI. *)

let rec random_pred r depth =
  if depth = 0 || rand r 3 = 0 then
    let attr = pick r [| "A"; "B"; "Local" |] in
    let op = pick r [| "="; "<>"; "<"; "<="; ">"; ">=" |] in
    Printf.sprintf "%s %s %d" attr op (rand r 20)
  else
    match rand r 3 with
    | 0 ->
        Printf.sprintf "(%s and %s)"
          (random_pred r (depth - 1))
          (random_pred r (depth - 1))
    | 1 ->
        Printf.sprintf "(%s or %s)"
          (random_pred r (depth - 1))
          (random_pred r (depth - 1))
    | _ -> Printf.sprintf "(not %s)" (random_pred r (depth - 1))

(* ------------------------------------------------------------------ *)
(* Wider predicates for the mutation rounds: the plain comparison
   leaves, plus multi-segment paths through the P reference and the
   quantifier forms — exactly the shapes the widened compiler serves
   with flat or interpreter-filled columns.  Still string-rendered and
   parsed, so a reported predicate replays through the CLI verbatim. *)

let ops = [| "="; "<>"; "<"; "<="; ">"; ">=" |]

let rec random_pred_wide r depth =
  if depth = 0 || rand r 3 = 0 then
    match rand r 10 with
    | 0 | 1 ->
        Printf.sprintf "P.%s %s %d"
          (pick r [| "A"; "B"; "Local" |])
          (pick r ops) (rand r 20)
    | 2 ->
        Printf.sprintf "(exists p in Pop : p.%s %s %s)"
          (pick r [| "A"; "B"; "Local" |])
          (pick r ops)
          (pick r [| "A"; "B"; "Local" |])
    | 3 ->
        Printf.sprintf "(for p in Pop : p.Local %s %d)" (pick r ops)
          (rand r 20)
    | 4 ->
        Printf.sprintf "((count (Pop) where (Local %s %d)) %s %d)" (pick r ops)
          (rand r 20) (pick r ops) (rand r 40)
    | 5 -> Printf.sprintf "((sum (Pop.Local)) %s %d)" (pick r ops) (rand r 2000)
    | _ ->
        Printf.sprintf "%s %s %d"
          (pick r [| "A"; "B"; "Local" |])
          (pick r ops) (rand r 20)
  else
    match rand r 3 with
    | 0 ->
        Printf.sprintf "(%s and %s)"
          (random_pred_wide r (depth - 1))
          (random_pred_wide r (depth - 1))
    | 1 ->
        Printf.sprintf "(%s or %s)"
          (random_pred_wide r (depth - 1))
          (random_pred_wide r (depth - 1))
    | _ -> Printf.sprintf "(not %s)" (random_pred_wide r (depth - 1))

(* ------------------------------------------------------------------ *)
(* The mutation engine.  Every step appends one line to [script]
   (including the errors it tolerated — deleting a member someone still
   binds to, rebinding a just-deleted inheritor, ... are all legitimate
   interleavings whose Error results are part of the round), so a
   divergence reports an exact replayable trace. *)

let surr = Surrogate.to_string

let random_mutation r db levels script =
  let log fmt = Printf.ksprintf (Buffer.add_string script) fmt in
  let tolerate what res =
    match res with
    | Ok () -> log "%s\n" what
    | Error e -> log "%s -> %s\n" what (Errors.to_string e)
  in
  let depth = Array.length levels - 1 in
  let pick_level p =
    match
      List.filter
        (fun k -> levels.(k) <> [] && p k)
        (List.init (depth + 1) Fun.id)
    with
    | [] -> None
    | ks -> Some (List.nth ks (rand r (List.length ks)))
  in
  let pick_member k = pick r (Array.of_list levels.(k)) in
  match rand r 12 with
  | 0 | 1 | 2 | 3 -> (
      (* attribute write: the bread and butter of column deltas *)
      match pick_level (fun _ -> true) with
      | None -> ()
      | Some k ->
          let s = pick_member k in
          let attr = if k = 0 then pick r [| "A"; "B"; "Local" |] else "Local" in
          let v = rand r 20 in
          tolerate
            (Printf.sprintf "set %s.%s = %d" (surr s) attr v)
            (Database.set_attr db s attr (Value.Int v)))
  | 4 | 5 -> (
      (* re-point a level-0 reference: dirties second-segment chains *)
      match levels.(0) with
      | [] -> ()
      | _ ->
          let s = pick_member 0 in
          let target = pick r (Array.of_list (List.concat (Array.to_list levels))) in
          tolerate
            (Printf.sprintf "set %s.P = %s" (surr s) (surr target))
            (Database.set_attr db s "P" (Value.Ref target)))
  | 6 | 7 -> (
      (* disconnect, then usually reconnect elsewhere: Ch_rebound *)
      match pick_level (fun k -> k > 0) with
      | None -> ()
      | Some k ->
          let s = pick_member k in
          tolerate
            (Printf.sprintf "unbind %s" (surr s))
            (Database.unbind db s);
          if levels.(k - 1) <> [] && rand r 4 > 0 then
            let t = pick_member (k - 1) in
            tolerate
              (Printf.sprintf "bind %s via %s -> %s" (surr s)
                 (rel (k - 1))
                 (surr t))
              (Result.map
                 (fun (_ : Surrogate.t) -> ())
                 (Database.bind db ~via:(rel (k - 1)) ~transmitter:t
                    ~inheritor:s ())))
  | 8 | 9 -> (
      (* grow the population: Ch_created + class membership *)
      match pick_level (fun k -> k = 0 || levels.(k - 1) <> []) with
      | None -> ()
      | Some k -> (
          let attrs =
            if k = 0 then
              [
                ("A", Value.Int (rand r 20));
                ("B", Value.Int (rand r 20));
                ("Local", Value.Int (rand r 20));
              ]
            else [ ("Local", Value.Int (rand r 20)) ]
          in
          match Database.new_object db ~cls:"Pop" ~ty:(ty k) ~attrs () with
          | Error e -> log "create T%d -> %s\n" k (Errors.to_string e)
          | Ok s ->
              levels.(k) <- s :: levels.(k);
              log "create %s : T%d\n" (surr s) k;
              if k > 0 then
                let t = pick_member (k - 1) in
                tolerate
                  (Printf.sprintf "bind %s via %s -> %s" (surr s)
                     (rel (k - 1))
                     (surr t))
                  (Result.map
                     (fun (_ : Surrogate.t) -> ())
                     (Database.bind db ~via:(rel (k - 1)) ~transmitter:t
                        ~inheritor:s ()))))
  | _ -> (
      (* shrink it: tombstones in the registry, realignment in columns *)
      match pick_level (fun _ -> true) with
      | None -> ()
      | Some k -> (
          let s = pick_member k in
          match Database.delete db ~force:true s with
          | Ok () ->
              levels.(k) <-
                List.filter (fun x -> not (Surrogate.equal x s)) levels.(k);
              log "delete %s\n" (surr s)
          | Error e -> log "delete %s -> %s\n" (surr s) (Errors.to_string e)))

(* ------------------------------------------------------------------ *)
(* One differential round.  On mismatch, report the seed and the plan
   of both runs so the failure reproduces and explains itself. *)

let explain_both db ~cls where =
  match Database.explain_select db ~cls ?where () with
  | Ok (_, ex) -> Format.asprintf "%a" (Query.pp_explain ~timings:false) ex
  | Error e -> "explain failed: " ^ Errors.to_string e

let check_round seed =
  let r = make_rng seed in
  let db = Database.create () in
  let depth = ok (random_schema r db) in
  let (_ : int * Surrogate.t list array) = ok (random_population r db ~depth) in
  (* half the seeds register an index on Local, covering the planned
     (index access + parallel residual) path as well as the scan path *)
  if rand r 2 = 0 then ok (Database.create_index db ~cls:"Pop" ~attr:"Local");
  let src = random_pred r 3 in
  let where = Some (ok (Compo_ddl.Parser.parse_expr src)) in
  let plan0 = Plan.enabled () in
  Fun.protect ~finally:(fun () -> Plan.set_enabled plan0) @@ fun () ->
  let run_with enabled jobs =
    Plan.set_enabled enabled;
    ok (Database.select db ~cls:"Pop" ~jobs ?where ())
  in
  let interp = run_with false 1 in
  let seq = run_with true 1 in
  let par = run_with true 4 in
  let diff label a b =
    if not (List.equal Surrogate.equal a b) then
      Alcotest.failf
        "seed %d: %s rows differ for %s\n\
         reference: %d row(s) [%s]\n\
         other:     %d row(s) [%s]\n\
         plan:\n\
         %s"
        seed label src (List.length a)
        (String.concat ", " (List.map Surrogate.to_string a))
        (List.length b)
        (String.concat ", " (List.map Surrogate.to_string b))
        (explain_both db ~cls:"Pop" where)
  in
  diff "interpreted vs compiled" interp seq;
  diff "compiled vs parallel-compiled" seq par;
  (* same rows in the same order; now the same resolved values *)
  List.iter
    (fun attr ->
      let project rows =
        List.map
          (fun s ->
            match Database.get_attr db s attr with
            | Ok v -> Value.to_string v
            | Error e -> "!" ^ Errors.to_string e)
          rows
      in
      let vi = project interp and vs = project seq and vp = project par in
      if vi <> vs || vs <> vp then
        Alcotest.failf "seed %d: resolved %s values differ for %s" seed attr
          src)
    [ "A"; "B"; "Local" ]

let test_differential () =
  let scans0 = Plan.compiled_scans () in
  for seed = 0 to 219 do
    check_round seed
  done;
  (* the oracle proves nothing if the compiled engine silently stood
     down for every round *)
  Alcotest.(check bool)
    "compiled engine engaged" true
    (Plan.compiled_scans () > scans0)

(* ------------------------------------------------------------------ *)
(* Mutation-interleaved torture: one database per seed stays alive for
   ten rounds of (mutation batch; 3-way check), so from round two
   onward the compiled engines run on delta-maintained plan state.  30
   seeds x 10 rounds = 300 mutating rounds.  The per-round check is the
   same 3-way diff as above, but over the widened predicate pool
   (multi-segment paths, quantifiers); a failure reports the seed, the
   predicate and the full mutation script executed so far. *)

let check_mutation_seed seed =
  let r = make_rng seed in
  let db = Database.create () in
  let depth = ok (random_schema r db) in
  let _n, levels = ok (random_population ~cap:160 r db ~depth) in
  (* seed the P references so multi-segment predicates resolve *)
  let all = List.concat (Array.to_list levels) in
  List.iter
    (fun s ->
      if rand r 2 = 0 then
        ok (Database.set_attr db s "P" (Value.Ref (pick r (Array.of_list all)))))
    levels.(0);
  let script = Buffer.create 256 in
  let plan0 = Plan.enabled () in
  Fun.protect ~finally:(fun () -> Plan.set_enabled plan0) @@ fun () ->
  for round = 0 to 9 do
    for _ = 0 to 2 + rand r 4 do
      random_mutation r db levels script
    done;
    let src = random_pred_wide r 2 in
    let where = Some (ok (Compo_ddl.Parser.parse_expr src)) in
    let run_with enabled jobs =
      Plan.set_enabled enabled;
      ok (Database.select db ~cls:"Pop" ~jobs ?where ())
    in
    let interp = run_with false 1 in
    let seq = run_with true 1 in
    let par = run_with true 4 in
    let diff label a b =
      if not (List.equal Surrogate.equal a b) then
        Alcotest.failf
          "seed %d round %d: %s rows differ for %s\n\
           reference: %d row(s) [%s]\n\
           other:     %d row(s) [%s]\n\
           mutation script so far:\n\
           %s"
          seed round label src (List.length a)
          (String.concat ", " (List.map Surrogate.to_string a))
          (List.length b)
          (String.concat ", " (List.map Surrogate.to_string b))
          (Buffer.contents script)
    in
    diff "interpreted vs compiled" interp seq;
    diff "compiled vs parallel-compiled" seq par
  done

let test_mutation_interleaved () =
  let scans0 = Plan.compiled_scans () in
  for seed = 2000 to 2029 do
    check_mutation_seed seed
  done;
  Alcotest.(check bool)
    "compiled engine engaged under mutation" true
    (Plan.compiled_scans () > scans0)

(* The unplanned scan path through Query.select directly (no Database
   planner in the way), including subclass-free stores. *)
let test_query_select_direct () =
  for seed = 1000 to 1019 do
    let r = make_rng seed in
    let db = Database.create () in
    let depth = ok (random_schema r db) in
    let (_ : int * Surrogate.t list array) =
      ok (random_population r db ~depth)
    in
    let src = random_pred r 3 in
    let where = ok (Compo_ddl.Parser.parse_expr src) in
    let store = Database.store db in
    let seq = ok (Query.select store ~cls:"Pop" ~jobs:1 ~where ()) in
    let par = ok (Query.select store ~cls:"Pop" ~jobs:4 ~where ()) in
    if not (List.equal Surrogate.equal seq par) then
      Alcotest.failf "seed %d: Query.select rows differ for %s" seed src
  done

(* Degenerate shapes stay identical too: empty extent, empty predicate,
   jobs exceeding the extent, jobs = max. *)
let test_edges () =
  let db = Database.create () in
  let r = make_rng 424242 in
  let depth = ok (random_schema r db) in
  let empty = ok (Database.select db ~cls:"Pop" ~jobs:4 ()) in
  check_int "empty extent" 0 (List.length empty);
  let (_ : int * Surrogate.t list array) =
    ok (random_population r db ~depth)
  in
  let all_seq = ok (Database.select db ~cls:"Pop" ~jobs:1 ()) in
  let all_par = ok (Database.select db ~cls:"Pop" ~jobs:64 ()) in
  Alcotest.(check bool)
    "no predicate, jobs=64" true
    (List.equal Surrogate.equal all_seq all_par)

let suite =
  ( "par-diff",
    [
      case
        "interpreted == compiled == parallel-compiled over 220 random rounds"
        test_differential;
      case
        "mutation-interleaved: 300 rounds of deltas under the same oracle"
        test_mutation_interleaved;
      case "Query.select direct path, 20 rounds" test_query_select_direct;
      case "degenerate shapes" test_edges;
    ] )
