(* Differential oracle for the query engines: over randomized schemas,
   populations and predicates, three runs of the same select must return
   exactly the same thing — same rows, same order, same resolved values:

     interpreted         Plan disabled, jobs = 1   (the reference)
     compiled            Plan enabled,  jobs = 1
     parallel compiled   Plan enabled,  jobs = 4

   The generator is a hand-rolled splittable PRNG (never
   [Random.self_init]), so every run replays the same 200+ seeds and a
   reported failure reproduces from its seed alone. *)

open Compo_core
open Helpers

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* SplitMix64: one mutable stream per seed, splittable by construction
   (each seed is an independent stream). *)

type rng = { mutable state : int64 }

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make_rng seed = { state = mix64 (Int64.of_int (seed * 2 + 1)) }

let bits r =
  r.state <- Int64.add r.state 0x9e3779b97f4a7c15L;
  mix64 r.state

let rand r bound =
  Int64.to_int (Int64.rem (Int64.logand (bits r) Int64.max_int) (Int64.of_int bound))

let pick r arr = arr.(rand r (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Random schema: an inheritance chain T0 -> T1 -> ... -> Td (depth
   2..5).  T0 owns [A] and [B]; each hop transmits a random subset of
   them (its permeability), so a deep object may see [A] but not [B],
   both, or neither.  Every type owns a [Local] attribute. *)

let ty k = "T" ^ string_of_int k
let rel k = "AllOf_T" ^ string_of_int k

let random_schema r db =
  let depth = 2 + rand r 4 in
  let* () =
    Database.define_obj_type db
      {
        Schema.ot_name = ty 0;
        ot_inheritor_in = None;
        ot_attrs =
          [
            { Schema.attr_name = "A"; attr_domain = Domain.Integer };
            { Schema.attr_name = "B"; attr_domain = Domain.Integer };
            { Schema.attr_name = "Local"; attr_domain = Domain.Integer };
          ];
        ot_subclasses = [];
        ot_subrels = [];
        ot_constraints = [];
      }
  in
  (* a hop can only transmit features of its transmitter, so the
     permeable set narrows monotonically down the chain: T3 may see A
     but not B when R1 dropped B *)
  let rec hops k avail =
    if k >= depth then Ok depth
    else
      let permeable =
        match avail with
        | [ "A"; "B" ] -> (
            match rand r 3 with
            | 0 -> [ "A" ]
            | 1 -> [ "B" ]
            | _ -> [ "A"; "B" ])
        | narrowed -> narrowed
      in
      let* () =
        Database.define_inher_rel_type db
          {
            Schema.it_name = rel k;
            it_transmitter = ty k;
            it_inheritor = Some (ty (k + 1));
            it_inheriting = permeable;
            it_attrs = [];
            it_subclasses = [];
            it_constraints = [];
          }
      in
      let* () =
        Database.define_obj_type db
          {
            Schema.ot_name = ty (k + 1);
            ot_inheritor_in = Some (rel k);
            ot_attrs =
              [ { Schema.attr_name = "Local"; attr_domain = Domain.Integer } ];
            ot_subclasses = [];
            ot_subrels = [];
            ot_constraints = [];
          }
      in
      hops (k + 1) permeable
  in
  let* depth = hops 0 [ "A"; "B" ] in
  let* () = Database.create_class db ~name:"Pop" ~member_type:(ty 0) in
  Ok depth

(* ------------------------------------------------------------------ *)
(* Random population: 100..1000 objects across the chain levels; a
   level-k object binds to a random level-(k-1) object, so inherited
   reads resolve across k transmitter hops. *)

let random_population r db ~depth =
  let n = 100 + rand r 901 in
  let by_level = Array.make (depth + 1) [] in
  let* () =
    let rec go i =
      if i >= n then Ok ()
      else
        let level =
          if i = 0 then 0
          else
            let l = rand r (depth + 1) in
            if by_level.(max 0 (l - 1)) = [] then 0 else l
        in
        let attrs =
          if level = 0 then
            [
              ("A", Value.Int (rand r 20));
              ("B", Value.Int (rand r 20));
              ("Local", Value.Int (rand r 20));
            ]
          else [ ("Local", Value.Int (rand r 20)) ]
        in
        let* s = Database.new_object db ~cls:"Pop" ~ty:(ty level) ~attrs () in
        let* () =
          if level = 0 then Ok ()
          else
            let parents = Array.of_list by_level.(level - 1) in
            let t = pick r parents in
            let* (_ : Surrogate.t) =
              Database.bind db ~via:(rel (level - 1)) ~transmitter:t
                ~inheritor:s ()
            in
            Ok ()
        in
        by_level.(level) <- s :: by_level.(level);
        go (i + 1)
    in
    go 0
  in
  Ok n

(* ------------------------------------------------------------------ *)
(* Random predicate over A / B / Local: comparison leaves, And/Or/Not
   combinators, depth up to 3.  Rendered as source and parsed, so the
   oracle exercises the same expression pipeline as the CLI. *)

let rec random_pred r depth =
  if depth = 0 || rand r 3 = 0 then
    let attr = pick r [| "A"; "B"; "Local" |] in
    let op = pick r [| "="; "<>"; "<"; "<="; ">"; ">=" |] in
    Printf.sprintf "%s %s %d" attr op (rand r 20)
  else
    match rand r 3 with
    | 0 ->
        Printf.sprintf "(%s and %s)"
          (random_pred r (depth - 1))
          (random_pred r (depth - 1))
    | 1 ->
        Printf.sprintf "(%s or %s)"
          (random_pred r (depth - 1))
          (random_pred r (depth - 1))
    | _ -> Printf.sprintf "(not %s)" (random_pred r (depth - 1))

(* ------------------------------------------------------------------ *)
(* One differential round.  On mismatch, report the seed and the plan
   of both runs so the failure reproduces and explains itself. *)

let explain_both db ~cls where =
  match Database.explain_select db ~cls ?where () with
  | Ok (_, ex) -> Format.asprintf "%a" (Query.pp_explain ~timings:false) ex
  | Error e -> "explain failed: " ^ Errors.to_string e

let check_round seed =
  let r = make_rng seed in
  let db = Database.create () in
  let depth = ok (random_schema r db) in
  let (_ : int) = ok (random_population r db ~depth) in
  (* half the seeds register an index on Local, covering the planned
     (index access + parallel residual) path as well as the scan path *)
  if rand r 2 = 0 then ok (Database.create_index db ~cls:"Pop" ~attr:"Local");
  let src = random_pred r 3 in
  let where = Some (ok (Compo_ddl.Parser.parse_expr src)) in
  let plan0 = Plan.enabled () in
  Fun.protect ~finally:(fun () -> Plan.set_enabled plan0) @@ fun () ->
  let run_with enabled jobs =
    Plan.set_enabled enabled;
    ok (Database.select db ~cls:"Pop" ~jobs ?where ())
  in
  let interp = run_with false 1 in
  let seq = run_with true 1 in
  let par = run_with true 4 in
  let diff label a b =
    if not (List.equal Surrogate.equal a b) then
      Alcotest.failf
        "seed %d: %s rows differ for %s\n\
         reference: %d row(s) [%s]\n\
         other:     %d row(s) [%s]\n\
         plan:\n\
         %s"
        seed label src (List.length a)
        (String.concat ", " (List.map Surrogate.to_string a))
        (List.length b)
        (String.concat ", " (List.map Surrogate.to_string b))
        (explain_both db ~cls:"Pop" where)
  in
  diff "interpreted vs compiled" interp seq;
  diff "compiled vs parallel-compiled" seq par;
  (* same rows in the same order; now the same resolved values *)
  List.iter
    (fun attr ->
      let project rows =
        List.map
          (fun s ->
            match Database.get_attr db s attr with
            | Ok v -> Value.to_string v
            | Error e -> "!" ^ Errors.to_string e)
          rows
      in
      let vi = project interp and vs = project seq and vp = project par in
      if vi <> vs || vs <> vp then
        Alcotest.failf "seed %d: resolved %s values differ for %s" seed attr
          src)
    [ "A"; "B"; "Local" ]

let test_differential () =
  let scans0 = Plan.compiled_scans () in
  for seed = 0 to 219 do
    check_round seed
  done;
  (* the oracle proves nothing if the compiled engine silently stood
     down for every round *)
  Alcotest.(check bool)
    "compiled engine engaged" true
    (Plan.compiled_scans () > scans0)

(* The unplanned scan path through Query.select directly (no Database
   planner in the way), including subclass-free stores. *)
let test_query_select_direct () =
  for seed = 1000 to 1019 do
    let r = make_rng seed in
    let db = Database.create () in
    let depth = ok (random_schema r db) in
    let (_ : int) = ok (random_population r db ~depth) in
    let src = random_pred r 3 in
    let where = ok (Compo_ddl.Parser.parse_expr src) in
    let store = Database.store db in
    let seq = ok (Query.select store ~cls:"Pop" ~jobs:1 ~where ()) in
    let par = ok (Query.select store ~cls:"Pop" ~jobs:4 ~where ()) in
    if not (List.equal Surrogate.equal seq par) then
      Alcotest.failf "seed %d: Query.select rows differ for %s" seed src
  done

(* Degenerate shapes stay identical too: empty extent, empty predicate,
   jobs exceeding the extent, jobs = max. *)
let test_edges () =
  let db = Database.create () in
  let r = make_rng 424242 in
  let depth = ok (random_schema r db) in
  let empty = ok (Database.select db ~cls:"Pop" ~jobs:4 ()) in
  check_int "empty extent" 0 (List.length empty);
  let (_ : int) = ok (random_population r db ~depth) in
  let all_seq = ok (Database.select db ~cls:"Pop" ~jobs:1 ()) in
  let all_par = ok (Database.select db ~cls:"Pop" ~jobs:64 ()) in
  Alcotest.(check bool)
    "no predicate, jobs=64" true
    (List.equal Surrogate.equal all_seq all_par)

let suite =
  ( "par-diff",
    [
      case
        "interpreted == compiled == parallel-compiled over 220 random rounds"
        test_differential;
      case "Query.select direct path, 20 rounds" test_query_select_direct;
      case "degenerate shapes" test_edges;
    ] )
