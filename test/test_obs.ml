(* The observability subsystem: metric semantics, span nesting, the
   slow-op log, and snapshot/reset isolation. *)

open Helpers
module Obs = Compo_obs.Metrics
module Trace = Compo_obs.Trace

(* The registry and the trace sink are process-global, so every test
   starts from a clean, enabled state and disables on the way out. *)
let with_obs f () =
  Obs.reset ();
  Obs.enable ();
  Trace.clear ();
  Trace.set_slow_threshold infinity;
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

let test_counter () =
  let c = Obs.counter "t.counter" in
  check_int "fresh counter" 0 (Obs.count c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3;
  check_int "incremented" 5 (Obs.count c);
  (* find-or-create returns the same cell *)
  Obs.incr (Obs.counter "t.counter");
  check_int "shared handle" 6 (Obs.count c);
  check_int "counter_value" 6 (Obs.counter_value "t.counter");
  check_int "absent counter_value" 0 (Obs.counter_value "t.absent")

let test_disabled_is_noop () =
  let c = Obs.counter "t.disabled" in
  let g = Obs.gauge "t.disabled.gauge" in
  let h = Obs.histogram "t.disabled.histo" in
  Obs.disable ();
  Obs.incr c;
  Obs.add c 10;
  Obs.set_gauge g 4.2;
  Obs.observe h 0.5;
  Trace.with_span "t.disabled.span" (fun () -> ());
  Obs.enable ();
  check_int "counter untouched" 0 (Obs.count c);
  check_bool "gauge untouched" true (Obs.gauge_value g = 0.);
  check_int "histogram untouched" 0 (Obs.observations h);
  check_int "no span recorded" 0 (Trace.recorded ())

let test_kind_clash () =
  let (_ : Obs.counter) = Obs.counter "t.clash" in
  match Obs.histogram "t.clash" with
  | (_ : Obs.histogram) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_gauge () =
  let g = Obs.gauge "t.gauge" in
  Obs.set_gauge g 2.5;
  Obs.add_gauge g 1.5;
  check_bool "gauge value" true (Obs.gauge_value g = 4.0)

let test_histogram () =
  let h = Obs.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "t.histo" in
  List.iter (Obs.observe h) [ 0.5; 0.7; 5.0; 50.0; 1000.0 ];
  check_int "observations" 5 (Obs.observations h);
  check_bool "sum" true (abs_float (Obs.sum h -. 1056.2) < 1e-9);
  match Obs.find "t.histo" with
  | Some (Obs.Histogram s) ->
      check_int "bucket <=1" 2 (snd s.Obs.h_buckets.(0));
      check_int "bucket <=10" 1 (snd s.Obs.h_buckets.(1));
      check_int "bucket <=100" 1 (snd s.Obs.h_buckets.(2));
      check_int "overflow" 1 s.Obs.h_overflow;
      check_int "count" 5 s.Obs.h_count;
      check_bool "min" true (s.Obs.h_min = 0.5);
      check_bool "max" true (s.Obs.h_max = 1000.0);
      (* the median observation (5.0) falls in the <=10 bucket *)
      check_bool "p50 bound" true (Obs.quantile s 0.5 = 10.0)
  | Some _ | None -> Alcotest.fail "histogram not in snapshot"

let test_span_nesting () =
  let v =
    Trace.with_span "t.outer" ~attrs:[ ("k", "v") ] (fun () ->
        check_int "inside depth" 1 (Trace.current_depth ());
        Trace.with_span "t.inner" (fun () -> Trace.current_depth ()))
  in
  check_int "nested depth" 2 v;
  check_int "depth restored" 0 (Trace.current_depth ());
  check_int "two spans" 2 (Trace.recorded ());
  (match Trace.recent () with
  | [ outer; inner ] ->
      (* newest first: the outer span finishes last *)
      check_string "outer last" "t.outer" outer.Trace.sp_name;
      check_string "inner first" "t.inner" inner.Trace.sp_name;
      check_int "outer at depth 0" 0 outer.Trace.sp_depth;
      check_int "inner at depth 1" 1 inner.Trace.sp_depth;
      check_string "attrs kept" "v" (List.assoc "k" outer.Trace.sp_attrs)
  | other -> Alcotest.failf "expected 2 spans, got %d" (List.length other));
  (* each span feeds the histogram registered under its name *)
  check_int "outer histogram" 1 (Obs.observations (Obs.histogram "t.outer"))

let test_span_exception () =
  (match Trace.with_span "t.raises" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure _ -> ());
  check_int "span recorded anyway" 1 (Trace.recorded ());
  check_int "depth restored" 0 (Trace.current_depth ())

let test_slow_ops () =
  Trace.set_slow_threshold 10.0;
  Trace.with_span "t.fast" (fun () -> ());
  check_int "under threshold" 0 (List.length (Trace.slow_ops ()));
  Trace.set_slow_threshold 0.0;
  Trace.with_span "t.slow" (fun () -> ());
  (match Trace.slow_ops () with
  | [ s ] -> check_string "slow op logged" "t.slow" s.Trace.sp_name
  | other -> Alcotest.failf "expected 1 slow op, got %d" (List.length other));
  Trace.clear ();
  check_int "clear drops the log" 0 (List.length (Trace.slow_ops ()))

let test_ring_capacity () =
  Trace.set_capacity 4;
  for i = 1 to 10 do
    Trace.with_span (Printf.sprintf "t.ring.%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.recent ()) in
  Alcotest.(check (list string))
    "ring keeps the newest"
    [ "t.ring.10"; "t.ring.9"; "t.ring.8"; "t.ring.7" ]
    names;
  check_int "recorded counts all" 10 (Trace.recorded ());
  Trace.set_capacity 512

let test_snapshot_reset () =
  let c = Obs.counter "t.reset" in
  Obs.incr c;
  let snap = Obs.snapshot () in
  check_bool "snapshot sees the counter" true
    (List.mem_assoc "t.reset" snap);
  Obs.reset ();
  (* the old snapshot is an immutable copy; the handle is zeroed in
     place and stays usable *)
  check_bool "snapshot unchanged" true
    (List.assoc "t.reset" snap = Obs.Counter 1);
  check_int "reset zeroes" 0 (Obs.count c);
  Obs.incr c;
  check_int "handle survives reset" 1 (Obs.count c)

let test_private_registry () =
  let r = Obs.create_registry () in
  let c = Obs.counter ~registry:r "t.private" in
  Obs.incr c;
  check_int "private registry counts" 1 (Obs.counter_value ~registry:r "t.private");
  check_int "default registry untouched" 0 (Obs.counter_value "t.private")

let test_ratio_string () =
  check_string "zero denominator prints n/a" "n/a"
    (Obs.ratio_string ~num:0 ~den:0 ());
  check_string "zero denominator with hits" "n/a"
    (Obs.ratio_string ~num:3 ~den:0 ());
  check_string "plain percentage" "50.0%" (Obs.ratio_string ~num:1 ~den:2 ());
  check_string "full" "100.0%" (Obs.ratio_string ~num:7 ~den:7 ());
  check_string "unscaled" "0.5%" (Obs.ratio_string ~scale:1. ~num:1 ~den:2 ())

let test_configure_from_env () =
  let getenv env k = List.assoc_opt k env in
  Trace.set_slow_threshold infinity;
  Trace.configure_from_env ~getenv:(getenv [ ("COMPO_SLOW_MS", "250") ]) ();
  check_bool "COMPO_SLOW_MS sets the threshold in seconds" true
    (abs_float (Trace.slow_threshold () -. 0.25) < 1e-9);
  Trace.with_span "t.env.slow" (fun () -> Unix.sleepf 0.3);
  (match Trace.slow_ops () with
  | [ s ] -> check_string "env threshold feeds the slow log" "t.env.slow" s.Trace.sp_name
  | other -> Alcotest.failf "expected 1 slow op, got %d" (List.length other));
  (* unparsable / out-of-range values leave the setting untouched *)
  Trace.configure_from_env ~getenv:(getenv [ ("COMPO_SLOW_MS", "soon") ]) ();
  check_bool "garbage is ignored" true
    (abs_float (Trace.slow_threshold () -. 0.25) < 1e-9);
  Trace.configure_from_env ~getenv:(getenv [ ("COMPO_SLOW_MS", "-5") ]) ();
  check_bool "negative is ignored" true
    (abs_float (Trace.slow_threshold () -. 0.25) < 1e-9);
  Trace.set_slow_threshold infinity;
  (* capacity: resizes (and wraps at) the new ring size *)
  Trace.configure_from_env ~getenv:(getenv [ ("COMPO_TRACE_CAPACITY", "3") ]) ();
  for i = 1 to 8 do
    Trace.with_span (Printf.sprintf "t.env.ring.%d" i) (fun () -> ())
  done;
  Alcotest.(check (list string))
    "ring wraps at the env-configured capacity"
    [ "t.env.ring.8"; "t.env.ring.7"; "t.env.ring.6" ]
    (List.map (fun s -> s.Trace.sp_name) (Trace.recent ()));
  Trace.configure_from_env ~getenv:(getenv [ ("COMPO_TRACE_CAPACITY", "0") ]) ();
  Trace.with_span "t.env.after" (fun () -> ());
  check_int "capacity 0 is ignored (ring still size 3)" 3
    (List.length (Trace.recent ()));
  Trace.set_capacity 512

let exposition () =
  Obs.incr (Obs.counter "t.export.counter");
  Obs.set_gauge (Obs.gauge "t.export.gauge") 1.5;
  let h = Obs.histogram ~buckets:[| 0.001; 0.01 |] "t.export.histo" in
  List.iter (Obs.observe h) [ 0.0005; 0.005; 5.0 ]

let test_openmetrics () =
  exposition ();
  let om = Obs.to_openmetrics () in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "exposition contains %S" needle) true
        (contains om needle))
    [
      "# TYPE compo_t_export_counter counter";
      "compo_t_export_counter_total 1";
      "# TYPE compo_t_export_gauge gauge";
      "compo_t_export_gauge 1.5";
      "# TYPE compo_t_export_histo histogram";
      "compo_t_export_histo_bucket{le=\"0.001\"} 1";
      (* cumulative: the 0.01 bucket includes the 0.001 one *)
      "compo_t_export_histo_bucket{le=\"0.01\"} 2";
      "compo_t_export_histo_bucket{le=\"+Inf\"} 3";
      "compo_t_export_histo_count 3";
    ];
  check_bool "terminates with # EOF" true
    (let n = String.length om in
     n >= 6 && String.sub om (n - 6) 6 = "# EOF\n")

let test_json_export () =
  exposition ();
  (* min/max of an empty histogram are nan/inf: JSON must stay literal-free *)
  let (_ : Obs.histogram) = Obs.histogram "t.export.empty" in
  let js = Obs.to_json () in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "json contains %S" needle) true
        (contains js needle))
    [
      "\"t.export.counter\"";
      "\"kind\": \"counter\"";
      "\"value\": 1";
      "\"t.export.histo\"";
      "\"count\": 3";
      "\"le\":";
      "null";
    ];
  check_bool "no bare nan leaks into the document" false (contains js "nan");
  check_bool "no bare inf leaks into the document" false (contains js "inf")

let test_snapshot_to_file () =
  exposition ();
  let path = Filename.temp_file "compo_obs" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.snapshot_to_file path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  check_bool "snapshot file holds the json document" true
    (contains body "\"metrics\"" && contains body "t.export.counter")

let test_dump_formats () =
  Obs.incr (Obs.counter "t.dump.counter");
  Obs.observe (Obs.histogram "t.dump.histo") 0.002;
  let dump = Obs.dump () in
  check_bool "dump lists the counter" true (contains dump "t.dump.counter");
  check_bool "dump lists the histogram" true (contains dump "t.dump.histo");
  let lp = Obs.to_line_protocol () in
  check_bool "line protocol lists the counter" true
    (contains lp "metric=t.dump.counter")

(* ------------------------------------------------------------------ *)
(* Multi-domain safety.  These fail (lost updates, torn ring pushes)
   against the pre-atomics implementation when run under 4 domains:
   counters were plain [int ref]s, histogram buckets plain arrays
   mutated from every domain, and the trace ring advanced its cursor
   non-atomically. *)

let test_parallel_counter () =
  let c = Obs.counter "t.par.counter" in
  let doms = 4 and per = 50_000 in
  let hs =
    List.init doms (fun _ ->
        Stdlib.Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.incr c
            done))
  in
  List.iter Stdlib.Domain.join hs;
  check_int "no lost increments" (doms * per) (Obs.count c)

let test_parallel_histogram () =
  let h = Obs.histogram ~buckets:[| 1.; 2.; 4. |] "t.par.histo" in
  let doms = 4 and per = 20_000 in
  let hs =
    List.init doms (fun d ->
        Stdlib.Domain.spawn (fun () ->
            for i = 1 to per do
              Obs.observe h (float_of_int ((i + d) mod 5))
            done))
  in
  List.iter Stdlib.Domain.join hs;
  check_int "no lost observations" (doms * per) (Obs.observations h)

let test_parallel_spans () =
  Trace.set_capacity 256;
  let doms = 4 and per = 1_000 in
  let hs =
    List.init doms (fun _ ->
        Stdlib.Domain.spawn (fun () ->
            for _ = 1 to per do
              Trace.with_span "t.par.span" (fun () -> ())
            done))
  in
  List.iter Stdlib.Domain.join hs;
  check_int "every span recorded" (doms * per) (Trace.recorded ());
  check_int "ring clipped to capacity" 256 (List.length (Trace.recent ()));
  Trace.set_capacity 512

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

module Flightrec = Compo_obs.Flightrec
module Json = Compo_obs.Json_min

(* the recorder is process-global and always armed; each test starts
   from a clean default-capacity ring and restores it on the way out *)
let with_flightrec f () =
  Flightrec.set_capacity 4096;
  Fun.protect ~finally:(fun () -> Flightrec.set_capacity 4096) f

let test_flightrec_ring () =
  Flightrec.set_capacity 4;
  for i = 1 to 6 do
    Flightrec.record ~attrs:[ ("i", string_of_int i) ] "t.ev"
  done;
  check_int "recorded counts past the capacity" 6 (Flightrec.recorded ());
  let events = Flightrec.recent () in
  check_int "ring clipped to capacity" 4 (List.length events);
  Alcotest.(check (list string)) "oldest first, oldest two overwritten"
    [ "3"; "4"; "5"; "6" ]
    (List.map
       (fun (e : Flightrec.event) -> List.assoc "i" e.Flightrec.ev_attrs)
       events);
  Flightrec.clear ();
  check_int "clear drops the count" 0 (Flightrec.recorded ());
  check_int "clear drops the events" 0 (List.length (Flightrec.recent ()))

let test_flightrec_json_roundtrip () =
  Flightrec.clear ();
  Flightrec.record ~attrs:[ ("sid", "1"); ("user", "a\"b") ] "conn.open";
  Flightrec.record "txn.begin";
  Flightrec.record ~attrs:[ ("reason", "test") ] "flightrec.dump";
  let dump = Flightrec.to_json () in
  match Json.parse dump with
  | Error msg -> Alcotest.failf "dump does not parse: %s" msg
  | Ok j -> (
      match Flightrec.of_json j with
      | Error msg -> Alcotest.failf "dump does not round-trip: %s" msg
      | Ok events ->
          Alcotest.(check (list string)) "kinds survive, oldest first"
            [ "conn.open"; "txn.begin"; "flightrec.dump" ]
            (List.map (fun (e : Flightrec.event) -> e.Flightrec.ev_kind) events);
          let first = List.hd events in
          check_string "attrs survive escaping" "a\"b"
            (List.assoc "user" first.Flightrec.ev_attrs))

let test_flightrec_env () =
  (match Flightrec.parse_capacity "16" with
  | Ok 16 -> ()
  | _ -> Alcotest.fail "16 must parse");
  (List.iter (fun bad ->
       match Flightrec.parse_capacity bad with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "'%s' must be rejected" bad))
    [ "0"; "-3"; "banana"; "" ];
  (* strict: garbage is an Error for the entry points to die on *)
  (match
     Flightrec.configure_from_env
       ~getenv:(fun _ -> Some "banana")
       ()
   with
  | Error msg ->
      check_bool "error names the variable" true
        (String.length msg > String.length "COMPO_FLIGHTREC_CAPACITY"
        && String.sub msg 0 24 = "COMPO_FLIGHTREC_CAPACITY")
  | Ok () -> Alcotest.fail "garbage capacity must be an Error");
  (match Flightrec.configure_from_env ~getenv:(fun _ -> Some "8") () with
  | Ok () -> check_int "capacity applied" 8 (Flightrec.capacity ())
  | Error msg -> Alcotest.failf "valid capacity rejected: %s" msg);
  match Flightrec.configure_from_env ~getenv:(fun _ -> None) () with
  | Ok () -> check_int "unset leaves the ring alone" 8 (Flightrec.capacity ())
  | Error msg -> Alcotest.failf "unset must be Ok: %s" msg

let suite =
  ( "obs",
    [
      case "counter semantics" (with_obs test_counter);
      case "disabled registry is a no-op sink" (with_obs test_disabled_is_noop);
      case "metric kind clash is rejected" (with_obs test_kind_clash);
      case "gauge semantics" (with_obs test_gauge);
      case "histogram buckets and quantiles" (with_obs test_histogram);
      case "span nesting and attribution" (with_obs test_span_nesting);
      case "span survives exceptions" (with_obs test_span_exception);
      case "slow-op threshold" (with_obs test_slow_ops);
      case "ring buffer clips to capacity" (with_obs test_ring_capacity);
      case "snapshot is immutable, reset is in place" (with_obs test_snapshot_reset);
      case "private registries are isolated" (with_obs test_private_registry);
      case "dump and line protocol" (with_obs test_dump_formats);
      case "derived ratios survive a zero denominator" (with_obs test_ratio_string);
      case "env-var configuration of threshold and capacity"
        (with_obs test_configure_from_env);
      case "openmetrics exposition" (with_obs test_openmetrics);
      case "json export is literal-safe" (with_obs test_json_export);
      case "snapshot_to_file round-trips" (with_obs test_snapshot_to_file);
      case "counter keeps every increment under 4 domains"
        (with_obs test_parallel_counter);
      case "histogram keeps every observation under 4 domains"
        (with_obs test_parallel_histogram);
      case "trace ring survives 4 domains of spans"
        (with_obs test_parallel_spans);
      case "flight recorder ring wraps and clears"
        (with_flightrec test_flightrec_ring);
      case "flight recorder dump round-trips through json_min"
        (with_flightrec test_flightrec_json_roundtrip);
      case "flight recorder env validation is strict"
        (with_flightrec test_flightrec_env);
    ] )
