open Compo_core
open Compo_storage
open Helpers
module G = Compo_scenarios.Gates
module S = Compo_scenarios.Steel

let tmp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  dir

let test_crc32_known_vectors () =
  (* standard test vector: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Codec.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Codec.crc32 "")

let value_examples =
  [
    Value.Null;
    Value.Bool true;
    Value.Int (-42);
    Value.Int max_int;
    Value.Real 3.14159;
    Value.Str "hello\nworld";
    Value.Enum_case "NOR";
    Value.point 3 4;
    Value.List [ Value.Int 1; Value.Str "x" ];
    Value.set [ Value.Int 3; Value.Int 1 ];
    Value.Matrix [| [| Value.Bool true; Value.Bool false |] |];
    Value.Tuple [ Value.Int 1; Value.Real 2.0 ];
    Value.Ref (Surrogate.of_int 99);
    Value.Record [ ("a", Value.List [ Value.point 1 2 ]) ];
  ]

let test_value_roundtrip () =
  List.iter
    (fun v ->
      let b = Codec.Enc.create () in
      Codec.encode_value b v;
      let decoded = ok (Codec.decode_value (Codec.Dec.of_string (Codec.Enc.contents b))) in
      check_value "value round-trip" v decoded)
    value_examples

let test_decode_rejects_garbage () =
  expect_error
    (function Errors.Io_error _ -> true | _ -> false)
    (Codec.decode_value (Codec.Dec.of_string "\xff"));
  expect_error ~msg:"truncated" any_error
    (Codec.decode_value (Codec.Dec.of_string "\x02\x01"))

let prop_value_roundtrip =
  let rec gen_value depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [
          map (fun i -> Value.Int i) small_signed_int;
          map (fun s -> Value.Str s) (string_size (int_bound 12));
          map (fun b -> Value.Bool b) bool;
          return Value.Null;
        ]
    else
      frequency
        [
          (3, gen_value 0);
          (1, map (fun vs -> Value.List vs) (list_size (int_bound 4) (gen_value (depth - 1))));
          (1, map (fun vs -> Value.set vs) (list_size (int_bound 4) (gen_value (depth - 1))));
          ( 1,
            map
              (fun vs -> Value.record (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) vs))
              (list_size (int_bound 3) (gen_value (depth - 1))) );
        ]
  in
  QCheck.Test.make ~name:"codec value round-trip (random)" ~count:300
    (QCheck.make (gen_value 3) ~print:Value.to_string)
    (fun v ->
      let b = Codec.Enc.create () in
      Codec.encode_value b v;
      match Codec.decode_value (Codec.Dec.of_string (Codec.Enc.contents b)) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

let test_schema_roundtrip () =
  let db = full_db () in
  let schema = Database.schema db in
  let decoded = ok (Codec.decode_schema (Codec.encode_schema schema)) in
  (* compare through the DDL printer: identical text means identical schema *)
  check_string "schema round-trip"
    (Compo_ddl.Pretty.schema_to_string schema)
    (Compo_ddl.Pretty.schema_to_string decoded)

let test_store_roundtrip () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.nor_implementation db ~interface:iface) in
  let schema = Database.schema db in
  let blob = Codec.encode_store (Database.store db) in
  let store2 = ok (Codec.decode_store schema blob) in
  let db2 = Database.of_parts schema store2 in
  (* structural checks on the decoded store *)
  check_int "entity count preserved"
    (Store.entity_count (Database.store db))
    (Store.entity_count store2);
  check_int "pins reachable" 4 (List.length (ok (Database.subclass_members db2 ff "Pins")));
  check_value "inheritance preserved" (Value.Int 4) (ok (Database.get_attr db2 impl "Length"));
  check_bool "classes preserved" true
    (List.exists (Surrogate.equal ff) (ok (Database.select db2 ~cls:"Gates" ())));
  (* fresh surrogates do not collide after decode *)
  let fresh = ok (Database.new_object db2 ~ty:"GateInterface_I" ()) in
  check_bool "generator advanced" false (Store.mem (Database.store db) fresh && false);
  check_bool "fresh surrogate unique" false
    (Surrogate.equal fresh ff || Surrogate.equal fresh impl)

let test_snapshot_save_load () =
  let db = steel_db () in
  let _ = ok (Compo_scenarios.Workload.screwed_structure db ~girders:3 ~bores_per_joint:2) in
  let path = Filename.temp_file "compo" ".snapshot" in
  ok (Snapshot.save path db);
  let db2 = ok (Snapshot.load path) in
  check_int "entities preserved"
    (Store.entity_count (Database.store db))
    (Store.entity_count (Database.store db2));
  check_no_violations "constraints still hold after reload" (Database.validate_all db2);
  (* corruption is detected *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let corrupted = Bytes.of_string contents in
  let pos = Bytes.length corrupted / 2 in
  Bytes.set corrupted pos
    (if Bytes.get corrupted pos = '\xff' then '\x00' else '\xff');
  Out_channel.with_open_bin path (fun c -> Out_channel.output_bytes c corrupted);
  expect_error
    (function Errors.Io_error _ -> true | _ -> false)
    (Snapshot.load path);
  Sys.remove path

let test_wal_record_roundtrip () =
  let records =
    [
      Wal.Create_class { name = "Gates"; member_type = "Gate" };
      Wal.Create_object
        { cls = Some "Gates"; ty = "Gate"; attrs = [ ("Length", Value.Int 4) ];
          expect = Surrogate.of_int 7 };
      Wal.Set_attr { target = Surrogate.of_int 7; name = "Length"; value = Value.Int 9 };
      Wal.Bind
        { via = "AllOf_GateInterface"; transmitter = Surrogate.of_int 1;
          inheritor = Surrogate.of_int 2; expect = Surrogate.of_int 3 };
      Wal.Unbind { inheritor = Surrogate.of_int 2 };
      Wal.Delete { target = Surrogate.of_int 7; force = true };
    ]
  in
  List.iter
    (fun r ->
      let decoded = ok (Wal.decode_record (Wal.encode_record r)) in
      check_bool "wal record round-trip" true (decoded = r))
    records

let test_journal_recovery () =
  let module Obs = Compo_obs.Metrics in
  let dir = tmp_dir "compo-journal" in
  (* session 1: define schema, create objects.  Metrics stay on for the
     session so the wal.append counter can be cross-checked against the
     number of records the recovery below replays. *)
  Obs.reset ();
  Obs.enable ();
  let j = ok (Journal.open_dir dir) in
  ok
    (Journal.define_obj_type j
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Journal.create_class j ~name:"Parts" ~member_type:"Part");
  let p1 = ok (Journal.new_object j ~cls:"Parts" ~ty:"Part" ~attrs:[ ("Weight", Value.Int 5) ] ()) in
  ok (Journal.set_attr j p1 "Weight" (Value.Int 6));
  Journal.close j;
  Obs.disable ();
  check_int "wal.append counts every logged record" 4
    (Obs.counter_value "wal.append");
  (* session 2: recover, verify, continue *)
  let j2 = ok (Journal.open_dir dir) in
  check_bool "clean recovery" true (Journal.recovered_clean j2);
  check_int "records replayed" 4 (Journal.wal_records_replayed j2);
  check_value "state recovered" (Value.Int 6) (ok (Database.get_attr (Journal.db j2) p1 "Weight"));
  let p2 = ok (Journal.new_object j2 ~cls:"Parts" ~ty:"Part" ~attrs:[ ("Weight", Value.Int 1) ] ()) in
  check_bool "no surrogate collision" false (Surrogate.equal p1 p2);
  Journal.close j2;
  (* session 3: everything still there *)
  let j3 = ok (Journal.open_dir dir) in
  check_int "both parts in class" 2
    (List.length (ok (Database.select (Journal.db j3) ~cls:"Parts" ())));
  Journal.close j3

let test_journal_checkpoint () =
  let dir = tmp_dir "compo-ckpt" in
  let j = ok (Journal.open_dir dir) in
  ok
    (Journal.define_obj_type j
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  let p = ok (Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 5) ] ()) in
  check_bool "wal non-empty before checkpoint" true (Journal.wal_size_bytes j > 0);
  ok (Journal.checkpoint j);
  check_int "wal truncated" 0 (Journal.wal_size_bytes j);
  ok (Journal.set_attr j p "Weight" (Value.Int 9));
  Journal.close j;
  let j2 = ok (Journal.open_dir dir) in
  check_int "only post-checkpoint records replayed" 1 (Journal.wal_records_replayed j2);
  check_value "snapshot + wal combined" (Value.Int 9)
    (ok (Database.get_attr (Journal.db j2) p "Weight"));
  Journal.close j2

let test_torn_tail_tolerated () =
  let dir = tmp_dir "compo-torn" in
  let j = ok (Journal.open_dir dir) in
  ok
    (Journal.define_obj_type j
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  let p = ok (Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 5) ] ()) in
  ok (Journal.set_attr j p "Weight" (Value.Int 6));
  Journal.close j;
  (* simulate a crash mid-append: truncate the last few bytes *)
  let wal = Filename.concat dir "wal.log" in
  let contents = In_channel.with_open_bin wal In_channel.input_all in
  Out_channel.with_open_bin wal (fun c ->
      Out_channel.output_string c
        (String.sub contents 0 (String.length contents - 5)));
  let j2 = ok (Journal.open_dir dir) in
  check_bool "torn tail reported" false (Journal.recovered_clean j2);
  check_int "clean prefix replayed" 2 (Journal.wal_records_replayed j2);
  check_value "last record lost, prior state intact" (Value.Int 5)
    (ok (Database.get_attr (Journal.db j2) p "Weight"));
  Journal.close j2

(* A journal with the Part schema and one object, closed; returns (dir, p). *)
let part_journal prefix =
  let dir = tmp_dir prefix in
  let j = ok (Journal.open_dir dir) in
  ok
    (Journal.define_obj_type j
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  let p = ok (Journal.new_object j ~ty:"Part" ~attrs:[ ("Weight", Value.Int 5) ] ()) in
  Journal.close j;
  (dir, p)

let test_corrupt_first_frame_total () =
  (* a corrupt FIRST frame must read as zero records, never an exception:
     flip one bit in the first frame's length field *)
  let dir, _p = part_journal "compo-flip" in
  let wal = Filename.concat dir "wal.log" in
  let contents = Bytes.of_string (In_channel.with_open_bin wal In_channel.input_all) in
  (* byte 16 is the first byte of the first frame's length (LE) *)
  Bytes.set contents 16 (Char.chr (Char.code (Bytes.get contents 16) lxor 0x40));
  Out_channel.with_open_bin wal (fun c -> Out_channel.output_bytes c contents);
  let replay = Wal.read_file wal in
  check_bool "epoch still readable" true (replay.Wal.rp_epoch <> None);
  check_int "no records salvaged" 0 (List.length replay.Wal.rp_records);
  check_bool "reported unclean" false replay.Wal.rp_clean;
  (* recovery tolerates it too: empty database, unclean flag *)
  let j = ok (Journal.open_dir dir) in
  check_bool "unclean recovery" false (Journal.recovered_clean j);
  check_int "nothing replayed" 0 (Journal.wal_records_replayed j);
  Journal.close j

let test_overflowing_frame_length_total () =
  (* regression: a crafted length of max_int made [pos + 16 + len] wrap
     negative, slipping past the bound check into String.sub *)
  let dir, _p = part_journal "compo-overflow" in
  let wal = Filename.concat dir "wal.log" in
  let contents = Bytes.of_string (In_channel.with_open_bin wal In_channel.input_all) in
  Bytes.set_int64_le contents 16 (Int64.of_int max_int);
  Out_channel.with_open_bin wal (fun c -> Out_channel.output_bytes c contents);
  let replay = Wal.read_file wal in
  check_bool "reported unclean, not an exception" false replay.Wal.rp_clean;
  check_int "no records salvaged" 0 (List.length replay.Wal.rp_records)

let test_corrupt_wal_header_total () =
  let dir, _p = part_journal "compo-header" in
  let wal = Filename.concat dir "wal.log" in
  let contents = Bytes.of_string (In_channel.with_open_bin wal In_channel.input_all) in
  Bytes.set contents 3 'x' (* break the magic *);
  Out_channel.with_open_bin wal (fun c -> Out_channel.output_bytes c contents);
  let replay = Wal.read_file wal in
  check_bool "no epoch" true (replay.Wal.rp_epoch = None);
  check_bool "unclean" false replay.Wal.rp_clean;
  (* recovery restarts the log from the snapshot's epoch *)
  let j = ok (Journal.open_dir dir) in
  check_bool "unclean recovery" false (Journal.recovered_clean j);
  check_int "empty database" 0 (Store.entity_count (Database.store (Journal.db j)));
  Journal.close j;
  let j2 = ok (Journal.open_dir dir) in
  check_bool "log restarted cleanly" true (Journal.recovered_clean j2);
  Journal.close j2

let test_append_after_torn_tail () =
  (* regression caught by the torture harness: appending to an unclean log
     without cutting the corrupt tail strands the new records behind it *)
  let dir, p = part_journal "compo-tornappend" in
  (* one more record, so the tear below loses it rather than p's create *)
  let j0 = ok (Journal.open_dir dir) in
  ok (Journal.set_attr j0 p "Weight" (Value.Int 6));
  Journal.close j0;
  let wal = Filename.concat dir "wal.log" in
  let contents = In_channel.with_open_bin wal In_channel.input_all in
  Out_channel.with_open_bin wal (fun c ->
      Out_channel.output_string c
        (String.sub contents 0 (String.length contents - 3)));
  let j = ok (Journal.open_dir dir) in
  check_bool "torn tail reported" false (Journal.recovered_clean j);
  ok (Journal.set_attr j p "Weight" (Value.Int 8));
  Journal.close j;
  let j2 = ok (Journal.open_dir dir) in
  check_bool "clean after truncating the tail" true (Journal.recovered_clean j2);
  check_value "post-recovery append survives"
    (Value.Int 8)
    (ok (Database.get_attr (Journal.db j2) p "Weight"));
  Journal.close j2

let test_checkpoint_crash_windows () =
  let module Failpoint = Compo_faults.Failpoint in
  (* crash before the snapshot rename: old snapshot + full log win *)
  let dir, p = part_journal "compo-ckptcrash" in
  let j = ok (Journal.open_dir dir) in
  ok (Journal.set_attr j p "Weight" (Value.Int 7));
  Failpoint.arm "snapshot.save.before_rename" Failpoint.Crash;
  (match Journal.checkpoint j with
  | exception Failpoint.Crashed _ -> ()
  | Ok () -> Alcotest.fail "checkpoint should have crashed"
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e));
  Journal.crash j;
  let j2 = ok (Journal.open_dir dir) in
  check_bool "old pairing recovers clean" true (Journal.recovered_clean j2);
  check_bool "no stale discard" false (Journal.recovered_from_stale_wal j2);
  check_value "state intact" (Value.Int 7)
    (ok (Database.get_attr (Journal.db j2) p "Weight"));
  (* crash after the rename but before the truncation: the new snapshot
     wins and the old-epoch log is discarded as stale, not re-applied *)
  ok (Journal.set_attr j2 p "Weight" (Value.Int 9));
  Failpoint.arm "journal.checkpoint.before_truncate" Failpoint.Crash;
  (match Journal.checkpoint j2 with
  | exception Failpoint.Crashed _ -> ()
  | _ -> Alcotest.fail "checkpoint should have crashed");
  Journal.crash j2;
  let j3 = ok (Journal.open_dir dir) in
  check_bool "stale log discarded" true (Journal.recovered_from_stale_wal j3);
  check_bool "discard counts as clean" true (Journal.recovered_clean j3);
  check_value "checkpointed state intact" (Value.Int 9)
    (ok (Database.get_attr (Journal.db j3) p "Weight"));
  (* epoch 1: the first, crashed checkpoint never committed a snapshot *)
  check_int "epoch advanced" 1 (Journal.wal_epoch j3);
  Journal.close j3

let test_double_open_rejected () =
  let dir, _p = part_journal "compo-doubleopen" in
  let j = ok (Journal.open_dir dir) in
  expect_error ~msg:"second open_dir must fail"
    (function Errors.Io_error _ -> true | _ -> false)
    (Journal.open_dir dir);
  Journal.close j;
  (* the lock dies with the handle *)
  let j2 = ok (Journal.open_dir dir) in
  Journal.close j2

let test_fsck_clean_and_diff () =
  let dir, p = part_journal "compo-fsck" in
  let report = ok (Fsck.check_dir dir) in
  check_int "no violations" 0 (List.length report.Fsck.fr_violations);
  check_int "entities counted" 1 report.Fsck.fr_entities;
  (* diff: a matching rebuild is empty, a divergent one is not *)
  let oracle () =
    let db = Database.create () in
    ok
      (Database.define_obj_type db
         {
           Schema.ot_name = "Part";
           ot_inheritor_in = None;
           ot_attrs = [ { Schema.attr_name = "Weight"; attr_domain = Domain.Integer } ];
           ot_subclasses = [];
           ot_subrels = [];
           ot_constraints = [];
         });
    let p' = ok (Database.new_object db ~ty:"Part" ~attrs:[ ("Weight", Value.Int 5) ] ()) in
    check_bool "deterministic surrogate" true (Surrogate.equal p p');
    db
  in
  let j = ok (Journal.open_dir dir) in
  check_int "recovered matches oracle" 0
    (List.length (Fsck.diff ~oracle:(oracle ()) (Journal.db j)));
  let divergent = oracle () in
  ok (Database.set_attr divergent p "Weight" (Value.Int 6));
  check_bool "divergence detected" true
    (Fsck.diff ~oracle:divergent (Journal.db j) <> []);
  Journal.close j

let test_journal_full_scenario () =
  (* the whole steel scenario through the journal: build, reopen, verify *)
  let dir = tmp_dir "compo-steel" in
  let j = ok (Journal.open_dir dir) in
  ok (Compo_ddl.Elaborate.load_string (Journal.db j) Compo_scenarios.Paper_ddl.gates);
  (* schema loaded directly is not journaled; checkpoint captures it *)
  ok (Journal.checkpoint j);
  let iface_i = ok (Journal.new_object j ~ty:"GateInterface_I" ()) in
  let _ =
    ok
      (Journal.new_subobject j ~parent:iface_i ~subclass:"Pins"
         ~attrs:[ ("InOut", Value.Enum_case "IN"); ("PinLocation", Value.point 0 0) ]
         ())
  in
  let iface =
    ok
      (Journal.new_object j ~ty:"GateInterface"
         ~attrs:[ ("Length", Value.Int 4); ("Width", Value.Int 2) ]
         ())
  in
  let _ = ok (Journal.bind j ~via:"AllOf_GateInterface_I" ~transmitter:iface_i ~inheritor:iface ()) in
  let impl = ok (Journal.new_object j ~ty:"GateImplementation" ()) in
  let _ = ok (Journal.bind j ~via:"AllOf_GateInterface" ~transmitter:iface ~inheritor:impl ()) in
  Journal.close j;
  let j2 = ok (Journal.open_dir dir) in
  check_value "recovered inheritance" (Value.Int 4)
    (ok (Database.get_attr (Journal.db j2) impl "Length"));
  check_int "recovered pins" 1
    (List.length (ok (Database.subclass_members (Journal.db j2) impl "Pins")));
  Journal.close j2

let suite =
  ( "storage",
    [
      case "crc32 known vectors" test_crc32_known_vectors;
      case "value codec round-trip" test_value_roundtrip;
      case "decoder rejects garbage" test_decode_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_value_roundtrip;
      case "schema codec round-trip" test_schema_roundtrip;
      case "store codec round-trip" test_store_roundtrip;
      case "snapshot save/load + corruption detection" test_snapshot_save_load;
      case "wal record round-trip" test_wal_record_roundtrip;
      case "journal recovery across sessions" test_journal_recovery;
      case "checkpoint truncates the wal" test_journal_checkpoint;
      case "torn wal tail tolerated" test_torn_tail_tolerated;
      case "corrupt first frame reads as zero records" test_corrupt_first_frame_total;
      case "overflowing frame length reads as unclean" test_overflowing_frame_length_total;
      case "corrupt wal header reads as unclean" test_corrupt_wal_header_total;
      case "append after torn tail survives reopen" test_append_after_torn_tail;
      case "checkpoint crash windows recover" test_checkpoint_crash_windows;
      case "double open_dir rejected" test_double_open_rejected;
      case "fsck report and oracle diff" test_fsck_clean_and_diff;
      case "full scenario through the journal" test_journal_full_scenario;
    ] )
