(* Property tests for the generic binary primitives (lib/core/binary):
   token sequences survive encode-then-decode bit-exactly, every strict
   prefix of an encoding is rejected (the wire protocol depends on
   truncation never slipping through as a value), and crc32 matches the
   IEEE check vector. *)

open Compo_core

(* a token per primitive, so a random token list exercises arbitrary
   interleavings of the codec's entry points *)
type tok =
  | B of int
  | I of int
  | Bo of bool
  | F of float
  | S of string
  | L of int list
  | O of string option

let tok_to_string = function
  | B b -> Printf.sprintf "B %d" b
  | I i -> Printf.sprintf "I %d" i
  | Bo b -> Printf.sprintf "Bo %b" b
  | F f -> Printf.sprintf "F %h" f
  | S s -> Printf.sprintf "S %S" s
  | L xs -> "L [" ^ String.concat ";" (List.map string_of_int xs) ^ "]"
  | O None -> "O None"
  | O (Some s) -> Printf.sprintf "O (Some %S)" s

(* floats compare by bit pattern: the codec must round-trip the exact
   representation, and this also keeps a generated nan comparable *)
let tok_equal a b =
  match (a, b) with
  | F x, F y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

let gen_tok =
  let open QCheck.Gen in
  oneof
    [
      map (fun b -> B b) (int_bound 255);
      map (fun i -> I i) int;
      map (fun b -> Bo b) bool;
      map (fun f -> F f) float;
      map (fun s -> S s) (string_size (int_bound 40));
      map (fun xs -> L xs) (list_size (int_bound 8) int);
      map (fun o -> O o) (option (string_size (int_bound 10)));
    ]

let arb_toks =
  QCheck.make
    ~print:(fun toks -> String.concat "; " (List.map tok_to_string toks))
    QCheck.Gen.(list_size (int_range 1 20) gen_tok)

let encode_toks toks =
  let e = Binary.Enc.create () in
  List.iter
    (function
      | B b -> Binary.Enc.byte e b
      | I i -> Binary.Enc.int e i
      | Bo b -> Binary.Enc.bool e b
      | F f -> Binary.Enc.float e f
      | S s -> Binary.Enc.string e s
      | L xs -> Binary.Enc.list e (Binary.Enc.int e) xs
      | O o -> Binary.Enc.option e (Binary.Enc.string e) o)
    toks;
  Binary.Enc.contents e

let ( let* ) = Result.bind

(* decode [blob] following the shape of [toks] *)
let decode_toks toks blob =
  let d = Binary.Dec.of_string blob in
  let rec go acc = function
    | [] -> Ok (List.rev acc, d)
    | shape :: rest ->
        let* tok =
          match shape with
          | B _ -> Result.map (fun v -> B v) (Binary.Dec.byte d)
          | I _ -> Result.map (fun v -> I v) (Binary.Dec.int d)
          | Bo _ -> Result.map (fun v -> Bo v) (Binary.Dec.bool d)
          | F _ -> Result.map (fun v -> F v) (Binary.Dec.float d)
          | S _ -> Result.map (fun v -> S v) (Binary.Dec.string d)
          | L _ ->
              Result.map
                (fun v -> L v)
                (Binary.Dec.list d (fun () -> Binary.Dec.int d))
          | O _ ->
              Result.map
                (fun v -> O v)
                (Binary.Dec.option d (fun () -> Binary.Dec.string d))
        in
        go (tok :: acc) rest
  in
  go [] toks

let prop_roundtrip =
  QCheck.Test.make ~name:"encode-decode round-trips token lists" ~count:500
    arb_toks (fun toks ->
      match decode_toks toks (encode_toks toks) with
      | Error _ -> false
      | Ok (decoded, d) ->
          Binary.Dec.at_end d
          && List.length decoded = List.length toks
          && List.for_all2 tok_equal decoded toks)

let prop_truncation_rejected =
  QCheck.Test.make
    ~name:"every strict prefix of an encoding fails to decode" ~count:200
    arb_toks (fun toks ->
      let blob = encode_toks toks in
      let ok = ref true in
      for cut = 0 to String.length blob - 1 do
        match decode_toks toks (String.sub blob 0 cut) with
        | Error _ -> ()
        | Ok (_, d) ->
            (* decoding a prefix may only "succeed" if it consumed
               everything it was given and the remainder was dropped
               tokens — but the shape demands all tokens, so a full
               success on a strict prefix is a codec hole *)
            ignore d;
            ok := false
      done;
      !ok)

let test_empty_input () =
  let d = Binary.Dec.of_string "" in
  Alcotest.(check bool) "fresh empty cursor is at end" true (Binary.Dec.at_end d);
  (match Binary.Dec.byte d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "byte from empty input must fail");
  match Binary.Dec.int d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "int from empty input must fail"

let test_crc32_vector () =
  (* the IEEE CRC-32 check value: crc32("123456789") *)
  Alcotest.(check int32)
    "crc32 check vector" 0xCBF43926l
    (Binary.crc32 "123456789");
  Alcotest.(check int32) "crc32 of empty string" 0l (Binary.crc32 "")

let suite =
  ( "binary",
    [
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_truncation_rejected;
      Alcotest.test_case "empty input" `Quick test_empty_input;
      Alcotest.test_case "crc32 vectors" `Quick test_crc32_vector;
    ] )
