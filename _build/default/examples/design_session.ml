(* Concurrent design sessions: lock inheritance, deadlock detection, and
   access-controlled expansion locking (paper section 6).

   Run with: dune exec examples/design_session.exe *)

open Compo_core
open Compo_txn
module G = Compo_scenarios.Gates
module T = Transaction

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== design session: transactions on composite objects ==";
  let db = Database.create () in
  ok (G.define_schema db);
  let store = Database.store db in
  let ac = Access_control.create () in
  let mg = T.create_manager ~access:ac store in

  (* a standard cell (protected) used by alice's composite *)
  let std_iface = ok (G.nor_interface db) in
  let _std_impl = ok (G.nor_implementation db ~interface:std_iface) in
  Access_control.protect ac std_iface;
  let work_iface = ok (G.nor_interface db) in
  let latch = ok (G.new_implementation db ~interface:work_iface ()) in
  let use = ok (G.use_component db ~composite:latch ~component_interface:std_iface ~x:1 ~y:1) in

  (* alice reads inherited data: the component is read-locked for her *)
  let alice = T.begin_txn mg ~user:"alice" in
  say "alice reads the component's Length through the composite: %s"
    (Value.to_string (ok (T.get_attr mg alice use "Length")));
  say "lock inheritance gave alice %d locks:"
    (List.length (Lock_manager.locks_of (T.lock_manager mg) ~txn:(T.id alice)));
  List.iter
    (fun (s, m) -> say "  %s %s" (Surrogate.to_string s) (Lock.to_string m))
    (Lock_manager.locks_of (T.lock_manager mg) ~txn:(T.id alice));

  (* bob tries to edit the protected standard cell: access control says no *)
  let bob = T.begin_txn mg ~user:"bob" in
  (match T.set_attr mg bob std_iface "Length" (Value.Int 9) with
  | Error e -> say "bob cannot touch the standard cell: %s" (Errors.to_string e)
  | Ok () -> failwith "BUG: write to protected cell granted");

  (* potential-conflict analysis over explicit relationships: alice edits
     the latch while bob edits the latch's interface -- related objects *)
  ok (T.set_attr mg alice latch "TimeBehavior" (Value.Int 2));
  ok (T.set_attr mg bob work_iface "Width" (Value.Int 8));
  let conflicts =
    Conflict.potential_conflicts store (T.lock_manager mg) ~txn1:(T.id alice)
      ~txn2:(T.id bob)
  in
  say "potential conflicts between alice and bob: %d" (List.length conflicts);
  List.iter
    (fun (a, b) ->
      say "  alice's %s is related to bob's %s" (Surrogate.to_string a)
        (Surrogate.to_string b))
    conflicts;
  ok (T.commit mg alice);
  ok (T.commit mg bob);

  (* expansion locking under access control: X degrades to S on the
     protected standard cell (the paper's customized-standard-cell story) *)
  let carol = T.begin_txn mg ~user:"carol" in
  let granted = ok (T.lock_expansion mg carol latch ~mode:Lock.X) in
  say "carol locks the expansion of the latch for update (%d objects):"
    (List.length granted);
  List.iter
    (fun (s, m) ->
      if Surrogate.equal s std_iface then
        say "  %s %s   <- protected standard cell, capped to read mode"
          (Surrogate.to_string s) (Lock.to_string m))
    granted;
  ok (T.commit mg carol);

  (* a deadlock between two sessions is detected, the victim aborts *)
  let a = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  let b = ok (G.new_simple_gate db ~func:"OR" ~length:4 ~width:2) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let t2 = T.begin_txn mg ~user:"bob" in
  ok (T.set_attr mg t1 a "Length" (Value.Int 5));
  ok (T.set_attr mg t2 b "Length" (Value.Int 5));
  (match T.set_attr mg t1 b "Width" (Value.Int 7) with
  | Error _ -> say "t1 waits for t2 ..."
  | Ok () -> ());
  (match T.set_attr mg t2 a "Width" (Value.Int 7) with
  | Error e -> say "deadlock detected: %s" (Errors.to_string e)
  | Ok () -> failwith "BUG: deadlock not detected");
  ok (T.abort mg t2);
  ok (T.set_attr mg t1 b "Width" (Value.Int 7));
  ok (T.commit mg t1);
  say "victim aborted; survivor finished. abort restored b? Width=%s"
    (Value.to_string (ok (Database.get_attr db b "Width")));

  (* the long-transaction workflow: checkout, edit privately, check in *)
  let ws = Compo_workspace.Workspace.create_manager mg in
  let w = ok (Compo_workspace.Workspace.checkout ws ~user:"alice" latch) in
  say "alice checks out the latch (%d objects locked)"
    (List.length (Compo_workspace.Workspace.locked w));
  let priv = Compo_workspace.Workspace.private_root w in
  ok (Database.set_attr db priv "TimeBehavior" (Value.Int 3));
  say "she edits the private copy; pending changes: %d"
    (List.length (ok (Compo_workspace.Workspace.diff ws w)));
  let applied = ok (Compo_workspace.Workspace.checkin ws w) in
  say "check-in applied %d change(s); public latch TimeBehavior=%s"
    (List.length applied)
    (Value.to_string (ok (Database.get_attr db latch "TimeBehavior")));
  say "design session example done."
