(* Quickstart: define a schema in the paper's notation, create objects,
   and watch value inheritance do its job.

   Run with: dune exec examples/quickstart.exe *)

open Compo_core

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let schema_text =
  {|
  /* A tiny design database: chips and the boards that use them. */
  obj-type ChipInterface =
    attributes:
      PinCount: integer;
      Vcc: real;
  end ChipInterface;

  inher-rel-type AllOf_ChipInterface =
    transmitter: object-of-type ChipInterface;
    inheritor: object;
    inheriting: PinCount, Vcc;
  end AllOf_ChipInterface;

  obj-type Chip =
    inheritor-in: AllOf_ChipInterface;
    attributes:
      DieArea: integer;
  end Chip;

  obj-type Board =
    attributes:
      Name: string;
    types-of-subclasses:
      Chips:
        inheritor-in: AllOf_ChipInterface;
        attributes:
          SlotX, SlotY: integer;
  end Board;
|}

let () =
  say "== compo quickstart ==";
  let db = Database.create () in
  ok (Compo_ddl.Elaborate.load_string db schema_text);
  say "schema loaded: %d types" (List.length (Schema.entries (Database.schema db)));

  (* A chip interface: the data every user of the chip sees. *)
  let iface =
    ok
      (Database.new_object db ~ty:"ChipInterface"
         ~attrs:[ ("PinCount", Value.Int 14); ("Vcc", Value.Real 5.0) ]
         ())
  in

  (* An implementation inherits the interface data and adds its own. *)
  let chip = ok (Database.new_object db ~ty:"Chip" ~attrs:[ ("DieArea", Value.Int 9) ] ()) in
  let _ = ok (Database.bind db ~via:"AllOf_ChipInterface" ~transmitter:iface ~inheritor:chip ()) in
  say "chip PinCount (inherited) = %s"
    (Value.to_string (ok (Database.get_attr db chip "PinCount")));

  (* A board uses the chip as a component: a subobject bound to the
     interface, adding placement data. *)
  let board = ok (Database.new_object db ~ty:"Board" ~attrs:[ ("Name", Value.Str "demo") ] ()) in
  let slot =
    ok
      (Database.new_subobject db ~parent:board ~subclass:"Chips"
         ~attrs:[ ("SlotX", Value.Int 3); ("SlotY", Value.Int 1) ]
         ())
  in
  let _ = ok (Database.bind db ~via:"AllOf_ChipInterface" ~transmitter:iface ~inheritor:slot ()) in
  say "board slot sees PinCount = %s at (%s, %s)"
    (Value.to_string (ok (Database.get_attr db slot "PinCount")))
    (Value.to_string (ok (Database.get_attr db slot "SlotX")))
    (Value.to_string (ok (Database.get_attr db slot "SlotY")));

  (* Updates of the interface are instantly visible everywhere... *)
  ok (Database.set_attr db iface "PinCount" (Value.Int 16));
  say "after interface update: chip=%s, board slot=%s"
    (Value.to_string (ok (Database.get_attr db chip "PinCount")))
    (Value.to_string (ok (Database.get_attr db slot "PinCount")));

  (* ...and the dependent inheritance links are stamped for adaptation. *)
  let links = ok (Database.links_of db iface) in
  List.iter
    (fun link ->
      say "link %s stale=%b note=%S"
        (Surrogate.to_string link)
        (ok (Database.is_stale db link))
        (ok (Database.stale_note db link)))
    links;

  (* Inherited data is read-only on the inheritor side. *)
  (match Database.set_attr db chip "PinCount" (Value.Int 99) with
  | Error e -> say "writing inherited data is rejected: %s" (Errors.to_string e)
  | Ok () -> failwith "BUG: inherited write accepted");

  say "where is the interface used? %s"
    (String.concat ", "
       (List.map Surrogate.to_string (ok (Database.where_used db iface))));
  say "quickstart done."
