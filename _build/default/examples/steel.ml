(* The paper's steel-construction example (section 5, Figure 5).

   Run with: dune exec examples/steel.exe *)

open Compo_core
module S = Compo_scenarios.Steel

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== steel: weight-carrying structures ==";
  let db = Database.create () in
  ok (S.define_schema db);

  (* catalog: one girder design, one plate design *)
  let girder_if =
    ok
      (S.new_girder_interface db ~length:400 ~height:20 ~width:20
         ~bores:[ (12, 5, (20, 0)); (12, 5, (380, 0)) ])
  in
  let plate_if =
    ok
      (S.new_plate_interface db ~thickness:5 ~area:(60, 60)
         ~bores:[ (12, 5, (10, 10)); (12, 5, (50, 50)) ])
  in
  say "girder interface %s (L=400), plate interface %s (t=5)"
    (Surrogate.to_string girder_if) (Surrogate.to_string plate_if);

  (* two realizations of the girder differing only in local data *)
  let wood = ok (S.new_girder db ~interface:girder_if ~material:"wood") in
  let metal = ok (S.new_girder db ~interface:girder_if ~material:"metal") in
  say "girder realizations: %s (wood), %s (metal), both inherit L=%s"
    (Surrogate.to_string wood) (Surrogate.to_string metal)
    (Value.to_string (ok (Database.get_attr db wood "Length")));

  (* a structure assembling one girder and one plate *)
  let frame = ok (S.new_structure db ~designer:"Pegels" ~description:"portal frame") in
  let g_comp = ok (S.add_girder db ~structure:frame ~girder_interface:girder_if) in
  let p_comp = ok (S.add_plate db ~structure:frame ~plate_interface:plate_if) in
  say "structure %s: girder bores %d, plate bores %d (all inherited)"
    (Surrogate.to_string frame)
    (List.length (ok (S.bores_of db g_comp)))
    (List.length (ok (S.bores_of db p_comp)));

  (* screw them together: bolt length must be nut + sum of bore lengths *)
  let g_bore = List.hd (ok (S.bores_of db g_comp)) in
  let p_bore = List.hd (ok (S.bores_of db p_comp)) in
  let bolt = ok (S.new_bolt db ~length:12 ~diameter:12) in
  let nut = ok (S.new_nut db ~length:2 ~diameter:12) in
  let screwing =
    ok (S.screw db ~structure:frame ~bores:[ g_bore; p_bore ] ~bolt ~nut ~strength:80)
  in
  say "screwing %s created (bolt and nut hidden inside the relationship)"
    (Surrogate.to_string screwing);
  (match Database.validate db screwing with
  | Ok [] -> say "screwing constraints hold: 12 = 2 + (5 + 5)"
  | Ok (v :: _) -> say "unexpected violation: %s" (Format.asprintf "%a" Constraints.pp_violation v)
  | Error e -> say "error: %s" (Errors.to_string e));

  (* a wrong bolt is caught by the section 5 constraints *)
  let short_bolt = ok (S.new_bolt db ~length:5 ~diameter:12) in
  let short_nut = ok (S.new_nut db ~length:2 ~diameter:12) in
  let g_bore2 = List.nth (ok (S.bores_of db g_comp)) 1 in
  let p_bore2 = List.nth (ok (S.bores_of db p_comp)) 1 in
  let bad =
    ok
      (S.screw db ~structure:frame ~bores:[ g_bore2; p_bore2 ] ~bolt:short_bolt
         ~nut:short_nut ~strength:80)
  in
  List.iter
    (fun v -> say "violation detected: %s" (Format.asprintf "%a" Constraints.pp_violation v))
    (ok (Database.validate db bad));

  (* bores outside the structure are rejected by the where-clause *)
  let lonely_if =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[ (12, 5, (0, 0)) ])
  in
  let foreign_bore = List.hd (ok (S.bores_of db lonely_if)) in
  (match
     S.screw db ~structure:frame ~bores:[ foreign_bore ] ~bolt ~nut ~strength:10
   with
  | Error e -> say "foreign bore rejected: %s" (Errors.to_string e)
  | Ok _ -> failwith "BUG: foreign bore accepted");

  (* the catalog update story: a redesigned girder profile *)
  ok (Database.set_attr db girder_if "Height" (Value.Int 25));
  say "girder redesigned: structure sees Height=%s; %d links stamped stale"
    (Value.to_string (ok (Database.get_attr db g_comp "Height")))
    (List.length
       (List.filter
          (fun l -> ok (Database.is_stale db l))
          (ok (Database.links_of db girder_if))));

  say "bill of materials of the frame:";
  List.iter
    (fun (c, n) ->
      say "  %s (%s) x%d" (Surrogate.to_string c)
        (ok (Database.type_of db c))
        n)
    (ok (Database.bill_of_materials db frame));
  say "steel example done."
