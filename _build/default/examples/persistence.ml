(* Durability: snapshot + write-ahead log + recovery.

   Run with: dune exec examples/persistence.exe *)

open Compo_core
open Compo_storage

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== persistence: journaled design databases ==";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "compo-example-db" in
  (* start fresh for a reproducible run *)
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end;

  (* session 1: schema + initial design *)
  let j = ok (Journal.open_dir dir) in
  ok (Compo_ddl.Elaborate.load_string (Journal.db j) Compo_scenarios.Paper_ddl.gates);
  ok (Journal.checkpoint j);
  say "session 1: paper schema loaded and checkpointed";
  let iface_i = ok (Journal.new_object j ~ty:"GateInterface_I" ()) in
  let _ =
    ok
      (Journal.new_subobject j ~parent:iface_i ~subclass:"Pins"
         ~attrs:[ ("InOut", Value.Enum_case "IN"); ("PinLocation", Value.point 0 0) ]
         ())
  in
  let iface =
    ok
      (Journal.new_object j ~ty:"GateInterface"
         ~attrs:[ ("Length", Value.Int 4); ("Width", Value.Int 2) ]
         ())
  in
  let _ = ok (Journal.bind j ~via:"AllOf_GateInterface_I" ~transmitter:iface_i ~inheritor:iface ()) in
  let impl = ok (Journal.new_object j ~ty:"GateImplementation" ()) in
  let _ = ok (Journal.bind j ~via:"AllOf_GateInterface" ~transmitter:iface ~inheritor:impl ()) in
  say "session 1: built interface %s and implementation %s; wal=%d bytes"
    (Surrogate.to_string iface) (Surrogate.to_string impl)
    (Journal.wal_size_bytes j);
  Journal.close j;
  say "session 1: closed (simulating the end of a working day)";

  (* session 2: recovery *)
  let j2 = ok (Journal.open_dir dir) in
  say "session 2: recovered %d wal records (clean=%b)"
    (Journal.wal_records_replayed j2)
    (Journal.recovered_clean j2);
  say "session 2: implementation still inherits Length=%s"
    (Value.to_string (ok (Database.get_attr (Journal.db j2) impl "Length")));
  ok (Journal.set_attr j2 iface "Length" (Value.Int 6));
  ok (Journal.checkpoint j2);
  say "session 2: updated the interface and checkpointed (wal now %d bytes)"
    (Journal.wal_size_bytes j2);
  Journal.close j2;

  (* session 3: torn write at the tail *)
  let j3 = ok (Journal.open_dir dir) in
  ok (Journal.set_attr j3 iface "Width" (Value.Int 3));
  Journal.close j3;
  let wal = Filename.concat dir "wal.log" in
  let contents = In_channel.with_open_bin wal In_channel.input_all in
  Out_channel.with_open_bin wal (fun c ->
      Out_channel.output_string c (String.sub contents 0 (String.length contents - 3)));
  say "session 3: wrote Width=3, then the machine 'crashed' mid-append";
  let j4 = ok (Journal.open_dir dir) in
  say "session 4: recovery clean=%b, records=%d; Width=%s (torn record dropped)"
    (Journal.recovered_clean j4)
    (Journal.wal_records_replayed j4)
    (Value.to_string (ok (Database.get_attr (Journal.db j4) iface "Width")));
  say "           Length=%s survived via the snapshot"
    (Value.to_string (ok (Database.get_attr (Journal.db j4) iface "Length")));
  Journal.close j4;
  say "persistence example done."
