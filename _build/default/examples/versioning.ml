(* Version management and generic references (paper section 6).

   Run with: dune exec examples/versioning.exe *)

open Compo_core
open Compo_versions
module G = Compo_scenarios.Gates
module VG = Version_graph

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== versioning: versioned versions and deferred selection ==";
  let db = Database.create () in
  ok (G.define_schema db);
  let store = Database.store db in
  let reg = Versioned.create () in

  (* a NOR design object: its implementations are its versions *)
  let iface = ok (G.nor_interface db) in
  let g = ok (Versioned.new_graph reg ~name:"nor") in
  let v1_obj = ok (G.new_implementation db ~interface:iface ~time_behavior:6 ()) in
  let v1 = ok (Versioned.register_root reg ~graph:"nor" ~obj:v1_obj) in
  say "v%d: first implementation, TimeBehavior=6" v1;

  (* derive an improved version: a deep copy that can be edited freely *)
  let v2, v2_obj = ok (Versioned.derive_version reg store ~graph:"nor" ~from:v1) in
  ok (Versioned.set_attr reg store v2_obj "TimeBehavior" (Value.Int 3));
  say "v%d derived from v%d, tuned to TimeBehavior=3" v2 v1;

  (* an alternative explored in parallel *)
  let v3, v3_obj = ok (Versioned.derive_version reg store ~graph:"nor" ~from:v1) in
  ok (Versioned.set_attr reg store v3_obj "TimeBehavior" (Value.Int 2));
  say "v%d is an alternative to v%d (both derive from v%d): %s" v3 v2 v1
    (String.concat ","
       (List.map string_of_int (VG.alternatives g v2)));

  (* release what is ready; freeze the original *)
  ok (VG.promote g v1 VG.Released);
  ok (VG.promote g v1 VG.Frozen);
  ok (VG.promote g v2 VG.Released);
  ok (Versioned.set_default reg ~graph:"nor" ~version:v2);
  say "v1 frozen, v2 released and default, v3 still in-work";
  (match Versioned.set_attr reg store v1_obj "TimeBehavior" (Value.Int 99) with
  | Error e -> say "editing the frozen v1 is rejected: %s" (Errors.to_string e)
  | Ok () -> failwith "BUG: frozen version edited");

  say "history of v3: %s"
    (String.concat " -> " (List.map string_of_int (ok (VG.history g v3))));

  (* three ways to pick a component version (deferred to assembly time) *)
  let fresh_probe () =
    ok (Database.new_object db ~ty:"TimingProbe" ~attrs:[ ("ProbeNote", Value.Str "demo") ] ())
  in
  let show name probe =
    say "%s selected TimeBehavior=%s" name
      (Value.to_string (ok (Database.get_attr db probe "TimeBehavior")))
  in

  (* 1. bottom-up: the design object supplies its default version *)
  let p1 = fresh_probe () in
  let bottom_up = { Generic_ref.gr_graph = g; gr_via = "SomeOf_Gate"; gr_policy = Generic_ref.Bottom_up } in
  let _ = ok (Generic_ref.attach store ~inheritor:p1 bottom_up) in
  show "bottom-up (default v2)" p1;

  (* 2. top-down: the composite states required properties *)
  let p2 = fresh_probe () in
  let top_down =
    { bottom_up with Generic_ref.gr_policy = Generic_ref.Top_down Expr.(path [ "TimeBehavior" ] <= int 6) }
  in
  let _ = ok (Generic_ref.attach store ~inheritor:p2 top_down) in
  show "top-down (fastest stable <= 6)" p2;

  (* 3. environment: selection pinned outside the object definition *)
  let envs = Generic_ref.Env_table.create () in
  Generic_ref.Env_table.define envs ~env:"qualification";
  ok (Generic_ref.Env_table.pin envs ~env:"qualification" ~graph:"nor" ~version:v1);
  let p3 = fresh_probe () in
  let env_pol = { bottom_up with Generic_ref.gr_policy = Generic_ref.Environment "qualification" } in
  let _ = ok (Generic_ref.attach store ~envs ~inheritor:p3 env_pol) in
  show "environment 'qualification' (pins v1)" p3;

  (* releasing v3 later changes what top-down picks; refresh rebinds *)
  ok (VG.promote g v3 VG.Released);
  (match ok (Generic_ref.refresh store ~inheritor:p2 top_down) with
  | `Rebound _ -> show "after releasing v3, top-down rebinds" p2
  | `Unchanged -> say "unexpected: selection unchanged");

  (* configuration audit: a composite still using the frozen v1 *)
  let top_if = ok (G.nor_interface db) in
  let composite = ok (G.new_implementation db ~interface:top_if ()) in
  let v1_iface = Option.get (ok (Database.transmitter_of db v1_obj)) in
  let _ = ok (G.use_component db ~composite ~component_interface:v1_iface ~x:0 ~y:0) in
  (* register the interface itself in a graph so the audit sees versions *)
  let gi = ok (Versioned.new_graph reg ~name:"nor-interface") in
  let iv1 = ok (VG.add_root gi ~obj:v1_iface ()) in
  ok (VG.promote gi iv1 VG.Released);
  let iv2, _ = ok (Versioned.derive_version reg store ~graph:"nor-interface" ~from:iv1) in
  ok (VG.promote gi iv2 VG.Released);
  say "configuration audit of the composite:";
  let entries = ok (Config_report.configuration reg store composite) in
  List.iter (fun e -> say "  %s" (Format.asprintf "%a" Config_report.pp_entry e)) entries;
  say "  -> %d outdated use(s), %d unmanaged"
    (List.length (Config_report.outdated entries))
    (List.length (Config_report.unmanaged entries));
  say "versioning example done."
