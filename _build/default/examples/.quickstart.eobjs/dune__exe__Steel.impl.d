examples/steel.ml: Compo_core Compo_scenarios Constraints Database Errors Format List Surrogate Value
