examples/design_session.ml: Access_control Compo_core Compo_scenarios Compo_txn Compo_workspace Conflict Database Errors Format List Lock Lock_manager Surrogate Transaction Value
