examples/versioning.mli:
