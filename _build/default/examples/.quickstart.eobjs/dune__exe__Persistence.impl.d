examples/persistence.ml: Array Compo_core Compo_ddl Compo_scenarios Compo_storage Database Errors Filename Format In_channel Journal Out_channel String Surrogate Sys Value
