examples/persistence.mli:
