examples/quickstart.ml: Compo_core Compo_ddl Database Errors Format List Schema String Surrogate Value
