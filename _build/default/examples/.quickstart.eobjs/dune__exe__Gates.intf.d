examples/gates.mli:
