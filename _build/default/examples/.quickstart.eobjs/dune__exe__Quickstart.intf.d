examples/quickstart.mli:
