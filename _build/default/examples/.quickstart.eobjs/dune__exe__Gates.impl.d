examples/gates.ml: Compo_core Compo_scenarios Composite Database Errors Format List Printf String Surrogate Value
