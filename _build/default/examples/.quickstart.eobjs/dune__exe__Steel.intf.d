examples/steel.mli:
