examples/versioning.ml: Compo_core Compo_scenarios Compo_versions Config_report Database Errors Expr Format Generic_ref List Option String Value Version_graph Versioned
