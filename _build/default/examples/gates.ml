(* The paper's chip-design scenario, end to end: Figures 1-4.

   Run with: dune exec examples/gates.exe *)

open Compo_core
module G = Compo_scenarios.Gates

let ok = Errors.or_fail
let say fmt = Format.printf (fmt ^^ "@.")

let () =
  say "== gates: the paper's running example ==";
  let db = Database.create () in
  ok (G.define_schema db);

  (* Figure 1: the flip-flop as a self-contained complex object. *)
  let ff = ok (G.flip_flop db) in
  say "flip-flop %s: %d external pins, %d NOR subgates, %d wires"
    (Surrogate.to_string ff)
    (List.length (ok (Database.subclass_members db ff "Pins")))
    (List.length (ok (Database.subclass_members db ff "SubGates")))
    (List.length (ok (Database.subrel_members db ff "Wires")));

  (* Figure 2: interface and implementations. *)
  let nor_iface = ok (G.nor_interface db) in
  let fast = ok (G.new_implementation db ~interface:nor_iface ~time_behavior:1 ()) in
  let small = ok (G.new_implementation db ~interface:nor_iface ~time_behavior:4 ()) in
  say "NOR interface %s has %d implementations sharing Length=%s"
    (Surrogate.to_string nor_iface)
    (List.length (ok (Database.implementations_of db nor_iface)))
    (Value.to_string (ok (Database.get_attr db fast "Length")));

  (* Figure 3: a composite gate using NOR as a placed component. *)
  let latch_iface = ok (G.nor_interface db) in
  let latch = ok (G.new_implementation db ~interface:latch_iface ()) in
  let u1 = ok (G.use_component db ~composite:latch ~component_interface:nor_iface ~x:2 ~y:0) in
  let u2 = ok (G.use_component db ~composite:latch ~component_interface:nor_iface ~x:2 ~y:4) in
  say "latch uses NOR twice: u1 at %s, u2 at %s; each sees %d component pins"
    (Value.to_string (ok (Database.get_attr db u1 "GateLocation")))
    (Value.to_string (ok (Database.get_attr db u2 "GateLocation")))
    (List.length (ok (Database.subclass_members db u1 "Pins")));

  (* wire an external pin of the latch to a component pin *)
  let ext_pin = List.hd (ok (Database.subclass_members db latch "Pins")) in
  let comp_pin = List.hd (ok (Database.subclass_members db u1 "Pins")) in
  let _ = ok (G.wire db ~parent:latch ~from_pin:ext_pin ~to_pin:comp_pin) in
  say "wired external pin to component pin (where-clause checked on creation)";

  (* Figure 4: nor_iface is simultaneously the interface of `fast`/`small`
     and a component inside `latch`. *)
  say "dual role of the NOR interface:";
  say "  implementations: %s"
    (String.concat ", "
       (List.map Surrogate.to_string (ok (Database.implementations_of db nor_iface))));
  say "  used as component by: %s"
    (String.concat ", "
       (List.map Surrogate.to_string (ok (Database.where_used db nor_iface))));

  (* Updating the shared interface reaches both roles and stamps links. *)
  ok (Database.set_attr db nor_iface "Width" (Value.Int 3));
  say "after interface update: u1 Width=%s, small Width=%s, stale links=%d"
    (Value.to_string (ok (Database.get_attr db u1 "Width")))
    (Value.to_string (ok (Database.get_attr db small "Width")))
    (List.length
       (List.filter
          (fun l -> ok (Database.is_stale db l))
          (ok (Database.links_of db nor_iface))));

  (* Section 4.3: tailored permeability through SomeOf_Gate. *)
  let probe = ok (G.new_timing_probe db ~implementation:fast ~note:"timing sim") in
  say "timing probe sees TimeBehavior=%s through SomeOf_Gate"
    (Value.to_string (ok (Database.get_attr db probe "TimeBehavior")));

  (* Expansion of the composite (section 6). *)
  let node = ok (Database.expand db latch) in
  say "expansion of the latch has %d nodes:" (Composite.node_count node);
  Format.printf "%a@." Composite.pp_node node;

  say "bill of materials of the latch:";
  List.iter
    (fun (c, n) -> say "  %s x%d" (Surrogate.to_string c) n)
    (ok (Database.bill_of_materials db latch));

  (* The model is executable: simulate the Figure 1 flip-flop. *)
  let pins = ok (Database.subclass_members db ff "Pins") in
  (match pins with
  | [ s; r; _q; _q' ] ->
      let show name sv rv =
        match Compo_scenarios.Simulate.simulate db ~gate:ff ~inputs:[ (s, sv); (r, rv) ] with
        | Ok outs ->
            say "flip-flop %s: %s" name
              (String.concat ", "
                 (List.map
                    (fun (p, v) -> Printf.sprintf "%s=%b" (Surrogate.to_string p) v)
                    outs))
        | Error e -> say "flip-flop %s: %s" name (Errors.to_string e)
      in
      show "set (S=1,R=0)" true false;
      show "reset (S=0,R=1)" false true;
      show "hold (S=0,R=0)" false false
  | _ -> ());

  (* ...and analyzable: worst-path delay through the component tree *)
  say "latch critical-path delay: %d time units"
    (ok (Compo_scenarios.Simulate.propagation_delay db latch));
  say "gates example done."
