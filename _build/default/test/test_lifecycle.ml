(* Capstone integration test: one design's life across every subsystem.

   A catalog part is versioned, used by a composite, edited through a
   checked-out workspace, redesigned into a new default version, audited,
   adapted by a trigger rule, persisted through the journal, and recovered
   — with store invariants and constraints checked at the end. *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module VG = Compo_versions.Version_graph
module T = Compo_txn.Transaction

let tmp_dir () =
  let d = Filename.temp_file "compo-lifecycle" "" in
  Sys.remove d;
  d

let test_full_lifecycle () =
  let dir = tmp_dir () in

  (* --- day 0: project setup ------------------------------------- *)
  let j = ok (Compo_storage.Journal.open_dir dir) in
  let db = Compo_storage.Journal.db j in
  ok (G.define_schema db);
  ok (Compo_storage.Journal.checkpoint j);
  let store = Database.store db in

  (* a versioned catalog part: the NOR cell *)
  let reg = Compo_versions.Versioned.create () in
  let g = ok (Compo_versions.Versioned.new_graph reg ~name:"nor-cell") in
  let cell_v1 = ok (G.nor_interface db) in
  let v1 = ok (Compo_versions.Versioned.register_root reg ~graph:"nor-cell" ~obj:cell_v1) in
  ok (VG.promote g v1 VG.Released);
  ok (VG.set_default g v1);

  (* a product composite using the cell twice *)
  let product_if = ok (G.nor_interface db) in
  let product = ok (G.new_implementation db ~interface:product_if ~time_behavior:2 ()) in
  let use1 = ok (G.use_component db ~composite:product ~component_interface:cell_v1 ~x:0 ~y:0) in
  let use2 = ok (G.use_component db ~composite:product ~component_interface:cell_v1 ~x:4 ~y:0) in
  ok (Compo_storage.Journal.checkpoint j);

  (* --- day 1: a designer works on the product -------------------- *)
  let mg = T.create_manager store in
  let ws = Compo_workspace.Workspace.create_manager mg in
  let w = ok (Compo_workspace.Workspace.checkout ws ~user:"alice" product) in
  let priv = Compo_workspace.Workspace.private_root w in
  let priv_use1 = Option.get (Compo_workspace.Workspace.private_of w use1) in
  ok (Database.set_attr db priv "TimeBehavior" (Value.Int 3));
  ok (Database.set_attr db priv_use1 "GateLocation" (Value.point 1 1));
  let applied = ok (Compo_workspace.Workspace.checkin ws w) in
  check_int "two changes checked in" 2 (List.length applied);
  check_value "placement landed" (Value.point 1 1)
    (ok (Database.get_attr db use1 "GateLocation"));

  (* --- day 2: catalog redesign with adaptation rules ------------- *)
  (* a rule keeps the product's own delay estimate in sync when the cell
     changes (the paper's semi-automatic correction) *)
  let eng = Triggers.create db in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "review-placements";
         r_pattern = Triggers.On_stale { via = Some "AllOf_GateInterface"; attr = None };
         r_condition = None;
         r_action = Triggers.log_note ~note:"cell redesigned: re-check placement";
       });
  let v2, cell_v2 =
    ok (Compo_versions.Versioned.derive_version reg store ~graph:"nor-cell" ~from:v1)
  in
  ok (Compo_versions.Versioned.set_attr reg store cell_v2 "Width" (Value.Int 3));
  ok (VG.promote g v2 VG.Released);
  ok (Compo_versions.Versioned.set_default reg ~graph:"nor-cell" ~version:v2);
  (* v1 is still in use; an edit to it (ECO) flows to the product and the
     rule rewrites the adaptation note *)
  ok (Triggers.set_attr eng cell_v1 "Length" (Value.Int 5));
  let link1 = Option.get (ok (Inheritance.binding_of store use1)) in
  check_string "rule annotated the link" "cell redesigned: re-check placement"
    (ok (Database.stale_note db link1.Store.b_link));
  check_value "product sees the ECO through inheritance" (Value.Int 5)
    (ok (Database.get_attr db use2 "Length"));

  (* --- day 3: configuration audit -------------------------------- *)
  let entries = ok (Compo_versions.Config_report.configuration reg store product) in
  let outdated = Compo_versions.Config_report.outdated entries in
  check_int "both uses are outdated (v2 released)" 2 (List.length outdated);
  List.iter
    (fun e ->
      match e.Compo_versions.Config_report.ce_version with
      | Some ("nor-cell", v, VG.Released) -> check_int "bound to v1" v1 v
      | _ -> ())
    outdated;

  (* upgrade one use to the new default version *)
  ok (Database.unbind db use1);
  let _ =
    ok (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:cell_v2 ~inheritor:use1 ())
  in
  let entries = ok (Compo_versions.Config_report.configuration reg store product) in
  check_int "one outdated use left" 1
    (List.length (Compo_versions.Config_report.outdated entries));
  check_value "upgraded use reads v2 data" (Value.Int 3)
    (ok (Database.get_attr db use1 "Width"));

  (* --- day 4: persist everything and recover --------------------- *)
  ok (Compo_versions.Versioned.save_file reg (Filename.concat dir "versions.bin"));
  ok (Compo_storage.Journal.checkpoint j);
  Compo_storage.Journal.close j;

  let j2 = ok (Compo_storage.Journal.open_dir dir) in
  let db2 = Compo_storage.Journal.db j2 in
  let store2 = Database.store db2 in
  let reg2 = ok (Compo_versions.Versioned.load_file (Filename.concat dir "versions.bin")) in
  check_value "recovered: placement" (Value.point 1 1)
    (ok (Database.get_attr db2 use1 "GateLocation"));
  check_value "recovered: v2 binding" (Value.Int 3)
    (ok (Database.get_attr db2 use1 "Width"));
  check_value "recovered: ECO on v1" (Value.Int 5)
    (ok (Database.get_attr db2 use2 "Length"));
  let entries = ok (Compo_versions.Config_report.configuration reg2 store2 product) in
  check_int "recovered audit agrees" 1
    (List.length (Compo_versions.Config_report.outdated entries));
  (* timing analysis over the recovered product *)
  let delay = ok (Compo_scenarios.Simulate.propagation_delay db2 product) in
  check_bool "critical path computable after recovery" true (delay >= 2);
  check_no_violations "recovered store validates" (Database.validate_all db2);
  Alcotest.(check (list string)) "recovered store invariants" []
    (Store.check_invariants store2);
  Compo_storage.Journal.close j2

let suite = ("lifecycle", [ case "full design lifecycle" test_full_lifecycle ])
