open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module S = Compo_scenarios.Steel

let test_simple_gate_pin_counts () =
  let db = gates_db () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  check_no_violations "well-formed gate" (ok (Database.validate db g));
  (* break the constraint: three inputs *)
  ok
    (Database.set_attr db g "Pins"
       (Value.set
          [
            Value.record [ ("PinId", Value.Int 1); ("InOut", G.io_value G.In) ];
            Value.record [ ("PinId", Value.Int 2); ("InOut", G.io_value G.In) ];
            Value.record [ ("PinId", Value.Int 3); ("InOut", G.io_value G.In) ];
            Value.record [ ("PinId", Value.Int 4); ("InOut", G.io_value G.Out) ];
          ]));
  match ok (Database.validate db g) with
  | [] -> Alcotest.fail "expected a violation"
  | v :: _ -> check_string "violated constraint" "two_inputs" v.Constraints.v_constraint

let test_girder_proportions () =
  let db = steel_db () in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[])
  in
  check_no_violations "valid girder" (ok (Database.validate db iface));
  ok (Database.set_attr db iface "Length" (Value.Int 20000));
  check_int "proportions violated" 1 (List.length (ok (Database.validate db iface)))

let test_eager_checks_roll_back () =
  let db = steel_db () in
  Database.set_eager_checks db true;
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[])
  in
  expect_error
    (function Errors.Constraint_violation _ -> true | _ -> false)
    (Database.set_attr db iface "Length" (Value.Int 20000));
  (* the offending write was rolled back *)
  check_value "rolled back" (Value.Int 100) (ok (Database.get_attr db iface "Length"))

let test_subrel_where_enforced () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let other = ok (G.new_elementary_gate db ~func:"AND" ~x:0 ~y:0 ()) in
  let foreign_pin = ok (G.pin db other 0) in
  let own_pin = List.hd (ok (Database.subclass_members db ff "Pins")) in
  (* wiring to a pin outside the gate violates the Wires where clause *)
  expect_error
    (function Errors.Constraint_violation _ -> true | _ -> false)
    (G.wire db ~parent:ff ~from_pin:own_pin ~to_pin:foreign_pin);
  (* the rejected wire was removed again *)
  check_int "still six wires" 6 (List.length (ok (Database.subrel_members db ff "Wires")))

let test_screwing_constraints_pass () =
  let db = steel_db () in
  let s = ok (Compo_scenarios.Workload.screwed_structure db ~girders:3 ~bores_per_joint:2) in
  check_no_violations "generated structure is consistent"
    (Database.validate_all db);
  ignore s

let test_screwing_diameter_mismatch () =
  let db = steel_db () in
  let structure = ok (S.new_structure db ~designer:"w" ~description:"test") in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10
          ~bores:[ (10, 2, (0, 0)) ])
  in
  let comp = ok (S.add_girder db ~structure ~girder_interface:iface) in
  let bores = ok (S.bores_of db comp) in
  let bolt = ok (S.new_bolt db ~length:3 ~diameter:10) in
  let nut = ok (S.new_nut db ~length:1 ~diameter:12) in
  (* diameters differ *)
  let screwing = ok (S.screw db ~structure ~bores ~bolt ~nut ~strength:10) in
  let violations = ok (Database.validate db screwing) in
  check_bool "diameters_match violated" true
    (List.exists
       (fun v -> v.Constraints.v_constraint = "diameters_match")
       violations)

let test_screwing_bolt_too_short () =
  let db = steel_db () in
  let structure = ok (S.new_structure db ~designer:"w" ~description:"test") in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10
          ~bores:[ (10, 4, (0, 0)); (10, 4, (3, 0)) ])
  in
  let comp = ok (S.add_girder db ~structure ~girder_interface:iface) in
  let bores = ok (S.bores_of db comp) in
  (* needs 1 + 8 = 9; give 5 *)
  let bolt = ok (S.new_bolt db ~length:5 ~diameter:10) in
  let nut = ok (S.new_nut db ~length:1 ~diameter:10) in
  let screwing = ok (S.screw db ~structure ~bores ~bolt ~nut ~strength:10) in
  check_bool "bolt_length violated" true
    (List.exists
       (fun v -> v.Constraints.v_constraint = "bolt_length")
       (ok (Database.validate db screwing)))

let test_screwing_missing_nut () =
  let db = steel_db () in
  let structure = ok (S.new_structure db ~designer:"w" ~description:"test") in
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10
          ~bores:[ (10, 2, (0, 0)) ])
  in
  let comp = ok (S.add_girder db ~structure ~girder_interface:iface) in
  let bores = ok (S.bores_of db comp) in
  (* hand-build a screwing with a bolt but no nut *)
  let screwing =
    ok
      (Database.new_subrel db ~parent:structure ~subrel:"Screwings"
         ~participants:[ ("Bores", Value.set (List.map (fun b -> Value.Ref b) bores)) ]
         ~attrs:[ ("Strength", Value.Int 1) ]
         ())
  in
  let bolt = ok (S.new_bolt db ~length:3 ~diameter:10) in
  let bolt_sub = ok (Database.new_subobject db ~parent:screwing ~subclass:"Bolt" ()) in
  let _ = ok (Database.bind db ~via:"AllOf_BoltType" ~transmitter:bolt ~inheritor:bolt_sub ()) in
  check_bool "one_nut violated" true
    (List.exists
       (fun v -> v.Constraints.v_constraint = "one_nut")
       (ok (Database.validate db screwing)))

let test_screwing_where_rejects_foreign_bores () =
  let db = steel_db () in
  let structure = ok (S.new_structure db ~designer:"w" ~description:"test") in
  (* a bore on an interface NOT used by this structure *)
  let foreign_iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10
          ~bores:[ (10, 2, (0, 0)) ])
  in
  let foreign_bores = ok (S.bores_of db foreign_iface) in
  let bolt = ok (S.new_bolt db ~length:3 ~diameter:10) in
  let nut = ok (S.new_nut db ~length:1 ~diameter:10) in
  expect_error
    (function Errors.Constraint_violation _ -> true | _ -> false)
    (S.screw db ~structure ~bores:foreign_bores ~bolt ~nut ~strength:10)

let test_check_all_scales_over_store () =
  let db = steel_db () in
  let _ = ok (Compo_scenarios.Workload.screwed_structure db ~girders:4 ~bores_per_joint:1) in
  check_no_violations "store-wide check" (Database.validate_all db)



let test_rolled_back_write_does_not_stamp () =
  let db = steel_db () in
  Database.set_eager_checks db true;
  let iface =
    ok (S.new_girder_interface db ~length:100 ~height:10 ~width:10 ~bores:[])
  in
  let girder = ok (S.new_girder db ~interface:iface ~material:"wood") in
  ignore girder;
  let link = List.hd (ok (Database.links_of db iface)) in
  expect_error any_error (Database.set_attr db iface "Length" (Value.Int 20000));
  check_bool "rejected write leaves the link fresh" false
    (ok (Database.is_stale db link));
  ok (Database.set_attr db iface "Length" (Value.Int 120));
  check_bool "accepted write stamps" true (ok (Database.is_stale db link))

let suite =
  ( "constraints",
    [
      case "SimpleGate pin-count constraints (paper section 3)" test_simple_gate_pin_counts;
      case "girder proportions (Length < 100*H*W)" test_girder_proportions;
      case "eager checks roll back offending writes" test_eager_checks_roll_back;
      case "Wires where-clause enforced on creation" test_subrel_where_enforced;
      case "generated screwed structure is consistent (C8)" test_screwing_constraints_pass;
      case "screwing: diameter mismatch detected (C8)" test_screwing_diameter_mismatch;
      case "screwing: bolt too short detected (C8)" test_screwing_bolt_too_short;
      case "screwing: exactly one nut (C8)" test_screwing_missing_nut;
      case "screwing where-clause rejects foreign bores" test_screwing_where_rejects_foreign_bores;
      case "store-wide validation" test_check_all_scales_over_store;
      case "rolled-back writes do not stamp inheritors" test_rolled_back_write_does_not_stamp;
    ] )
