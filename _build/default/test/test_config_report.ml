open Compo_core
open Compo_versions
open Helpers
module G = Compo_scenarios.Gates
module VG = Version_graph

(* A composite using two components: one version-managed NOR interface
   (with a newer released version available) and one unmanaged ad-hoc
   interface. *)
let setup () =
  let db = gates_db () in
  let store = Database.store db in
  let reg = Versioned.create () in
  let g = ok (Versioned.new_graph reg ~name:"nor-if") in
  (* v1: the old interface; v2: a released redesign *)
  let v1_obj = ok (G.nor_interface db) in
  let v1 = ok (VG.add_root g ~obj:v1_obj ()) in
  ok (VG.promote g v1 VG.Released);
  let v2, v2_obj = ok (Versioned.derive_version reg store ~graph:"nor-if" ~from:v1) in
  ok (VG.promote g v2 VG.Released);
  ok (VG.set_default g v2);
  let adhoc = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let use_old = ok (G.use_component db ~composite:top ~component_interface:v1_obj ~x:0 ~y:0) in
  let use_adhoc = ok (G.use_component db ~composite:top ~component_interface:adhoc ~x:1 ~y:0) in
  (db, store, reg, g, top, v1_obj, v2_obj, v1, v2, use_old, use_adhoc)

let test_configuration_entries () =
  let db, store, reg, _, top, v1_obj, _, v1, v2, use_old, use_adhoc = setup () in
  let entries = ok (Config_report.configuration reg store top) in
  (* uses: top->top_iface (implementation binding), use_old->v1, use_adhoc->adhoc,
     plus interface->pin-interface bindings along the way *)
  check_bool "several uses found" true (List.length entries >= 3);
  let entry_for use =
    List.find (fun e -> Surrogate.equal e.Config_report.ce_use use) entries
  in
  let old_entry = entry_for use_old in
  (match old_entry.Config_report.ce_version with
  | Some ("nor-if", v, VG.Released) -> check_int "bound to v1" v1 v
  | _ -> Alcotest.fail "expected a released nor-if version");
  check_bool "not the default anymore" false old_entry.Config_report.ce_is_default;
  Alcotest.(check (list int)) "newer stable version listed" [ v2 ]
    old_entry.Config_report.ce_newer_stable;
  let adhoc_entry = entry_for use_adhoc in
  check_bool "ad-hoc component unmanaged" true
    (adhoc_entry.Config_report.ce_version = None);
  check_bool "component surrogate recorded" true
    (Surrogate.equal old_entry.Config_report.ce_component v1_obj);
  ignore db

let test_outdated_and_unmanaged_filters () =
  let _, store, reg, _, top, _, _, _, _, use_old, use_adhoc = setup () in
  let entries = ok (Config_report.configuration reg store top) in
  let outdated = Config_report.outdated entries in
  check_int "exactly one outdated use" 1 (List.length outdated);
  check_bool "the old use is the outdated one" true
    (Surrogate.equal (List.hd outdated).Config_report.ce_use use_old);
  let unmanaged = Config_report.unmanaged entries in
  check_bool "ad-hoc use among unmanaged" true
    (List.exists
       (fun e -> Surrogate.equal e.Config_report.ce_use use_adhoc)
       unmanaged)

let test_stale_flag_propagates () =
  let db, store, reg, _, top, v1_obj, _, _, _, use_old, _ = setup () in
  ok (Database.set_attr db v1_obj "Width" (Value.Int 9));
  let entries = ok (Config_report.configuration reg store top) in
  let old_entry =
    List.find (fun e -> Surrogate.equal e.Config_report.ce_use use_old) entries
  in
  check_bool "stale binding reported" true old_entry.Config_report.ce_stale

let test_in_work_not_suggested () =
  (* a newer but in-work version must not appear as newer_stable *)
  let _, store, reg, g, top, _, _, _, v2, use_old, _ = setup () in
  let v3, _ = ok (Versioned.derive_version reg store ~graph:"nor-if" ~from:v2) in
  let entries = ok (Config_report.configuration reg store top) in
  let old_entry =
    List.find (fun e -> Surrogate.equal e.Config_report.ce_use use_old) entries
  in
  check_bool "in-work v3 not suggested" false
    (List.mem v3 old_entry.Config_report.ce_newer_stable);
  ok (VG.promote g v3 VG.Released);
  let entries = ok (Config_report.configuration reg store top) in
  let old_entry =
    List.find (fun e -> Surrogate.equal e.Config_report.ce_use use_old) entries
  in
  check_bool "released v3 suggested" true
    (List.mem v3 old_entry.Config_report.ce_newer_stable)

let test_pp_entry_renders () =
  let _, store, reg, _, top, _, _, _, _, _, _ = setup () in
  let entries = ok (Config_report.configuration reg store top) in
  List.iter
    (fun e ->
      let s = Format.asprintf "%a" Config_report.pp_entry e in
      check_bool "non-empty rendering" true (String.length s > 0))
    entries

let suite =
  ( "config-report",
    [
      case "configuration entries" test_configuration_entries;
      case "outdated / unmanaged filters" test_outdated_and_unmanaged_filters;
      case "staleness surfaces in the report" test_stale_flag_propagates;
      case "in-work versions are not suggested" test_in_work_not_suggested;
      case "entries render" test_pp_entry_renders;
    ] )
