open Compo_core
open Helpers

let obj ?(inheritor_in = None) ?(attrs = []) ?(subclasses = []) ?(subrels = [])
    ?(constraints = []) name =
  {
    Schema.ot_name = name;
    ot_inheritor_in = inheritor_in;
    ot_attrs = attrs;
    ot_subclasses = subclasses;
    ot_subrels = subrels;
    ot_constraints = constraints;
  }

let attr name domain = { Schema.attr_name = name; attr_domain = domain }

let inher name ~transmitter ?(inheritor = None) ~inheriting () =
  {
    Schema.it_name = name;
    it_transmitter = transmitter;
    it_inheritor = inheritor;
    it_inheriting = inheriting;
    it_attrs = [];
         it_subclasses = [];
    it_constraints = [];
  }

let test_duplicate_rejected () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "A"));
  expect_error any_error (Schema.define_obj_type s (obj "A"))

let test_one_namespace () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "T"));
  expect_error ~msg:"rel type may not reuse obj type name" any_error
    (Schema.define_rel_type s
       {
         Schema.rt_name = "T";
         rt_relates = [ { Schema.p_name = "x"; p_card = Schema.One; p_type = None } ];
         rt_attrs = [];
         rt_subclasses = [];
         rt_constraints = [];
       })

let test_unknown_domain_rejected () =
  let s = Schema.create () in
  expect_error any_error
    (Schema.define_obj_type s (obj "A" ~attrs:[ attr "x" (Domain.Named "Nope") ]))

let test_named_domain_used () =
  let s = Schema.create () in
  ok (Schema.define_domain s "IO" (Domain.Enum [ "IN"; "OUT" ]));
  ok (Schema.define_obj_type s (obj "A" ~attrs:[ attr "x" (Domain.Named "IO") ]));
  expect_error ~msg:"duplicate domain" any_error
    (Schema.define_domain s "IO" (Domain.Enum [ "A" ]))

let test_duplicate_feature_names () =
  let s = Schema.create () in
  expect_error any_error
    (Schema.define_obj_type s
       (obj "A" ~attrs:[ attr "x" Domain.Integer; attr "x" Domain.String ]))

let test_inheriting_clause_validated () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "Iface" ~attrs:[ attr "L" Domain.Integer ]));
  expect_error ~msg:"inheriting names must exist on the transmitter" any_error
    (Schema.define_inher_rel_type s
       (inher "R" ~transmitter:"Iface" ~inheriting:[ "Missing" ] ()));
  ok
    (Schema.define_inher_rel_type s
       (inher "R" ~transmitter:"Iface" ~inheriting:[ "L" ] ()))

let test_empty_inheriting_rejected () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "Iface" ~attrs:[ attr "L" Domain.Integer ]));
  expect_error any_error
    (Schema.define_inher_rel_type s (inher "R" ~transmitter:"Iface" ~inheriting:[] ()))

let test_effective_attrs_two_levels () =
  (* the section 4.2 hierarchy: Pins flow GateInterface_I -> GateInterface
     -> GateImplementation at the type level *)
  let db = gates_db () in
  let s = Database.schema db in
  let effective = ok (Schema.effective_attrs s "GateImplementation") in
  let names = List.map (fun (a, _) -> a.Schema.attr_name) effective in
  List.iter
    (fun n -> check_bool ("has " ^ n) true (List.mem n names))
    [ "Function"; "TimeBehavior"; "Length"; "Width" ];
  let subs = ok (Schema.effective_subclasses s "GateImplementation") in
  let sub_names = List.map (fun (sc, _) -> sc.Schema.sc_name) subs in
  check_bool "Pins inherited through two levels" true (List.mem "Pins" sub_names);
  check_bool "SubGates own" true (List.mem "SubGates" sub_names)

let test_effective_sources () =
  let db = gates_db () in
  let s = Database.schema db in
  (match Schema.attr_source s "GateImplementation" "Length" with
  | Some (Schema.Via "AllOf_GateInterface") -> ()
  | _ -> Alcotest.fail "Length should be inherited via AllOf_GateInterface");
  match Schema.attr_source s "GateImplementation" "Function" with
  | Some Schema.Own -> ()
  | _ -> Alcotest.fail "Function should be own"

let test_shadowing_rejected () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "Iface" ~attrs:[ attr "L" Domain.Integer ]));
  ok (Schema.define_inher_rel_type s (inher "R" ~transmitter:"Iface" ~inheriting:[ "L" ] ()));
  expect_error ~msg:"local attr may not shadow inherited attr" any_error
    (Schema.define_obj_type s
       (obj "Impl" ~inheritor_in:(Some "R") ~attrs:[ attr "L" Domain.Integer ]))

let test_inheritor_type_check () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "Iface" ~attrs:[ attr "L" Domain.Integer ]));
  ok
    (Schema.define_inher_rel_type s
       (inher "R" ~transmitter:"Iface" ~inheritor:(Some "Impl") ~inheriting:[ "L" ] ()));
  (* the declared inheritor type may be defined after the relationship *)
  ok (Schema.define_obj_type s (obj "Impl" ~inheritor_in:(Some "R")));
  expect_error ~msg:"other types may not join a typed inheritance relationship"
    any_error
    (Schema.define_obj_type s (obj "Other" ~inheritor_in:(Some "R")))

let test_inline_subclass_registration () =
  let db = gates_db () in
  let s = Database.schema db in
  let sub = ok (Schema.find_obj_type s "GateImplementation.SubGates") in
  check_string "generated name" "GateImplementation.SubGates" sub.Schema.ot_name;
  check_bool "inline type is inheritor"
    (sub.Schema.ot_inheritor_in = Some "AllOf_GateInterface")
    true;
  (* effective attrs of the inline type include inherited interface data *)
  let names =
    List.map
      (fun (a, _) -> a.Schema.attr_name)
      (ok (Schema.effective_attrs s "GateImplementation.SubGates"))
  in
  check_bool "GateLocation own" true (List.mem "GateLocation" names);
  check_bool "Length inherited" true (List.mem "Length" names)

let test_transmitter_chain () =
  let db = gates_db () in
  let s = Database.schema db in
  Alcotest.(check (list string))
    "chain"
    [ "GateInterface"; "GateInterface_I" ]
    (Schema.transmitter_chain s "GateImplementation")

let test_unknown_transmitter_rejected () =
  let s = Schema.create () in
  expect_error any_error
    (Schema.define_inher_rel_type s
       (inher "R" ~transmitter:"Missing" ~inheriting:[ "x" ] ()))

let test_rel_type_participant_validation () =
  let s = Schema.create () in
  ok (Schema.define_obj_type s (obj "P"));
  expect_error ~msg:"unknown participant type" any_error
    (Schema.define_rel_type s
       {
         Schema.rt_name = "R1";
         rt_relates = [ { Schema.p_name = "a"; p_card = Schema.One; p_type = Some "Q" } ];
         rt_attrs = [];
         rt_subclasses = [];
         rt_constraints = [];
       });
  expect_error ~msg:"empty relates clause" any_error
    (Schema.define_rel_type s
       {
         Schema.rt_name = "R2";
         rt_relates = [];
         rt_attrs = [];
         rt_subclasses = [];
         rt_constraints = [];
       });
  ok
    (Schema.define_rel_type s
       {
         Schema.rt_name = "R3";
         rt_relates =
           [
             { Schema.p_name = "a"; p_card = Schema.One; p_type = Some "P" };
             { Schema.p_name = "b"; p_card = Schema.Many; p_type = None };
           ];
         rt_attrs = [];
         rt_subclasses = [];
         rt_constraints = [];
       })

let test_entries_in_definition_order () =
  let db = gates_db () in
  let names = List.map
      (function
        | Schema.Obj_type o -> o.Schema.ot_name
        | Schema.Rel_type r -> r.Schema.rt_name
        | Schema.Inher_type i -> i.Schema.it_name)
      (Schema.entries (Database.schema db))
  in
  check_string "first entry" "PinType" (List.hd names);
  check_bool "GateImplementation present" true (List.mem "GateImplementation" names)

let suite =
  ( "schema",
    [
      case "duplicate type rejected" test_duplicate_rejected;
      case "single namespace for all type kinds" test_one_namespace;
      case "unknown named domain rejected" test_unknown_domain_rejected;
      case "named domains usable and unique" test_named_domain_used;
      case "duplicate feature names rejected" test_duplicate_feature_names;
      case "inheriting clause validated against transmitter" test_inheriting_clause_validated;
      case "empty inheriting clause rejected" test_empty_inheriting_rejected;
      case "effective attrs across two levels" test_effective_attrs_two_levels;
      case "effective attr sources" test_effective_sources;
      case "shadowing of inherited names rejected" test_shadowing_rejected;
      case "typed inheritor clause enforced, forward ref allowed" test_inheritor_type_check;
      case "inline subclass types registered" test_inline_subclass_registration;
      case "transmitter chain" test_transmitter_chain;
      case "unknown transmitter rejected" test_unknown_transmitter_rejected;
      case "relationship participant validation" test_rel_type_participant_validation;
      case "entries in definition order" test_entries_in_definition_order;
    ] )
