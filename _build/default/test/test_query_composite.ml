open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload

let test_select_with_predicate () =
  let db = gates_db () in
  let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
  let _small = ok (G.new_interface db ~pin_interface:pi ~length:4 ~width:2) in
  let pi2 = ok (G.new_pin_interface db ~pins:[ G.In; G.In; G.Out ]) in
  let big = ok (G.new_interface db ~pin_interface:pi2 ~length:40 ~width:20) in
  let found =
    ok (Database.select db ~cls:"Interfaces" ~where:Expr.(path [ "Length" ] > int 10) ())
  in
  Alcotest.(check (list surrogate)) "only the big one" [ big ] found;
  check_int "no filter returns all" 2
    (List.length (ok (Database.select db ~cls:"Interfaces" ())))

let test_select_sees_inherited_data () =
  (* top-down component selection (section 6): query implementations by
     their *inherited* interface data *)
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:5 ()) in
  let unbound = ok (Database.new_object db ~cls:"Implementations" ~ty:"GateImplementation" ()) in
  let found =
    ok
      (Database.select db ~cls:"Implementations"
         ~where:Expr.(path [ "Length" ] = int 4 && path [ "TimeBehavior" ] = int 5)
         ())
  in
  Alcotest.(check (list surrogate)) "found through inheritance" [ impl ] found;
  ignore unbound

let test_select_subobjects () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let outs =
    ok
      (Database.select_subobjects db ~parent:ff ~subclass:"Pins"
         ~where:Expr.(path [ "InOut" ] = enum "OUT")
         ())
  in
  check_int "two output pins" 2 (List.length outs)

let test_expand_component_tree () =
  let db = gates_db () in
  let top = ok (W.component_tree db ~depth:2 ~fanout:2) in
  let node = ok (Database.expand db top) in
  (* top impl -> 2 subgates, each with a component (interface) whose
     implementation is separate; interface nodes contain 3 pins *)
  let counted = Composite.node_count node in
  check_bool "expansion has substance" true (counted > 10);
  (* depth-limited expansion is smaller *)
  let shallow = ok (Database.expand db ~max_depth:0 top) in
  check_bool "depth limit honoured" true (Composite.node_count shallow < counted)

let test_components_and_bom () =
  let db = gates_db () in
  let iface_a = ok (G.nor_interface db) in
  let iface_b = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:iface_a ~x:0 ~y:0) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:iface_a ~x:1 ~y:0) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:iface_b ~x:2 ~y:0) in
  let comps = ok (Database.bill_of_materials db top) in
  let count_of iface =
    Option.value ~default:0
      (List.assoc_opt iface
         (List.map (fun (c, n) -> (c, n)) comps))
  in
  check_int "iface_a used twice" 2 (count_of iface_a);
  check_int "iface_b used once" 1 (count_of iface_b)

let test_bom_multiplies_along_paths () =
  let db = gates_db () in
  (* leaf used twice in mid; mid used twice in top => leaf counted 4 times *)
  let leaf_iface = ok (G.nor_interface db) in
  let mid_iface = ok (G.nor_interface db) in
  let mid = ok (G.new_implementation db ~interface:mid_iface ()) in
  let _ = ok (G.use_component db ~composite:mid ~component_interface:leaf_iface ~x:0 ~y:0) in
  let _ = ok (G.use_component db ~composite:mid ~component_interface:leaf_iface ~x:1 ~y:0) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:mid_iface ~x:0 ~y:0) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:mid_iface ~x:1 ~y:0) in
  let bom = ok (Database.bill_of_materials db top) in
  check_int "mid counted twice" 2 (List.assoc mid_iface bom);
  (* each use of mid_iface is one use of the *interface*; the interface has
     no components of its own, so leaf multiplicity comes through mid's
     implementation only if the BOM follows interface->implementation
     structure. Components of an interface object: none. *)
  check_bool "leaf not double-counted through interfaces" true
    (not (List.mem_assoc leaf_iface bom) || List.assoc leaf_iface bom <= 4)

let test_where_used_and_implementations () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:iface ~x:0 ~y:0) in
  Alcotest.(check (list surrogate))
    "where-used finds the composite" [ top ]
    (ok (Database.where_used db iface));
  Alcotest.(check (list surrogate))
    "implementations are top-level inheritors" [ impl ]
    (ok (Database.implementations_of db iface))

let test_navigate_paths () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let items = ok (Query.navigate (Database.store db) ~from:ff [ "SubGates"; "Pins" ]) in
  check_int "six subgate pins" 6 (List.length items)



let test_order_by () =
  let db = gates_db () in
  let store = Database.store db in
  let mk l =
    let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.Out ]) in
    ok (G.new_interface db ~pin_interface:pi ~length:l ~width:2)
  in
  let c = mk 9 and a = mk 1 and b = mk 5 in
  let all = ok (Database.select db ~cls:"Interfaces" ()) in
  Alcotest.(check (list surrogate)) "ascending" [ a; b; c ]
    (ok (Query.order_by store ~attr:"Length" all));
  Alcotest.(check (list surrogate)) "descending" [ c; b; a ]
    (ok (Query.order_by store ~descending:true ~attr:"Length" all));
  (* ordering by an inherited attribute works too *)
  let ia = ok (G.new_implementation db ~interface:a ()) in
  let ic = ok (G.new_implementation db ~interface:c ()) in
  Alcotest.(check (list surrogate)) "inherited key" [ ia; ic ]
    (ok (Query.order_by store ~attr:"Length" [ ic; ia ]))

let test_aggregates () =
  let db = gates_db () in
  let store = Database.store db in
  let mk l =
    let pi = ok (G.new_pin_interface db ~pins:[ G.In; G.Out ]) in
    ok (G.new_interface db ~pin_interface:pi ~length:l ~width:2)
  in
  let _ = mk 4 and _ = mk 4 and _ = mk 10 in
  let unset = ok (Database.new_object db ~cls:"Interfaces" ~ty:"GateInterface" ()) in
  ignore unset;
  let all = ok (Database.select db ~cls:"Interfaces" ()) in
  check_value "sum skips Null" (Value.Int 18)
    (ok (Query.aggregate store Query.Sum ~attr:"Length" all));
  check_value "count non-null" (Value.Int 3)
    (ok (Query.aggregate store Query.Count_values ~attr:"Length" all));
  check_value "count distinct incl. Null" (Value.Int 3)
    (ok (Query.aggregate store Query.Count_distinct ~attr:"Length" all));
  check_value "min" (Value.Int 4) (ok (Query.aggregate store Query.Min ~attr:"Length" all));
  check_value "max" (Value.Int 10) (ok (Query.aggregate store Query.Max ~attr:"Length" all));
  check_value "min over empty is Null" Value.Null
    (ok (Query.aggregate store Query.Min ~attr:"Length" []))



let test_min_max_coerce_numerics () =
  let db = Database.create () in
  let store = Database.store db in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "M";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "V"; attr_domain = Domain.Real } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  (* a Real domain admits Int values: min/max must compare by magnitude *)
  let mk v = ok (Database.new_object db ~ty:"M" ~attrs:[ ("V", v) ] ()) in
  let objs = [ mk (Value.Int 2); mk (Value.Real 1.5); mk (Value.Int 3) ] in
  check_value "min coerces across Int/Real" (Value.Real 1.5)
    (ok (Query.aggregate store Query.Min ~attr:"V" objs));
  check_value "max coerces across Int/Real" (Value.Int 3)
    (ok (Query.aggregate store Query.Max ~attr:"V" objs))

let suite =
  ( "query-composite",
    [
      case "select with predicate" test_select_with_predicate;
      case "select sees inherited data (top-down selection)" test_select_sees_inherited_data;
      case "select over subclasses" test_select_subobjects;
      case "expansion of component trees (section 6)" test_expand_component_tree;
      case "components and bill of materials" test_components_and_bom;
      case "BOM multiplies along use paths" test_bom_multiplies_along_paths;
      case "where-used and implementations-of" test_where_used_and_implementations;
      case "path navigation" test_navigate_paths;
      case "order-by over (inherited) attributes" test_order_by;
      case "aggregates" test_aggregates;
      case "min/max coerce numerics" test_min_max_coerce_numerics;
    ] )
