open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module Opt = Compo_scenarios.Optimize
module Sim = Compo_scenarios.Simulate

(* A netlist builder: external inputs A, B; output Z; subgates wired by a
   little description language. *)
let build_netlist db specs =
  let gate =
    ok
      (Database.new_object db ~ty:"Gate"
         ~attrs:
           [
             ("Length", Value.Int 20);
             ("Width", Value.Int 10);
             ("Function", Value.Matrix [| [| Value.Bool true |] |]);
           ]
         ())
  in
  let ext io x =
    ok
      (Database.new_subobject db ~parent:gate ~subclass:"Pins"
         ~attrs:[ ("InOut", G.io_value io); ("PinLocation", Value.point x 0) ]
         ())
  in
  let a = ext G.In 0 in
  let b = ext G.In 1 in
  let z = ext G.Out 9 in
  let subs =
    List.mapi
      (fun i func ->
        ok (G.new_elementary_gate db ~parent:(gate, "SubGates") ~func ~x:(2 + i) ~y:0 ()))
      specs
  in
  let wire from_pin to_pin = ignore (ok (G.wire db ~parent:gate ~from_pin ~to_pin)) in
  (gate, a, b, z, subs, wire)

let sub_pins db sub =
  (ok (G.pin db sub 0), ok (G.pin db sub 1), ok (G.pin db sub 2))

let test_dead_gate_elimination () =
  let db = gates_db () in
  (* two AND gates fed from A,B; only the first drives Z *)
  let gate, a, b, z, subs, wire = build_netlist db [ "AND"; "AND" ] in
  let g1, g2 = (List.nth subs 0, List.nth subs 1) in
  let i1, i2, o = sub_pins db g1 in
  wire a i1;
  wire b i2;
  wire o z;
  let j1, j2, _ = sub_pins db g2 in
  wire a j1;
  wire b j2;
  (* g2's output drives nothing: dead *)
  let removed, wires_removed = ok (Opt.eliminate_dead db ~gate) in
  check_int "one dead gate" 1 removed;
  check_int "its two input wires removed" 2 wires_removed;
  check_int "one subgate left" 1
    (List.length (ok (Database.subclass_members db gate "SubGates")));
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let test_duplicate_merge_and_equivalence () =
  let db = gates_db () in
  (* two identical ANDs on (A,B); an OR combines them: OR(x,x) == x, so the
     optimized netlist must compute the same function *)
  let gate, a, b, z, subs, wire = build_netlist db [ "AND"; "AND"; "OR" ] in
  let g1 = List.nth subs 0 and g2 = List.nth subs 1 and g3 = List.nth subs 2 in
  let i1, i2, o1 = sub_pins db g1 in
  let j1, j2, o2 = sub_pins db g2 in
  let k1, k2, o3 = sub_pins db g3 in
  wire a i1;
  wire b i2;
  wire a j1;
  wire b j2;
  wire o1 k1;
  wire o2 k2;
  wire o3 z;
  let before = ok (Sim.truth_table db ~gate) in
  let stats = ok (Opt.optimize db ~gate) in
  check_int "one pair merged" 1 stats.Opt.merged_gates;
  check_int "the duplicate died" 1 stats.Opt.removed_gates;
  check_int "two gates remain" 2
    (List.length (ok (Database.subclass_members db gate "SubGates")));
  let after = ok (Sim.truth_table db ~gate) in
  check_bool "behaviour preserved" true (before = after);
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let test_optimize_fixpoint_on_clean_netlist () =
  let db = gates_db () in
  let gate, a, b, z, subs, wire = build_netlist db [ "NAND" ] in
  let i1, i2, o = sub_pins db (List.hd subs) in
  wire a i1;
  wire b i2;
  wire o z;
  let stats = ok (Opt.optimize db ~gate) in
  check_int "nothing removed" 0 stats.Opt.removed_gates;
  check_int "nothing merged" 0 stats.Opt.merged_gates;
  check_int "single pass suffices" 1 stats.Opt.passes

let test_cascading_death () =
  let db = gates_db () in
  (* g1 feeds g2; neither drives Z (Z is driven by g3): removing g2 makes
     g1 dead in the next pass *)
  let gate, a, b, z, subs, wire = build_netlist db [ "AND"; "OR"; "NOR" ] in
  let g1 = List.nth subs 0 and g2 = List.nth subs 1 and g3 = List.nth subs 2 in
  let i1, i2, o1 = sub_pins db g1 in
  let j1, j2, _o2 = sub_pins db g2 in
  let k1, k2, o3 = sub_pins db g3 in
  wire a i1;
  wire b i2;
  wire o1 j1;
  wire a j2;
  wire a k1;
  wire b k2;
  wire o3 z;
  let stats = ok (Opt.optimize db ~gate) in
  check_int "both dead gates removed" 2 stats.Opt.removed_gates;
  check_bool "took more than one pass" true (stats.Opt.passes > 1);
  check_int "only the live gate remains" 1
    (List.length (ok (Database.subclass_members db gate "SubGates")))

(* The flip-flop is fully live: optimization must not touch it, and its
   set/reset behaviour must survive. *)
let test_flip_flop_untouched () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let stats = ok (Opt.optimize db ~gate:ff) in
  check_int "nothing removed" 0 stats.Opt.removed_gates;
  check_int "nothing merged" 0 stats.Opt.merged_gates;
  check_int "both NORs still there" 2
    (List.length (ok (Database.subclass_members db ff "SubGates")))

let suite =
  ( "optimize",
    [
      case "dead-gate elimination" test_dead_gate_elimination;
      case "duplicate merge preserves behaviour" test_duplicate_merge_and_equivalence;
      case "fixpoint on a clean netlist" test_optimize_fixpoint_on_clean_netlist;
      case "cascading dead-gate removal" test_cascading_death;
      case "flip-flop untouched" test_flip_flop_untouched;
    ] )
