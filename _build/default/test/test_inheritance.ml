open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload

(* C2: updates of the transmitter are instantly visible in inheritors. *)
let test_view_semantics () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  check_value "inherited Length" (Value.Int 4) (ok (Database.get_attr db impl "Length"));
  ok (Database.set_attr db iface "Length" (Value.Int 6));
  check_value "update instantly visible" (Value.Int 6)
    (ok (Database.get_attr db impl "Length"))

(* C1: inherited data must not be updated in the inheritor. *)
let test_write_protection () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  expect_error
    (function Errors.Inherited_readonly _ -> true | _ -> false)
    (Database.set_attr db impl "Length" (Value.Int 9));
  (* own attributes of the inheritor remain writable *)
  ok (Database.set_attr db impl "TimeBehavior" (Value.Int 42));
  check_value "own attr" (Value.Int 42) (ok (Database.get_attr db impl "TimeBehavior"))

(* C1 for subclasses: inherited subclasses cannot be extended from the
   inheritor side. *)
let test_inherited_subclass_readonly () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  expect_error
    (function Errors.Inherited_readonly _ -> true | _ -> false)
    (Database.new_subobject db ~parent:impl ~subclass:"Pins" ())

(* C3: selectivity — only the inheriting clause flows. *)
let test_permeability () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:7 ()) in
  (* TimingProbe inherits TimeBehavior via SomeOf_Gate... *)
  let probe = ok (G.new_timing_probe db ~implementation:impl ~note:"t1") in
  check_value "TimeBehavior flows through SomeOf_Gate" (Value.Int 7)
    (ok (Database.get_attr db probe "TimeBehavior"));
  (* ...but Function is not in the inheriting clause: not even a feature *)
  expect_error
    (function Errors.Unknown_attribute _ -> true | _ -> false)
    (Database.get_attr db probe "Function")

(* C5: interface hierarchies — multi-hop resolution. *)
let test_multi_hop_resolution () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  (* Pins live on the GateInterface_I, two hops above the implementation *)
  let pins = ok (Database.subclass_members db impl "Pins") in
  check_int "pins resolve through two hops" 3 (List.length pins);
  (* deep chains: payload resolves through 8 hops *)
  let db2 = Database.create () in
  ok (W.chain_schema db2 ~depth:8);
  let nodes = ok (W.chain_instance db2 ~depth:8 ~payload:99) in
  let last = List.nth nodes 8 in
  check_value "deep chain read" (Value.Int 99) (ok (Database.get_attr db2 last "Payload"))

(* C4: unbound inheritor = plain generalization (structure, no values). *)
let test_unbound_inheritor () =
  let db = gates_db () in
  let impl = ok (Database.new_object db ~ty:"GateImplementation" ()) in
  check_value "no transmitter: Null" Value.Null (ok (Database.get_attr db impl "Length"));
  check_int "no transmitter: empty subclass" 0
    (List.length (ok (Database.subclass_members db impl "Pins")));
  (* still write-protected: the attribute belongs to the transmitter side *)
  expect_error
    (function Errors.Inherited_readonly _ -> true | _ -> false)
    (Database.set_attr db impl "Length" (Value.Int 1))

let test_bind_validation () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let other_iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  (* double binding rejected *)
  expect_error
    (function Errors.Invalid_binding _ -> true | _ -> false)
    (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:other_iface
       ~inheritor:impl ());
  (* non-inheritor type rejected *)
  let pin_iface = ok (G.new_pin_interface db ~pins:[ G.In ]) in
  expect_error
    (function Errors.Invalid_binding _ -> true | _ -> false)
    (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:iface
       ~inheritor:pin_iface ());
  (* transmitter of the wrong type rejected *)
  let impl2 = ok (Database.new_object db ~ty:"GateImplementation" ()) in
  expect_error
    (function Errors.Invalid_binding _ -> true | _ -> false)
    (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:pin_iface
       ~inheritor:impl2 ())

(* C13: no cycles. *)
let test_cycle_rejected () =
  let db = Database.create () in
  ok (W.chain_schema db ~depth:2);
  (* Node1 value inherits from Node0; try to make a Node1 the transmitter
     of the Node0 it inherits from -- impossible by typing; instead build
     the cycle attempt within one relationship by self-binding *)
  let n0 = ok (Database.new_object db ~ty:"Node0" ~attrs:[ ("Payload", Value.Int 1) ] ()) in
  let n1 = ok (Database.new_object db ~ty:"Node1" ()) in
  let _ = ok (Database.bind db ~via:"AllOf_Node0" ~transmitter:n0 ~inheritor:n1 ()) in
  (* self-cycle via an inheritor-typed transmitter: Node1 is also a valid
     transmitter for AllOf_Node1 (exact type), so bind n2 <- n1 then try
     to close a loop n1 <- n2 (Node2 is not a Node1: rejected as typing);
     the structural cycle check is exercised through self-binding *)
  let n1b = ok (Database.new_object db ~ty:"Node1" ()) in
  expect_error
    (function Errors.Binding_cycle _ | Errors.Invalid_binding _ -> true | _ -> false)
    (Database.bind db ~via:"AllOf_Node0" ~transmitter:n1b ~inheritor:n1b ());
  ignore n1

(* C13 structural: an object can never appear in its own transmitter
   closure, whatever sequence of valid binds is performed. *)
let test_cycle_property () =
  let db = Database.create () in
  ok (W.chain_schema db ~depth:5);
  let nodes = ok (W.chain_instance db ~depth:5 ~payload:3) in
  List.iter
    (fun n ->
      let closure = Inheritance.transmitter_closure (Database.store db) n in
      check_bool "not in own closure" false (List.exists (Surrogate.equal n) closure))
    nodes

(* C7: transmitter updates stamp dependent links stale. *)
let test_staleness_stamping () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let link = List.hd (ok (Database.links_of db iface)) in
  check_bool "initially fresh" false (ok (Database.is_stale db link));
  ok (Database.set_attr db iface "Width" (Value.Int 3));
  check_bool "stale after transmitter update" true (ok (Database.is_stale db link));
  check_bool "note mentions the attribute" true
    (let note = ok (Database.stale_note db link) in
     Helpers.contains note "Width");
  ok (Database.acknowledge db link);
  check_bool "acknowledged" false (ok (Database.is_stale db link));
  (* the update propagated nonetheless (view semantics) *)
  check_value "value visible" (Value.Int 3) (ok (Database.get_attr db impl "Width"));
  (* updating an attribute that is NOT permeable does not stamp *)
  ok (Database.set_attr db impl "TimeBehavior" (Value.Int 5));
  check_bool "probe-free update leaves link fresh" false (ok (Database.is_stale db link))

(* staleness propagates transitively through permeable links only *)
let test_staleness_transitive () =
  let db = Database.create () in
  ok (Compo_scenarios.Workload.chain_schema db ~depth:3);
  let nodes = ok (Compo_scenarios.Workload.chain_instance db ~depth:3 ~payload:1) in
  let root = List.hd nodes in
  let store = Database.store db in
  let stamped = Inheritance.stamp_stale store root ~attr:"Payload" ~note:"test" in
  check_int "all three links stamped" 3 (List.length stamped);
  List.iter
    (fun link -> check_bool "stamped link reports stale" true (ok (Inheritance.is_stale store link)))
    stamped;
  let stamped2 = Inheritance.stamp_stale store root ~attr:"Nonexistent" ~note:"test" in
  check_int "non-permeable attr stamps nothing" 0 (List.length stamped2)

let test_unbind_loses_values () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  ok (Database.unbind db impl);
  check_value "values gone" Value.Null (ok (Database.get_attr db impl "Length"));
  (* can rebind afterwards *)
  let _ = ok (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:iface ~inheritor:impl ()) in
  check_value "values back" (Value.Int 4) (ok (Database.get_attr db impl "Length"))

let test_delete_transmitter_restricted () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  expect_error
    (function Errors.Delete_restricted _ -> true | _ -> false)
    (Database.delete db iface);
  (* forcing unbinds the inheritors *)
  ok (Database.delete db ~force:true iface);
  check_bool "impl survives" true (Store.mem (Database.store db) impl);
  check_value "impl lost the values" Value.Null (ok (Database.get_attr db impl "Length"))

let test_inheritors_and_closures () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let i1 = ok (G.new_implementation db ~interface:iface ()) in
  let i2 = ok (G.new_implementation db ~interface:iface ()) in
  let inheritors = ok (Database.inheritors_of db iface) in
  check_int "two implementations" 2 (List.length inheritors);
  check_bool "closure contains both" true
    (let closure = Inheritance.inheritor_closure (Database.store db) iface in
     List.exists (Surrogate.equal i1) closure && List.exists (Surrogate.equal i2) closure)

(* the copy-in baseline captures values but goes stale (section 2 problem 1) *)
let test_materialize_baseline () =
  let db = gates_db () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let snap = ok (Inheritance.materialize (Database.store db) impl) in
  check_value "snapshot has Length" (Value.Int 4)
    (List.assoc "Length" snap.Inheritance.snap_attrs);
  ok (Database.set_attr db iface "Length" (Value.Int 8));
  (* the snapshot is now stale while the view is fresh *)
  check_value "snapshot stale" (Value.Int 4)
    (List.assoc "Length" snap.Inheritance.snap_attrs);
  check_value "view fresh" (Value.Int 8) (ok (Database.get_attr db impl "Length"))

(* Property: for random permeability subsets, an attribute resolves from
   the transmitter iff it is in the inheriting clause. *)
let prop_selective_permeability =
  QCheck.Test.make ~name:"selective permeability (C3)" ~count:50
    QCheck.(pair bool bool)
    (fun (pass_a, pass_b) ->
      QCheck.assume (pass_a || pass_b);
      let db = Database.create () in
      let attr name = { Schema.attr_name = name; attr_domain = Domain.Integer } in
      let open Schema in
      Result.get_ok
        (Database.define_obj_type db
           {
             ot_name = "T";
             ot_inheritor_in = None;
             ot_attrs = [ attr "A"; attr "B" ];
             ot_subclasses = [];
             ot_subrels = [];
             ot_constraints = [];
           });
      let inheriting =
        (if pass_a then [ "A" ] else []) @ if pass_b then [ "B" ] else []
      in
      Result.get_ok
        (Database.define_inher_rel_type db
           {
             it_name = "R";
             it_transmitter = "T";
             it_inheritor = None;
             it_inheriting = inheriting;
             it_attrs = [];
         it_subclasses = [];
             it_constraints = [];
           });
      Result.get_ok
        (Database.define_obj_type db
           {
             ot_name = "I";
             ot_inheritor_in = Some "R";
             ot_attrs = [];
             ot_subclasses = [];
             ot_subrels = [];
             ot_constraints = [];
           });
      let t =
        Result.get_ok
          (Database.new_object db ~ty:"T"
             ~attrs:[ ("A", Value.Int 1); ("B", Value.Int 2) ]
             ())
      in
      let i = Result.get_ok (Database.new_object db ~ty:"I" ()) in
      let _ = Result.get_ok (Database.bind db ~via:"R" ~transmitter:t ~inheritor:i ()) in
      let visible name = Result.is_ok (Database.get_attr db i name) in
      Bool.equal (visible "A") pass_a && Bool.equal (visible "B") pass_b)

(* Property: view semantics — after arbitrary transmitter updates the
   inheritor always reads the transmitter's current value (C2). *)
let prop_view_always_fresh =
  QCheck.Test.make ~name:"view semantics always fresh (C2)" ~count:50
    QCheck.(small_list small_int)
    (fun updates ->
      let db = Database.create () in
      Result.get_ok (W.chain_schema db ~depth:3);
      let nodes = Result.get_ok (W.chain_instance db ~depth:3 ~payload:0) in
      let root = List.hd nodes in
      let leaf = List.nth nodes 3 in
      List.for_all
        (fun v ->
          Result.get_ok (Database.set_attr db root "Payload" (Value.Int v));
          Value.equal (Result.get_ok (Database.get_attr db leaf "Payload")) (Value.Int v))
        updates)



(* Section 4.1: "the inheritance relationship may possess attributes,
   subobjects and constraints" -- a link carrying adaptation-note
   subobjects. *)
let test_link_subobjects () =
  let db = Database.create () in
  let attr name d = { Schema.attr_name = name; attr_domain = d } in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Iface";
         ot_inheritor_in = None;
         ot_attrs = [ attr "L" Domain.Integer ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok
    (Database.define_inher_rel_type db
       {
         Schema.it_name = "R";
         it_transmitter = "Iface";
         it_inheritor = None;
         it_inheriting = [ "L" ];
         it_attrs = [ attr "ReviewedBy" Domain.String ];
         it_subclasses =
           [
             {
               Schema.sc_name = "Notes";
               sc_member =
                 Schema.Inline
                   {
                     Schema.ot_name = "";
                     ot_inheritor_in = None;
                     ot_attrs = [ attr "Text" Domain.String ];
                     ot_subclasses = [];
                     ot_subrels = [];
                     ot_constraints = [];
                   };
             };
           ];
         it_constraints = [];
       });
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Impl";
         ot_inheritor_in = Some "R";
         ot_attrs = [];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  let iface = ok (Database.new_object db ~ty:"Iface" ~attrs:[ ("L", Value.Int 1) ] ()) in
  let impl = ok (Database.new_object db ~ty:"Impl" ()) in
  let link =
    ok
      (Database.bind db ~via:"R" ~transmitter:iface ~inheritor:impl
         ~attrs:[ ("ReviewedBy", Value.Str "alice") ]
         ())
  in
  (* the link is an object: attributes and subobjects of its own *)
  check_value "link attribute" (Value.Str "alice")
    (ok (Database.get_attr db link "ReviewedBy"));
  let note =
    ok
      (Database.new_subobject db ~parent:link ~subclass:"Notes"
         ~attrs:[ ("Text", Value.Str "re-check clearances") ]
         ())
  in
  check_int "note attached to the link" 1
    (List.length (ok (Database.subclass_members db link "Notes")));
  check_value "note text" (Value.Str "re-check clearances")
    (ok (Database.get_attr db note "Text"));
  (* unbinding deletes the link and cascades to its notes *)
  ok (Database.unbind db impl);
  check_bool "link gone" false (Store.mem (Database.store db) link);
  check_bool "note gone with the link" false (Store.mem (Database.store db) note);
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let suite =
  ( "inheritance",
    [
      case "view semantics: transmitter updates visible (C2)" test_view_semantics;
      case "write protection of inherited attrs (C1)" test_write_protection;
      case "inherited subclasses read-only (C1)" test_inherited_subclass_readonly;
      case "selective permeability (C3)" test_permeability;
      case "multi-hop resolution (C5)" test_multi_hop_resolution;
      case "unbound inheritor = generalization (C4)" test_unbound_inheritor;
      case "bind validation" test_bind_validation;
      case "binding cycles rejected (C13)" test_cycle_rejected;
      case "no object in its own closure (C13)" test_cycle_property;
      case "staleness stamping (C7)" test_staleness_stamping;
      case "staleness transitive through permeable links" test_staleness_transitive;
      case "unbind loses values, rebind restores" test_unbind_loses_values;
      case "deleting a transmitter is restricted" test_delete_transmitter_restricted;
      case "inheritors and closures" test_inheritors_and_closures;
      case "materialized copy goes stale (E1 baseline)" test_materialize_baseline;
      QCheck_alcotest.to_alcotest prop_selective_permeability;
      QCheck_alcotest.to_alcotest prop_view_always_fresh;
      case "links carry attributes and subobjects (section 4.1)" test_link_subobjects;
    ] )
