open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload

(* A schema where an inheritor keeps a derived local attribute: Derived =
   2 * Payload, with Payload inherited.  The paper's "semi-automatical
   correction": a trigger recomputes Derived when the transmitter changes. *)
let derived_db () =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Source";
         ot_inheritor_in = None;
         ot_attrs = [ { Schema.attr_name = "Payload"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok
    (Database.define_inher_rel_type db
       {
         Schema.it_name = "AllOf_Source";
         it_transmitter = "Source";
         it_inheritor = None;
         it_inheriting = [ "Payload" ];
         it_attrs = [];
         it_subclasses = [];
         it_constraints = [];
       });
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Derived";
         ot_inheritor_in = Some "AllOf_Source";
         ot_attrs = [ { Schema.attr_name = "Double"; attr_domain = Domain.Integer } ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  db

let setup_derived () =
  let db = derived_db () in
  let eng = Triggers.create db in
  let src = ok (Database.new_object db ~ty:"Source" ~attrs:[ ("Payload", Value.Int 3) ] ()) in
  let d = ok (Database.new_object db ~ty:"Derived" ()) in
  let _ = ok (Triggers.bind eng ~via:"AllOf_Source" ~transmitter:src ~inheritor:d ()) in
  (db, eng, src, d)

let test_recompute_on_stale () =
  let db, eng, src, d = setup_derived () in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "keep-double-fresh";
         r_pattern = Triggers.On_stale { via = Some "AllOf_Source"; attr = Some "Payload" };
         r_condition = None;
         r_action = Triggers.recompute ~attr:"Double" Expr.(int 2 * path [ "Payload" ]);
       });
  ok (Triggers.set_attr eng src "Payload" (Value.Int 10));
  check_value "derived attribute recomputed" (Value.Int 20)
    (ok (Database.get_attr db d "Double"));
  check_int "rule fired once" 1 (List.length (Triggers.fired eng));
  (* a non-permeable update does not fire the stale rule *)
  Triggers.clear_fired eng;
  ok (Triggers.set_attr eng d "Double" (Value.Int 99));
  check_bool "no stale firing for local writes" true
    (List.for_all (fun (name, _) -> name <> "keep-double-fresh") (Triggers.fired eng))

let test_acknowledge_after_repair () =
  let db, eng, src, _ = setup_derived () in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "repair";
         r_pattern = Triggers.On_stale { via = None; attr = None };
         r_condition = None;
         r_action = Triggers.recompute ~attr:"Double" Expr.(int 2 * path [ "Payload" ]);
       });
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "ack";
         r_pattern = Triggers.On_stale { via = None; attr = None };
         r_condition = None;
         r_action = Triggers.acknowledge_link;
       });
  ok (Triggers.set_attr eng src "Payload" (Value.Int 7));
  let link = List.hd (ok (Database.links_of db src)) in
  check_bool "adaptation acknowledged automatically" false (ok (Database.is_stale db link))

let test_condition_filters () =
  let db, eng, src, d = setup_derived () in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "only-large";
         r_pattern = Triggers.On_stale { via = None; attr = None };
         r_condition = Some Expr.(path [ "Payload" ] > int 100);
         r_action = Triggers.recompute ~attr:"Double" Expr.(int 2 * path [ "Payload" ]);
       });
  ok (Triggers.set_attr eng src "Payload" (Value.Int 5));
  check_value "small update filtered out" Value.Null (ok (Database.get_attr db d "Double"));
  ok (Triggers.set_attr eng src "Payload" (Value.Int 500));
  check_value "large update fires" (Value.Int 1000) (ok (Database.get_attr db d "Double"))

let test_update_pattern_and_type_filter () =
  let db, eng, src, _ = setup_derived () in
  let hits = ref [] in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "watch-sources";
         r_pattern = Triggers.On_update { ty = Some "Source"; attr = Some "Payload" };
         r_condition = None;
         r_action = (fun _ e -> hits := e :: !hits; Ok ());
       });
  ok (Triggers.set_attr eng src "Payload" (Value.Int 1));
  (* a Derived-typed update must not match the Source pattern *)
  let d2 = ok (Database.new_object db ~ty:"Derived" ()) in
  ok (Triggers.set_attr eng d2 "Double" (Value.Int 2));
  check_int "only the Source update matched" 1 (List.length !hits)

let test_bind_unbind_events () =
  let db, eng, src, _ = setup_derived () in
  let events = ref [] in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "binding-audit";
         r_pattern = Triggers.On_bind { via = Some "AllOf_Source" };
         r_condition = None;
         r_action = (fun _ e -> events := e :: !events; Ok ());
       });
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "unbinding-audit";
         r_pattern = Triggers.On_unbind;
         r_condition = None;
         r_action = (fun _ e -> events := e :: !events; Ok ());
       });
  let d2 = ok (Database.new_object db ~ty:"Derived" ()) in
  let _ = ok (Triggers.bind eng ~via:"AllOf_Source" ~transmitter:src ~inheritor:d2 ()) in
  ok (Triggers.unbind eng d2);
  check_int "bind + unbind observed" 2 (List.length !events)

let test_cascade_depth_limit () =
  let db = derived_db () in
  let eng = Triggers.create ~max_depth:8 db in
  let src = ok (Database.new_object db ~ty:"Source" ~attrs:[ ("Payload", Value.Int 0) ] ()) in
  (* a rule that re-triggers itself through the engine: must be cut off *)
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "runaway";
         r_pattern = Triggers.On_update { ty = Some "Source"; attr = Some "Payload" };
         r_condition = None;
         r_action =
           (fun _ e ->
             let target = Triggers.event_target e in
             let next =
               match Database.get_attr db target "Payload" with
               | Ok (Value.Int i) -> i + 1
               | _ -> 0
             in
             Triggers.set_attr eng target "Payload" (Value.Int next));
       });
  expect_error
    (function Errors.Eval_error _ -> true | _ -> false)
    (Triggers.set_attr eng src "Payload" (Value.Int 1))

let test_transitive_stale_events () =
  (* a 3-level chain: one update at the root fires one stale event per
     stamped link *)
  let db = Database.create () in
  ok (W.chain_schema db ~depth:3);
  let nodes = ok (W.chain_instance db ~depth:3 ~payload:1) in
  let eng = Triggers.create db in
  let stale = ref 0 in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "count-stale";
         r_pattern = Triggers.On_stale { via = None; attr = Some "Payload" };
         r_condition = None;
         r_action = (fun _ _ -> incr stale; Ok ());
       });
  ok (Triggers.set_attr eng (List.hd nodes) "Payload" (Value.Int 9));
  check_int "three links stamped, three events" 3 !stale

let test_rule_management () =
  let db = derived_db () in
  let eng = Triggers.create db in
  let rule name =
    {
      Triggers.r_name = name;
      r_pattern = Triggers.On_unbind;
      r_condition = None;
      r_action = (fun _ _ -> Ok ());
    }
  in
  ok (Triggers.add_rule eng (rule "a"));
  ok (Triggers.add_rule eng (rule "b"));
  expect_error any_error (Triggers.add_rule eng (rule "a"));
  Alcotest.(check (list string)) "rules listed" [ "a"; "b" ] (Triggers.rules eng);
  ok (Triggers.remove_rule eng "a");
  expect_error any_error (Triggers.remove_rule eng "a");
  Alcotest.(check (list string)) "rule removed" [ "b" ] (Triggers.rules eng)

let test_gates_adaptation_scenario () =
  (* the paper's scenario: a composite's placed component goes stale when
     the catalog part changes; a rule rewrites the note so the designer
     knows which procedure to run *)
  let db = gates_db () in
  let eng = Triggers.create db in
  let iface = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let use = ok (G.use_component db ~composite:top ~component_interface:iface ~x:0 ~y:0) in
  ok
    (Triggers.add_rule eng
       {
         Triggers.r_name = "placement-review";
         r_pattern = Triggers.On_stale { via = Some "AllOf_GateInterface"; attr = Some "Width" };
         r_condition = None;
         r_action = Triggers.log_note ~note:"re-run placement check";
       });
  ok (Triggers.set_attr eng iface "Width" (Value.Int 9));
  let link = Option.get (ok (Inheritance.binding_of (Database.store db) use)) in
  check_string "note rewritten by the rule" "re-run placement check"
    (ok (Database.stale_note db link.Store.b_link));
  check_bool "still flagged for the designer" true (ok (Database.is_stale db link.Store.b_link))

let suite =
  ( "triggers",
    [
      case "recompute derived attr on staleness" test_recompute_on_stale;
      case "automatic acknowledge after repair" test_acknowledge_after_repair;
      case "conditions filter events" test_condition_filters;
      case "update pattern with type filter" test_update_pattern_and_type_filter;
      case "bind/unbind events" test_bind_unbind_events;
      case "runaway cascades are cut off" test_cascade_depth_limit;
      case "transitive staleness fires per link" test_transitive_stale_events;
      case "rule management" test_rule_management;
      case "gates adaptation scenario (paper section 2)" test_gates_adaptation_scenario;
    ] )
