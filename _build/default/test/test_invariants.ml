(* Structural-invariant hardening: random operation sequences must leave
   the store healthy (Store.check_invariants = []), whatever interleaving
   of creates, binds, unbinds, updates, deletes, and clones occurs. *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates

type op = int * int * int (* opcode, two operand seeds *)

let apply_op db ifaces impls (code, a, b) =
  let pick xs seed =
    match !xs with [] -> None | l -> Some (List.nth l (seed mod List.length l))
  in
  let store = Database.store db in
  match code mod 8 with
  | 0 ->
      (* new interface *)
      (match G.nor_interface db with
      | Ok i -> ifaces := i :: !ifaces
      | Error _ -> ())
  | 1 -> (
      (* new implementation bound to some interface *)
      match pick ifaces a with
      | Some iface -> (
          match G.new_implementation db ~interface:iface ~time_behavior:(b mod 9) () with
          | Ok impl -> impls := impl :: !impls
          | Error _ -> ())
      | None -> ())
  | 2 -> (
      (* component use *)
      match (pick impls a, pick ifaces b) with
      | Some composite, Some component_interface ->
          ignore (G.use_component db ~composite ~component_interface ~x:a ~y:b)
      | _ -> ())
  | 3 -> (
      (* update an interface attribute (stamps links stale) *)
      match pick ifaces a with
      | Some iface -> ignore (Database.set_attr db iface "Length" (Value.Int (b mod 50)))
      | None -> ())
  | 4 -> (
      (* unbind an implementation *)
      match pick impls a with
      | Some impl -> ignore (Database.unbind db impl)
      | None -> ())
  | 5 -> (
      (* rebind an unbound implementation *)
      match (pick impls a, pick ifaces b) with
      | Some impl, Some iface ->
          ignore
            (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:iface
               ~inheritor:impl ())
      | _ -> ())
  | 6 -> (
      (* force-delete something *)
      if b mod 2 = 0 then (
        match pick impls a with
        | Some impl ->
            impls := List.filter (fun i -> not (Surrogate.equal i impl)) !impls;
            ignore (Database.delete db ~force:true impl)
        | None -> ())
      else
        match pick ifaces a with
        | Some iface ->
            ifaces := List.filter (fun i -> not (Surrogate.equal i iface)) !ifaces;
            ignore (Database.delete db ~force:true iface)
        | None -> ())
  | 7 -> (
      (* deep copy *)
      match pick impls a with
      | Some impl -> (
          match Compo_versions.Versioned.clone_object store impl with
          | Ok c -> impls := c :: !impls
          | Error _ -> ())
      | None -> ())
  | _ -> ()

let run_ops ops =
  let db = gates_db () in
  let ifaces = ref [] and impls = ref [] in
  List.iter (apply_op db ifaces impls) ops;
  Store.check_invariants (Database.store db)

let op_gen =
  QCheck.Gen.(triple (int_bound 7) (int_bound 999) (int_bound 999))

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random op sequences keep store invariants" ~count:60
    (QCheck.make
       QCheck.Gen.(list_size (int_range 5 40) op_gen)
       ~print:(fun ops ->
         String.concat ";"
           (List.map (fun (c, a, b) -> Printf.sprintf "(%d,%d,%d)" c a b) ops)))
    (fun ops ->
      match run_ops ops with
      | [] -> true
      | problems ->
          QCheck.Test.fail_reportf "invariants violated:\n%s"
            (String.concat "\n" problems))

let test_healthy_after_scenarios () =
  let check what db =
    match Store.check_invariants (Database.store db) with
    | [] -> ()
    | ps -> Alcotest.failf "%s: %s" what (String.concat "; " ps)
  in
  let db = full_db () in
  let _ = ok (G.flip_flop db) in
  let _ = ok (Compo_scenarios.Workload.screwed_structure db ~girders:4 ~bores_per_joint:2) in
  let _ = ok (Compo_scenarios.Workload.random_netlist db ~seed:42 ~gates:20) in
  check "combined scenarios" db

let test_healthy_after_cascade_delete () =
  let db = gates_db () in
  let ff = ok (G.flip_flop db) in
  let sub = List.hd (ok (Database.subclass_members db ff "SubGates")) in
  let pin = ok (G.pin db sub 0) in
  ok (Database.delete db ~force:true pin);
  ok (Database.delete db ff);
  Alcotest.(check (list string))
    "healthy after cascades" []
    (Store.check_invariants (Database.store db))

let test_healthy_after_codec_roundtrip () =
  let db = gates_db () in
  let _ = ok (G.flip_flop db) in
  let iface = ok (G.nor_interface db) in
  let _ = ok (G.nor_implementation db ~interface:iface) in
  let blob = Compo_storage.Codec.encode_store (Database.store db) in
  let store2 = ok (Compo_storage.Codec.decode_store (Database.schema db) blob) in
  Alcotest.(check (list string)) "healthy after decode" [] (Store.check_invariants store2)

let suite =
  ( "invariants",
    [
      QCheck_alcotest.to_alcotest prop_random_ops_keep_invariants;
      case "healthy after combined scenarios" test_healthy_after_scenarios;
      case "healthy after cascade deletes" test_healthy_after_cascade_delete;
      case "healthy after codec round-trip" test_healthy_after_codec_roundtrip;
    ] )
