open Compo_core
open Helpers
module P = Compo_ddl.Parser
module E = Compo_ddl.Elaborate
module Pretty = Compo_ddl.Pretty

let test_lexer_basics () =
  let toks = ok (Compo_ddl.Lexer.tokenize "obj-type Flip-Flop = end; -- c\n 12 3.5 <= <> \"s\"") in
  let kinds = List.map (fun t -> t.Compo_ddl.Token.kind) toks in
  Alcotest.(check int) "token count" 11 (List.length kinds);
  (match kinds with
  | Compo_ddl.Token.Kw "obj-type"
    :: Compo_ddl.Token.Ident "Flip-Flop"
    :: Compo_ddl.Token.Eq
    :: Compo_ddl.Token.Kw "end"
    :: Compo_ddl.Token.Semi
    :: Compo_ddl.Token.Int 12
    :: Compo_ddl.Token.Real 3.5
    :: Compo_ddl.Token.Le
    :: Compo_ddl.Token.Ne
    :: Compo_ddl.Token.Str "s"
    :: Compo_ddl.Token.Eof :: [] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_comments_and_errors () =
  let toks = ok (Compo_ddl.Lexer.tokenize "/* outer /* nested */ still */ x") in
  Alcotest.(check int) "comment skipped" 2 (List.length toks);
  expect_error
    (function Errors.Parse_error _ -> true | _ -> false)
    (Compo_ddl.Lexer.tokenize "/* unterminated");
  expect_error
    (function Errors.Parse_error _ -> true | _ -> false)
    (Compo_ddl.Lexer.tokenize "a ? b")

let test_parse_expr_forms () =
  let roundtrip src = Expr.to_string (ok (P.parse_expr src)) in
  (* trailing where attaches to the count *)
  check_string "trailing where"
    "(count (Pins) where (Pins.InOut = IN) = 2)"
    (roundtrip "count (Pins) = 2 where Pins.InOut = IN");
  check_string "hash form" "(count (Bolt) = 1)" (roundtrip "#s in Bolt = 1");
  check_string "precedence"
    "(Length < ((100 * Height) * Width))"
    (roundtrip "Length < 100 * Height * Width");
  check_string "for with two binders"
    "for (s in Bolt, n in Nut): (s.Diameter = n.Diameter)"
    (roundtrip "for (s in Bolt, n in Nut): s.Diameter = n.Diameter");
  check_string "and/or precedence" "(a or (b and c))" (roundtrip "a or b and c");
  check_string "sum" "(x = (y + sum (Bores.Length)))"
    (roundtrip "x = y + sum (Bores.Length)")

let test_parse_errors_have_positions () =
  (match E.load_string (Database.create ()) "obj-type = end;" with
  | Error (Errors.Parse_error { line = 1; col; _ }) ->
      check_bool "column recorded" true (col > 1)
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "expected parse error");
  expect_error
    (function Errors.Parse_error _ -> true | _ -> false)
    (P.parse_expr "1 +")

let test_elaborate_small_schema () =
  let db = Database.create () in
  ok
    (E.load_string db
       {|
         domain Kind = (A, B);
         obj-type Thing =
           attributes:
             Name: string;
             Kind: Kind;
             Score: integer;
           constraints:
             positive: Score >= 0;
             kinded: Kind = A or Kind = B;
         end Thing;
       |});
  let thing =
    ok
      (Database.new_object db ~ty:"Thing"
         ~attrs:
           [
             ("Name", Value.Str "t");
             ("Kind", Value.Enum_case "A");
             ("Score", Value.Int 3);
           ]
         ())
  in
  check_no_violations "constraints hold" (ok (Database.validate db thing));
  (* enum literal A was resolved to a constant, not a path *)
  ok (Database.set_attr db thing "Score" (Value.Int (-1)));
  check_int "violation detected" 1 (List.length (ok (Database.validate db thing)))

let test_duplicate_load_rejected () =
  let db = Database.create () in
  ok (E.load_string db "obj-type T = attributes: X: integer; end T;");
  expect_error any_error
    (E.load_string db "obj-type T = attributes: X: integer; end T;")

let test_roundtrip_gates () =
  (* programmatic schema -> DDL -> fresh database -> DDL again: fixpoint *)
  let db = gates_db () in
  let printed = Pretty.schema_to_string (Database.schema db) in
  let db2 = Database.create () in
  ok (E.load_string db2 printed);
  let printed2 = Pretty.schema_to_string (Database.schema db2) in
  check_string "pretty-parse-pretty fixpoint" printed printed2

let test_roundtrip_steel () =
  let db = steel_db () in
  let printed = Pretty.schema_to_string (Database.schema db) in
  let db2 = Database.create () in
  ok (E.load_string db2 printed);
  check_string "pretty-parse-pretty fixpoint" printed
    (Pretty.schema_to_string (Database.schema db2))

(* Property: pretty -> parse of random constraint expressions over a fixed
   vocabulary is the identity (modulo the printer's normal form). *)
let prop_expr_roundtrip =
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun i -> Expr.Const (Value.Int i)) QCheck.Gen.small_nat;
        QCheck.Gen.oneofl
          [ Expr.Path [ "Length" ]; Expr.Path [ "Pins"; "InOut" ]; Expr.Sum [ "Bores"; "Length" ] ];
      ]
  in
  let rec gen_expr depth =
    if depth = 0 then leaf
    else
      QCheck.Gen.frequency
        [
          (2, leaf);
          ( 3,
            QCheck.Gen.map3
              (fun op a b -> Expr.Binop (op, a, b))
              (QCheck.Gen.oneofl
                 [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Eq; Expr.Lt; Expr.Ge ])
              (gen_expr (depth - 1))
              (gen_expr (depth - 1)) );
          ( 1,
            QCheck.Gen.map
              (fun a -> Expr.Forall ([ ("x", [ "Bores" ]) ], a))
              (gen_expr (depth - 1)) );
        ]
  in
  let arbitrary =
    QCheck.make (gen_expr 4) ~print:(fun e -> Pretty.expr_to_string e)
  in
  QCheck.Test.make ~name:"expression print/parse round-trip" ~count:200 arbitrary
    (fun e ->
      match P.parse_expr (Pretty.expr_to_string e) with
      | Ok e' ->
          (* compare via the printer's normal form *)
          String.equal (Pretty.expr_to_string e) (Pretty.expr_to_string e')
      | Error _ -> false)



let expect_parse_error src =
  expect_error
    (function Errors.Parse_error _ -> true | _ -> false)
    (P.parse src)

let test_malformed_declarations () =
  (* missing '=' *)
  expect_parse_error "obj-type T attributes: X: integer; end T;";
  (* missing end *)
  expect_parse_error "obj-type T = attributes: X: integer;";
  (* rel-type without relates *)
  expect_parse_error "rel-type R = attributes: X: integer; end R;";
  (* inher-rel-type missing inheriting *)
  expect_parse_error
    "inher-rel-type R = transmitter: object-of-type T; inheritor: object; end R;";
  (* unknown section keyword *)
  expect_parse_error "obj-type T = bogus-section: X; end T;";
  (* garbage domain *)
  expect_parse_error "obj-type T = attributes: X: 42; end T;"

let test_elaboration_errors_surface () =
  let db = Database.create () in
  (* unknown member type in a subclass *)
  expect_error any_error
    (E.load_string db "obj-type T = types-of-subclasses: Xs: Nowhere; end T;");
  (* unknown rel type in a subrel *)
  expect_error any_error
    (E.load_string db "obj-type U = types-of-subrels: Rs: NoRel; end U;");
  (* inheriting names a missing transmitter feature *)
  ok (E.load_string db "obj-type V = attributes: A: integer; end V;");
  expect_error any_error
    (E.load_string db
       "inher-rel-type RV = transmitter: object-of-type V; inheritor: object; inheriting: B; end RV;")

let test_comment_only_and_empty_inputs () =
  let db = Database.create () in
  ok (E.load_string db "/* nothing to see */");
  ok (E.load_string db "");
  ok (E.load_string db "-- just a remark\n")

let test_enum_literal_scoping () =
  (* a quantifier variable shadows an enum case of the same name: the
     variable wins, the constant is not substituted *)
  let db = Database.create () in
  ok
    (E.load_string db
       {|
         domain Color = (RED, GREEN);
         obj-type Dot = attributes: C: Color; end Dot;
         obj-type Board =
           attributes:
             X: integer;
           types-of-subclasses:
             Dots: Dot;
           constraints:
             all_red: for RED in Dots: RED.C = RED.C;
             has_red: count (Dots) >= 1 where Dots.C = RED;
         end Board;
       |});
  let board = ok (Database.new_object db ~ty:"Board" ~attrs:[ ("X", Value.Int 1) ] ()) in
  let _ =
    ok
      (Database.new_subobject db ~parent:board ~subclass:"Dots"
         ~attrs:[ ("C", Value.Enum_case "RED") ]
         ())
  in
  check_no_violations "shadowing resolved in favour of the binder"
    (ok (Database.validate db board))



(* Robustness: the parser must return Parse_error on garbage, never raise. *)
let prop_parser_never_raises =
  let token_soup =
    QCheck.Gen.(
      map (String.concat " ")
        (list_size (int_bound 30)
           (oneofl
              [
                "obj-type"; "rel-type"; "end"; "attributes:"; "integer";
                "T"; "X"; "="; ";"; ":"; "("; ")"; ","; "."; "count"; "for";
                "in"; "where"; "42"; "3.5"; "\"s\""; "<="; "+"; "-"; "set-of";
                "inheritor-in"; "relates:"; "object"; "object-of-type";
              ])))
  in
  QCheck.Test.make ~name:"parser total on token soup" ~count:500
    (QCheck.make token_soup ~print:Fun.id) (fun src ->
      match P.parse src with
      | Ok _ | Error (Errors.Parse_error _) -> true
      | Error _ -> false
      | exception _ -> false)

let prop_lexer_never_raises =
  QCheck.Test.make ~name:"lexer total on random bytes" ~count:500
    QCheck.(string_gen (QCheck.Gen.char_range ' ' '~'))
    (fun src ->
      match Compo_ddl.Lexer.tokenize src with
      | Ok _ | Error (Errors.Parse_error _) -> true
      | Error _ -> false
      | exception _ -> false)



let test_inher_subclasses_roundtrip () =
  (* section 4.1: links may possess subobjects; the DDL carries them *)
  let db = Database.create () in
  ok
    (E.load_string db
       {|
         obj-type Iface = attributes: L: integer; end Iface;
         inher-rel-type R =
           transmitter: object-of-type Iface;
           inheritor: object;
           inheriting: L;
           attributes:
             ReviewedBy: string;
           types-of-subclasses:
             Notes:
               attributes:
                 Text: string;
         end R;
         obj-type Impl = inheritor-in: R; end Impl;
       |});
  let printed = Pretty.schema_to_string (Database.schema db) in
  let db2 = Database.create () in
  ok (E.load_string db2 printed);
  check_string "inher subclasses round-trip" printed
    (Pretty.schema_to_string (Database.schema db2));
  (* and they work end to end from the loaded schema *)
  let iface = ok (Database.new_object db2 ~ty:"Iface" ~attrs:[ ("L", Value.Int 1) ] ()) in
  let impl = ok (Database.new_object db2 ~ty:"Impl" ()) in
  let link = ok (Database.bind db2 ~via:"R" ~transmitter:iface ~inheritor:impl ()) in
  let _ =
    ok
      (Database.new_subobject db2 ~parent:link ~subclass:"Notes"
         ~attrs:[ ("Text", Value.Str "n") ]
         ())
  in
  check_int "note attached" 1 (List.length (ok (Database.subclass_members db2 link "Notes")))

let suite =
  ( "ddl",
    [
      case "lexer basics" test_lexer_basics;
      case "comments and lexical errors" test_lexer_comments_and_errors;
      case "expression forms (paper syntax)" test_parse_expr_forms;
      case "parse errors carry positions" test_parse_errors_have_positions;
      case "elaboration of a small schema" test_elaborate_small_schema;
      case "duplicate load rejected" test_duplicate_load_rejected;
      case "round-trip: gates schema" test_roundtrip_gates;
      case "round-trip: steel schema" test_roundtrip_steel;
      QCheck_alcotest.to_alcotest prop_expr_roundtrip;
      case "malformed declarations rejected" test_malformed_declarations;
      case "elaboration errors surface" test_elaboration_errors_surface;
      case "comment-only and empty inputs" test_comment_only_and_empty_inputs;
      case "enum literals vs binder scoping" test_enum_literal_scoping;
      QCheck_alcotest.to_alcotest prop_parser_never_raises;
      QCheck_alcotest.to_alcotest prop_lexer_never_raises;
      case "inher-rel subclasses round-trip" test_inher_subclasses_roundtrip;
    ] )
