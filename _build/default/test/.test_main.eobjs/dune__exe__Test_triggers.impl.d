test/test_triggers.ml: Alcotest Compo_core Compo_scenarios Database Domain Errors Expr Helpers Inheritance List Option Schema Store Triggers Value
