test/test_stress.ml: Alcotest Compo_core Compo_scenarios Compo_storage Composite Database Filename Fun Helpers List Store Sys Value
