test/test_ddl_paper.ml: Alcotest Compo_core Compo_ddl Compo_scenarios Constraints Database Errors Helpers List Schema Value
