test/test_store.ml: Alcotest Compo_core Compo_scenarios Database Errors Helpers List Store Surrogate Value
