test/test_eval.ml: Compo_core Compo_scenarios Database Errors Eval Expr Helpers List Value
