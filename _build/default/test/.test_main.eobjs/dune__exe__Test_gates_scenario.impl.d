test/test_gates_scenario.ml: Alcotest Compo_core Compo_scenarios Database Eval Expr Helpers List Option Surrogate Value
