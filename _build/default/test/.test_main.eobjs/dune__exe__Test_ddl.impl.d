test/test_ddl.ml: Alcotest Compo_core Compo_ddl Database Errors Expr Fun Helpers List QCheck QCheck_alcotest String Value
