test/test_optimize.ml: Alcotest Compo_core Compo_scenarios Database Helpers List Store Value
