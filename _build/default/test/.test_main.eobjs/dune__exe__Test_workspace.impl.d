test/test_workspace.ml: Access_control Alcotest Compo_core Compo_scenarios Compo_txn Compo_workspace Database Errors Helpers List Lock Option Store Surrogate Transaction Value Workspace
