test/test_index.ml: Alcotest Array Compo_core Compo_storage Database Domain Errors Expr Filename Helpers Index List QCheck QCheck_alcotest Query Schema Store Surrogate Sys Value
