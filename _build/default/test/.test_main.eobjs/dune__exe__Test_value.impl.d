test/test_value.ml: Alcotest Compo_core Domain Helpers List Option QCheck QCheck_alcotest Surrogate Value
