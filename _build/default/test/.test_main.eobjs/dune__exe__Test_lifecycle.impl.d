test/test_lifecycle.ml: Alcotest Compo_core Compo_scenarios Compo_storage Compo_txn Compo_versions Compo_workspace Database Filename Helpers Inheritance List Option Store Sys Triggers Value
