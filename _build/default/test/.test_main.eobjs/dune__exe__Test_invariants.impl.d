test/test_invariants.ml: Alcotest Compo_core Compo_scenarios Compo_storage Compo_versions Database Helpers List Printf QCheck QCheck_alcotest Store String Surrogate Value
