test/helpers.ml: Alcotest Compo_core Compo_scenarios Constraints Database Errors Format String Surrogate Value
