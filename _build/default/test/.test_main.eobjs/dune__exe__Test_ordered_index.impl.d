test/test_ordered_index.ml: Alcotest Compo_core Database Domain Expr Fun Helpers List Option Ordered_index QCheck QCheck_alcotest Query Schema Surrogate Value
