test/test_schema.ml: Alcotest Compo_core Database Domain Helpers List Schema
