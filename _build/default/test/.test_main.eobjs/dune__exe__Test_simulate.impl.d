test/test_simulate.ml: Alcotest Compo_core Compo_scenarios Database Errors Helpers List Option Printf Store Value
