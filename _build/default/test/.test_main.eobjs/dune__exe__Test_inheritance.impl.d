test/test_inheritance.ml: Alcotest Bool Compo_core Compo_scenarios Database Domain Errors Helpers Inheritance List QCheck QCheck_alcotest Result Schema Store Surrogate Value
