test/test_constraints.ml: Alcotest Compo_core Compo_scenarios Constraints Database Errors Helpers List Value
