test/test_config_report.ml: Alcotest Compo_core Compo_scenarios Compo_versions Config_report Database Format Helpers List String Surrogate Value Version_graph Versioned
