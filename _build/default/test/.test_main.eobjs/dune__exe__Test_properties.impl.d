test/test_properties.ml: Alcotest Bool Compo_core Compo_ddl Compo_storage Database Domain Errors Eval Expr Helpers List Printf QCheck QCheck_alcotest Result Schema String Value
