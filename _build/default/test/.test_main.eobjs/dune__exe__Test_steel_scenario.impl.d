test/test_steel_scenario.ml: Alcotest Compo_core Compo_scenarios Composite Database Helpers List Surrogate Value
