test/test_query_composite.ml: Alcotest Compo_core Compo_scenarios Composite Database Domain Expr Helpers List Option Query Schema Value
