(* L1/L2/L3: the paper's listings, loaded from schemas/*.ddl through the
   full lexer/parser/elaborator pipeline, then exercised end-to-end to show
   the loaded schema behaves exactly like the programmatic one. *)

open Compo_core
open Helpers
module E = Compo_ddl.Elaborate
module Ddl = Compo_scenarios.Paper_ddl

let paper_db () =
  let db = Database.create () in
  ok (E.load_string db Ddl.gates);
  ok (E.load_string db Ddl.steel);
  db

let test_gates_listing_loads () =
  let db = Database.create () in
  ok (E.load_string db Ddl.gates);
  let s = Database.schema db in
  List.iter
    (fun name ->
      match Schema.find s name with
      | Some _ -> ()
      | None -> Alcotest.failf "type %s missing after load" name)
    [
      "PinType";
      "WireType";
      "SimpleGate";
      "ElementaryGate";
      "Gate";
      "GateInterface_I";
      "AllOf_GateInterface_I";
      "GateInterface";
      "AllOf_GateInterface";
      "GateImplementation";
      "GateImplementation.SubGates";
      "SomeOf_Gate";
      "TimingProbe";
    ]

let test_steel_listing_loads () =
  let db = paper_db () in
  let s = Database.schema db in
  List.iter
    (fun name ->
      match Schema.find s name with
      | Some _ -> ()
      | None -> Alcotest.failf "type %s missing after load" name)
    [
      "BoltType";
      "NutType";
      "BoreType";
      "GirderInterface";
      "PlateInterface";
      "AllOf_GirderIf";
      "Girder";
      "Plate";
      "ScrewingType";
      "ScrewingType.Bolt";
      "ScrewingType.Nut";
      "WeightCarrying_Structure";
      "WeightCarrying_Structure.Girders";
    ]

let test_loaded_schema_inherits () =
  let db = Database.create () in
  ok (E.load_string db Ddl.gates);
  (* interface -> implementation inheritance through the loaded types *)
  let pin_if = ok (Database.new_object db ~ty:"GateInterface_I" ()) in
  let _ =
    ok
      (Database.new_subobject db ~parent:pin_if ~subclass:"Pins"
         ~attrs:[ ("InOut", Value.Enum_case "IN"); ("PinLocation", Value.point 0 0) ]
         ())
  in
  let iface =
    ok
      (Database.new_object db ~ty:"GateInterface"
         ~attrs:[ ("Length", Value.Int 4); ("Width", Value.Int 2) ]
         ())
  in
  let _ =
    ok
      (Database.bind db ~via:"AllOf_GateInterface_I" ~transmitter:pin_if
         ~inheritor:iface ())
  in
  let impl = ok (Database.new_object db ~ty:"GateImplementation" ()) in
  let _ =
    ok
      (Database.bind db ~via:"AllOf_GateInterface" ~transmitter:iface
         ~inheritor:impl ())
  in
  check_value "Length through loaded schema" (Value.Int 4)
    (ok (Database.get_attr db impl "Length"));
  check_int "Pins through two loaded hops" 1
    (List.length (ok (Database.subclass_members db impl "Pins")));
  expect_error
    (function Errors.Inherited_readonly _ -> true | _ -> false)
    (Database.set_attr db impl "Width" (Value.Int 9))

let test_loaded_constraints_work () =
  let db = Database.create () in
  ok (E.load_string db Ddl.gates);
  let g =
    ok
      (Database.new_object db ~ty:"SimpleGate"
         ~attrs:
           [
             ("Length", Value.Int 4);
             ("Width", Value.Int 2);
             ("Function", Value.Enum_case "AND");
             ( "Pins",
               Value.set
                 [
                   Value.record [ ("PinId", Value.Int 1); ("InOut", Value.Enum_case "IN") ];
                   Value.record [ ("PinId", Value.Int 2); ("InOut", Value.Enum_case "IN") ];
                   Value.record [ ("PinId", Value.Int 3); ("InOut", Value.Enum_case "OUT") ];
                 ] );
           ]
         ())
  in
  check_no_violations "paper pin-count constraints hold" (ok (Database.validate db g));
  ok
    (Database.set_attr db g "Pins"
       (Value.set
          [ Value.record [ ("PinId", Value.Int 1); ("InOut", Value.Enum_case "IN") ] ]));
  check_bool "violations detected through loaded constraints" true
    (ok (Database.validate db g) <> [])

let test_loaded_screwing_constraints () =
  let db = paper_db () in
  (* a structure through the loaded steel schema *)
  let iface =
    ok
      (Database.new_object db ~ty:"GirderInterface"
         ~attrs:
           [ ("Length", Value.Int 100); ("Height", Value.Int 10); ("Width", Value.Int 10) ]
         ())
  in
  let bore =
    ok
      (Database.new_subobject db ~parent:iface ~subclass:"Bores"
         ~attrs:
           [
             ("Diameter", Value.Int 10);
             ("Length", Value.Int 4);
             ("Position", Value.point 0 0);
           ]
         ())
  in
  let structure =
    ok
      (Database.new_object db ~ty:"WeightCarrying_Structure"
         ~attrs:[ ("Designer", Value.Str "W"); ("Description", Value.Str "demo") ]
         ())
  in
  let comp = ok (Database.new_subobject db ~parent:structure ~subclass:"Girders" ()) in
  let _ =
    ok (Database.bind db ~via:"AllOf_GirderIf" ~transmitter:iface ~inheritor:comp ())
  in
  let screwing =
    ok
      (Database.new_subrel db ~parent:structure ~subrel:"Screwings"
         ~participants:[ ("Bores", Value.set [ Value.Ref bore ]) ]
         ~attrs:[ ("Strength", Value.Int 10) ]
         ())
  in
  let bolt =
    ok
      (Database.new_object db ~ty:"BoltType"
         ~attrs:[ ("Length", Value.Int 5); ("Diameter", Value.Int 10) ]
         ())
  in
  let nut =
    ok
      (Database.new_object db ~ty:"NutType"
         ~attrs:[ ("Length", Value.Int 1); ("Diameter", Value.Int 10) ]
         ())
  in
  let bolt_sub = ok (Database.new_subobject db ~parent:screwing ~subclass:"Bolt" ()) in
  let _ = ok (Database.bind db ~via:"AllOf_BoltType" ~transmitter:bolt ~inheritor:bolt_sub ()) in
  let nut_sub = ok (Database.new_subobject db ~parent:screwing ~subclass:"Nut" ()) in
  let _ = ok (Database.bind db ~via:"AllOf_NutType" ~transmitter:nut ~inheritor:nut_sub ()) in
  check_no_violations "paper screwing constraints hold (5 = 1 + 4)"
    (ok (Database.validate db screwing));
  (* shrink the bolt: bolt_length must fire *)
  ok (Database.set_attr db bolt "Length" (Value.Int 2));
  check_bool "bolt_length fires through the loaded schema" true
    (List.exists
       (fun v -> v.Constraints.v_constraint = "bolt_length")
       (ok (Database.validate db screwing)))

let test_loaded_wires_where () =
  let db = Database.create () in
  ok (E.load_string db Ddl.gates);
  let gate =
    ok
      (Database.new_object db ~ty:"Gate"
         ~attrs:[ ("Length", Value.Int 10); ("Width", Value.Int 5) ]
         ())
  in
  let pin =
    ok
      (Database.new_subobject db ~parent:gate ~subclass:"Pins"
         ~attrs:[ ("InOut", Value.Enum_case "IN"); ("PinLocation", Value.point 0 0) ]
         ())
  in
  (* a pin of a different gate: rejected by the loaded where-clause *)
  let other =
    ok
      (Database.new_object db ~ty:"Gate"
         ~attrs:[ ("Length", Value.Int 10); ("Width", Value.Int 5) ]
         ())
  in
  let foreign =
    ok
      (Database.new_subobject db ~parent:other ~subclass:"Pins"
         ~attrs:[ ("InOut", Value.Enum_case "OUT"); ("PinLocation", Value.point 1 1) ]
         ())
  in
  expect_error
    (function Errors.Constraint_violation _ -> true | _ -> false)
    (Database.new_subrel db ~parent:gate ~subrel:"Wires"
       ~participants:[ ("Pin1", Value.Ref pin); ("Pin2", Value.Ref foreign) ]
       ())

let suite =
  ( "ddl-paper",
    [
      case "L1/L2: gates listings load" test_gates_listing_loads;
      case "L3: steel listings load" test_steel_listing_loads;
      case "loaded schema: inheritance works" test_loaded_schema_inherits;
      case "loaded schema: pin-count constraints" test_loaded_constraints_work;
      case "loaded schema: screwing constraints (C8)" test_loaded_screwing_constraints;
      case "loaded schema: Wires where-clause" test_loaded_wires_where;
    ] )
