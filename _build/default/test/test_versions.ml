open Compo_core
open Compo_versions
open Helpers
module G = Compo_scenarios.Gates
module VG = Version_graph

let simple_graph () =
  (* v1 -> v2 -> v4, v1 -> v3 (alternative) *)
  let g = VG.create ~name:"nor" in
  let v1 = ok (VG.add_root g ~obj:(Surrogate.of_int 101) ()) in
  let v2 = ok (VG.derive g ~from:[ v1 ] ~obj:(Surrogate.of_int 102) ()) in
  let v3 = ok (VG.derive g ~from:[ v1 ] ~obj:(Surrogate.of_int 103) ()) in
  let v4 = ok (VG.derive g ~from:[ v2 ] ~obj:(Surrogate.of_int 104) ()) in
  (g, v1, v2, v3, v4)

let test_graph_structure () =
  let g, v1, v2, v3, v4 = simple_graph () in
  Alcotest.(check (list int)) "successors of v1" [ v2; v3 ] (VG.successors g v1);
  Alcotest.(check (list int)) "alternatives of v2" [ v3 ] (VG.alternatives g v2);
  Alcotest.(check (list int)) "leaves" [ v3; v4 ] (VG.leaves g);
  Alcotest.(check (list int)) "history of v4" [ v1; v2; v4 ] (ok (VG.history g v4));
  Alcotest.(check (list int)) "predecessors" [ v2 ] (VG.predecessors g v4);
  check_int "four versions" 4 (List.length (VG.versions g))

let test_graph_merge_history () =
  let g = VG.create ~name:"m" in
  let v1 = ok (VG.add_root g ~obj:(Surrogate.of_int 1) ()) in
  let v2 = ok (VG.derive g ~from:[ v1 ] ~obj:(Surrogate.of_int 2) ()) in
  let v3 = ok (VG.derive g ~from:[ v1 ] ~obj:(Surrogate.of_int 3) ()) in
  let v4 = ok (VG.derive g ~from:[ v2; v3 ] ~obj:(Surrogate.of_int 4) ()) in
  Alcotest.(check (list int)) "merge history" [ v1; v2; v3; v4 ] (ok (VG.history g v4))

let test_graph_validation () =
  let g, v1, _, _, _ = simple_graph () in
  expect_error ~msg:"second root" any_error (VG.add_root g ~obj:(Surrogate.of_int 999) ());
  expect_error ~msg:"empty predecessors" any_error
    (VG.derive g ~from:[] ~obj:(Surrogate.of_int 999) ());
  expect_error ~msg:"unknown predecessor" any_error
    (VG.derive g ~from:[ 77 ] ~obj:(Surrogate.of_int 999) ());
  expect_error ~msg:"object registered twice" any_error
    (VG.derive g ~from:[ v1 ] ~obj:(Surrogate.of_int 101) ())

let test_states_forward_only () =
  let g, v1, _, _, _ = simple_graph () in
  check_bool "in-work is modifiable" true (VG.modifiable g v1);
  ok (VG.promote g v1 VG.Released);
  check_bool "released is immutable" false (VG.modifiable g v1);
  expect_error ~msg:"no demotion" any_error (VG.promote g v1 VG.In_work);
  ok (VG.promote g v1 VG.Frozen);
  expect_error ~msg:"frozen is final" any_error (VG.promote g v1 VG.Released)

let test_remove_rules () =
  let g, v1, _v2, v3, _v4 = simple_graph () in
  expect_error ~msg:"non-leaf" any_error (VG.remove g v1);
  ok (VG.promote g v3 VG.Released);
  ok (VG.promote g v3 VG.Frozen);
  expect_error ~msg:"frozen leaf" any_error (VG.remove g v3);
  let g2, _, _, v3', _ = simple_graph () in
  ok (VG.remove g2 v3');
  check_int "removed" 3 (List.length (VG.versions g2))

let test_default_requires_stability () =
  let g, v1, _, _, _ = simple_graph () in
  expect_error ~msg:"in-work default" any_error (VG.set_default g v1);
  ok (VG.promote g v1 VG.Released);
  ok (VG.set_default g v1);
  Alcotest.(check (option int)) "default set" (Some v1) (VG.default_version g)

(* deep copy of a flip-flop: same shape, independent data *)
let test_clone_object () =
  let db = gates_db () in
  let store = Database.store db in
  let ff = ok (G.flip_flop db) in
  let copy = ok (Versioned.clone_object store ff) in
  check_bool "distinct objects" false (Surrogate.equal ff copy);
  check_int "pins copied" 4 (List.length (ok (Database.subclass_members db copy "Pins")));
  check_int "subgates copied" 2
    (List.length (ok (Database.subclass_members db copy "SubGates")));
  check_int "wires copied" 6 (List.length (ok (Database.subrel_members db copy "Wires")));
  (* wires of the copy reference copied pins, not originals *)
  let original_pins =
    Surrogate.Set.of_list
      (ok (Database.subclass_members db ff "Pins")
      @ List.concat_map
          (fun g -> ok (Database.subclass_members db g "Pins"))
          (ok (Database.subclass_members db ff "SubGates")))
  in
  List.iter
    (fun w ->
      let p1 = Option.get (Value.as_ref (ok (Database.participant db w "Pin1"))) in
      check_bool "participant remapped" false (Surrogate.Set.mem p1 original_pins))
    (ok (Database.subrel_members db copy "Wires"));
  (* mutating the copy leaves the original untouched *)
  ok (Database.set_attr db copy "Length" (Value.Int 77));
  check_value "original unchanged" (Value.Int 10) (ok (Database.get_attr db ff "Length"));
  (* the copy is a well-formed Gate: where-clauses still hold *)
  check_no_violations "copy consistent" (ok (Database.validate db copy));
  check_bool "copy joined the class" true
    (List.exists (Surrogate.equal copy) (ok (Database.select db ~cls:"Gates" ())))

let test_clone_preserves_bindings () =
  let db = gates_db () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.nor_implementation db ~interface:iface) in
  let copy = ok (Versioned.clone_object store impl) in
  check_value "clone inherits from the same interface" (Value.Int 4)
    (ok (Database.get_attr db copy "Length"));
  check_int "interface now has two implementations" 2
    (List.length (ok (Database.implementations_of db iface)))

let test_derive_version_and_guard () =
  let db = gates_db () in
  let store = Database.store db in
  let reg = Versioned.create () in
  let _g = ok (Versioned.new_graph reg ~name:"nor-impl") in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.nor_implementation db ~interface:iface) in
  let v1 = ok (Versioned.register_root reg ~graph:"nor-impl" ~obj:impl) in
  (* in-work versions are writable through the guard *)
  ok (Versioned.set_attr reg store impl "TimeBehavior" (Value.Int 2));
  ok (Versioned.promote reg ~graph:"nor-impl" ~version:v1 VG.Released);
  expect_error ~msg:"released version immutable" any_error
    (Versioned.set_attr reg store impl "TimeBehavior" (Value.Int 3));
  (* deriving gives a fresh in-work object *)
  let v2, clone = ok (Versioned.derive_version reg store ~graph:"nor-impl" ~from:v1) in
  ok (Versioned.set_attr reg store clone "TimeBehavior" (Value.Int 9));
  check_value "clone updated" (Value.Int 9) (ok (Database.get_attr db clone "TimeBehavior"));
  check_value "original untouched" (Value.Int 2) (ok (Database.get_attr db impl "TimeBehavior"));
  check_bool "v2 in-work" true
    (let g = ok (Versioned.graph reg "nor-impl") in
     VG.modifiable g v2)

(* C12: the three selection policies of section 6 *)
let test_generic_reference_policies () =
  let db = gates_db () in
  let store = Database.store db in
  let reg = Versioned.create () in
  let g = ok (Versioned.new_graph reg ~name:"nor") in
  let iface = ok (G.nor_interface db) in
  (* three implementation versions with increasing TimeBehavior *)
  let impl1 = ok (G.new_implementation db ~interface:iface ~time_behavior:5 ()) in
  let v1 = ok (VG.add_root g ~obj:impl1 ()) in
  let v2, impl2 = ok (Versioned.derive_version reg store ~graph:"nor" ~from:v1) in
  ok (Inheritance.set_attr store impl2 "TimeBehavior" (Value.Int 3));
  let v3, impl3 = ok (Versioned.derive_version reg store ~graph:"nor" ~from:v2) in
  ok (Inheritance.set_attr store impl3 "TimeBehavior" (Value.Int 1));
  ok (VG.promote g v1 VG.Released);
  ok (VG.promote g v2 VG.Released);
  (* v3 stays in-work: not selectable *)
  ok (VG.set_default g v1);
  (* probes are inheritors-in SomeOf_Gate *)
  let probe policy =
    let p =
      ok (Database.new_object db ~ty:"TimingProbe" ~attrs:[ ("ProbeNote", Value.Str "p") ] ())
    in
    let gref = { Generic_ref.gr_graph = g; gr_via = "SomeOf_Gate"; gr_policy = policy } in
    (p, gref)
  in
  (* bottom-up: the default version *)
  let p1, gref1 = probe Generic_ref.Bottom_up in
  let _ = ok (Generic_ref.attach store ~inheritor:p1 gref1) in
  check_value "bottom-up selects default" (Value.Int 5)
    (ok (Database.get_attr db p1 "TimeBehavior"));
  (* top-down: fastest stable version *)
  let p2, gref2 =
    probe (Generic_ref.Top_down Expr.(path [ "TimeBehavior" ] <= int 3))
  in
  let _ = ok (Generic_ref.attach store ~inheritor:p2 gref2) in
  check_value "top-down query selects v2 (v3 is in-work)" (Value.Int 3)
    (ok (Database.get_attr db p2 "TimeBehavior"));
  (* environment: pinned version *)
  let envs = Generic_ref.Env_table.create () in
  Generic_ref.Env_table.define envs ~env:"release-2024";
  ok (Generic_ref.Env_table.pin envs ~env:"release-2024" ~graph:"nor" ~version:v2);
  let p3, gref3 = probe (Generic_ref.Environment "release-2024") in
  let _ = ok (Generic_ref.attach store ~envs ~inheritor:p3 gref3) in
  check_value "environment pins v2" (Value.Int 3)
    (ok (Database.get_attr db p3 "TimeBehavior"));
  (* refresh: releasing v3 changes the top-down selection *)
  ok (VG.promote g v3 VG.Released);
  (match ok (Generic_ref.refresh store ~inheritor:p2 gref2) with
  | `Rebound _ -> ()
  | `Unchanged -> Alcotest.fail "expected rebinding to v3");
  check_value "rebound to the newly released version" (Value.Int 1)
    (ok (Database.get_attr db p2 "TimeBehavior"));
  (match ok (Generic_ref.refresh store ~inheritor:p2 gref2) with
  | `Unchanged -> ()
  | `Rebound _ -> Alcotest.fail "second refresh must be stable")

let test_generic_reference_errors () =
  let db = gates_db () in
  let store = Database.store db in
  let g = VG.create ~name:"empty" in
  let p = ok (Database.new_object db ~ty:"TimingProbe" ()) in
  let gref = { Generic_ref.gr_graph = g; gr_via = "SomeOf_Gate"; gr_policy = Generic_ref.Bottom_up } in
  expect_error ~msg:"no default version" any_error
    (Generic_ref.attach store ~inheritor:p gref);
  let gref2 = { gref with Generic_ref.gr_policy = Generic_ref.Environment "nowhere" } in
  expect_error ~msg:"missing environment table" any_error
    (Generic_ref.attach store ~inheritor:p gref2)



let test_registry_persistence () =
  let db = gates_db () in
  let store = Database.store db in
  let reg = Versioned.create () in
  let g = ok (Versioned.new_graph reg ~name:"nor") in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:5 ()) in
  let v1 = ok (Versioned.register_root reg ~graph:"nor" ~obj:impl) in
  let v2, _ = ok (Versioned.derive_version reg store ~graph:"nor" ~from:v1) in
  ok (VG.promote g v1 VG.Released);
  ok (VG.set_default g v1);
  let _ = ok (Versioned.new_graph reg ~name:"empty-graph") in
  let path = Filename.temp_file "compo-versions" ".bin" in
  ok (Versioned.save_file reg path);
  let reg2 = ok (Versioned.load_file path) in
  Alcotest.(check (list string)) "graphs preserved" [ "empty-graph"; "nor" ]
    (Versioned.graphs reg2);
  let g2 = ok (Versioned.graph reg2 "nor") in
  check_int "versions preserved" 2 (List.length (VG.versions g2));
  Alcotest.(check (option int)) "default preserved" (Some v1) (VG.default_version g2);
  check_bool "state preserved" false (VG.modifiable g2 v1);
  check_bool "in-work preserved" true (VG.modifiable g2 v2);
  Alcotest.(check (list int)) "derivation preserved" [ v2 ] (VG.successors g2 v1);
  (* the reloaded registry still finds objects in the (live) store *)
  (match Versioned.graph_of_object reg2 impl with
  | Some (g, id) ->
      check_string "graph found by object" "nor" (VG.name g);
      check_int "version found by object" v1 id
  | None -> Alcotest.fail "object lost");
  (* fresh ids do not collide after reload *)
  let iface2 = ok (G.nor_interface db) in
  let impl3 = ok (G.new_implementation db ~interface:iface2 ()) in
  let v3 = ok (VG.derive g2 ~from:[ v2 ] ~obj:impl3 ()) in
  check_bool "id counter restored" true (v3 > v2);
  (* corruption detection *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let broken = Bytes.of_string contents in
  let pos = Bytes.length broken / 2 in
  Bytes.set broken pos (if Bytes.get broken pos = 'x' then 'y' else 'x');
  Out_channel.with_open_bin path (fun c -> Out_channel.output_bytes c broken);
  expect_error
    (function Errors.Io_error _ -> true | _ -> false)
    (Versioned.load_file path);
  Sys.remove path

let suite =
  ( "versions",
    [
      case "derivation graph structure" test_graph_structure;
      case "merge versions in history" test_graph_merge_history;
      case "graph validation" test_graph_validation;
      case "states move forward only" test_states_forward_only;
      case "remove rules" test_remove_rules;
      case "default version must be stable" test_default_requires_stability;
      case "deep copy of complex objects" test_clone_object;
      case "deep copy preserves bindings" test_clone_preserves_bindings;
      case "derive version with immutability guard" test_derive_version_and_guard;
      case "generic references: three policies (C12)" test_generic_reference_policies;
      case "generic references: error cases" test_generic_reference_errors;
      case "registry persistence round-trip" test_registry_persistence;
    ] )
