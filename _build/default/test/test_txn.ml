open Compo_core
open Compo_txn
open Helpers
module G = Compo_scenarios.Gates
module T = Transaction

let setup () =
  let db = gates_db () in
  let mg = T.create_manager (Database.store db) in
  (db, mg)

let test_lock_compatibility_matrix () =
  let open Lock in
  let expect = [
    (IS, IS, true); (IS, IX, true); (IS, S, true); (IS, SIX, true); (IS, X, false);
    (IX, IX, true); (IX, S, false); (IX, SIX, false); (IX, X, false);
    (S, S, true); (S, SIX, false); (S, X, false);
    (SIX, SIX, false); (SIX, X, false); (X, X, false);
  ]
  in
  List.iter
    (fun (a, b, want) ->
      check_bool
        (Printf.sprintf "%s/%s" (to_string a) (to_string b))
        want (compatible a b);
      check_bool "symmetric" want (compatible b a))
    expect

let test_lock_supremum () =
  let open Lock in
  check_string "S+IX=SIX" "SIX" (to_string (supremum S IX));
  check_string "IS+S=S" "S" (to_string (supremum IS S));
  check_string "IS+IX=IX" "IX" (to_string (supremum IS IX));
  check_string "S+X=X" "X" (to_string (supremum S X));
  check_bool "X covers all" true
    (List.for_all (fun m -> stronger_or_equal X m) [ IS; IX; S; SIX; X ])

let test_basic_locking () =
  let db, mg = setup () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let t2 = T.begin_txn mg ~user:"bob" in
  (* shared readers coexist *)
  check_value "t1 reads" (Value.Int 4) (ok (T.get_attr mg t1 g "Length"));
  check_value "t2 reads" (Value.Int 4) (ok (T.get_attr mg t2 g "Length"));
  (* a writer conflicts with a reader *)
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (T.set_attr mg t2 g "Length" (Value.Int 9));
  ok (T.commit mg t1);
  (* after the reader commits, the writer proceeds *)
  ok (T.set_attr mg t2 g "Length" (Value.Int 9));
  ok (T.commit mg t2);
  check_value "write survived commit" (Value.Int 9) (ok (Database.get_attr db g "Length"))

let test_upgrade_same_txn () =
  let db, mg = setup () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  let t1 = T.begin_txn mg ~user:"alice" in
  check_value "read first" (Value.Int 4) (ok (T.get_attr mg t1 g "Length"));
  (* the same transaction upgrades S -> X without conflict *)
  ok (T.set_attr mg t1 g "Length" (Value.Int 5));
  ok (T.commit mg t1)

let test_abort_restores () =
  let db, mg = setup () in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  let t1 = T.begin_txn mg ~user:"alice" in
  ok (T.set_attr mg t1 g "Length" (Value.Int 5));
  ok (T.set_attr mg t1 g "Width" (Value.Int 6));
  let created = ok (T.new_object mg t1 ~ty:"SimpleGate" ()) in
  ok (T.abort mg t1);
  check_value "Length restored" (Value.Int 4) (ok (Database.get_attr db g "Length"));
  check_value "Width restored" (Value.Int 2) (ok (Database.get_attr db g "Width"));
  check_bool "created object gone" false (Store.mem (Database.store db) created);
  check_int "all locks released" 0 (Lock_manager.lock_count (T.lock_manager mg));
  expect_error ~msg:"aborted txn unusable" any_error
    (T.set_attr mg t1 g "Length" (Value.Int 7))

let test_abort_undoes_bind () =
  let db, mg = setup () in
  let iface = ok (G.nor_interface db) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let impl = ok (T.new_object mg t1 ~ty:"GateImplementation" ()) in
  let _ = ok (T.bind mg t1 ~via:"AllOf_GateInterface" ~transmitter:iface ~inheritor:impl ()) in
  ok (T.abort mg t1);
  check_int "binding undone with creation" 0
    (List.length (ok (Database.inheritors_of db iface)))

(* C10: reading inherited data locks the transmitter (reverse direction) *)
let test_lock_inheritance () =
  let db, mg = setup () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let t1 = T.begin_txn mg ~user:"alice" in
  check_value "t1 reads inherited attr" (Value.Int 4) (ok (T.get_attr mg t1 impl "Length"));
  (* the interface itself is now S-locked by t1 *)
  (match Lock_manager.holds (T.lock_manager mg) ~txn:(T.id t1) iface with
  | Some Lock.S -> ()
  | other ->
      Alcotest.failf "expected S on the interface, got %s"
        (match other with Some m -> Lock.to_string m | None -> "nothing"));
  (* so a second transaction cannot update the interface under t1 *)
  let t2 = T.begin_txn mg ~user:"bob" in
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (T.set_attr mg t2 iface "Length" (Value.Int 9));
  ok (T.commit mg t1);
  ok (T.set_attr mg t2 iface "Length" (Value.Int 9));
  ok (T.commit mg t2)

let test_lock_inheritance_multi_hop () =
  let db, mg = setup () in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let store = Database.store db in
  (* the pin interface sits two hops above the implementation *)
  let pin_iface = Option.get (ok (Inheritance.transmitter_of store iface)) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let _ = ok (T.subclass_members mg t1 impl "Pins") in
  (match Lock_manager.holds (T.lock_manager mg) ~txn:(T.id t1) pin_iface with
  | Some Lock.S -> ()
  | _ -> Alcotest.fail "expected S two hops up the chain");
  ok (T.commit mg t1)

let test_attr_lock_set_matches_permeability () =
  let db, _ = setup () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ~time_behavior:1 ()) in
  (* inherited attr: chain of length 2; own attr: singleton *)
  check_int "inherited attr locks two objects" 2
    (List.length (Lock_inheritance.attr_lock_set store impl "Length"));
  check_int "own attr locks one object" 1
    (List.length (Lock_inheritance.attr_lock_set store impl "TimeBehavior"));
  (* Pins lives three levels up (impl -> iface -> pin interface) *)
  check_int "subclass chain locks three objects" 3
    (List.length (Lock_inheritance.attr_lock_set store impl "Pins"))

let test_deadlock_detected () =
  let db, mg = setup () in
  let a = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  let b = ok (G.new_simple_gate db ~func:"OR" ~length:4 ~width:2) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let t2 = T.begin_txn mg ~user:"bob" in
  ok (T.set_attr mg t1 a "Length" (Value.Int 5));
  ok (T.set_attr mg t2 b "Length" (Value.Int 5));
  (* t1 blocks on b ... *)
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (T.set_attr mg t1 b "Width" (Value.Int 7));
  (* ... and t2's attempt on a closes the cycle: deadlock *)
  (match T.set_attr mg t2 a "Width" (Value.Int 7) with
  | Error (Errors.Lock_error msg) ->
      check_bool "deadlock named" true (Helpers.contains msg "deadlock")
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "expected deadlock");
  ok (T.abort mg t2);
  (* with t2 gone, t1 proceeds *)
  ok (T.set_attr mg t1 b "Width" (Value.Int 7));
  ok (T.commit mg t1)

(* C11: expansion locking consults the access-control manager *)
let test_expansion_respects_access_control () =
  let db = gates_db () in
  let store = Database.store db in
  let ac = Access_control.create () in
  let mg = T.create_manager ~access:ac store in
  (* a composite using a protected standard cell *)
  let std_iface = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let comp = ok (G.use_component db ~composite:top ~component_interface:std_iface ~x:0 ~y:0) in
  Access_control.protect ac std_iface;
  let t1 = T.begin_txn mg ~user:"alice" in
  let granted = ok (T.lock_expansion mg t1 top ~mode:Lock.X) in
  (* the standard cell was capped to S; the user's own objects got X *)
  check_bool "standard part read-locked" true
    (List.assoc_opt std_iface granted = Some Lock.S);
  check_bool "own composite write-locked" true
    (List.assoc_opt top granted = Some Lock.X);
  check_bool "component subobject write-locked" true
    (List.assoc_opt comp granted = Some Lock.X);
  (* pins of the protected interface are protected objects' children: they
     are separate objects and stay writable unless protected themselves *)
  ok (T.commit mg t1)

let test_access_rights () =
  let db = gates_db () in
  let store = Database.store db in
  let ac = Access_control.create () in
  let mg = T.create_manager ~access:ac store in
  let g = ok (G.new_simple_gate db ~func:"AND" ~length:4 ~width:2) in
  Access_control.grant ac ~user:"bob" g Access_control.Read_only;
  let t_bob = T.begin_txn mg ~user:"bob" in
  check_value "read allowed" (Value.Int 4) (ok (T.get_attr mg t_bob g "Length"));
  expect_error
    (function Errors.Access_denied _ -> true | _ -> false)
    (T.set_attr mg t_bob g "Length" (Value.Int 9));
  Access_control.grant ac ~user:"eve" g Access_control.No_access;
  let t_eve = T.begin_txn mg ~user:"eve" in
  expect_error
    (function Errors.Access_denied _ -> true | _ -> false)
    (T.get_attr mg t_eve g "Length")

let test_conflict_detection () =
  let db, mg = setup () in
  let store = Database.store db in
  let iface = ok (G.nor_interface db) in
  let impl = ok (G.new_implementation db ~interface:iface ()) in
  let t1 = T.begin_txn mg ~user:"alice" in
  let t2 = T.begin_txn mg ~user:"bob" in
  (* t1 updates the implementation's own data; t2 updates the interface *)
  ok (T.set_attr mg t1 impl "TimeBehavior" (Value.Int 3));
  ok (T.set_attr mg t2 iface "Width" (Value.Int 8));
  let conflicts = Conflict.potential_conflicts store (T.lock_manager mg) ~txn1:(T.id t1) ~txn2:(T.id t2) in
  check_bool "related updates flagged" true
    (List.exists (fun (a, b) -> Surrogate.equal a impl && Surrogate.equal b iface) conflicts);
  (* unrelated updates are not flagged *)
  let lonely = ok (G.new_simple_gate db ~func:"OR" ~length:4 ~width:2) in
  let t3 = T.begin_txn mg ~user:"carol" in
  ok (T.set_attr mg t3 lonely "Length" (Value.Int 5));
  check_int "no conflict with unrelated txn" 0
    (List.length
       (Conflict.potential_conflicts store (T.lock_manager mg) ~txn1:(T.id t1) ~txn2:(T.id t3)));
  List.iter (fun t -> ok (T.commit mg t)) [ t1; t2; t3 ]

let test_neighbors () =
  let db, _ = setup () in
  let store = Database.store db in
  let ff = ok (G.flip_flop db) in
  let pin = List.hd (ok (Database.subclass_members db ff "Pins")) in
  let ns = Conflict.neighbors store pin in
  (* a pin's neighbors include its owner and the wires it participates in *)
  check_bool "owner is a neighbor" true (List.exists (Surrogate.equal ff) ns);
  check_bool "has relationship neighbors" true (List.length ns > 1)



(* Hierarchical intention locking: composite-granularity conflicts. *)
let test_intention_locking () =
  let db, mg = setup () in
  let ff = ok (G.flip_flop db) in
  let sub = List.hd (ok (Database.subclass_members db ff "SubGates")) in
  let t1 = T.begin_txn mg ~user:"alice" in
  (* writing a subobject takes IX on the enclosing composite *)
  ok (T.set_attr mg t1 sub "Length" (Value.Int 5));
  (match Lock_manager.holds (T.lock_manager mg) ~txn:(T.id t1) ff with
  | Some Lock.IX -> ()
  | other ->
      Alcotest.failf "expected IX on the composite, got %s"
        (match other with Some m -> Lock.to_string m | None -> "nothing"));
  (* a whole-composite reader now conflicts at the composite *)
  let t2 = T.begin_txn mg ~user:"bob" in
  expect_error
    (function Errors.Lock_error _ -> true | _ -> false)
    (T.get_attr mg t2 ff "Length");
  ok (T.commit mg t1);
  check_value "after commit the reader proceeds" (Value.Int 10)
    (ok (T.get_attr mg t2 ff "Length"));
  ok (T.commit mg t2)

let test_intention_compatibility () =
  (* two writers of different subobjects of the same composite coexist
     (IX is compatible with IX) *)
  let db, mg = setup () in
  let ff = ok (G.flip_flop db) in
  match ok (Database.subclass_members db ff "SubGates") with
  | [ s1; s2 ] ->
      let t1 = T.begin_txn mg ~user:"alice" in
      let t2 = T.begin_txn mg ~user:"bob" in
      ok (T.set_attr mg t1 s1 "Length" (Value.Int 5));
      ok (T.set_attr mg t2 s2 "Length" (Value.Int 6));
      ok (T.commit mg t1);
      ok (T.commit mg t2)
  | _ -> Alcotest.fail "expected two subgates"

let test_reader_of_subobject_coexists_with_sibling_writer () =
  (* IS on the composite from a subobject reader is compatible with the
     IX of a sibling writer *)
  let db, mg = setup () in
  let ff = ok (G.flip_flop db) in
  match ok (Database.subclass_members db ff "SubGates") with
  | [ s1; s2 ] ->
      let t1 = T.begin_txn mg ~user:"alice" in
      let t2 = T.begin_txn mg ~user:"bob" in
      ok (T.set_attr mg t1 s1 "Length" (Value.Int 5));
      check_value "sibling read allowed" (Value.Int 4)
        (ok (T.get_attr mg t2 s2 "Length"));
      (* but reading the locked sibling itself blocks *)
      expect_error
        (function Errors.Lock_error _ -> true | _ -> false)
        (T.get_attr mg t2 s1 "Length");
      ok (T.commit mg t1);
      ok (T.commit mg t2)
  | _ -> Alcotest.fail "expected two subgates"



(* Staleness stamping is transactional: visible at commit, absent after
   abort. *)
let test_stamping_follows_commit () =
  let db, mg = setup () in
  let iface = ok (G.nor_interface db) in
  let _impl = ok (G.new_implementation db ~interface:iface ()) in
  let link = List.hd (ok (Database.links_of db iface)) in
  let t1 = T.begin_txn mg ~user:"alice" in
  ok (T.set_attr mg t1 iface "Length" (Value.Int 9));
  check_bool "not stamped before commit" false (ok (Database.is_stale db link));
  ok (T.commit mg t1);
  check_bool "stamped at commit" true (ok (Database.is_stale db link));
  ok (Database.acknowledge db link);
  let t2 = T.begin_txn mg ~user:"bob" in
  ok (T.set_attr mg t2 iface "Length" (Value.Int 10));
  ok (T.abort mg t2);
  check_bool "aborted update never stamps" false (ok (Database.is_stale db link));
  check_value "aborted value restored" (Value.Int 9) (ok (Database.get_attr db iface "Length"))



(* section 6: "some or all of its components materialized" -- expansion
   locking honours a depth bound *)
let test_partial_expansion_locking () =
  let db = gates_db () in
  let store = Database.store db in
  let mg = T.create_manager store in
  let cell = ok (G.nor_interface db) in
  let top_iface = ok (G.nor_interface db) in
  let top = ok (G.new_implementation db ~interface:top_iface ()) in
  let _ = ok (G.use_component db ~composite:top ~component_interface:cell ~x:0 ~y:0) in
  let t1 = T.begin_txn mg ~user:"alice" in
  (* depth 0: own structure only -- the component interface stays free *)
  let shallow = ok (T.lock_expansion mg t1 ~max_depth:0 top ~mode:Lock.S) in
  check_bool "component not locked at depth 0" false (List.mem_assoc cell shallow);
  ok (T.commit mg t1);
  let t2 = T.begin_txn mg ~user:"bob" in
  let deep = ok (T.lock_expansion mg t2 top ~mode:Lock.S) in
  check_bool "component locked unbounded" true (List.mem_assoc cell deep);
  check_bool "deep covers more" true (List.length deep > List.length shallow);
  ok (T.commit mg t2)

let suite =
  ( "txn",
    [
      case "lock compatibility matrix" test_lock_compatibility_matrix;
      case "lock supremum lattice" test_lock_supremum;
      case "readers share, writers exclude" test_basic_locking;
      case "same-transaction upgrade" test_upgrade_same_txn;
      case "abort restores values and creations" test_abort_restores;
      case "abort undoes bindings" test_abort_undoes_bind;
      case "lock inheritance (C10)" test_lock_inheritance;
      case "lock inheritance across hops (C10)" test_lock_inheritance_multi_hop;
      case "attr lock sets match permeability" test_attr_lock_set_matches_permeability;
      case "deadlock detection" test_deadlock_detected;
      case "expansion locking capped by access control (C11)" test_expansion_respects_access_control;
      case "access rights enforced" test_access_rights;
      case "potential-conflict identification" test_conflict_detection;
      case "relationship neighborhood" test_neighbors;
      case "intention locks on the owner chain" test_intention_locking;
      case "sibling writers coexist (IX/IX)" test_intention_compatibility;
      case "sibling reader coexists with writer (IS/IX)" test_reader_of_subobject_coexists_with_sibling_writer;
      case "staleness stamping is transactional" test_stamping_follows_commit;
      case "partial expansion locking (depth bound)" test_partial_expansion_locking;
    ] )
