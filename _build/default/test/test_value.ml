open Compo_core
open Helpers

let test_set_normal_form () =
  let a = Value.set [ Value.Int 3; Value.Int 1; Value.Int 3; Value.Int 2 ] in
  let b = Value.set [ Value.Int 2; Value.Int 1; Value.Int 3 ] in
  check_value "sets normalise" a b

let test_record_field_order () =
  let a = Value.record [ ("Y", Value.Int 2); ("X", Value.Int 1) ] in
  let b = Value.record [ ("X", Value.Int 1); ("Y", Value.Int 2) ] in
  check_value "record fields sort" a b;
  check_value "field projection" (Value.Int 2) (Option.get (Value.field "Y" a))

let test_point_shape () =
  check_value "point"
    (Value.Record [ ("X", Value.Int 4); ("Y", Value.Int 7) ])
    (Value.point 4 7)

let test_conforms_simple () =
  ok (Value.conforms Domain.Integer (Value.Int 3));
  ok (Value.conforms Domain.Real (Value.Int 3));
  ok (Value.conforms Domain.Real (Value.Real 3.5));
  ok (Value.conforms Domain.String (Value.Str "x"));
  ok (Value.conforms Domain.Boolean (Value.Bool true));
  expect_error any_error (Value.conforms Domain.Integer (Value.Str "x"));
  expect_error any_error (Value.conforms Domain.Boolean (Value.Int 0))

let test_conforms_null_everywhere () =
  List.iter
    (fun d -> ok (Value.conforms d Value.Null))
    [
      Domain.Integer;
      Domain.Enum [ "A" ];
      Domain.Record [ ("f", Domain.Integer) ];
      Domain.Set_of Domain.String;
    ]

let test_conforms_enum () =
  let io = Domain.Enum [ "IN"; "OUT" ] in
  ok (Value.conforms io (Value.Enum_case "IN"));
  expect_error any_error (Value.conforms io (Value.Enum_case "SIDEWAYS"))

let test_conforms_record () =
  let point = Domain.Record [ ("X", Domain.Integer); ("Y", Domain.Integer) ] in
  ok (Value.conforms point (Value.point 1 2));
  expect_error ~msg:"missing field" any_error
    (Value.conforms point (Value.record [ ("X", Value.Int 1) ]));
  expect_error ~msg:"extra field" any_error
    (Value.conforms point
       (Value.record
          [ ("X", Value.Int 1); ("Y", Value.Int 2); ("Z", Value.Int 3) ]))

let test_conforms_collections () =
  let ints = Domain.Set_of Domain.Integer in
  ok (Value.conforms ints (Value.set [ Value.Int 1; Value.Int 2 ]));
  expect_error any_error
    (Value.conforms ints (Value.set [ Value.Int 1; Value.Str "x" ]));
  let m = Domain.Matrix_of Domain.Boolean in
  ok
    (Value.conforms m
       (Value.Matrix [| [| Value.Bool true |]; [| Value.Bool false |] |]));
  expect_error ~msg:"ragged matrix" any_error
    (Value.conforms m
       (Value.Matrix [| [| Value.Bool true |]; [||] |]))

let test_domain_expand () =
  let lookup = function
    | "Point" -> Some (Domain.Record [ ("X", Domain.Integer); ("Y", Domain.Integer) ])
    | "Loop" -> Some (Domain.List_of (Domain.Named "Loop"))
    | _ -> None
  in
  let expanded = ok (Domain.expand ~lookup (Domain.List_of (Domain.Named "Point"))) in
  check_bool "expanded"
    (Domain.equal expanded
       (Domain.List_of
          (Domain.Record [ ("X", Domain.Integer); ("Y", Domain.Integer) ])))
    true;
  expect_error ~msg:"recursive domain" any_error
    (Domain.expand ~lookup (Domain.Named "Loop"));
  expect_error ~msg:"unknown domain" any_error
    (Domain.expand ~lookup (Domain.Named "Missing"))

let test_domain_well_formed () =
  expect_error any_error (Domain.well_formed (Domain.Enum []));
  expect_error any_error (Domain.well_formed (Domain.Enum [ "A"; "A" ]));
  expect_error any_error
    (Domain.well_formed (Domain.Record [ ("f", Domain.Integer); ("f", Domain.Integer) ]));
  ok (Domain.well_formed (Domain.Record [ ("f", Domain.Integer) ]))

let test_refs () =
  let s1 = Surrogate.of_int 10 and s2 = Surrogate.of_int 20 in
  let v =
    Value.record
      [ ("a", Value.Ref s1); ("b", Value.set [ Value.Ref s2; Value.Int 1 ]) ]
  in
  Alcotest.(check (list surrogate)) "refs" [ s1; s2 ] (Value.refs v)

(* Property: set normal form is idempotent and order-insensitive. *)
let prop_set_normal_form =
  let gen = QCheck.list (QCheck.map (fun i -> Value.Int i) QCheck.small_int) in
  QCheck.Test.make ~name:"Value.set is order-insensitive" ~count:200 gen
    (fun vs ->
      let shuffled = List.rev vs in
      Value.equal (Value.set vs) (Value.set shuffled))

(* Property: compare is a total order consistent with equal. *)
let prop_compare_total =
  let gen =
    QCheck.pair
      (QCheck.map (fun i -> Value.Int i) QCheck.small_int)
      (QCheck.map (fun s -> Value.Str s) QCheck.printable_string)
  in
  QCheck.Test.make ~name:"compare antisymmetry across ranks" ~count:200 gen
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let suite =
  ( "value",
    [
      case "set normal form" test_set_normal_form;
      case "record field order" test_record_field_order;
      case "point shape" test_point_shape;
      case "conforms: simple domains" test_conforms_simple;
      case "conforms: null conforms everywhere" test_conforms_null_everywhere;
      case "conforms: enum cases" test_conforms_enum;
      case "conforms: records" test_conforms_record;
      case "conforms: collections and matrices" test_conforms_collections;
      case "domain expansion" test_domain_expand;
      case "domain well-formedness" test_domain_well_formed;
      case "reachable refs" test_refs;
      QCheck_alcotest.to_alcotest prop_set_normal_form;
      QCheck_alcotest.to_alcotest prop_compare_total;
    ] )
