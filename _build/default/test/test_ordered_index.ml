open Compo_core
open Helpers

let catalog_db () =
  let db = Database.create () in
  ok
    (Database.define_obj_type db
       {
         Schema.ot_name = "Part";
         ot_inheritor_in = None;
         ot_attrs =
           [
             { Schema.attr_name = "Kind"; attr_domain = Domain.String };
             { Schema.attr_name = "Weight"; attr_domain = Domain.Integer };
           ];
         ot_subclasses = [];
         ot_subrels = [];
         ot_constraints = [];
       });
  ok (Database.create_class db ~name:"Parts" ~member_type:"Part");
  db

let new_part db kind weight =
  ok
    (Database.new_object db ~cls:"Parts" ~ty:"Part"
       ~attrs:[ ("Kind", Value.Str kind); ("Weight", Value.Int weight) ]
       ())

let test_range_queries () =
  let db = catalog_db () in
  let parts = List.map (fun w -> new_part db "p" w) [ 5; 1; 9; 3; 7 ] in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let q where = ok (Database.select db ~cls:"Parts" ~where ()) in
  let weights rs =
    List.map
      (fun s -> Option.get (Value.as_int (ok (Database.get_attr db s "Weight"))))
      rs
  in
  Alcotest.(check (list int)) "le: ascending" [ 1; 3; 5 ]
    (weights (q Expr.(path [ "Weight" ] <= int 5)));
  Alcotest.(check (list int)) "lt" [ 1; 3 ] (weights (q Expr.(path [ "Weight" ] < int 5)));
  Alcotest.(check (list int)) "ge" [ 5; 7; 9 ]
    (weights (q Expr.(path [ "Weight" ] >= int 5)));
  Alcotest.(check (list int)) "gt" [ 7; 9 ] (weights (q Expr.(path [ "Weight" ] > int 5)));
  Alcotest.(check (list int)) "eq through ordered index" [ 5 ]
    (weights (q Expr.(path [ "Weight" ] = int 5)));
  (* reversed operand order flips the comparison *)
  Alcotest.(check (list int)) "reversed: 5 <= Weight" [ 5; 7; 9 ]
    (weights (q Expr.(int 5 <= path [ "Weight" ])));
  ignore parts

let test_optimizer_used_and_agrees () =
  let db = catalog_db () in
  List.iteri (fun i _ -> ignore (new_part db "p" (i * 3 mod 17))) (List.init 40 Fun.id);
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let store = Database.store db in
  let where = Expr.(path [ "Weight" ] < int 9) in
  let indexed = ok (Database.select db ~cls:"Parts" ~where ()) in
  let scanned = ok (Query.select store ~cls:"Parts" ~where ()) in
  Alcotest.(check (list surrogate))
    "index agrees with scan (as sets)"
    (List.sort Surrogate.compare scanned)
    (List.sort Surrogate.compare indexed)

let test_maintenance () =
  let db = catalog_db () in
  let p = new_part db "p" 5 in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let count where = List.length (ok (Database.select db ~cls:"Parts" ~where ())) in
  check_int "initially in range" 1 (count Expr.(path [ "Weight" ] <= int 5));
  ok (Database.set_attr db p "Weight" (Value.Int 50));
  check_int "moved out of range" 0 (count Expr.(path [ "Weight" ] <= int 5));
  check_int "into the new range" 1 (count Expr.(path [ "Weight" ] > int 10));
  ok (Database.delete db p);
  check_int "gone after delete" 0 (count Expr.(path [ "Weight" ] > int 10))

let test_null_sorts_lowest () =
  let db = catalog_db () in
  let no_weight =
    ok (Database.new_object db ~cls:"Parts" ~ty:"Part" ~attrs:[ ("Kind", Value.Str "x") ] ())
  in
  let _ = new_part db "p" 5 in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let where = Expr.(path [ "Weight" ] < int 3) in
  (* the scan's rank-based comparison also puts Null below every integer,
     so index and scan agree on including the uninitialised part *)
  let indexed = List.sort Surrogate.compare (ok (Database.select db ~cls:"Parts" ~where ())) in
  let scanned =
    List.sort Surrogate.compare (ok (Query.select (Database.store db) ~cls:"Parts" ~where ()))
  in
  Alcotest.(check (list surrogate)) "agree on Null" scanned indexed;
  check_bool "null part included" true (List.exists (Surrogate.equal no_weight) indexed)

let test_type_mismatch_falls_back_to_scan () =
  let db = catalog_db () in
  let _ = new_part db "p" 5 in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let store = Database.store db in
  let ox = ok (Ordered_index.create store ~cls:"Parts" ~attr:"Kind") in
  (* a Real constant against an Integer attribute must not use the index
     (Value.compare does not coerce); the scan still answers *)
  let where = Expr.(path [ "Weight" ] < Const (Value.Real 5.5)) in
  check_int "scan fallback coerces" 1
    (List.length (ok (Database.select db ~cls:"Parts" ~where ())));
  Ordered_index.drop ox

let test_string_ranges () =
  let db = catalog_db () in
  List.iter (fun k -> ignore (new_part db k 1)) [ "bolt"; "nut"; "washer"; "axle" ];
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Kind");
  let found =
    ok (Database.select db ~cls:"Parts" ~where:Expr.(path [ "Kind" ] < str "nut") ())
  in
  let kinds =
    List.map (fun s -> Value.to_string (ok (Database.get_attr db s "Kind"))) found
  in
  Alcotest.(check (list string)) "lexicographic" [ "\"axle\""; "\"bolt\"" ] kinds

let test_registration () =
  let db = catalog_db () in
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  expect_error any_error (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  Alcotest.(check (list (pair string string)))
    "registered" [ ("Parts", "Weight") ] (Database.ordered_indexes db);
  ok (Database.drop_ordered_index db ~cls:"Parts" ~attr:"Weight");
  Alcotest.(check (list (pair string string))) "dropped" [] (Database.ordered_indexes db)

(* Property: index range answers = scan answers, under random data and a
   random threshold, for every comparison operator. *)
let prop_ranges_agree_with_scan =
  QCheck.Test.make ~name:"ordered ranges agree with scan" ~count:80
    QCheck.(pair (small_list (int_bound 30)) (int_bound 30))
    (fun (weights, threshold) ->
      let db = catalog_db () in
      List.iter (fun w -> ignore (new_part db "p" w)) weights;
      ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
      List.for_all
        (fun make ->
          let where = make Expr.(path [ "Weight" ]) Expr.(int threshold) in
          let indexed =
            List.sort Surrogate.compare (ok (Database.select db ~cls:"Parts" ~where ()))
          in
          let scanned =
            List.sort Surrogate.compare
              (ok (Query.select (Database.store db) ~cls:"Parts" ~where ()))
          in
          indexed = scanned)
        [ Expr.( < ); Expr.( <= ); Expr.( > ); Expr.( >= ); Expr.( = ) ])



let test_conjunction_planning () =
  let db = catalog_db () in
  List.iter
    (fun (k, w) -> ignore (new_part db k w))
    [ ("bolt", 5); ("bolt", 20); ("nut", 5); ("nut", 20); ("bolt", 7) ];
  ok (Database.create_index db ~cls:"Parts" ~attr:"Kind");
  (* indexed equality + residual range filter *)
  let where = Expr.(path [ "Kind" ] = str "bolt" && path [ "Weight" ] < int 10) in
  let found = ok (Database.select db ~cls:"Parts" ~where ()) in
  check_int "two light bolts" 2 (List.length found);
  (* residual on the left of the conjunction works too *)
  let where2 = Expr.(path [ "Weight" ] < int 10 && path [ "Kind" ] = str "bolt") in
  check_int "commuted conjunction" 2
    (List.length (ok (Database.select db ~cls:"Parts" ~where:where2 ())));
  (* nested conjunction: (range AND eq) AND extra *)
  ok (Database.create_ordered_index db ~cls:"Parts" ~attr:"Weight");
  let where3 =
    Expr.(
      (path [ "Weight" ] >= int 5 && path [ "Kind" ] = str "nut")
      && path [ "Weight" ] < int 10)
  in
  check_int "nested conjunction" 1
    (List.length (ok (Database.select db ~cls:"Parts" ~where:where3 ())));
  (* agreement with the scan on the same predicates *)
  List.iter
    (fun where ->
      let indexed =
        List.sort Surrogate.compare (ok (Database.select db ~cls:"Parts" ~where ()))
      in
      let scanned =
        List.sort Surrogate.compare
          (ok (Query.select (Database.store db) ~cls:"Parts" ~where ()))
      in
      Alcotest.(check (list surrogate)) "conjunction agrees with scan" scanned indexed)
    [ where; where2; where3 ]

let suite =
  ( "ordered-index",
    [
      case "range queries, ascending results" test_range_queries;
      case "optimizer agrees with the scan" test_optimizer_used_and_agrees;
      case "maintenance under updates and deletes" test_maintenance;
      case "Null sorts lowest, consistently with the scan" test_null_sorts_lowest;
      case "type mismatch falls back to the scan" test_type_mismatch_falls_back_to_scan;
      case "string ranges" test_string_ranges;
      case "registration and dropping" test_registration;
      QCheck_alcotest.to_alcotest prop_ranges_agree_with_scan;
      case "conjunctive planning (index + residual filter)" test_conjunction_planning;
    ] )
