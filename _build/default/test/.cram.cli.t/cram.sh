  $ cat > tiny.ddl <<DDL
  > obj-type Part =
  >   attributes:
  >     Weight: integer;
  >   constraints:
  >     positive: Weight >= 0;
  > end Part;
  > DDL
  $ compo check tiny.ddl
  $ compo format tiny.ddl
  $ compo init db -s tiny.ddl
  $ compo info db
  $ compo demo steel sdb
  $ compo validate sdb
  $ compo query sdb Structures
  $ compo query sdb Bolts --where 'Length > 3'
  $ compo show sdb @1
  $ compo dump-schema sdb | head -8
  $ compo checkpoint sdb
  $ compo check missing.ddl 2>&1 | head -1
  $ compo query sdb Nowhere 2>&1
  $ compo demo gates gdb
  $ compo simulate gdb @1 10
  $ compo simulate gdb @1 00
  $ compo version new-graph gdb nor
  $ compo version root gdb nor @24
  $ compo version derive gdb nor 1
  $ compo version promote gdb nor 1 released
  $ compo version default gdb nor 1
  $ compo version list gdb
  $ compo version audit gdb @25
  $ compo optimize gdb @1
