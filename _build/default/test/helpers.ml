(* Shared test utilities. *)

open Compo_core

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)

let expect_error ?(msg = "expected an error") pred = function
  | Ok _ -> Alcotest.fail msg
  | Error e ->
      if not (pred e) then
        Alcotest.failf "unexpected error kind: %s" (Errors.to_string e)

let any_error (_ : Errors.t) = true

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let surrogate : Surrogate.t Alcotest.testable =
  Alcotest.testable Surrogate.pp Surrogate.equal

let check_value = Alcotest.check value
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let check_no_violations what vs =
  match vs with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: unexpected violation: %s" what
        (Format.asprintf "%a" Constraints.pp_violation v)

let case name f = Alcotest.test_case name `Quick f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A database with the gate scenario installed. *)
let gates_db () =
  let db = Database.create () in
  ok (Compo_scenarios.Gates.define_schema db);
  db

(* A database with the steel scenario installed. *)
let steel_db () =
  let db = Database.create () in
  ok (Compo_scenarios.Steel.define_schema db);
  db

(* A database with both installed (they share the Point domain). *)
let full_db () =
  let db = Database.create () in
  ok (Compo_scenarios.Gates.define_schema db);
  ok (Compo_scenarios.Steel.define_schema db);
  db
