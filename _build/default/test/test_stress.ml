(* Larger-scale soak tests: build sizeable designs, run every global
   operation over them, and verify invariants, constraints, and the
   persistence round-trip all hold together. *)

open Compo_core
open Helpers
module G = Compo_scenarios.Gates
module W = Compo_scenarios.Workload

let test_large_netlist () =
  let db = gates_db () in
  let g = ok (W.random_netlist db ~seed:7 ~gates:200) in
  check_int "200 subgates" 200 (List.length (ok (Database.subclass_members db g "SubGates")));
  check_int "200 wires" 200 (List.length (ok (Database.subrel_members db g "Wires")));
  check_no_violations "netlist valid" (ok (Database.validate db g));
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db));
  (* the netlist survives the snapshot round-trip intact *)
  let blob = Compo_storage.Codec.encode_store (Database.store db) in
  let store2 = ok (Compo_storage.Codec.decode_store (Database.schema db) blob) in
  check_int "entities preserved"
    (Store.entity_count (Database.store db))
    (Store.entity_count store2);
  Alcotest.(check (list string)) "decoded store healthy" []
    (Store.check_invariants store2)

let test_large_structure_with_everything () =
  let db = steel_db () in
  let s = ok (W.screwed_structure db ~girders:60 ~bores_per_joint:2) in
  check_no_violations "all screwings valid" (Database.validate_all db);
  let bom = ok (Database.bill_of_materials db s) in
  (* 60 girders + 59 joints x (bolt + nut) *)
  check_int "component uses" (60 + (59 * 2))
    (List.fold_left (fun acc (_, n) -> acc + n) 0 bom);
  let node = ok (Database.expand db s) in
  check_bool "expansion covers the structure" true (Composite.node_count node > 300);
  Alcotest.(check (list string)) "store healthy" []
    (Store.check_invariants (Database.store db))

let test_many_inheritors_consistency () =
  let db = gates_db () in
  let iface, impls = ok (W.interface_with_inheritors db ~n:500) in
  ok (Database.set_attr db iface "Length" (Value.Int 123));
  (* every inheritor sees the update, every link is stamped *)
  List.iter
    (fun impl ->
      check_value "fresh" (Value.Int 123) (ok (Database.get_attr db impl "Length")))
    impls;
  let stale =
    List.filter (fun l -> ok (Database.is_stale db l)) (ok (Database.links_of db iface))
  in
  check_int "all links stamped" 500 (List.length stale)

let test_deep_composite_through_journal () =
  (* a component tree persisted operation-by-operation, recovered, and
     checked: the journal scales to thousands of records *)
  let dir = Filename.temp_file "compo-soak" "" in
  Sys.remove dir;
  let j = ok (Compo_storage.Journal.open_dir dir) in
  let db = Compo_storage.Journal.db j in
  ok (W.composite_schema db ~depth:3);
  ok (Compo_storage.Journal.checkpoint j);
  (* build by hand through journaled operations *)
  let rec build level =
    let node =
      ok
        (Compo_storage.Journal.new_object j ~ty:("Comp" ^ string_of_int level)
           ~attrs:[ ("Payload", Value.Int level) ]
           ())
    in
    if level = 0 then node
    else begin
      for _ = 1 to 3 do
        let child = build (level - 1) in
        let part =
          ok (Compo_storage.Journal.new_subobject j ~parent:node ~subclass:"Parts" ())
        in
        let _ =
          ok
            (Compo_storage.Journal.bind j
               ~via:("AllOf_Comp" ^ string_of_int (level - 1))
               ~transmitter:child ~inheritor:part ())
        in
        ()
      done;
      node
    end
  in
  let top = build 3 in
  Compo_storage.Journal.close j;
  let j2 = ok (Compo_storage.Journal.open_dir dir) in
  check_bool "clean recovery" true (Compo_storage.Journal.recovered_clean j2);
  let db2 = Compo_storage.Journal.db j2 in
  let node = ok (Database.expand db2 top) in
  check_int "recovered expansion" 79 (Composite.node_count node);
  Alcotest.(check (list string)) "recovered store healthy" []
    (Store.check_invariants (Database.store db2));
  Compo_storage.Journal.close j2

let test_simulate_large_netlist_sample () =
  (* truth-table a mid-sized single-output netlist built from a chain of
     AND gates: output = conjunction of all inputs *)
  let db = gates_db () in
  let gate =
    ok
      (Database.new_object db ~ty:"Gate"
         ~attrs:
           [
             ("Length", Value.Int 64);
             ("Width", Value.Int 8);
             ("Function", Value.Matrix [| [| Value.Bool true |] |]);
           ]
         ())
  in
  let ext io x =
    ok
      (Database.new_subobject db ~parent:gate ~subclass:"Pins"
         ~attrs:[ ("InOut", G.io_value io); ("PinLocation", Value.point x 0) ]
         ())
  in
  let n = 6 in
  let inputs = List.init n (fun i -> ext G.In i) in
  let out = ext G.Out 99 in
  (* chain: and1(in0,in1); and_k(and_{k-1}, in_{k+1}) *)
  let ands =
    List.init (n - 1) (fun i ->
        ok (G.new_elementary_gate db ~parent:(gate, "SubGates") ~func:"AND" ~x:(10 + i) ~y:0 ()))
  in
  let wire a b = ignore (ok (G.wire db ~parent:gate ~from_pin:a ~to_pin:b)) in
  List.iteri
    (fun i g ->
      let in1 = ok (G.pin db g 0) and in2 = ok (G.pin db g 1) in
      if i = 0 then begin
        wire (List.nth inputs 0) in1;
        wire (List.nth inputs 1) in2
      end
      else begin
        wire (ok (G.pin db (List.nth ands (i - 1)) 2)) in1;
        wire (List.nth inputs (i + 1)) in2
      end)
    ands;
  wire (ok (G.pin db (List.nth ands (n - 2)) 2)) out;
  let table = ok (Compo_scenarios.Simulate.truth_table db ~gate) in
  check_int "64 rows" 64 (List.length table);
  List.iter
    (fun (ins, outs) ->
      check_bool "conjunction" (List.for_all Fun.id ins) (List.hd outs))
    table

let suite =
  ( "stress",
    [
      case "200-gate random netlist" test_large_netlist;
      case "60-girder structure end to end" test_large_structure_with_everything;
      case "500 inheritors stay consistent" test_many_inheritors_consistency;
      case "deep composite through the journal" test_deep_composite_through_journal;
      case "6-input AND cascade truth table" test_simulate_large_netlist_sample;
    ] )
